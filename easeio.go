// Package easeio is a faithful, executable reproduction of "Efficient and
// Safe I/O Operations for Intermittent Systems" (Yildiz et al., EuroSys
// 2023) as a Go library.
//
// The package simulates an MSP430FR5994-class batteryless device —
// FRAM/SRAM/LEA-RAM memory, a capacitor fed by an energy harvester, a
// persistent timekeeper, sensors, a radio, a camera, a DMA engine and the
// LEA vector accelerator — and runs task-based intermittent applications
// on it under three runtimes: the Alpaca and InK baselines and EaseIO,
// the paper's contribution. EaseIO adds programmer-annotated I/O
// re-execution semantics (Single, Timely, Always), atomic I/O blocks with
// semantic precedence, memory-safe DMA with runtime classification and
// two-phase privatization, and regional privatization of non-volatile
// state.
//
// # Quick start
//
//	app := easeio.NewApp("hello")
//	sensors := easeio.NewPeripherals(1)
//	temp := app.TimelyIO("Temp", 10*time.Millisecond, true,
//		func(e easeio.Exec, _ int) uint16 { return sensors.Temp.Sample(e) })
//	reading := app.NVInt("reading")
//	var done *easeio.Task
//	app.AddTask("sense", func(e easeio.Exec) {
//		e.Store(reading, e.CallIO(temp))
//		e.Next(done)
//	})
//	done = app.AddTask("done", func(e easeio.Exec) { e.Done() })
//
//	res, err := easeio.Run(app, easeio.NewEaseIO(), easeio.WithSeed(42))
//
// Run analyzes the application with the compiler front-end, attaches it to
// a fresh simulated device, executes it under emulated power failures and
// returns the run's statistics. See the examples directory for complete
// programs and cmd/easeio-bench for the harness that regenerates every
// table and figure of the paper.
package easeio

import (
	"context"
	"io"

	"easeio/internal/alpaca"
	"easeio/internal/apps"
	"easeio/internal/check"
	"easeio/internal/core"
	"easeio/internal/energy"
	"easeio/internal/experiments"
	"easeio/internal/frontend"
	"easeio/internal/ink"
	"easeio/internal/justdo"
	"easeio/internal/kernel"
	"easeio/internal/mem"
	"easeio/internal/periph"
	"easeio/internal/power"
	"easeio/internal/stats"
	"easeio/internal/task"
	"easeio/internal/units"
)

// Blueprint types, re-exported from the internal task package.
type (
	// App is an application blueprint: tasks, task-shared variables, I/O
	// sites, I/O blocks and DMA sites.
	App = task.App
	// Task is one atomic, all-or-nothing unit of execution.
	Task = task.Task
	// Exec is the execution surface task bodies program against.
	Exec = task.Exec
	// NVVar is a task-shared non-volatile variable.
	NVVar = task.NVVar
	// IOSite is a _call_IO site with a re-execution semantic.
	IOSite = task.IOSite
	// IOBlock is an atomic group of I/O operations.
	IOBlock = task.IOBlock
	// DMASite is a _DMA_copy site.
	DMASite = task.DMASite
	// Loc is a DMA endpoint (variable range or raw volatile address).
	Loc = task.Loc
	// Semantic is an I/O re-execution semantic.
	Semantic = task.Semantic
)

// Re-execution semantics (§3.1 of the paper).
const (
	Always = task.Always
	Single = task.Single
	Timely = task.Timely
)

// NewApp returns an empty application blueprint.
func NewApp(name string) *App { return task.NewApp(name) }

// VarLoc returns a DMA endpoint at word off of variable v.
func VarLoc(v *NVVar, off int) Loc { return task.VarLoc(v, off) }

// LEALoc returns a DMA endpoint in the volatile LEA-RAM.
func LEALoc(off int) Loc { return task.RawLoc(uint8(mem.LEARAM), off) }

// Peripherals bundles the simulated sensor/radio/camera set.
type Peripherals = periph.Set

// NewPeripherals returns the standard peripheral set, seeded.
func NewPeripherals(seed uint64) *Peripherals { return periph.StandardSet(seed) }

// Runtime is a task-based intermittent runtime attached to the engine.
type Runtime = kernel.Hooks

// NewEaseIO returns the EaseIO runtime with the paper's configuration.
func NewEaseIO() Runtime { return core.New() }

// NewEaseIOWithConfig returns an EaseIO runtime with an explicit
// configuration (privatization buffer size, ablation switches).
func NewEaseIOWithConfig(cfg EaseIOConfig) Runtime { return core.NewWithConfig(cfg) }

// EaseIOConfig tunes the EaseIO runtime.
type EaseIOConfig = core.Config

// DefaultEaseIOConfig matches the paper's evaluation setup.
func DefaultEaseIOConfig() EaseIOConfig { return core.DefaultConfig() }

// NewAlpaca returns the Alpaca baseline runtime.
func NewAlpaca() Runtime { return alpaca.New() }

// NewInK returns the InK baseline runtime.
func NewInK() Runtime { return ink.New() }

// NewJustDo returns the JustDo-style logging runtime — the
// checkpointing-family comparator the paper discusses in §2 and §7.2
// (resume-from-instruction, per-operation logging overhead).
func NewJustDo() Runtime { return justdo.New() }

// Result is the statistics record of one run.
type Result = stats.Run

// Supply models the device's power source.
type Supply = power.Supply

// TimerFailureConfig parameterizes the emulated soft-reset failures.
type TimerFailureConfig = power.TimerConfig

// Energy is an amount of energy in picojoules.
type Energy = units.Energy

// Analyze runs the compiler front-end over the application, computing the
// per-task metadata (I/O sites, WAR sets, DMA regions) the runtimes
// consume. Run calls it automatically; call it directly to inspect the
// metadata.
func Analyze(app *App) error { return frontend.Analyze(app) }

// Options configures a simulation run.
type Options struct {
	seed   int64
	supply Supply
	tracer kernel.Tracer
}

// Option mutates run options.
type Option func(*Options)

// WithSeed sets the run's random seed (failure times and sensor noise).
func WithSeed(seed int64) Option { return func(o *Options) { o.seed = seed } }

// WithSupply installs a custom power supply.
func WithSupply(s Supply) Option { return func(o *Options) { o.supply = s } }

// WithContinuousPower disables power failures (the golden configuration).
func WithContinuousPower() Option {
	return WithSupply(power.Continuous{})
}

// WithTimerFailures installs the paper's soft-reset emulation with the
// given on/off intervals.
func WithTimerFailures(cfg TimerFailureConfig) Option {
	return WithSupply(power.NewTimer(cfg))
}

// WithRFHarvester installs an energy-driven supply charged by an RF
// transmitter at the given distance in inches (the §5.5 setup). The
// path-loss curve is anchored at 52 inches, the closest distance of
// Figure 13.
func WithRFHarvester(distanceInches float64) Option {
	return WithSupply(power.NewHarvested(energy.DefaultRF(distanceInches)))
}

// Run executes the application under the runtime on a fresh simulated
// device. Without options it uses the paper's timer-driven power-failure
// emulation and seed 0. The application is analyzed by the compiler
// front-end if it has not been already.
func Run(app *App, rt Runtime, opts ...Option) (*Result, error) {
	o := Options{}
	for _, opt := range opts {
		opt(&o)
	}
	if o.supply == nil {
		o.supply = power.NewTimer(power.DefaultTimerConfig())
	}
	if err := ensureAnalyzed(app); err != nil {
		return nil, err
	}
	dev := kernel.NewDevice(o.supply, o.seed)
	dev.Tracer = o.tracer
	if err := kernel.RunApp(dev, rt, app); err != nil {
		return nil, err
	}
	return dev.Run, nil
}

// ensureAnalyzed runs the front-end unless the app already carries a
// frozen program or hand-set analysis metadata. The whole check-then-
// analyze sequence runs under the app's single-flight gate: concurrent
// NewSession/Run calls on the same unanalyzed app must not both enter
// frontend.Analyze, which mutates the shared blueprint.
func ensureAnalyzed(app *App) error {
	return app.AnalyzeOnce(func(a *App) error {
		if a.Program() != nil {
			return nil
		}
		for _, t := range a.Tasks {
			if !t.Meta.Analyzed {
				return frontend.Analyze(a)
			}
		}
		return nil
	})
}

// Session runs one application under one runtime instance many times,
// reusing the simulated device between runs: the app is the analyzed
// blueprint, the session holds the per-run instance state. Compared to
// calling Run in a loop, a session skips re-analysis, re-allocation and
// re-attachment for every seed — the engine behind the experiment
// harness's sweeps.
type Session struct {
	s *kernel.Session
}

// NewSession creates a session for app under rt. The app is analyzed by
// the compiler front-end if it has not been already. Seed-independent
// options (supply, tracer) apply to every run; WithSeed is ignored — the
// seed is per-run, passed to Session.Run.
func NewSession(app *App, rt Runtime, opts ...Option) (*Session, error) {
	o := Options{}
	for _, opt := range opts {
		opt(&o)
	}
	if o.supply == nil {
		o.supply = power.NewTimer(power.DefaultTimerConfig())
	}
	if err := ensureAnalyzed(app); err != nil {
		return nil, err
	}
	s := kernel.NewSession(rt, app, o.supply)
	s.Tracer = o.tracer
	return &Session{s: s}, nil
}

// Run executes the application once with the given seed and returns the
// run's statistics. The returned record is reused (reset in place) by the
// next Run on this session — read it or Clone it before running again.
func (s *Session) Run(seed int64) (*Result, error) { return s.s.Run(seed) }

// DeviceHolder is implemented by runtimes that expose the simulated
// device they are attached to. All four built-in runtimes satisfy it
// through rtbase.Base; a custom runtime embedding Base inherits it for
// free, and one that does not can implement the single method itself to
// opt into ReadVar-style post-run inspection.
type DeviceHolder interface {
	Device() *kernel.Device
}

// ReadVar reads word i of a variable's committed master copy through a
// runtime that has completed a run — the "logic analyzer" view of final
// non-volatile memory. It returns false if the runtime does not implement
// DeviceHolder or has not been attached to a device yet.
func ReadVarOK(rt Runtime, v *NVVar, i int) (uint16, bool) {
	m := memOf(rt)
	if m == nil {
		return 0, false
	}
	a := rt.AddrOf(v)
	return m.Read(a.Add(i)), true
}

// ReadVar is ReadVarOK without the ok flag: it reads word i of a
// variable's committed master copy, or returns 0 for a runtime that does
// not expose its device (it never panics — custom runtimes are safe).
func ReadVar(rt Runtime, v *NVVar, i int) uint16 {
	w, _ := ReadVarOK(rt, v, i)
	return w
}

// memOf recovers the device memory from an attached runtime, or nil when
// the runtime does not implement DeviceHolder or is not attached.
func memOf(rt Runtime) *mem.Memory {
	h, ok := rt.(DeviceHolder)
	if !ok {
		return nil
	}
	dev := h.Device()
	if dev == nil {
		return nil
	}
	return dev.Mem
}

// Prebuilt benchmark applications of the paper's evaluation.

// Bench couples an analyzed application with its peripheral set.
type Bench = apps.Bench

// NewDMABench returns the Single-semantics uni-task benchmark (Fig 7a).
func NewDMABench() (*Bench, error) { return apps.NewDMAApp(apps.DefaultDMAConfig()) }

// NewTempBench returns the Timely-semantics uni-task benchmark (Fig 7b).
func NewTempBench() (*Bench, error) { return apps.NewTempApp(apps.DefaultTempConfig()) }

// NewLEABench returns the Always-semantics uni-task benchmark (Fig 7c).
func NewLEABench() (*Bench, error) { return apps.NewLEAApp(apps.DefaultLEAConfig()) }

// NewFIRBench returns the FIR filter benchmark (Figs 10–12). excludeCoef
// applies the paper's Exclude annotation to the coefficient DMA
// ("EaseIO/Op.").
func NewFIRBench(excludeCoef bool) (*Bench, error) {
	cfg := apps.DefaultFIRConfig()
	cfg.ExcludeCoef = excludeCoef
	return apps.NewFIRApp(cfg)
}

// NewWeatherBench returns the 11-task DNN weather classifier (Fig 9,
// Table 5). doubleBuffer selects the conventional double-buffered DNN.
func NewWeatherBench(doubleBuffer bool) (*Bench, error) {
	cfg := apps.DefaultWeatherConfig()
	if doubleBuffer {
		cfg.Buffers = apps.DoubleBuffer
	}
	return apps.NewWeatherApp(cfg)
}

// NewBranchBench returns the unsafe-program-execution scenario of
// Figure 2c: a sensor-dependent branch writing different non-volatile
// flags.
func NewBranchBench() (*Bench, error) {
	return apps.NewBranchApp(apps.DefaultBranchConfig())
}

// WithTrace streams the execution timeline (boots, power failures, task
// attempts, I/O and DMA decisions, regional privatization) to w.
func WithTrace(w io.Writer) Option {
	return func(o *Options) { o.tracer = kernel.TraceWriter{W: w} }
}

// WithTracer installs a custom trace sink.
func WithTracer(t Tracer) Option {
	return func(o *Options) { o.tracer = t }
}

// Tracer receives execution timeline events (see TraceBuffer).
type Tracer = kernel.Tracer

// TraceBuffer retains timeline events in memory for inspection.
type TraceBuffer = kernel.TraceBuffer

// TraceEvent is one timeline entry of a traced run.
type TraceEvent = kernel.TraceEvent

// EventKind classifies a trace event (see the kernel package's event
// taxonomy and DESIGN.md §12).
type EventKind = kernel.EventKind

// The event taxonomy: power edges, task lifecycle, I/O and DMA decisions,
// regional privatization.
const (
	EvBoot            = kernel.EvBoot
	EvPowerFailure    = kernel.EvPowerFailure
	EvRecharge        = kernel.EvRecharge
	EvTaskBegin       = kernel.EvTaskBegin
	EvTaskCommit      = kernel.EvTaskCommit
	EvTaskAbort       = kernel.EvTaskAbort
	EvIOExec          = kernel.EvIOExec
	EvIOSkip          = kernel.EvIOSkip
	EvDMAClass        = kernel.EvDMAClass
	EvDMAExec         = kernel.EvDMAExec
	EvDMASkip         = kernel.EvDMASkip
	EvBlockSkip       = kernel.EvBlockSkip
	EvBlockViolation  = kernel.EvBlockViolation
	EvRegionPrivatize = kernel.EvRegionPrivatize
	EvRegionRestore   = kernel.EvRegionRestore
)

// WriteChromeTrace renders a traced run as Chrome trace_event JSON,
// loadable in chrome://tracing and Perfetto (https://ui.perfetto.dev):
// power on/off spans, task attempts with their commit/abort outcome, and
// every I/O, DMA, block and region decision as instant events.
func WriteChromeTrace(buf *TraceBuffer, w io.Writer) error {
	return kernel.ExportChromeTrace(buf, w)
}

// Lint runs the compiler front-end's static checks over the application:
// unsafe Exclude annotations, privatization-buffer sizing (the §6
// compile-time check), and dead-annotation warnings.
func Lint(app *App, cfg LintConfig) ([]LintFinding, error) {
	return frontend.Lint(app, cfg)
}

// LintConfig parameterizes the static checks.
type LintConfig = frontend.LintConfig

// LintFinding is one diagnostic.
type LintFinding = frontend.Finding

// DefaultLintConfig checks against the paper's 4 KB privatization buffer.
func DefaultLintConfig() LintConfig {
	return LintConfig{PrivBufWords: DefaultEaseIOConfig().PrivBufWords}
}

// RenderGantt draws an ASCII timeline of a traced run (power lane plus a
// lane per task) to w; width is the chart width in character cells.
func RenderGantt(buf *TraceBuffer, width int, w io.Writer) {
	kernel.RenderGantt(buf, width, w)
}

// Multi-seed sweeps: the facade over the experiment harness's pooled
// sweep engine, the same path cmd/easeio-served jobs execute on.

// Summary is the aggregate of many seeded runs.
type Summary = stats.Summary

// RuntimeKind names one of the compared runtimes for a sweep.
type RuntimeKind = experiments.RuntimeKind

// The sweep runtimes. EaseIOOpKind is EaseIO with the application's
// Exclude annotations enabled ("EaseIO/Op." in the paper's figures);
// JustDoKind is the checkpointing-family logging comparator.
const (
	AlpacaKind   = experiments.Alpaca
	InKKind      = experiments.InK
	EaseIOKind   = experiments.EaseIO
	EaseIOOpKind = experiments.EaseIOOp
	JustDoKind   = experiments.JustDo
)

// ParseRuntimeKind maps a runtime name ("Alpaca", "InK", "EaseIO",
// "EaseIO/Op.", "JustDo") to its kind, case-insensitively.
func ParseRuntimeKind(s string) (RuntimeKind, error) {
	return experiments.ParseRuntimeKind(s)
}

// SweepConfig parameterizes a multi-seed sweep.
type SweepConfig struct {
	// Runs is the number of seeded executions (defaults to 1000, the
	// paper's count).
	Runs int
	// BaseSeed offsets the per-run seeds (seed = BaseSeed + run index).
	BaseSeed int64
	// Workers bounds parallel simulation (defaults to GOMAXPROCS). The
	// Summary is worker-count-invariant.
	Workers int
	// OnProgress, when non-nil, is invoked after every finished seed with
	// the cumulative finished count and the total; it may be called from
	// any worker goroutine.
	OnProgress func(done, total int)
	// TraceSink, when non-nil, receives every run's execution timeline.
	// Sweep workers emit concurrently: the sink must be safe for
	// concurrent use, and events from different seeds interleave.
	TraceSink Tracer
	// Timings, when non-nil, accumulates the sweep's host-side stage
	// timings (build vs. run vs. wall).
	Timings *SweepTimings
}

// SweepTimings breaks a sweep's host wall-clock cost into stages.
type SweepTimings = experiments.StageTimings

// Sweep executes many seeded runs of the bench the factory builds under
// the given runtime kind and aggregates them, sharding seeds over a pool
// of reused devices. Cancelling ctx stops the sweep within one seed
// boundary per worker; the returned Summary then covers the runs that
// finished, and the error wraps ctx's error.
func Sweep(ctx context.Context, newBench func() (*Bench, error), kind RuntimeKind, cfg SweepConfig) (Summary, error) {
	ecfg := experiments.Config{
		Runs:      cfg.Runs,
		BaseSeed:  cfg.BaseSeed,
		Workers:   cfg.Workers,
		Progress:  cfg.OnProgress,
		TraceSink: cfg.TraceSink,
		Timings:   cfg.Timings,
	}
	return experiments.RunManyCtx(ctx, ecfg, newBench, kind)
}

// Failure-point model checking: the facade over internal/check, the same
// engine behind cmd/easeio-check and the service's check jobs.

// CheckConfig parameterizes a failure-point check.
type CheckConfig = check.Config

// CheckReport is the deterministic result of one check: golden baseline,
// exploration counts, every divergence and the minimal failing schedule.
type CheckReport = check.Report

// CheckDivergence is one failure point whose replay did not match the
// golden continuous-power run.
type CheckDivergence = check.Divergence

// Check model-checks one bench×runtime combination for crash consistency:
// it enumerates every charge-slice boundary of a golden continuous-power
// run, replays the app with a single power failure injected at each
// explored boundary, and differentially compares final non-volatile
// memory, the CheckOutput verdict and the work ledger against golden. Set
// cfg.Exhaustive to replay every candidate; the default explores an
// adaptive bisection grid. Cancelling ctx stops exploration and returns
// the partial report alongside ctx's error.
func Check(ctx context.Context, newBench func() (*Bench, error), kind RuntimeKind, cfg CheckConfig) (*CheckReport, error) {
	return check.Run(ctx, experiments.AppFactory(newBench), kind, cfg)
}
