package easeio_test

import (
	"fmt"
	"time"

	"easeio"
)

// ExampleRun builds a minimal two-task application and executes it under
// continuous power: the deterministic baseline every intermittent run is
// judged against.
func ExampleRun() {
	app := easeio.NewApp("demo")
	counter := app.NVInt("counter")
	var done *easeio.Task
	app.AddTask("work", func(e easeio.Exec) {
		e.Compute(1000)
		e.Store(counter, e.Load(counter)+1)
		e.Next(done)
	})
	done = app.AddTask("done", func(e easeio.Exec) { e.Done() })

	rt := easeio.NewEaseIO()
	res, err := easeio.Run(app, rt, easeio.WithContinuousPower())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("failures:", res.PowerFailures)
	fmt.Println("counter:", easeio.ReadVar(rt, counter, 0))
	// Output:
	// failures: 0
	// counter: 1
}

// ExampleApp_TimelyIO shows Timely semantics: after a power failure the
// stored reading is reused while it is fresh, so the sensor runs exactly
// once even though the task re-executes.
func ExampleApp_TimelyIO() {
	app := easeio.NewApp("timely")
	executions := 0
	sensor := app.TimelyIO("Temp", 50*time.Millisecond, true,
		func(e easeio.Exec, _ int) uint16 {
			executions++
			e.Op(time.Millisecond, 0)
			return 21
		})
	reading := app.NVInt("reading")
	var done *easeio.Task
	app.AddTask("sense", func(e easeio.Exec) {
		e.Store(reading, e.CallIO(sensor))
		e.Compute(4100) // the first attempt fails just before finishing
		e.Next(done)
	})
	done = app.AddTask("done", func(e easeio.Exec) { e.Done() })

	// Fixed 5 ms energy cycles guarantee a mid-task failure.
	cfg := easeio.TimerFailureConfig{
		OnMin: 5 * time.Millisecond, OnMax: 5 * time.Millisecond,
		OffMin: time.Millisecond, OffMax: time.Millisecond,
	}
	rt := easeio.NewEaseIO()
	res, err := easeio.Run(app, rt, easeio.WithTimerFailures(cfg))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// The analysis run invokes the body once; subtract it.
	fmt.Println("sensor executions:", executions-1)
	fmt.Println("power failures:", res.PowerFailures)
	fmt.Println("reading:", easeio.ReadVar(rt, reading, 0))
	// Output:
	// sensor executions: 1
	// power failures: 1
	// reading: 21
}

// ExampleLint shows the front-end's static checks catching an unsafe
// Exclude annotation.
func ExampleLint() {
	app := easeio.NewApp("lint")
	buf := app.NVBuf("buf", 4)
	d := app.DMA("fetch").Excluded() // excluded, but the source is mutated
	var done *easeio.Task
	app.AddTask("t", func(e easeio.Exec) {
		e.Store(buf, 1)
		e.DMACopy(d, easeio.VarLoc(buf, 0), easeio.LEALoc(0), 4)
		e.Next(done)
	})
	done = app.AddTask("done", func(e easeio.Exec) { e.Done() })

	findings, err := easeio.Lint(app, easeio.DefaultLintConfig())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, f := range findings {
		fmt.Println(f.Severity, f.Code)
	}
	// Output:
	// error exclude-mutable-source
}
