// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§5), plus ablation benches for the design choices
// DESIGN.md calls out. Each benchmark executes a reduced sweep per
// iteration and reports the figure's headline quantities as custom
// metrics, so `go test -bench=. -benchmem` regenerates the whole
// evaluation. Use cmd/easeio-bench for full-resolution tables.
package easeio

import (
	"context"
	"runtime"
	"testing"
	"time"

	"easeio/internal/apps"
	"easeio/internal/check"
	"easeio/internal/core"
	"easeio/internal/experiments"
	"easeio/internal/kernel"
	"easeio/internal/power"
	"easeio/internal/stats"
)

// benchRuns is the per-iteration sweep size (the paper uses 1000 per
// configuration; benchmarks trade resolution for iteration speed).
const benchRuns = 120

func benchCfg() experiments.Config {
	return experiments.Config{Runs: benchRuns, BaseSeed: 1}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// BenchmarkTable3 regenerates the application inventory.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			totalTasks := 0
			for _, r := range rows {
				totalTasks += r.Tasks
			}
			b.ReportMetric(float64(totalTasks), "tasks")
		}
	}
}

// uniTaskBench runs the phase-1 sweep and reports one case's headline
// numbers: total time per runtime and EaseIO's savings.
func uniTaskBench(b *testing.B, caseIdx int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		data, err := experiments.UniTask(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			sums := data.Summaries[caseIdx]
			b.ReportMetric(ms(sums[0].MeanTotalTime()), "alpaca-ms")
			b.ReportMetric(ms(sums[1].MeanTotalTime()), "ink-ms")
			b.ReportMetric(ms(sums[2].MeanTotalTime()), "easeio-ms")
			b.ReportMetric(ms(sums[2].Work[stats.Wasted].T), "easeio-wasted-ms")
			b.ReportMetric(ms(sums[0].Work[stats.Wasted].T), "alpaca-wasted-ms")
		}
	}
}

// BenchmarkFigure7a: Single-semantics DMA application.
func BenchmarkFigure7a(b *testing.B) { uniTaskBench(b, 0) }

// BenchmarkFigure7b: Timely-semantics temperature application.
func BenchmarkFigure7b(b *testing.B) { uniTaskBench(b, 1) }

// BenchmarkFigure7c: Always-semantics LEA application.
func BenchmarkFigure7c(b *testing.B) { uniTaskBench(b, 2) }

// BenchmarkTable4: power failures and redundant I/O counts.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data, err := experiments.UniTask(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			alp, ease := data.Summaries[0][0], data.Summaries[0][2]
			b.ReportMetric(float64(alp.PowerFailures)/benchRuns, "alpaca-pf/run")
			b.ReportMetric(float64(ease.PowerFailures)/benchRuns, "easeio-pf/run")
			b.ReportMetric(float64(alp.IORepeats+alp.DMARepeats)/benchRuns, "alpaca-reexe/run")
			b.ReportMetric(float64(ease.IORepeats+ease.DMARepeats)/benchRuns, "easeio-reexe/run")
		}
	}
}

// BenchmarkFigure8: average energy per uni-task execution.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data, err := experiments.UniTask(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(data.Summaries[0][0].MeanEnergy.Microjoules(), "alpaca-single-uJ")
			b.ReportMetric(data.Summaries[0][2].MeanEnergy.Microjoules(), "easeio-single-uJ")
		}
	}
}

// BenchmarkFigure10: multi-task execution-time breakdown.
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data, err := experiments.MultiTask(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// Weather app: [EaseIOOp, EaseIO, InK, Alpaca].
			w := data.Summaries[1]
			b.ReportMetric(ms(w[3].MeanTotalTime()), "weather-alpaca-ms")
			b.ReportMetric(ms(w[1].MeanTotalTime()), "weather-easeio-ms")
			b.ReportMetric(ms(w[0].MeanTotalTime()), "weather-easeioOp-ms")
			f := data.Summaries[0]
			b.ReportMetric(ms(f[3].MeanTotalTime()), "fir-alpaca-ms")
			b.ReportMetric(ms(f[1].MeanTotalTime()), "fir-easeio-ms")
		}
	}
}

// BenchmarkFigure11: multi-task energy.
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data, err := experiments.MultiTask(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(data.Summaries[1][3].MeanEnergy.Microjoules(), "weather-alpaca-uJ")
			b.ReportMetric(data.Summaries[1][1].MeanEnergy.Microjoules(), "weather-easeio-uJ")
		}
	}
}

// BenchmarkFigure12: FIR correctness counts.
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data, err := experiments.MultiTask(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fir := data.Summaries[0]
			b.ReportMetric(float64(fir[1].IncorrectRuns), "easeio-incorrect")
			b.ReportMetric(float64(fir[2].IncorrectRuns), "ink-incorrect")
			b.ReportMetric(float64(fir[3].IncorrectRuns), "alpaca-incorrect")
		}
	}
}

// BenchmarkTable5: weather classifier, double vs single buffer.
func BenchmarkTable5(b *testing.B) {
	cfg := benchCfg()
	cfg.Runs = 60 // 2 modes × 3 runtimes per iteration
	for i := 0; i < b.N; i++ {
		data, err := experiments.Table5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range data.Rows {
				if row.Kind == experiments.EaseIO {
					b.ReportMetric(ms(row.Cont[apps.SingleBuffer]), "easeio-cont-ms")
					b.ReportMetric(ms(row.Int[apps.SingleBuffer]), "easeio-int-ms")
				}
				if row.Kind == experiments.Alpaca {
					b.ReportMetric(float64(row.Incorrect[apps.SingleBuffer]), "alpaca-single-incorrect")
				}
			}
		}
	}
}

// BenchmarkTable6: memory and code-size measurement.
func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data, err := experiments.Table6()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// DMA app row: EaseIO FRAM includes the 4 KB privatization
			// buffer, Temp row does not use it.
			for ai, label := range data.Apps {
				if label == "DMA" {
					b.ReportMetric(float64(data.Cells[ai][2].FRAM), "dma-easeio-fram-B")
					b.ReportMetric(float64(data.Cells[ai][0].FRAM), "dma-alpaca-fram-B")
				}
			}
		}
	}
}

// BenchmarkFigure13: the RF-harvester distance sweep.
func BenchmarkFigure13(b *testing.B) {
	cfg := experiments.DefaultFig13Config()
	cfg.Runs = 20
	for i := 0; i < b.N; i++ {
		data, err := experiments.Fig13(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := len(data.Times) - 1
			b.ReportMetric(ms(data.Times[0][3]-data.Times[0][0]), "near-alpaca-dt-ms")
			b.ReportMetric(ms(data.Times[last][3]-data.Times[last][0]), "far-alpaca-dt-ms")
			b.ReportMetric(data.Failures[last][3], "far-pf/run")
		}
	}
}

// --- Ablation benches (design-choice isolation) ---

// BenchmarkAblationRegionalPrivatization compares the weather app's
// single-buffer correctness and overhead with regional privatization on
// and off.
func BenchmarkAblationRegionalPrivatization(b *testing.B) {
	for _, on := range []bool{true, false} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				incorrect := 0
				var overhead time.Duration
				for seed := int64(1); seed <= 60; seed++ {
					bench, err := apps.NewWeatherApp(apps.DefaultWeatherConfig())
					if err != nil {
						b.Fatal(err)
					}
					cfg := core.DefaultConfig()
					cfg.RegionalPrivatization = on
					dev := kernel.NewDevice(power.NewTimer(power.DefaultTimerConfig()), seed)
					if err := kernel.RunApp(dev, core.NewWithConfig(cfg), bench.App); err != nil {
						b.Fatal(err)
					}
					if !dev.Run.Correct {
						incorrect++
					}
					overhead += dev.Run.Work[stats.Overhead].T
				}
				if i == 0 {
					b.ReportMetric(float64(incorrect), "incorrect/60")
					b.ReportMetric(ms(overhead/60), "overhead-ms")
				}
			}
		})
	}
}

// BenchmarkAblationExclude isolates the Exclude annotation's effect on
// the FIR filter's runtime overhead.
func BenchmarkAblationExclude(b *testing.B) {
	for _, exclude := range []bool{false, true} {
		name := "privatized"
		if exclude {
			name = "excluded"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var overhead, total time.Duration
				for seed := int64(1); seed <= 60; seed++ {
					fc := apps.DefaultFIRConfig()
					fc.ExcludeCoef = exclude
					bench, err := apps.NewFIRApp(fc)
					if err != nil {
						b.Fatal(err)
					}
					dev := kernel.NewDevice(power.NewTimer(power.DefaultTimerConfig()), seed)
					if err := kernel.RunApp(dev, core.New(), bench.App); err != nil {
						b.Fatal(err)
					}
					overhead += dev.Run.Work[stats.Overhead].T
					total += dev.Run.OnTime
				}
				if i == 0 {
					b.ReportMetric(ms(overhead/60), "overhead-ms")
					b.ReportMetric(ms(total/60), "total-ms")
				}
			}
		})
	}
}

// BenchmarkAblationValuePrivatization measures the branch-stability
// mechanism: with value privatization off, re-executions may take the
// other branch (Figure 2c's bug).
func BenchmarkAblationValuePrivatization(b *testing.B) {
	for _, on := range []bool{true, false} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				unsafeRuns := 0
				for seed := int64(1); seed <= 120; seed++ {
					bench, err := apps.NewBranchApp(apps.DefaultBranchConfig())
					if err != nil {
						b.Fatal(err)
					}
					cfg := core.DefaultConfig()
					cfg.ValuePrivatization = on
					cfg.RegionalPrivatization = false // isolate the value mechanism
					dev := kernel.NewDevice(power.NewTimer(power.DefaultTimerConfig()), seed)
					if err := kernel.RunApp(dev, core.NewWithConfig(cfg), bench.App); err != nil {
						b.Fatal(err)
					}
					if !dev.Run.Correct {
						unsafeRuns++
					}
				}
				if i == 0 {
					b.ReportMetric(float64(unsafeRuns), "unsafe/120")
				}
			}
		})
	}
}

// BenchmarkSweepThroughput compares the sweep engine's pooled
// device-reuse path against the lockstep-batched and legacy
// rebuild-per-run paths on the DMA bench, reporting runs per second and
// heap allocations per run. All paths run single-worker so the
// comparison isolates per-run setup cost rather than scheduling, and the
// copy is shortened from the default so that per-word simulation work
// does not drown the setup cost the benchmark exists to measure.
func BenchmarkSweepThroughput(b *testing.B) {
	const sweep = 32
	dmaCfg := apps.DefaultDMAConfig()
	dmaCfg.Words = 1000
	dmaApp := func() (*apps.Bench, error) { return apps.NewDMAApp(dmaCfg) }
	for _, mode := range []struct {
		name    string
		rebuild bool
		batch   int
	}{{"pooled", false, 0}, {"batched", false, 8}, {"rebuild", true, 0}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := experiments.Config{Runs: sweep, BaseSeed: 1, Workers: 1,
				Rebuild: mode.rebuild, Batch: mode.batch}
			var ms0, ms1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&ms0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunMany(cfg, dmaApp, experiments.EaseIO); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			runtime.ReadMemStats(&ms1)
			totalRuns := float64(b.N) * sweep
			b.ReportMetric(totalRuns/b.Elapsed().Seconds(), "runs/s")
			b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/totalRuns, "allocs/run")
		})
	}
}

// BenchmarkCheckThroughput compares the model checker's two replay paths
// on exhaustive runs: checkpointed suffix replay (the default — restore
// a golden-prefix snapshot, simulate only the post-failure suffix)
// against from-boot re-simulation of every point. fig6 is the paper's
// WAR-via-DMA scenario; its single dominant task restarts from its
// beginning after any failure, so the suffix is nearly the whole run and
// the checkpointed win is bounded by the prefix skipped (~1.5×
// asymptotically). weather is a multi-task pipeline whose committed
// prefix stays committed, where suffix replay pays only the interrupted
// task and the gap widens with app length. Single-worker so the ratio
// isolates per-point replay cost rather than scheduling; both paths
// render byte-identical reports.
func BenchmarkCheckThroughput(b *testing.B) {
	cases := []struct {
		app    string
		newApp experiments.AppFactory
	}{
		{"fig6", check.Fig6Bench},
		{"weather", func() (*apps.Bench, error) { return apps.NewWeatherApp(apps.DefaultWeatherConfig()) }},
	}
	for _, tc := range cases {
		for _, fromBoot := range []bool{false, true} {
			name := tc.app + "/checkpointed"
			if fromBoot {
				name = tc.app + "/fromboot"
			}
			b.Run(name, func(b *testing.B) {
				cfg := check.Config{Exhaustive: true, Workers: 1, FromBoot: fromBoot}
				points := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rep, err := check.Run(context.Background(), tc.newApp, experiments.EaseIO, cfg)
					if err != nil {
						b.Fatal(err)
					}
					if !rep.Passed() {
						b.Fatalf("%s diverged:\n%s", tc.app, rep.Render())
					}
					points += rep.Explored
				}
				b.ReportMetric(float64(points)/b.Elapsed().Seconds(), "points/s")
			})
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: one full
// weather-app run per iteration.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench, err := apps.NewWeatherApp(apps.DefaultWeatherConfig())
		if err != nil {
			b.Fatal(err)
		}
		dev := kernel.NewDevice(power.NewTimer(power.DefaultTimerConfig()), int64(i)+1)
		if err := kernel.RunApp(dev, core.New(), bench.App); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSensitivity: the extension sweep — EaseIO's speedup across
// energy-environment harshness.
func BenchmarkSensitivity(b *testing.B) {
	cfg := experiments.DefaultSensitivityConfig()
	cfg.Runs = 60
	for i := 0; i < b.N; i++ {
		points, err := experiments.Sensitivity(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(points[0].Speedup(), "harsh-speedup")
			b.ReportMetric(points[len(points)-1].Speedup(), "mild-speedup")
		}
	}
}

// BenchmarkLoggers: the JustDo logging comparator on the uni-task apps.
func BenchmarkLoggers(b *testing.B) {
	cfg := benchCfg()
	cfg.Runs = 60
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Loggers(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.App == "Single (DMA)" {
					switch r.Runtime {
					case "JustDo":
						b.ReportMetric(ms(r.Cont), "justdo-cont-ms")
						b.ReportMetric(ms(r.Int), "justdo-int-ms")
					case "EaseIO":
						b.ReportMetric(ms(r.Cont), "easeio-cont-ms")
						b.ReportMetric(ms(r.Int), "easeio-int-ms")
					}
				}
			}
		}
	}
}

// BenchmarkDiurnal: completions per synthetic solar day.
func BenchmarkDiurnal(b *testing.B) {
	cfg := experiments.DefaultDiurnalConfig()
	cfg.Runs = 4
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Diurnal(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				switch r.Runtime {
				case "Alpaca":
					b.ReportMetric(r.Completions, "alpaca-completions")
				case "EaseIO":
					b.ReportMetric(r.Completions, "easeio-completions")
				}
			}
		}
	}
}

// --- Micro-benchmarks of the simulator itself ---

// BenchmarkChargeLoop measures the kernel's cost-charging hot path.
func BenchmarkChargeLoop(b *testing.B) {
	dev := kernel.NewDevice(power.Continuous{}, 1)
	ctx := kernelCtxForBench(dev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.ChargeCycles(100)
	}
}

// BenchmarkLEAFirKernel measures the FIR data plane.
func BenchmarkLEAFirKernel(b *testing.B) {
	dev := kernel.NewDevice(power.Continuous{}, 1)
	ctx := kernelCtxForBench(dev)
	for i := 0; i < 287; i++ {
		ctx.WriteLEA(i, uint16(i))
	}
	for i := 0; i < 32; i++ {
		ctx.WriteLEA(320+i, 100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.LEAFir(0, 320, 400, 287, 32)
	}
}

// kernelCtxForBench builds a context on a no-op runtime.
func kernelCtxForBench(dev *kernel.Device) *kernel.Ctx {
	bench, err := apps.NewLEAApp(apps.DefaultLEAConfig())
	if err != nil {
		panic(err)
	}
	rt := core.New()
	if err := rt.Attach(dev, bench.App); err != nil {
		panic(err)
	}
	return &kernel.Ctx{Dev: dev, RT: rt}
}
