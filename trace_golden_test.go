// Golden-file test for the Chrome trace exporter through the public
// facade: a fixed-seed weather run must export byte-identical
// trace_event JSON. The golden file doubles as the format contract —
// any exporter change shows up as a reviewable diff. Rerun with -update
// to accept an intentional one.

package easeio

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateTrace = flag.Bool("update", false, "rewrite the golden files under testdata/")

// TestChromeTraceGoldenWeather pins the exporter output for the
// weather benchmark under EaseIO at seed 1 — the exact run the README's
// observability quickstart produces with easeio-sim -trace.
func TestChromeTraceGoldenWeather(t *testing.T) {
	bench, err := NewWeatherBench(false)
	if err != nil {
		t.Fatal(err)
	}
	buf := &TraceBuffer{}
	if _, err := Run(bench.App, NewEaseIO(), WithSeed(1), WithTracer(buf)); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := WriteChromeTrace(buf, &got); err != nil {
		t.Fatal(err)
	}

	// The export must be a loadable trace regardless of golden drift:
	// valid JSON, the envelope Perfetto expects, a non-empty event array
	// where every event carries the required phase and pid fields.
	var envelope struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(got.Bytes(), &envelope); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if envelope.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want \"ms\"", envelope.DisplayTimeUnit)
	}
	if len(envelope.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}
	for i, ev := range envelope.TraceEvents {
		if ev["ph"] == nil || ev["pid"] == nil {
			t.Fatalf("event %d missing ph/pid: %v", i, ev)
		}
	}

	path := filepath.Join("testdata", "weather_trace.golden.json")
	if *updateTrace {
		if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no golden file %s (run go test . -update): %v", path, err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("trace differs from golden file %s (rerun with -update to accept):\n--- got ---\n%s",
			path, got.String())
	}
}
