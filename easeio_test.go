package easeio

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"easeio/internal/stats"
)

// TestPublicAPIQuickstart exercises the README's quick-start flow end to
// end through the public surface only.
func TestPublicAPIQuickstart(t *testing.T) {
	app := NewApp("hello")
	sensors := NewPeripherals(1)
	temp := app.TimelyIO("Temp", 10*time.Millisecond, true,
		func(e Exec, _ int) uint16 { return sensors.Temp.Sample(e) })
	reading := app.NVInt("reading")
	var done *Task
	app.AddTask("sense", func(e Exec) {
		e.Store(reading, e.CallIO(temp))
		e.Compute(2000)
		e.Next(done)
	})
	done = app.AddTask("done", func(e Exec) { e.Done() })

	res, err := Run(app, NewEaseIO(), WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	if res.App != "hello" || res.Runtime != "EaseIO" {
		t.Errorf("labels: %s/%s", res.App, res.Runtime)
	}
	if res.TaskCommits != 2 {
		t.Errorf("commits = %d", res.TaskCommits)
	}
	if res.OnTime <= 0 || res.TotalEnergy() <= 0 {
		t.Error("no work accounted")
	}
}

func TestRunOptions(t *testing.T) {
	bench, err := NewTempBench()
	if err != nil {
		t.Fatal(err)
	}
	// Continuous power.
	res, err := Run(bench.App, NewAlpaca(), WithContinuousPower())
	if err != nil {
		t.Fatal(err)
	}
	if res.PowerFailures != 0 {
		t.Errorf("failures = %d under continuous power", res.PowerFailures)
	}
	// Custom timer window.
	// The sense task alone takes ~7.7 ms; 8–9 ms windows interrupt the
	// run but still let every task complete.
	cfg := TimerFailureConfig{
		OnMin: 8 * time.Millisecond, OnMax: 9 * time.Millisecond,
		OffMin: time.Millisecond, OffMax: 2 * time.Millisecond,
	}
	bench2, _ := NewTempBench()
	res2, err := Run(bench2.App, NewInK(), WithTimerFailures(cfg), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if res2.PowerFailures == 0 {
		t.Error("a ~10 ms app under 8-9 ms windows must fail at least once")
	}
}

func TestRunRFHarvester(t *testing.T) {
	bench, err := NewFIRBench(false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(bench.App, NewEaseIO(), WithRFHarvester(52))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Error("FIR incorrect under EaseIO")
	}
}

func TestPrebuiltBenches(t *testing.T) {
	builders := map[string]func() (*Bench, error){
		"dma":     NewDMABench,
		"temp":    NewTempBench,
		"lea":     NewLEABench,
		"fir":     func() (*Bench, error) { return NewFIRBench(true) },
		"weather": func() (*Bench, error) { return NewWeatherBench(true) },
		"branch":  NewBranchBench,
	}
	for name, build := range builders {
		b, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := Run(b.App, NewEaseIO(), WithSeed(3))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Correct {
			t.Errorf("%s: incorrect under EaseIO", name)
		}
	}
}

func TestReadVarThroughPublicAPI(t *testing.T) {
	app := NewApp("rv")
	v := app.NVInt("v")
	app.AddTask("t", func(e Exec) {
		e.Store(v, 77)
		e.Done()
	})
	for _, rt := range []Runtime{NewEaseIO(), NewAlpaca(), NewInK()} {
		app2 := NewApp("rv")
		v2 := app2.NVInt("v")
		app2.AddTask("t", func(e Exec) {
			e.Store(v2, 77)
			e.Done()
		})
		if _, err := Run(app2, rt, WithContinuousPower()); err != nil {
			t.Fatal(err)
		}
		if got := ReadVar(rt, v2, 0); got != 77 {
			t.Errorf("%s: ReadVar = %d", rt.Name(), got)
		}
	}
	_ = v
}

// TestConcurrentSessionsSingleFlight is the -race regression for the
// analysis gate: many goroutines opening sessions on the same unanalyzed
// app must funnel through exactly one frontend.Analyze (which mutates
// the shared blueprint) and then run concurrently on private devices.
func TestConcurrentSessionsSingleFlight(t *testing.T) {
	bench, err := NewDMABench()
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	results := make([]*Result, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess, err := NewSession(bench.App, NewEaseIO())
			if err != nil {
				errs[g] = err
				return
			}
			results[g], errs[g] = sess.Run(42)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if !reflect.DeepEqual(results[g], results[0]) {
			t.Errorf("goroutine %d diverged from goroutine 0 on the same seed", g)
		}
	}
}

// opaqueRuntime hides the underlying runtime's Device method: the
// embedded interface promotes only kernel.Hooks, so the wrapper behaves
// like a custom runtime that never opted into DeviceHolder.
type opaqueRuntime struct{ Runtime }

// TestReadVarWithoutDeviceHolder checks the post-run inspection helpers
// degrade gracefully for runtimes outside the rtbase family: no panic,
// just a zero word and a false ok.
func TestReadVarWithoutDeviceHolder(t *testing.T) {
	bench, err := NewDMABench()
	if err != nil {
		t.Fatal(err)
	}
	rt := opaqueRuntime{NewEaseIO()}
	if _, ok := any(rt).(DeviceHolder); ok {
		t.Fatal("test wrapper unexpectedly satisfies DeviceHolder")
	}
	if _, err := Run(bench.App, rt, WithSeed(3)); err != nil {
		t.Fatal(err)
	}
	v := bench.App.Vars[0]
	if got := ReadVar(rt, v, 0); got != 0 {
		t.Errorf("ReadVar through an opaque runtime = %d, want 0", got)
	}
	if _, ok := ReadVarOK(rt, v, 0); ok {
		t.Error("ReadVarOK must report false for a runtime without DeviceHolder")
	}
	// An unattached holder runtime is equally safe: nil device, ok=false.
	if _, ok := ReadVarOK(NewAlpaca(), v, 0); ok {
		t.Error("ReadVarOK must report false before any run attaches a device")
	}
}

// TestSweepFacade drives the multi-seed sweep through the public
// surface: full sweep with progress, then a mid-flight cancellation.
func TestSweepFacade(t *testing.T) {
	var peak atomic.Int64
	cfg := SweepConfig{Runs: 12, BaseSeed: 1, Workers: 3,
		OnProgress: func(done, total int) {
			if total != 12 {
				t.Errorf("progress total = %d", total)
			}
			for {
				cur := peak.Load()
				if int64(done) <= cur || peak.CompareAndSwap(cur, int64(done)) {
					break
				}
			}
		}}
	sum, err := Sweep(context.Background(), NewDMABench, EaseIOKind, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Runs != 12 || sum.CorrectRuns != 12 {
		t.Errorf("sweep summary: %d runs, %d correct", sum.Runs, sum.CorrectRuns)
	}
	if peak.Load() != 12 {
		t.Errorf("progress peaked at %d, want 12", peak.Load())
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cancelled := SweepConfig{Runs: 1000, BaseSeed: 1, Workers: 1,
		OnProgress: func(done, total int) {
			if done == 2 {
				cancel()
			}
		}}
	part, err := Sweep(ctx, NewDMABench, EaseIOKind, cancelled)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep err = %v", err)
	}
	if part.Runs != 2 {
		t.Errorf("cancelled sweep ran %d seeds, want exactly 2", part.Runs)
	}

	if k, err := ParseRuntimeKind("easeio/op."); err != nil || k != EaseIOOpKind {
		t.Errorf("ParseRuntimeKind = %v, %v", k, err)
	}
}

// TestEaseIOBeatsBaselinesOnWastedWork is the headline regression: over a
// seed sweep, EaseIO must waste significantly less work than Alpaca on
// the Single-semantics benchmark.
func TestEaseIOBeatsBaselinesOnWastedWork(t *testing.T) {
	var easeWasted, alpacaWasted time.Duration
	for seed := int64(1); seed <= 40; seed++ {
		be, _ := NewDMABench()
		re, err := Run(be.App, NewEaseIO(), WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		easeWasted += re.Work[stats.Wasted].T

		ba, _ := NewDMABench()
		ra, err := Run(ba.App, NewAlpaca(), WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		alpacaWasted += ra.Work[stats.Wasted].T
	}
	if easeWasted*2 > alpacaWasted {
		t.Errorf("EaseIO wasted %v vs Alpaca %v; expected at least a 2× reduction",
			easeWasted, alpacaWasted)
	}
}

func TestTracerAndGanttThroughFacade(t *testing.T) {
	bench, err := NewTempBench()
	if err != nil {
		t.Fatal(err)
	}
	buf := &TraceBuffer{}
	if _, err := Run(bench.App, NewEaseIO(), WithSeed(5), WithTracer(buf)); err != nil {
		t.Fatal(err)
	}
	if len(buf.Events) == 0 {
		t.Fatal("no trace events")
	}
	var sb strings.Builder
	RenderGantt(buf, 60, &sb)
	if !strings.Contains(sb.String(), "power") {
		t.Error("gantt rendering broken")
	}
	// WithTrace streams to a writer.
	var stream strings.Builder
	bench2, _ := NewTempBench()
	if _, err := Run(bench2.App, NewEaseIO(), WithSeed(5), WithTrace(&stream)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stream.String(), "task-begin") {
		t.Error("trace stream missing events")
	}
}

func TestJustDoThroughFacade(t *testing.T) {
	bench, err := NewDMABench()
	if err != nil {
		t.Fatal(err)
	}
	rt := NewJustDo()
	res, err := Run(bench.App, rt, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Error("JustDo incorrect on the DMA benchmark")
	}
	if res.Runtime != "JustDo" {
		t.Errorf("runtime label = %q", res.Runtime)
	}
	v := bench.App.Vars[2] // checksum
	_ = ReadVar(rt, v, 0)  // must not panic for justdo runtimes
}
