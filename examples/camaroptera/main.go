// Camaroptera-style remote visual sensing (after Nardello et al., the
// batteryless long-range camera the paper cites [40]): capture an image,
// differentiate it against the previous frame, compress the interesting
// rows, and transmit — all intermittently, on harvested RF power.
//
// The pipeline exercises the EaseIO API end to end: a Single capture, a
// frame-difference pass with DMA through LEA-RAM, an in-place compression
// with a WAR dependence that only regional privatization makes safe, and
// a Timely transmission gated on freshness.
//
// Run with:
//
//	go run ./examples/camaroptera [-frames N]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"easeio"
	"easeio/internal/stats"
)

const (
	side   = 16
	pixels = side * side
)

func main() {
	frames := flag.Int("frames", 3, "frames to process")
	flag.Parse()

	p := easeio.NewPeripherals(40)
	app := easeio.NewApp("camaroptera")

	// Persistent state: previous frame, current frame, difference energy
	// and the compressed payload.
	prev := app.NVBuf("prev", pixels)
	cur := app.NVBuf("cur", pixels)
	diff := app.NVInt("diff")
	payload := app.NVBuf("payload", side+2)
	frameCtr := app.NVInt("frame")

	capture := app.IO("Capture", easeio.Single, true, func(e easeio.Exec, _ int) uint16 {
		p.Camera.Capture(e)
		// The "image sensor" returns a per-frame brightness seed; pixel
		// synthesis below derives the frame from it deterministically.
		return uint16(e.Now() / time.Millisecond)
	})
	send := app.TimelyIO("Send", 40*time.Millisecond, false, func(e easeio.Exec, _ int) uint16 {
		p.Radio.Send(e, side+2)
		return 0
	})

	dPrevIn := app.DMA("prev_to_lea")
	dCurIn := app.DMA("cur_to_lea")
	dCurOut := app.DMA("cur_to_prev") // rotates frames: WAR on prev

	var tDiff, tCompress, tSend, tLoop *easeio.Task
	tCap := app.AddTask("capture", func(e easeio.Exec) {
		seed := e.CallIO(capture)
		// Synthesize the captured frame into NV memory (the real device's
		// camera DMA-drains into FRAM; modeled as CPU writes of a
		// deterministic scene).
		for i := 0; i < pixels; i++ {
			e.StoreAt(cur, i, (seed*31+uint16(i)*7)%256)
		}
		e.Compute(4000) // exposure/white-balance post-processing
		e.Next(tDiff)
	})
	_ = tCap
	tDiff = app.AddTask("difference", func(e easeio.Exec) {
		// Frame differencing via LEA: fetch both frames, dot the current
		// frame against itself minus the previous (sum of products as a
		// cheap motion statistic).
		e.DMACopy(dPrevIn, easeio.VarLoc(prev, 0), easeio.LEALoc(0), pixels)
		e.DMACopy(dCurIn, easeio.VarLoc(cur, 0), easeio.LEALoc(512), pixels)
		d := e.LEADot(0, 512, pixels)
		e.Store(diff, uint16(d>>16))
		// Rotate: current frame becomes previous (NV→NV, Single) — a WAR
		// dependence on prev that re-executed fetches would corrupt
		// without EaseIO's regional privatization.
		e.DMACopy(dCurOut, easeio.VarLoc(cur, 0), easeio.VarLoc(prev, 0), pixels)
		e.Next(tCompress)
	})
	tCompress = app.AddTask("compress", func(e easeio.Exec) {
		// Row-mean compression of the current frame, in place over the
		// payload buffer.
		for r := 0; r < side; r++ {
			var sum uint16
			for c := 0; c < side; c++ {
				sum += e.LoadAt(cur, r*side+c)
			}
			e.StoreAt(payload, r, sum/side)
		}
		e.StoreAt(payload, side, e.Load(diff))
		e.StoreAt(payload, side+1, e.Load(frameCtr))
		e.Compute(1500)
		e.Next(tSend)
	})
	tSend = app.AddTask("send", func(e easeio.Exec) {
		e.CallIO(send)
		e.Compute(1200)
		e.Next(tLoop)
	})
	tLoop = app.AddTask("advance", func(e easeio.Exec) {
		n := e.Load(frameCtr) + 1
		e.Store(frameCtr, n)
		if int(n) < *frames {
			e.Next(tCap)
			return
		}
		e.Done()
	})

	rt := easeio.NewEaseIO()
	res, err := easeio.Run(app, rt, easeio.WithSeed(4))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("processed %d frames in %v on-time (%v wall), %d power failures\n",
		easeio.ReadVar(rt, frameCtr, 0), res.OnTime,
		res.WallTime.Round(time.Microsecond), res.PowerFailures)
	fmt.Printf("I/O: %d executed, %d skipped; DMA: %d executed, %d skipped\n",
		res.IOExecs, res.IOSkips, res.DMAExecs, res.DMASkips)
	fmt.Printf("work: app=%v overhead=%v wasted=%v\n",
		res.Work[stats.App].T, res.Work[stats.Overhead].T, res.Work[stats.Wasted].T)
	fmt.Printf("last payload (row means + diff + frame):")
	for i := 0; i < side+2; i++ {
		fmt.Printf(" %d", easeio.ReadVar(rt, payload, i))
	}
	fmt.Println()
}
