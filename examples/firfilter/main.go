// FIR filter under intermittent power: the paper's Figure 12 experiment
// in miniature. The filter's input and output share one non-volatile
// buffer, so re-executed fetch DMAs after the write-back DMA read
// corrupted data. Alpaca and InK produce wrong results on a fraction of
// runs; EaseIO's runtime DMA classification and regional privatization
// keep every run correct.
//
// Run with:
//
//	go run ./examples/firfilter [-runs N]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"easeio"
)

func main() {
	runs := flag.Int("runs", 200, "seeded runs per runtime")
	flag.Parse()

	type maker struct {
		label string
		make  func() easeio.Runtime
	}
	for _, m := range []maker{
		{"EaseIO", easeio.NewEaseIO},
		{"InK", easeio.NewInK},
		{"Alpaca", easeio.NewAlpaca},
	} {
		correct, incorrect := 0, 0
		var totalTime time.Duration
		for seed := int64(1); seed <= int64(*runs); seed++ {
			bench, err := easeio.NewFIRBench(false)
			if err != nil {
				log.Fatal(err)
			}
			res, err := easeio.Run(bench.App, m.make(), easeio.WithSeed(seed))
			if err != nil {
				log.Fatal(err)
			}
			if res.Correct {
				correct++
			} else {
				incorrect++
			}
			totalTime += res.OnTime
		}
		fmt.Printf("%-8s correct %4d  incorrect %4d (%.0f%%)  mean time %v\n",
			m.label, correct, incorrect,
			100*float64(incorrect)/float64(*runs),
			(totalTime / time.Duration(*runs)).Round(10*time.Microsecond))
	}
	fmt.Println("\nIncorrect runs happen when a power failure lands after the")
	fmt.Println("write-back DMA: the re-executed fetch reads the overwritten buffer.")
}
