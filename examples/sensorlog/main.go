// Sensorlog: a from-scratch application using the full EaseIO programming
// surface — an atomic I/O block combining Timely and Always semantics
// (Figure 3), a loop of Single samples with per-iteration lock flags
// (§6), a DMA transfer with runtime classification, and a Single radio
// transmission with declared data dependencies (§3.3.2). It runs under
// the emulated power failures and under the RF energy harvester.
//
// Run with:
//
//	go run ./examples/sensorlog
package main

import (
	"fmt"
	"log"
	"time"

	"easeio"
	"easeio/internal/stats"
)

const samples = 8

func buildApp(p *easeio.Peripherals) (*easeio.App, *easeio.NVVar) {
	app := easeio.NewApp("sensorlog")

	// Environment snapshot: temperature within 10 ms of humidity, taken
	// atomically (the block is Single: once complete, never repeated).
	temp := app.TimelyIO("Temp", 10*time.Millisecond, true,
		func(e easeio.Exec, _ int) uint16 { return p.Temp.Sample(e) })
	humd := app.IO("Humd", easeio.Always, true,
		func(e easeio.Exec, _ int) uint16 { return p.Humidity.Sample(e) })
	senseBlk := app.Block("env", easeio.Single)

	// A burst of pressure samples: each loop iteration has its own lock
	// flag, so completed samples survive power failures.
	pres := app.IO("Pres", easeio.Single, true,
		func(e easeio.Exec, _ int) uint16 { return p.Pressure.Sample(e) }).
		Loop(samples)

	// The transmission depends on the sensing: if a re-boot re-senses,
	// the packet is re-sent with the fresh values.
	send := app.IO("Send", easeio.Single, false,
		func(e easeio.Exec, _ int) uint16 {
			p.Radio.Send(e, samples+2)
			return 0
		}).After(temp, humd)

	logBuf := app.NVBuf("log", samples+2)
	archive := app.NVBuf("archive", samples+2)
	dSave := app.DMA("archive_copy")

	var tBurst, tArchive, tSend, tDone *easeio.Task
	app.AddTask("env", func(e easeio.Exec) {
		var tv, hv uint16
		e.IOBlock(senseBlk, func() {
			tv = e.CallIO(temp)
			hv = e.CallIO(humd)
		})
		e.Compute(2000)
		e.StoreAt(logBuf, 0, tv)
		e.StoreAt(logBuf, 1, hv)
		e.Next(tBurst)
	})
	tBurst = app.AddTask("burst", func(e easeio.Exec) {
		for i := 0; i < samples; i++ {
			e.StoreAt(logBuf, 2+i, e.CallIOAt(pres, i))
		}
		e.Compute(1500)
		e.Next(tArchive)
	})
	tArchive = app.AddTask("archive", func(e easeio.Exec) {
		// NVM→NVM copy: classified Single at run time — never repeated
		// once the following region commits.
		e.DMACopy(dSave, easeio.VarLoc(logBuf, 0), easeio.VarLoc(archive, 0), samples+2)
		e.Compute(2500)
		e.Next(tSend)
	})
	tSend = app.AddTask("send", func(e easeio.Exec) {
		e.CallIO(send)
		e.Compute(2000)
		e.Next(tDone)
	})
	tDone = app.AddTask("done", func(e easeio.Exec) {
		e.Done()
	})
	return app, archive
}

func main() {
	for _, mode := range []struct {
		label string
		opt   easeio.Option
	}{
		{"emulated failures (timer)", easeio.WithSeed(21)},
		{"RF harvester at 52 in", easeio.WithRFHarvester(52)},
		{"RF harvester at 64 in", easeio.WithRFHarvester(64)},
	} {
		p := easeio.NewPeripherals(3)
		app, archive := buildApp(p)
		rt := easeio.NewEaseIO()
		res, err := easeio.Run(app, rt, mode.opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", mode.label)
		fmt.Printf("  time  on=%v wall=%v  failures=%d\n",
			res.OnTime, res.WallTime.Round(time.Microsecond), res.PowerFailures)
		fmt.Printf("  I/O   %d executed, %d skipped, %d redundant; DMA %d/%d skipped\n",
			res.IOExecs, res.IOSkips, res.IORepeats, res.DMASkips, res.DMAExecs+res.DMASkips)
		fmt.Printf("  work  app=%v overhead=%v wasted=%v\n",
			res.Work[stats.App].T, res.Work[stats.Overhead].T, res.Work[stats.Wasted].T)
		fmt.Printf("  archived record:")
		for i := 0; i < samples+2; i++ {
			fmt.Printf(" %d", easeio.ReadVar(rt, archive, i))
		}
		fmt.Println()
		fmt.Println()
	}
}
