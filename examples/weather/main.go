// Weather classifier: the paper's Table 5 experiment in miniature. The
// 11-task DNN application runs with a single shared layer buffer and with
// the conventional double-buffered layers, under the three runtimes.
// With a single buffer, only EaseIO completes correctly under power
// failures; with double buffers everyone is correct but memory use
// doubles.
//
// Run with:
//
//	go run ./examples/weather [-runs N]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"easeio"
)

func main() {
	runs := flag.Int("runs", 100, "seeded runs per configuration")
	flag.Parse()

	type maker struct {
		label string
		make  func() easeio.Runtime
	}
	makers := []maker{
		{"Alpaca", easeio.NewAlpaca},
		{"InK", easeio.NewInK},
		{"EaseIO", easeio.NewEaseIO},
	}

	fmt.Printf("%-8s  %-22s  %-22s\n", "", "double buffer", "single buffer")
	fmt.Printf("%-8s  %-10s %-11s  %-10s %-11s\n", "runtime", "mean time", "correct", "mean time", "correct")
	for _, m := range makers {
		row := fmt.Sprintf("%-8s", m.label)
		for _, double := range []bool{true, false} {
			var total time.Duration
			bad := 0
			for seed := int64(1); seed <= int64(*runs); seed++ {
				bench, err := easeio.NewWeatherBench(double)
				if err != nil {
					log.Fatal(err)
				}
				res, err := easeio.Run(bench.App, m.make(), easeio.WithSeed(seed))
				if err != nil {
					log.Fatal(err)
				}
				total += res.OnTime
				if !res.Correct {
					bad++
				}
			}
			verdict := "all correct"
			if bad > 0 {
				verdict = fmt.Sprintf("%d WRONG", bad)
			}
			row += fmt.Sprintf("  %-10v %-11s",
				(total / time.Duration(*runs)).Round(10*time.Microsecond), verdict)
		}
		fmt.Println(row)
	}
	fmt.Println("\nThe single-buffer DNN overwrites each layer's input in place —")
	fmt.Println("safe only under EaseIO's regional privatization (§4.4).")
}
