// Quickstart: build a two-task sensing application against the EaseIO
// public API and run it on the simulated batteryless device, once under
// continuous power and once under the paper's emulated power failures.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"easeio"
	"easeio/internal/stats"
)

func main() {
	sensors := easeio.NewPeripherals(7)

	app := easeio.NewApp("quickstart")

	// One Timely I/O site: re-executions within 10 ms of the last
	// successful read reuse the stored value instead of re-sensing.
	temp := app.TimelyIO("Temp", 10*time.Millisecond, true,
		func(e easeio.Exec, _ int) uint16 { return sensors.Temp.Sample(e) })

	reading := app.NVInt("reading")
	fahrenheit := app.NVInt("fahrenheit")

	var report *easeio.Task
	app.AddTask("sense", func(e easeio.Exec) {
		v := e.CallIO(temp)
		e.Compute(9000) // post-processing: the window a failure replays
		e.Store(reading, v)
		e.Store(fahrenheit, v*9/5+32)
		e.Next(report)
	})
	report = app.AddTask("report", func(e easeio.Exec) {
		e.Compute(800)
		e.Done()
	})

	for _, mode := range []struct {
		label string
		opts  []easeio.Option
	}{
		{"continuous power", []easeio.Option{easeio.WithContinuousPower()}},
		{"intermittent power", []easeio.Option{easeio.WithSeed(11)}},
	} {
		// A fresh runtime per run: runtimes carry per-device state.
		rt := easeio.NewEaseIO()
		res, err := easeio.Run(app, rt, mode.opts...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", mode.label)
		fmt.Printf("  execution time  %v (wall %v), %d power failures\n",
			res.OnTime, res.WallTime, res.PowerFailures)
		fmt.Printf("  work            app=%v overhead=%v wasted=%v\n",
			res.Work[stats.App].T, res.Work[stats.Overhead].T, res.Work[stats.Wasted].T)
		fmt.Printf("  sensor          %d executions, %d skipped re-executions\n",
			res.IOExecs, res.IOSkips)
		fmt.Printf("  reading         %d °C → %d °F\n\n",
			easeio.ReadVar(rt, reading, 0), easeio.ReadVar(rt, fahrenheit, 0))
	}
}
