# Developer entry points. `make check` is the pre-commit gauntlet — the
# same stages CI runs: gofmt drift, vet, the full suite with a shuffled
# test order, the concurrency-sensitive packages (the sweep engine, the
# core runtimes, the failure-point checker, the kernel's device-reuse
# path, the sweep service and the public facade) under the race
# detector, and a short fuzz smoke over the native fuzz targets.
# `make serve-smoke` boots the easeio-served daemon on a loopback port,
# pushes one sweep job through the HTTP API and verifies the result and
# the metrics endpoint. `make fleet-smoke` runs the distributed-fleet
# self-tests: the easeio-worker kill/restart smoke (coordinator + TCP
# workers, one killed mid-sweep) and the easeio-served HTTP smoke in
# fleet delegation mode. `make fuzz` runs the fuzzers with a longer
# budget for local exploration. `make ci` is the exact superset the CI
# workflow gates merges on (check plus a one-iteration bench smoke).

GO ?= go

# Per-target budget for `make fuzz`; the smoke in `make check` uses a
# fixed short budget so the gauntlet stays fast.
FUZZTIME ?= 30s

# Iterations for `make bench`; CI passes BENCHTIME=1x so the bench suite
# is compiled and exercised without paying for stable numbers.
BENCHTIME ?= 10x

.PHONY: build test race vet fmt fmt-check bench bench-all bench-gate fuzz fuzz-smoke nested-smoke serve-smoke fleet-smoke check ci

build:
	$(GO) build ./...

test:
	$(GO) test -short -shuffle=on ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# Fails (listing the offenders) when any file needs gofmt.
fmt-check:
	@files="$$(gofmt -l .)"; if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; fi

race:
	$(GO) test -race . ./internal/core ./internal/check ./internal/experiments/... ./internal/kernel/... ./internal/service/... ./internal/fleet ./internal/wire ./internal/obs

# -cpu 1 pins the benchmarks to one scheduler proc so numbers compare
# across machines and across runs on shared CI runners (the sweep
# benches are single-worker by design; GOMAXPROCS only adds scheduler
# noise to them).
bench:
	$(GO) test -run '^$$' -bench BenchmarkSweepThroughput -benchtime $(BENCHTIME) -cpu 1 .
	$(GO) test -run '^$$' -bench 'BenchmarkCheckThroughput/fig6' -benchtime $(BENCHTIME) -cpu 1 .
	$(GO) test -run '^$$' -bench 'BenchmarkTrace|BenchmarkRunTraced' -benchtime $(BENCHTIME) -cpu 1 ./internal/kernel
	$(GO) test -run '^$$' -bench BenchmarkFleetSweep -benchtime $(BENCHTIME) -cpu 1 ./internal/fleet

# Every benchmark in the module (slow; `make bench` is the curated cut).
bench-all:
	$(GO) test -run '^$$' -bench . -benchtime $(BENCHTIME) ./...

# The failing bench-regression gate: measure the pooled sweep rate with
# enough iterations for a stable-ish number (200 sweeps ≈ tens of ms of
# measured work — cheap, but far less noisy than the 1x compile smoke)
# and compare against the latest BENCH_sweep.json datapoint. Fails below
# 0.75x the tracked runs/s or above +2 allocs/run. A PR that changes
# sweep performance on purpose must refresh BENCH_sweep.json in the same
# PR (see the refresh command in its description).
bench-gate:
	$(GO) test -run '^$$' -bench 'BenchmarkSweepThroughput/pooled' -benchtime 200x -count 3 -cpu 1 . | tee bench-gate.txt
	$(GO) run ./cmd/easeio-benchdiff -bench bench-gate.txt

fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzParseRuntimeKind$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzClassify$$' -fuzztime $(FUZZTIME) ./internal/dma
	$(GO) test -run '^$$' -fuzz '^FuzzLint$$' -fuzztime $(FUZZTIME) ./internal/frontend
	$(GO) test -run '^$$' -fuzz '^FuzzSchedule$$' -fuzztime $(FUZZTIME) ./internal/power
	$(GO) test -run '^$$' -fuzz '^FuzzNestedScheduleEnumeration$$' -fuzztime $(FUZZTIME) ./internal/check
	$(GO) test -run '^$$' -fuzz '^FuzzCheckpointRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeShard$$' -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeSubtreeShard$$' -fuzztime $(FUZZTIME) ./internal/wire

fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParseRuntimeKind$$' -fuzztime 3s .
	$(GO) test -run '^$$' -fuzz '^FuzzClassify$$' -fuzztime 3s ./internal/dma
	$(GO) test -run '^$$' -fuzz '^FuzzLint$$' -fuzztime 3s ./internal/frontend
	$(GO) test -run '^$$' -fuzz '^FuzzSchedule$$' -fuzztime 3s ./internal/power
	$(GO) test -run '^$$' -fuzz '^FuzzNestedScheduleEnumeration$$' -fuzztime 3s ./internal/check
	$(GO) test -run '^$$' -fuzz '^FuzzCheckpointRoundTrip$$' -fuzztime 3s ./internal/wire
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeShard$$' -fuzztime 3s ./internal/wire
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeSubtreeShard$$' -fuzztime 3s ./internal/wire

# k=2 nested-failure smoke: fig6 must stay divergence-free under
# failure-during-recovery schedules for the runtimes the paper claims
# are crash-consistent (the Alpaca/InK baselines are expected to fail
# at depth 2 — CI captures their full report as an artifact instead).
nested-smoke:
	$(GO) run ./cmd/easeio-check -k 2 -exhaustive -runtime EaseIO
	$(GO) run ./cmd/easeio-check -k 2 -exhaustive -runtime JustDo

serve-smoke:
	$(GO) run ./cmd/easeio-served -smoke

fleet-smoke:
	$(GO) run ./cmd/easeio-worker -smoke
	$(GO) run ./cmd/easeio-served -smoke -fleet -wal $$(mktemp -u /tmp/easeio-fleet-smoke.XXXXXX.wal)

check: build fmt-check vet test race fuzz-smoke nested-smoke serve-smoke fleet-smoke

ci:
	$(MAKE) check
	$(MAKE) bench BENCHTIME=1x
	$(MAKE) bench-gate
