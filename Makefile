# Developer entry points. `make check` is the pre-commit gauntlet: it
# vets the whole module, runs the full suite with a shuffled test order,
# runs the concurrency-sensitive packages (the sweep engine, the core
# runtimes, the failure-point checker, the kernel's device-reuse path,
# the sweep service and the public facade) under the race detector, and
# finishes with a short fuzz smoke over the native fuzz targets.
# `make serve-smoke` boots the easeio-served daemon on a loopback port,
# pushes one sweep job through the HTTP API and verifies the result and
# the metrics endpoint. `make fuzz` runs the fuzzers with a longer
# budget for local exploration.

GO ?= go

# Per-target budget for `make fuzz`; the smoke in `make check` uses a
# fixed short budget so the gauntlet stays fast.
FUZZTIME ?= 30s

.PHONY: build test race vet bench fuzz fuzz-smoke serve-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test -short -shuffle=on ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race . ./internal/core ./internal/check ./internal/experiments/... ./internal/kernel/... ./internal/service/...

bench:
	$(GO) test -run '^$$' -bench BenchmarkSweepThroughput -benchtime 10x .

fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzParseRuntimeKind$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzClassify$$' -fuzztime $(FUZZTIME) ./internal/dma
	$(GO) test -run '^$$' -fuzz '^FuzzLint$$' -fuzztime $(FUZZTIME) ./internal/frontend

fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParseRuntimeKind$$' -fuzztime 3s .
	$(GO) test -run '^$$' -fuzz '^FuzzClassify$$' -fuzztime 3s ./internal/dma
	$(GO) test -run '^$$' -fuzz '^FuzzLint$$' -fuzztime 3s ./internal/frontend

serve-smoke:
	$(GO) run ./cmd/easeio-served -smoke

check: build vet test race fuzz-smoke serve-smoke
