# Developer entry points. `make check` is the pre-commit gauntlet: it
# vets the whole module and runs the concurrency-sensitive packages
# (the sweep engine and the kernel's device-reuse path) under the race
# detector in addition to the plain test suite.

GO ?= go

.PHONY: build test race vet bench check

build:
	$(GO) build ./...

test:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/experiments/... ./internal/kernel/...

bench:
	$(GO) test -run '^$$' -bench BenchmarkSweepThroughput -benchtime 10x .

check: build vet test race
