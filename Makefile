# Developer entry points. `make check` is the pre-commit gauntlet: it
# vets the whole module and runs the concurrency-sensitive packages
# (the sweep engine, the kernel's device-reuse path, the sweep service
# and the public facade) under the race detector in addition to the
# plain test suite. `make serve-smoke` boots the easeio-served daemon
# on a loopback port, pushes one sweep job through the HTTP API and
# verifies the result and the metrics endpoint.

GO ?= go

.PHONY: build test race vet bench serve-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race . ./internal/experiments/... ./internal/kernel/... ./internal/service/...

bench:
	$(GO) test -run '^$$' -bench BenchmarkSweepThroughput -benchtime 10x .

serve-smoke:
	$(GO) run ./cmd/easeio-served -smoke

check: build vet test race serve-smoke
