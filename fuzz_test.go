// Native fuzz target for the facade's runtime-name parser: parsing must
// never panic, must be case-insensitive, and every accepted name must
// round-trip through the kind's canonical String spelling.

package easeio

import (
	"strings"
	"testing"
)

func FuzzParseRuntimeKind(f *testing.F) {
	f.Add("EaseIO")
	f.Add("easeio-op")
	f.Add("EaseIO/Op.")
	f.Add("alpaca")
	f.Add("InK")
	f.Add("JustDo")
	f.Add("")
	f.Add("quickrecall")
	f.Add("EASEIO/OP.")
	f.Fuzz(func(t *testing.T, s string) {
		kind, err := ParseRuntimeKind(s)
		swapped, errSwapped := ParseRuntimeKind(flipCase(s))
		if (err == nil) != (errSwapped == nil) || (err == nil && kind != swapped) {
			t.Errorf("case sensitivity: ParseRuntimeKind(%q) = (%v, %v) but flipped case gives (%v, %v)",
				s, kind, err, swapped, errSwapped)
		}
		if err != nil {
			return
		}
		back, err2 := ParseRuntimeKind(kind.String())
		if err2 != nil {
			t.Fatalf("canonical name %q of accepted input %q does not parse: %v",
				kind.String(), s, err2)
		}
		if back != kind {
			t.Errorf("round trip: %q -> %v -> %q -> %v", s, kind, kind.String(), back)
		}
	})
}

// flipCase swaps ASCII letter case, a distinct string for any input with
// letters — the parser must not care.
func flipCase(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z':
			return r - 'a' + 'A'
		case r >= 'A' && r <= 'Z':
			return r - 'A' + 'a'
		}
		return r
	}, s)
}
