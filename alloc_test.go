// Steady-state allocation pins for the pooled hot paths. The dense-ID
// refactor sized every per-run structure once at attach from the frozen
// program tables; these tests keep the per-run paths allocation-free so
// a regression (a map sneaking back in, an unguarded trace call boxing
// its varargs, a snapshot dropping its buffer reuse) fails loudly
// instead of shaving sweep throughput quietly.
package easeio

import (
	"testing"

	"easeio/internal/apps"
	"easeio/internal/experiments"
	"easeio/internal/kernel"
)

// TestPooledRunZeroAlloc pins zero heap allocations per steady-state
// pooled sweep run: after the first run attaches the runtime and the
// second settles lazily-created scratch, Session.Run must reset and
// re-execute entirely in place for every runtime.
func TestPooledRunZeroAlloc(t *testing.T) {
	cfg := apps.DefaultDMAConfig()
	cfg.Words = 100
	for _, kind := range []experiments.RuntimeKind{
		experiments.EaseIO, experiments.Alpaca, experiments.InK, experiments.JustDo,
	} {
		bench, err := apps.NewDMAApp(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rt := experiments.NewRuntime(kind)
		sess := kernel.NewSession(rt, bench.App, experiments.TimerSupply())
		if _, ok := rt.(kernel.Resetter); !ok {
			t.Fatalf("%s: pooled path requires a Resetter runtime", rt.Name())
		}
		seed := int64(0)
		run := func() {
			seed++
			if _, err := sess.Run(seed); err != nil {
				t.Fatal(err)
			}
		}
		run() // attach
		run() // settle lazily-created scratch (device ctx, reader, memo)
		if avg := testing.AllocsPerRun(20, run); avg > 0 {
			t.Errorf("%s: steady-state pooled run allocates %.1f times, want 0", rt.Name(), avg)
		}
	}
}

// TestBatchRunZeroAlloc extends the pooled pin to the lockstep batch:
// after the first batch attaches and the second settles lazy scratch,
// BatchSession.Run must advance and fold all K devices without a single
// heap allocation per call.
func TestBatchRunZeroAlloc(t *testing.T) {
	cfg := apps.DefaultDMAConfig()
	cfg.Words = 100
	const k = 4
	for _, kind := range []experiments.RuntimeKind{
		experiments.EaseIO, experiments.Alpaca, experiments.InK, experiments.JustDo,
	} {
		sessions := make([]*kernel.Session, k)
		var name string
		for i := range sessions {
			bench, err := apps.NewDMAApp(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rt := experiments.NewRuntime(kind)
			name = rt.Name()
			sessions[i] = kernel.NewSession(rt, bench.App, experiments.TimerSupply())
		}
		batch := kernel.NewBatchSession(sessions...)
		seeds := make([]int64, k)
		seed := int64(0)
		run := func() {
			for i := range seeds {
				seed++
				seeds[i] = seed
			}
			_, errs := batch.Run(seeds)
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
		}
		run() // attach
		run() // settle lazily-created scratch
		if avg := testing.AllocsPerRun(20, run); avg > 0 {
			t.Errorf("%s: steady-state batch run allocates %.1f times, want 0", name, avg)
		}
	}
}

// TestCheckpointSnapshotZeroAlloc pins zero allocations per recycled
// device checkpoint: SnapshotInto with a reused checkpoint must be pure
// copies into existing buffers — the failure-point checker takes one
// per candidate failure point, thousands per checked run.
func TestCheckpointSnapshotZeroAlloc(t *testing.T) {
	cfg := apps.DefaultDMAConfig()
	cfg.Words = 100
	bench, err := apps.NewDMAApp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := kernel.NewSession(experiments.NewRuntime(experiments.EaseIO), bench.App, experiments.TimerSupply())
	if _, err := sess.Run(1); err != nil {
		t.Fatal(err)
	}
	dev := sess.Device()
	cp := dev.Snapshot() // sizes the buffers
	if avg := testing.AllocsPerRun(20, func() { cp = dev.SnapshotInto(cp) }); avg > 0 {
		t.Errorf("recycled SnapshotInto allocates %.1f times, want 0", avg)
	}
}
