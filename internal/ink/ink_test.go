package ink

import (
	"testing"
	"time"

	"easeio/internal/frontend"
	"easeio/internal/kernel"
	"easeio/internal/mem"
	"easeio/internal/power"
	"easeio/internal/task"
)

func analyzed(t *testing.T, a *task.App) *task.App {
	t.Helper()
	if err := frontend.Analyze(a); err != nil {
		t.Fatal(err)
	}
	return a
}

func run(t *testing.T, a *task.App, supply power.Supply) (*kernel.Device, *Runtime) {
	t.Helper()
	dev := kernel.NewDevice(supply, 1)
	rt := New()
	if err := kernel.RunApp(dev, rt, a); err != nil {
		t.Fatal(err)
	}
	return dev, rt
}

// TestDoubleBufferIsolation: an interrupted task must leave committed
// state untouched — writes land in the shadow buffer until the flip.
func TestDoubleBufferIsolation(t *testing.T) {
	a := task.NewApp("iso")
	x := a.NVInt("x").WithInit([]uint16{5})
	var fin *task.Task
	a.AddTask("w", func(e task.Exec) {
		e.Store(x, 99)
		e.Compute(6000)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)

	dev, rt := run(t, a, power.NewSchedule(3*time.Millisecond))
	if dev.Run.PowerFailures != 1 {
		t.Fatalf("failures = %d", dev.Run.PowerFailures)
	}
	if got := kernel.ReadVar(dev, rt, x, 0); got != 99 {
		t.Errorf("final x = %d", got)
	}
}

// TestReadOwnWrite: within a task, a read after a write must observe the
// written (shadow) value.
func TestReadOwnWrite(t *testing.T) {
	a := task.NewApp("rw")
	x := a.NVInt("x").WithInit([]uint16{1})
	seen := a.NVInt("seen")
	var fin *task.Task
	a.AddTask("t", func(e task.Exec) {
		e.Store(x, 2)
		e.Store(seen, e.Load(x))
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)
	dev, rt := run(t, a, power.Continuous{})
	if got := kernel.ReadVar(dev, rt, seen, 0); got != 2 {
		t.Errorf("read-own-write = %d, want 2", got)
	}
	_ = dev
}

// TestPartialVariableWritePreserved: writing one word of a buffer must
// keep the other words (copy-on-first-write).
func TestPartialVariableWritePreserved(t *testing.T) {
	a := task.NewApp("partial")
	buf := a.NVBuf("buf", 4).WithInit([]uint16{10, 20, 30, 40})
	var fin *task.Task
	a.AddTask("t", func(e task.Exec) {
		e.StoreAt(buf, 2, 99)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)
	dev, rt := run(t, a, power.Continuous{})
	want := []uint16{10, 20, 99, 40}
	for i, w := range want {
		if got := kernel.ReadVar(dev, rt, buf, i); got != w {
			t.Errorf("buf[%d] = %d, want %d", i, got, w)
		}
	}
	_ = dev
}

// TestWARThroughRestart: like Alpaca, the committed value is read again
// on re-execution, so increments are exactly-once per commit.
func TestWARThroughRestart(t *testing.T) {
	a := task.NewApp("war")
	x := a.NVInt("x")
	var fin *task.Task
	a.AddTask("inc", func(e task.Exec) {
		e.Store(x, e.Load(x)+1)
		e.Compute(6000)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)
	dev, rt := run(t, a, power.NewSchedule(2*time.Millisecond, 4*time.Millisecond))
	if dev.Run.PowerFailures != 2 {
		t.Fatalf("failures = %d", dev.Run.PowerFailures)
	}
	if got := kernel.ReadVar(dev, rt, x, 0); got != 1 {
		t.Errorf("x = %d, want exactly 1 despite re-executions", got)
	}
}

// TestFlipAtomicity: sweep failure points; multi-variable commits must be
// all-or-nothing.
func TestFlipAtomicity(t *testing.T) {
	a := task.NewApp("flip")
	x := a.NVInt("x")
	y := a.NVInt("y")
	var fin *task.Task
	a.AddTask("t", func(e task.Exec) {
		e.Store(x, 1)
		e.Compute(300)
		e.Store(y, 1)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)
	for at := 50 * time.Microsecond; at < time.Millisecond; at += 50 * time.Microsecond {
		dev, rt := run(t, a, power.NewSchedule(at))
		gx := kernel.ReadVar(dev, rt, x, 0)
		gy := kernel.ReadVar(dev, rt, y, 0)
		if gx != 1 || gy != 1 {
			t.Fatalf("failure@%v: x=%d y=%d (torn commit)", at, gx, gy)
		}
	}
}

// TestDMAWritesActiveCopy: DMA targets the committed (active) copy, so a
// task that CPU-writes the same variable after the DMA loses the DMA data
// at the flip — InK's variant of the DMA-oblivion problem.
func TestDMAWritesActiveCopy(t *testing.T) {
	a := task.NewApp("dmaink")
	src := a.NVConst("src", []uint16{77})
	dst := a.NVBuf("dst", 2)
	d := a.DMA("d")
	var fin *task.Task
	a.AddTask("t", func(e task.Exec) {
		e.StoreAt(dst, 1, 5)                                      // CPU write → shadow copy
		e.DMACopy(d, task.VarLoc(src, 0), task.VarLoc(dst, 0), 1) // DMA → active copy
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)
	dev, rt := run(t, a, power.Continuous{})
	// The flip installs the shadow (with the CPU write) as active; the
	// DMA's word, written to the old active copy, is lost.
	if got := kernel.ReadVar(dev, rt, dst, 0); got == 77 {
		t.Errorf("dst[0] = %d; expected the DMA-oblivion artifact (0)", got)
	}
	if got := kernel.ReadVar(dev, rt, dst, 1); got != 5 {
		t.Errorf("dst[1] = %d, want 5", got)
	}
	_ = dev
}

// TestShadowFootprint: InK must allocate roughly twice the variable
// footprint (Table 6's FRAM column).
func TestShadowFootprint(t *testing.T) {
	a := task.NewApp("foot")
	a.NVBuf("big", 512)
	var fin *task.Task
	a.AddTask("t", func(e task.Exec) { e.Next(fin) })
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)
	dev, _ := run(t, a, power.Continuous{})
	ink := dev.Mem.OwnerWords(mem.FRAM, "InK")
	if ink < 512 {
		t.Errorf("InK metadata = %d words, want ≥ 512 (shadow buffer)", ink)
	}
}
