// Package ink implements the InK baseline runtime (Yildirim et al. —
// SenSys 2018), the second state-of-the-art system the paper compares
// against.
//
// InK keeps task-shared state consistent with double buffering: every
// variable has two FRAM copies and a persistent index word selecting the
// committed ("active") one. A task's first write to a variable copies the
// active buffer into the shadow, further accesses go to the shadow, and
// the task transition flips the index words — a cheap, failure-atomic
// commit. An interrupted task leaves the active copies untouched.
//
// Like Alpaca, InK re-executes all peripheral I/O and all DMA transfers on
// every re-attempt, and DMA writes bypass the double buffering (they hit
// whichever copy is active at transfer time), so WAR bugs through DMA
// survive (Table 1).
//
// Simplification note: the real InK is a *reactive* kernel — task threads
// activated by events and scheduled by priority. The paper's benchmarks
// exercise it as a sequential task chain (Table 3), which is the part
// modeled here; the event scheduler adds no behaviour the evaluation
// measures.
package ink

import (
	"time"

	"easeio/internal/kernel"
	"easeio/internal/mcu"
	"easeio/internal/mem"
	"easeio/internal/rtbase"
	"easeio/internal/task"
	"easeio/internal/units"
)

// Runtime is one per-run InK instance. All state lives in flat slices
// indexed by the program's dense variable IDs; the per-attempt dirty set
// is epoch-stamped so clearing it is a single counter bump.
type Runtime struct {
	rtbase.Base

	shadow []mem.Addr // second buffer, by variable ID
	index  []mem.Addr // persistent index word, by variable ID
	// dirtyE stamps variables written (shadowed) this attempt: dirty iff
	// the stamp equals epoch.
	dirtyE []uint32
	epoch  uint32
	// flips is the reusable commit scratch buffer.
	flips []*task.NVVar
	cur   *task.Task
}

// New returns a fresh InK runtime.
func New() *Runtime { return &Runtime{} }

var _ kernel.Hooks = (*Runtime)(nil)

// Name implements kernel.Hooks.
func (r *Runtime) Name() string { return "InK" }

// Attach implements kernel.Hooks: every task-shared variable gets a shadow
// buffer and an index word — the double-buffer footprint that makes InK's
// FRAM usage the largest in Table 6.
func (r *Runtime) Attach(dev *kernel.Device, app *task.App) error {
	if err := r.Init(dev, app, "InK"); err != nil {
		return err
	}
	r.shadow = make([]mem.Addr, len(app.Vars))
	r.index = make([]mem.Addr, len(app.Vars))
	r.dirtyE = make([]uint32, len(app.Vars))
	r.epoch = 1 // zero stamps in the fresh slice never match
	for i, v := range app.Vars {
		r.shadow[i] = dev.Mem.Alloc(mem.FRAM, "InK", "shadow:"+v.Name, v.Words)
		r.index[i] = dev.Mem.Alloc(mem.FRAM, "InK", "index:"+v.Name, 1)
	}
	return nil
}

// bumpEpoch empties the dirty set in O(1); on uint32 wraparound the
// stamps are flushed so ancient epochs cannot collide.
func (r *Runtime) bumpEpoch() {
	r.epoch++
	if r.epoch == 0 {
		clear(r.dirtyE)
		r.epoch = 1
	}
}

var _ kernel.Resetter = (*Runtime)(nil)

// Reset implements kernel.Resetter. The zeroed index words already select
// the master copies, which rtbase rewrites to their initial values; the
// shadow buffers start unwritten, exactly as after Attach.
func (r *Runtime) Reset(dev *kernel.Device) error {
	r.ResetRun(dev)
	r.bumpEpoch()
	r.cur = nil
	return nil
}

var _ kernel.SnapshotterInto = (*Runtime)(nil)

// SnapshotState implements kernel.Snapshotter. InK's double-buffer index
// words live in FRAM (captured by the device snapshot); the dirty map and
// current task are per-attempt and rebuilt by OnBoot/BeginTask.
func (r *Runtime) SnapshotState() any { return r.SnapshotBaseInto(nil) }

// SnapshotStateInto implements kernel.SnapshotterInto.
func (r *Runtime) SnapshotStateInto(prev any) any {
	p, _ := prev.(*rtbase.BaseState)
	return r.SnapshotBaseInto(p)
}

// RestoreState implements kernel.Snapshotter.
func (r *Runtime) RestoreState(dev *kernel.Device, state any) {
	r.RestoreBase(dev, *state.(*rtbase.BaseState))
	r.bumpEpoch()
	r.cur = nil
}

// activeAddr returns the committed copy's address (index word 0 = master,
// 1 = shadow buffer).
func (r *Runtime) activeAddr(v *task.NVVar) mem.Addr {
	if r.Dev.Mem.Read(r.index[v.ID]) == 0 {
		return r.MasterAddr(v)
	}
	return r.shadow[v.ID]
}

// inactiveAddr returns the working copy's address.
func (r *Runtime) inactiveAddr(v *task.NVVar) mem.Addr {
	if r.Dev.Mem.Read(r.index[v.ID]) == 0 {
		return r.shadow[v.ID]
	}
	return r.MasterAddr(v)
}

// OnBoot implements kernel.Hooks.
func (r *Runtime) OnBoot(c *kernel.Ctx) {
	r.LoadBoot(c)
	r.bumpEpoch()
}

// CurrentTask implements kernel.Hooks.
func (r *Runtime) CurrentTask() *task.Task { return r.Current() }

// BeginTask implements kernel.Hooks: InK defers its copying to the first
// write of each variable, so task entry is cheap.
func (r *Runtime) BeginTask(c *kernel.Ctx, t *task.Task) {
	r.bumpEpoch()
	r.cur = t
}

// Transition implements kernel.Hooks: flip the index word of every dirty
// variable. The flips are charged first and applied pseudo-atomically with
// the task-pointer update (see rtbase).
func (r *Runtime) Transition(c *kernel.Ctx, next *task.Task) {
	r.flips = r.flips[:0]
	if r.cur != nil {
		for _, v := range r.Meta(r.cur).Writes {
			if r.dirtyE[v.ID] == r.epoch {
				c.ChargeMemAccess(mem.FRAM, true, true)
				r.flips = append(r.flips, v)
			}
		}
	}
	r.CommitTransition(c, next, func() {
		for _, v := range r.flips {
			idx := r.index[v.ID]
			r.Dev.Mem.Write(idx, 1-r.Dev.Mem.Read(idx))
		}
	})
	r.bumpEpoch()
}

// Load implements kernel.Hooks: reads hit the working copy if this attempt
// wrote the variable, otherwise the committed copy. The index lookup costs
// one extra FRAM read — InK's per-access overhead.
func (r *Runtime) Load(c *kernel.Ctx, v *task.NVVar, i int) uint16 {
	c.ChargeMemAccess(mem.FRAM, false, true) // index word
	c.ChargeMemAccess(mem.FRAM, false, false)
	a := r.activeAddr(v)
	if r.dirtyE[v.ID] == r.epoch {
		a = r.inactiveAddr(v)
	}
	return r.Dev.Mem.Read(a.Add(i))
}

// LoadRun implements kernel.BulkLoader: the sum of words [off, off+n) of
// v, charged exactly like n successive Load calls — each a two-slice
// bundle (index-word read booked as overhead, data read as useful). The
// working-copy decision is constant across a pure load run (loads never
// dirty a variable), so the failure-free prefix of whole bundles is
// charged with one bulk add per ledger bucket and read through one view;
// the per-word tail reproduces the exact failure slice, including a
// failure landing between a bundle's index and data charges.
func (r *Runtime) LoadRun(c *kernel.Ctx, v *task.NVVar, off, n int) uint16 {
	wdt := mcu.Cycles(mcu.FRAMReadCycles)
	free, ok := c.BulkFree(n, 2*wdt)
	if !ok {
		free = 0
	}
	var s uint16
	if free > 0 {
		dt := time.Duration(free) * wdt
		e := units.Energy(free) * mcu.FRAMReadEnergy
		c.BulkCharge(dt, e, true)  // index-word reads
		c.BulkCharge(dt, e, false) // data reads
		a := r.activeAddr(v)
		if r.dirtyE[v.ID] == r.epoch {
			a = r.inactiveAddr(v)
		}
		view := r.Dev.Mem.View(a.Add(off), free)
		for j := 0; j < free; j++ {
			s += view.At(j)
		}
	}
	for j := free; j < n; j++ {
		s += r.Load(c, v, off+j)
	}
	return s
}

// Store implements kernel.Hooks: the first write to a variable copies the
// committed buffer into the working buffer (so partially-written variables
// keep their untouched words), then the write lands on the working copy.
func (r *Runtime) Store(c *kernel.Ctx, v *task.NVVar, i int, val uint16) {
	c.ChargeMemAccess(mem.FRAM, false, true) // index word
	if r.dirtyE[v.ID] != r.epoch {
		c.ChargeOverheadCycles(int64(v.Words) * mcu.PrivatizeWordCycles)
		src, dst := r.activeAddr(v), r.inactiveAddr(v)
		for w := 0; w < v.Words; w++ {
			r.Dev.Mem.Write(dst.Add(w), r.Dev.Mem.Read(src.Add(w)))
		}
		r.dirtyE[v.ID] = r.epoch
	}
	c.ChargeMemAccess(mem.FRAM, true, false)
	r.Dev.Mem.Write(r.inactiveAddr(v).Add(i), val)
}

// AddrOf implements kernel.Hooks: the DMA controller is configured with
// the committed copy's address — it knows nothing of InK's buffers.
func (r *Runtime) AddrOf(v *task.NVVar) mem.Addr { return r.activeAddr(v) }

// CallIO implements kernel.Hooks: InK always (re-)executes peripherals.
func (r *Runtime) CallIO(c *kernel.Ctx, s *task.IOSite, idx int) uint16 {
	return r.ExecIO(c, s, idx)
}

// IOBlock implements kernel.Hooks: no block semantics.
func (r *Runtime) IOBlock(c *kernel.Ctx, b *task.IOBlock, body func()) { body() }

// DMACopy implements kernel.Hooks.
func (r *Runtime) DMACopy(c *kernel.Ctx, d *task.DMASite, src, dst task.Loc, words int) {
	r.ExecDMA(c, d, c.ResolveLoc(src), c.ResolveLoc(dst), words)
}
