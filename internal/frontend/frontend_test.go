package frontend

import (
	"testing"
	"time"

	"easeio/internal/task"
)

// buildTestApp assembles a task exercising every analysis feature:
// variable accesses before/after DMAs, WAR dependences, I/O blocks with
// nesting, and loop sites.
func buildTestApp(t *testing.T) (*task.App, map[string]any) {
	t.Helper()
	a := task.NewApp("analysis")
	x := a.NVInt("x")
	y := a.NVBuf("y", 8)
	z := a.NVInt("z")

	s1 := a.IO("s1", task.Single, true, func(task.Exec, int) uint16 { return 1 })
	s2 := a.TimelyIO("s2", 10*time.Millisecond, true, func(task.Exec, int) uint16 { return 2 })
	s3 := a.IO("s3", task.Always, false, func(task.Exec, int) uint16 { return 0 }).After(s1)
	loopSite := a.IO("loop", task.Single, true, func(task.Exec, int) uint16 { return 3 }).Loop(4)

	outer := a.Block("outer", task.Single)
	inner := a.TimelyBlock("inner", 5*time.Millisecond)

	d1 := a.DMA("d1")
	d2 := a.DMA("d2").AfterIO(s2)

	var t2 *task.Task
	t1 := a.AddTask("t1", func(e task.Exec) {
		_ = e.Load(x)      // read x (region 0)
		e.Store(x, 1)      // write after read: WAR on x
		_ = e.LoadAt(y, 2) // read y[2]
		e.IOBlock(outer, func() {
			_ = e.CallIO(s1)
			e.IOBlock(inner, func() {
				_ = e.CallIO(s2)
			})
		})
		e.CallIO(s3)
		e.DMACopy(d1, task.VarLoc(y, 0), task.VarLoc(z, 0), 1)
		e.StoreAt(y, 5, 7) // write y[5] (region 1)
		e.DMACopy(d2, task.VarLoc(z, 0), task.VarLoc(y, 0), 1)
		_ = e.Load(z) // read z (region 2)
		for i := 0; i < 4; i++ {
			_ = e.CallIOAt(loopSite, i)
		}
		e.Next(t2)
	})
	t2 = a.AddTask("t2", func(e task.Exec) {
		e.Store(z, 9) // write-only: no WAR
		e.Done()
	})
	_ = t1
	return a, map[string]any{
		"x": x, "y": y, "z": z,
		"s1": s1, "s2": s2, "s3": s3, "loop": loopSite,
		"outer": outer, "inner": inner, "d1": d1, "d2": d2,
	}
}

func TestAnalyzeStructure(t *testing.T) {
	a, refs := buildTestApp(t)
	if err := Analyze(a); err != nil {
		t.Fatal(err)
	}
	m1 := a.Tasks[0].Meta
	if !m1.Analyzed {
		t.Fatal("task 1 not analyzed")
	}

	// Sites recorded in first-encounter order.
	if len(m1.Sites) != 4 {
		t.Fatalf("sites = %d, want 4", len(m1.Sites))
	}
	if m1.Sites[0] != refs["s1"] || m1.Sites[3] != refs["loop"] {
		t.Error("site order wrong")
	}

	// Blocks and nesting.
	outer := refs["outer"].(*task.IOBlock)
	inner := refs["inner"].(*task.IOBlock)
	if len(m1.Blocks) != 2 {
		t.Fatalf("blocks = %d", len(m1.Blocks))
	}
	if len(outer.Members) != 1 || outer.Members[0] != refs["s1"] {
		t.Errorf("outer members: %v", outer.Members)
	}
	if len(outer.SubBlocks) != 1 || outer.SubBlocks[0] != inner {
		t.Errorf("outer sub-blocks: %v", outer.SubBlocks)
	}
	if len(inner.Members) != 1 || inner.Members[0] != refs["s2"] {
		t.Errorf("inner members: %v", inner.Members)
	}

	// WAR at Alpaca's variable granularity: x (read word 0, then written)
	// and y (read y[2] in region 0, written y[5] in region 1). z is
	// written only by DMA, which the CPU-level WAR analysis cannot see.
	if len(m1.WAR) != 2 || m1.WAR[0] != refs["x"] || m1.WAR[1] != refs["y"] {
		t.Errorf("WAR = %v", varNames(m1.WAR))
	}

	// Regions: 2 DMAs → 3 regions, with EndDMA markers.
	if len(m1.Regions) != 3 {
		t.Fatalf("regions = %d, want 3", len(m1.Regions))
	}
	if m1.Regions[0].EndDMA != refs["d1"] || m1.Regions[1].EndDMA != refs["d2"] ||
		m1.Regions[2].EndDMA != nil {
		t.Error("region boundaries wrong")
	}
	// Region 0 privatizes x (words 0..0) and y[2..2].
	r0 := m1.Regions[0]
	if !r0.HasVar(refs["x"].(*task.NVVar)) || !r0.HasVar(refs["y"].(*task.NVVar)) {
		t.Errorf("region 0 vars: %+v", r0.Vars)
	}
	for _, rv := range r0.Vars {
		if rv.Var == refs["y"] && (rv.Lo != 2 || rv.Hi != 2) {
			t.Errorf("region 0 y range = [%d,%d], want [2,2]", rv.Lo, rv.Hi)
		}
	}
	// Region 1 privatizes y[5..5]; region 2 privatizes z.
	r1, r2 := m1.Regions[1], m1.Regions[2]
	if !r1.HasVar(refs["y"].(*task.NVVar)) || r1.HasVar(refs["x"].(*task.NVVar)) {
		t.Errorf("region 1 vars: %+v", r1.Vars)
	}
	if !r2.HasVar(refs["z"].(*task.NVVar)) {
		t.Errorf("region 2 vars: %+v", r2.Vars)
	}

	// Task 2: single region, write-only z.
	m2 := a.Tasks[1].Meta
	if len(m2.Regions) != 1 || len(m2.WAR) != 0 {
		t.Errorf("t2 meta: regions=%d war=%d", len(m2.Regions), len(m2.WAR))
	}
	if len(m2.Writes) != 1 || m2.Writes[0] != refs["z"] {
		t.Errorf("t2 writes: %v", varNames(m2.Writes))
	}
}

func varNames(vs []*task.NVVar) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Name
	}
	return out
}

func TestAnalyzeIdempotent(t *testing.T) {
	a, refs := buildTestApp(t)
	if err := Analyze(a); err != nil {
		t.Fatal(err)
	}
	outer := refs["outer"].(*task.IOBlock)
	n := len(outer.Members)
	if err := Analyze(a); err != nil {
		t.Fatal(err)
	}
	if len(outer.Members) != n {
		t.Errorf("membership duplicated on re-analysis: %d vs %d", len(outer.Members), n)
	}
	if len(a.Tasks[0].Meta.Regions) != 3 {
		t.Errorf("regions duplicated: %d", len(a.Tasks[0].Meta.Regions))
	}
}

func TestAnalyzeHints(t *testing.T) {
	a := task.NewApp("hints")
	v := a.NVBuf("hidden", 4)
	a.AddTask("t", func(e task.Exec) { e.Done() }).Touches(v)
	if err := Analyze(a); err != nil {
		t.Fatal(err)
	}
	m := a.Tasks[0].Meta
	if len(m.Regions) != 1 || !m.Regions[0].HasVar(v) {
		t.Fatal("hint variable not in region")
	}
	rv := m.Regions[0].Vars[0]
	if rv.Lo != 0 || rv.Hi != 3 {
		t.Errorf("hint range = [%d,%d], want whole variable", rv.Lo, rv.Hi)
	}
	if len(m.WAR) != 1 {
		t.Error("hints must be conservative: read+write implies WAR")
	}
}

func TestAnalyzeTransitiveDependencies(t *testing.T) {
	a := task.NewApp("deps")
	s1 := a.IO("a", task.Single, true, func(task.Exec, int) uint16 { return 0 })
	s2 := a.IO("b", task.Single, true, func(task.Exec, int) uint16 { return 0 }).After(s1)
	s3 := a.IO("c", task.Single, false, func(task.Exec, int) uint16 { return 0 }).After(s2)
	a.AddTask("t", func(e task.Exec) {
		e.CallIO(s1)
		e.CallIO(s2)
		e.CallIO(s3)
		e.Done()
	})
	if err := Analyze(a); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range s3.DependsOn {
		if d == s1 {
			found = true
		}
	}
	if !found {
		t.Error("transitive dependency c→a not closed")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	// Task that never transitions.
	a := task.NewApp("stuck")
	a.AddTask("t", func(e task.Exec) {})
	if err := Analyze(a); err == nil {
		t.Error("expected error for missing transition")
	}

	// DMA site reused within a task.
	b := task.NewApp("dupdma")
	d := b.DMA("d")
	v := b.NVBuf("v", 4)
	b.AddTask("t", func(e task.Exec) {
		e.DMACopy(d, task.VarLoc(v, 0), task.VarLoc(v, 2), 1)
		e.DMACopy(d, task.VarLoc(v, 0), task.VarLoc(v, 2), 1)
		e.Done()
	})
	if err := Analyze(b); err == nil {
		t.Error("expected error for duplicated DMA site")
	}

	// Recursive block.
	c := task.NewApp("recblock")
	blk := c.Block("b", task.Single)
	c.AddTask("t", func(e task.Exec) {
		e.IOBlock(blk, func() {
			e.IOBlock(blk, func() {})
		})
		e.Done()
	})
	if err := Analyze(c); err == nil {
		t.Error("expected error for recursive block")
	}
}

// TestAnalysisRunsSiteBodies checks that variable accesses inside I/O
// functions are recorded (the recorder executes site bodies).
func TestAnalysisRunsSiteBodies(t *testing.T) {
	a := task.NewApp("sitebody")
	v := a.NVInt("insite")
	s := a.IO("s", task.Single, true, func(e task.Exec, _ int) uint16 {
		return e.Load(v)
	})
	a.AddTask("t", func(e task.Exec) {
		e.CallIO(s)
		e.Done()
	})
	if err := Analyze(a); err != nil {
		t.Fatal(err)
	}
	m := a.Tasks[0].Meta
	if len(m.Reads) != 1 || m.Reads[0] != v {
		t.Error("read inside I/O function not recorded")
	}
}

// TestProtectDMADests: a Single DMA whose destination overlaps a range an
// earlier region privatized must have that destination privatized in its
// completion region (the Figure 6 rule) — and a destination untouched by
// earlier regions must NOT be (the common write-back pattern stays cheap).
func TestProtectDMADests(t *testing.T) {
	a := task.NewApp("protect")
	src := a.NVBuf("src", 4)
	dst := a.NVBuf("dst", 4)
	clean := a.NVBuf("clean", 4)
	d1 := a.DMA("clobbered")
	d2 := a.DMA("untouched")
	a.AddTask("t", func(e task.Exec) {
		_ = e.Load(dst) // region 0 privatizes dst[0] (read stability)
		e.DMACopy(d1, task.VarLoc(src, 0), task.VarLoc(dst, 0), 4)
		e.Compute(100)
		e.DMACopy(d2, task.VarLoc(src, 0), task.VarLoc(clean, 0), 4)
		e.Done()
	})
	if err := Analyze(a); err != nil {
		t.Fatal(err)
	}
	m := a.Tasks[0].Meta
	if len(m.Regions) != 3 {
		t.Fatalf("regions = %d", len(m.Regions))
	}
	// Region 1 (after d1) must privatize dst[0..3].
	found := false
	for _, rv := range m.Regions[1].Vars {
		if rv.Var == dst && rv.Lo == 0 && rv.Hi == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("region 1 must protect the clobber-prone DMA destination: %+v", m.Regions[1].Vars)
	}
	// Region 2 (after d2) must NOT privatize clean (nothing earlier
	// touches it).
	if m.Regions[2].HasVar(clean) {
		t.Errorf("region 2 needlessly privatizes an untouched destination: %+v", m.Regions[2].Vars)
	}
}
