// Package frontend is the EaseIO compiler front-end's equivalent in this
// reproduction.
//
// The paper implements a Clang/LibTooling source-to-source pass (§4.5)
// that walks each task's AST to (a) create lock flags and control blocks
// for every _call_IO, (b) detect data dependencies between I/O calls and
// DMA copies, (c) extract non-volatile variable accesses, and (d) split
// tasks into privatization regions at DMA sites. What the *runtime*
// consumes is not the AST but the metadata this pass produces. Here we
// produce the same metadata by executing each task body once against a
// recording implementation of task.Exec — an "analysis run" — instead of
// walking C syntax. For the straight-line task bodies of the paper's
// benchmarks the recorded trace covers the whole body; tasks with
// data-dependent branches can declare additional touched variables via
// Task hints (see Touches), mirroring how a conservative static analysis
// would widen the sets.
package frontend

import (
	"fmt"
	"math/rand"
	"time"

	"easeio/internal/lazyrand"
	"easeio/internal/task"
	"easeio/internal/units"
)

// Analyze runs the compiler front-end over the app exactly once: it
// computes per-task metadata, fills in I/O block membership, and freezes
// the result onto the app as a task.Program. A second call on an analyzed
// app returns immediately — the frozen program is the cache — so building
// many runtime instances from one blueprint pays the analysis cost once.
func Analyze(app *task.App) error {
	if app.Program() != nil {
		return nil
	}
	if err := app.Validate(); err != nil {
		return err
	}
	// Reset block membership; it is rebuilt below.
	for _, b := range app.Blks {
		b.Members = nil
		b.SubBlocks = nil
	}
	metas := make([]*task.TaskMeta, len(app.Tasks))
	for i, t := range app.Tasks {
		m, err := analyzeTask(app, t)
		if err != nil {
			return fmt.Errorf("frontend: task %q: %w", t.Name, err)
		}
		metas[i] = m
	}
	completeDependencies(app)
	_, err := task.FreezeProgram(app, metas)
	return err
}

// newAnalysisRand seeds the deterministic randomness analysis runs hand
// to task bodies that ask for it.
func newAnalysisRand() *rand.Rand { return rand.New(lazyrand.New(1)) }

func analyzeTask(app *task.App, t *task.Task) (*task.TaskMeta, error) {
	rec := &recorder{
		app:  app,
		meta: &task.TaskMeta{Analyzed: true},
		rng:  newAnalysisRand(),
		seen: map[*task.NVVar]*varState{},
	}
	rec.openRegion(nil)

	if err := rec.run(t); err != nil {
		return nil, err
	}
	if !rec.transitioned {
		return nil, fmt.Errorf("body returned without Next/Done")
	}

	// Close the last region, protect clobber-prone DMA destinations, and
	// attach hint variables everywhere (whole range: a conservative
	// static analysis could not narrow them).
	rec.meta.Regions[len(rec.meta.Regions)-1].EndDMA = nil
	rec.protectDMADests()
	for _, v := range t.Hints {
		rec.noteVarRange(v, true, true, 0, v.Words-1)
		for _, r := range rec.meta.Regions {
			if !r.HasVar(v) {
				r.Vars = append(r.Vars, task.RegionVar{Var: v, Lo: 0, Hi: v.Words - 1})
			}
		}
	}
	rec.finishSets()
	return rec.meta, nil
}

// run executes the body, converting recorder panics into errors.
func (r *recorder) run(t *task.Task) (err error) {
	defer func() {
		if p := recover(); p != nil {
			if ae, ok := p.(analysisError); ok {
				err = fmt.Errorf("%s", string(ae))
				return
			}
			panic(p)
		}
	}()
	t.Body(r)
	return nil
}

type analysisError string

// varState tracks one variable's access pattern within a task.
type varState struct {
	read, written bool
	// war is set when a read was observed before any write — Alpaca's
	// privatization condition.
	war bool
}

// recorder implements task.Exec by recording instead of executing.
type recorder struct {
	app  *task.App
	meta *task.TaskMeta
	rng  *rand.Rand

	seen         map[*task.NVVar]*varState
	blockStack   []*task.IOBlock
	transitioned bool
	dmaDsts      []dmaDst
}

// dmaDst remembers a DMA's non-volatile destination range and the region
// the transfer ends (its completion region is region+1).
type dmaDst struct {
	region int
	v      *task.NVVar
	lo, hi int
}

var _ task.Exec = (*recorder)(nil)

func (r *recorder) openRegion(endOfPrev *task.DMASite) {
	if n := len(r.meta.Regions); n > 0 {
		r.meta.Regions[n-1].EndDMA = endOfPrev
	}
	r.meta.Regions = append(r.meta.Regions, &task.RegionMeta{Index: len(r.meta.Regions)})
}

func (r *recorder) region() *task.RegionMeta {
	return r.meta.Regions[len(r.meta.Regions)-1]
}

// noteVarRange records a CPU access to words [lo, hi] of v.
func (r *recorder) noteVarRange(v *task.NVVar, read, write bool, lo, hi int) {
	st := r.seen[v]
	if st == nil {
		st = &varState{}
		r.seen[v] = st
	}
	if read {
		st.read = true
	}
	if write {
		if st.read && !st.written {
			st.war = true
		}
		st.written = true
	}
	reg := r.region()
	for i := range reg.Vars {
		if reg.Vars[i].Var == v {
			if lo < reg.Vars[i].Lo {
				reg.Vars[i].Lo = lo
			}
			if hi > reg.Vars[i].Hi {
				reg.Vars[i].Hi = hi
			}
			return
		}
	}
	reg.Vars = append(reg.Vars, task.RegionVar{Var: v, Lo: lo, Hi: hi})
}

func (r *recorder) finishSets() {
	// Deterministic order: iterate the app's variable list.
	for _, v := range r.app.Vars {
		st := r.seen[v]
		if st == nil {
			continue
		}
		if st.read {
			r.meta.Reads = append(r.meta.Reads, v)
		}
		if st.written {
			r.meta.Writes = append(r.meta.Writes, v)
		}
		if st.war {
			r.meta.WAR = append(r.meta.WAR, v)
		}
	}
}

// --- task.Exec implementation (recording) ---

// Compute implements task.Exec (no-op during analysis).
func (r *recorder) Compute(int64) {}

// Load implements task.Exec.
func (r *recorder) Load(v *task.NVVar) uint16 { return r.LoadAt(v, 0) }

// Store implements task.Exec.
func (r *recorder) Store(v *task.NVVar, val uint16) { r.StoreAt(v, 0, val) }

// LoadAt implements task.Exec.
func (r *recorder) LoadAt(v *task.NVVar, i int) uint16 {
	r.noteVarRange(v, true, false, i, i)
	if i >= 0 && i < len(v.Init) {
		return v.Init[i]
	}
	return 0
}

// StoreAt implements task.Exec.
func (r *recorder) StoreAt(v *task.NVVar, i int, val uint16) {
	_ = val
	r.noteVarRange(v, false, true, i, i)
}

// CallIO implements task.Exec: records the site, associates it with the
// innermost open block, and runs the site's body so that variable accesses
// inside I/O functions are captured too.
func (r *recorder) CallIO(s *task.IOSite) uint16 { return r.CallIOAt(s, 0) }

// CallIOAt implements task.Exec.
func (r *recorder) CallIOAt(s *task.IOSite, idx int) uint16 {
	if !containsSite(r.meta.Sites, s) {
		r.meta.Sites = append(r.meta.Sites, s)
	}
	if n := len(r.blockStack); n > 0 {
		b := r.blockStack[n-1]
		if !containsSite(b.Members, s) {
			b.Members = append(b.Members, s)
		}
	}
	return s.Exec(r, idx)
}

// IOBlock implements task.Exec.
func (r *recorder) IOBlock(b *task.IOBlock, body func()) {
	for _, open := range r.blockStack {
		if open == b {
			panic(analysisError(fmt.Sprintf("I/O block %q opened recursively", b.Name)))
		}
	}
	if !containsBlock(r.meta.Blocks, b) {
		r.meta.Blocks = append(r.meta.Blocks, b)
	}
	if n := len(r.blockStack); n > 0 {
		parent := r.blockStack[n-1]
		if !containsBlock(parent.SubBlocks, b) {
			parent.SubBlocks = append(parent.SubBlocks, b)
		}
	}
	r.blockStack = append(r.blockStack, b)
	body()
	r.blockStack = r.blockStack[:len(r.blockStack)-1]
}

// DMACopy implements task.Exec: records the site, closes the current
// privatization region and opens the next one. Only CPU accesses populate
// the regions' privatization sets — DMA effects are protected by the
// Single/Private/Always classification itself, and the new region's flag
// doubles as the DMA's completion marker (§4.4, Figure 6).
func (r *recorder) DMACopy(d *task.DMASite, src, dst task.Loc, words int) {
	_ = src
	if containsDMA(r.meta.DMAs, d) {
		panic(analysisError(fmt.Sprintf(
			"DMA site %q invoked more than once in a task; declare one site per copy", d.Name)))
	}
	r.meta.DMAs = append(r.meta.DMAs, d)
	if dst.Var != nil && words > 0 {
		r.dmaDsts = append(r.dmaDsts, dmaDst{
			region: len(r.meta.Regions) - 1,
			v:      dst.Var, lo: dst.Off, hi: dst.Off + words - 1,
		})
	}
	r.openRegion(d)
}

// protectDMADests implements the Figure 6 rule precisely: a Single DMA's
// non-volatile destination must be privatized in the region *after* the
// transfer whenever an earlier region privatizes an overlapping range —
// otherwise that earlier region's recovery would clobber the skipped
// DMA's output on re-execution. Destinations untouched by earlier regions
// need no copy (the common fetch/compute/write-back pattern stays cheap).
func (r *recorder) protectDMADests() {
	for _, dd := range r.dmaDsts {
		clobbered := false
		for ri := 0; ri <= dd.region && !clobbered; ri++ {
			for _, rv := range r.meta.Regions[ri].Vars {
				if rv.Var == dd.v && rv.Lo <= dd.hi && dd.lo <= rv.Hi {
					clobbered = true
					break
				}
			}
		}
		if !clobbered {
			continue
		}
		reg := r.meta.Regions[dd.region+1]
		merged := false
		for i := range reg.Vars {
			if reg.Vars[i].Var == dd.v {
				if dd.lo < reg.Vars[i].Lo {
					reg.Vars[i].Lo = dd.lo
				}
				if dd.hi > reg.Vars[i].Hi {
					reg.Vars[i].Hi = dd.hi
				}
				merged = true
				break
			}
		}
		if !merged {
			reg.Vars = append(reg.Vars, task.RegionVar{Var: dd.v, Lo: dd.lo, Hi: dd.hi})
		}
	}
}

// LEAFir implements task.Exec (LEA-RAM is volatile; nothing to record).
func (r *recorder) LEAFir(_, _, _, _, _ int) {}

// LEARelu implements task.Exec.
func (r *recorder) LEARelu(_, _ int) {}

// LEADot implements task.Exec.
func (r *recorder) LEADot(_, _, _ int) int32 { return 0 }

// LEAMacs implements task.Exec.
func (r *recorder) LEAMacs(int64) {}

// ReadLEA implements task.Exec.
func (r *recorder) ReadLEA(int) uint16 { return 0 }

// WriteLEA implements task.Exec.
func (r *recorder) WriteLEA(int, uint16) {}

// Op implements task.Exec (no cost during analysis).
func (r *recorder) Op(time.Duration, units.Energy) {}

// Now implements task.Exec.
func (r *recorder) Now() time.Duration { return 0 }

// Rand implements task.Exec.
func (r *recorder) Rand() *rand.Rand { return r.rng }

// Next implements task.Exec.
func (r *recorder) Next(*task.Task) { r.transitioned = true }

// Done implements task.Exec.
func (r *recorder) Done() { r.transitioned = true }

// completeDependencies closes the declared I/O→I/O dependencies
// transitively and validates Exclude annotations.
func completeDependencies(app *task.App) {
	// Transitive closure over site dependencies (small graphs; cubic is
	// fine).
	changed := true
	for changed {
		changed = false
		for _, s := range app.Sites {
			for _, d := range s.DependsOn {
				for _, dd := range d.DependsOn {
					if dd != s && !containsSite(s.DependsOn, dd) {
						s.DependsOn = append(s.DependsOn, dd)
						changed = true
					}
				}
			}
		}
	}
}

func containsSite(list []*task.IOSite, s *task.IOSite) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

func containsBlock(list []*task.IOBlock, b *task.IOBlock) bool {
	for _, x := range list {
		if x == b {
			return true
		}
	}
	return false
}

func containsDMA(list []*task.DMASite, d *task.DMASite) bool {
	for _, x := range list {
		if x == d {
			return true
		}
	}
	return false
}
