// Static checks the paper leaves to the programmer or defers to future
// work (§6): Exclude safety, privatization-buffer sizing, dead
// annotations, and asynchronous-operation hazards. Lint runs on an
// analyzed application and returns findings; the severity Error marks
// programs the runtime would execute unsafely.

package frontend

import (
	"fmt"
	"sort"

	"easeio/internal/mem"
	"easeio/internal/task"
)

// Severity grades a lint finding.
type Severity int

const (
	// Warning marks suspicious but safe constructs (dead annotations,
	// wasted privatization).
	Warning Severity = iota
	// Error marks constructs the runtime executes unsafely or rejects at
	// run time (unsafe Exclude, privatization-buffer overflow).
	Error
)

// String names the severity.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Finding is one lint diagnostic.
type Finding struct {
	Severity Severity
	// Code is a stable identifier (e.g. "exclude-mutable-source").
	Code string
	// Subject names the site/DMA/block involved.
	Subject string
	Message string
}

// String renders the finding.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s: %s", f.Severity, f.Code, f.Subject, f.Message)
}

// LintConfig parameterizes the checks.
type LintConfig struct {
	// PrivBufWords is the configured DMA privatization buffer size; 0
	// disables the sizing check.
	PrivBufWords int
}

// Lint runs the static checks over an analyzed application. It records
// each task's DMA endpoints with a dedicated analysis pass, so the app
// must be analyzable (Analyze is invoked if needed).
func Lint(app *task.App, cfg LintConfig) ([]Finding, error) {
	for _, t := range app.Tasks {
		if !t.Meta.Analyzed {
			if err := Analyze(app); err != nil {
				return nil, err
			}
			break
		}
	}
	var out []Finding
	transfers, err := collectTransfers(app)
	if err != nil {
		return nil, err
	}

	out = append(out, lintExclude(app, transfers)...)
	out = append(out, lintPrivBuf(app, transfers, cfg)...)
	out = append(out, lintDeadAnnotations(app)...)
	out = append(out, lintSingleWithoutValue(app)...)

	sort.SliceStable(out, func(i, j int) bool { return out[i].Severity > out[j].Severity })
	return out, nil
}

// transfer records one DMA invocation observed by an analysis run.
type transfer struct {
	taskID int
	d      *task.DMASite
	src    task.Loc
	dst    task.Loc
	words  int
}

// transferRecorder wraps the analysis recorder to capture DMA endpoints.
type transferRecorder struct {
	recorder
	taskID int
	out    *[]transfer
}

// DMACopy overrides the embedded recorder to also capture endpoints.
func (tr *transferRecorder) DMACopy(d *task.DMASite, src, dst task.Loc, words int) {
	*tr.out = append(*tr.out, transfer{taskID: tr.taskID, d: d, src: src, dst: dst, words: words})
	tr.recorder.DMACopy(d, src, dst, words)
}

func collectTransfers(app *task.App) ([]transfer, error) {
	var out []transfer
	for _, t := range app.Tasks {
		tr := &transferRecorder{taskID: t.ID, out: &out}
		tr.recorder = recorder{
			app:  app,
			meta: &task.TaskMeta{},
			rng:  newAnalysisRand(),
			seen: map[*task.NVVar]*varState{},
		}
		tr.recorder.openRegion(nil)
		if err := runBody(&tr.recorder, t, tr); err != nil {
			return nil, fmt.Errorf("frontend: lint pass, task %q: %w", t.Name, err)
		}
	}
	return out, nil
}

// runBody executes a task body against an arbitrary Exec, converting
// analysis panics into errors.
func runBody(rec *recorder, t *task.Task, e task.Exec) (err error) {
	defer func() {
		if p := recover(); p != nil {
			if ae, ok := p.(analysisError); ok {
				err = fmt.Errorf("%s", string(ae))
				return
			}
			panic(p)
		}
	}()
	t.Body(e)
	if !rec.transitioned {
		return fmt.Errorf("body returned without Next/Done")
	}
	return nil
}

// locBank resolves the bank of a DMA endpoint (variables live in FRAM).
func locBank(l task.Loc) mem.Bank {
	if l.Var != nil {
		return mem.FRAM
	}
	return mem.Bank(l.RawBank)
}

// lintExclude: an Exclude annotation on a DMA whose non-volatile source
// is written anywhere in the application is unsafe — the re-executed copy
// can read clobbered data, exactly the WAR bug EaseIO exists to prevent.
func lintExclude(app *task.App, transfers []transfer) []Finding {
	written := map[*task.NVVar]bool{}
	for _, t := range app.Tasks {
		for _, v := range t.Meta.Writes {
			written[v] = true
		}
	}
	for _, tr := range transfers {
		if tr.dst.Var != nil {
			written[tr.dst.Var] = true
		}
	}
	var out []Finding
	for _, tr := range transfers {
		if !tr.d.Exclude || tr.src.Var == nil {
			continue
		}
		switch {
		case written[tr.src.Var]:
			out = append(out, Finding{
				Severity: Error,
				Code:     "exclude-mutable-source",
				Subject:  tr.d.Name,
				Message: fmt.Sprintf("Exclude skips privatization, but source %q is written "+
					"by the application; a re-executed copy can read clobbered data (§4.3)",
					tr.src.Var.Name),
			})
		case !tr.src.Var.Const:
			out = append(out, Finding{
				Severity: Warning,
				Code:     "exclude-unmarked-source",
				Subject:  tr.d.Name,
				Message: fmt.Sprintf("source %q is not declared Const; mark it with NVConst "+
					"to document why Exclude is safe", tr.src.Var.Name),
			})
		}
	}
	return out
}

// lintPrivBuf: the compile-time privatization-buffer sizing check the
// paper plans as future work (§6): the Private-classified transfers of
// each task must fit the shared buffer simultaneously.
func lintPrivBuf(app *task.App, transfers []transfer, cfg LintConfig) []Finding {
	if cfg.PrivBufWords <= 0 {
		return nil
	}
	need := map[int]int{}
	for _, tr := range transfers {
		if tr.d.Exclude {
			continue
		}
		// Private classification: non-volatile source, volatile
		// destination (§4.3 case ii).
		if locBank(tr.src) == mem.FRAM && locBank(tr.dst).Volatile() {
			need[tr.taskID] += tr.words
		}
	}
	var out []Finding
	for _, t := range app.Tasks {
		if n := need[t.ID]; n > cfg.PrivBufWords {
			out = append(out, Finding{
				Severity: Error,
				Code:     "priv-buffer-overflow",
				Subject:  t.Name,
				Message: fmt.Sprintf("task needs %d privatization-buffer words but the "+
					"configuration provides %d; raise Config.PrivBufWords or Exclude "+
					"constant transfers", n, cfg.PrivBufWords),
			})
		}
	}
	return out
}

// lintDeadAnnotations: a Single or Timely site inside a Single block
// never consults its own semantics once the block completes — the paper's
// precedence rules make the inner annotation mostly decorative.
func lintDeadAnnotations(app *task.App) []Finding {
	var out []Finding
	for _, b := range app.Blks {
		if b.Sem != task.Single {
			continue
		}
		for _, s := range b.Members {
			if s.Sem == task.Timely {
				out = append(out, Finding{
					Severity: Warning,
					Code:     "timely-inside-single-block",
					Subject:  s.Name,
					Message: fmt.Sprintf("Timely window inside Single block %q only applies "+
						"until the block first completes; re-executions are then governed by "+
						"the block (§3.3.1)", b.Name),
				})
			}
		}
	}
	return out
}

// lintSingleWithoutValue: a value-returning Single/Timely site whose
// result feeds control flow relies on value privatization; warn when the
// site is declared void but its semantics imply a skipped re-execution
// (nothing to restore is fine — this catches the inverse: Returns sites
// are fully supported — so the check looks for Always sites queried in
// loops, a common mistake).
func lintSingleWithoutValue(app *task.App) []Finding {
	var out []Finding
	for _, s := range app.Sites {
		if s.Instances > 1 && s.Sem == task.Always {
			out = append(out, Finding{
				Severity: Warning,
				Code:     "always-loop-site",
				Subject:  s.Name,
				Message: "an Always site declared with Loop re-executes every iteration " +
					"after every reboot; per-iteration lock flags only help Single/Timely (§6)",
			})
		}
	}
	return out
}
