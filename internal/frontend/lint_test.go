package frontend

import (
	"testing"
	"time"

	"easeio/internal/mem"
	"easeio/internal/task"
)

func findingCodes(fs []Finding) map[string]Severity {
	out := map[string]Severity{}
	for _, f := range fs {
		out[f.Code] = f.Severity
	}
	return out
}

func TestLintExcludeMutableSource(t *testing.T) {
	a := task.NewApp("excl")
	buf := a.NVBuf("buf", 8)
	d := a.DMA("fetch").Excluded()
	var fin *task.Task
	a.AddTask("t", func(e task.Exec) {
		e.Store(buf, 1) // the source is written
		e.DMACopy(d, task.VarLoc(buf, 0), task.RawLoc(uint8(mem.LEARAM), 0), 8)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })

	fs, err := Lint(a, LintConfig{})
	if err != nil {
		t.Fatal(err)
	}
	codes := findingCodes(fs)
	if codes["exclude-mutable-source"] != Error {
		t.Errorf("expected exclude-mutable-source error; got %v", fs)
	}
}

func TestLintExcludeUnmarkedSource(t *testing.T) {
	a := task.NewApp("excl2")
	buf := a.NVBuf("buf", 8) // never written, but not declared Const
	d := a.DMA("fetch").Excluded()
	var fin *task.Task
	a.AddTask("t", func(e task.Exec) {
		e.DMACopy(d, task.VarLoc(buf, 0), task.RawLoc(uint8(mem.LEARAM), 0), 8)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	fs, err := Lint(a, LintConfig{})
	if err != nil {
		t.Fatal(err)
	}
	codes := findingCodes(fs)
	if sev, ok := codes["exclude-unmarked-source"]; !ok || sev != Warning {
		t.Errorf("expected exclude-unmarked-source warning; got %v", fs)
	}
}

func TestLintExcludeConstSourceClean(t *testing.T) {
	a := task.NewApp("excl3")
	coef := a.NVConst("coef", []uint16{1, 2, 3, 4})
	d := a.DMA("fetch").Excluded()
	var fin *task.Task
	a.AddTask("t", func(e task.Exec) {
		e.DMACopy(d, task.VarLoc(coef, 0), task.RawLoc(uint8(mem.LEARAM), 0), 4)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	fs, err := Lint(a, LintConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		if f.Code == "exclude-mutable-source" || f.Code == "exclude-unmarked-source" {
			t.Errorf("const source flagged: %v", f)
		}
	}
}

func TestLintPrivBufferOverflow(t *testing.T) {
	a := task.NewApp("bufsize")
	b1 := a.NVBuf("b1", 80)
	b2 := a.NVBuf("b2", 60)
	d1, d2 := a.DMA("f1"), a.DMA("f2")
	var fin *task.Task
	a.AddTask("big", func(e task.Exec) {
		e.DMACopy(d1, task.VarLoc(b1, 0), task.RawLoc(uint8(mem.LEARAM), 0), 80)
		e.DMACopy(d2, task.VarLoc(b2, 0), task.RawLoc(uint8(mem.LEARAM), 200), 60)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })

	fs, err := Lint(a, LintConfig{PrivBufWords: 100})
	if err != nil {
		t.Fatal(err)
	}
	if findingCodes(fs)["priv-buffer-overflow"] != Error {
		t.Errorf("expected priv-buffer-overflow (needs 140 > 100): %v", fs)
	}

	fs, err = Lint(a, LintConfig{PrivBufWords: 200})
	if err != nil {
		t.Fatal(err)
	}
	if _, bad := findingCodes(fs)["priv-buffer-overflow"]; bad {
		t.Errorf("fitting buffer flagged: %v", fs)
	}
}

func TestLintDeadTimelyInsideSingleBlock(t *testing.T) {
	a := task.NewApp("deadann")
	s := a.TimelyIO("temp", 10*time.Millisecond, true,
		func(task.Exec, int) uint16 { return 0 })
	blk := a.Block("blk", task.Single)
	var fin *task.Task
	a.AddTask("t", func(e task.Exec) {
		e.IOBlock(blk, func() { e.CallIO(s) })
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	fs, err := Lint(a, LintConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := findingCodes(fs)["timely-inside-single-block"]; !ok {
		t.Errorf("expected timely-inside-single-block warning: %v", fs)
	}
}

func TestLintAlwaysLoopSite(t *testing.T) {
	a := task.NewApp("loopalways")
	s := a.IO("s", task.Always, false, func(task.Exec, int) uint16 { return 0 }).Loop(4)
	var fin *task.Task
	a.AddTask("t", func(e task.Exec) {
		for i := 0; i < 4; i++ {
			e.CallIOAt(s, i)
		}
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	fs, err := Lint(a, LintConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := findingCodes(fs)["always-loop-site"]; !ok {
		t.Errorf("expected always-loop-site warning: %v", fs)
	}
}

func TestLintBenchmarksClean(t *testing.T) {
	// The repository's own benchmark apps must pass their lint (errors
	// only; warnings allowed).
	a := task.NewApp("selfcheck")
	coef := a.NVConst("coef", []uint16{1, 2})
	d := a.DMA("fetch").Excluded()
	var fin *task.Task
	a.AddTask("t", func(e task.Exec) {
		e.DMACopy(d, task.VarLoc(coef, 0), task.RawLoc(uint8(mem.LEARAM), 0), 2)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	fs, err := Lint(a, LintConfig{PrivBufWords: 2048})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		if f.Severity == Error {
			t.Errorf("unexpected error finding: %v", f)
		}
		if f.String() == "" {
			t.Error("empty rendering")
		}
	}
}
