// Native fuzz target for the compiler front-end: an arbitrary byte
// program is decoded into a structurally valid blueprint (every value
// clamped into range), then analyzed and linted. Lint must never panic,
// must be deterministic, and every finding must be well-formed. The
// decoder is deliberately total — any byte string yields some app — so
// the fuzzer explores blueprint shapes, not decoder error paths.

package frontend

import (
	"reflect"
	"testing"
	"time"

	"easeio/internal/mem"
	"easeio/internal/task"
)

// progReader decodes fuzz bytes into small bounded integers, yielding
// zeros once exhausted so every input is a complete program.
type progReader struct {
	buf []byte
	pos int
}

func (r *progReader) next() byte {
	if r.pos >= len(r.buf) {
		return 0
	}
	b := r.buf[r.pos]
	r.pos++
	return b
}

// n returns a decoded value in [0, bound).
func (r *progReader) n(bound int) int { return int(r.next()) % bound }

// buildFuzzApp decodes bytes into a blueprint: a handful of variables,
// I/O sites, blocks and DMA sites, then tasks whose bodies execute a
// bounded op sequence against them. All indices and ranges are clamped,
// so construction never panics; what varies is the access structure the
// front-end must analyze.
func buildFuzzApp(prog []byte) *task.App {
	r := &progReader{buf: prog}
	a := task.NewApp("fuzz")

	vars := make([]*task.NVVar, 1+r.n(4))
	for i := range vars {
		vars[i] = a.NVBuf(string(rune('a'+i)), 1+r.n(8))
		if r.n(4) == 0 {
			vars[i].Const = true
		}
	}

	sites := make([]*task.IOSite, r.n(4))
	for i := range sites {
		name := "io" + string(rune('0'+i))
		ret := r.n(2) == 0
		exec := func(task.Exec, int) uint16 { return 7 }
		switch r.n(3) {
		case 0:
			sites[i] = a.IO(name, task.Always, ret, exec)
		case 1:
			sites[i] = a.IO(name, task.Single, ret, exec)
		default:
			sites[i] = a.TimelyIO(name, time.Duration(1+r.n(50))*time.Millisecond, ret, exec)
		}
		if i > 0 && r.n(3) == 0 {
			sites[i].After(sites[i-1])
		}
	}

	var blocks []*task.IOBlock
	if len(sites) > 0 && r.n(2) == 0 {
		if r.n(2) == 0 {
			blocks = append(blocks, a.Block("blk", task.Single))
		} else {
			blocks = append(blocks, a.TimelyBlock("blk", time.Duration(1+r.n(50))*time.Millisecond))
		}
	}

	dmas := make([]*task.DMASite, r.n(3))
	for i := range dmas {
		dmas[i] = a.DMA("dma" + string(rune('0'+i)))
		if r.n(3) == 0 {
			dmas[i].Excluded()
		}
		if len(sites) > 0 && r.n(3) == 0 {
			dmas[i].AfterIO(sites[r.n(len(sites))])
		}
	}

	nTasks := 1 + r.n(3)
	tasks := make([]*task.Task, nTasks)
	for ti := 0; ti < nTasks; ti++ {
		ops := make([]byte, 8)
		for i := range ops {
			ops[i] = r.next()
		}
		last := ti == nTasks-1
		idx := ti
		tasks[ti] = a.AddTask("t"+string(rune('0'+ti)), func(e task.Exec) {
			or := &progReader{buf: ops}
			for i := 0; i < 4; i++ {
				v := vars[or.n(len(vars))]
				switch or.n(6) {
				case 0:
					e.Load(v)
				case 1:
					if !v.Const {
						e.Store(v, uint16(or.n(256)))
					}
				case 2:
					w := or.n(v.Words)
					x := e.LoadAt(v, w)
					if !v.Const {
						e.StoreAt(v, w, x+1)
					}
				case 3:
					if len(sites) > 0 {
						s := sites[or.n(len(sites))]
						if len(blocks) > 0 && or.n(2) == 0 {
							e.IOBlock(blocks[0], func() { e.CallIO(s) })
						} else {
							e.CallIO(s)
						}
					}
				case 4:
					if len(dmas) > 0 {
						// Copy one word between distinct variables, or spill
						// to LEA-RAM when only one variable exists.
						d := dmas[or.n(len(dmas))]
						src := task.VarLoc(v, or.n(v.Words))
						if len(vars) > 1 {
							o := vars[(or.n(len(vars)-1)+1+varIndex(vars, v))%len(vars)]
							if o != v && !o.Const {
								e.DMACopy(d, src, task.VarLoc(o, or.n(o.Words)), 1)
							}
						} else {
							e.DMACopy(d, src, task.RawLoc(uint8(mem.LEARAM), or.n(16)), 1)
						}
					}
				default:
					e.Compute(int64(1 + or.n(500)))
				}
			}
			if last {
				e.Done()
			} else {
				e.Next(tasks[idx+1])
			}
		})
	}
	return a
}

func varIndex(vars []*task.NVVar, v *task.NVVar) int {
	for i, x := range vars {
		if x == v {
			return i
		}
	}
	return 0
}

func FuzzLint(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{3, 7, 0, 2, 1, 1, 2, 0, 3, 4, 4, 4, 5, 0, 1, 2, 250, 128, 9})
	f.Add([]byte{0, 0, 3, 2, 2, 2, 1, 0, 4, 4, 3, 3, 6, 6, 1, 9, 9, 9, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, prog []byte) {
		app := buildFuzzApp(prog)
		cfg := LintConfig{PrivBufWords: 1 + int(uint8(len(prog)))}
		findings, err := Lint(app, cfg)
		if err != nil {
			return // a rejected blueprint is a valid outcome; panics are not
		}
		for _, fd := range findings {
			if fd.Code == "" || fd.Message == "" {
				t.Errorf("malformed finding: %+v", fd)
			}
			if fd.Severity != Warning && fd.Severity != Error {
				t.Errorf("finding with unknown severity: %+v", fd)
			}
		}
		again, err2 := Lint(app, cfg)
		if err2 != nil || !reflect.DeepEqual(findings, again) {
			t.Errorf("lint is not deterministic:\n%v (err %v)\nvs\n%v (err %v)",
				findings, err, again, err2)
		}
	})
}
