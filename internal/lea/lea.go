// Package lea models the MSP430FR5994's Low Energy Accelerator: a vector
// math coprocessor operating on a dedicated 4 KB volatile RAM (LEA-RAM).
//
// The kernels here are the data-plane only — they compute real results on
// int16 fixed-point samples so that the evaluation's correctness checks
// (Figure 12, Table 5) compare actual numbers, not placeholders. Cycle and
// energy costs are charged by the execution kernel before these functions
// run; a power failure therefore aborts a vector command before it
// touches LEA-RAM, matching the command-granularity behaviour of the real
// accelerator.
package lea

import "easeio/internal/mem"

func leaAddr(off int) mem.Addr { return mem.Addr{Bank: mem.LEARAM, Word: off} }

// readS16 reads an int16 sample from LEA-RAM.
func readS16(m *mem.Memory, off int) int16 { return int16(m.Read(leaAddr(off))) }

// writeS16 writes an int16 sample to LEA-RAM.
func writeS16(m *mem.Memory, off int, v int16) { m.Write(leaAddr(off), uint16(v)) }

// sat16 saturates an accumulator to int16, as the LEA's fixed-point
// pipeline does.
func sat16(v int64) int16 {
	switch {
	case v > 32767:
		return 32767
	case v < -32768:
		return -32768
	default:
		return int16(v)
	}
}

// sat32 saturates an accumulator to int32 (the LEA's MAC result width).
func sat32(v int64) int32 {
	switch {
	case v > 2147483647:
		return 2147483647
	case v < -2147483648:
		return -2147483648
	default:
		return int32(v)
	}
}

// Fir computes a direct-form FIR convolution over LEA-RAM:
//
//	out[i] = sat( Σ_{j<taps} coef[j]·in[i+j] >> 15 )  for i ≤ inLen−taps
//
// using Q15 fixed-point coefficients, mirroring the LEA's FIR command.
func Fir(m *mem.Memory, inOff, coefOff, outOff, inLen, taps int) {
	if taps <= 0 || inLen < taps {
		return
	}
	for i := 0; i <= inLen-taps; i++ {
		var acc int64
		for j := 0; j < taps; j++ {
			acc += int64(readS16(m, inOff+i+j)) * int64(readS16(m, coefOff+j))
		}
		writeS16(m, outOff+i, sat16(acc>>15))
	}
}

// FirOutLen returns the number of output samples Fir produces.
func FirOutLen(inLen, taps int) int {
	if taps <= 0 || inLen < taps {
		return 0
	}
	return inLen - taps + 1
}

// Relu clamps n int16 samples at LEA-RAM offset off to be non-negative.
func Relu(m *mem.Memory, off, n int) {
	for i := 0; i < n; i++ {
		if readS16(m, off+i) < 0 {
			writeS16(m, off+i, 0)
		}
	}
}

// Dot returns the int32 dot product of two n-sample int16 vectors in
// LEA-RAM.
func Dot(m *mem.Memory, aOff, bOff, n int) int32 {
	var acc int64
	for i := 0; i < n; i++ {
		acc += int64(readS16(m, aOff+i)) * int64(readS16(m, bOff+i))
	}
	return sat32(acc)
}

// Reference implementations over plain slices, used by the applications to
// compute golden (continuous-power) results without a device.

// FirRef computes the same FIR convolution over plain int16 slices.
func FirRef(in, coef []int16) []int16 {
	taps := len(coef)
	if taps == 0 || len(in) < taps {
		return nil
	}
	out := make([]int16, len(in)-taps+1)
	for i := range out {
		var acc int64
		for j := 0; j < taps; j++ {
			acc += int64(in[i+j]) * int64(coef[j])
		}
		out[i] = sat16(acc >> 15)
	}
	return out
}

// ReluRef clamps a copy of in to be non-negative.
func ReluRef(in []int16) []int16 {
	out := make([]int16, len(in))
	for i, v := range in {
		if v < 0 {
			v = 0
		}
		out[i] = v
	}
	return out
}

// DotRef returns the dot product of two equal-length int16 slices.
func DotRef(a, b []int16) int32 {
	var acc int64
	for i := range a {
		acc += int64(a[i]) * int64(b[i])
	}
	return sat32(acc)
}
