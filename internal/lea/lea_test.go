package lea

import (
	"math/rand"
	"testing"
	"testing/quick"

	"easeio/internal/mem"
)

func loadLEA(m *mem.Memory, off int, data []int16) {
	for i, v := range data {
		m.Write(mem.Addr{Bank: mem.LEARAM, Word: off + i}, uint16(v))
	}
}

func readLEA(m *mem.Memory, off, n int) []int16 {
	out := make([]int16, n)
	for i := range out {
		out[i] = int16(m.Read(mem.Addr{Bank: mem.LEARAM, Word: off + i}))
	}
	return out
}

func TestFirMatchesReference(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		taps := 2 + rng.Intn(15)
		n := taps + rng.Intn(60)
		in := make([]int16, n)
		coef := make([]int16, taps)
		for i := range in {
			in[i] = int16(rng.Intn(8000) - 4000)
		}
		for i := range coef {
			coef[i] = int16(rng.Intn(8000) - 4000)
		}
		m := mem.New()
		loadLEA(m, 0, in)
		loadLEA(m, 200, coef)
		Fir(m, 0, 200, 400, n, taps)
		got := readLEA(m, 400, FirOutLen(n, taps))
		want := FirRef(in, coef)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

func TestFirKnownValues(t *testing.T) {
	// Unity Q15 coefficient (32767) acting as identity (up to the >>15).
	in := []int16{100, -200, 300, -400}
	coef := []int16{32767}
	got := FirRef(in, coef)
	want := []int16{99, -200, 299, -400} // (x·32767)>>15 loses ~1 LSB on positives
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestFirSaturation(t *testing.T) {
	in := []int16{32767, 32767, 32767, 32767}
	coef := []int16{32767, 32767, 32767, 32767}
	got := FirRef(in, coef)
	if len(got) != 1 || got[0] != 32767 {
		t.Errorf("saturating FIR = %v, want [32767]", got)
	}
	neg := FirRef([]int16{-32768, -32768}, []int16{32767, 32767})
	if neg[0] != -32768 {
		t.Errorf("negative saturation = %d", neg[0])
	}
}

func TestFirDegenerate(t *testing.T) {
	m := mem.New()
	Fir(m, 0, 0, 0, 0, 0) // must not panic
	if FirOutLen(5, 10) != 0 {
		t.Error("input shorter than taps yields no output")
	}
	if FirOutLen(10, 10) != 1 {
		t.Error("input equal to taps yields one output")
	}
	if FirRef(nil, nil) != nil {
		t.Error("nil ref inputs yield nil")
	}
}

func TestRelu(t *testing.T) {
	m := mem.New()
	loadLEA(m, 10, []int16{-5, 0, 7, -32768, 32767})
	Relu(m, 10, 5)
	got := readLEA(m, 10, 5)
	want := []int16{0, 0, 7, 0, 32767}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("relu[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	ref := ReluRef([]int16{-5, 0, 7, -32768, 32767})
	for i := range want {
		if ref[i] != want[i] {
			t.Errorf("ReluRef[%d] = %d, want %d", i, ref[i], want[i])
		}
	}
}

func TestDot(t *testing.T) {
	a := []int16{1, 2, 3}
	b := []int16{4, -5, 6}
	want := int32(1*4 - 2*5 + 3*6)
	if got := DotRef(a, b); got != want {
		t.Errorf("DotRef = %d, want %d", got, want)
	}
	m := mem.New()
	loadLEA(m, 0, a)
	loadLEA(m, 100, b)
	if got := Dot(m, 0, 100, 3); got != want {
		t.Errorf("Dot = %d, want %d", got, want)
	}
}

func TestDotMatchesReference(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		a := make([]int16, n)
		b := make([]int16, n)
		for i := range a {
			a[i] = int16(rng.Uint32())
			b[i] = int16(rng.Uint32())
		}
		m := mem.New()
		loadLEA(m, 0, a)
		loadLEA(m, 512, b)
		return Dot(m, 0, 512, n) == DotRef(a, b)
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}
