package timekeeper

import (
	"testing"
	"time"
)

func TestClockAccounting(t *testing.T) {
	c := New()
	c.Boot()
	c.Run(5 * time.Millisecond)
	if c.Now() != 5*time.Millisecond || c.Uptime() != 5*time.Millisecond {
		t.Errorf("after run: now=%v uptime=%v", c.Now(), c.Uptime())
	}
	c.Off(3 * time.Millisecond)
	if c.Now() != 8*time.Millisecond {
		t.Errorf("off must advance wall time: %v", c.Now())
	}
	if c.OnTime() != 5*time.Millisecond {
		t.Errorf("off must not advance on-time: %v", c.OnTime())
	}
	if c.OffTime() != 3*time.Millisecond {
		t.Errorf("off time = %v", c.OffTime())
	}
	c.Boot()
	if c.Uptime() != 0 {
		t.Errorf("boot must reset uptime: %v", c.Uptime())
	}
	if c.Boots() != 2 {
		t.Errorf("boots = %d", c.Boots())
	}
	// Wall time persists across boots — the property Timely semantics
	// depend on.
	if c.Now() != 8*time.Millisecond {
		t.Errorf("boot must not reset wall time: %v", c.Now())
	}
}

func TestClockNegativePanics(t *testing.T) {
	c := New()
	for _, f := range []func(){
		func() { c.Run(-time.Millisecond) },
		func() { c.Off(-time.Millisecond) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on negative duration")
				}
			}()
			f()
		}()
	}
}
