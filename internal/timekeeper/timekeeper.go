// Package timekeeper models the persistent time source EaseIO relies on
// for its Timely re-execution semantics.
//
// Real batteryless devices lose their clocks on power failure; the paper's
// platform adds a persistent timekeeping circuit (de Winkel et al., ASPLOS
// 2020, cited as [18]) that measures off-time so the runtime can tell how
// stale a sensor reading is after a reboot. This model keeps three
// quantities: total wall-clock time (on + off), the current boot's uptime,
// and counts of boots.
package timekeeper

import "time"

// Clock is the device's notion of time. Wall time advances through both
// on-time (Run) and off-time (Off); uptime resets at every reboot.
type Clock struct {
	wall   time.Duration // total simulated wall-clock time
	uptime time.Duration // time since the current boot
	onTime time.Duration // cumulative powered-on time
	boots  int           // number of boots (initial boot included)
}

// New returns a clock at time zero, before the first boot.
func New() *Clock { return &Clock{} }

// Reset returns the clock to time zero in place, for device reuse across
// runs.
func (c *Clock) Reset() { *c = Clock{} }

// State is a copyable snapshot of a clock's position, for device
// checkpointing.
type State struct {
	wall   time.Duration
	uptime time.Duration
	onTime time.Duration
	boots  int
}

// State captures the clock's current position.
func (c *Clock) State() State {
	return State{wall: c.wall, uptime: c.uptime, onTime: c.onTime, boots: c.boots}
}

// Restore rewinds (or advances) the clock to a previously captured
// position.
func (c *Clock) Restore(s State) {
	c.wall, c.uptime, c.onTime, c.boots = s.wall, s.uptime, s.onTime, s.boots
}

// Parts returns the state's components for serialization layers.
func (s State) Parts() (wall, uptime, onTime time.Duration, boots int) {
	return s.wall, s.uptime, s.onTime, s.boots
}

// MakeState reassembles a State from its components — the decoding
// counterpart of Parts.
func MakeState(wall, uptime, onTime time.Duration, boots int) State {
	return State{wall: wall, uptime: uptime, onTime: onTime, boots: boots}
}

// Run advances the clock by d of powered-on execution.
func (c *Clock) Run(d time.Duration) {
	if d < 0 {
		panic("timekeeper: negative run duration")
	}
	c.wall += d
	c.uptime += d
	c.onTime += d
}

// Off advances the clock by d of powered-off (charging) time.
func (c *Clock) Off(d time.Duration) {
	if d < 0 {
		panic("timekeeper: negative off duration")
	}
	c.wall += d
}

// Boot marks a (re)boot: uptime resets, the boot counter increments.
func (c *Clock) Boot() {
	c.uptime = 0
	c.boots++
}

// Now returns total wall-clock time since the simulation started. This is
// the persistent timestamp EaseIO's Timely semantics compare against; it
// survives power failures by construction.
func (c *Clock) Now() time.Duration { return c.wall }

// Uptime returns time since the most recent boot.
func (c *Clock) Uptime() time.Duration { return c.uptime }

// OnTime returns cumulative powered-on time (the "execution time" the
// paper's figures report).
func (c *Clock) OnTime() time.Duration { return c.onTime }

// OffTime returns cumulative powered-off time.
func (c *Clock) OffTime() time.Duration { return c.wall - c.onTime }

// Boots returns how many times the device has booted.
func (c *Clock) Boots() int { return c.boots }
