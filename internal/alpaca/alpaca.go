// Package alpaca implements the Alpaca baseline runtime (Maeng, Colin,
// Lucia — OOPSLA 2017), one of the two state-of-the-art systems the paper
// compares against.
//
// Alpaca gives tasks all-or-nothing semantics by privatizing the
// task-shared variables that carry a write-after-read (WAR) dependence
// inside the task: at task entry each WAR variable is copied into a
// private buffer, CPU accesses are redirected to the private copy, and the
// copy commits back to the master at the task transition. Variables
// without WAR dependences are accessed in place — re-executing their
// writes is idempotent.
//
// Alpaca has no notion of peripheral operations: every I/O call and every
// DMA transfer inside an interrupted task simply re-executes (Table 1).
// DMA writes land on master copies directly, bypassing privatization,
// which is exactly the idempotence-bug surface §2.1.2 describes.
package alpaca

import (
	"time"

	"easeio/internal/kernel"
	"easeio/internal/mcu"
	"easeio/internal/mem"
	"easeio/internal/rtbase"
	"easeio/internal/task"
	"easeio/internal/units"
)

// Runtime is one per-run Alpaca instance. All state is held in flat
// slices indexed by the program's dense task and variable IDs; the
// per-attempt privatization set is epoch-stamped instead of cleared, so
// resetting it is a single counter bump.
type Runtime struct {
	rtbase.Base

	// priv holds the private copy addresses: priv[taskID][i] backs the
	// i-th variable of that task's WAR list.
	priv [][]mem.Addr
	// active/dirty are per-variable epoch stamps: a variable is
	// privatized (resp. written) this attempt iff its stamp equals epoch.
	// Bumping epoch empties both sets at once (volatile state, rebuilt by
	// BeginTask after every boot, mirroring Alpaca's task-entry
	// privatization pass).
	active  []mem.Addr
	activeE []uint32
	dirtyE  []uint32
	epoch   uint32
	// commits is the reusable commit scratch buffer.
	commits []commitEntry
	// curTask is the task being executed (for deterministic commit order).
	curTask *task.Task
}

type commitEntry struct {
	v *task.NVVar
	p mem.Addr
}

// New returns a fresh Alpaca runtime.
func New() *Runtime { return &Runtime{} }

var _ kernel.Hooks = (*Runtime)(nil)

// Name implements kernel.Hooks.
func (r *Runtime) Name() string { return "Alpaca" }

// Attach implements kernel.Hooks: allocates master copies plus one private
// buffer per (task, WAR variable) pair.
func (r *Runtime) Attach(dev *kernel.Device, app *task.App) error {
	if err := r.Init(dev, app, "Alpaca"); err != nil {
		return err
	}
	r.priv = make([][]mem.Addr, len(app.Tasks))
	r.active = make([]mem.Addr, len(app.Vars))
	r.activeE = make([]uint32, len(app.Vars))
	r.dirtyE = make([]uint32, len(app.Vars))
	r.epoch = 1 // zero stamps in the fresh slices never match
	for _, t := range app.Tasks {
		war := r.Meta(t).WAR
		if len(war) == 0 {
			continue
		}
		r.priv[t.ID] = make([]mem.Addr, len(war))
		for i, v := range war {
			r.priv[t.ID][i] = dev.Mem.Alloc(mem.FRAM, "Alpaca", "priv:"+t.Name+":"+v.Name, v.Words)
		}
	}
	return nil
}

// bumpEpoch empties the active and dirty sets in O(1). On the (rare)
// uint32 wraparound the stamp slices are flushed so stale stamps from
// 2^32 attempts ago cannot collide with the restarted epoch.
func (r *Runtime) bumpEpoch() {
	r.epoch++
	if r.epoch == 0 {
		clear(r.activeE)
		clear(r.dirtyE)
		r.epoch = 1
	}
}

var _ kernel.Resetter = (*Runtime)(nil)

// Reset implements kernel.Resetter. Alpaca's only nonzero durable attach
// state is what rtbase owns; the private buffers start unwritten, and the
// volatile privatization maps rebuild at task entry.
func (r *Runtime) Reset(dev *kernel.Device) error {
	r.ResetRun(dev)
	r.bumpEpoch()
	r.curTask = nil
	return nil
}

var _ kernel.SnapshotterInto = (*Runtime)(nil)

// SnapshotState implements kernel.Snapshotter. Alpaca's reboot-surviving
// volatile state is exactly what rtbase tracks; the privatization maps
// and current task are per-attempt and rebuilt by OnBoot/BeginTask.
func (r *Runtime) SnapshotState() any { return r.SnapshotBaseInto(nil) }

// SnapshotStateInto implements kernel.SnapshotterInto.
func (r *Runtime) SnapshotStateInto(prev any) any {
	p, _ := prev.(*rtbase.BaseState)
	return r.SnapshotBaseInto(p)
}

// RestoreState implements kernel.Snapshotter.
func (r *Runtime) RestoreState(dev *kernel.Device, state any) {
	r.RestoreBase(dev, *state.(*rtbase.BaseState))
	r.bumpEpoch()
	r.curTask = nil
}

// OnBoot implements kernel.Hooks.
func (r *Runtime) OnBoot(c *kernel.Ctx) {
	r.LoadBoot(c)
	r.bumpEpoch()
}

// CurrentTask implements kernel.Hooks.
func (r *Runtime) CurrentTask() *task.Task { return r.Current() }

// BeginTask implements kernel.Hooks: privatize the task's WAR variables.
// The copy is charged first and applied afterwards, so an interrupted
// privatization leaves no partial state (the real Alpaca achieves this by
// re-running privatization idempotently from the master copies).
func (r *Runtime) BeginTask(c *kernel.Ctx, t *task.Task) {
	r.bumpEpoch()
	r.curTask = t
	for wi, v := range r.Meta(t).WAR {
		p := r.priv[t.ID][wi]
		c.ChargeOverheadCycles(int64(v.Words) * mcu.PrivatizeWordCycles)
		master := r.MasterAddr(v)
		for i := 0; i < v.Words; i++ {
			r.Dev.Mem.Write(p.Add(i), r.Dev.Mem.Read(master.Add(i)))
		}
		r.active[v.ID] = p
		r.activeE[v.ID] = r.epoch
	}
}

// Transition implements kernel.Hooks: commit dirty private copies back to
// the masters, then advance the task pointer (pseudo-atomically, see
// rtbase).
func (r *Runtime) Transition(c *kernel.Ctx, next *task.Task) {
	r.commits = r.commits[:0]
	if r.curTask != nil {
		for _, v := range r.Meta(r.curTask).WAR {
			if r.activeE[v.ID] != r.epoch || r.dirtyE[v.ID] != r.epoch {
				continue
			}
			c.ChargeOverheadCycles(int64(v.Words) * mcu.CommitWordCycles)
			r.commits = append(r.commits, commitEntry{v, r.active[v.ID]})
		}
	}
	r.CommitTransition(c, next, func() {
		for _, e := range r.commits {
			master := r.MasterAddr(e.v)
			for i := 0; i < e.v.Words; i++ {
				r.Dev.Mem.Write(master.Add(i), r.Dev.Mem.Read(e.p.Add(i)))
			}
		}
	})
	r.bumpEpoch()
}

func (r *Runtime) addrFor(v *task.NVVar) mem.Addr {
	if r.activeE[v.ID] == r.epoch {
		return r.active[v.ID]
	}
	return r.MasterAddr(v)
}

// Load implements kernel.Hooks.
func (r *Runtime) Load(c *kernel.Ctx, v *task.NVVar, i int) uint16 {
	c.ChargeMemAccess(mem.FRAM, false, false)
	return r.Dev.Mem.Read(r.addrFor(v).Add(i))
}

// LoadRun implements kernel.BulkLoader: the sum of words [off, off+n) of
// v, charged exactly like n successive Load calls. The privatization
// decision (addrFor) is constant across a pure load run — loads never
// flip a variable's active epoch — so the failure-free prefix resolves
// the address once, bulk-charges, and reads through one view; the tail
// falls back to per-word Load so a mid-run power failure lands on the
// exact word the unfused loop would have failed on.
func (r *Runtime) LoadRun(c *kernel.Ctx, v *task.NVVar, off, n int) uint16 {
	wdt := mcu.Cycles(mcu.FRAMReadCycles)
	free, ok := c.BulkFree(n, wdt)
	if !ok {
		free = 0
	}
	var s uint16
	if free > 0 {
		c.BulkCharge(time.Duration(free)*wdt, units.Energy(free)*mcu.FRAMReadEnergy, false)
		view := r.Dev.Mem.View(r.addrFor(v).Add(off), free)
		for j := 0; j < free; j++ {
			s += view.At(j)
		}
	}
	for j := free; j < n; j++ {
		s += r.Load(c, v, off+j)
	}
	return s
}

// Store implements kernel.Hooks.
func (r *Runtime) Store(c *kernel.Ctx, v *task.NVVar, i int, val uint16) {
	c.ChargeMemAccess(mem.FRAM, true, false)
	if r.activeE[v.ID] == r.epoch {
		r.dirtyE[v.ID] = r.epoch
	}
	r.Dev.Mem.Write(r.addrFor(v).Add(i), val)
}

// AddrOf implements kernel.Hooks: DMA sees the master copy, never the
// private one — the hardware does not know about Alpaca's buffers.
func (r *Runtime) AddrOf(v *task.NVVar) mem.Addr { return r.MasterAddr(v) }

// CallIO implements kernel.Hooks: Alpaca always (re-)executes peripheral
// operations.
func (r *Runtime) CallIO(c *kernel.Ctx, s *task.IOSite, idx int) uint16 {
	return r.ExecIO(c, s, idx)
}

// IOBlock implements kernel.Hooks: no block semantics; the body just runs.
func (r *Runtime) IOBlock(c *kernel.Ctx, b *task.IOBlock, body func()) { body() }

// DMACopy implements kernel.Hooks: a plain transfer to/from master copies.
func (r *Runtime) DMACopy(c *kernel.Ctx, d *task.DMASite, src, dst task.Loc, words int) {
	r.ExecDMA(c, d, c.ResolveLoc(src), c.ResolveLoc(dst), words)
}
