package alpaca

import (
	"testing"
	"time"

	"easeio/internal/frontend"
	"easeio/internal/kernel"
	"easeio/internal/power"
	"easeio/internal/task"
)

func analyzed(t *testing.T, a *task.App) *task.App {
	t.Helper()
	if err := frontend.Analyze(a); err != nil {
		t.Fatal(err)
	}
	return a
}

func run(t *testing.T, a *task.App, supply power.Supply, seed int64) (*kernel.Device, *Runtime) {
	t.Helper()
	dev := kernel.NewDevice(supply, seed)
	rt := New()
	if err := kernel.RunApp(dev, rt, a); err != nil {
		t.Fatal(err)
	}
	return dev, rt
}

// TestWARPrivatization: a task that reads then writes a variable must see
// its original value on re-execution — Alpaca's core guarantee.
func TestWARPrivatization(t *testing.T) {
	a := task.NewApp("war")
	x := a.NVInt("x").WithInit([]uint16{10})
	sum := a.NVInt("sum")
	var fin *task.Task
	a.AddTask("inc", func(e task.Exec) {
		v := e.Load(x)  // read
		e.Store(x, v+1) // write after read: WAR
		e.Store(sum, v) // records what was read
		e.Compute(6000) // the failure window
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)

	// Fail once at 3 ms: inside the compute, after both stores.
	dev, rt := run(t, a, power.NewSchedule(3*time.Millisecond), 1)
	if dev.Run.PowerFailures != 1 {
		t.Fatalf("failures = %d", dev.Run.PowerFailures)
	}
	// The committed x must be exactly 11: the re-executed read saw 10
	// again because the first attempt's write went to the private copy.
	if got := kernel.ReadVar(dev, rt, x, 0); got != 11 {
		t.Errorf("x = %d, want 11 (WAR privatization)", got)
	}
	if got := kernel.ReadVar(dev, rt, sum, 0); got != 10 {
		t.Errorf("sum = %d, want 10", got)
	}
}

// TestNonWARDirectWrite: write-only variables go straight to the master —
// torn values are visible after failures until the re-execution rewrites
// them (idempotent for deterministic writes).
func TestNonWARDirectWrite(t *testing.T) {
	a := task.NewApp("direct")
	y := a.NVInt("y")
	var fin *task.Task
	a.AddTask("w", func(e task.Exec) {
		e.Store(y, 7)
		e.Compute(4000)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)
	if len(a.Tasks[0].Meta.WAR) != 0 {
		t.Fatal("y must not be WAR")
	}
	dev, rt := run(t, a, power.NewSchedule(2*time.Millisecond), 1)
	if got := kernel.ReadVar(dev, rt, y, 0); got != 7 {
		t.Errorf("y = %d", got)
	}
	if dev.Run.PowerFailures != 1 {
		t.Errorf("failures = %d", dev.Run.PowerFailures)
	}
}

// TestCommitAtomicity: a failure during the commit phase must not leak
// partial master updates.
func TestCommitAtomicity(t *testing.T) {
	a := task.NewApp("commit")
	buf := a.NVBuf("buf", 64).WithInit(make([]uint16, 64))
	var fin *task.Task
	a.AddTask("bump", func(e task.Exec) {
		for i := 0; i < 64; i++ {
			v := e.LoadAt(buf, i)
			e.StoreAt(buf, i, v+1)
		}
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)

	// Sweep failure points across the whole run; whatever the cut, every
	// word must end at exactly 1 (all-or-nothing commit).
	for at := 100 * time.Microsecond; at < 2*time.Millisecond; at += 100 * time.Microsecond {
		dev, rt := run(t, a, power.NewSchedule(at), 1)
		for i := 0; i < 64; i++ {
			if got := kernel.ReadVar(dev, rt, buf, i); got != 1 {
				t.Fatalf("failure@%v: buf[%d] = %d, want 1", at, i, got)
			}
		}
	}
}

// TestIOAlwaysReexecutes: Alpaca has no I/O semantics; a completed
// operation re-executes when its task re-executes.
func TestIOAlwaysReexecutes(t *testing.T) {
	a := task.NewApp("io")
	count := 0
	s := a.IO("op", task.Single, false, func(e task.Exec, _ int) uint16 {
		count++
		e.Op(500*time.Microsecond, 0)
		return 0
	})
	var fin *task.Task
	a.AddTask("t", func(e task.Exec) {
		e.CallIO(s) // Single annotation is ignored by Alpaca
		e.Compute(5000)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)

	dev, _ := run(t, a, power.NewSchedule(2*time.Millisecond, 4*time.Millisecond), 1)
	// Analysis run executes the body once too.
	execs := count - 1
	if execs != 3 {
		t.Errorf("I/O executions = %d, want 3 (1 + 2 failures)", execs)
	}
	if dev.Run.IORepeats != 2 {
		t.Errorf("recorded repeats = %d", dev.Run.IORepeats)
	}
	if dev.Run.IOSkips != 0 {
		t.Errorf("Alpaca cannot skip I/O: %d", dev.Run.IOSkips)
	}
}

// TestDMABypassesPrivatization: the paper's idempotence bug (§2.1.2,
// Figure 2b): two DMAs with a WAR dependence through non-volatile memory
// produce a wrong result when re-executed.
func TestDMABypassesPrivatization(t *testing.T) {
	a := task.NewApp("dmabug")
	b1 := a.NVBuf("b1", 1).WithInit([]uint16{100})
	b2 := a.NVBuf("b2", 1).WithInit([]uint16{200})
	b3 := a.NVBuf("b3", 1)
	d1, d2 := a.DMA("d1"), a.DMA("d2")
	var fin *task.Task
	a.AddTask("dma", func(e task.Exec) {
		e.DMACopy(d1, task.VarLoc(b1, 0), task.VarLoc(b3, 0), 1) // Blk1 → Blk3
		e.DMACopy(d2, task.VarLoc(b2, 0), task.VarLoc(b1, 0), 1) // Blk2 → Blk1
		e.Compute(4000)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)

	// Fail after both DMAs: the re-executed first DMA copies the
	// *modified* Blk1 into Blk3.
	dev, rt := run(t, a, power.NewSchedule(2*time.Millisecond), 1)
	if dev.Run.PowerFailures != 1 {
		t.Fatalf("failures = %d", dev.Run.PowerFailures)
	}
	if got := kernel.ReadVar(dev, rt, b3, 0); got != 200 {
		t.Errorf("b3 = %d; expected the idempotence bug (200), continuous result is 100", got)
	}
}
