// Native fuzz targets for the DMA policy layer: classification must be a
// total function of endpoint volatility (any bank byte, including values
// no real device has), and the transfer validator must reject without
// panicking on arbitrary descriptors.

package dma

import (
	"testing"

	"easeio/internal/mem"
	"easeio/internal/task"
)

func FuzzClassify(f *testing.F) {
	f.Add(uint8(0), uint8(0), 0, 0, 1)     // FRAM→FRAM
	f.Add(uint8(0), uint8(1), 0, 64, 16)   // FRAM→SRAM (Private)
	f.Add(uint8(1), uint8(2), 8, 8, 4)     // SRAM→LEA-RAM (Always)
	f.Add(uint8(2), uint8(0), 100, 0, 512) // LEA-RAM→FRAM (Single)
	f.Add(uint8(255), uint8(7), -1, 3, 0)  // out-of-range banks, bad descriptor
	f.Add(uint8(0), uint8(0), 10, 12, 8)   // same-bank overlap
	f.Fuzz(func(t *testing.T, srcBank, dstBank uint8, srcWord, dstWord, words int) {
		src, dst := mem.Bank(srcBank), mem.Bank(dstBank)

		kind := Classify(src, dst)
		switch kind {
		case task.DMAToNonVolatile, task.DMANonVolatileToVolatile, task.DMAVolatileToVolatile:
		default:
			t.Fatalf("Classify(%v, %v) = %v, not a known kind", src, dst, kind)
		}
		// The classification is the §4.3 volatility table, nothing else.
		switch {
		case !dst.Volatile():
			if kind != task.DMAToNonVolatile {
				t.Errorf("Classify(%v, %v) = %v, want Single (non-volatile destination)", src, dst, kind)
			}
		case !src.Volatile():
			if kind != task.DMANonVolatileToVolatile {
				t.Errorf("Classify(%v, %v) = %v, want Private (NV source, volatile destination)", src, dst, kind)
			}
		default:
			if kind != task.DMAVolatileToVolatile {
				t.Errorf("Classify(%v, %v) = %v, want Always (volatile endpoints)", src, dst, kind)
			}
		}

		srcA := mem.Addr{Bank: src, Word: srcWord}
		dstA := mem.Addr{Bank: dst, Word: dstWord}
		err := Validate(srcA, dstA, words)
		if err != nil {
			return
		}
		// An accepted descriptor satisfies the documented contract.
		if words <= 0 {
			t.Errorf("Validate accepted a %d-word transfer", words)
		}
		if srcWord < 0 || dstWord < 0 {
			t.Errorf("Validate accepted negative offsets (src=%d dst=%d)", srcWord, dstWord)
		}
		if src == dst {
			lo, hi := srcWord, dstWord
			if lo > hi {
				lo, hi = hi, lo
			}
			if hi < lo+words {
				t.Errorf("Validate accepted overlapping same-bank transfer %v->%v (%d words)",
					srcA, dstA, words)
			}
		}
	})
}
