package dma

import (
	"testing"

	"easeio/internal/mem"
	"easeio/internal/task"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		src, dst mem.Bank
		want     task.DMAKind
	}{
		// Destination non-volatile ⇒ Single (§4.3 case i).
		{mem.FRAM, mem.FRAM, task.DMAToNonVolatile},
		{mem.SRAM, mem.FRAM, task.DMAToNonVolatile},
		{mem.LEARAM, mem.FRAM, task.DMAToNonVolatile},
		// NV source, volatile destination ⇒ Private (case ii).
		{mem.FRAM, mem.SRAM, task.DMANonVolatileToVolatile},
		{mem.FRAM, mem.LEARAM, task.DMANonVolatileToVolatile},
		// Volatile to volatile ⇒ Always (case iii).
		{mem.SRAM, mem.SRAM, task.DMAVolatileToVolatile},
		{mem.SRAM, mem.LEARAM, task.DMAVolatileToVolatile},
		{mem.LEARAM, mem.SRAM, task.DMAVolatileToVolatile},
	}
	for _, c := range cases {
		if got := Classify(c.src, c.dst); got != c.want {
			t.Errorf("Classify(%v, %v) = %v, want %v", c.src, c.dst, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	ok := Validate(mem.Addr{Bank: mem.FRAM, Word: 0}, mem.Addr{Bank: mem.FRAM, Word: 100}, 50)
	if ok != nil {
		t.Errorf("valid transfer rejected: %v", ok)
	}
	if Validate(mem.Addr{}, mem.Addr{}, 0) == nil {
		t.Error("zero-length transfer accepted")
	}
	if Validate(mem.Addr{Bank: mem.FRAM, Word: -1}, mem.Addr{Bank: mem.FRAM, Word: 100}, 5) == nil {
		t.Error("negative offset accepted")
	}
	// Overlapping same-bank ranges.
	if Validate(mem.Addr{Bank: mem.FRAM, Word: 0}, mem.Addr{Bank: mem.FRAM, Word: 10}, 20) == nil {
		t.Error("overlapping transfer accepted")
	}
	// Same offsets in different banks never overlap.
	if err := Validate(mem.Addr{Bank: mem.FRAM, Word: 0}, mem.Addr{Bank: mem.LEARAM, Word: 0}, 20); err != nil {
		t.Errorf("cross-bank transfer rejected: %v", err)
	}
}
