// Package dma holds the DMA-copy classification logic EaseIO applies at
// run time (§4.3 of the paper): the re-execution semantic of a transfer
// follows from the volatility of its endpoints.
//
// The mechanical transfer itself (word-stepped, interruptible, bypassing
// the runtime's variable interposition) lives in the kernel's RawDMA; this
// package is the policy side.
package dma

import (
	"fmt"

	"easeio/internal/mem"
	"easeio/internal/task"
)

// Classify returns the runtime semantic for a copy from src to dst:
//
//   - destination non-volatile → Single: the data persists, so a
//     completed copy never needs repeating (§4.3 case i);
//   - non-volatile source, volatile destination → Private: the copy must
//     repeat after every reboot, and the source must be snapshotted into a
//     privatization buffer so later writes to it cannot corrupt the
//     re-execution (§4.3 case ii);
//   - volatile to volatile → Always: repetition is harmless (§4.3 case iii).
func Classify(src, dst mem.Bank) task.DMAKind {
	switch {
	case !dst.Volatile():
		return task.DMAToNonVolatile
	case !src.Volatile():
		return task.DMANonVolatileToVolatile
	default:
		return task.DMAVolatileToVolatile
	}
}

// Validate sanity-checks a transfer descriptor before execution.
func Validate(src, dst mem.Addr, words int) error {
	if words <= 0 {
		return fmt.Errorf("dma: transfer of %d words", words)
	}
	if src.Word < 0 || dst.Word < 0 {
		return fmt.Errorf("dma: negative word offset (src=%v dst=%v)", src, dst)
	}
	if src.Bank == dst.Bank {
		lo, hi := src.Word, dst.Word
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi < lo+words {
			return fmt.Errorf("dma: overlapping transfer %v->%v (%d words)", src, dst, words)
		}
	}
	return nil
}
