// Package rtbase carries the machinery every task-based runtime in this
// repository shares: master copies of task-shared variables in FRAM, the
// persistent task pointer, pseudo-atomic commit application, and the
// measurement-side bookkeeping of I/O executions, repeats and skips.
//
// Commit protocol note: real runtimes make their commit step
// failure-atomic with redo logs (Alpaca) or buffer-index flips (InK). We
// model that correctness property — not the log structure — by charging a
// commit's full cost first (interruptible) and applying its state changes
// only after the charge survives. A power failure mid-commit therefore
// leaves masters untouched and the task re-executes cleanly, which is the
// behaviour the real protocols guarantee.
package rtbase

import (
	"fmt"

	"easeio/internal/kernel"
	"easeio/internal/mcu"
	"easeio/internal/mem"
	"easeio/internal/task"
)

// doneSentinel is the task-pointer value meaning "application finished".
const doneSentinel = 0xFFFF

// ioSlot is the per-run bookkeeping of one dynamic I/O or DMA site
// instance, held in a flat array indexed by the program's frozen slot
// numbering (task.Program.IOSlots). taskID/taskInst version the slot:
// bookkeeping is only ever consulted for the currently running task
// instance, and a task must commit (bumping its instance counter) before
// any other task can run, so a slot whose version tag is stale can never
// be read again — it is reset in place on the next touch. This makes the
// fixed-size array observationally equivalent to the unbounded
// (site, idx, task, instance)-keyed map it replaced.
type ioSlot struct {
	taskID   int32
	taskInst int32
	// execCount counts execution attempts of this instance (Table 4's
	// "Re-exe." counts every re-execution, completed or not).
	execCount int32
	// completed marks instances whose operation finished at least once
	// (re-executing those is truly redundant work, charged to Wasted).
	completed bool
}

// Base is embedded by each runtime implementation. All per-run state is
// held in flat slices sized once at Init from the frozen program tables
// (variable count, task count, I/O slot count); ResetRun clears those
// prefixes in place and never reallocates.
type Base struct {
	Dev *kernel.Device
	App *task.App

	// Prog is the frozen front-end output the runtime reads task metadata
	// through; it never changes after Init.
	Prog *task.Program

	// RTName attributes metadata allocations in the memory report.
	RTName string

	addrs   []mem.Addr // master copy addresses, by variable ID
	taskPtr mem.Addr
	cur     int // volatile cache of the task pointer

	// Measurement-world bookkeeping (never charged), by program slot
	// resp. task ID.
	slots    []ioSlot
	taskInst []int32
}

// Device returns the device the runtime is attached to, or nil before
// Attach. Every runtime embedding Base therefore satisfies the facade's
// DeviceHolder interface for post-run memory inspection.
func (b *Base) Device() *kernel.Device { return b.Dev }

// Init allocates the master copies and the persistent task pointer.
func (b *Base) Init(dev *kernel.Device, app *task.App, rtName string) error {
	if err := app.Validate(); err != nil {
		return err
	}
	prog := app.Program()
	if prog == nil {
		// Apps whose metadata was set up by hand (tests) rather than by
		// frontend.Analyze get a read-only view over their Task.Meta.
		var err error
		if prog, err = task.ViewProgram(app); err != nil {
			return fmt.Errorf("rtbase: %w", err)
		}
	}
	b.Dev = dev
	b.App = app
	b.Prog = prog
	b.RTName = rtName
	b.addrs = make([]mem.Addr, len(app.Vars))
	b.slots = make([]ioSlot, prog.IOSlots())
	b.taskInst = make([]int32, len(app.Tasks))
	for i, v := range app.Vars {
		b.addrs[i] = dev.Mem.Alloc(mem.FRAM, "app", v.Name, v.Words)
	}
	b.taskPtr = dev.Mem.Alloc(mem.FRAM, rtName, "taskptr", 1)
	b.writeInitial()
	return nil
}

// Meta returns the frozen front-end metadata of t.
func (b *Base) Meta(t *task.Task) *task.TaskMeta { return b.Prog.MetaOf(t) }

// writeInitial writes the durable words the attach path owns: variable
// initial values and the task pointer at the entry task.
func (b *Base) writeInitial() {
	for i, v := range b.App.Vars {
		if len(v.Init) > 0 {
			b.Dev.Mem.WriteBlock(b.addrs[i], v.Init, len(v.Init))
		}
	}
	entry := b.App.Entry()
	b.Dev.Mem.Write(b.taskPtr, uint16(entry.ID))
	b.cur = entry.ID
}

// ResetRun returns the base to its post-Init state on a device whose
// memory was just cleared by Device.Reset: the watermarked bookkeeping
// prefixes (sized once at Init from the frozen tables) are cleared in
// place and the initial durable words are rewritten at their existing
// addresses. Runtimes embed this in their kernel.Resetter implementation.
func (b *Base) ResetRun(dev *kernel.Device) {
	b.Dev = dev
	clear(b.slots)
	clear(b.taskInst)
	b.writeInitial()
}

// BaseState is the checkpointable part of a Base: the task-pointer cache
// and the measurement-side bookkeeping that survives reboots. Everything
// is indexed by value types (program slot numbers, task IDs), so a state
// captured from one runtime instance restores exactly into another
// instance attached to an equivalently built app — attach order and slot
// numbering are deterministic. Addresses (addrs, taskPtr) are layout,
// not state: each instance's own attach established them identically.
type BaseState struct {
	cur      int
	slots    []ioSlot
	taskInst []int32
}

// SnapshotBase deep-copies the base's checkpointable state. Runtimes
// build their kernel.Snapshotter implementation on it.
func (b *Base) SnapshotBase() BaseState { return *b.SnapshotBaseInto(nil) }

// SnapshotBaseInto is SnapshotBase reusing prev's slices when prev is
// non-nil (prev's previous contents are overwritten); nil allocates. A
// reused prev captured from the same program is a pure slice copy with
// no allocation — the bulk-checkpointing path of the failure-point
// checker (kernel.SnapshotterInto) takes thousands of these per run.
func (b *Base) SnapshotBaseInto(prev *BaseState) *BaseState {
	if prev == nil {
		prev = &BaseState{}
	}
	prev.cur = b.cur
	prev.slots = append(prev.slots[:0], b.slots...)
	prev.taskInst = append(prev.taskInst[:0], b.taskInst...)
	return prev
}

// RestoreBase re-establishes a previously captured state on a device
// whose memory has been restored to the matching checkpoint. The state
// is copied, never aliased, so one checkpoint restores any number of
// times.
func (b *Base) RestoreBase(dev *kernel.Device, s BaseState) {
	b.Dev = dev
	b.cur = s.cur
	b.slots = append(b.slots[:0], s.slots...)
	b.taskInst = append(b.taskInst[:0], s.taskInst...)
}

// IOSlotState is the exported mirror of one ioSlot, the unit of
// BaseWireState. See ioSlot for field semantics.
type IOSlotState struct {
	TaskID    int32
	TaskInst  int32
	ExecCount int32
	Completed bool
}

// BaseWireState is the exported, serializable mirror of BaseState: what
// a fleet subtree shard ships so a remote worker can restore a runtime
// into the exact bookkeeping state a checkpoint was taken at. The
// indices are value types (program slot numbers, task IDs) — the same
// property that lets BaseState restore across instances makes it safe
// to restore across processes, as long as both sides built the app from
// the same blueprint.
type BaseWireState struct {
	Cur      int
	Slots    []IOSlotState
	TaskInst []int32
}

// Export deep-copies a BaseState into its wire mirror.
func (s *BaseState) Export() BaseWireState {
	w := BaseWireState{
		Cur:      s.cur,
		Slots:    make([]IOSlotState, len(s.slots)),
		TaskInst: append([]int32(nil), s.taskInst...),
	}
	for i, sl := range s.slots {
		w.Slots[i] = IOSlotState{
			TaskID: sl.taskID, TaskInst: sl.taskInst,
			ExecCount: sl.execCount, Completed: sl.completed,
		}
	}
	return w
}

// ImportBaseState rebuilds the BaseState a wire mirror describes, in the
// form every runtime's kernel.Snapshotter RestoreState accepts.
func ImportBaseState(w BaseWireState) *BaseState {
	s := &BaseState{
		cur:      w.Cur,
		slots:    make([]ioSlot, len(w.Slots)),
		taskInst: append([]int32(nil), w.TaskInst...),
	}
	for i, sl := range w.Slots {
		s.slots[i] = ioSlot{
			taskID: sl.TaskID, taskInst: sl.TaskInst,
			execCount: sl.ExecCount, completed: sl.Completed,
		}
	}
	return s
}

// Compute charges application CPU work straight through — the default
// for task-based runtimes, whose recovery granularity is the task.
func (b *Base) Compute(c *kernel.Ctx, n int64) { c.ChargeCycles(n) }

// MasterAddr returns the FRAM address of a variable's master copy. The
// identity check catches variables of a different blueprint whose dense
// ID happens to be in range.
func (b *Base) MasterAddr(v *task.NVVar) mem.Addr {
	if uint(v.ID) >= uint(len(b.addrs)) || b.App.Vars[v.ID] != v {
		panic(fmt.Sprintf("rtbase: variable %q not attached", v.Name))
	}
	return b.addrs[v.ID]
}

// LoadBoot re-reads the persistent task pointer after a (re)boot.
func (b *Base) LoadBoot(c *kernel.Ctx) {
	c.ChargeMemAccess(mem.FRAM, false, true)
	b.cur = int(b.Dev.Mem.Read(b.taskPtr))
}

// Current returns the task the pointer designates, or nil when done.
func (b *Base) Current() *task.Task {
	if b.cur == doneSentinel {
		return nil
	}
	return b.App.Tasks[b.cur]
}

// CurrentID returns the raw task pointer value.
func (b *Base) CurrentID() int { return b.cur }

// CommitTransition finalizes the running task: extra carries the runtime's
// own commit writes (applied pseudo-atomically with the pointer update).
// next == nil ends the application.
func (b *Base) CommitTransition(c *kernel.Ctx, next *task.Task, extra func()) {
	c.ChargeOverheadCycles(mcu.TaskTransitionCycles)
	c.ChargeMemAccess(mem.FRAM, true, true)
	if extra != nil {
		extra()
	}
	b.taskInst[b.cur]++
	id := doneSentinel
	if next != nil {
		id = next.ID
	}
	b.Dev.Mem.Write(b.taskPtr, uint16(id))
	b.cur = id
	b.Dev.Ledger.CommitAttempt()
}

// noteIO records an execution attempt of site s (instance idx) in the
// current task instance. It reports whether the execution is redundant —
// the operation already completed in a previous energy cycle. Any
// re-execution (completed or not) counts toward the Table 4 "Re-exe."
// statistic.
func (b *Base) noteIO(s *task.IOSite, idx int) (slot int, redundant bool) {
	slot = b.Prog.SiteSlot(s, idx)
	sl := &b.slots[slot]
	cur, inst := int32(b.cur), b.taskInst[b.cur]
	if sl.taskID != cur || sl.taskInst != inst {
		*sl = ioSlot{taskID: cur, taskInst: inst}
	}
	sl.execCount++
	b.Dev.Run.IOExecs++
	b.Dev.Run.CountIO(s.Name)
	if sl.execCount > 1 {
		b.Dev.Run.IORepeats++
	}
	return slot, sl.completed
}

// NoteIOSkip records that the runtime avoided re-executing site s.
func (b *Base) NoteIOSkip(s *task.IOSite) {
	b.Dev.Run.IOSkips++
	if b.Dev.TraceOn() {
		b.Dev.Trace(kernel.EvIOSkip, "%s sem=%s", s.Name, s.Sem)
	}
}

// noteDMA records a DMA execution attempt (see noteIO).
func (b *Base) noteDMA(d *task.DMASite) (slot int, redundant bool) {
	slot = b.Prog.DMASlot(d)
	sl := &b.slots[slot]
	cur, inst := int32(b.cur), b.taskInst[b.cur]
	if sl.taskID != cur || sl.taskInst != inst {
		*sl = ioSlot{taskID: cur, taskInst: inst}
	}
	sl.execCount++
	b.Dev.Run.DMAExecs++
	if sl.execCount > 1 {
		b.Dev.Run.DMARepeats++
	}
	return slot, sl.completed
}

// NoteDMASkip records an avoided DMA re-execution.
func (b *Base) NoteDMASkip(d *task.DMASite) {
	b.Dev.Run.DMASkips++
	if b.Dev.TraceOn() {
		b.Dev.Trace(kernel.EvDMASkip, "%s", d.Name)
	}
}

// ExecIO runs the site's operation with redundancy accounting: executions
// of an operation that already completed charge directly to the Wasted
// bucket (work a continuous-power execution would not perform).
func (b *Base) ExecIO(c *kernel.Ctx, s *task.IOSite, idx int) uint16 {
	slot, redundant := b.noteIO(s, idx)
	if redundant {
		c.PushWasted()
		defer c.PopWasted()
	}
	if b.Dev.TraceOn() {
		b.Dev.Trace(kernel.EvIOExec, "%s[%d] sem=%s (redundant=%v)", s.Name, idx, s.Sem, redundant)
	}
	v := s.Exec(c, idx)
	b.slots[slot].completed = true
	// A physical execution refreshes the site's sample clock; skipped
	// re-executions (which never reach ExecIO) keep the old timestamp —
	// exactly the staleness the freshness oracle measures.
	if s.Freshness > 0 {
		c.Dev.Run.NoteSample(s.ID, c.Now())
	}
	return v
}

// ExecDMA performs the raw transfer with redundancy accounting.
func (b *Base) ExecDMA(c *kernel.Ctx, d *task.DMASite, src, dst mem.Addr, words int) {
	slot, redundant := b.noteDMA(d)
	if redundant {
		c.PushWasted()
		defer c.PopWasted()
	}
	if b.Dev.TraceOn() {
		b.Dev.Trace(kernel.EvDMAExec, "%s %v->%v %dw (redundant=%v)", d.Name, src, dst, words, redundant)
	}
	c.RawDMA(src, dst, words, false)
	b.slots[slot].completed = true
}
