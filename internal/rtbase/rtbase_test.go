package rtbase

import (
	"strings"
	"testing"

	"easeio/internal/frontend"
	"easeio/internal/kernel"
	"easeio/internal/mem"
	"easeio/internal/power"
	"easeio/internal/task"
)

func twoTaskApp(t *testing.T) *task.App {
	t.Helper()
	a := task.NewApp("base")
	a.NVBuf("v", 4).WithInit([]uint16{1, 2, 3, 4})
	var fin *task.Task
	a.AddTask("main", func(e task.Exec) { e.Next(fin) })
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	if err := frontend.Analyze(a); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestInitAllocatesMasters(t *testing.T) {
	a := twoTaskApp(t)
	dev := kernel.NewDevice(power.Continuous{}, 1)
	var b Base
	if err := b.Init(dev, a, "TestRT"); err != nil {
		t.Fatal(err)
	}
	v := a.Vars[0]
	addr := b.MasterAddr(v)
	if addr.Bank != mem.FRAM {
		t.Errorf("master in %v", addr.Bank)
	}
	for i := 0; i < 4; i++ {
		if got := dev.Mem.Read(addr.Add(i)); got != uint16(i+1) {
			t.Errorf("init[%d] = %d", i, got)
		}
	}
	if dev.Mem.OwnerWords(mem.FRAM, "app") != 4 {
		t.Error("master attributed to app owner")
	}
	if dev.Mem.OwnerWords(mem.FRAM, "TestRT") != 1 {
		t.Error("task pointer attributed to runtime owner")
	}
	if b.Current() != a.Entry() {
		t.Error("initial task must be the entry")
	}
}

func TestInitRejectsUnanalyzedApp(t *testing.T) {
	a := task.NewApp("raw")
	a.AddTask("t", func(e task.Exec) { e.Done() })
	dev := kernel.NewDevice(power.Continuous{}, 1)
	var b Base
	err := b.Init(dev, a, "X")
	if err == nil || !strings.Contains(err.Error(), "not analyzed") {
		t.Errorf("err = %v", err)
	}
}

func TestMasterAddrUnknownVarPanics(t *testing.T) {
	a := twoTaskApp(t)
	dev := kernel.NewDevice(power.Continuous{}, 1)
	var b Base
	if err := b.Init(dev, a, "X"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	b.MasterAddr(&task.NVVar{Name: "stranger", Words: 1})
}

func TestRedundancyAccounting(t *testing.T) {
	a := task.NewApp("red")
	execLen := 0
	s := a.IO("op", task.Always, false, func(e task.Exec, _ int) uint16 {
		execLen++
		return 0
	})
	var fin *task.Task
	a.AddTask("main", func(e task.Exec) {
		e.CallIO(s)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	if err := frontend.Analyze(a); err != nil {
		t.Fatal(err)
	}
	dev := kernel.NewDevice(power.Continuous{}, 1)
	var b Base
	if err := b.Init(dev, a, "X"); err != nil {
		t.Fatal(err)
	}
	ctx := &kernel.Ctx{Dev: dev} // RT unused by ExecIO itself

	// First execution: counted, not a repeat, not redundant.
	b.ExecIO(ctx, s, 0)
	if dev.Run.IOExecs != 1 || dev.Run.IORepeats != 0 {
		t.Errorf("after first exec: %d/%d", dev.Run.IOExecs, dev.Run.IORepeats)
	}
	// Second execution of the same dynamic instance: a repeat.
	b.ExecIO(ctx, s, 0)
	if dev.Run.IOExecs != 2 || dev.Run.IORepeats != 1 {
		t.Errorf("after repeat: %d/%d", dev.Run.IOExecs, dev.Run.IORepeats)
	}
	if dev.Run.PerSite["op"] != 2 {
		t.Errorf("per-site = %v", dev.Run.PerSite)
	}
	// A new task instance resets the dynamic key.
	b.CommitTransition(ctx, a.Tasks[0], nil)
	b.ExecIO(ctx, s, 0)
	if dev.Run.IORepeats != 1 {
		t.Errorf("new instance counted as repeat: %d", dev.Run.IORepeats)
	}
}

func TestTaskPointerPersists(t *testing.T) {
	a := twoTaskApp(t)
	dev := kernel.NewDevice(power.Continuous{}, 1)
	var b Base
	if err := b.Init(dev, a, "X"); err != nil {
		t.Fatal(err)
	}
	ctx := &kernel.Ctx{Dev: dev}
	b.CommitTransition(ctx, a.Tasks[1], nil)
	if b.Current() != a.Tasks[1] {
		t.Fatal("transition did not advance")
	}
	// Simulate a reboot: volatile state cleared, pointer reloaded.
	dev.Mem.PowerFailure()
	b.LoadBoot(ctx)
	if b.Current() != a.Tasks[1] {
		t.Error("task pointer lost across reboot")
	}
	// Finish.
	b.CommitTransition(ctx, nil, nil)
	if b.Current() != nil {
		t.Error("done sentinel not honored")
	}
}

// TestSnapshotBaseIntoNoAlloc pins that SnapshotBaseInto with a reused
// state is a pure slice copy: the flat ID-indexed state made the
// snapshot a fixed-shape copy, and this keeps it that way (the original
// map-based state allocated three maps per snapshot even when prev was
// supplied).
func TestSnapshotBaseIntoNoAlloc(t *testing.T) {
	a := twoTaskApp(t)
	dev := kernel.NewDevice(power.Continuous{}, 1)
	var b Base
	if err := b.Init(dev, a, "TestRT"); err != nil {
		t.Fatal(err)
	}
	prev := b.SnapshotBaseInto(nil) // sizes the slices
	if avg := testing.AllocsPerRun(20, func() { prev = b.SnapshotBaseInto(prev) }); avg > 0 {
		t.Errorf("reused SnapshotBaseInto allocates %.1f times, want 0", avg)
	}
	if got := b.SnapshotBase(); got.cur != prev.cur {
		t.Errorf("reused snapshot diverged: cur %d vs %d", prev.cur, got.cur)
	}
}
