// Service tests: the HTTP result must be byte-identical to the
// in-process sweep, backpressure must reject rather than block, the
// registry must analyze once under concurrency, cancellation must stop a
// job at a seed boundary, and shutdown must drain in-flight sweeps.

package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"easeio/internal/apps"
	"easeio/internal/check"
	"easeio/internal/experiments"
)

func newTestStack(t *testing.T, queueSize, workers int) (*Manager, *Registry, *Metrics, *httptest.Server) {
	t.Helper()
	reg := NewRegistry()
	if err := RegisterPaperBenches(reg); err != nil {
		t.Fatal(err)
	}
	metrics := NewMetrics()
	mgr := NewManager(reg, metrics, queueSize, workers)
	srv := httptest.NewServer(NewServer(mgr, reg, metrics).Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := mgr.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return mgr, reg, metrics, srv
}

func postJob(t *testing.T, base string, spec string) (Status, int) {
	t.Helper()
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

func getJob(t *testing.T, base string, id uint64) Status {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/jobs/%d", base, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitTerminal(t *testing.T, base string, id uint64) Status {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		st := getJob(t, base, id)
		switch st.State {
		case "succeeded", "failed", "cancelled":
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %d stuck in state %s (%d/%d runs)", id, st.State, st.DoneRuns, st.TotalRuns)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHTTPSweepMatchesInProcess is the service's load-bearing guarantee:
// a sweep submitted over HTTP returns a stats.Summary deep-equal to the
// in-process experiments.RunMany result for the same configuration.
func TestHTTPSweepMatchesInProcess(t *testing.T) {
	_, _, _, srv := newTestStack(t, 8, 2)

	st, code := postJob(t, srv.URL,
		`{"app":"dma","runtime":"EaseIO","runs":16,"base_seed":7,"workers":4}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	final := waitTerminal(t, srv.URL, st.ID)
	if final.State != "succeeded" {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}
	if final.Summary == nil {
		t.Fatal("no summary on a succeeded job")
	}
	if final.DoneRuns != 16 || final.TotalRuns != 16 {
		t.Errorf("progress = %d/%d, want 16/16", final.DoneRuns, final.TotalRuns)
	}

	direct, err := experiments.RunMany(
		experiments.Config{Runs: 16, BaseSeed: 7, Workers: 4},
		func() (*apps.Bench, error) { return apps.NewDMAApp(apps.DefaultDMAConfig()) },
		experiments.EaseIO)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*final.Summary, direct) {
		t.Errorf("HTTP summary differs from in-process sweep:\n%+v\nvs\n%+v", *final.Summary, direct)
	}
}

// TestBackpressureRejectsNeverBlocks fills the queue behind a gated
// blueprint and checks that the next submission gets 429 promptly — the
// accept loop must never block on a full queue.
func TestBackpressureRejectsNeverBlocks(t *testing.T) {
	reg := NewRegistry()
	gate := make(chan struct{})
	err := reg.Register("slow", func() (*apps.Bench, error) {
		<-gate
		return apps.NewDMAApp(apps.DefaultDMAConfig())
	})
	if err != nil {
		t.Fatal(err)
	}
	metrics := NewMetrics()
	mgr := NewManager(reg, metrics, 1, 1)
	srv := httptest.NewServer(NewServer(mgr, reg, metrics).Handler())
	defer srv.Close()

	// First job occupies the single worker (blocked on the gate).
	a, code := postJob(t, srv.URL, `{"app":"slow","runtime":"EaseIO","runs":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("job A: status %d", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for getJob(t, srv.URL, a.ID).State != "running" {
		if time.Now().After(deadline) {
			t.Fatal("job A never started")
		}
		time.Sleep(time.Millisecond)
	}
	// Second job fills the queue (capacity 1).
	if _, code := postJob(t, srv.URL, `{"app":"slow","runtime":"EaseIO","runs":1}`); code != http.StatusAccepted {
		t.Fatalf("job B: status %d", code)
	}
	// Third job must be rejected immediately, not block the accept loop.
	start := time.Now()
	_, code = postJob(t, srv.URL, `{"app":"slow","runtime":"EaseIO","runs":1}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("job C: status %d, want 429", code)
	}
	if wait := time.Since(start); wait > 2*time.Second {
		t.Errorf("rejection took %v; the accept loop blocked", wait)
	}
	if got := metrics.JobsRejected.Load(); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}

	close(gate) // let A and B finish
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := mgr.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

// TestConcurrentJobsAndCancellation drives four jobs concurrently (the
// acceptance bar) and cancels the largest mid-flight: the cancelled job
// must stop at a seed boundary with a partial summary while the others
// succeed untouched.
func TestConcurrentJobsAndCancellation(t *testing.T) {
	_, _, _, srv := newTestStack(t, 8, 4)

	big, code := postJob(t, srv.URL,
		`{"app":"dma","runtime":"EaseIO","runs":500000,"base_seed":1,"workers":2}`)
	if code != http.StatusAccepted {
		t.Fatalf("big job: status %d", code)
	}
	small := make([]Status, 3)
	for i := range small {
		st, code := postJob(t, srv.URL, fmt.Sprintf(
			`{"app":"temp","runtime":"Alpaca","runs":8,"base_seed":%d,"workers":1}`, 100+i))
		if code != http.StatusAccepted {
			t.Fatalf("small job %d: status %d", i, code)
		}
		small[i] = st
	}

	// Cancel the big job once it has made some progress.
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := getJob(t, srv.URL, big.ID)
		if st.State == "running" && st.DoneRuns >= 1 {
			break
		}
		if st.State != "running" && st.State != "queued" {
			t.Fatalf("big job reached %s before it could be cancelled", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("big job never made progress")
		}
		time.Sleep(2 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/jobs/%d", srv.URL, big.ID), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	final := waitTerminal(t, srv.URL, big.ID)
	if final.State != "cancelled" {
		t.Fatalf("big job ended %s, want cancelled", final.State)
	}
	if final.Summary == nil || final.Summary.Runs == 0 || final.Summary.Runs >= 500000 {
		t.Errorf("cancelled job should carry a partial summary, got %+v", final.Summary)
	}
	for i, st := range small {
		f := waitTerminal(t, srv.URL, st.ID)
		if f.State != "succeeded" {
			t.Errorf("small job %d ended %s: %s", i, f.State, f.Error)
		}
		if f.Summary == nil || f.Summary.Runs != 8 {
			t.Errorf("small job %d summary: %+v", i, f.Summary)
		}
	}
}

// TestRegistrySingleFlight hammers one blueprint's Prototype from many
// goroutines: the factory — and with it frontend.Analyze on the shared
// app — must run exactly once.
func TestRegistrySingleFlight(t *testing.T) {
	reg := NewRegistry()
	var calls atomic.Int64
	err := reg.Register("counted", func() (*apps.Bench, error) {
		calls.Add(1)
		return apps.NewDMAApp(apps.DefaultDMAConfig())
	})
	if err != nil {
		t.Fatal(err)
	}
	bp, _ := reg.Lookup("counted")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := bp.Prototype(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Errorf("factory ran %d times, want 1", got)
	}
	if err := reg.Register("counted", bp.Factory); err == nil {
		t.Error("duplicate registration must fail")
	}
}

// TestGracefulShutdownDrains submits a job, shuts the manager down, and
// checks the in-flight sweep completed while later submissions are
// refused.
func TestGracefulShutdownDrains(t *testing.T) {
	reg := NewRegistry()
	if err := RegisterPaperBenches(reg); err != nil {
		t.Fatal(err)
	}
	metrics := NewMetrics()
	mgr := NewManager(reg, metrics, 4, 2)

	j, err := mgr.Submit(JobSpec{App: "dma", Runtime: "EaseIO", Runs: 64, BaseSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Let the worker pick it up so shutdown exercises the drain path.
	deadline := time.Now().Add(10 * time.Second)
	for j.State() == Queued && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := mgr.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if st := j.State(); st != Succeeded {
		t.Errorf("in-flight job ended %s, want succeeded (drained)", st)
	}
	if _, err := mgr.Submit(JobSpec{App: "dma", Runtime: "EaseIO", Runs: 1}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after shutdown: err = %v, want ErrClosed", err)
	}
	if mgr.Shutdown(ctx) != nil {
		t.Error("second shutdown must be a no-op")
	}
}

// TestJobPanicIsolation routes a panicking factory through a job: the
// job fails, the worker and server survive.
func TestJobPanicIsolation(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register("boom", func() (*apps.Bench, error) { panic("factory exploded") }); err != nil {
		t.Fatal(err)
	}
	if err := RegisterPaperBenches(reg); err != nil {
		t.Fatal(err)
	}
	metrics := NewMetrics()
	mgr := NewManager(reg, metrics, 4, 1)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		mgr.Shutdown(ctx)
	}()

	j, err := mgr.Submit(JobSpec{App: "boom", Runtime: "EaseIO", Runs: 4})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if j.State() != Failed {
		t.Fatalf("panicking job ended %s, want failed", j.State())
	}
	if got := metrics.JobsPanicked.Load(); got != 1 {
		t.Errorf("panicked counter = %d, want 1", got)
	}

	// The single worker must still be alive to run the next job.
	ok, err := mgr.Submit(JobSpec{App: "dma", Runtime: "EaseIO", Runs: 4, BaseSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	<-ok.Done()
	if ok.State() != Succeeded {
		t.Errorf("post-panic job ended %s: %s", ok.State(), ok.Status().Error)
	}
}

// TestMetricsEndpoint checks the exposition format carries the counters
// a scrape needs.
func TestMetricsEndpoint(t *testing.T) {
	mgr, _, _, srv := newTestStack(t, 4, 1)
	j, err := mgr.Submit(JobSpec{App: "temp", Runtime: "EaseIO", Runs: 8, BaseSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"easeio_jobs_accepted_total 1",
		"easeio_jobs_completed_total 1",
		"easeio_runs_completed_total 8",
		"easeio_queue_depth 0",
		"easeio_wasted_work_ratio",
		"easeio_power_failures_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// The ratio gauge must agree with the job's own summary.
	sum := *j.Status().Summary
	if sum.WastedRatio() <= 0 {
		t.Errorf("expected some wasted work under timer failures, ratio = %v", sum.WastedRatio())
	}
}

// TestSubmitValidation is the table-driven negative surface: every
// malformed spec must be rejected before queueing, with the exact error
// text and the HTTP 400 mapping pinned.
func TestSubmitValidation(t *testing.T) {
	mgr, _, metrics, srv := newTestStack(t, 4, 1)

	cases := []struct {
		name    string
		spec    JobSpec
		wantErr string
	}{
		{
			name:    "unknown blueprint",
			spec:    JobSpec{App: "nosuch", Runtime: "EaseIO", Runs: 4},
			wantErr: `service: unknown blueprint "nosuch" (registered: [branch dma fir fir-op lea sensor temp weather weather-db])`,
		},
		{
			name:    "bad runtime",
			spec:    JobSpec{App: "dma", Runtime: "quickrecall", Runs: 4},
			wantErr: `experiments: unknown runtime "quickrecall" (want Alpaca, InK, EaseIO, EaseIO/Op. or JustDo)`,
		},
		{
			name:    "zero runs",
			spec:    JobSpec{App: "dma", Runtime: "EaseIO"},
			wantErr: "service: sweep job needs a positive run count (got 0)",
		},
		{
			name:    "negative runs",
			spec:    JobSpec{App: "dma", Runtime: "EaseIO", Runs: -3},
			wantErr: "service: sweep job needs a positive run count (got -3)",
		},
		{
			name:    "negative timeout",
			spec:    JobSpec{App: "dma", Runtime: "EaseIO", Runs: 4, TimeoutMs: -1},
			wantErr: "service: timeout -1 ms out of range (want 0 for none, at most 24h)",
		},
		{
			name:    "absurd timeout",
			spec:    JobSpec{App: "dma", Runtime: "EaseIO", Runs: 4, TimeoutMs: 25 * 60 * 60 * 1000},
			wantErr: "service: timeout 90000000 ms out of range (want 0 for none, at most 24h)",
		},
		{
			name:    "unknown mode",
			spec:    JobSpec{App: "dma", Runtime: "EaseIO", Runs: 4, Mode: "fuzz"},
			wantErr: `service: unknown mode "fuzz" (want "sweep" or "check")`,
		},
		{
			name:    "check job with runs",
			spec:    JobSpec{App: "dma", Runtime: "EaseIO", Runs: 4, Mode: "check"},
			wantErr: "service: check job does not take a run count (got 4)",
		},
		{
			name:    "sweep job with failure depth",
			spec:    JobSpec{App: "dma", Runtime: "EaseIO", Runs: 4, Failures: 2},
			wantErr: "service: sweep job does not take a failure depth (got 2)",
		},
		{
			name:    "check job failure depth too deep",
			spec:    JobSpec{App: "dma", Runtime: "EaseIO", Mode: "check", Failures: 5},
			wantErr: "service: check: failure depth 5 out of range [1, 4]",
		},
		{
			name:    "check job negative failure depth",
			spec:    JobSpec{App: "dma", Runtime: "EaseIO", Mode: "check", Failures: -1},
			wantErr: "service: check: failure depth -1 out of range [1, 4]",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := mgr.Submit(c.spec)
			if err == nil {
				t.Fatal("spec accepted")
			}
			if err.Error() != c.wantErr {
				t.Errorf("error = %q,\nwant    %q", err.Error(), c.wantErr)
			}

			// The HTTP layer must map every validation error to 400 with the
			// same message in the JSON body.
			body, err2 := json.Marshal(c.spec)
			if err2 != nil {
				t.Fatal(err2)
			}
			resp, err2 := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(string(body)))
			if err2 != nil {
				t.Fatal(err2)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("HTTP status = %d, want 400", resp.StatusCode)
			}
			var msg map[string]string
			if err2 := json.NewDecoder(resp.Body).Decode(&msg); err2 != nil {
				t.Fatal(err2)
			}
			if msg["error"] != c.wantErr {
				t.Errorf("HTTP error body = %q,\nwant         %q", msg["error"], c.wantErr)
			}
		})
	}

	// A spec with an unknown JSON field dies in the decoder, also a 400.
	if _, code := postJob(t, srv.URL, `{"app":"dma","bogus":1}`); code != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", code)
	}
	// None of the rejections may consume a queue slot.
	if got := metrics.JobsAccepted.Load(); got != 0 {
		t.Errorf("accepted counter = %d after only invalid submissions", got)
	}
}

// TestCheckJobOverHTTP submits a check-mode job and verifies the report
// arrives in Status.Check, matches the in-process checker result, and the
// check metrics counters advance.
func TestCheckJobOverHTTP(t *testing.T) {
	_, _, metrics, srv := newTestStack(t, 4, 1)

	st, code := postJob(t, srv.URL,
		`{"app":"temp","runtime":"EaseIO","mode":"check","base_seed":3,"check_grid":24,"workers":2}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	final := waitTerminal(t, srv.URL, st.ID)
	if final.State != "succeeded" {
		t.Fatalf("job finished %s: %s", final.State, final.Error)
	}
	if final.Check == nil {
		t.Fatal("no check report in the terminal status")
	}
	if final.Summary != nil {
		t.Error("check job carries a sweep summary")
	}
	if !final.Check.Passed() {
		t.Errorf("temp under EaseIO diverged:\n%+v", final.Check.Divergences)
	}
	if final.DoneRuns != final.Check.Explored || final.TotalRuns != final.Check.Explored {
		t.Errorf("progress = %d/%d, want %d explored points",
			final.DoneRuns, final.TotalRuns, final.Check.Explored)
	}

	direct, err := check.Run(context.Background(), tempBenchFactory, experiments.EaseIO,
		check.Config{Seed: 3, Grid: 24, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if final.Check.Candidates != direct.Candidates || final.Check.Explored != direct.Explored ||
		final.Check.GoldenOnTime != direct.GoldenOnTime {
		t.Errorf("HTTP report differs from in-process checker:\n%+v\nvs\n%+v", final.Check, direct)
	}

	if got := metrics.CheckPoints.Load(); got != int64(direct.Explored) {
		t.Errorf("easeio_check_points_total = %d, want %d", got, direct.Explored)
	}
	if got := metrics.CheckDivergences.Load(); got != 0 {
		t.Errorf("easeio_check_divergences_total = %d, want 0", got)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"easeio_check_points_total", "easeio_check_divergences_total"} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics misses %s", want)
		}
	}
}

func tempBenchFactory() (*apps.Bench, error) { return apps.NewTempApp(apps.DefaultTempConfig()) }
