// Package service turns the sweep engine into a long-running simulation
// server: a registry of named application blueprints, a job manager with
// a bounded queue, worker concurrency, per-job cancellation and panic
// isolation, an observability surface (health, Prometheus-style metrics,
// per-job progress), and an HTTP/JSON front end (see Server).
//
// The execution path of a job is exactly experiments.RunManyCtx over the
// registered factory, so an HTTP-submitted sweep's Summary is
// byte-identical to the in-process result for the same configuration —
// the service adds scheduling and observability, never a different
// engine.
package service

import (
	"fmt"
	"log/slog"
	"sort"
	"sync"

	"easeio/internal/apps"
	"easeio/internal/experiments"
)

// Blueprint is one named, registered application. The factory builds a
// fresh analyzed instance per sweep worker (peripheral models carry
// mutable per-run state, so instances cannot be shared across
// goroutines); the prototype is one cached instance, analyzed exactly
// once under a single-flight gate, that serves every job's validation
// and description needs without re-running the front-end.
type Blueprint struct {
	// Name is the registry key.
	Name string
	// Factory builds a fresh analyzed app instance (one per sweep worker).
	Factory experiments.AppFactory

	once  sync.Once
	proto *apps.Bench
	err   error
}

// Prototype returns the blueprint's cached analyzed instance, building it
// on first use. Concurrent first calls are single-flight: the factory —
// and therefore frontend.Analyze, which mutates the app it analyzes —
// runs exactly once per blueprint, and every caller observes the same
// frozen result.
func (b *Blueprint) Prototype() (*apps.Bench, error) {
	b.once.Do(func() { b.proto, b.err = b.Factory() })
	return b.proto, b.err
}

// Info describes a registered blueprint for the HTTP surface.
type Info struct {
	Name    string `json:"name"`
	App     string `json:"app"`
	Tasks   int    `json:"tasks"`
	Vars    int    `json:"vars"`
	IOSites int    `json:"io_sites"`
	DMAs    int    `json:"dma_sites"`
}

// Describe analyzes the blueprint (once) and reports its structure.
func (b *Blueprint) Describe() (Info, error) {
	bench, err := b.Prototype()
	if err != nil {
		return Info{}, err
	}
	app := bench.App
	return Info{
		Name:    b.Name,
		App:     app.Name,
		Tasks:   len(app.Tasks),
		Vars:    len(app.Vars),
		IOSites: len(app.Sites),
		DMAs:    len(app.DMAs),
	}, nil
}

// Registry maps blueprint names to registered applications. It is safe
// for concurrent use.
type Registry struct {
	mu  sync.RWMutex
	m   map[string]*Blueprint
	log *slog.Logger
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{m: make(map[string]*Blueprint)} }

// SetLogger installs a structured logger for registration events. A nil
// logger (the default) discards them.
func (r *Registry) SetLogger(l *slog.Logger) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.log = l
}

// Register adds a named blueprint. Registering a duplicate name is an
// error — jobs refer to blueprints by name, and silently swapping the
// factory under running jobs would make results unreproducible.
func (r *Registry) Register(name string, factory experiments.AppFactory) error {
	if name == "" || factory == nil {
		return fmt.Errorf("service: blueprint needs a name and a factory")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[name]; dup {
		return fmt.Errorf("service: blueprint %q already registered", name)
	}
	r.m[name] = &Blueprint{Name: name, Factory: factory}
	if r.log != nil {
		r.log.Info("blueprint registered", "name", name, "count", len(r.m))
	}
	return nil
}

// Lookup returns the named blueprint.
func (r *Registry) Lookup(name string) (*Blueprint, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	b, ok := r.m[name]
	return b, ok
}

// LookupFactory returns the named blueprint's factory. It is the
// fleet.BlueprintSource adapter: a registry-backed coordinator or worker
// resolves job app names through the same table the job manager uses.
func (r *Registry) LookupFactory(name string) (experiments.AppFactory, bool) {
	b, ok := r.Lookup(name)
	if !ok {
		return nil, false
	}
	return b.Factory, true
}

// Names returns the registered blueprint names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.m))
	for name := range r.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// RegisterPaperBenches registers the paper's prebuilt benchmark
// applications (§5, Table 3) under their conventional names: the three
// uni-task apps, the FIR filter with and without the Exclude annotation,
// the DNN weather classifier in both buffering modes, and the Figure 2c
// branch scenario.
func RegisterPaperBenches(r *Registry) error {
	benches := []struct {
		name    string
		factory experiments.AppFactory
	}{
		{"dma", func() (*apps.Bench, error) { return apps.NewDMAApp(apps.DefaultDMAConfig()) }},
		{"temp", func() (*apps.Bench, error) { return apps.NewTempApp(apps.DefaultTempConfig()) }},
		{"sensor", func() (*apps.Bench, error) { return apps.NewSensorApp(apps.DefaultSensorConfig()) }},
		{"lea", func() (*apps.Bench, error) { return apps.NewLEAApp(apps.DefaultLEAConfig()) }},
		{"fir", func() (*apps.Bench, error) { return apps.NewFIRApp(apps.DefaultFIRConfig()) }},
		{"fir-op", func() (*apps.Bench, error) {
			cfg := apps.DefaultFIRConfig()
			cfg.ExcludeCoef = true
			return apps.NewFIRApp(cfg)
		}},
		{"weather", func() (*apps.Bench, error) { return apps.NewWeatherApp(apps.DefaultWeatherConfig()) }},
		{"weather-db", func() (*apps.Bench, error) {
			cfg := apps.DefaultWeatherConfig()
			cfg.Buffers = apps.DoubleBuffer
			return apps.NewWeatherApp(cfg)
		}},
		{"branch", func() (*apps.Bench, error) { return apps.NewBranchApp(apps.DefaultBranchConfig()) }},
	}
	for _, b := range benches {
		if err := r.Register(b.name, b.factory); err != nil {
			return err
		}
	}
	return nil
}
