// The job manager: a bounded queue of sweep jobs drained by a fixed pool
// of job workers. Each job runs one experiments.RunManyCtx sweep under
// its own cancellable context, isolated from the server by a recover
// barrier, and streams progress through the engine's progress hook.

package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"easeio/internal/check"
	"easeio/internal/experiments"
	"easeio/internal/fleet"
	"easeio/internal/stats"
)

// State is a job's lifecycle stage.
type State int32

// The job lifecycle. Queued → Running → one of the three terminal
// states; a queued job cancelled before a worker picks it up goes
// straight to Cancelled.
const (
	Queued State = iota
	Running
	Succeeded
	Failed
	Cancelled
)

// String names the state for the JSON surface.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Succeeded:
		return "succeeded"
	case Failed:
		return "failed"
	case Cancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// Submission errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull reports a bounded queue with no room — backpressure,
	// not failure; the accept loop never blocks on a full queue.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrClosed reports a manager that has begun shutting down.
	ErrClosed = errors.New("service: manager closed")
)

// JobSpec is the client-visible job request.
type JobSpec struct {
	// App names a registered blueprint.
	App string `json:"app"`
	// Runtime names the runtime kind ("Alpaca", "InK", "EaseIO",
	// "EaseIO/Op.", "JustDo").
	Runtime string `json:"runtime"`
	// Mode selects the engine: "" or "sweep" runs a multi-seed sweep;
	// "check" runs the failure-point model checker over the blueprint.
	Mode string `json:"mode,omitempty"`
	// Runs is the number of seeded executions of a sweep job; it must be
	// positive. Check jobs ignore it (the golden run determines the
	// explored point count).
	Runs int `json:"runs,omitempty"`
	// BaseSeed offsets the per-run seeds (a check job's single seed).
	BaseSeed int64 `json:"base_seed"`
	// Workers bounds the job's parallelism (defaults to GOMAXPROCS); the
	// result is worker-count-invariant either way.
	Workers int `json:"workers,omitempty"`
	// Batch, when > 1, asks a sweep job's workers to run their seeds in
	// lockstep chunks of up to Batch pooled devices (see
	// experiments.Config.Batch). Purely a throughput knob: the summary is
	// byte-identical to an unbatched run. At most 1024. Check jobs and
	// fleet-delegated jobs ignore it (fleet workers choose their own
	// batching; the wire shard format carries no batch field).
	Batch int `json:"batch,omitempty"`
	// TimeoutMs, when positive, bounds the job's total lifetime (queue
	// wait plus execution); an expired job is cancelled at the next seed
	// or failure-point boundary. At most 24 hours.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// CheckGrid is the check-mode exploration grid (defaults to 128);
	// CheckExhaustive replays every candidate failure point.
	CheckGrid       int  `json:"check_grid,omitempty"`
	CheckExhaustive bool `json:"check_exhaustive,omitempty"`
	// Failures is the check-mode nested-failure depth k: schedules
	// inject up to this many failures, each landing on the previous
	// failure's recovery trajectory. 0 defaults to 1 (the single-failure
	// checker); at most check.MaxFailures. Sweep jobs reject it.
	Failures int `json:"failures,omitempty"`
}

// Job is one accepted sweep. All fields are safe to read concurrently
// through the accessors; the manager is the only writer.
type Job struct {
	// ID is the manager-assigned identifier.
	ID uint64
	// Spec is the normalized request (Runs defaulted).
	Spec JobSpec

	bp   *Blueprint
	kind experiments.RuntimeKind

	ctx    context.Context
	cancel context.CancelFunc

	state atomic.Int32
	done  atomic.Int64 // finished seeds or explored points, from the progress hook
	total atomic.Int64 // sweep total, or the checker's planned point count so far

	// timeout is the execution deadline for fleet-delegated jobs, armed
	// at the first shard lease instead of at submission (see runFleetJob;
	// in-process jobs keep the submission-anchored context deadline).
	timeout time.Duration

	mu        sync.Mutex
	summary   stats.Summary
	report    *check.Report
	errMsg    string
	submitted time.Time
	started   time.Time
	finished  time.Time
	// leased/leaseWait record a fleet-delegated job's first shard lease:
	// the submission→lease gap is queue wait, surfaced in Status and the
	// lease-wait histogram, and explicitly not charged by timeout.
	leased    bool
	leaseWait time.Duration

	finishedCh chan struct{}
}

// State returns the job's current lifecycle stage.
func (j *Job) State() State { return State(j.state.Load()) }

// Progress returns finished and total counts: seeds for a sweep job,
// explored and planned failure points for a check job (planned grows as
// the bisection schedules more rounds).
func (j *Job) Progress() (done, total int) {
	return int(j.done.Load()), int(j.total.Load())
}

// Cancel asks the job to stop. A queued job is finalized immediately; a
// running job observes its context at the next seed boundary. Cancelling
// a finished job is a no-op. It reports whether the call changed
// anything.
func (j *Job) Cancel() bool {
	j.cancel()
	if j.state.CompareAndSwap(int32(Queued), int32(Cancelled)) {
		j.finalize(Cancelled, stats.Summary{}, context.Canceled.Error())
		return true
	}
	return j.State() == Running
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.finishedCh }

// finalize records the terminal state exactly once (callers guarantee
// the CAS into the terminal state happened before).
func (j *Job) finalize(s State, sum stats.Summary, errMsg string) {
	j.mu.Lock()
	j.summary = sum
	j.errMsg = errMsg
	j.finished = time.Now()
	j.mu.Unlock()
	j.state.Store(int32(s))
	j.cancel() // release the context's timer, if any
	close(j.finishedCh)
}

// Status is the JSON view of a job.
type Status struct {
	ID        uint64         `json:"id"`
	Spec      JobSpec        `json:"spec"`
	State     string         `json:"state"`
	DoneRuns  int            `json:"done_runs"`
	TotalRuns int            `json:"total_runs"`
	Summary   *stats.Summary `json:"summary,omitempty"`
	// Check carries a check-mode job's report once the job finished.
	Check *check.Report `json:"check,omitempty"`
	Error string        `json:"error,omitempty"`
	// QueuedFor and RanFor are wall-clock stage durations in
	// milliseconds (RanFor is present once the job finished).
	QueuedForMs int64 `json:"queued_for_ms"`
	RanForMs    int64 `json:"ran_for_ms,omitempty"`
	// LeaseWaitMs is, for fleet-delegated jobs, the time between fleet
	// submission and the first shard lease (present once leased). The
	// execution timeout starts after this wait, not before.
	LeaseWaitMs *int64 `json:"lease_wait_ms,omitempty"`
}

// Status snapshots the job for the HTTP surface.
func (j *Job) Status() Status {
	st := j.State()
	done, total := j.Progress()
	j.mu.Lock()
	defer j.mu.Unlock()
	out := Status{
		ID:        j.ID,
		Spec:      j.Spec,
		State:     st.String(),
		DoneRuns:  done,
		TotalRuns: total,
		Error:     j.errMsg,
	}
	switch {
	case j.started.IsZero():
		out.QueuedForMs = time.Since(j.submitted).Milliseconds()
	default:
		out.QueuedForMs = j.started.Sub(j.submitted).Milliseconds()
	}
	if !j.finished.IsZero() && !j.started.IsZero() {
		out.RanForMs = j.finished.Sub(j.started).Milliseconds()
	}
	if j.leased {
		ms := j.leaseWait.Milliseconds()
		out.LeaseWaitMs = &ms
	}
	if j.Spec.Mode != "check" && (st == Succeeded || (st == Failed || st == Cancelled) && j.summary.Runs > 0) {
		s := j.summary
		out.Summary = &s
	}
	out.Check = j.report
	return out
}

// Manager owns the job queue and its worker pool.
type Manager struct {
	reg     *Registry
	metrics *Metrics
	log     *slog.Logger
	// fleet, when non-nil, delegates job execution to a distributed
	// coordinator instead of the in-process engines (see runFleetJob).
	fleet *fleet.Coordinator

	queue chan *Job
	quit  chan struct{}
	wg    sync.WaitGroup

	closed  atomic.Bool
	running atomic.Int64

	mu     sync.Mutex
	jobs   map[uint64]*Job
	order  []uint64
	nextID uint64
}

// ManagerOption configures a Manager at construction time.
type ManagerOption func(*Manager)

// WithManagerLogger installs a structured logger for the job lifecycle
// (accept, start, finish, cancel, shutdown). Every record about a job
// carries its "job" ID attribute. The default discards.
func WithManagerLogger(l *slog.Logger) ManagerOption {
	return func(m *Manager) {
		if l != nil {
			m.log = l
		}
	}
}

// WithFleet delegates job execution to the given coordinator: each
// accepted job becomes a fleet job, sharded across whatever workers
// serve that coordinator, and the merged result is byte-identical to
// the in-process engines. With a fleet, a job's TimeoutMs bounds
// execution from the first shard lease instead of from submission —
// fleet queue wait (workers busy with earlier jobs) is visible in
// Status.LeaseWaitMs and the lease-wait histogram, not charged against
// the job's own budget.
func WithFleet(c *fleet.Coordinator) ManagerOption {
	return func(m *Manager) { m.fleet = c }
}

// discardLogger drops every record; the structured-logging default for
// embedded use (tests, smoke runs) where nothing consumes the stream.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// NewManager starts a manager draining a queue of the given capacity
// with the given number of concurrent job workers (each job additionally
// fans out over its own sweep workers).
func NewManager(reg *Registry, metrics *Metrics, queueSize, workers int, opts ...ManagerOption) *Manager {
	if queueSize < 1 {
		queueSize = 1
	}
	if workers < 1 {
		workers = 1
	}
	m := &Manager{
		reg:     reg,
		metrics: metrics,
		log:     discardLogger(),
		queue:   make(chan *Job, queueSize),
		quit:    make(chan struct{}),
		jobs:    make(map[uint64]*Job),
	}
	for _, opt := range opts {
		opt(m)
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// QueueDepth returns the number of jobs waiting in the queue.
func (m *Manager) QueueDepth() int { return len(m.queue) }

// RunningJobs returns the number of jobs currently executing.
func (m *Manager) RunningJobs() int { return int(m.running.Load()) }

// maxJobTimeout bounds TimeoutMs: a job asking for more than a day is a
// client bug, not a workload.
const maxJobTimeout = 24 * time.Hour

// maxJobBatch bounds JobSpec.Batch: each batch slot owns a full device
// plus app instance, so an absurd width is a client bug, not a workload.
const maxJobBatch = 1024

// Submit validates and enqueues a job. It never blocks: a full queue
// returns ErrQueueFull immediately (the HTTP layer's 429).
func (m *Manager) Submit(spec JobSpec) (*Job, error) {
	if m.closed.Load() {
		return nil, ErrClosed
	}
	bp, ok := m.reg.Lookup(spec.App)
	if !ok {
		return nil, fmt.Errorf("service: unknown blueprint %q (registered: %v)", spec.App, m.reg.Names())
	}
	kind, err := experiments.ParseRuntimeKind(spec.Runtime)
	if err != nil {
		return nil, err
	}
	switch spec.Mode {
	case "", "sweep":
		if spec.Runs <= 0 {
			return nil, fmt.Errorf("service: sweep job needs a positive run count (got %d)", spec.Runs)
		}
		if spec.Failures != 0 {
			return nil, fmt.Errorf("service: sweep job does not take a failure depth (got %d)", spec.Failures)
		}
	case "check":
		// The golden run determines the point count; Runs is meaningless.
		if spec.Runs != 0 {
			return nil, fmt.Errorf("service: check job does not take a run count (got %d)", spec.Runs)
		}
		if spec.Batch != 0 {
			return nil, fmt.Errorf("service: check job does not take a batch width (got %d)", spec.Batch)
		}
		if spec.Failures != 0 {
			if err := check.ValidateFailures(spec.Failures); err != nil {
				return nil, fmt.Errorf("service: %w", err)
			}
		}
	default:
		return nil, fmt.Errorf("service: unknown mode %q (want \"sweep\" or \"check\")", spec.Mode)
	}
	if spec.TimeoutMs < 0 || time.Duration(spec.TimeoutMs)*time.Millisecond > maxJobTimeout {
		return nil, fmt.Errorf("service: timeout %d ms out of range (want 0 for none, at most 24h)", spec.TimeoutMs)
	}
	if spec.Batch < 0 || spec.Batch > maxJobBatch {
		return nil, fmt.Errorf("service: batch width %d out of range (want 0-%d)", spec.Batch, maxJobBatch)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var fleetTimeout time.Duration
	switch {
	case spec.TimeoutMs > 0 && m.fleet != nil:
		// Fleet mode arms the deadline at the first shard lease (see
		// runFleetJob), so fleet queue wait is not charged.
		fleetTimeout = time.Duration(spec.TimeoutMs) * time.Millisecond
	case spec.TimeoutMs > 0:
		ctx, cancel = context.WithTimeout(context.Background(), time.Duration(spec.TimeoutMs)*time.Millisecond)
	}
	j := &Job{
		Spec:       spec,
		bp:         bp,
		kind:       kind,
		ctx:        ctx,
		cancel:     cancel,
		timeout:    fleetTimeout,
		submitted:  time.Now(),
		finishedCh: make(chan struct{}),
	}
	j.total.Store(int64(spec.Runs)) // check jobs learn their total from the golden pass

	m.mu.Lock()
	m.nextID++
	j.ID = m.nextID
	m.mu.Unlock()

	select {
	case m.queue <- j:
	default:
		cancel()
		m.metrics.JobsRejected.Add(1)
		m.log.Warn("job rejected: queue full",
			"app", spec.App, "runtime", spec.Runtime, "mode", modeName(spec.Mode))
		return nil, ErrQueueFull
	}
	m.mu.Lock()
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.mu.Unlock()
	m.metrics.JobsAccepted.Add(1)
	m.log.Info("job accepted", "job", j.ID, "app", spec.App,
		"runtime", spec.Runtime, "mode", modeName(spec.Mode), "runs", spec.Runs)
	return j, nil
}

// modeName normalizes JobSpec.Mode for logs and metric labels ("" is a
// sweep).
func modeName(mode string) string {
	if mode == "" {
		return "sweep"
	}
	return mode
}

// Get returns the job with the given ID.
func (m *Manager) Get(id uint64) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs returns every known job in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Cancel cancels the job with the given ID.
func (m *Manager) Cancel(id uint64) bool {
	j, ok := m.Get(id)
	if !ok {
		return false
	}
	if changed := j.Cancel(); changed && j.State() == Cancelled {
		// The job went straight from queued to cancelled; a worker that
		// later pops it will skip it.
		m.metrics.JobsCancelled.Add(1)
	}
	m.log.Info("job cancel requested", "job", id, "state", j.State().String())
	return true
}

// Shutdown stops accepting jobs, lets in-flight sweeps drain, and
// cancels jobs still queued. If ctx expires first, running jobs are
// cancelled too (they stop within one seed boundary) and Shutdown waits
// for the workers before returning ctx's error.
func (m *Manager) Shutdown(ctx context.Context) error {
	if !m.closed.CompareAndSwap(false, true) {
		return nil
	}
	m.log.Info("manager shutting down",
		"queued", m.QueueDepth(), "running", m.RunningJobs())
	close(m.quit)

	workersDone := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(workersDone)
	}()

	var err error
	select {
	case <-workersDone:
	case <-ctx.Done():
		err = ctx.Err()
		for _, j := range m.Jobs() {
			j.Cancel()
		}
		<-workersDone
	}

	// Workers are gone; fail over whatever is still queued.
	for {
		select {
		case j := <-m.queue:
			if j.state.CompareAndSwap(int32(Queued), int32(Cancelled)) {
				j.finalize(Cancelled, stats.Summary{}, "service shut down before the job started")
				m.metrics.JobsCancelled.Add(1)
			}
		default:
			return err
		}
	}
}

// worker drains the queue until shutdown. Checking quit only between
// jobs is what makes shutdown graceful: the job in flight finishes (or
// is cancelled through its own context) before the worker exits.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.quit:
			return
		case j := <-m.queue:
			m.runJob(j)
		}
	}
}

// runJob executes one job with panic isolation: a panicking app or
// runtime fails its job, never the server.
func (m *Manager) runJob(j *Job) {
	if !j.state.CompareAndSwap(int32(Queued), int32(Running)) {
		return // cancelled while queued; already finalized
	}
	j.mu.Lock()
	j.started = time.Now()
	queued := j.started.Sub(j.submitted)
	j.mu.Unlock()
	m.running.Add(1)
	defer m.running.Add(-1)

	mode := modeName(j.Spec.Mode)
	jl := m.log.With("job", j.ID)
	m.metrics.QueueWait.Observe(mode, queued.Seconds())
	jl.Info("job started", "app", j.Spec.App, "runtime", j.Spec.Runtime,
		"mode", mode, "queued_ms", queued.Milliseconds())
	// Registered before the recover barrier so it observes the finalized
	// job even when the job panicked.
	defer m.observeFinished(j, jl)

	defer func() {
		if r := recover(); r != nil {
			m.metrics.JobsPanicked.Add(1)
			m.metrics.JobsFailed.Add(1)
			j.finalize(Failed, stats.Summary{}, fmt.Sprintf("job panicked: %v", r))
		}
	}()

	if m.fleet != nil {
		m.runFleetJob(j)
		return
	}

	if j.Spec.Mode == "check" {
		m.runCheckJob(j)
		return
	}

	cfg := experiments.Config{
		Runs:     j.Spec.Runs,
		BaseSeed: j.Spec.BaseSeed,
		Workers:  j.Spec.Workers,
		Batch:    j.Spec.Batch,
		Progress: func(done, total int) {
			j.done.Store(int64(done))
			m.metrics.RunsCompleted.Add(1)
		},
	}
	sum, err := experiments.RunManyCtx(j.ctx, cfg, j.bp.Factory, j.kind)
	m.metrics.NoteSummary(sum)
	switch {
	case j.ctx.Err() != nil:
		m.metrics.JobsCancelled.Add(1)
		j.finalize(Cancelled, sum, j.ctx.Err().Error())
	case err != nil:
		var pe experiments.PanicError
		if errors.As(err, &pe) {
			m.metrics.JobsPanicked.Add(1)
		}
		m.metrics.JobsFailed.Add(1)
		j.finalize(Failed, sum, err.Error())
	default:
		m.metrics.JobsCompleted.Add(1)
		j.finalize(Succeeded, sum, "")
	}
}

// observeFinished folds a finished job into the latency and throughput
// histograms and logs its outcome. It runs after finalize (the recover
// barrier included), so the terminal state and timestamps are set.
func (m *Manager) observeFinished(j *Job, jl *slog.Logger) {
	st := j.State()
	mode := modeName(j.Spec.Mode)
	j.mu.Lock()
	ran := j.finished.Sub(j.started)
	errMsg := j.errMsg
	j.mu.Unlock()
	m.metrics.JobDuration.Observe(mode, ran.Seconds())
	done, total := j.Progress()
	if ran > 0 {
		rate := float64(done) / ran.Seconds()
		if mode == "check" {
			m.metrics.CheckRate.Observe(mode, rate)
		} else {
			m.metrics.SweepRate.Observe(mode, rate)
		}
	}
	attrs := []any{"state", st.String(), "ran_ms", ran.Milliseconds(),
		"done", done, "total", total}
	if errMsg != "" {
		attrs = append(attrs, "error", errMsg)
	}
	if st == Failed {
		jl.Error("job finished", attrs...)
		return
	}
	jl.Info("job finished", attrs...)
}

// runFleetJob delegates one job to the fleet coordinator and waits for
// the merged result — byte-identical to what the in-process path would
// have produced, so delegation changes scheduling, never results. That
// includes exhaustive nested (k > 1) checks, which the coordinator
// shards at the level-1 frontier so the checkpoint tree's subtrees grow
// on fleet workers. While waiting, a watcher mirrors shard progress
// into the job (Progress counts shards, not seeds, in fleet mode) and
// arms the execution deadline when the first shard lease is granted.
func (m *Manager) runFleetJob(j *Job) {
	mode := modeName(j.Spec.Mode)
	fspec := fleet.Spec{
		Mode: fleet.ModeSweep, App: j.Spec.App, Runtime: j.Spec.Runtime,
		Runs: j.Spec.Runs, BaseSeed: j.Spec.BaseSeed, ShardWorkers: j.Spec.Workers,
	}
	if mode == "check" {
		fspec.Mode = fleet.ModeCheck
		fspec.Runs = 0
		fspec.BaseSeed = 0
		fspec.Seed = j.Spec.BaseSeed
		fspec.Grid = j.Spec.CheckGrid
		fspec.Exhaustive = j.Spec.CheckExhaustive
		fspec.Failures = j.Spec.Failures
	}
	fid, err := m.fleet.Submit(fspec)
	if err != nil {
		m.metrics.JobsFailed.Add(1)
		j.finalize(Failed, stats.Summary{}, err.Error())
		return
	}

	watchDone := make(chan struct{})
	watchExited := make(chan struct{})
	go func() {
		defer close(watchExited)
		m.watchFleetJob(j, fid, mode, watchDone)
	}()
	res, err := m.fleet.Wait(j.ctx, fid)
	close(watchDone)
	// Join the watcher before finalizing: its exit path takes a last
	// progress/lease snapshot, which must land before Done() readers see
	// the terminal status.
	<-watchExited

	switch {
	case j.ctx.Err() != nil:
		// The fleet has no per-job cancel: the coordinator finishes the
		// job for whoever else may wait on it; this job just stops
		// waiting.
		m.metrics.JobsCancelled.Add(1)
		j.finalize(Cancelled, stats.Summary{}, j.ctx.Err().Error())
	case err != nil:
		m.metrics.JobsFailed.Add(1)
		j.finalize(Failed, stats.Summary{}, err.Error())
	case res.Mode == fleet.ModeCheck:
		m.metrics.CheckPoints.Add(int64(res.Report.Explored))
		m.metrics.CheckDivergences.Add(int64(len(res.Report.Divergences)))
		m.metrics.NoteCheckReport(res.Report)
		j.mu.Lock()
		j.report = res.Report
		j.mu.Unlock()
		m.metrics.JobsCompleted.Add(1)
		j.finalize(Succeeded, stats.Summary{}, "")
	default:
		m.metrics.NoteSummary(res.Summary)
		m.metrics.RunsCompleted.Add(int64(res.Summary.Runs))
		if len(res.Errs) > 0 {
			// Mirror the in-process contract: per-run failures fail the
			// job but keep the partial summary.
			m.metrics.JobsFailed.Add(1)
			j.finalize(Failed, res.Summary, strings.Join(res.Errs, "; "))
			return
		}
		m.metrics.JobsCompleted.Add(1)
		j.finalize(Succeeded, res.Summary, "")
	}
}

// watchFleetJob mirrors a fleet job's shard progress into the service
// job and, once the first shard lease lands, records the lease wait and
// arms the execution deadline (j.timeout counts from here — the fix for
// charging fleet queue wait against the job's own budget).
func (m *Manager) watchFleetJob(j *Job, fid uint64, mode string, done <-chan struct{}) {
	t := time.NewTicker(5 * time.Millisecond)
	defer t.Stop()
	var deadline *time.Timer
	defer func() {
		if deadline != nil {
			deadline.Stop()
		}
	}()
	leased := false
	observe := func() {
		if sdone, stotal, ok := m.fleet.Progress(fid); ok {
			j.done.Store(int64(sdone))
			j.total.Store(int64(stotal))
		}
		if leased {
			return
		}
		sub, first, ok := m.fleet.LeaseInfo(fid)
		if !ok || first.IsZero() {
			return
		}
		leased = true
		wait := first.Sub(sub)
		m.metrics.LeaseWait.Observe(mode, wait.Seconds())
		j.mu.Lock()
		j.leased = true
		j.leaseWait = wait
		j.mu.Unlock()
		if j.timeout > 0 {
			deadline = time.AfterFunc(j.timeout, j.cancel)
		}
	}
	for {
		select {
		case <-done:
			// A job can finish between ticks; take a final snapshot so
			// the progress counters and lease wait are never dropped.
			observe()
			return
		case <-t.C:
			observe()
		}
	}
}

// runCheckJob executes one failure-point check. A report with divergences
// is a successful job — the divergences are the result, surfaced through
// Status.Check and the divergence counter; only an engine error or
// cancellation is a non-success.
func (m *Manager) runCheckJob(j *Job) {
	cfg := check.Config{
		Seed:       j.Spec.BaseSeed,
		Failures:   j.Spec.Failures,
		Grid:       j.Spec.CheckGrid,
		Exhaustive: j.Spec.CheckExhaustive,
		Workers:    j.Spec.Workers,
		Progress: func(explored, planned int) {
			j.done.Store(int64(explored))
			j.total.Store(int64(planned))
			m.metrics.CheckPoints.Add(1)
		},
	}
	rep, err := check.Run(j.ctx, j.bp.Factory, j.kind, cfg)
	if rep != nil {
		m.metrics.CheckDivergences.Add(int64(len(rep.Divergences)))
		m.metrics.NoteCheckReport(rep)
		j.mu.Lock()
		j.report = rep
		j.mu.Unlock()
	}
	switch {
	case j.ctx.Err() != nil:
		m.metrics.JobsCancelled.Add(1)
		j.finalize(Cancelled, stats.Summary{}, j.ctx.Err().Error())
	case err != nil:
		m.metrics.JobsFailed.Add(1)
		j.finalize(Failed, stats.Summary{}, err.Error())
	default:
		m.metrics.JobsCompleted.Add(1)
		j.finalize(Succeeded, stats.Summary{}, "")
	}
}
