// The observability surface: monotonic counters and derived gauges
// exported in the Prometheus text exposition format, plus the work-split
// accumulator that turns job summaries into the wasted-vs-app gauges the
// paper's evaluation revolves around.

package service

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"easeio/internal/check"
	"easeio/internal/obs"
	"easeio/internal/stats"
)

// Metrics aggregates service-lifetime counters. All counter fields are
// safe for concurrent use; the work-split accumulator is mutex-guarded.
type Metrics struct {
	start time.Time

	JobsAccepted  atomic.Int64
	JobsRejected  atomic.Int64
	JobsCompleted atomic.Int64
	JobsFailed    atomic.Int64
	JobsCancelled atomic.Int64
	JobsPanicked  atomic.Int64
	RunsCompleted atomic.Int64

	// CheckPoints counts failure points explored by check-mode jobs;
	// CheckDivergences counts the subset that diverged from golden.
	CheckPoints      atomic.Int64
	CheckDivergences atomic.Int64

	// The depth-labeled split of the two counters above: schedules
	// replayed and divergences found per failure depth (depth 1 is the
	// single-failure checker; deeper levels are the k > 1 checkpoint
	// tree). Exposed as easeio_check_depth_points_total{depth="N"} /
	// easeio_check_depth_divergences_total{depth="N"}.
	depthMu   sync.Mutex
	depthPts  map[int]int64
	depthDivs map[int]int64

	// The distribution surface: per-job latency and throughput
	// histograms, labeled by job mode where both modes flow in.
	JobDuration *obs.Histogram
	QueueWait   *obs.Histogram
	SweepRate   *obs.Histogram
	CheckRate   *obs.Histogram
	// LeaseWait tracks, for fleet-delegated jobs, the time between
	// submission and the first shard lease — the queueing delay the
	// execution timeout must not charge against the job (see jobs.go).
	LeaseWait *obs.Histogram

	mu       sync.Mutex
	appT     time.Duration
	overT    time.Duration
	wastedT  time.Duration
	sumRuns  int64
	correct  int64
	badRuns  int64
	stuck    int64
	failures int64
}

// NewMetrics returns a metrics set anchored at the current time (the
// runs-per-second gauge divides by service uptime).
func NewMetrics() *Metrics {
	return &Metrics{
		start: time.Now(),
		JobDuration: obs.NewHistogram("easeio_job_duration_seconds",
			"Wall-clock execution time of finished jobs.", "mode", obs.LatencyBuckets),
		QueueWait: obs.NewHistogram("easeio_job_queue_wait_seconds",
			"Time jobs spent waiting in the bounded queue before a worker picked them up.", "mode", obs.LatencyBuckets),
		SweepRate: obs.NewHistogram("easeio_job_runs_per_second",
			"Per-job sweep throughput (finished seeded runs over execution time).", "mode", obs.RateBuckets),
		CheckRate: obs.NewHistogram("easeio_job_check_points_per_second",
			"Per-job check throughput (explored failure points over execution time).", "mode", obs.RateBuckets),
		LeaseWait: obs.NewHistogram("easeio_job_lease_wait_seconds",
			"Time fleet-delegated jobs waited between submission and their first shard lease.", "mode", obs.LatencyBuckets),
	}
}

// NoteCheckReport folds a completed check report into the depth-labeled
// exploration counters. Level-1 points come from the report's top-level
// Explored; deeper levels from the checkpoint tree's per-depth stats. A
// divergence's depth is the length of its failure schedule (single-
// failure divergences carry their schedule implicitly in At).
func (m *Metrics) NoteCheckReport(rep *check.Report) {
	if rep == nil {
		return
	}
	m.depthMu.Lock()
	defer m.depthMu.Unlock()
	if m.depthPts == nil {
		m.depthPts = make(map[int]int64)
		m.depthDivs = make(map[int]int64)
	}
	m.depthPts[1] += int64(rep.Explored)
	for _, ds := range rep.Depths {
		m.depthPts[ds.Depth] += int64(ds.Explored)
	}
	for _, dv := range rep.Divergences {
		depth := len(dv.Schedule)
		if depth == 0 {
			depth = 1
		}
		m.depthDivs[depth]++
	}
}

// NoteSummary folds one job's (possibly partial) sweep summary into the
// cumulative work-split gauges. Summary work fields are per-run means, so
// each is weighted back by the summary's run count.
func (m *Metrics) NoteSummary(s stats.Summary) {
	if s.Runs == 0 {
		return
	}
	n := time.Duration(s.Runs)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.appT += s.Work[stats.App].T * n
	m.overT += s.Work[stats.Overhead].T * n
	m.wastedT += s.Work[stats.Wasted].T * n
	m.sumRuns += int64(s.Runs)
	m.correct += int64(s.CorrectRuns)
	m.badRuns += int64(s.IncorrectRuns)
	m.stuck += int64(s.StuckRuns)
	m.failures += int64(s.PowerFailures)
}

// WastedRatio returns cumulative wasted work time over cumulative app
// work time across every summarized job (0 before any work).
func (m *Metrics) WastedRatio() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.appT == 0 {
		return 0
	}
	return float64(m.wastedT) / float64(m.appT)
}

// writeDepthCounters renders the depth-labeled check counters. Families
// with no samples are omitted entirely (the service may never run a
// check job); label values are emitted in ascending depth order so the
// exposition is deterministic.
func (m *Metrics) writeDepthCounters(w io.Writer) {
	m.depthMu.Lock()
	defer m.depthMu.Unlock()
	family := func(name, help string, byDepth map[int]int64) {
		if len(byDepth) == 0 {
			return
		}
		depths := make([]int, 0, len(byDepth))
		for d := range byDepth {
			depths = append(depths, d)
		}
		sort.Ints(depths)
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, d := range depths {
			fmt.Fprintf(w, "%s{depth=%q} %d\n", name, strconv.Itoa(d), byDepth[d])
		}
	}
	family("easeio_check_depth_points_total",
		"Failure schedules replayed per failure depth (1 = single failure, >1 = nested).", m.depthPts)
	family("easeio_check_depth_divergences_total",
		"Divergent schedules per failure depth.", m.depthDivs)
}

// WriteTo renders the metrics in the Prometheus text exposition format.
// queueDepth and running are point-in-time gauges owned by the manager,
// passed in so Metrics stays a pure accumulator.
func (m *Metrics) WriteTo(w io.Writer, queueDepth, running int) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	counter("easeio_jobs_accepted_total", "Sweep jobs accepted into the queue.", m.JobsAccepted.Load())
	counter("easeio_jobs_rejected_total", "Sweep jobs rejected by backpressure (full queue).", m.JobsRejected.Load())
	counter("easeio_jobs_completed_total", "Sweep jobs that succeeded.", m.JobsCompleted.Load())
	counter("easeio_jobs_failed_total", "Sweep jobs that failed (including panics).", m.JobsFailed.Load())
	counter("easeio_jobs_cancelled_total", "Sweep jobs cancelled before completion.", m.JobsCancelled.Load())
	counter("easeio_jobs_panicked_total", "Sweep jobs terminated by a recovered panic.", m.JobsPanicked.Load())
	counter("easeio_runs_completed_total", "Seeded simulation runs finished across all jobs.", m.RunsCompleted.Load())
	counter("easeio_check_points_total", "Failure points explored by check-mode jobs.", m.CheckPoints.Load())
	counter("easeio_check_divergences_total", "Explored failure points that diverged from the golden run.", m.CheckDivergences.Load())
	m.writeDepthCounters(w)

	gauge("easeio_queue_depth", "Jobs waiting in the bounded queue.", float64(queueDepth))
	gauge("easeio_running_jobs", "Jobs currently executing.", float64(running))

	m.JobDuration.Expose(w)
	m.QueueWait.Expose(w)
	m.SweepRate.Expose(w)
	m.CheckRate.Expose(w)
	m.LeaseWait.Expose(w)

	uptime := time.Since(m.start).Seconds()
	gauge("easeio_uptime_seconds", "Seconds since the service started.", uptime)
	if uptime > 0 {
		gauge("easeio_runs_per_second", "Lifetime average simulation runs per second.",
			float64(m.RunsCompleted.Load())/uptime)
	}

	m.mu.Lock()
	appT, overT, wastedT := m.appT, m.overT, m.wastedT
	sumRuns, correct, bad, stuck, failures := m.sumRuns, m.correct, m.badRuns, m.stuck, m.failures
	m.mu.Unlock()
	counter("easeio_summarized_runs_total", "Runs folded into completed job summaries.", sumRuns)
	counter("easeio_correct_runs_total", "Runs whose output matched the golden result.", correct)
	counter("easeio_incorrect_runs_total", "Runs whose output diverged from the golden result.", bad)
	counter("easeio_stuck_runs_total", "Runs abandoned because the harvester could not recharge.", stuck)
	counter("easeio_power_failures_total", "Simulated power failures across all summarized runs.", failures)
	gauge("easeio_app_work_seconds_total", "Cumulative committed application work time.", appT.Seconds())
	gauge("easeio_overhead_work_seconds_total", "Cumulative committed runtime-overhead time.", overT.Seconds())
	gauge("easeio_wasted_work_seconds_total", "Cumulative work lost to power failures.", wastedT.Seconds())
	if appT > 0 {
		gauge("easeio_wasted_work_ratio", "Wasted work time over useful app work time.",
			float64(wastedT)/float64(appT))
		gauge("easeio_overhead_work_ratio", "Runtime overhead time over useful app work time.",
			float64(overT)/float64(appT))
	}
}
