// Observability tests: the Prometheus exposition's content type and
// histogram series, the pprof mount (off by default, parameter-validated
// when on), and well-formedness of the structured log stream under
// concurrent jobs (run with -race). The histogram/counter primitives
// themselves are tested in internal/obs.

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMetricsContentType pins the exposition content type scrapers key
// on (the 0.0.4 text format).
func TestMetricsContentType(t *testing.T) {
	_, _, _, srv := newTestStack(t, 4, 1)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "text/plain; version=0.0.4" {
		t.Errorf("content type = %q, want %q", got, "text/plain; version=0.0.4")
	}
}

// TestMetricsHistograms runs one sweep job and asserts the latency and
// throughput histograms show up with the right series shape: cumulative
// buckets ending at +Inf, _sum and _count, all labeled by mode.
func TestMetricsHistograms(t *testing.T) {
	mgr, _, _, srv := newTestStack(t, 4, 1)
	j, err := mgr.Submit(JobSpec{App: "temp", Runtime: "EaseIO", Runs: 8, BaseSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)

	for _, want := range []string{
		"# TYPE easeio_job_duration_seconds histogram",
		"# TYPE easeio_job_queue_wait_seconds histogram",
		"# TYPE easeio_job_runs_per_second histogram",
		"# TYPE easeio_job_check_points_per_second histogram",
		`easeio_job_duration_seconds_bucket{mode="sweep",le="+Inf"} 1`,
		`easeio_job_duration_seconds_count{mode="sweep"} 1`,
		`easeio_job_queue_wait_seconds_count{mode="sweep"} 1`,
		`easeio_job_runs_per_second_count{mode="sweep"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Buckets must be cumulative: every bucket count ≤ the +Inf count.
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, `easeio_job_duration_seconds_bucket{mode="sweep"`) {
			continue
		}
		var n uint64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &n); err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if n > 1 {
			t.Errorf("bucket count %d exceeds observation count 1: %q", n, line)
		}
	}
}

// TestPprofDisabledByDefault: the profiling endpoints expose host detail
// and must not be mounted unless asked for.
func TestPprofDisabledByDefault(t *testing.T) {
	_, _, _, srv := newTestStack(t, 4, 1)
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/pprof/ without WithPprof: status %d, want 404", resp.StatusCode)
	}
}

// TestPprofEndpoints mounts the profiling surface and checks both the
// happy path and the negative surface: malformed or out-of-range
// seconds parameters are a 400, never a silent default-length capture.
func TestPprofEndpoints(t *testing.T) {
	reg := NewRegistry()
	metrics := NewMetrics()
	mgr := NewManager(reg, metrics, 1, 1)
	t.Cleanup(func() { _ = mgr.Shutdown(context.Background()) })
	srv := httptest.NewServer(NewServer(mgr, reg, metrics, WithPprof()).Handler())
	t.Cleanup(srv.Close)

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := get("/debug/pprof/"); got != http.StatusOK {
		t.Errorf("pprof index: status %d", got)
	}
	if got := get("/debug/pprof/cmdline"); got != http.StatusOK {
		t.Errorf("pprof cmdline: status %d", got)
	}
	for _, path := range []string{
		"/debug/pprof/profile?seconds=abc",
		"/debug/pprof/profile?seconds=-1",
		"/debug/pprof/profile?seconds=0",
		"/debug/pprof/profile?seconds=86400",
		"/debug/pprof/trace?seconds=abc",
		"/debug/pprof/trace?seconds=1e9",
	} {
		if got := get(path); got != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", path, got)
		}
	}
}

// lockedBuffer is a concurrency-safe log sink. slog handlers emit one
// Write per record, so line atomicity holds under the lock.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (lb *lockedBuffer) Write(p []byte) (int, error) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.b.Write(p)
}

func (lb *lockedBuffer) String() string {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.b.String()
}

// TestSlogWellFormedUnderConcurrency drives several jobs through a
// multi-worker manager with a JSON slog handler attached and asserts
// every emitted record is a parseable JSON object. Run under -race this
// also checks the logging paths for data races.
func TestSlogWellFormedUnderConcurrency(t *testing.T) {
	sink := &lockedBuffer{}
	logger := slog.New(slog.NewJSONHandler(sink, nil))

	reg := NewRegistry()
	reg.SetLogger(logger)
	if err := RegisterPaperBenches(reg); err != nil {
		t.Fatal(err)
	}
	metrics := NewMetrics()
	mgr := NewManager(reg, metrics, 16, 4, WithManagerLogger(logger))

	jobs := make([]*Job, 0, 8)
	for i := 0; i < 8; i++ {
		j, err := mgr.Submit(JobSpec{App: "dma", Runtime: "EaseIO", Runs: 4, BaseSeed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		<-j.Done()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := mgr.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	var started, finished int
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("malformed log line %q: %v", line, err)
		}
		if rec["msg"] == nil || rec["level"] == nil {
			t.Errorf("log record missing msg/level: %q", line)
		}
		switch rec["msg"] {
		case "job started":
			started++
		case "job finished":
			finished++
		}
	}
	if started != 8 || finished != 8 {
		t.Errorf("got %d started / %d finished records, want 8/8", started, finished)
	}
}
