// The HTTP/JSON front end. Routes:
//
//	GET    /healthz        liveness + queue/worker snapshot
//	GET    /metrics        Prometheus text exposition
//	GET    /blueprints     registered apps (analyzed descriptions)
//	POST   /jobs           submit a sweep or check job (202, or 429 under backpressure)
//	GET    /jobs           list all jobs
//	GET    /jobs/{id}      one job's status, progress and summary
//	DELETE /jobs/{id}      cancel a job
//
// With WithPprof, the Go profiling endpoints are additionally mounted
// under GET /debug/pprof/.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"easeio/internal/fleet"
)

// Server binds the manager, registry and metrics to an http.Handler.
type Server struct {
	mgr     *Manager
	reg     *Registry
	metrics *Metrics
	fleetM  *fleet.Metrics
	log     *slog.Logger
	pprof   bool
}

// ServerOption configures a Server at construction time.
type ServerOption func(*Server)

// WithAccessLog installs a structured access log: one record per request
// with method, path, status and duration.
func WithAccessLog(l *slog.Logger) ServerOption {
	return func(s *Server) {
		if l != nil {
			s.log = l
		}
	}
}

// WithFleetMetrics appends the fleet coordinator's metric series
// (per-worker leases, retries, WAL fsync latency, merge time) to the
// /metrics exposition of a server whose manager runs in fleet mode.
func WithFleetMetrics(fm *fleet.Metrics) ServerOption {
	return func(s *Server) { s.fleetM = fm }
}

// WithPprof mounts the Go runtime profiling handlers under
// /debug/pprof/. Off by default: the endpoints expose host-level detail
// (command line, heap contents) that an open sweep service should not
// serve unless the operator asked for it.
func WithPprof() ServerOption {
	return func(s *Server) { s.pprof = true }
}

// NewServer returns a server over the given components.
func NewServer(mgr *Manager, reg *Registry, metrics *Metrics, opts ...ServerOption) *Server {
	s := &Server{mgr: mgr, reg: reg, metrics: metrics}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Handler returns the service's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /blueprints", s.handleBlueprints)
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	if s.pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprofSeconds(pprof.Profile))
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprofSeconds(pprof.Trace))
	}
	if s.log == nil {
		return mux
	}
	return accessLog(s.log, mux)
}

// maxPprofSeconds caps the duration-taking profile captures: a CPU
// profile or execution trace blocks the handler for its full window.
const maxPprofSeconds = 60

// pprofSeconds guards the duration-taking pprof handlers. The stdlib
// handlers silently substitute a default (30 s!) for a malformed or
// non-positive seconds parameter; here that is a 400 instead, so a typo
// never turns into a surprise half-minute capture.
func pprofSeconds(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if raw := r.URL.Query().Get("seconds"); raw != "" {
			sec, err := strconv.ParseFloat(raw, 64)
			if err != nil || sec <= 0 || sec > maxPprofSeconds {
				writeError(w, http.StatusBadRequest, fmt.Errorf(
					"service: seconds must be a number in (0, %d], got %q", maxPprofSeconds, raw))
				return
			}
		}
		next(w, r)
	}
}

// statusRecorder captures the response code for the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// accessLog wraps next with one structured record per request.
func accessLog(l *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		l.Info("http request", "method", r.Method, "path", r.URL.Path,
			"status", rec.status, "dur_ms", time.Since(start).Milliseconds())
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       "ok",
		"queue_depth":  s.mgr.QueueDepth(),
		"running_jobs": s.mgr.RunningJobs(),
		"blueprints":   s.reg.Names(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WriteTo(w, s.mgr.QueueDepth(), s.mgr.RunningJobs())
	s.fleetM.Expose(w) // nil-safe no-op without a fleet
}

func (s *Server) handleBlueprints(w http.ResponseWriter, _ *http.Request) {
	infos := make([]Info, 0)
	for _, name := range s.reg.Names() {
		bp, ok := s.reg.Lookup(name)
		if !ok {
			continue
		}
		info, err := bp.Describe()
		if err != nil {
			info = Info{Name: name, App: "error: " + err.Error()}
		}
		infos = append(infos, info)
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.mgr.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, j.Status())
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.mgr.Jobs()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

// jobFromPath resolves the {id} path value, writing the error response
// itself when the job cannot be found.
func (s *Server) jobFromPath(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, false
	}
	j, ok := s.mgr.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("service: no such job"))
		return nil, false
	}
	return j, true
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobFromPath(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	s.mgr.Cancel(j.ID) // routes through the manager so queue-stage cancels are counted
	writeJSON(w, http.StatusOK, j.Status())
}
