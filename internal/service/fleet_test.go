// Fleet-mode service tests: a manager delegating to a coordinator must
// produce byte-identical results to the in-process path, surface the
// lease wait, and charge the execution timeout only from the first
// shard lease.

package service

import (
	"context"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"easeio/internal/check"
	"easeio/internal/experiments"
	"easeio/internal/fleet"
)

// newFleetStack builds a registry-backed coordinator plus a fleet-mode
// manager. Workers start separately so tests can control when leases
// become possible.
func newFleetStack(t *testing.T) (*Manager, *Registry, *fleet.Coordinator) {
	t.Helper()
	reg := NewRegistry()
	if err := RegisterPaperBenches(reg); err != nil {
		t.Fatal(err)
	}
	coord, err := fleet.New(fleet.CoordinatorConfig{
		WALPath: filepath.Join(t.TempDir(), "service.wal"),
		Source:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	metrics := NewMetrics()
	mgr := NewManager(reg, metrics, 8, 2, WithFleet(coord))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := mgr.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		coord.Close()
	})
	return mgr, reg, coord
}

// startWorkers runs n loopback workers against the coordinator.
func startWorkers(t *testing.T, coord *fleet.Coordinator, reg *Registry, n int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		name := "svc-w" + string(rune('0'+i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := fleet.RunLoopback(ctx, coord, name, reg, time.Millisecond); err != nil {
				t.Errorf("worker %s: %v", name, err)
			}
		}()
	}
	t.Cleanup(func() { cancel(); wg.Wait() })
}

func awaitJob(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(time.Minute):
		t.Fatalf("job %d did not finish: %+v", j.ID, j.Status())
	}
}

// TestFleetManagerByteIdentity pins the delegation contract end to end:
// a fleet-mode manager's sweep summary and check report equal the
// in-process engines', and the lease wait is surfaced in Status.
func TestFleetManagerByteIdentity(t *testing.T) {
	mgr, reg, coord := newFleetStack(t)
	startWorkers(t, coord, reg, 2)

	j, err := mgr.Submit(JobSpec{App: "dma", Runtime: "EaseIO", Runs: 12, BaseSeed: 4})
	if err != nil {
		t.Fatal(err)
	}
	awaitJob(t, j)
	if st := j.State(); st != Succeeded {
		t.Fatalf("sweep job state %v: %+v", st, j.Status())
	}
	bp, _ := reg.Lookup("dma")
	want, werr := experiments.RunMany(
		experiments.Config{Runs: 12, BaseSeed: 4}, bp.Factory, experiments.EaseIO)
	if werr != nil {
		t.Fatal(werr)
	}
	status := j.Status()
	if status.Summary == nil || !reflect.DeepEqual(*status.Summary, want) {
		t.Errorf("fleet-mode summary differs from RunMany:\n%+v\nvs\n%+v", status.Summary, want)
	}
	if status.LeaseWaitMs == nil {
		t.Error("fleet-mode status has no lease_wait_ms")
	}

	cj, err := mgr.Submit(JobSpec{App: "branch", Runtime: "Alpaca", Mode: "check", CheckExhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	awaitJob(t, cj)
	if st := cj.State(); st != Succeeded {
		t.Fatalf("check job state %v: %+v", st, cj.Status())
	}
	cbp, _ := reg.Lookup("branch")
	wantRep, werr := check.Run(context.Background(), cbp.Factory, experiments.Alpaca,
		check.Config{Exhaustive: true})
	if werr != nil {
		t.Fatal(werr)
	}
	if got := cj.Status().Check; got == nil || got.Render() != wantRep.Render() {
		t.Errorf("fleet-mode check report differs:\n--- fleet ---\n%s--- direct ---\n%s",
			got.Render(), wantRep.Render())
	}
}

// TestFleetTimeoutArmsAtFirstLease pins the timeout fix: with no workers
// available, a fleet job's timeout must not expire — the deadline is
// armed at the first shard lease, so unleased time is queue wait, not
// execution.
func TestFleetTimeoutArmsAtFirstLease(t *testing.T) {
	mgr, reg, coord := newFleetStack(t)

	// A timeout shorter than the worker-less wait below: the old
	// submission-anchored deadline would cancel this job before any
	// worker exists; the lease-anchored one must not.
	j, err := mgr.Submit(JobSpec{App: "temp", Runtime: "InK", Runs: 6, TimeoutMs: 500})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(800 * time.Millisecond)
	if st := j.State(); st != Running {
		t.Fatalf("unleased fleet job reached %v; the timeout charged queue wait", st)
	}
	if j.Status().LeaseWaitMs != nil {
		t.Error("lease_wait_ms set before any lease")
	}
	startWorkers(t, coord, reg, 2)
	awaitJob(t, j)
	if st := j.State(); st != Succeeded {
		t.Fatalf("job state %v after workers arrived: %+v", st, j.Status())
	}
	status := j.Status()
	if status.LeaseWaitMs == nil || *status.LeaseWaitMs < 700 {
		t.Errorf("lease_wait_ms = %v, want >= 700ms of recorded queue wait", status.LeaseWaitMs)
	}
}
