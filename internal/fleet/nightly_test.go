// Nightly-only fleet tests: depth budgets too slow for per-PR CI.
// These are gated on EASEIO_NIGHTLY_K3 and run from the nightly
// workflow's nested-check-k3 job; locally they skip in microseconds.

package fleet

import (
	"context"
	"os"
	"reflect"
	"testing"

	"easeio/internal/check"
)

// TestFleetNestedCheckK3ByteIdentity is the fleet-distributed twin of
// the nightly `easeio-check -k 3` runs: a k=3 exhaustive check sharded
// at the level-1 frontier over a multi-worker loopback fleet must
// DeepEqual (and render byte-identically to) the in-process checker,
// for every runtime in the check matrix. Per-PR CI pins the same
// contract at k=2 (TestFleetNestedCheckByteIdentity); this variant is
// the one place the three-deep subtree work units — each carrying a
// depth-2 frontier to grow — cross the fleet merge path.
func TestFleetNestedCheckK3ByteIdentity(t *testing.T) {
	if os.Getenv("EASEIO_NIGHTLY_K3") == "" {
		t.Skip("nightly-only: set EASEIO_NIGHTLY_K3=1 to run the fleet k=3 identity check")
	}
	c := newTestCoordinator(t, nil)
	startLoopback(t, c, 3)

	for _, kind := range checkKinds {
		spec := Spec{
			Mode: ModeCheck, App: "fig6", Runtime: kind.String(),
			Exhaustive: true, Failures: 3, Shards: 4, ShardWorkers: 2,
		}
		id, err := c.Submit(spec)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		res := waitResult(t, c, id)

		want, werr := check.Run(context.Background(), check.Fig6Bench, kind,
			check.Config{Exhaustive: true, Failures: 3, Workers: 2})
		if werr != nil {
			t.Fatalf("%s reference: %v", kind, werr)
		}
		if !reflect.DeepEqual(res.Report, want) {
			t.Errorf("%s: fleet k=3 report differs structurally from check.Run", kind)
		}
		if res.Report.Render() != want.Render() {
			t.Errorf("%s: fleet k=3 report differs from check.Run:\n--- fleet ---\n%s--- direct ---\n%s",
				kind, res.Report.Render(), want.Render())
		}
	}
}
