// The coordinator: plans submitted jobs into shards, leases shards to
// pulling workers, retries failures with backoff, revokes expired
// leases, and merges completed shards into the job's final result. Every
// state transition is WAL-logged before it takes effect (wal.go), and
// New replays the log so a restarted coordinator resumes mid-job: done
// shards stay done, leased-but-unfinished shards return to the pending
// queue (a lease is a hint, not a commitment — losing one costs only
// recomputation), and jobs whose shards all finished re-merge
// deterministically.

package fleet

import (
	"context"
	"fmt"
	"sync"
	"time"

	"easeio/internal/check"
	"easeio/internal/experiments"
	"easeio/internal/rtbase"
	"easeio/internal/stats"
	"easeio/internal/wire"
)

// CoordinatorConfig configures New. Zero values take the defaults noted
// on each field.
type CoordinatorConfig struct {
	// WALPath is the job store's backing file (required).
	WALPath string
	// Source resolves app names when planning check jobs and when
	// re-planning after recovery (required for check jobs).
	Source BlueprintSource
	// LeaseTTL revokes a shard lease not completed in time (default 1m).
	LeaseTTL time.Duration
	// MaxAttempts fails the whole job after this many failed attempts of
	// any single shard (default 3).
	MaxAttempts int
	// RetryBackoff delays a failed shard's next lease, doubling per
	// attempt up to 8x (default 250ms).
	RetryBackoff time.Duration
	// DefaultShards is the shard count for specs that leave Shards zero
	// (default 4).
	DefaultShards int
	// Metrics, when non-nil, collects the fleet metric set.
	Metrics *Metrics
	// Now overrides the coordinator clock (lease expiry, backoff) for
	// tests. WAL fsync and merge latencies always use the real clock:
	// they measure the host, not the job timeline.
	Now func() time.Time
}

// validate rejects config values that are not just "use the default":
// a negative knob is a caller bug (a miscomputed worker count, a bad
// flag parse), and silently coercing it to the default would hide that
// until a job hangs with no shards. Zero still means "default".
func (c CoordinatorConfig) validate() error {
	if c.DefaultShards < 0 {
		return fmt.Errorf("fleet: DefaultShards %d is negative (0 means default)", c.DefaultShards)
	}
	if c.MaxAttempts < 0 {
		return fmt.Errorf("fleet: MaxAttempts %d is negative (0 means default)", c.MaxAttempts)
	}
	if c.LeaseTTL < 0 {
		return fmt.Errorf("fleet: LeaseTTL %v is negative (0 means default)", c.LeaseTTL)
	}
	if c.RetryBackoff < 0 {
		return fmt.Errorf("fleet: RetryBackoff %v is negative (0 means default)", c.RetryBackoff)
	}
	return nil
}

func (c CoordinatorConfig) fill() CoordinatorConfig {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = time.Minute
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 250 * time.Millisecond
	}
	if c.DefaultShards <= 0 {
		c.DefaultShards = 4
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Shard lifecycle. A failed attempt returns the shard to shardPending
// (with backoff) until MaxAttempts, which fails the job.
type shardStatus int

const (
	shardPending shardStatus = iota
	shardLeased
	shardDone
)

// shardState is one shard's live state. lo/hi is the seed-index range
// (sweeps) or candidate cut range (checks).
type shardState struct {
	lo, hi      int
	st          shardStatus
	attempts    int // failed attempts so far
	worker      string
	leaseExpiry time.Time
	notBefore   time.Time // backoff gate on the next lease
	payload     []byte    // the encoded shard result once done
	// task is the pre-encoded task message for shards whose work unit
	// cannot be derived from the spec at lease time (subtree shards embed
	// root checkpoints recorded at plan time). Nil for range shards.
	task []byte
}

// job is one submitted job's live state.
type job struct {
	id   uint64
	spec Spec
	kind experiments.RuntimeKind

	planned bool
	hasPlan bool       // check jobs: plan holds the golden header
	plan    planHeader // valid when hasPlan
	// level1 marks a subtree-sharded nested check and holds its
	// coordinator-side level-1 exploration (an encoded wire.CheckResult)
	// that the merge folds in ahead of the shards' subtree results.
	level1    []byte
	shards    []*shardState
	remaining int // shards not yet done

	submitted  time.Time
	firstLease time.Time // zero until the first shard lease

	finished bool
	result   Result
	err      error
	done     chan struct{} // closed when finished
}

// Coordinator is the fleet's job manager. All methods are safe for
// concurrent use.
type Coordinator struct {
	cfg CoordinatorConfig

	mu    sync.Mutex
	wal   *wal
	jobs  map[uint64]*job
	order []uint64 // submission order, the lease scan order
	next  uint64
}

// New opens (or creates) the WAL at cfg.WALPath, replays it, and returns
// a coordinator resuming every unfinished job it finds there.
func New(cfg CoordinatorConfig) (*Coordinator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.fill()
	if cfg.WALPath == "" {
		return nil, fmt.Errorf("fleet: coordinator needs a WAL path")
	}
	var obsFsync func(time.Duration)
	if cfg.Metrics != nil {
		h := cfg.Metrics.WALFsync
		obsFsync = func(d time.Duration) { h.Observe("", d.Seconds()) }
	}
	w, recs, err := openWAL(cfg.WALPath, obsFsync)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{cfg: cfg, wal: w, jobs: make(map[uint64]*job)}
	for _, r := range recs {
		c.replay(r)
	}
	if err := c.recover(); err != nil {
		w.close()
		return nil, err
	}
	return c, nil
}

// Close releases the WAL. In-flight Wait calls are not interrupted.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wal.close()
}

// replay folds one recovered WAL record into the in-memory state. It is
// idempotent over duplicate records and tolerant of records for unknown
// jobs (a torn log can only lose a suffix, so those cannot happen from a
// crash; they would mean a foreign log, and are ignored rather than
// trusted).
func (c *Coordinator) replay(r record) {
	if r.Type == recSubmit {
		if _, ok := c.jobs[r.Job]; ok {
			return
		}
		j := &job{id: r.Job, spec: r.Spec, submitted: c.cfg.Now(), done: make(chan struct{})}
		j.kind, _ = experiments.ParseRuntimeKind(r.Spec.Runtime)
		c.jobs[r.Job] = j
		c.order = append(c.order, r.Job)
		if r.Job >= c.next {
			c.next = r.Job + 1
		}
		return
	}
	j, ok := c.jobs[r.Job]
	if !ok || j.finished {
		return
	}
	switch r.Type {
	case recPlan:
		if j.planned {
			return
		}
		c.installPlan(j, r.Shards, r.HasPlan, r.Plan, r.Level1, r.Tasks)
	case recLease:
		// Leases do not survive a restart — the shard stays pending and
		// will be re-leased without an attempt increment. The record
		// still matters: the job's first-lease time is durable, so the
		// execution-deadline clock does not restart with the coordinator.
		if j.firstLease.IsZero() {
			j.firstLease = time.Unix(0, r.At)
		}
	case recShardDone:
		if r.Shard < 0 || r.Shard >= len(j.shards) {
			return
		}
		sh := j.shards[r.Shard]
		if sh.st == shardDone {
			return
		}
		sh.st = shardDone
		sh.payload = r.Payload
		j.remaining--
	case recShardFail:
		if r.Shard < 0 || r.Shard >= len(j.shards) {
			return
		}
		sh := j.shards[r.Shard]
		sh.attempts++
		// The backoff gate survives the restart: it is derived from the
		// journaled failure time, not the replay clock, so a coordinator
		// that restarts immediately after a failure does not hand the
		// still-broken shard straight back out. Records written before the
		// failure time was journaled (At == 0) decode to an epoch-based
		// gate in the past — an immediate re-lease, exactly the old
		// behavior.
		sh.notBefore = time.Unix(0, r.At).Add(c.retryBackoff(sh.attempts))
	case recJobDone:
		res, err := decodeResultPayload(j.spec.Mode, r.Payload)
		if err != nil {
			// The payload was CRC-checked and decoded at merge time; a
			// failure here means the format changed underneath the log.
			c.finish(j, Result{}, fmt.Errorf("fleet: recovering job %d result: %w", r.Job, err))
			return
		}
		res.Errs = r.Errs
		c.finish(j, res, nil)
	case recJobFail:
		c.finish(j, Result{}, fmt.Errorf("fleet: job %d: %s", r.Job, r.Err))
	}
}

// recover completes the replay fold: jobs that crashed before their plan
// record re-plan now, and jobs whose last shard completed but whose
// merge record was lost re-merge (same inputs, same bytes).
func (c *Coordinator) recover() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range c.order {
		j := c.jobs[id]
		if j.finished {
			continue
		}
		if !j.planned {
			if err := c.planLocked(j); err != nil {
				if ferr := c.failJobLocked(j, err.Error()); ferr != nil {
					return ferr
				}
				continue
			}
		}
		if j.planned && j.remaining == 0 && !j.finished {
			if err := c.mergeLocked(j); err != nil {
				return err
			}
		}
	}
	return nil
}

// Submit accepts a job, plans its shards (for check jobs this runs the
// golden continuous-power pass synchronously — one uninterrupted run),
// logs both transitions, and returns the job id.
func (c *Coordinator) Submit(spec Spec) (uint64, error) {
	if err := spec.validate(); err != nil {
		return 0, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.next
	c.next++
	j := &job{id: id, spec: spec, submitted: c.cfg.Now(), done: make(chan struct{})}
	j.kind, _ = experiments.ParseRuntimeKind(spec.Runtime)
	if err := c.wal.append(record{Type: recSubmit, Job: id, Spec: spec}); err != nil {
		return 0, err
	}
	c.jobs[id] = j
	c.order = append(c.order, id)
	if err := c.planLocked(j); err != nil {
		if ferr := c.failJobLocked(j, err.Error()); ferr != nil {
			return 0, ferr
		}
		return id, nil
	}
	if j.remaining == 0 {
		// A plan with no shards (a check whose golden run never crossed a
		// charge-slice boundary) finishes at submit.
		if err := c.mergeLocked(j); err != nil {
			return 0, err
		}
	}
	return id, nil
}

// planLocked computes and logs the job's shard ranges. Sweep plans are
// pure arithmetic over the spec; check plans run the golden pass, and
// exhaustive nested (k > 1) checks additionally run the whole level-1
// exploration here, cutting the level-1 frontier into subtree shards.
func (c *Coordinator) planLocked(j *job) error {
	parts := j.spec.Shards
	if parts <= 0 {
		parts = c.cfg.DefaultShards
	}
	var (
		ranges  [][2]int
		hasPlan bool
		ph      planHeader
		level1  []byte
		tasks   [][]byte
		work    int
	)
	switch j.spec.Mode {
	case ModeSweep:
		ranges = splitRange(0, j.spec.Runs, parts)
		work = j.spec.Runs
	case ModeCheck:
		if c.cfg.Source == nil {
			return fmt.Errorf("fleet: check job %d needs a blueprint source", j.id)
		}
		factory, ok := c.cfg.Source.LookupFactory(j.spec.App)
		if !ok {
			return fmt.Errorf("fleet: unknown app %q", j.spec.App)
		}
		cfg := check.Config{
			Seed: j.spec.Seed, Off: j.spec.Off, Grid: j.spec.Grid,
			Failures: j.spec.Failures, Exhaustive: j.spec.Exhaustive,
		}
		if j.spec.Exhaustive && j.spec.Failures > 1 {
			var err error
			ranges, ph, level1, tasks, work, err = c.planNestedLocked(j, factory, cfg, parts)
			if err != nil {
				return err
			}
			hasPlan = true
			break
		}
		plan, err := check.Golden(factory, j.kind, cfg)
		if err != nil {
			return fmt.Errorf("fleet: plan check job %d: %w", j.id, err)
		}
		hasPlan = true
		ph = planHeader{
			App: plan.App, Runtime: plan.Runtime, Off: plan.Off,
			GoldenOnTime: plan.GoldenOnTime, GoldenCorrect: plan.GoldenCorrect,
			Candidates: plan.Candidates, Note: plan.Note,
		}
		work = plan.Candidates
		switch {
		case plan.Candidates == 0:
			ranges = nil
		case !j.spec.Exhaustive:
			// The adaptive bisection prunes against outcomes across the
			// whole candidate range: one shard, or the merge would not be
			// byte-identical to the in-process checker. (This also covers
			// adaptive k > 1 jobs, whose level 1 is adaptive.)
			ranges = [][2]int{{0, plan.Candidates}}
		default:
			ranges = splitRange(0, plan.Candidates, parts)
		}
	}
	// Plan-time invariant: pending work must yield at least one shard. A
	// job planned with work but no shards has no completion path — it
	// would sit unfinished forever — so fail fast here instead.
	if work > 0 && len(ranges) == 0 {
		return fmt.Errorf("fleet: job %d planned no shards over %d pending items (Shards=%d, DefaultShards=%d)",
			j.id, work, j.spec.Shards, c.cfg.DefaultShards)
	}
	if err := c.wal.append(record{Type: recPlan, Job: j.id, Shards: ranges,
		HasPlan: hasPlan, Plan: ph, Level1: level1, Tasks: tasks}); err != nil {
		return err
	}
	c.installPlan(j, ranges, hasPlan, ph, level1, tasks)
	return nil
}

// planNestedLocked plans an exhaustive nested check: it runs the golden
// pass plus the full level-1 exploration in the coordinator (the level-1
// range is never sharded — representative selection is a function of
// outcomes across the whole range), then cuts the level-1 frontier into
// contiguous groups of root checkpoints, each pre-encoded as one subtree
// shard task. The completed level-1 results ride along for the merge.
// Work is counted in frontier roots: a job whose level-1 exploration
// leaves nothing to expand legitimately plans zero shards and finishes
// at submit.
func (c *Coordinator) planNestedLocked(j *job, factory experiments.AppFactory, cfg check.Config, parts int) (
	ranges [][2]int, ph planHeader, level1 []byte, tasks [][]byte, work int, err error) {
	np, err := check.PlanNested(context.Background(), factory, j.kind, cfg)
	if err != nil {
		return nil, ph, nil, nil, 0, fmt.Errorf("fleet: plan check job %d: %w", j.id, err)
	}
	ph = planHeader{
		App: np.Plan.App, Runtime: np.Plan.Runtime, Off: np.Plan.Off,
		GoldenOnTime: np.Plan.GoldenOnTime, GoldenCorrect: np.Plan.GoldenCorrect,
		Candidates: np.Plan.Candidates, Note: np.Plan.Note,
	}
	if np.Plan.Candidates == 0 {
		return nil, ph, nil, nil, 0, nil
	}
	if np.Fallback {
		// The runtime cannot checkpoint: the whole job runs as one
		// undistributed shard, exactly as before subtree sharding.
		return [][2]int{{0, np.Plan.Candidates}}, ph, nil, nil, np.Plan.Candidates, nil
	}
	level1 = wire.AppendCheckResult(nil, wire.CheckResult{
		Job: j.id, Explored: np.Explored, Pruned: np.Pruned, Divergences: np.Divergences,
	})
	ranges = splitRange(0, len(np.Seeds), parts)
	tasks = make([][]byte, len(ranges))
	for i, rg := range ranges {
		roots := make([]wire.SubtreeRoot, 0, rg[1]-rg[0])
		for _, seed := range np.Seeds[rg[0]:rg[1]] {
			cpb, err := wire.EncodeCheckpoint(nil, seed.Dev)
			if err != nil {
				return nil, ph, nil, nil, 0, fmt.Errorf("fleet: job %d: encode subtree root: %w", j.id, err)
			}
			st, ok := seed.RT.(*rtbase.BaseState)
			if !ok {
				return nil, ph, nil, nil, 0, fmt.Errorf("fleet: job %d: runtime state %T is not wire-encodable", j.id, seed.RT)
			}
			roots = append(roots, wire.SubtreeRoot{
				Schedule: seed.Schedule, Collapsed: seed.Collapsed,
				Checkpoint: cpb, RT: st.Export(),
			})
		}
		tasks[i] = wire.AppendSubtreeShard(nil, wire.SubtreeShard{
			Job: j.id, Shard: i, App: j.spec.App, Runtime: j.spec.Runtime,
			Seed: j.spec.Seed, Off: ph.Off, Failures: j.spec.Failures,
			Exhaustive: true, Grid: j.spec.Grid, Workers: j.spec.ShardWorkers,
			Roots: roots,
		})
	}
	return ranges, ph, level1, tasks, len(np.Seeds), nil
}

// installPlan applies a planned (or replayed) shard layout.
func (c *Coordinator) installPlan(j *job, ranges [][2]int, hasPlan bool, ph planHeader, level1 []byte, tasks [][]byte) {
	j.planned = true
	j.hasPlan = hasPlan
	j.plan = ph
	j.level1 = level1
	j.shards = make([]*shardState, len(ranges))
	for i, r := range ranges {
		sh := &shardState{lo: r[0], hi: r[1]}
		if i < len(tasks) {
			sh.task = tasks[i]
		}
		j.shards[i] = sh
	}
	j.remaining = len(ranges)
}

// splitRange splits [lo, hi) into at most parts contiguous near-equal
// pieces, mirroring the sweep engine's internal sharding. parts < 1 with
// work remaining degrades to one shard covering everything: returning an
// empty split would plan a job with no shards and no completion path.
func splitRange(lo, hi, parts int) [][2]int {
	n := hi - lo
	if n <= 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	out := make([][2]int, 0, parts)
	cur := lo
	for p := 0; p < parts; p++ {
		size := n / parts
		if p < n%parts {
			size++
		}
		out = append(out, [2]int{cur, cur + size})
		cur += size
	}
	return out
}

// Lease hands the named worker one pending shard as an encoded task
// (wire.SweepShard, wire.CheckShard, or wire.SubtreeShard — dispatch on
// wire.PeekKind), or ok=false when nothing is pending. Jobs are scanned in submission
// order, shards in range order, so a single worker drains jobs in the
// order a sequential engine would.
func (c *Coordinator) Lease(worker string) (task []byte, ok bool, err error) {
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	for _, id := range c.order {
		j := c.jobs[id]
		if j.finished || !j.planned {
			continue
		}
		for idx, sh := range j.shards {
			if sh.st != shardPending || now.Before(sh.notBefore) {
				continue
			}
			if err := c.wal.append(record{
				Type: recLease, Job: j.id, Shard: idx, Worker: worker, At: now.UnixNano(),
			}); err != nil {
				return nil, false, err
			}
			sh.st = shardLeased
			sh.worker = worker
			sh.leaseExpiry = now.Add(c.cfg.LeaseTTL)
			if j.firstLease.IsZero() {
				j.firstLease = now
			}
			if m := c.cfg.Metrics; m != nil {
				m.Leases.Inc(worker)
			}
			return c.encodeTask(j, idx, sh), true, nil
		}
	}
	return nil, false, nil
}

// encodeTask renders one shard as its wire task message. Subtree shards
// were encoded at plan time (their root checkpoints exist only then) and
// are handed out verbatim.
func (c *Coordinator) encodeTask(j *job, idx int, sh *shardState) []byte {
	if sh.task != nil {
		return sh.task
	}
	s := j.spec
	if s.Mode == ModeSweep {
		return wire.AppendSweepShard(nil, wire.SweepShard{
			Job: j.id, Shard: idx, App: s.App, Runtime: s.Runtime,
			BaseSeed: s.BaseSeed, Lo: sh.lo, Hi: sh.hi, Workers: s.ShardWorkers,
		})
	}
	return wire.AppendCheckShard(nil, wire.CheckShard{
		Job: j.id, Shard: idx, App: s.App, Runtime: s.Runtime,
		Seed: s.Seed, Off: j.plan.Off, CutLo: sh.lo, CutHi: sh.hi,
		Exhaustive: s.Exhaustive, Grid: s.Grid, Workers: s.ShardWorkers,
		Failures: s.Failures,
	})
}

// expireLocked revokes overdue leases. No WAL record: a revoked lease
// and a crashed one recover identically (the shard is simply pending
// again), and the stale worker's eventual Complete still lands if it
// beats the re-lease — first result wins, and both results would be
// byte-identical anyway.
func (c *Coordinator) expireLocked(now time.Time) {
	for _, id := range c.order {
		j := c.jobs[id]
		if j.finished {
			continue
		}
		for _, sh := range j.shards {
			if sh.st == shardLeased && now.After(sh.leaseExpiry) {
				sh.st = shardPending
				if m := c.cfg.Metrics; m != nil {
					m.Expirations.Inc(sh.worker)
				}
			}
		}
	}
}

// Complete accepts a worker's encoded shard result (wire.SweepResult or
// wire.CheckResult). Duplicate or stale completions are ignored: the
// first logged result for a shard is the result. Completing the job's
// last shard merges and finishes the job.
func (c *Coordinator) Complete(worker string, payload []byte) error {
	jobID, shard, err := resultIDs(payload)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[jobID]
	if !ok {
		return fmt.Errorf("fleet: completion for unknown job %d", jobID)
	}
	if j.finished || shard < 0 || shard >= len(j.shards) {
		return nil
	}
	sh := j.shards[shard]
	if sh.st == shardDone {
		return nil
	}
	if err := c.wal.append(record{Type: recShardDone, Job: jobID, Shard: shard, Payload: payload}); err != nil {
		return err
	}
	sh.st = shardDone
	sh.payload = payload
	j.remaining--
	if m := c.cfg.Metrics; m != nil {
		m.ShardsDone.Inc(worker)
	}
	if j.remaining == 0 {
		return c.mergeLocked(j)
	}
	return nil
}

// resultIDs peeks a shard result's job and shard without a full decode.
func resultIDs(payload []byte) (uint64, int, error) {
	switch wire.PeekKind(payload) {
	case wire.KindSweepResult:
		r, err := wire.DecodeSweepResult(payload)
		if err != nil {
			return 0, 0, err
		}
		return r.Job, r.Shard, nil
	case wire.KindCheckResult:
		r, err := wire.DecodeCheckResult(payload)
		if err != nil {
			return 0, 0, err
		}
		return r.Job, r.Shard, nil
	case wire.KindSubtreeResult:
		r, err := wire.DecodeSubtreeResult(payload)
		if err != nil {
			return 0, 0, err
		}
		return r.Job, r.Shard, nil
	}
	return 0, 0, fmt.Errorf("fleet: completion payload is %v, want a shard result", wire.PeekKind(payload))
}

// FailShard records one failed shard attempt. Under MaxAttempts the
// shard returns to the queue after a doubling backoff; at MaxAttempts
// the whole job fails (a shard that cannot run will not merge, and a
// partial merge would silently change the result).
func (c *Coordinator) FailShard(worker string, jobID uint64, shard int, msg string) error {
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[jobID]
	if !ok {
		return fmt.Errorf("fleet: failure for unknown job %d", jobID)
	}
	if j.finished || shard < 0 || shard >= len(j.shards) {
		return nil
	}
	sh := j.shards[shard]
	if sh.st == shardDone {
		return nil
	}
	if err := c.wal.append(record{Type: recShardFail, Job: jobID, Shard: shard, Err: msg, At: now.UnixNano()}); err != nil {
		return err
	}
	sh.attempts++
	if m := c.cfg.Metrics; m != nil {
		m.Retries.Inc(worker)
	}
	if sh.attempts >= c.cfg.MaxAttempts {
		return c.failJobLocked(j, fmt.Sprintf("shard %d failed %d times, last: %s", shard, sh.attempts, msg))
	}
	sh.st = shardPending
	sh.notBefore = now.Add(c.retryBackoff(sh.attempts))
	return nil
}

// retryBackoff is the delay before a shard's next lease after its
// attempts-th failure: RetryBackoff doubling per attempt, capped at 8x.
// Shared by FailShard and WAL replay so a restart reproduces the same
// gate the live coordinator set.
func (c *Coordinator) retryBackoff(attempts int) time.Duration {
	shift := attempts - 1
	if shift > 3 {
		shift = 3
	}
	if shift < 0 {
		shift = 0
	}
	return c.cfg.RetryBackoff << shift
}

// failJobLocked logs and applies a terminal job failure.
func (c *Coordinator) failJobLocked(j *job, msg string) error {
	if err := c.wal.append(record{Type: recJobFail, Job: j.id, Err: msg}); err != nil {
		return err
	}
	c.finish(j, Result{}, fmt.Errorf("fleet: job %d: %s", j.id, msg))
	return nil
}

// mergeLocked folds the job's shard results, in shard order, into the
// final Result, logs it, and finishes the job. The fold mirrors the
// in-process engines exactly — this is where the byte-identity contract
// is discharged.
func (c *Coordinator) mergeLocked(j *job) error {
	start := time.Now()
	var res Result
	switch j.spec.Mode {
	case ModeSweep:
		agg := stats.NewAggregator()
		var errs []string
		for _, sh := range j.shards {
			sr, err := wire.DecodeSweepResult(sh.payload)
			if err != nil {
				return fmt.Errorf("fleet: merge job %d: %w", j.id, err)
			}
			agg.Merge(stats.ImportAggregator(sr.Agg))
			errs = append(errs, sr.Errs...)
		}
		res = Result{Mode: ModeSweep, Summary: agg.Summary(), Errs: errs}
	case ModeCheck:
		failures := j.spec.Failures
		if failures <= 0 {
			failures = 1
		}
		if j.level1 != nil {
			rep, err := c.mergeSubtreeJob(j, failures)
			if err != nil {
				return err
			}
			res = Result{Mode: ModeCheck, Report: rep}
			break
		}
		rep := &check.Report{
			App: j.plan.App, Runtime: j.plan.Runtime,
			Seed: j.spec.Seed, Off: j.plan.Off, Failures: failures,
			GoldenOnTime: j.plan.GoldenOnTime, GoldenCorrect: j.plan.GoldenCorrect,
			Candidates: j.plan.Candidates, Note: j.plan.Note,
		}
		for _, sh := range j.shards {
			cr, err := wire.DecodeCheckResult(sh.payload)
			if err != nil {
				return fmt.Errorf("fleet: merge job %d: %w", j.id, err)
			}
			rep.Explored += cr.Explored
			rep.Depths = append(rep.Depths, cr.Depths...)
			rep.Divergences = append(rep.Divergences, cr.Divergences...)
		}
		rep.Pruned = rep.Candidates - rep.Explored
		rep.Minimal = check.MinimalSchedule(rep.Divergences)
		res = Result{Mode: ModeCheck, Report: rep}
	}
	if err := c.wal.append(record{Type: recJobDone, Job: j.id, Payload: encodeResultPayload(res), Errs: res.Errs}); err != nil {
		return err
	}
	if m := c.cfg.Metrics; m != nil {
		m.MergeTime.Observe(j.spec.Mode, time.Since(start).Seconds())
	}
	c.finish(j, res, nil)
	return nil
}

// mergeSubtreeJob assembles a subtree-sharded nested check: the
// coordinator's own level-1 results (journaled at plan time) come first,
// then the shards' subtree reports merge in group order — the same
// check.MergeSubtrees + NestedPlan.Report path the in-process pipeline
// test pins, so the fleet report is deep-equal to check.Run's.
func (c *Coordinator) mergeSubtreeJob(j *job, failures int) (*check.Report, error) {
	l1, err := wire.DecodeCheckResult(j.level1)
	if err != nil {
		return nil, fmt.Errorf("fleet: merge job %d level-1 results: %w", j.id, err)
	}
	np := &check.NestedPlan{
		Plan: &check.Plan{
			App: j.plan.App, Runtime: j.plan.Runtime,
			Seed: j.spec.Seed, Off: j.plan.Off, Failures: failures,
			GoldenOnTime: j.plan.GoldenOnTime, GoldenCorrect: j.plan.GoldenCorrect,
			Candidates: j.plan.Candidates, Note: j.plan.Note,
		},
		Explored: l1.Explored, Pruned: l1.Pruned, Divergences: l1.Divergences,
	}
	parts := make([]check.SubtreeReport, 0, len(j.shards))
	for i, sh := range j.shards {
		sr, err := wire.DecodeSubtreeResult(sh.payload)
		if err != nil {
			return nil, fmt.Errorf("fleet: merge job %d shard %d: %w", j.id, i, err)
		}
		parts = append(parts, check.SubtreeReport{Depths: sr.Depths, Divergences: sr.Divergences})
	}
	return np.Report(check.MergeSubtrees(parts)), nil
}

// finish applies a terminal state and wakes waiters.
func (c *Coordinator) finish(j *job, res Result, err error) {
	if j.finished {
		return
	}
	j.finished = true
	j.result = res
	j.err = err
	j.remaining = 0
	close(j.done)
}

// Wait blocks until the job finishes or ctx is done. While waiting it
// ticks the lease-expiry clock, so a dead worker's shards return to the
// queue even when no other worker is polling Lease.
func (c *Coordinator) Wait(ctx context.Context, id uint64) (Result, error) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return Result{}, fmt.Errorf("fleet: wait on unknown job %d", id)
	}
	tick := c.cfg.LeaseTTL / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-j.done:
			c.mu.Lock()
			res, err := j.result, j.err
			c.mu.Unlock()
			return res, err
		case <-ctx.Done():
			return Result{}, ctx.Err()
		case <-t.C:
			c.mu.Lock()
			c.expireLocked(c.cfg.Now())
			c.mu.Unlock()
		}
	}
}

// Progress reports how many of the job's shards have completed.
func (c *Coordinator) Progress(id uint64) (done, total int, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, found := c.jobs[id]
	if !found {
		return 0, 0, false
	}
	return len(j.shards) - j.remaining, len(j.shards), true
}

// LeaseInfo reports when the job was submitted and when its first shard
// lease was granted (zero until then). The gap is queue wait, not
// execution — the delay an execution deadline should not charge.
func (c *Coordinator) LeaseInfo(id uint64) (submitted, firstLease time.Time, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, found := c.jobs[id]
	if !found {
		return time.Time{}, time.Time{}, false
	}
	return j.submitted, j.firstLease, true
}
