// Fleet overhead benchmark: the same sweep executed in-process
// (experiments.RunMany) and through a WAL-backed coordinator with 1, 2
// and 4 loopback workers. The interesting quantities are the fixed cost
// of journaling + shard dispatch (visible at 1 worker vs in-process)
// and the scaling from adding workers. BENCH_fleet.json tracks the
// datapoints.

package fleet

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"easeio/internal/experiments"
)

// benchSpec is sized so per-shard execution dominates scheduling noise
// but a full benchmark iteration stays in the tens of milliseconds.
var benchSpec = Spec{
	Mode: ModeSweep, App: "fir", Runtime: "EaseIO",
	Runs: 512, BaseSeed: 11, Shards: 8,
}

func BenchmarkFleetSweep(b *testing.B) {
	b.Run("inprocess", func(b *testing.B) {
		cfg := experiments.Config{Runs: benchSpec.Runs, BaseSeed: benchSpec.BaseSeed, Workers: 1}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := experiments.RunMany(cfg, testApps[benchSpec.App], experiments.EaseIO); err != nil {
				b.Fatal(err)
			}
		}
		reportRunRate(b)
	})
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("fleet-%dw", workers), func(b *testing.B) {
			c, err := New(CoordinatorConfig{
				WALPath: filepath.Join(b.TempDir(), "bench.wal"),
				Source:  testApps,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			for i := 0; i < workers; i++ {
				go RunLoopback(ctx, c, fmt.Sprintf("bench-%d", i), testApps, 100*time.Microsecond)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id, err := c.Submit(benchSpec)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := c.Wait(context.Background(), id); err != nil {
					b.Fatal(err)
				}
			}
			reportRunRate(b)
		})
	}
}

func reportRunRate(b *testing.B) {
	b.ReportMetric(float64(benchSpec.Runs)*float64(b.N)/b.Elapsed().Seconds(), "runs/s")
}
