// The worker side: ExecuteShard turns one encoded shard task into one
// encoded shard result using the in-process engines, and the loopback
// worker polls a coordinator in the same process — the testing and
// single-host deployment mode (cmd/easeio-worker drives the same
// ExecuteShard over TCP).

package fleet

import (
	"context"
	"errors"
	"fmt"
	"time"

	"easeio/internal/check"
	"easeio/internal/experiments"
	"easeio/internal/rtbase"
	"easeio/internal/wire"
)

// ExecuteShard runs one shard task (a wire.SweepShard, wire.CheckShard,
// or wire.SubtreeShard message, dispatched on wire.PeekKind) and returns
// the encoded shard result. Per-run failures inside a sweep shard are not errors here —
// they travel inside the SweepResult exactly as the in-process engine
// folds them into its joined error. An error return means the shard
// itself could not run and should be failed back to the coordinator.
func ExecuteShard(ctx context.Context, src BlueprintSource, task []byte) ([]byte, error) {
	switch kind := wire.PeekKind(task); kind {
	case wire.KindSweepShard:
		s, err := wire.DecodeSweepShard(task)
		if err != nil {
			return nil, err
		}
		factory, rt, err := resolve(src, s.App, s.Runtime)
		if err != nil {
			return nil, err
		}
		// Shards run unbatched: lockstep width would be a purely local
		// knob (the fold is byte-identical at any width, so the wire
		// format deliberately carries no batch field), but measured
		// steady-state lockstep is slower than pooled sequential runs on
		// the benchmark apps — interleaved device working sets evict each
		// other from cache (see DESIGN.md on batch lockstep).
		cfg := experiments.Config{Runs: s.Hi, BaseSeed: s.BaseSeed, Workers: s.Workers}
		agg, runErr := experiments.RunRangeAgg(ctx, cfg, factory, rt, s.Lo, s.Hi)
		if err := ctx.Err(); err != nil {
			// A partial fold must not ship: merged with full shards it
			// would silently change the job's result.
			return nil, err
		}
		if agg == nil {
			return nil, runErr
		}
		return wire.AppendSweepResult(nil, wire.SweepResult{
			Job: s.Job, Shard: s.Shard, Agg: agg.Export(), Errs: flattenErr(runErr),
		}), nil
	case wire.KindCheckShard:
		s, err := wire.DecodeCheckShard(task)
		if err != nil {
			return nil, err
		}
		factory, rt, err := resolve(src, s.App, s.Runtime)
		if err != nil {
			return nil, err
		}
		rep, err := check.Run(ctx, factory, rt, check.Config{
			Seed: s.Seed, Off: s.Off, Failures: s.Failures, FromBoot: s.FromBoot,
			CutLo: s.CutLo, CutHi: s.CutHi,
			Exhaustive: s.Exhaustive, Grid: s.Grid, Workers: s.Workers,
		})
		if err != nil {
			return nil, err
		}
		return wire.AppendCheckResult(nil, wire.CheckResult{
			Job: s.Job, Shard: s.Shard,
			Explored: rep.Explored, Pruned: rep.Pruned,
			Depths: rep.Depths, Divergences: rep.Divergences,
		}), nil
	case wire.KindSubtreeShard:
		s, err := wire.DecodeSubtreeShard(task)
		if err != nil {
			return nil, err
		}
		factory, rt, err := resolve(src, s.App, s.Runtime)
		if err != nil {
			return nil, err
		}
		roots := make([]check.SubtreeSeed, len(s.Roots))
		for i, r := range s.Roots {
			cp, err := wire.DecodeCheckpoint(r.Checkpoint)
			if err != nil {
				return nil, fmt.Errorf("fleet: subtree root %d: %w", i, err)
			}
			roots[i] = check.SubtreeSeed{
				Schedule:  r.Schedule,
				Collapsed: r.Collapsed,
				Dev:       cp,
				RT:        rtbase.ImportBaseState(r.RT),
			}
		}
		rep, err := check.RunSubtree(ctx, factory, rt, check.Config{
			Seed: s.Seed, Off: s.Off, Failures: s.Failures,
			Exhaustive: s.Exhaustive, Grid: s.Grid, Workers: s.Workers,
		}, roots)
		if err != nil {
			return nil, err
		}
		return wire.AppendSubtreeResult(nil, wire.SubtreeResult{
			Job: s.Job, Shard: s.Shard,
			Depths: rep.Depths, Divergences: rep.Divergences,
		}), nil
	default:
		return nil, fmt.Errorf("fleet: task is %v, want a shard", wire.PeekKind(task))
	}
}

// resolve maps a task's app and runtime names onto a factory and kind.
func resolve(src BlueprintSource, app, runtime string) (experiments.AppFactory, experiments.RuntimeKind, error) {
	if src == nil {
		return nil, 0, errors.New("fleet: worker has no blueprint source")
	}
	factory, ok := src.LookupFactory(app)
	if !ok {
		return nil, 0, fmt.Errorf("fleet: worker does not know app %q", app)
	}
	kind, err := experiments.ParseRuntimeKind(runtime)
	if err != nil {
		return nil, 0, fmt.Errorf("fleet: %w", err)
	}
	return factory, kind, nil
}

// flattenErr splits a joined sweep error back into per-run strings, the
// form the SweepResult carries over the wire.
func flattenErr(err error) []string {
	if err == nil {
		return nil
	}
	if u, ok := err.(interface{ Unwrap() []error }); ok {
		var out []string
		for _, e := range u.Unwrap() {
			out = append(out, flattenErr(e)...)
		}
		return out
	}
	return []string{err.Error()}
}

// taskIDs peeks a task's job and shard, for failure reporting.
func taskIDs(task []byte) (uint64, int, error) {
	switch wire.PeekKind(task) {
	case wire.KindSweepShard:
		s, err := wire.DecodeSweepShard(task)
		if err != nil {
			return 0, 0, err
		}
		return s.Job, s.Shard, nil
	case wire.KindCheckShard:
		s, err := wire.DecodeCheckShard(task)
		if err != nil {
			return 0, 0, err
		}
		return s.Job, s.Shard, nil
	case wire.KindSubtreeShard:
		s, err := wire.DecodeSubtreeShard(task)
		if err != nil {
			return 0, 0, err
		}
		return s.Job, s.Shard, nil
	}
	return 0, 0, fmt.Errorf("fleet: task is %v, want a shard", wire.PeekKind(task))
}

// RunLoopback polls the coordinator for shards, executes them, and
// reports results until ctx is cancelled. It returns nil on
// cancellation; any other return is a coordinator-side failure (WAL
// write errors surface here).
func RunLoopback(ctx context.Context, c *Coordinator, name string, src BlueprintSource, poll time.Duration) error {
	if poll <= 0 {
		poll = 20 * time.Millisecond
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		task, ok, err := c.Lease(name)
		if err != nil {
			return err
		}
		if !ok {
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(poll):
			}
			continue
		}
		result, execErr := ExecuteShard(ctx, src, task)
		if execErr != nil {
			if ctx.Err() != nil {
				// A cancellation mid-shard is not a shard failure: drop the
				// lease and let the TTL recycle it.
				return nil
			}
			job, shard, idErr := taskIDs(task)
			if idErr != nil {
				return idErr
			}
			if err := c.FailShard(name, job, shard, execErr.Error()); err != nil {
				return err
			}
			continue
		}
		if err := c.Complete(name, result); err != nil {
			return err
		}
	}
}
