// Fleet observability: per-worker lease/retry/completion counters and
// the two latencies that dominate coordinator health — WAL fsync (every
// state transition pays one) and shard merge (the serial tail of a job).

package fleet

import (
	"io"

	"easeio/internal/obs"
)

// Metrics is the coordinator's metric set. All fields are optional to
// populate by hand, but NewMetrics wires the standard series; a nil
// *Metrics disables collection entirely.
type Metrics struct {
	// Leases counts granted leases per worker.
	Leases *obs.Counter
	// Retries counts failed shard attempts per worker (the worker whose
	// attempt failed, not the one that retries it).
	Retries *obs.Counter
	// Expirations counts leases revoked by TTL per holding worker.
	Expirations *obs.Counter
	// ShardsDone counts completed shards per worker.
	ShardsDone *obs.Counter
	// WALFsync observes each WAL append's fsync latency in seconds.
	WALFsync *obs.Histogram
	// MergeTime observes each job's shard-merge time in seconds, split
	// by job mode.
	MergeTime *obs.Histogram
}

// NewMetrics returns the standard fleet metric set.
func NewMetrics() *Metrics {
	return &Metrics{
		Leases: obs.NewCounter("easeio_fleet_leases_total",
			"Shard leases granted, by worker.", "worker"),
		Retries: obs.NewCounter("easeio_fleet_shard_retries_total",
			"Failed shard attempts, by the worker that failed.", "worker"),
		Expirations: obs.NewCounter("easeio_fleet_lease_expirations_total",
			"Leases revoked by TTL expiry, by the worker that held them.", "worker"),
		ShardsDone: obs.NewCounter("easeio_fleet_shards_done_total",
			"Completed shards, by worker.", "worker"),
		WALFsync: obs.NewHistogram("easeio_fleet_wal_fsync_seconds",
			"WAL append fsync latency.", "", obs.LatencyBuckets),
		MergeTime: obs.NewHistogram("easeio_fleet_shard_merge_seconds",
			"Job shard-merge time, by job mode.", "mode", obs.LatencyBuckets),
	}
}

// Expose renders every series in Prometheus text format.
func (m *Metrics) Expose(w io.Writer) {
	if m == nil {
		return
	}
	m.Leases.Expose(w)
	m.Retries.Expose(w)
	m.Expirations.Expose(w)
	m.ShardsDone.Expose(w)
	m.WALFsync.Expose(w)
	m.MergeTime.Expose(w)
}
