// The TCP transport: workers dial the coordinator and speak a framed
// request/response protocol carrying exactly the loopback operations —
// lease, complete, fail. Frames reuse the wire CRC framing, request and
// response bodies the wire vocabulary, and the task/result payloads
// inside them are the same encoded messages the loopback path passes by
// value, so a TCP worker and a loopback worker are indistinguishable to
// the coordinator.

package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"easeio/internal/wire"
)

// Protocol operations. One byte at the head of each request body.
const (
	opLease    = 1
	opComplete = 2
	opFail     = 3
)

// ServeFleet accepts worker connections on ln and serves coordinator
// operations until ln is closed (the usual shutdown: close the listener,
// in-flight requests finish, workers reconnect-or-exit). Each connection
// is one worker's session and serves requests sequentially.
func ServeFleet(ln net.Listener, c *Coordinator) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go serveConn(conn, c)
	}
}

func serveConn(conn net.Conn, c *Coordinator) {
	defer conn.Close()
	for {
		req, err := wire.ReadFrame(conn)
		if err != nil {
			// EOF (or a torn frame from a dying worker) ends the session;
			// the lease TTL recovers anything it held.
			return
		}
		resp, err := handleRequest(c, req)
		if err != nil {
			return
		}
		if err := wire.WriteFrame(conn, resp); err != nil {
			return
		}
	}
}

// handleRequest executes one framed request and builds its response.
// Coordinator-level rejections (unknown job, bad payload) travel inside
// the response; only WAL failures — the coordinator losing its
// durability — tear the connection down.
func handleRequest(c *Coordinator, req []byte) ([]byte, error) {
	d := wire.NewDecoder(req)
	op := d.Byte()
	worker := d.String()
	switch op {
	case opLease:
		if err := d.Err(); err != nil {
			return nil, err
		}
		task, ok, err := c.Lease(worker)
		if err != nil {
			return nil, err
		}
		resp := wire.AppendBool(nil, ok)
		return wire.AppendBytes(resp, task), nil
	case opComplete:
		payload := d.Bytes()
		if err := d.Err(); err != nil {
			return nil, err
		}
		return ackResponse(c.Complete(worker, payload)), nil
	case opFail:
		job := d.Uvarint()
		shard := int(d.Uvarint())
		msg := d.String()
		if err := d.Err(); err != nil {
			return nil, err
		}
		return ackResponse(c.FailShard(worker, job, shard, msg)), nil
	}
	return nil, fmt.Errorf("fleet: unknown request op %d", op)
}

// ackResponse encodes a complete/fail outcome: ok bool, then the
// rejection message when not ok.
func ackResponse(err error) []byte {
	if err == nil {
		return wire.AppendBool(nil, true)
	}
	resp := wire.AppendBool(nil, false)
	return wire.AppendString(resp, err.Error())
}

// tcpClient is one worker's connection to the coordinator.
type tcpClient struct {
	conn net.Conn
	name string
}

func dialFleet(addr, name string) (*tcpClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpClient{conn: conn, name: name}, nil
}

func (t *tcpClient) close() { t.conn.Close() }

// call sends one framed request and reads its framed response.
func (t *tcpClient) call(req []byte) ([]byte, error) {
	if err := wire.WriteFrame(t.conn, req); err != nil {
		return nil, err
	}
	resp, err := wire.ReadFrame(t.conn)
	if err == io.EOF {
		return nil, io.ErrUnexpectedEOF
	}
	return resp, err
}

// lease asks for one task; ok=false means no pending work.
func (t *tcpClient) lease() (task []byte, ok bool, err error) {
	req := wire.AppendString([]byte{opLease}, t.name)
	resp, err := t.call(req)
	if err != nil {
		return nil, false, err
	}
	d := wire.NewDecoder(resp)
	ok = d.Bool()
	task = d.Bytes()
	return task, ok, d.Err()
}

// complete ships a shard result.
func (t *tcpClient) complete(payload []byte) error {
	req := wire.AppendString([]byte{opComplete}, t.name)
	req = wire.AppendBytes(req, payload)
	return t.ack(req)
}

// fail reports a failed shard attempt.
func (t *tcpClient) fail(job uint64, shard int, msg string) error {
	req := wire.AppendString([]byte{opFail}, t.name)
	req = wire.AppendUvarint(req, job)
	req = wire.AppendUvarint(req, uint64(shard))
	req = wire.AppendString(req, msg)
	return t.ack(req)
}

func (t *tcpClient) ack(req []byte) error {
	resp, err := t.call(req)
	if err != nil {
		return err
	}
	d := wire.NewDecoder(resp)
	if ok := d.Bool(); d.Err() == nil && !ok {
		return fmt.Errorf("fleet: coordinator rejected request: %s", d.String())
	}
	return d.Err()
}

// RunTCPWorker dials the coordinator at addr and runs the worker loop —
// lease, execute, report — until ctx is cancelled. Connection failures
// redial with a flat backoff, so a coordinator restart (the crash the
// WAL exists for) only pauses the worker. It returns nil on
// cancellation.
func RunTCPWorker(ctx context.Context, addr, name string, src BlueprintSource, poll time.Duration) error {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	redial := poll
	if redial < 100*time.Millisecond {
		redial = 100 * time.Millisecond
	}
	for {
		if ctx.Err() != nil {
			return nil
		}
		cl, err := dialFleet(addr, name)
		if err != nil {
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(redial):
			}
			continue
		}
		workConn(ctx, cl, src, poll)
		cl.close()
	}
}

// workConn runs the lease loop over one connection until it breaks or
// ctx ends.
func workConn(ctx context.Context, cl *tcpClient, src BlueprintSource, poll time.Duration) {
	for {
		if ctx.Err() != nil {
			return
		}
		task, ok, err := cl.lease()
		if err != nil {
			return
		}
		if !ok {
			select {
			case <-ctx.Done():
				return
			case <-time.After(poll):
			}
			continue
		}
		result, execErr := ExecuteShard(ctx, src, task)
		if execErr != nil {
			if ctx.Err() != nil {
				return
			}
			job, shard, idErr := taskIDs(task)
			if idErr != nil {
				return
			}
			if err := cl.fail(job, shard, execErr.Error()); err != nil {
				return
			}
			continue
		}
		if err := cl.complete(result); err != nil {
			return
		}
	}
}
