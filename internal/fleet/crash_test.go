// SIGKILL crash-recovery tests. The test binary re-execs itself as a
// helper process (TestMain dispatches on FLEET_HELPER) so the kill is a
// real one: no deferred cleanups, no flushed buffers, a WAL cut off at
// an arbitrary byte. The surviving side recovers and the merged result
// must still be byte-identical to the in-process engine.

package fleet

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"easeio/internal/check"
	"easeio/internal/experiments"
)

func TestMain(m *testing.M) {
	switch os.Getenv("FLEET_HELPER") {
	case "coordinator":
		coordinatorHelperMain(crashSpec)
		os.Exit(0)
	case "nested-coordinator":
		coordinatorHelperMain(nestedCrashSpec)
		os.Exit(0)
	case "worker":
		workerHelperMain()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// crashSpec is the job the sweep coordinator-crash processes run.
var crashSpec = Spec{
	Mode: ModeSweep, App: "fir", Runtime: "EaseIO",
	Runs: 24, BaseSeed: 5, Shards: 6,
}

// nestedCrashSpec is the subtree-sharded job the nested crash test runs:
// fig6 under Alpaca keeps two level-1 representatives, so the plan cuts
// two subtree shards whose root checkpoints must survive the WAL.
var nestedCrashSpec = Spec{
	Mode: ModeCheck, App: "fig6", Runtime: "Alpaca",
	Exhaustive: true, Failures: 2, Shards: 4,
}

// coordinatorHelperMain is the victim coordinator: it submits the crash
// job, works it with one loopback worker, reports progress on stdout,
// and waits to be killed.
func coordinatorHelperMain(spec Spec) {
	c, err := New(CoordinatorConfig{WALPath: os.Getenv("FLEET_WAL"), Source: testApps})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	id, err := c.Submit(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("READY %d\n", id)
	go RunLoopback(context.Background(), c, "victim", testApps, time.Millisecond)
	minDone := 2
	if spec.Mode == ModeCheck {
		minDone = 1
	}
	for {
		if done, _, _ := c.Progress(id); done >= minDone {
			fmt.Println("PROGRESS")
			break
		}
		time.Sleep(time.Millisecond)
	}
	select {} // hold the WAL open until the SIGKILL lands
}

// workerHelperMain is the victim TCP worker: it leases and executes
// shards from the parent's coordinator until killed.
func workerHelperMain() {
	fmt.Println("READY 0")
	err := RunTCPWorker(context.Background(), os.Getenv("FLEET_ADDR"), "victim", testApps, time.Millisecond)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// startHelper re-execs the test binary as the named helper and returns
// the process plus a line channel from its stdout.
func startHelper(t *testing.T, helper string, env ...string) (*exec.Cmd, <-chan string) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), append(env, "FLEET_HELPER="+helper)...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	lines := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	return cmd, lines
}

// awaitLine blocks for the next stdout line with the given prefix.
func awaitLine(t *testing.T, lines <-chan string, prefix string) string {
	t.Helper()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case l, ok := <-lines:
			if !ok {
				t.Fatalf("helper exited before printing %q", prefix)
			}
			if strings.HasPrefix(l, prefix) {
				return l
			}
		case <-deadline:
			t.Fatalf("helper never printed %q", prefix)
		}
	}
}

// TestCrashCoordinatorMidJob SIGKILLs a coordinator that has merged some
// shards but not all, reopens its WAL, and finishes the job: completed
// shards must survive, the rest re-run, and the summary must match the
// in-process sweep.
func TestCrashCoordinatorMidJob(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "crash.wal")
	cmd, lines := startHelper(t, "coordinator", "FLEET_WAL="+walPath)

	var id uint64
	if _, err := fmt.Sscanf(awaitLine(t, lines, "READY"), "READY %d", &id); err != nil {
		t.Fatal(err)
	}
	awaitLine(t, lines, "PROGRESS")
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	c, err := New(CoordinatorConfig{WALPath: walPath, Source: testApps})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done, total, ok := c.Progress(id)
	if !ok || total != crashSpec.Shards {
		t.Fatalf("recovered job: done=%d total=%d ok=%v", done, total, ok)
	}
	t.Logf("recovered with %d/%d shards done", done, total)
	startLoopback(t, c, 2)
	res := waitResult(t, c, id)

	want, werr := experiments.RunMany(
		experiments.Config{Runs: crashSpec.Runs, BaseSeed: crashSpec.BaseSeed, Workers: 2},
		testApps[crashSpec.App], experiments.EaseIO)
	if werr != nil {
		t.Fatal(werr)
	}
	if !reflect.DeepEqual(res.Summary, want) {
		t.Errorf("post-crash summary differs from RunMany:\n%+v\nvs\n%+v", res.Summary, want)
	}
}

// TestCrashCoordinatorMidNestedJob SIGKILLs a coordinator mid-way
// through a subtree-sharded k=2 job. Recovery must rebuild the plan
// from the WAL alone — the journaled level-1 results and the
// pre-encoded subtree tasks with their root checkpoints — because the
// level-1 exploration is consumed state the spec cannot regenerate
// shard-by-shard. The finished report must render byte-identically to
// the in-process checker.
func TestCrashCoordinatorMidNestedJob(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "nested-crash.wal")
	cmd, lines := startHelper(t, "nested-coordinator", "FLEET_WAL="+walPath)

	var id uint64
	if _, err := fmt.Sscanf(awaitLine(t, lines, "READY"), "READY %d", &id); err != nil {
		t.Fatal(err)
	}
	awaitLine(t, lines, "PROGRESS")
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	c, err := New(CoordinatorConfig{WALPath: walPath, Source: testApps})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done, total, ok := c.Progress(id)
	if !ok || total != 2 {
		t.Fatalf("recovered nested job: done=%d total=%d ok=%v, want 2 subtree shards", done, total, ok)
	}
	t.Logf("recovered with %d/%d subtree shards done", done, total)
	startLoopback(t, c, 2)
	res := waitResult(t, c, id)

	want, werr := check.Run(context.Background(), check.Fig6Bench, experiments.Alpaca,
		check.Config{Exhaustive: true, Failures: 2, Workers: 2})
	if werr != nil {
		t.Fatal(werr)
	}
	if res.Report.Render() != want.Render() {
		t.Errorf("post-crash k=2 report differs from check.Run:\n--- fleet ---\n%s--- direct ---\n%s",
			res.Report.Render(), want.Render())
	}
	if len(res.Report.Divergences) == 0 {
		t.Error("recovered Alpaca k=2 report lost its divergences")
	}
}

// TestCrashWorkerMidShard SIGKILLs a TCP worker holding leases; the
// lease TTL must recycle its shards to a surviving worker and the job
// must still merge byte-identically.
func TestCrashWorkerMidShard(t *testing.T) {
	m := NewMetrics()
	c := newTestCoordinator(t, func(cfg *CoordinatorConfig) {
		cfg.LeaseTTL = 300 * time.Millisecond
		cfg.Metrics = m
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ServeFleet(ln, c)
	t.Cleanup(func() { ln.Close() })

	cmd, lines := startHelper(t, "worker", "FLEET_ADDR="+ln.Addr().String())
	awaitLine(t, lines, "READY")

	spec := Spec{Mode: ModeSweep, App: "temp", Runtime: "Alpaca", Runs: 20, BaseSeed: 13, Shards: 5}
	id, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the worker once it holds at least one lease.
	deadline := time.Now().Add(30 * time.Second)
	for m.Leases.Value("victim") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never leased a shard")
		}
		time.Sleep(time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	startLoopback(t, c, 2)
	res := waitResult(t, c, id)

	want, werr := experiments.RunMany(
		experiments.Config{Runs: spec.Runs, BaseSeed: spec.BaseSeed, Workers: 2},
		testApps[spec.App], experiments.Alpaca)
	if werr != nil {
		t.Fatal(werr)
	}
	if !reflect.DeepEqual(res.Summary, want) {
		t.Errorf("post-worker-crash summary differs from RunMany:\n%+v\nvs\n%+v", res.Summary, want)
	}
}
