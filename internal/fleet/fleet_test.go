// Tests for the fleet's load-bearing guarantees: a fleet-merged job is
// byte-identical to the in-process engines whatever the shard count,
// worker count or transport; the WAL survives torn tails and replays
// idempotently; leases expire and retries back off; and a recovered
// coordinator finishes what the crashed one started (the SIGKILL
// variants live in crash_test.go).

package fleet

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"easeio/internal/apps"
	"easeio/internal/check"
	"easeio/internal/experiments"
	"easeio/internal/wire"
)

// mapSource is the test BlueprintSource.
type mapSource map[string]experiments.AppFactory

func (m mapSource) LookupFactory(name string) (experiments.AppFactory, bool) {
	f, ok := m[name]
	return f, ok
}

var testApps = mapSource{
	"dma":    func() (*apps.Bench, error) { return apps.NewDMAApp(apps.DefaultDMAConfig()) },
	"temp":   func() (*apps.Bench, error) { return apps.NewTempApp(apps.DefaultTempConfig()) },
	"fir":    func() (*apps.Bench, error) { return apps.NewFIRApp(apps.DefaultFIRConfig()) },
	"branch": func() (*apps.Bench, error) { return apps.NewBranchApp(apps.DefaultBranchConfig()) },
	"fig6":   check.Fig6Bench,
	"sensor": func() (*apps.Bench, error) { return apps.NewSensorApp(apps.DefaultSensorConfig()) },
}

// sweepKinds is the full runtime matrix sweeps are pinned across.
var sweepKinds = []experiments.RuntimeKind{
	experiments.Alpaca, experiments.InK, experiments.EaseIO,
	experiments.EaseIOOp, experiments.JustDo,
}

// checkKinds matches the checker's own test matrix.
var checkKinds = []experiments.RuntimeKind{
	experiments.Alpaca, experiments.InK, experiments.EaseIO, experiments.JustDo,
}

// newTestCoordinator opens a coordinator on a per-test WAL.
func newTestCoordinator(t *testing.T, mutate func(*CoordinatorConfig)) *Coordinator {
	t.Helper()
	cfg := CoordinatorConfig{
		WALPath: filepath.Join(t.TempDir(), "fleet.wal"),
		Source:  testApps,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// startLoopback runs n loopback workers until the returned stop func.
func startLoopback(t *testing.T, c *Coordinator, n int) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		name := "w" + string(rune('0'+i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := RunLoopback(ctx, c, name, testApps, time.Millisecond); err != nil {
				t.Errorf("loopback worker %s: %v", name, err)
			}
		}()
	}
	stop = func() {
		cancel()
		wg.Wait()
	}
	t.Cleanup(stop)
	return stop
}

func waitResult(t *testing.T, c *Coordinator, id uint64) Result {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := c.Wait(ctx, id)
	if err != nil {
		t.Fatalf("job %d: %v", id, err)
	}
	return res
}

// TestFleetSweepByteIdentity pins the tentpole contract across the full
// app × runtime matrix: a sweep sharded over a loopback fleet merges
// into exactly the Summary experiments.RunMany produces.
func TestFleetSweepByteIdentity(t *testing.T) {
	c := newTestCoordinator(t, nil)
	startLoopback(t, c, 2)

	for _, app := range []string{"dma", "temp", "fir", "branch"} {
		for _, kind := range sweepKinds {
			spec := Spec{
				Mode: ModeSweep, App: app, Runtime: kind.String(),
				Runs: 10, BaseSeed: 7, Shards: 3, ShardWorkers: 1 + len(app)%2,
			}
			id, err := c.Submit(spec)
			if err != nil {
				t.Fatalf("%s/%s: %v", app, kind, err)
			}
			res := waitResult(t, c, id)

			factory := testApps[app]
			want, werr := experiments.RunMany(
				experiments.Config{Runs: spec.Runs, BaseSeed: spec.BaseSeed, Workers: 2},
				factory, kind)
			if werr != nil {
				t.Fatalf("%s/%s reference: %v", app, kind, werr)
			}
			if !reflect.DeepEqual(res.Summary, want) {
				t.Errorf("%s/%s: fleet summary differs from RunMany:\n%+v\nvs\n%+v",
					app, kind, res.Summary, want)
			}
			if len(res.Errs) != 0 {
				t.Errorf("%s/%s: unexpected run errors %v", app, kind, res.Errs)
			}
		}
	}
}

// TestFleetCheckByteIdentity pins the checker half: an exhaustive check
// sharded by cut range (and an adaptive check, which plans as a single
// shard) renders byte-identically to check.Run.
func TestFleetCheckByteIdentity(t *testing.T) {
	c := newTestCoordinator(t, nil)
	startLoopback(t, c, 2)

	for _, kind := range checkKinds {
		spec := Spec{
			Mode: ModeCheck, App: "fig6", Runtime: kind.String(),
			Exhaustive: true, Shards: 2,
		}
		id, err := c.Submit(spec)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		res := waitResult(t, c, id)

		want, werr := check.Run(context.Background(), check.Fig6Bench, kind,
			check.Config{Exhaustive: true})
		if werr != nil {
			t.Fatalf("%s reference: %v", kind, werr)
		}
		if res.Report.Render() != want.Render() {
			t.Errorf("%s: fleet report differs from check.Run:\n--- fleet ---\n%s--- direct ---\n%s",
				kind, res.Report.Render(), want.Render())
		}
	}

	// Adaptive mode: the planner must collapse to one shard, and the
	// merged report must still match the in-process adaptive checker.
	spec := Spec{Mode: ModeCheck, App: "fig6", Runtime: "EaseIO", Grid: 16, Shards: 4}
	id, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	res := waitResult(t, c, id)
	want, werr := check.Run(context.Background(), check.Fig6Bench, experiments.EaseIO,
		check.Config{Grid: 16})
	if werr != nil {
		t.Fatal(werr)
	}
	if res.Report.Render() != want.Render() {
		t.Errorf("adaptive: fleet report differs:\n--- fleet ---\n%s--- direct ---\n%s",
			res.Report.Render(), want.Render())
	}
}

// TestFleetNestedCheckByteIdentity pins the k > 1 contract: a nested
// check job runs its level-1 exploration in the coordinator, cuts the
// level-1 frontier into subtree shards leased to workers that restore
// the root checkpoints and grow the subtrees, and the merged report —
// depth stats, multi-failure schedules, minimal schedule — renders
// byte-identically to check.Run. Alpaca diverges under nested failures
// on fig6; EaseIO must stay clean there but serves stale sensor
// readings, whose Timely divergences must survive the distribution.
func TestFleetNestedCheckByteIdentity(t *testing.T) {
	c := newTestCoordinator(t, nil)
	startLoopback(t, c, 2)

	for _, tc := range []struct {
		app        string
		factory    experiments.AppFactory
		kind       experiments.RuntimeKind
		wantDiverg bool
		wantShards int // level-1 representatives, capped by Shards
	}{
		{"fig6", check.Fig6Bench, experiments.Alpaca, true, 2},
		{"fig6", check.Fig6Bench, experiments.EaseIO, false, 1},
		{"sensor", testApps["sensor"], experiments.EaseIO, true, 2},
	} {
		spec := Spec{
			Mode: ModeCheck, App: tc.app, Runtime: tc.kind.String(),
			Exhaustive: true, Failures: 2, Shards: 4, ShardWorkers: 2,
		}
		id, err := c.Submit(spec)
		if err != nil {
			t.Fatalf("%s/%s: %v", tc.app, tc.kind, err)
		}
		res := waitResult(t, c, id)

		// The job must really have sharded: one shard per level-1
		// representative (fig6/EaseIO collapses to one — the degenerate
		// layout is pinned too, not skipped).
		if _, total, ok := c.Progress(id); !ok || total != tc.wantShards {
			t.Errorf("%s/%s: planned %d shards, want %d", tc.app, tc.kind, total, tc.wantShards)
		}

		want, werr := check.Run(context.Background(), tc.factory, tc.kind,
			check.Config{Exhaustive: true, Failures: 2, Workers: 2})
		if werr != nil {
			t.Fatalf("%s/%s reference: %v", tc.app, tc.kind, werr)
		}
		if res.Report.Render() != want.Render() {
			t.Errorf("%s/%s: fleet k=2 report differs from check.Run:\n--- fleet ---\n%s--- direct ---\n%s",
				tc.app, tc.kind, res.Report.Render(), want.Render())
		}
		if got := len(res.Report.Divergences) > 0; got != tc.wantDiverg {
			t.Errorf("%s/%s: divergences = %d, want some: %v",
				tc.app, tc.kind, len(res.Report.Divergences), tc.wantDiverg)
		}
		// Alpaca already fails fig6 under a single failure, so the
		// minimal schedule must stay the one-failure one even with
		// depth-2 divergences in the report.
		if tc.app == "fig6" && tc.wantDiverg && len(res.Report.Minimal) != 1 {
			t.Errorf("%s/%s: minimal schedule %v, want 1 failure", tc.app, tc.kind, res.Report.Minimal)
		}
	}
}

// TestSpecValidation pins the planner's negative surface, including the
// nested-failure depth bounds shared with the CLI and the service.
func TestSpecValidation(t *testing.T) {
	c := newTestCoordinator(t, nil)
	cases := []struct {
		name    string
		spec    Spec
		wantErr string
	}{
		{
			name:    "no app",
			spec:    Spec{Mode: ModeSweep, Runtime: "EaseIO", Runs: 1},
			wantErr: "fleet: spec has no app",
		},
		{
			name:    "unknown mode",
			spec:    Spec{Mode: "audit", App: "fig6", Runtime: "EaseIO"},
			wantErr: `fleet: unknown mode "audit"`,
		},
		{
			name:    "check with runs",
			spec:    Spec{Mode: ModeCheck, App: "fig6", Runtime: "EaseIO", Runs: 3},
			wantErr: "fleet: check spec must not set Runs",
		},
		{
			name:    "failure depth too deep",
			spec:    Spec{Mode: ModeCheck, App: "fig6", Runtime: "EaseIO", Failures: 5},
			wantErr: "fleet: check: failure depth 5 out of range [1, 4]",
		},
		{
			name:    "negative failure depth",
			spec:    Spec{Mode: ModeCheck, App: "fig6", Runtime: "EaseIO", Failures: -2},
			wantErr: "fleet: check: failure depth -2 out of range [1, 4]",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := c.Submit(tc.spec); err == nil || err.Error() != tc.wantErr {
				t.Errorf("Submit error = %v, want %q", err, tc.wantErr)
			}
		})
	}
}

// TestSplitRangeDegenerateParts pins the planner's low-level guard:
// parts < 1 with work remaining must degrade to one covering shard, not
// an empty plan (which would leave the job with no completion path).
func TestSplitRangeDegenerateParts(t *testing.T) {
	cases := []struct {
		lo, hi, parts int
		want          [][2]int
	}{
		{0, 5, 0, [][2]int{{0, 5}}},
		{0, 5, -3, [][2]int{{0, 5}}},
		{2, 7, 0, [][2]int{{2, 7}}},
		{0, 5, 2, [][2]int{{0, 3}, {3, 5}}},
		{3, 3, 4, nil},
		{5, 3, 2, nil},
	}
	for _, tc := range cases {
		got := splitRange(tc.lo, tc.hi, tc.parts)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("splitRange(%d, %d, %d) = %v, want %v", tc.lo, tc.hi, tc.parts, got, tc.want)
		}
	}
}

// TestCoordinatorConfigRejectsNegatives pins the config-time guard: a
// negative knob is a caller bug and must fail New with a clear error
// naming the field, not be silently coerced to the default.
func TestCoordinatorConfigRejectsNegatives(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*CoordinatorConfig)
	}{
		{"DefaultShards", func(c *CoordinatorConfig) { c.DefaultShards = -1 }},
		{"MaxAttempts", func(c *CoordinatorConfig) { c.MaxAttempts = -2 }},
		{"LeaseTTL", func(c *CoordinatorConfig) { c.LeaseTTL = -time.Second }},
		{"RetryBackoff", func(c *CoordinatorConfig) { c.RetryBackoff = -time.Millisecond }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := CoordinatorConfig{
				WALPath: filepath.Join(t.TempDir(), "fleet.wal"),
				Source:  testApps,
			}
			tc.mutate(&cfg)
			c, err := New(cfg)
			if err == nil {
				c.Close()
				t.Fatalf("New accepted a negative %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.name) {
				t.Errorf("error %q does not name the offending field %s", err, tc.name)
			}
		})
	}
}

// TestSubmitAgainstZeroWorkerFleet is the satellite regression: a job
// submitted before any worker exists must still plan real shards (a
// zero-worker fleet must never produce a zero-shard plan), sit pending,
// and complete normally once a worker shows up.
func TestSubmitAgainstZeroWorkerFleet(t *testing.T) {
	c := newTestCoordinator(t, nil)
	id, err := c.Submit(Spec{Mode: ModeSweep, App: "fir", Runtime: "EaseIO", Runs: 6, BaseSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	done, total, ok := c.Progress(id)
	if !ok || total == 0 {
		t.Fatalf("job planned %d shards with no workers attached; want > 0", total)
	}
	if done != 0 {
		t.Fatalf("job reports %d done shards before any worker ran", done)
	}
	startLoopback(t, c, 1)
	res := waitResult(t, c, id)
	want, werr := experiments.RunMany(
		experiments.Config{Runs: 6, BaseSeed: 2, Workers: 2}, testApps["fir"], experiments.EaseIO)
	if werr != nil {
		t.Fatal(werr)
	}
	if !reflect.DeepEqual(res.Summary, want) {
		t.Errorf("zero-worker-start summary differs from RunMany:\n%+v\nvs\n%+v", res.Summary, want)
	}
}

// TestFleetTCPByteIdentity runs the same contract over the real
// transport: a TCP worker fleet against a listening coordinator.
func TestFleetTCPByteIdentity(t *testing.T) {
	c := newTestCoordinator(t, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ServeFleet(ln, c)
	t.Cleanup(func() { ln.Close() })

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		name := "tcp-w" + string(rune('0'+i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := RunTCPWorker(ctx, ln.Addr().String(), name, testApps, time.Millisecond); err != nil {
				t.Errorf("tcp worker %s: %v", name, err)
			}
		}()
	}
	t.Cleanup(func() { cancel(); wg.Wait() })

	spec := Spec{Mode: ModeSweep, App: "temp", Runtime: "EaseIO", Runs: 12, BaseSeed: 3, Shards: 4}
	id, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	res := waitResult(t, c, id)
	want, werr := experiments.RunMany(
		experiments.Config{Runs: 12, BaseSeed: 3, Workers: 2}, testApps["temp"], experiments.EaseIO)
	if werr != nil {
		t.Fatal(werr)
	}
	if !reflect.DeepEqual(res.Summary, want) {
		t.Errorf("TCP fleet summary differs from RunMany:\n%+v\nvs\n%+v", res.Summary, want)
	}

	// A nested check over the same TCP fleet: the subtree shards carry
	// full root checkpoints through the real framing, and the merged
	// report must still be byte-identical to the in-process checker.
	nspec := Spec{
		Mode: ModeCheck, App: "fig6", Runtime: "Alpaca",
		Exhaustive: true, Failures: 2, Shards: 4, ShardWorkers: 2,
	}
	nid, err := c.Submit(nspec)
	if err != nil {
		t.Fatal(err)
	}
	nres := waitResult(t, c, nid)
	nwant, werr := check.Run(context.Background(), check.Fig6Bench, experiments.Alpaca,
		check.Config{Exhaustive: true, Failures: 2, Workers: 2})
	if werr != nil {
		t.Fatal(werr)
	}
	if nres.Report.Render() != nwant.Render() {
		t.Errorf("TCP fleet k=2 report differs from check.Run:\n--- fleet ---\n%s--- direct ---\n%s",
			nres.Report.Render(), nwant.Render())
	}
	if _, total, ok := c.Progress(nid); !ok || total < 2 {
		t.Errorf("TCP nested job planned %d shards, want >= 2", total)
	}
}

// TestWALRecordRoundTrip covers every record type's encode/decode pair.
func TestWALRecordRoundTrip(t *testing.T) {
	recs := []record{
		{Type: recSubmit, Job: 3, Spec: Spec{
			Mode: ModeSweep, App: "dma", Runtime: "EaseIO",
			Runs: 40, BaseSeed: -9, Shards: 4, ShardWorkers: 2,
		}},
		{Type: recSubmit, Job: 4, Spec: Spec{
			Mode: ModeCheck, App: "fig6", Runtime: "Alpaca",
			Seed: 17, Off: 3 * time.Millisecond, Grid: 64, Exhaustive: true,
		}},
		{Type: recPlan, Job: 3, Shards: [][2]int{{0, 20}, {20, 40}}},
		{Type: recPlan, Job: 4, HasPlan: true, Plan: planHeader{
			App: "fig6-app", Runtime: "Alpaca", GoldenOnTime: time.Second,
			GoldenCorrect: true, Candidates: 12, Note: "",
		}, Shards: [][2]int{{0, 12}}},
		{Type: recPlan, Job: 5, HasPlan: true, Plan: planHeader{Note: "nothing to do"}},
		{Type: recPlan, Job: 6, HasPlan: true, Plan: planHeader{
			App: "fig6-app", Runtime: "Alpaca", GoldenOnTime: time.Second,
			GoldenCorrect: true, Candidates: 9,
		}, Shards: [][2]int{{0, 1}, {1, 2}},
			Level1: []byte{0xA, 0xB, 0xC},
			Tasks:  [][]byte{{1}, {2, 3}}},
		{Type: recLease, Job: 3, Shard: 1, Worker: "w0", At: 12345},
		{Type: recShardDone, Job: 3, Shard: 1, Payload: []byte{1, 2, 3}},
		{Type: recShardFail, Job: 3, Shard: 0, Err: "boom", At: 987654321},
		{Type: recJobDone, Job: 3, Payload: []byte{9}, Errs: []string{"run 4: x"}},
		{Type: recJobFail, Job: 4, Err: "gave up"},
	}
	for _, want := range recs {
		got, err := decodeRecord(want.encode())
		if err != nil {
			t.Fatalf("%s: %v", want.Type, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s round trip:\n got %+v\nwant %+v", want.Type, got, want)
		}
	}

	// Truncations must fail cleanly, never panic.
	full := recs[1].encode()
	for cut := 0; cut < len(full); cut++ {
		if _, err := decodeRecord(full[:cut]); err == nil {
			t.Errorf("truncated record (%d of %d bytes) decoded without error", cut, len(full))
		}
	}
	if _, err := decodeRecord(append(full, 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}

// TestWALTornTail pins the crash-append contract: a half-written frame
// at the tail is truncated away on open and the log stays appendable.
func TestWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	w, recs, err := openWAL(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh WAL replayed %d records", len(recs))
	}
	r1 := record{Type: recSubmit, Job: 0, Spec: Spec{Mode: ModeSweep, App: "dma", Runtime: "EaseIO", Runs: 8}}
	r2 := record{Type: recLease, Job: 0, Shard: 0, Worker: "w0", At: 99}
	if err := w.append(r1); err != nil {
		t.Fatal(err)
	}
	if err := w.append(r2); err != nil {
		t.Fatal(err)
	}
	w.close()

	// Tear the tail: a frame whose bytes stop partway, as a crash
	// mid-write leaves it.
	torn := wire.AppendFrame(nil, r2.encode())
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)-3]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, recs, err := openWAL(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Type != recSubmit || recs[1].Type != recLease {
		t.Fatalf("replay after torn tail: %d records %v", len(recs), recs)
	}
	// The torn bytes are gone: a fresh append lands on a clean boundary.
	if err := w2.append(r2); err != nil {
		t.Fatal(err)
	}
	w2.close()
	_, recs, err = openWAL(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("after truncate+append replayed %d records, want 3", len(recs))
	}

	// A CRC flip inside the retained log is corruption, not a torn tail:
	// open must refuse rather than drop committed records.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[9] ^= 0x40
	bad := filepath.Join(t.TempDir(), "bad.wal")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := openWAL(bad, nil); err == nil {
		t.Fatal("corrupt WAL opened without error")
	}
}

// TestCoordinatorRecovery reopens a WAL mid-job: completed shards keep
// their results, the rest re-lease, and the merged summary still
// matches the in-process engine.
func TestCoordinatorRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.wal")
	spec := Spec{Mode: ModeSweep, App: "fir", Runtime: "InK", Runs: 9, BaseSeed: 21, Shards: 3}

	c1, err := New(CoordinatorConfig{WALPath: path, Source: testApps})
	if err != nil {
		t.Fatal(err)
	}
	id, err := c1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Execute exactly one shard by hand, then abandon the coordinator
	// with the second shard still leased — the crash shape.
	task, ok, err := c1.Lease("w0")
	if err != nil || !ok {
		t.Fatalf("lease: ok=%v err=%v", ok, err)
	}
	result, err := ExecuteShard(context.Background(), testApps, task)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Complete("w0", result); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c1.Lease("w0"); err != nil || !ok {
		t.Fatalf("second lease: ok=%v err=%v", ok, err)
	}
	c1.Close()

	c2, err := New(CoordinatorConfig{WALPath: path, Source: testApps})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if done, total, ok := c2.Progress(id); !ok || done != 1 || total != 3 {
		t.Fatalf("recovered progress %d/%d ok=%v, want 1/3", done, total, ok)
	}
	startLoopback(t, c2, 2)
	res := waitResult(t, c2, id)

	want, werr := experiments.RunMany(
		experiments.Config{Runs: 9, BaseSeed: 21, Workers: 3}, testApps["fir"], experiments.InK)
	if werr != nil {
		t.Fatal(werr)
	}
	if !reflect.DeepEqual(res.Summary, want) {
		t.Errorf("recovered fleet summary differs from RunMany:\n%+v\nvs\n%+v", res.Summary, want)
	}
}

// TestRecoveryReplansMissingPlan covers the crash window between the
// submit and plan records: recovery re-runs the deterministic planner
// (for checks, the golden pass) and the job completes normally.
func TestRecoveryReplansMissingPlan(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.wal")
	spec := Spec{Mode: ModeCheck, App: "fig6", Runtime: "EaseIO", Exhaustive: true, Shards: 2}

	// Hand-write a WAL holding only the submit record.
	w, _, err := openWAL(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(record{Type: recSubmit, Job: 0, Spec: spec}); err != nil {
		t.Fatal(err)
	}
	w.close()

	c, err := New(CoordinatorConfig{WALPath: path, Source: testApps})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	startLoopback(t, c, 2)
	res := waitResult(t, c, 0)

	want, werr := check.Run(context.Background(), check.Fig6Bench, experiments.EaseIO,
		check.Config{Exhaustive: true})
	if werr != nil {
		t.Fatal(werr)
	}
	if res.Report.Render() != want.Render() {
		t.Errorf("re-planned report differs:\n--- fleet ---\n%s--- direct ---\n%s",
			res.Report.Render(), want.Render())
	}
}

// TestLeaseExpiryAndRetry drives the failure paths on a fake clock: an
// expired lease re-leases to another worker without burning an attempt,
// failed attempts back off, and MaxAttempts fails the job.
func TestLeaseExpiryAndRetry(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	m := NewMetrics()
	c := newTestCoordinator(t, func(cfg *CoordinatorConfig) {
		cfg.Now = clock
		cfg.LeaseTTL = 10 * time.Second
		cfg.MaxAttempts = 2
		cfg.RetryBackoff = time.Second
		cfg.Metrics = m
	})
	id, err := c.Submit(Spec{Mode: ModeSweep, App: "dma", Runtime: "EaseIO", Runs: 4, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}

	task, ok, err := c.Lease("w-dead")
	if err != nil || !ok {
		t.Fatalf("lease: ok=%v err=%v", ok, err)
	}
	if _, ok, _ := c.Lease("w-live"); ok {
		t.Fatal("second lease granted while the shard is held")
	}
	advance(11 * time.Second)
	task2, ok, err := c.Lease("w-live")
	if err != nil || !ok {
		t.Fatalf("post-expiry lease: ok=%v err=%v", ok, err)
	}
	if string(task2) != string(task) {
		t.Error("expired shard re-leased as a different task")
	}
	if m.Expirations.Value("w-dead") != 1 {
		t.Errorf("expirations(w-dead) = %d, want 1", m.Expirations.Value("w-dead"))
	}

	// First failure: backoff gates the next lease, then it reopens.
	job, shard, err := taskIDs(task2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.FailShard("w-live", job, shard, "transient"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Lease("w-live"); ok {
		t.Fatal("lease granted inside the retry backoff")
	}
	advance(2 * time.Second)
	task3, ok, err := c.Lease("w-live")
	if err != nil || !ok {
		t.Fatalf("post-backoff lease: ok=%v err=%v", ok, err)
	}

	// The stale holder's completion still wins the race if it lands
	// first — results are byte-identical either way.
	staleResult, err := ExecuteShard(context.Background(), testApps, task)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Complete("w-dead", staleResult); err != nil {
		t.Fatal(err)
	}
	res := waitResult(t, c, id)
	if res.Summary.Runs != 4 {
		t.Errorf("summary covers %d runs, want 4", res.Summary.Runs)
	}
	// And the re-leased worker's duplicate completion is a no-op.
	dup, err := ExecuteShard(context.Background(), testApps, task3)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Complete("w-live", dup); err != nil {
		t.Fatal(err)
	}

	// A second job exhausting MaxAttempts fails terminally.
	id2, err := c.Submit(Spec{Mode: ModeSweep, App: "dma", Runtime: "EaseIO", Runs: 4, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		advance(time.Minute)
		task, ok, err := c.Lease("w-flaky")
		if err != nil || !ok {
			t.Fatalf("attempt %d lease: ok=%v err=%v", i, ok, err)
		}
		job, shard, _ := taskIDs(task)
		if err := c.FailShard("w-flaky", job, shard, "persistent"); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Wait(ctx, id2); err == nil || !strings.Contains(err.Error(), "persistent") {
		t.Errorf("exhausted job returned %v, want the terminal shard failure", err)
	}
	if m.Retries.Value("w-flaky") != 2 {
		t.Errorf("retries(w-flaky) = %d, want 2", m.Retries.Value("w-flaky"))
	}
}

// TestRetryBackoffSurvivesRestart is the lease-replay regression: a
// failed shard's backoff gate is derived from the journaled failure
// time, so a coordinator that restarts right after the failure must NOT
// hand the still-broken shard straight back out — before the fix,
// replay only bumped the attempt counter and the re-lease was
// immediate, defeating the backoff exactly when a crash-looping worker
// was knocking the coordinator over too.
func TestRetryBackoffSurvivesRestart(t *testing.T) {
	now := time.Unix(5000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	path := filepath.Join(t.TempDir(), "fleet.wal")
	mkCfg := func() CoordinatorConfig {
		return CoordinatorConfig{
			WALPath: path, Source: testApps, Now: clock,
			LeaseTTL: time.Minute, RetryBackoff: 10 * time.Second, MaxAttempts: 3,
		}
	}
	c1, err := New(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	id, err := c1.Submit(Spec{Mode: ModeSweep, App: "dma", Runtime: "EaseIO", Runs: 4, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	task, ok, err := c1.Lease("w0")
	if err != nil || !ok {
		t.Fatalf("lease: ok=%v err=%v", ok, err)
	}
	job, shard, err := taskIDs(task)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.FailShard("w0", job, shard, "transient"); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	// Restart with the clock unmoved: the gate must hold.
	c2, err := New(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, ok, _ := c2.Lease("w0"); ok {
		t.Fatal("lease granted inside the retry backoff after a restart")
	}
	advance(11 * time.Second)
	task2, ok, err := c2.Lease("w0")
	if err != nil || !ok {
		t.Fatalf("post-backoff lease after restart: ok=%v err=%v", ok, err)
	}
	// The job still completes normally on the recovered coordinator.
	result, err := ExecuteShard(context.Background(), testApps, task2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Complete("w0", result); err != nil {
		t.Fatal(err)
	}
	res := waitResult(t, c2, id)
	if res.Summary.Runs != 4 {
		t.Errorf("summary covers %d runs, want 4", res.Summary.Runs)
	}
}
