// The crash-consistent job store: an append-only log of job state
// transitions, one CRC-framed record per transition, fsynced before the
// in-memory transition it describes takes effect. A coordinator restart
// replays the log from the start; the fold in coordinator.go is
// idempotent, so replaying any prefix twice reaches the same state.
//
// Torn tails are expected — a crash mid-append leaves a frame with a
// length but not all its bytes — and are truncated away on open, which
// is exactly the write-ahead contract: a transition whose record did not
// fully reach the disk never happened. A CRC mismatch on a *complete*
// frame is different: that is corruption inside the retained log, and
// open refuses it rather than silently dropping committed transitions.

package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"easeio/internal/wire"
)

// recType discriminates WAL records. The numbering is part of the
// on-disk format: append only.
type recType byte

const (
	recInvalid   recType = 0
	recSubmit    recType = 1 // a job was accepted
	recPlan      recType = 2 // its shards were planned
	recLease     recType = 3 // a shard was leased to a worker
	recShardDone recType = 4 // a shard completed with a result payload
	recShardFail recType = 5 // a shard attempt failed
	recJobDone   recType = 6 // the job merged into a final result
	recJobFail   recType = 7 // the job failed terminally
)

func (t recType) String() string {
	switch t {
	case recSubmit:
		return "submit"
	case recPlan:
		return "plan"
	case recLease:
		return "lease"
	case recShardDone:
		return "shard-done"
	case recShardFail:
		return "shard-fail"
	case recJobDone:
		return "job-done"
	case recJobFail:
		return "job-fail"
	}
	return fmt.Sprintf("recType(%d)", byte(t))
}

// record is one WAL entry. Only the fields its type uses are set.
type record struct {
	Type recType
	Job  uint64

	Spec Spec // recSubmit

	// recPlan: the shard ranges, plus the check plan header when the
	// job is a check (sweep plans are fully determined by the spec, but
	// a check plan carries the golden pass's outputs).
	Shards  [][2]int
	HasPlan bool
	Plan    planHeader
	// Level1/Tasks are set for subtree-sharded nested check plans:
	// Level1 is the coordinator's completed level-1 exploration (an
	// encoded wire.CheckResult) and Tasks the pre-encoded subtree shard
	// messages, aligned with Shards. They must be durable — the level-1
	// outcomes and root checkpoints they embed are consumed state, not
	// replayable from the spec without re-running the exploration.
	Level1 []byte
	Tasks  [][]byte

	Shard  int    // recLease, recShardDone, recShardFail
	Worker string // recLease
	At     int64  // recLease, recShardFail: coordinator clock, unix nanos

	Payload []byte   // recShardDone (shard result), recJobDone (merged result)
	Errs    []string // recJobDone: flattened per-run sweep errors
	Err     string   // recShardFail, recJobFail
}

// planHeader is the golden-pass output a check job's recPlan persists,
// so recovery rebuilds the report skeleton without re-running golden.
// App and Runtime are the *report* names (the blueprint's App.Name and
// the runtime label), which need not equal the spec's registry key.
type planHeader struct {
	App     string
	Runtime string
	// Off is the checker's filled off-time (the spec may leave it zero
	// and take check's default; the report header shows the real value).
	Off           time.Duration
	GoldenOnTime  time.Duration
	GoldenCorrect bool
	Candidates    int
	Note          string
}

// encode renders the record as a frame payload: the type byte followed
// by the type's body, built from the wire vocabulary.
func (r record) encode() []byte {
	b := []byte{byte(r.Type)}
	b = wire.AppendUvarint(b, r.Job)
	switch r.Type {
	case recSubmit:
		s := r.Spec
		b = wire.AppendString(b, s.Mode)
		b = wire.AppendString(b, s.App)
		b = wire.AppendString(b, s.Runtime)
		b = wire.AppendVarint(b, int64(s.Runs))
		b = wire.AppendVarint(b, s.BaseSeed)
		b = wire.AppendVarint(b, s.Seed)
		b = wire.AppendVarint(b, int64(s.Off))
		b = wire.AppendVarint(b, int64(s.Grid))
		b = wire.AppendBool(b, s.Exhaustive)
		b = wire.AppendVarint(b, int64(s.Failures))
		b = wire.AppendVarint(b, int64(s.Shards))
		b = wire.AppendVarint(b, int64(s.ShardWorkers))
	case recPlan:
		b = wire.AppendBool(b, r.HasPlan)
		if r.HasPlan {
			b = wire.AppendString(b, r.Plan.App)
			b = wire.AppendString(b, r.Plan.Runtime)
			b = wire.AppendVarint(b, int64(r.Plan.Off))
			b = wire.AppendVarint(b, int64(r.Plan.GoldenOnTime))
			b = wire.AppendBool(b, r.Plan.GoldenCorrect)
			b = wire.AppendVarint(b, int64(r.Plan.Candidates))
			b = wire.AppendString(b, r.Plan.Note)
		}
		b = wire.AppendUvarint(b, uint64(len(r.Shards)))
		for _, sh := range r.Shards {
			b = wire.AppendVarint(b, int64(sh[0]))
			b = wire.AppendVarint(b, int64(sh[1]))
		}
		b = wire.AppendBytes(b, r.Level1)
		b = wire.AppendUvarint(b, uint64(len(r.Tasks)))
		for _, t := range r.Tasks {
			b = wire.AppendBytes(b, t)
		}
	case recLease:
		b = wire.AppendUvarint(b, uint64(r.Shard))
		b = wire.AppendString(b, r.Worker)
		b = wire.AppendVarint(b, r.At)
	case recShardDone:
		b = wire.AppendUvarint(b, uint64(r.Shard))
		b = wire.AppendBytes(b, r.Payload)
	case recShardFail:
		b = wire.AppendUvarint(b, uint64(r.Shard))
		b = wire.AppendString(b, r.Err)
		// The failure time anchors the retry backoff across a restart:
		// without it, replay could only bump the attempt counter and the
		// re-leased shard would skip the backoff the live coordinator had
		// imposed.
		b = wire.AppendVarint(b, r.At)
	case recJobDone:
		b = wire.AppendBytes(b, r.Payload)
		b = wire.AppendUvarint(b, uint64(len(r.Errs)))
		for _, e := range r.Errs {
			b = wire.AppendString(b, e)
		}
	case recJobFail:
		b = wire.AppendString(b, r.Err)
	default:
		panic("fleet: encoding WAL record of unknown type " + r.Type.String())
	}
	return b
}

// decodeRecord parses one frame payload.
func decodeRecord(b []byte) (record, error) {
	d := wire.NewDecoder(b)
	r := record{Type: recType(d.Byte()), Job: d.Uvarint()}
	switch r.Type {
	case recSubmit:
		r.Spec = Spec{
			Mode:         d.String(),
			App:          d.String(),
			Runtime:      d.String(),
			Runs:         int(d.Varint()),
			BaseSeed:     d.Varint(),
			Seed:         d.Varint(),
			Off:          time.Duration(d.Varint()),
			Grid:         int(d.Varint()),
			Exhaustive:   d.Bool(),
			Failures:     int(d.Varint()),
			Shards:       int(d.Varint()),
			ShardWorkers: int(d.Varint()),
		}
	case recPlan:
		r.HasPlan = d.Bool()
		if r.HasPlan {
			r.Plan = planHeader{
				App:           d.String(),
				Runtime:       d.String(),
				Off:           time.Duration(d.Varint()),
				GoldenOnTime:  time.Duration(d.Varint()),
				GoldenCorrect: d.Bool(),
				Candidates:    int(d.Varint()),
				Note:          d.String(),
			}
		}
		n := d.Uvarint()
		if d.Err() == nil && n > uint64(d.Remaining()) {
			d.Fail("fleet: plan record claims %d shards with %d bytes left", n, d.Remaining())
		}
		if d.Err() == nil && n > 0 {
			r.Shards = make([][2]int, n)
			for i := range r.Shards {
				r.Shards[i] = [2]int{int(d.Varint()), int(d.Varint())}
			}
		}
		r.Level1 = d.Bytes()
		n = d.Uvarint()
		if d.Err() == nil && n > uint64(d.Remaining()) {
			d.Fail("fleet: plan record claims %d tasks with %d bytes left", n, d.Remaining())
		}
		if d.Err() == nil && n > 0 {
			r.Tasks = make([][]byte, n)
			for i := range r.Tasks {
				r.Tasks[i] = d.Bytes()
			}
		}
	case recLease:
		r.Shard = int(d.Uvarint())
		r.Worker = d.String()
		r.At = d.Varint()
	case recShardDone:
		r.Shard = int(d.Uvarint())
		r.Payload = d.Bytes()
	case recShardFail:
		r.Shard = int(d.Uvarint())
		r.Err = d.String()
		r.At = d.Varint()
	case recJobDone:
		r.Payload = d.Bytes()
		n := d.Uvarint()
		if d.Err() == nil && n > uint64(d.Remaining()) {
			d.Fail("fleet: job-done record claims %d errors with %d bytes left", n, d.Remaining())
		}
		if d.Err() == nil && n > 0 {
			r.Errs = make([]string, n)
			for i := range r.Errs {
				r.Errs[i] = d.String()
			}
		}
	case recJobFail:
		r.Err = d.String()
	default:
		d.Fail("fleet: unknown WAL record type %d", byte(r.Type))
	}
	if err := d.Err(); err != nil {
		return record{}, err
	}
	if n := d.Remaining(); n != 0 {
		return record{}, fmt.Errorf("fleet: %s record has %d trailing bytes", r.Type, n)
	}
	return r, nil
}

// wal is the open log. Appends serialize under mu; every append is
// fsynced before it returns, so a record the caller saw succeed survives
// any later crash.
type wal struct {
	f   *os.File
	obs func(fsync time.Duration) // nil ok; receives each fsync's latency
}

// openWAL opens (creating if absent) the log at path, replays its
// records, and truncates a torn tail. The returned records are every
// fully-committed transition in append order.
func openWAL(path string, obs func(time.Duration)) (*wal, []record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: open WAL: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("fleet: read WAL: %w", err)
	}

	var recs []record
	rd := bytes.NewReader(data)
	goodEnd := 0
	for {
		payload, err := wire.ReadFrame(rd)
		if err == io.EOF {
			break
		}
		if errors.Is(err, wire.ErrTornFrame) {
			// The tail of an append the crash interrupted: the transition
			// never committed. Drop it.
			if err := f.Truncate(int64(goodEnd)); err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("fleet: truncate torn WAL tail: %w", err)
			}
			break
		}
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("fleet: WAL at byte %d: %w", goodEnd, err)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("fleet: WAL record at byte %d: %w", goodEnd, err)
		}
		recs = append(recs, rec)
		goodEnd = len(data) - rd.Len()
	}
	if _, err := f.Seek(int64(goodEnd), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("fleet: seek WAL tail: %w", err)
	}
	return &wal{f: f, obs: obs}, recs, nil
}

// append frames, writes and fsyncs one record. The caller must hold the
// coordinator lock (the WAL has no lock of its own: record order on disk
// must match transition order in memory).
func (w *wal) append(r record) error {
	frame := wire.AppendFrame(nil, r.encode())
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("fleet: append WAL %s record: %w", r.Type, err)
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("fleet: fsync WAL: %w", err)
	}
	if w.obs != nil {
		w.obs(time.Since(start))
	}
	return nil
}

func (w *wal) close() error { return w.f.Close() }
