// Package fleet is the distributed sweep/check subsystem: a coordinator
// that shards jobs across N workers — sweep jobs by contiguous seed
// range, exhaustive check jobs by candidate cut range — and merges shard
// results back into exactly the Summary or Report a single process would
// have produced.
//
// Durability: every job state transition (submitted → planned → shard
// leased → shard complete → merged / failed) is a record in a
// crash-consistent write-ahead log (wal.go): appended, CRC-framed and
// fsynced before the transition takes effect. A coordinator that dies
// mid-job replays the WAL on restart: completed shards keep their
// results, leased-but-unfinished shards revert to pending, and the job
// resumes where it stopped. Replay is a pure fold over the records, so
// replaying a prefix twice is idempotent.
//
// Determinism: the merged results are byte-identical to the in-process
// engines (experiments.RunMany, check.Run) because both engines fold
// order-dependent state only — a sweep shard ships its raw
// stats.AggregatorState and shards merge in seed order; an exhaustive
// check shard ships divergences under absolute candidate indices and
// shards concatenate in cut order onto the plan's golden header.
// Adaptive (bisection) checks stay a single shard: their pruning
// decisions depend on outcomes across the whole candidate range.
// Exhaustive nested (k > 1) checks run level 1 in the coordinator —
// representative selection is likewise a whole-range decision — then
// shard the level-1 frontier as subtree work units (wire.SubtreeShard):
// each carries a contiguous group of root checkpoints that a stateless
// worker restores and grows to depth k (see DESIGN.md on the subtree
// work-unit contract).
//
// Transports: workers pull work — Lease/Complete/Fail — either
// in-process (loopback workers, the testing and single-host mode) or
// over TCP with the internal/wire framing (cmd/easeio-worker).
package fleet

import (
	"fmt"
	"time"

	"easeio/internal/check"
	"easeio/internal/experiments"
	"easeio/internal/stats"
	"easeio/internal/wire"
)

// BlueprintSource resolves app names to factories. service.Registry
// satisfies it structurally; tests use small fixed maps.
type BlueprintSource interface {
	LookupFactory(name string) (experiments.AppFactory, bool)
}

// The two job modes.
const (
	ModeSweep = "sweep"
	ModeCheck = "check"
)

// Spec describes one distributed job. The zero values of the unused
// mode's fields are ignored.
type Spec struct {
	Mode    string // ModeSweep or ModeCheck
	App     string
	Runtime string // experiments.RuntimeKind name

	// Sweep: the seeded-run count and base seed.
	Runs     int
	BaseSeed int64

	// Check: the replayed seed and the exploration parameters. Failures
	// is the nested-failure depth k (0 defaults to 1). Exhaustive k > 1
	// jobs shard at the level-1 frontier (subtree work units); adaptive
	// k > 1 jobs stay a single shard, because their level-1 pruning
	// depends on outcomes across the whole candidate range.
	Seed       int64
	Off        time.Duration
	Grid       int
	Exhaustive bool
	Failures   int

	// Shards is the desired shard count (defaults to the coordinator's
	// configured default; clamped to the available work).
	Shards int

	// ShardWorkers bounds each worker's inner parallelism per shard
	// (0 = the worker's default).
	ShardWorkers int
}

// validate rejects specs the planner cannot shard.
func (s Spec) validate() error {
	if s.App == "" {
		return fmt.Errorf("fleet: spec has no app")
	}
	if _, err := experiments.ParseRuntimeKind(s.Runtime); err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	switch s.Mode {
	case ModeSweep:
		if s.Runs <= 0 {
			return fmt.Errorf("fleet: sweep spec needs Runs > 0")
		}
	case ModeCheck:
		if s.Runs != 0 {
			return fmt.Errorf("fleet: check spec must not set Runs")
		}
		if s.Failures != 0 {
			if err := check.ValidateFailures(s.Failures); err != nil {
				return fmt.Errorf("fleet: %w", err)
			}
		}
	default:
		return fmt.Errorf("fleet: unknown mode %q", s.Mode)
	}
	if s.Shards < 0 || s.ShardWorkers < 0 {
		return fmt.Errorf("fleet: negative shard parameters")
	}
	return nil
}

// Result is a merged job outcome.
type Result struct {
	Mode string

	// Summary is the sweep outcome (Mode == ModeSweep), byte-identical
	// to experiments.RunMany over the same spec.
	Summary stats.Summary

	// Report is the check outcome (Mode == ModeCheck), byte-identical to
	// check.Run over the same spec.
	Report *check.Report

	// Errs carries per-run failures from sweep shards (the flattened
	// form of the error experiments.RunMany would have joined).
	Errs []string
}

// encodeResultPayload encodes the outcome as the WAL's job-done payload.
func encodeResultPayload(r Result) []byte {
	switch r.Mode {
	case ModeSweep:
		return wire.AppendSummary(nil, r.Summary)
	case ModeCheck:
		return wire.AppendReport(nil, *r.Report)
	}
	panic("fleet: encoding result of unknown mode " + r.Mode)
}

// decodeResultPayload is the inverse of encodeResultPayload.
func decodeResultPayload(mode string, b []byte) (Result, error) {
	switch mode {
	case ModeSweep:
		sum, err := wire.DecodeSummary(b)
		if err != nil {
			return Result{}, err
		}
		return Result{Mode: mode, Summary: sum}, nil
	case ModeCheck:
		rep, err := wire.DecodeReport(b)
		if err != nil {
			return Result{}, err
		}
		return Result{Mode: mode, Report: &rep}, nil
	}
	return Result{}, fmt.Errorf("fleet: result of unknown mode %q", mode)
}
