// Package units defines the physical quantities used throughout the
// simulator: energy, electric charge, voltage, capacitance, and power.
//
// Energy is the central currency of an intermittent system. The simulator
// accounts energy in picojoules using integer arithmetic so that runs are
// exactly reproducible across platforms; at MSP430 scales (a 1 mF capacitor
// swing stores a few millijoules, i.e. a few 1e9 pJ) an int64 ledger has
// over nine orders of magnitude of headroom.
package units

import (
	"fmt"
	"math"
	"time"
)

// Energy is an amount of energy in picojoules (pJ).
type Energy int64

// Convenient energy constructors.
const (
	Picojoule  Energy = 1
	Nanojoule  Energy = 1e3
	Microjoule Energy = 1e6
	Millijoule Energy = 1e9
	Joule      Energy = 1e12
)

// Microjoules returns e expressed in microjoules.
func (e Energy) Microjoules() float64 { return float64(e) / float64(Microjoule) }

// Millijoules returns e expressed in millijoules.
func (e Energy) Millijoules() float64 { return float64(e) / float64(Millijoule) }

// Joules returns e expressed in joules.
func (e Energy) Joules() float64 { return float64(e) / float64(Joule) }

// String formats the energy with an auto-selected SI prefix.
func (e Energy) String() string {
	abs := e
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= Joule:
		return fmt.Sprintf("%.3fJ", e.Joules())
	case abs >= Millijoule:
		return fmt.Sprintf("%.3fmJ", e.Millijoules())
	case abs >= Microjoule:
		return fmt.Sprintf("%.3fµJ", e.Microjoules())
	case abs >= Nanojoule:
		return fmt.Sprintf("%.3fnJ", float64(e)/float64(Nanojoule))
	default:
		return fmt.Sprintf("%dpJ", int64(e))
	}
}

// EnergyFromJoules converts a float amount of joules into an Energy.
func EnergyFromJoules(j float64) Energy { return Energy(j * float64(Joule)) }

// Voltage is an electric potential in microvolts.
type Voltage int64

// Voltage constructors.
const (
	Microvolt Voltage = 1
	Millivolt Voltage = 1e3
	Volt      Voltage = 1e6
)

// Volts returns v expressed in volts.
func (v Voltage) Volts() float64 { return float64(v) / float64(Volt) }

// String formats the voltage in volts.
func (v Voltage) String() string { return fmt.Sprintf("%.3fV", v.Volts()) }

// VoltageFromVolts converts a float volt value into a Voltage.
func VoltageFromVolts(v float64) Voltage { return Voltage(v * float64(Volt)) }

// Capacitance is an electric capacitance in nanofarads.
type Capacitance int64

// Capacitance constructors.
const (
	Nanofarad  Capacitance = 1
	Microfarad Capacitance = 1e3
	Millifarad Capacitance = 1e6
)

// Farads returns c expressed in farads.
func (c Capacitance) Farads() float64 { return float64(c) / 1e9 }

// String formats the capacitance with an auto-selected SI prefix.
func (c Capacitance) String() string {
	switch {
	case c >= Millifarad:
		return fmt.Sprintf("%.3fmF", float64(c)/float64(Millifarad))
	case c >= Microfarad:
		return fmt.Sprintf("%.3fµF", float64(c)/float64(Microfarad))
	default:
		return fmt.Sprintf("%dnF", int64(c))
	}
}

// Power is an amount of power in nanowatts. One nanowatt delivers exactly
// one picojoule per millisecond, which keeps the integer math exact for the
// microsecond-granularity steps the simulator takes.
type Power int64

// Power constructors.
const (
	Nanowatt  Power = 1
	Microwatt Power = 1e3
	Milliwatt Power = 1e6
	Watt      Power = 1e9
)

// Milliwatts returns p expressed in milliwatts.
func (p Power) Milliwatts() float64 { return float64(p) / float64(Milliwatt) }

// String formats the power with an auto-selected SI prefix.
func (p Power) String() string {
	abs := p
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= Watt:
		return fmt.Sprintf("%.3fW", float64(p)/float64(Watt))
	case abs >= Milliwatt:
		return fmt.Sprintf("%.3fmW", p.Milliwatts())
	case abs >= Microwatt:
		return fmt.Sprintf("%.3fµW", float64(p)/float64(Microwatt))
	default:
		return fmt.Sprintf("%dnW", int64(p))
	}
}

// PowerFromWatts converts a float watt value into a Power.
func PowerFromWatts(w float64) Power { return Power(w * float64(Watt)) }

// EnergyOver returns the energy delivered by power p over duration d.
func EnergyOver(p Power, d time.Duration) Energy {
	// p [nW] * d [ns] = p*d * 1e-18 J = p*d * 1e-6 pJ.
	// Divide in two stages to avoid int64 overflow for long durations.
	ns := d.Nanoseconds()
	whole := Energy(int64(p) * (ns / 1000) / 1000)
	frac := Energy(int64(p) * (ns % 1000) / 1e6)
	return whole + frac
}

// DurationToDeliver returns how long power p needs to deliver energy e.
// It returns a very large duration if p is not positive.
func DurationToDeliver(e Energy, p Power) time.Duration {
	if p <= 0 {
		return time.Duration(1<<62 - 1)
	}
	// e [pJ] / p [nW] = e/p * 1e-3 s = e/p ms.
	ms := float64(e) / float64(p)
	return time.Duration(ms * float64(time.Millisecond))
}

// StoredEnergy returns the energy held by capacitance c charged to voltage v:
// E = ½ C V².
func StoredEnergy(c Capacitance, v Voltage) Energy {
	volts := v.Volts()
	return EnergyFromJoules(0.5 * c.Farads() * volts * volts)
}

// VoltageForEnergy inverts StoredEnergy: the voltage a capacitor of
// capacitance c holds when storing energy e. Returns 0 for non-positive
// inputs.
func VoltageForEnergy(c Capacitance, e Energy) Voltage {
	if e <= 0 || c <= 0 {
		return 0
	}
	v := 2 * e.Joules() / c.Farads()
	if v <= 0 {
		return 0
	}
	return VoltageFromVolts(math.Sqrt(v))
}
