package units

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEnergyConversions(t *testing.T) {
	cases := []struct {
		e    Energy
		uj   float64
		mj   float64
		text string
	}{
		{1, 1e-6, 1e-9, "1pJ"},
		{Microjoule, 1, 1e-3, "1.000µJ"},
		{2500 * Nanojoule, 2.5, 2.5e-3, "2.500µJ"},
		{Millijoule, 1000, 1, "1.000mJ"},
		{3 * Joule, 3e6, 3000, "3.000J"},
	}
	for _, c := range cases {
		if got := c.e.Microjoules(); got != c.uj {
			t.Errorf("%v.Microjoules() = %v, want %v", int64(c.e), got, c.uj)
		}
		if got := c.e.Millijoules(); got != c.mj {
			t.Errorf("%v.Millijoules() = %v, want %v", int64(c.e), got, c.mj)
		}
		if got := c.e.String(); got != c.text {
			t.Errorf("%v.String() = %q, want %q", int64(c.e), got, c.text)
		}
	}
}

func TestEnergyFromJoulesRoundTrip(t *testing.T) {
	if got := EnergyFromJoules(0.001); got != Millijoule {
		t.Errorf("EnergyFromJoules(0.001) = %v, want %v", got, Millijoule)
	}
	if got := EnergyFromJoules(2.5e-6); got != 2500*Nanojoule {
		t.Errorf("EnergyFromJoules(2.5e-6) = %v, want 2.5µJ", got)
	}
}

func TestVoltageAndCapacitanceFormatting(t *testing.T) {
	if got := VoltageFromVolts(3.3).String(); got != "3.300V" {
		t.Errorf("voltage string = %q", got)
	}
	if got := (1 * Millifarad).String(); got != "1.000mF" {
		t.Errorf("capacitance string = %q", got)
	}
	if got := (22 * Microfarad).String(); got != "22.000µF" {
		t.Errorf("capacitance string = %q", got)
	}
	if got := (470 * Nanofarad).String(); got != "470nF" {
		t.Errorf("capacitance string = %q", got)
	}
}

func TestPowerFormatting(t *testing.T) {
	cases := []struct {
		p    Power
		text string
	}{
		{500 * Nanowatt, "500nW"},
		{354 * Microwatt, "354.000µW"},
		{3 * Milliwatt, "3.000mW"},
		{2 * Watt, "2.000W"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.text {
			t.Errorf("%d.String() = %q, want %q", int64(c.p), got, c.text)
		}
	}
}

func TestEnergyOver(t *testing.T) {
	// 1 mW for 1 ms = 1 µJ.
	if got := EnergyOver(Milliwatt, time.Millisecond); got != Microjoule {
		t.Errorf("1mW over 1ms = %v, want 1µJ", got)
	}
	// 354 pJ per µs at 0.354 mW.
	if got := EnergyOver(354*Microwatt, time.Microsecond); got != 354 {
		t.Errorf("354µW over 1µs = %v pJ, want 354", int64(got))
	}
	// Long durations must not overflow: 1 W for one hour = 3600 J.
	if got := EnergyOver(Watt, time.Hour); got != 3600*Joule {
		t.Errorf("1W over 1h = %v, want 3600J", got)
	}
	if got := EnergyOver(Milliwatt, 0); got != 0 {
		t.Errorf("zero duration = %v, want 0", got)
	}
}

func TestEnergyOverAdditivity(t *testing.T) {
	// Splitting an interval must not lose more than rounding error.
	err := quick.Check(func(pRaw int32, usA, usB uint16) bool {
		p := Power(int64(pRaw%1_000_000) + 1_000_000) // 1–2 mW
		a := time.Duration(usA) * time.Microsecond
		b := time.Duration(usB) * time.Microsecond
		whole := EnergyOver(p, a+b)
		split := EnergyOver(p, a) + EnergyOver(p, b)
		diff := whole - split
		if diff < 0 {
			diff = -diff
		}
		return diff <= 2 // ≤ 2 pJ rounding
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestDurationToDeliver(t *testing.T) {
	if got := DurationToDeliver(Microjoule, Milliwatt); got != time.Millisecond {
		t.Errorf("1µJ at 1mW = %v, want 1ms", got)
	}
	if got := DurationToDeliver(Microjoule, 0); got < time.Hour {
		t.Errorf("zero power should take effectively forever, got %v", got)
	}
}

func TestStoredEnergy(t *testing.T) {
	// ½ · 1mF · (3.3V)² = 5.445 mJ.
	got := StoredEnergy(Millifarad, VoltageFromVolts(3.3))
	want := EnergyFromJoules(0.5 * 1e-3 * 3.3 * 3.3)
	if diff := got - want; diff < -10 || diff > 10 { // ≤ 10 pJ float rounding
		t.Errorf("StoredEnergy = %v, want %v", got, want)
	}
}

func TestVoltageForEnergyInvertsStoredEnergy(t *testing.T) {
	err := quick.Check(func(mv uint16) bool {
		v := Voltage(int64(mv)+1000) * Millivolt // 1–66.5 V
		c := 10 * Microfarad
		back := VoltageForEnergy(c, StoredEnergy(c, v))
		diff := int64(back - v)
		if diff < 0 {
			diff = -diff
		}
		return diff <= int64(v)/1000+1 // within 0.1 %
	}, nil)
	if err != nil {
		t.Error(err)
	}
	if VoltageForEnergy(Microfarad, 0) != 0 {
		t.Error("zero energy should give zero voltage")
	}
	if VoltageForEnergy(0, Microjoule) != 0 {
		t.Error("zero capacitance should give zero voltage")
	}
}
