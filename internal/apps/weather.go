// The DNN weather-classification application (§5.4.1, Figure 9): eleven
// tasks spanning sensing (an I/O block combining Timely and Always
// semantics), image capture, a five-layer DNN driven by DMA + LEA, and a
// radio transmission. The DNN's layer buffer can be single- or
// double-buffered (Table 5): with a single buffer, every layer's
// write-back DMA overwrites its own input — safe under EaseIO's regional
// privatization, broken under Alpaca and InK.

package apps

import (
	"time"

	"easeio/internal/lea"
	"easeio/internal/mem"
	"easeio/internal/periph"
	"easeio/internal/task"
)

// DNN dimensions.
const (
	WeatherImg     = 256 // 16×16 capture
	WeatherTaps    = 16  // 1×4×4 convolution kernels, flattened
	WeatherClasses = 4

	weatherL1 = WeatherImg - WeatherTaps + 1 // conv1/relu output: 241
	weatherL2 = weatherL1 - WeatherTaps + 1  // conv2 output: 226

	// LEA-RAM layout (word offsets).
	weatherLEAIn  = 0
	weatherLEAW   = 700
	weatherLEAOut = 1700
)

// BufferMode selects the DNN layer-buffer strategy of Table 5.
type BufferMode int

const (
	// SingleBuffer uses one layer buffer for input and output of every
	// layer (WAR through DMA).
	SingleBuffer BufferMode = iota
	// DoubleBuffer alternates between two layer buffers, the conventional
	// workaround the paper's Table 5 compares against.
	DoubleBuffer
)

// String names the mode as Table 5 does.
func (m BufferMode) String() string {
	if m == DoubleBuffer {
		return "double"
	}
	return "single"
}

// WeatherConfig parameterizes the weather classifier.
type WeatherConfig struct {
	// Buffers selects single- or double-buffered DNN layers.
	Buffers BufferMode
	// ExcludeWeights applies Exclude to the constant weight-fetch DMAs
	// (the EaseIO/Op configuration).
	ExcludeWeights bool
	// SenseWindow is the Timely window of the temperature reading inside
	// the sensing I/O block.
	SenseWindow time.Duration
	// DelayLoopSend replaces the radio with a CPU delay loop, the
	// simulation technique the paper uses for its transmitter (§5.4.1).
	DelayLoopSend bool
	// CalibCycles, PostCaptureCycles and LogCycles are the computation
	// that follows the sensing block, the image capture and the radio
	// send inside their tasks. They set up the paper's core trade-off: a
	// power failure in this tail makes baseline runtimes repeat the
	// expensive I/O, while EaseIO's semantics skip it.
	CalibCycles, PostCaptureCycles, LogCycles int64
}

// DefaultWeatherConfig mirrors the evaluation setup.
func DefaultWeatherConfig() WeatherConfig {
	return WeatherConfig{
		Buffers:           SingleBuffer,
		SenseWindow:       10 * time.Millisecond,
		CalibCycles:       3000,
		PostCaptureCycles: 4500,
		LogCycles:         3500,
	}
}

// weatherWeights builds the constant DNN parameters.
func weatherWeights() (wc1, wc2, wfc []uint16) {
	wc1 = Coefficients(WeatherTaps)
	wc2 = make([]uint16, WeatherTaps)
	for i, c := range Coefficients(WeatherTaps) {
		// A shifted variant so the two conv layers differ.
		wc2[i] = uint16(int16(int32(int16(c)) * 3 / 4))
	}
	wfc = make([]uint16, WeatherClasses*weatherL2)
	for k := 0; k < WeatherClasses; k++ {
		for j := 0; j < weatherL2; j++ {
			h := hash(uint64(k)<<32 | uint64(j))
			wfc[k*weatherL2+j] = uint16(int16(int32(h%2001) - 1000))
		}
	}
	return wc1, wc2, wfc
}

// WeatherGolden computes the continuous-power DNN result for the standard
// image: the per-class scores and the argmax class.
func WeatherGolden() (scores [WeatherClasses]uint16, class uint16) {
	img := Samples(Pattern(WeatherImg, 0x1333))
	wc1, wc2, wfc := weatherWeights()
	l1 := lea.ReluRef(lea.FirRef(img, Samples(wc1)))
	l2 := lea.FirRef(l1, Samples(wc2))
	best, bestV := 0, int32(-1<<31)
	for k := 0; k < WeatherClasses; k++ {
		w := Samples(wfc[k*weatherL2 : (k+1)*weatherL2])
		s := lea.DotRef(l2, w) >> 15
		if s > 32767 {
			s = 32767
		}
		if s < -32768 {
			s = -32768
		}
		scores[k] = uint16(int16(s))
		if s > bestV {
			bestV, best = s, k
		}
	}
	return scores, uint16(best)
}

// NewWeatherApp builds the 11-task weather classifier.
func NewWeatherApp(cfg WeatherConfig) (*Bench, error) {
	a := task.NewApp("weather")
	p := periph.StandardSet(0x3a7)

	imgInit := Pattern(WeatherImg, 0x1333)
	wc1Init, wc2Init, wfcInit := weatherWeights()

	img := a.NVConst("img", imgInit)
	wc1 := a.NVConst("wc1", wc1Init)
	wc2 := a.NVConst("wc2", wc2Init)
	wfc := a.NVConst("wfc", wfcInit)
	bufA := a.NVBuf("layerA", WeatherImg)
	bufB := a.NVBuf("layerB", WeatherImg)
	vtemp := a.NVInt("temp").Sensed()
	vhumd := a.NVInt("humd").Sensed()
	scores := a.NVBuf("scores", WeatherClasses)
	class := a.NVInt("class")

	// Layer buffer chain: with a single buffer every stage reads and
	// writes bufA; with double buffering the stages alternate A/B.
	in1, out1 := bufA, bufA
	in2, out2 := bufA, bufA
	in3, out3 := bufA, bufA
	in4 := bufA
	if cfg.Buffers == DoubleBuffer {
		out1 = bufB            // conv1: A → B
		in2, out2 = bufB, bufA // relu: B → A
		in3, out3 = bufA, bufB // conv2: A → B
		in4 = bufB             // fc reads B
	}

	// I/O sites.
	tempSite := a.TimelyIO("Temp", cfg.SenseWindow, true, func(e task.Exec, _ int) uint16 {
		return p.Temp.Sample(e)
	})
	humdSite := a.IO("Humd", task.Always, true, func(e task.Exec, _ int) uint16 {
		return p.Humidity.Sample(e)
	})
	capSite := a.IO("Capture", task.Single, false, func(e task.Exec, _ int) uint16 {
		p.Camera.Capture(e)
		return 0
	})
	conv1Site := a.IO("Conv1_LEA", task.Always, false, func(e task.Exec, _ int) uint16 {
		e.LEAFir(weatherLEAIn, weatherLEAW, weatherLEAOut, WeatherImg, WeatherTaps)
		return 0
	})
	conv2Site := a.IO("Conv2_LEA", task.Always, false, func(e task.Exec, _ int) uint16 {
		e.LEAFir(weatherLEAIn, weatherLEAW, weatherLEAOut, weatherL1, WeatherTaps)
		return 0
	})
	sendSite := a.IO("Send", task.Single, false, func(e task.Exec, _ int) uint16 {
		if cfg.DelayLoopSend {
			e.Compute(2750) // simulated transmitter (delay loop, §5.4.1)
		} else {
			p.Radio.Send(e, 3)
		}
		return 0
	}).After(tempSite, humdSite)

	senseBlk := a.Block("sense_blk", task.Single)

	// DMA sites.
	dPrep := a.DMA("img_to_layer")
	dIn1, dW1, dOut1 := a.DMA("conv1_in"), a.DMA("conv1_w"), a.DMA("conv1_out")
	dIn2, dOut2 := a.DMA("relu_in"), a.DMA("relu_out")
	dIn3, dW3, dOut3 := a.DMA("conv2_in"), a.DMA("conv2_w"), a.DMA("conv2_out")
	dIn4, dW4 := a.DMA("fc_in"), a.DMA("fc_w")
	if cfg.ExcludeWeights {
		dW1.Excluded()
		dW3.Excluded()
		dW4.Excluded()
	}

	lraw := func(off int) task.Loc { return task.RawLoc(uint8(mem.LEARAM), off) }

	var tSense, tCapture, tPrep, tConv1, tRelu, tConv2, tFC, tInfer, tSend, tDone *task.Task
	a.AddTask("init", func(e task.Exec) {
		e.Compute(500)
		e.Next(tSense)
	})
	tSense = a.AddTask("sense", func(e task.Exec) {
		var tv, hv uint16
		e.IOBlock(senseBlk, func() {
			tv = e.CallIO(tempSite)
			hv = e.CallIO(humdSite)
		})
		e.Compute(cfg.CalibCycles) // calibration over the fresh readings
		e.Store(vtemp, tv)
		e.Store(vhumd, hv)
		e.Next(tCapture)
	})
	tCapture = a.AddTask("capture", func(e task.Exec) {
		e.CallIO(capSite)
		e.Compute(cfg.PostCaptureCycles) // exposure check / cropping
		e.Next(tPrep)
	})
	tPrep = a.AddTask("prep", func(e task.Exec) {
		e.DMACopy(dPrep, task.VarLoc(img, 0), task.VarLoc(in1, 0), WeatherImg)
		e.Next(tConv1)
	})
	tConv1 = a.AddTask("conv1", func(e task.Exec) {
		e.DMACopy(dIn1, task.VarLoc(in1, 0), lraw(weatherLEAIn), WeatherImg)
		e.DMACopy(dW1, task.VarLoc(wc1, 0), lraw(weatherLEAW), WeatherTaps)
		e.CallIO(conv1Site)
		e.DMACopy(dOut1, lraw(weatherLEAOut), task.VarLoc(out1, 0), weatherL1)
		e.Next(tRelu)
	})
	// The standalone ReLU pass (layer 2 of the five-layer DNN) keeps the
	// data movement pattern of TAILS: fetch, transform, write back.
	tRelu = a.AddTask("relu", func(e task.Exec) {
		e.DMACopy(dIn2, task.VarLoc(in2, 0), lraw(weatherLEAIn), weatherL1)
		e.Compute(200)
		e.LEARelu(weatherLEAIn, weatherL1)
		e.DMACopy(dOut2, lraw(weatherLEAIn), task.VarLoc(out2, 0), weatherL1)
		e.Next(tConv2)
	})
	tConv2 = a.AddTask("conv2", func(e task.Exec) {
		e.DMACopy(dIn3, task.VarLoc(in3, 0), lraw(weatherLEAIn), weatherL1)
		e.DMACopy(dW3, task.VarLoc(wc2, 0), lraw(weatherLEAW), WeatherTaps)
		e.CallIO(conv2Site)
		e.DMACopy(dOut3, lraw(weatherLEAOut), task.VarLoc(out3, 0), weatherL2)
		e.Next(tFC)
	})
	tFC = a.AddTask("fc", func(e task.Exec) {
		e.DMACopy(dIn4, task.VarLoc(in4, 0), lraw(weatherLEAIn), weatherL2)
		e.DMACopy(dW4, task.VarLoc(wfc, 0), lraw(weatherLEAW), WeatherClasses*weatherL2)
		for k := 0; k < WeatherClasses; k++ {
			s := e.LEADot(weatherLEAIn, weatherLEAW+k*weatherL2, weatherL2) >> 15
			if s > 32767 {
				s = 32767
			}
			if s < -32768 {
				s = -32768
			}
			e.StoreAt(scores, k, uint16(int16(s)))
		}
		e.Next(tInfer)
	})
	tInfer = a.AddTask("infer", func(e task.Exec) {
		best, bestV := 0, int32(-1<<31)
		for k := 0; k < WeatherClasses; k++ {
			v := int32(int16(e.LoadAt(scores, k)))
			if v > bestV {
				bestV, best = v, k
			}
		}
		e.Store(class, uint16(best))
		e.Compute(300)
		e.Next(tSend)
	})
	tSend = a.AddTask("send", func(e task.Exec) {
		e.CallIO(sendSite)
		e.Compute(cfg.LogCycles) // transmission log bookkeeping
		e.Next(tDone)
	})
	tDone = a.AddTask("done", func(e task.Exec) {
		e.Compute(200)
		e.Done()
	})

	wantScores, wantClass := WeatherGolden()
	a.CheckOutput = func(read func(v *task.NVVar, i int) uint16) bool {
		for k := 0; k < WeatherClasses; k++ {
			if read(scores, k) != wantScores[k] {
				return false
			}
		}
		return read(class, 0) == wantClass
	}
	return finalize(a, p)
}
