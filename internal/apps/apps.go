// Package apps contains the benchmark applications of the paper's
// evaluation (§5, Table 3), written once against the task blueprint API
// and runnable unchanged under Alpaca, InK and EaseIO:
//
//   - DMA    — uni-task, Single semantics (NVM→NVM block copy)      Fig 7a
//   - Temp   — uni-task, Timely semantics (temperature sensing)     Fig 7b
//   - LEA    — uni-task, Always semantics (vector accelerator)      Fig 7c
//   - FIR    — multi-task filter with WAR-dependent DMAs            Fig 10/12
//   - Weather— 11-task DNN weather classifier                       Fig 9/10, Table 5
//
// plus a small "Branch" application reproducing the unsafe-execution
// scenario of Figure 2c.
//
// Applications keep I/O functions free of direct non-volatile writes
// (values flow through _call_IO return values, buffers through DMA), the
// same discipline the paper's C benchmarks follow.
package apps

import (
	"fmt"

	"easeio/internal/frontend"
	"easeio/internal/periph"
	"easeio/internal/task"
)

// Bench couples an analyzed application blueprint with the peripheral set
// its I/O sites use.
type Bench struct {
	App    *task.App
	Periph *periph.Set
}

// finalize runs the compiler front-end and wraps errors with app context.
func finalize(a *task.App, p *periph.Set) (*Bench, error) {
	if err := frontend.Analyze(a); err != nil {
		return nil, fmt.Errorf("apps: analyze %q: %w", a.Name, err)
	}
	return &Bench{App: a, Periph: p}, nil
}

// Pattern fills n words with a deterministic int16 test signal: a
// mid-scale triangle wave with a position-hashed ripple. The same pattern
// seeds the DMA, FIR and Weather inputs, so golden outputs are stable
// across runs and runtimes.
func Pattern(n int, seed uint64) []uint16 {
	out := make([]uint16, n)
	for i := 0; i < n; i++ {
		tri := i % 64
		if tri > 32 {
			tri = 64 - tri
		}
		base := int32(tri-16) * 100
		h := hash(uint64(i) ^ seed)
		base += int32(h%401) - 200
		out[i] = uint16(int16(base))
	}
	return out
}

// Coefficients returns taps Q15 low-pass-ish FIR coefficients summing to
// roughly unity gain.
func Coefficients(taps int) []uint16 {
	out := make([]uint16, taps)
	total := int32(32767)
	for i := 0; i < taps; i++ {
		// Symmetric triangular window.
		d := i
		if d > taps-1-i {
			d = taps - 1 - i
		}
		w := int32(1 + d)
		out[i] = uint16(int16(w))
	}
	// Scale so Σcoef ≈ 1.0 in Q15 (unity passband gain: cascading the
	// filter neither saturates nor decays the signal to zero).
	var sum int32
	for _, c := range out {
		sum += int32(int16(c))
	}
	scale := total / sum
	if scale < 1 {
		scale = 1
	}
	for i := range out {
		out[i] = uint16(int16(int32(int16(out[i])) * scale))
	}
	return out
}

// Words converts an int16 slice to the raw uint16 representation.
func Words(in []int16) []uint16 {
	out := make([]uint16, len(in))
	for i, v := range in {
		out[i] = uint16(v)
	}
	return out
}

// Samples converts raw words to int16 samples.
func Samples(in []uint16) []int16 {
	out := make([]int16, len(in))
	for i, v := range in {
		out[i] = int16(v)
	}
	return out
}

func hash(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
