// The freshness-oracle demonstration app: a sensed value with a declared
// staleness bound tighter than its Timely re-execution window.
//
// The window tells the *runtime* when a stored reading may be reused
// after a reboot; the bound tells the *checker* how old the reading may
// be when the task consuming it commits. With the bound inside the
// window, EaseIO keeps the reading perfectly consistent across failures
// (the memory and output oracles pass: the stored value and its derived
// word always agree) while serving it stale — a failure in the
// processing tail reboots well inside the 10 ms window, the sample is
// reused, and by the time the re-executed task commits the sample is
// older than the 8 ms the application declared it can tolerate. Only the
// freshness oracle's Timely(Δt) divergence class sees that.

package apps

import (
	"time"

	"easeio/internal/periph"
	"easeio/internal/task"
)

// SensorConfig sizes the freshness-oracle demonstration app.
type SensorConfig struct {
	// Window is the Timely re-execution window: the runtime reuses a
	// stored reading after a reboot while less than this has elapsed
	// since the sensor was physically read.
	Window time.Duration
	// Fresh is the application's declared staleness bound: a task must
	// not commit a reading older than this. It must sit inside Window to
	// exhibit the consistent-but-stale gap.
	Fresh time.Duration
	// InitCycles/ProcessCycles/FinishCycles shape the compute. The
	// processing tail after the sensor read is what ages the sample: a
	// failure there forces a full task re-execution on top of the off
	// period, pushing the commit-time age past Fresh.
	InitCycles, ProcessCycles, FinishCycles int64
}

// DefaultSensorConfig pairs the temperature benchmark's 10 ms window
// with an 8 ms staleness bound. Under continuous power the reading is
// ~6.5 ms old at commit (inside the bound); one power failure late in
// the processing tail adds the off period plus a full re-execution,
// aging the reused sample past 8 ms while staying inside the 10 ms
// window that lets EaseIO skip re-sensing.
func DefaultSensorConfig() SensorConfig {
	return SensorConfig{
		Window:        10 * time.Millisecond,
		Fresh:         8 * time.Millisecond,
		InitCycles:    800,
		ProcessCycles: 6500,
		FinishCycles:  800,
	}
}

// NewSensorApp builds the freshness-oracle demonstration app: the Timely
// uni-task shape with a staleness bound on the sensor site.
func NewSensorApp(cfg SensorConfig) (*Bench, error) {
	a := task.NewApp("sensor")
	p := periph.StandardSet(0x5e45)

	reading := a.NVInt("reading").Sensed()
	derived := a.NVInt("derived").Sensed()

	sense := a.TimelyIO("Sense", cfg.Window, true, func(e task.Exec, _ int) uint16 {
		return p.Temp.Sample(e)
	}).Fresh(cfg.Fresh)

	var tSense, tFin *task.Task
	a.AddTask("init", func(e task.Exec) {
		e.Compute(cfg.InitCycles)
		e.Next(tSense)
	})
	tSense = a.AddTask("sense", func(e task.Exec) {
		v := e.CallIO(sense)
		e.Compute(cfg.ProcessCycles)
		e.Store(reading, v)
		e.Store(derived, v*9/5+32)
		e.Next(tFin)
	})
	tFin = a.AddTask("finish", func(e task.Exec) {
		e.Compute(cfg.FinishCycles)
		e.Done()
	})

	// Consistency invariant only: staleness is deliberately invisible
	// here — the checker's freshness oracle is what catches it.
	a.CheckOutput = func(read func(v *task.NVVar, i int) uint16) bool {
		r := read(reading, 0)
		return read(derived, 0) == r*9/5+32
	}
	return finalize(a, p)
}
