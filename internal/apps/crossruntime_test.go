package apps

import (
	"testing"

	"easeio/internal/alpaca"
	"easeio/internal/core"
	"easeio/internal/ink"
	"easeio/internal/justdo"
	"easeio/internal/kernel"
	"easeio/internal/power"
)

// TestCrossRuntimeGoldenEquivalence: under continuous power every runtime
// is just bookkeeping — the application-visible non-volatile memory must
// be bit-identical across all four, for every benchmark.
func TestCrossRuntimeGoldenEquivalence(t *testing.T) {
	builders := map[string]func() (*Bench, error){
		"dma":     func() (*Bench, error) { return NewDMAApp(DefaultDMAConfig()) },
		"temp":    func() (*Bench, error) { return NewTempApp(DefaultTempConfig()) },
		"lea":     func() (*Bench, error) { return NewLEAApp(DefaultLEAConfig()) },
		"fir":     func() (*Bench, error) { return NewFIRApp(DefaultFIRConfig()) },
		"weather": func() (*Bench, error) { return NewWeatherApp(DefaultWeatherConfig()) },
	}
	runtimes := map[string]func() kernel.Hooks{
		"alpaca": func() kernel.Hooks { return alpaca.New() },
		"ink":    func() kernel.Hooks { return ink.New() },
		"easeio": func() kernel.Hooks { return core.New() },
		"justdo": func() kernel.Hooks { return justdo.New() },
	}
	for appName, build := range builders {
		t.Run(appName, func(t *testing.T) {
			var ref map[string][]uint16
			var refRT string
			for rtName, newRT := range runtimes {
				bench, err := build()
				if err != nil {
					t.Fatal(err)
				}
				dev := kernel.NewDevice(power.Continuous{}, 1)
				rt := newRT()
				if err := kernel.RunApp(dev, rt, bench.App); err != nil {
					t.Fatalf("%s: %v", rtName, err)
				}
				got := map[string][]uint16{}
				for _, v := range bench.App.Vars {
					words := make([]uint16, v.Words)
					for i := range words {
						words[i] = kernel.ReadVar(dev, rt, v, i)
					}
					got[v.Name] = words
				}
				if ref == nil {
					ref, refRT = got, rtName
					continue
				}
				for name, words := range ref {
					for i, w := range words {
						// Sensor-derived values may legitimately differ
						// between runtimes (read at different simulated
						// times); everything else must match. Benchmarks
						// are built so only these variables are
						// time-sensitive.
						if timeSensitive(appName, name) {
							continue
						}
						if got[name][i] != w {
							t.Fatalf("%s vs %s: %s[%d] = %d vs %d",
								rtName, refRT, name, i, got[name][i], w)
						}
					}
				}
			}
		})
	}
}

// timeSensitive lists variables holding raw sensor readings, whose values
// depend on when the (runtime-specific) schedule sampled them.
func timeSensitive(app, v string) bool {
	switch app + "/" + v {
	case "temp/reading", "temp/derived", "weather/temp", "weather/humd":
		return true
	}
	return false
}
