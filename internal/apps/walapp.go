// The WAL-recovery scenario: a model of the fleet coordinator's
// crash-consistent job journal (internal/fleet) as an intermittent
// application, so the journal's append/replay protocol can be
// model-checked by the failure-point checker the same way the paper's
// benchmarks are.
//
// The protocol under check mirrors the coordinator's WAL:
//
//   - a record commits atomically or not at all: its payload words, its
//     decoded type, and the commit-pointer advance become durable
//     together (in the fleet WAL the frame CRC plays this role — a torn
//     frame is truncated on replay, never half-decoded);
//   - append is at-most-once: a replayed append must reuse the recorded
//     payload, never re-observe the world (Single semantics on the
//     sample, the annotation EaseIO honors);
//   - recovery is a pure, idempotent fold over committed records — the
//     digest is derived from the log alone, never from state that could
//     disagree with it.
//
// The model check certifies the protocol under every failure point on
// runtimes whose task commits buffer writes (InK, EaseIO, JustDo) — and
// rediscovers exactly the corruption the frame CRC exists to prevent on
// a runtime that re-executes appends over directly-written slots
// (Alpaca): the replayed append can observe a different world, take the
// other record-type branch, and leave one slot flagged as both record
// types — a torn, double-decoded journal entry.

package apps

import (
	"easeio/internal/periph"
	"easeio/internal/task"
)

// WALConfig parameterizes the WAL-recovery scenario.
type WALConfig struct {
	// Records is how many journal appends the run commits.
	Records int
	// Threshold classifies each record by its sampled payload: below is
	// an "ok" record, at or above an "alert" record. Exactly one type per
	// slot is the log-consistency invariant.
	Threshold uint16
	// TailCycles is computation between a record's payload stores and its
	// commit — the window in which a power failure forces the append to
	// replay.
	TailCycles int64
	// Semantics is the annotation on the append's sample. Single models
	// the fleet WAL's at-most-once externalization (EaseIO skips the
	// replayed sample and restores the privatized value); Always re-runs
	// the sample on every replay.
	Semantics task.Semantic
}

// DefaultWALConfig commits four records with the threshold inside the
// band the sensor sweeps while the run is alive, so a replayed append can
// genuinely reclassify a record.
func DefaultWALConfig() WALConfig {
	return WALConfig{Records: 4, Threshold: 10, TailCycles: 6000, Semantics: task.Single}
}

// NewWALApp builds the WAL-recovery scenario.
func NewWALApp(cfg WALConfig) (*Bench, error) {
	a := task.NewApp("wal")
	p := periph.StandardSet(0x3a1)

	// The journal: payloads are sensor-derived (time-sensitive), the
	// commit pointer is not — head must reach Records on every safe
	// execution regardless of where failures land.
	head := a.NVInt("head")
	log := a.NVBuf("log", cfg.Records).Sensed()
	okRec := a.NVBuf("ok_rec", cfg.Records).Sensed()
	alertRec := a.NVBuf("alert_rec", cfg.Records).Sensed()
	digest := a.NVInt("digest").Sensed()

	appendSite := a.IO("Append", cfg.Semantics, true, func(e task.Exec, _ int) uint16 {
		return p.Temp.Sample(e)
	}).Loop(cfg.Records)

	var tAppend, tReplay, tFin *task.Task
	a.AddTask("init", func(e task.Exec) {
		e.Compute(600)
		e.Next(tAppend)
	})
	// One task per committed record: payload and type flag land in the
	// slot head points at, then head advances with the task commit.
	// Which type flag is written depends on the sampled payload, so a
	// replayed append with a fresh sample can take the other branch —
	// Touches widens the region sets to both flag arrays, as a
	// conservative static analysis would.
	tAppend = a.AddTask("append", func(e task.Exec) {
		h := int(e.Load(head))
		val := e.CallIOAt(appendSite, h)
		e.StoreAt(log, h, val)
		if val < cfg.Threshold {
			e.StoreAt(okRec, h, 1)
		} else {
			e.StoreAt(alertRec, h, 1)
		}
		e.Compute(cfg.TailCycles)
		e.Store(head, uint16(h+1))
		if h+1 < cfg.Records {
			e.Next(tAppend)
			return
		}
		e.Next(tReplay)
	}).Touches(okRec, alertRec)
	// Recovery: rebuild the digest as a pure fold over the committed
	// log, exactly how the fleet coordinator's replay rebuilds job state
	// from WAL records alone.
	tReplay = a.AddTask("replay", func(e task.Exec) {
		var d uint16
		for i := 0; i < cfg.Records; i++ {
			d = d*31 + e.LoadAt(log, i)
		}
		e.Store(digest, d)
		e.Compute(400)
		e.Next(tFin)
	})
	tFin = a.AddTask("finish", func(e task.Exec) {
		e.Compute(200)
		e.Done()
	})

	// Log consistency, independent of failure placement: every record
	// committed, each slot decodes as exactly one record type, the type
	// agrees with the payload, and the recovered digest is the fold of
	// the log.
	a.CheckOutput = func(read func(v *task.NVVar, i int) uint16) bool {
		if read(head, 0) != uint16(cfg.Records) {
			return false
		}
		var d uint16
		for i := 0; i < cfg.Records; i++ {
			val := read(log, i)
			ok, alert := read(okRec, i), read(alertRec, i)
			if ok+alert != 1 {
				return false
			}
			if (val < cfg.Threshold) != (ok == 1) {
				return false
			}
			d = d*31 + val
		}
		return read(digest, 0) == d
	}
	return finalize(a, p)
}
