package apps

import (
	"testing"

	"easeio/internal/core"
	"easeio/internal/frontend"
	"easeio/internal/kernel"
	"easeio/internal/lea"
	"easeio/internal/power"
	"easeio/internal/task"
)

func TestPatternDeterministicAndBounded(t *testing.T) {
	a := Pattern(256, 1)
	b := Pattern(256, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("pattern not deterministic")
		}
	}
	c := Pattern(256, 2)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical patterns")
	}
	for i, w := range a {
		v := int16(w)
		if v < -2000 || v > 2000 {
			t.Fatalf("sample %d = %d outside expected envelope", i, v)
		}
	}
}

func TestCoefficientsUnityGain(t *testing.T) {
	for _, taps := range []int{8, 16, 32} {
		coef := Coefficients(taps)
		var sum int32
		for _, c := range coef {
			sum += int32(int16(c))
		}
		// Σcoef ≈ 32767 (unity Q15 gain) within the integer-scaling slack.
		if sum < 32767/2 || sum > 32767 {
			t.Errorf("taps=%d: Σcoef = %d, want ≈ 32767", taps, sum)
		}
		// Symmetric window.
		for i := 0; i < taps/2; i++ {
			if coef[i] != coef[taps-1-i] {
				t.Errorf("taps=%d: coefficients not symmetric at %d", taps, i)
			}
		}
	}
}

func TestWordsSamplesRoundTrip(t *testing.T) {
	in := []int16{-32768, -1, 0, 1, 32767}
	got := Samples(Words(in))
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("round trip [%d] = %d", i, got[i])
		}
	}
}

func TestTable3Structure(t *testing.T) {
	// Table 3: the structural inventory of the benchmarks.
	cases := []struct {
		name      string
		build     func() (*Bench, error)
		tasks, io int
		dmas      int
	}{
		{"dma", func() (*Bench, error) { return NewDMAApp(DefaultDMAConfig()) }, 3, 0, 1},
		{"temp", func() (*Bench, error) { return NewTempApp(DefaultTempConfig()) }, 3, 1, 0},
		{"lea", func() (*Bench, error) { return NewLEAApp(DefaultLEAConfig()) }, 3, 1, 0},
		{"fir", func() (*Bench, error) { return NewFIRApp(DefaultFIRConfig()) }, 5, 2, 3},
		{"weather", func() (*Bench, error) { return NewWeatherApp(DefaultWeatherConfig()) }, 11, 6, 11},
	}
	for _, c := range cases {
		b, err := c.build()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := len(b.App.Tasks); got != c.tasks {
			t.Errorf("%s: %d tasks, want %d", c.name, got, c.tasks)
		}
		if got := len(b.App.Sites); got != c.io {
			t.Errorf("%s: %d I/O sites, want %d", c.name, got, c.io)
		}
		if got := len(b.App.DMAs); got != c.dmas {
			t.Errorf("%s: %d DMA sites, want %d", c.name, got, c.dmas)
		}
		for _, tk := range b.App.Tasks {
			if !tk.Meta.Analyzed {
				t.Errorf("%s: task %q not analyzed", c.name, tk.Name)
			}
		}
	}
}

func TestFIRGoldenMatchesReference(t *testing.T) {
	// The app's CheckOutput is built from FirRef; verify the underlying
	// cascade matches a direct computation for multiple frame counts.
	for _, frames := range []int{1, 3} {
		cfg := DefaultFIRConfig()
		cfg.Frames = frames
		b, err := NewFIRApp(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sig := Samples(Pattern(FIRIn, 0xF1E))
		coefs := Samples(Coefficients(FIRTaps))
		for f := 0; f < frames; f++ {
			out := lea.FirRef(sig, coefs)
			copy(sig[:FIROut], out)
		}
		// Feed the expected memory through CheckOutput.
		signal := b.App.Vars[0]
		stats := b.App.Vars[2]
		if signal.Name != "signal" || stats.Name != "stats" {
			t.Fatalf("variable layout changed: %s %s", signal.Name, stats.Name)
		}
		var acc uint16
		for i := 0; i < 48; i++ {
			acc += uint16(sig[i])
		}
		read := func(v *task.NVVar, i int) uint16 {
			switch v {
			case signal:
				return uint16(sig[i])
			case stats:
				if i == 0 {
					return acc
				}
				return acc >> 1
			}
			return 0
		}
		if !b.App.CheckOutput(read) {
			t.Errorf("frames=%d: golden memory rejected by CheckOutput", frames)
		}
		// A corrupted word must be rejected.
		bad := func(v *task.NVVar, i int) uint16 {
			if v == signal && i == 10 {
				return read(v, i) + 1
			}
			return read(v, i)
		}
		if b.App.CheckOutput(bad) {
			t.Errorf("frames=%d: corrupted memory accepted", frames)
		}
	}
}

func TestWeatherGoldenStable(t *testing.T) {
	s1, c1 := WeatherGolden()
	s2, c2 := WeatherGolden()
	if s1 != s2 || c1 != c2 {
		t.Error("golden DNN result not deterministic")
	}
	if int(c1) >= WeatherClasses {
		t.Errorf("class = %d", c1)
	}
	// Scores must not be all equal (a degenerate DNN would hide bugs).
	allEqual := true
	for k := 1; k < WeatherClasses; k++ {
		if s1[k] != s1[0] {
			allEqual = false
		}
	}
	if allEqual {
		t.Error("all class scores identical; DNN degenerate")
	}
}

func TestWeatherBufferModes(t *testing.T) {
	for _, mode := range []BufferMode{SingleBuffer, DoubleBuffer} {
		cfg := DefaultWeatherConfig()
		cfg.Buffers = mode
		b, err := NewWeatherApp(cfg)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(b.App.Tasks) != 11 {
			t.Errorf("%v: %d tasks", mode, len(b.App.Tasks))
		}
	}
	if SingleBuffer.String() != "single" || DoubleBuffer.String() != "double" {
		t.Error("buffer mode names")
	}
}

func TestBranchAppConfigs(t *testing.T) {
	for _, sem := range []task.Semantic{task.Single, task.Always} {
		cfg := DefaultBranchConfig()
		cfg.Semantics = sem
		b, err := NewBranchApp(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if b.App.Sites[0].Sem != sem {
			t.Errorf("semantics not applied: %v", b.App.Sites[0].Sem)
		}
	}
}

// TestBenchmarksPassLint runs the front-end's static checks over every
// benchmark application: no error-severity findings allowed.
func TestBenchmarksPassLint(t *testing.T) {
	builders := map[string]func() (*Bench, error){
		"dma":            func() (*Bench, error) { return NewDMAApp(DefaultDMAConfig()) },
		"temp":           func() (*Bench, error) { return NewTempApp(DefaultTempConfig()) },
		"lea":            func() (*Bench, error) { return NewLEAApp(DefaultLEAConfig()) },
		"fir":            func() (*Bench, error) { return NewFIRApp(DefaultFIRConfig()) },
		"fir/op":         func() (*Bench, error) { c := DefaultFIRConfig(); c.ExcludeCoef = true; return NewFIRApp(c) },
		"weather":        func() (*Bench, error) { return NewWeatherApp(DefaultWeatherConfig()) },
		"weather/op":     func() (*Bench, error) { c := DefaultWeatherConfig(); c.ExcludeWeights = true; return NewWeatherApp(c) },
		"weather/double": func() (*Bench, error) { c := DefaultWeatherConfig(); c.Buffers = DoubleBuffer; return NewWeatherApp(c) },
		"branch":         func() (*Bench, error) { return NewBranchApp(DefaultBranchConfig()) },
	}
	for name, build := range builders {
		b, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		findings, err := frontend.Lint(b.App, frontend.LintConfig{PrivBufWords: 4 * 1024 / 2})
		if err != nil {
			t.Fatalf("%s: lint: %v", name, err)
		}
		for _, f := range findings {
			if f.Severity == frontend.Error {
				t.Errorf("%s: %v", name, f)
			} else {
				t.Logf("%s: %v", name, f)
			}
		}
	}
}

// TestFIRVariantsCorrectUnderEaseIO: the Exclude, delay-loop-radio and
// multi-frame configurations must all stay correct under failures.
func TestFIRVariantsCorrectUnderEaseIO(t *testing.T) {
	variants := map[string]FIRConfig{
		"exclude":    func() FIRConfig { c := DefaultFIRConfig(); c.ExcludeCoef = true; return c }(),
		"delayradio": func() FIRConfig { c := DefaultFIRConfig(); c.DelayLoopRadio = true; return c }(),
		"frames3": func() FIRConfig {
			c := DefaultFIRConfig()
			c.Frames = 3
			c.DelayLoopRadio = true
			return c
		}(),
	}
	for name, cfg := range variants {
		for seed := int64(1); seed <= 60; seed++ {
			b, err := NewFIRApp(cfg)
			if err != nil {
				t.Fatal(err)
			}
			dev := kernel.NewDevice(power.NewTimer(power.DefaultTimerConfig()), seed)
			if err := kernel.RunApp(dev, core.New(), b.App); err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			if !dev.Run.Correct {
				t.Fatalf("%s seed %d: incorrect output", name, seed)
			}
		}
	}
}

// TestWeatherExcludeVariantCorrect: the EaseIO/Op. weather configuration
// (Exclude on constant weights) must stay correct — Exclude on mutable
// data would be unsafe, and lint enforces that these sources are Const.
func TestWeatherExcludeVariantCorrect(t *testing.T) {
	cfg := DefaultWeatherConfig()
	cfg.ExcludeWeights = true
	for seed := int64(1); seed <= 60; seed++ {
		b, err := NewWeatherApp(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dev := kernel.NewDevice(power.NewTimer(power.DefaultTimerConfig()), seed)
		if err := kernel.RunApp(dev, core.New(), b.App); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !dev.Run.Correct {
			t.Fatalf("seed %d: incorrect output", seed)
		}
	}
}
