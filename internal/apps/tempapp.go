// The uni-task temperature benchmark: Timely re-execution semantics
// (Fig 7b, Table 4 column "Timely (Temp.)").

package apps

import (
	"time"

	"easeio/internal/periph"
	"easeio/internal/task"
)

// TempConfig sizes the Timely-semantics benchmark.
type TempConfig struct {
	// Window is the freshness window of the temperature reading: after a
	// reboot the stored value is reused only if less time than this has
	// passed since the sensor was read.
	Window time.Duration
	// InitCycles/ProcessCycles/FinishCycles shape the compute.
	InitCycles, ProcessCycles, FinishCycles int64
}

// DefaultTempConfig uses the paper's 10 ms freshness window (§A.4.1).
// The processing tail after the sensor read sets up the Timely trade-off:
// a failure in the tail forces baselines to re-sense, while EaseIO
// re-senses only when the reboot gap exceeds the freshness window.
func DefaultTempConfig() TempConfig {
	return TempConfig{
		Window:        10 * time.Millisecond,
		InitCycles:    800,
		ProcessCycles: 6500,
		FinishCycles:  800,
	}
}

// NewTempApp builds the Timely uni-task benchmark: 3 tasks, one I/O
// operation (the temperature read), as in Table 3.
func NewTempApp(cfg TempConfig) (*Bench, error) {
	a := task.NewApp("temp")
	p := periph.StandardSet(0x7e17)

	reading := a.NVInt("reading").Sensed()
	derived := a.NVInt("derived").Sensed()

	tempSite := a.TimelyIO("Temp", cfg.Window, true, func(e task.Exec, _ int) uint16 {
		return p.Temp.Sample(e)
	})

	// Declarative op bodies: the same Exec calls the closures used to
	// make, expressed as data so the frozen program compiles them to
	// execution kernels. The Fahrenheit conversion becomes a small ALU
	// chain on the volatile register file (uint16 wraparound, exactly like
	// the Go expression it replaces).
	tInit := a.AddTask("init", nil)
	tSense := a.AddTask("sense", nil)
	tFin := a.AddTask("finish", nil)
	a.SetOps(tInit,
		task.ComputeOp(cfg.InitCycles),
		task.NextOp(tSense))
	a.SetOps(tSense,
		task.CallIOOp(0, tempSite),
		task.ComputeOp(cfg.ProcessCycles),
		task.StoreOp(reading, 0, 0),
		task.MovRegOp(1, 0), // derived = reading*9/5+32
		task.MulImmOp(1, 9),
		task.DivImmOp(1, 5),
		task.AddImmOp(1, 32),
		task.StoreOp(derived, 0, 1),
		task.NextOp(tFin))
	a.SetOps(tFin,
		task.ComputeOp(cfg.FinishCycles),
		task.DoneOp())

	// Correctness: derived must be consistent with reading — re-executed
	// sensing with torn stores would break the invariant.
	a.CheckOutput = func(read func(v *task.NVVar, i int) uint16) bool {
		r := read(reading, 0)
		return read(derived, 0) == r*9/5+32
	}
	// CheckFast decides exactly what CheckOutput decides (apps_test pins
	// the two against each other).
	a.CheckFast = func(m task.CheckMem) bool {
		r := m.Read(reading, 0)
		return m.Read(derived, 0) == r*9/5+32
	}
	return finalize(a, p)
}
