// The unsafe-program-execution scenario of Figure 2c: a task whose
// control flow depends on a sensor reading, writing a different
// non-volatile flag on each branch. Re-executing the read after a power
// failure can take the other branch and leave both flags set; EaseIO's
// value privatization pins re-executions to the original branch.

package apps

import (
	"easeio/internal/periph"
	"easeio/internal/task"
)

// BranchConfig parameterizes the scenario.
type BranchConfig struct {
	// Threshold splits the two branches (stdy below, alarm at or above).
	Threshold uint16
	// TailCycles is computation after the branch — the window in which a
	// power failure forces the branch to replay.
	TailCycles int64
	// Semantics is the annotation on the sensor read. Single reproduces
	// the fix; Always reproduces the bug even under EaseIO.
	Semantics task.Semantic
}

// DefaultBranchConfig places the threshold inside the band the sensor
// sweeps during the first tens of milliseconds, so re-executed reads can
// genuinely take the other branch.
func DefaultBranchConfig() BranchConfig {
	return BranchConfig{Threshold: 8, TailCycles: 9000, Semantics: task.Single}
}

// NewBranchApp builds the Figure 2c scenario.
func NewBranchApp(cfg BranchConfig) (*Bench, error) {
	a := task.NewApp("branch")
	p := periph.StandardSet(0xb4a)

	// The flags are sensor-dependent: a failure placed before the read
	// shifts the sample time, so which branch runs can legitimately differ
	// from the golden run. CheckOutput (exactly one flag set) is the
	// placement-independent invariant.
	stdy := a.NVInt("stdy").Sensed()
	alarm := a.NVInt("alarm").Sensed()

	var tempSite *task.IOSite
	read := func(e task.Exec, _ int) uint16 { return p.Temp.Sample(e) }
	if cfg.Semantics == task.Always {
		tempSite = a.IO("Temp", task.Always, true, read)
	} else {
		tempSite = a.IO("Temp", task.Single, true, read)
	}

	var tFin *task.Task
	// The analysis run observes only one branch; Touches widens the
	// region sets to both flags, as a conservative static analysis would.
	a.AddTask("sense", func(e task.Exec) {
		temp := e.CallIO(tempSite)
		if temp < cfg.Threshold {
			e.Store(stdy, 1)
		} else {
			e.Store(alarm, 1)
		}
		e.Compute(cfg.TailCycles)
		e.Next(tFin)
	}).Touches(stdy, alarm)
	tFin = a.AddTask("finish", func(e task.Exec) {
		e.Compute(200)
		e.Done()
	})

	// Exactly one of the two flags must be set — both set is the
	// unsafe-execution bug.
	a.CheckOutput = func(read func(v *task.NVVar, i int) uint16) bool {
		return read(stdy, 0)+read(alarm, 0) == 1
	}
	return finalize(a, p)
}
