// The uni-task DMA benchmark: Single re-execution semantics (Fig 7a,
// Table 4 column "Single (DMA)").

package apps

import (
	"easeio/internal/mem"
	"easeio/internal/periph"
	"easeio/internal/task"
)

// DMAConfig sizes the Single-semantics DMA benchmark.
type DMAConfig struct {
	// Words is the size of the NVM→NVM block copy.
	Words int
	// InitCycles, PreCycles and PostCycles shape the compute around the
	// copy; PostCycles in particular sets how much of the task remains
	// exposed to power failures after the copy completes.
	InitCycles, PreCycles, PostCycles int64
	// FinishReads is how many destination words the final task checksums.
	FinishReads int
}

// DefaultDMAConfig produces a ~17 ms DMA task under continuous power —
// long relative to the [5 ms, 20 ms] emulated energy cycles, so baseline
// runtimes re-execute the copy several times per run (the Table 4 failure
// counts), while EaseIO's re-attempts shrink to the short compute tail
// once the copy's Single semantics commit.
func DefaultDMAConfig() DMAConfig {
	return DMAConfig{
		Words:       5000,
		InitCycles:  800,
		PreCycles:   2000,
		PostCycles:  4000,
		FinishReads: 96,
	}
}

// NewDMAApp builds the Single-semantics uni-task benchmark: 3 tasks, one
// I/O operation (the DMA copy), as in Table 3.
func NewDMAApp(cfg DMAConfig) (*Bench, error) {
	a := task.NewApp("dma")
	p := periph.StandardSet(0xd3a)

	pattern := Pattern(cfg.Words, 0xD17A)
	src := a.NVConst("src", pattern)
	dst := a.NVBuf("dst", cfg.Words)
	sum := a.NVInt("checksum")

	copyOp := a.DMA("copy")

	// Declarative op bodies: the same Exec calls the closures used to
	// make, but expressed as data so the frozen program compiles them to
	// execution kernels (and the finish checksum to one fused bulk load).
	tInit := a.AddTask("init", nil)
	tDMA := a.AddTask("dma", nil)
	tFin := a.AddTask("finish", nil)
	a.SetOps(tInit,
		task.ComputeOp(cfg.InitCycles),
		task.NextOp(tDMA))
	a.SetOps(tDMA,
		task.ComputeOp(cfg.PreCycles),
		task.DMACopyOp(copyOp, task.VarLoc(src, 0), task.VarLoc(dst, 0), cfg.Words),
		task.ComputeOp(cfg.PostCycles),
		task.NextOp(tFin))
	a.SetOps(tFin,
		task.LoadSumOp(0, dst, 0, cfg.FinishReads),
		task.StoreOp(sum, 0, 0),
		task.DoneOp())

	var want uint16
	for i := 0; i < cfg.FinishReads; i++ {
		want += pattern[i]
	}
	a.CheckOutput = func(read func(v *task.NVVar, i int) uint16) bool {
		for i := 0; i < cfg.Words; i++ {
			if read(dst, i) != pattern[i] {
				return false
			}
		}
		return read(sum, 0) == want
	}
	// CheckFast decides exactly what CheckOutput decides, through the bulk
	// compare surface (apps_test pins the two against each other).
	a.CheckFast = func(m task.CheckMem) bool {
		return m.Equal(dst, 0, pattern) && m.Read(sum, 0) == want
	}
	return finalize(a, p)
}

// LEARawBank is re-exported for tests that build raw locations.
const LEARawBank = uint8(mem.LEARAM)
