// The uni-task DMA benchmark: Single re-execution semantics (Fig 7a,
// Table 4 column "Single (DMA)").

package apps

import (
	"easeio/internal/mem"
	"easeio/internal/periph"
	"easeio/internal/task"
)

// DMAConfig sizes the Single-semantics DMA benchmark.
type DMAConfig struct {
	// Words is the size of the NVM→NVM block copy.
	Words int
	// InitCycles, PreCycles and PostCycles shape the compute around the
	// copy; PostCycles in particular sets how much of the task remains
	// exposed to power failures after the copy completes.
	InitCycles, PreCycles, PostCycles int64
	// FinishReads is how many destination words the final task checksums.
	FinishReads int
}

// DefaultDMAConfig produces a ~17 ms DMA task under continuous power —
// long relative to the [5 ms, 20 ms] emulated energy cycles, so baseline
// runtimes re-execute the copy several times per run (the Table 4 failure
// counts), while EaseIO's re-attempts shrink to the short compute tail
// once the copy's Single semantics commit.
func DefaultDMAConfig() DMAConfig {
	return DMAConfig{
		Words:       5000,
		InitCycles:  800,
		PreCycles:   2000,
		PostCycles:  4000,
		FinishReads: 96,
	}
}

// NewDMAApp builds the Single-semantics uni-task benchmark: 3 tasks, one
// I/O operation (the DMA copy), as in Table 3.
func NewDMAApp(cfg DMAConfig) (*Bench, error) {
	a := task.NewApp("dma")
	p := periph.StandardSet(0xd3a)

	pattern := Pattern(cfg.Words, 0xD17A)
	src := a.NVConst("src", pattern)
	dst := a.NVBuf("dst", cfg.Words)
	sum := a.NVInt("checksum")

	copyOp := a.DMA("copy")

	var tDMA, tFin *task.Task
	tInit := a.AddTask("init", func(e task.Exec) {
		e.Compute(cfg.InitCycles)
		e.Next(tDMA)
	})
	_ = tInit
	tDMA = a.AddTask("dma", func(e task.Exec) {
		e.Compute(cfg.PreCycles)
		e.DMACopy(copyOp, task.VarLoc(src, 0), task.VarLoc(dst, 0), cfg.Words)
		e.Compute(cfg.PostCycles)
		e.Next(tFin)
	})
	tFin = a.AddTask("finish", func(e task.Exec) {
		var s uint16
		for i := 0; i < cfg.FinishReads; i++ {
			s += e.LoadAt(dst, i)
		}
		e.Store(sum, s)
		e.Done()
	})

	var want uint16
	for i := 0; i < cfg.FinishReads; i++ {
		want += pattern[i]
	}
	a.CheckOutput = func(read func(v *task.NVVar, i int) uint16) bool {
		for i := 0; i < cfg.Words; i++ {
			if read(dst, i) != pattern[i] {
				return false
			}
		}
		return read(sum, 0) == want
	}
	return finalize(a, p)
}

// LEARawBank is re-exported for tests that build raw locations.
const LEARawBank = uint8(mem.LEARAM)
