// The FIR filter benchmark (§5.4.1): three DMA transfers and four LEA
// calls with a WAR dependence through non-volatile memory — the input and
// the output share the same buffer, so re-executed fetch DMAs after the
// write-back DMA read corrupted data (Fig 10, Fig 11, Fig 12).

package apps

import (
	"easeio/internal/lea"
	"easeio/internal/mem"
	"easeio/internal/periph"
	"easeio/internal/task"
)

// FIR dimensions: 256 output samples from a 32-tap filter over a
// 287-sample input, processed as four 64-output LEA blocks — "the input
// signal is divided into four samples, and four LEA calls complete the
// filtering operation in a loop".
const (
	FIRTaps   = 32
	FIROut    = 256
	FIRIn     = FIROut + FIRTaps - 1
	FIRBlocks = 4
	firBlkOut = FIROut / FIRBlocks

	// LEA-RAM layout (word offsets).
	firLEAIn   = 0
	firLEACoef = 320
	firLEAOut  = 360
)

// FIRConfig parameterizes the FIR benchmark.
type FIRConfig struct {
	// ExcludeCoef applies the paper's Exclude annotation to the
	// coefficient-fetch DMA (constant data), producing the "EaseIO/Op"
	// configuration of Figures 10, 11 and 13. It is ignored by Alpaca
	// and InK, which have no privatization to exclude.
	ExcludeCoef bool
	// DelayLoopRadio replaces the radio transmission with a CPU delay
	// loop of equal duration, the simulation technique the paper itself
	// uses for transmit operations (§5.4.1). The Figure 13 harvested
	// sweep uses it so that the workload's power draw stays within a
	// WISP-scale capacitor's per-charge budget.
	DelayLoopRadio bool
	// Frames streams the filter over the buffer this many times (the
	// output of one pass is the input of the next — an in-place cascade).
	// 0 or 1 means a single pass. The Figure 13 sweep uses several frames
	// so the workload spans many capacitor charge cycles.
	Frames int
	// StatsCycles is post-filter computation inside the filter task; it
	// widens the window in which a power failure after the write-back DMA
	// corrupts baseline runtimes.
	StatsCycles int64
	// ReportCycles is computation after the radio send (same task): the
	// window in which baselines re-transmit but EaseIO's Single flag
	// skips.
	ReportCycles int64
	// InitCycles/PrepCycles/FinishCycles shape the remaining tasks.
	InitCycles, PrepCycles, FinishCycles int64
}

// DefaultFIRConfig mirrors the evaluation setup.
func DefaultFIRConfig() FIRConfig {
	return FIRConfig{
		StatsCycles:  1600,
		ReportCycles: 5000,
		InitCycles:   500,
		PrepCycles:   900,
		FinishCycles: 300,
	}
}

// NewFIRApp builds the FIR benchmark: 5 tasks, 2 I/O functions (LEA
// filter, radio send) plus 3 DMA sites, as in Table 3.
func NewFIRApp(cfg FIRConfig) (*Bench, error) {
	a := task.NewApp("fir")
	p := periph.StandardSet(0xf17)

	input := Pattern(FIRIn, 0xF1E)
	coefs := Coefficients(FIRTaps)

	frames := cfg.Frames
	if frames < 1 {
		frames = 1
	}

	// Input and output share this buffer (the WAR hazard).
	signal := a.NVBuf("signal", FIRIn).WithInit(input)
	coef := a.NVConst("coef", coefs)
	stats := a.NVBuf("stats", 2)
	frameCtr := a.NVInt("frame")

	leaSite := a.IO("FIR_LEA", task.Always, false, func(e task.Exec, idx int) uint16 {
		e.LEAFir(firLEAIn+idx*firBlkOut, firLEACoef, firLEAOut+idx*firBlkOut,
			firBlkOut+FIRTaps-1, FIRTaps)
		return 0
	}).Loop(FIRBlocks)
	sendSite := a.IO("Send", task.Single, false, func(e task.Exec, _ int) uint16 {
		if cfg.DelayLoopRadio {
			e.Compute(2500) // simulated transmitter (delay loop, §5.4.1)
		} else {
			p.Radio.Send(e, 2)
		}
		return 0
	})

	dIn := a.DMA("fetch_in")
	dCoef := a.DMA("fetch_coef")
	if cfg.ExcludeCoef {
		dCoef.Excluded()
	}
	dOut := a.DMA("writeback")

	var tPrep, tFIR, tReport, tFin *task.Task
	a.AddTask("init", func(e task.Exec) {
		e.Compute(cfg.InitCycles)
		e.Next(tPrep)
	})
	tPrep = a.AddTask("prep", func(e task.Exec) {
		e.Compute(cfg.PrepCycles) // windowing / gain setup
		e.Next(tFIR)
	})
	// One atomic task fetches, filters and writes back: LEA-RAM is
	// volatile, so splitting these across tasks could never survive a
	// power failure (the Samoyed/Ocelot "atomic region" structure).
	tFIR = a.AddTask("filter", func(e task.Exec) {
		e.DMACopy(dIn, task.VarLoc(signal, 0), task.RawLoc(uint8(mem.LEARAM), firLEAIn), FIRIn)
		e.DMACopy(dCoef, task.VarLoc(coef, 0), task.RawLoc(uint8(mem.LEARAM), firLEACoef), FIRTaps)
		for i := 0; i < FIRBlocks; i++ {
			e.CallIOAt(leaSite, i)
		}
		e.DMACopy(dOut, task.RawLoc(uint8(mem.LEARAM), firLEAOut), task.VarLoc(signal, 0), FIROut)
		// Post-processing over the freshly written output.
		var acc uint16
		for i := 0; i < 48; i++ {
			acc += e.LoadAt(signal, i)
		}
		e.Store(stats, acc)
		e.StoreAt(stats, 1, acc>>1)
		e.Compute(cfg.StatsCycles)
		f := e.Load(frameCtr) + 1
		e.Store(frameCtr, f)
		if int(f) < frames {
			e.Next(tFIR) // stream the next frame through the same task
			return
		}
		e.Next(tReport)
	})
	tReport = a.AddTask("report", func(e task.Exec) {
		e.CallIO(sendSite)
		e.Compute(cfg.ReportCycles)
		e.Next(tFin)
	})
	tFin = a.AddTask("finish", func(e task.Exec) {
		e.Compute(cfg.FinishCycles)
		e.Done()
	})

	// Golden result: the in-place cascade over all frames.
	sig := Samples(input)
	for f := 0; f < frames; f++ {
		out := lea.FirRef(sig, Samples(coefs))
		copy(sig[:FIROut], out)
	}
	want := sig[:FIROut]
	var wantAcc uint16
	for i := 0; i < 48; i++ {
		wantAcc += uint16(want[i])
	}
	a.CheckOutput = func(read func(v *task.NVVar, i int) uint16) bool {
		for i := 0; i < FIROut; i++ {
			if int16(read(signal, i)) != want[i] {
				return false
			}
		}
		return read(stats, 0) == wantAcc && read(stats, 1) == wantAcc>>1
	}
	return finalize(a, p)
}
