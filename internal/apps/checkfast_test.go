// CheckFast must decide exactly what CheckOutput decides — the engine
// substitutes the fast checker on compiled runs, so any divergence would
// silently change correctness statistics. The pin drives both through
// the same synthetic memory across planted-correct, corrupted and random
// contents.

package apps

import (
	"math/rand"
	"testing"

	"easeio/internal/task"
)

// fakeCheckMem is a map-backed task.CheckMem (and CheckOutput read
// source): every variable reads as its stored words, zero when unset.
type fakeCheckMem map[*task.NVVar][]uint16

func (m fakeCheckMem) words(v *task.NVVar) []uint16 {
	w, ok := m[v]
	if !ok {
		w = make([]uint16, v.Words)
		m[v] = w
	}
	return w
}

func (m fakeCheckMem) Read(v *task.NVVar, i int) uint16 { return m.words(v)[i] }

func (m fakeCheckMem) Equal(v *task.NVVar, off int, want []uint16) bool {
	w := m.words(v)
	for i, x := range want {
		if w[off+i] != x {
			return false
		}
	}
	return true
}

// agree fails the test when the two checkers disagree on m.
func agree(t *testing.T, a *task.App, m fakeCheckMem, label string) {
	t.Helper()
	fast := a.CheckFast(m)
	slow := a.CheckOutput(func(v *task.NVVar, i int) uint16 { return m.Read(v, i) })
	if fast != slow {
		t.Errorf("%s: CheckFast=%v but CheckOutput=%v", label, fast, slow)
	}
}

func varByName(t *testing.T, a *task.App, name string) *task.NVVar {
	t.Helper()
	for _, v := range a.Vars {
		if v.Name == name {
			return v
		}
	}
	t.Fatalf("app %s has no variable %q", a.Name, name)
	return nil
}

func TestDMACheckFastMatchesCheckOutput(t *testing.T) {
	cfg := DefaultDMAConfig()
	cfg.Words = 200
	bench, err := NewDMAApp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := bench.App
	if a.CheckFast == nil || a.CheckOutput == nil {
		t.Fatal("dma app must carry both checkers")
	}
	dst := varByName(t, a, "dst")
	sum := varByName(t, a, "checksum")
	pattern := Pattern(cfg.Words, 0xD17A)
	var want uint16
	for i := 0; i < cfg.FinishReads; i++ {
		want += pattern[i]
	}

	correct := func() fakeCheckMem {
		m := fakeCheckMem{}
		copy(m.words(dst), pattern)
		m.words(sum)[0] = want
		return m
	}
	agree(t, a, correct(), "fully correct")
	agree(t, a, fakeCheckMem{}, "all zero")

	// Corrupt single words, including positions past FinishReads: the
	// fast path must still cover the whole destination buffer.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		m := correct()
		i := rng.Intn(cfg.Words)
		m.words(dst)[i] ^= 1 + uint16(rng.Intn(0xFFFF))
		agree(t, a, m, "corrupted dst word")
	}
	m := correct()
	m.words(sum)[0]++
	agree(t, a, m, "corrupted checksum")
	for trial := 0; trial < 100; trial++ {
		m := fakeCheckMem{}
		for i := range m.words(dst) {
			m.words(dst)[i] = uint16(rng.Intn(1 << 16))
		}
		m.words(sum)[0] = uint16(rng.Intn(1 << 16))
		agree(t, a, m, "random memory")
	}
}

func TestTempCheckFastMatchesCheckOutput(t *testing.T) {
	bench, err := NewTempApp(DefaultTempConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := bench.App
	if a.CheckFast == nil || a.CheckOutput == nil {
		t.Fatal("temp app must carry both checkers")
	}
	reading := varByName(t, a, "reading")
	derived := varByName(t, a, "derived")

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		m := fakeCheckMem{}
		r := uint16(rng.Intn(1 << 16))
		m.words(reading)[0] = r
		if trial%2 == 0 {
			m.words(derived)[0] = r*9/5 + 32 // consistent pair
		} else {
			m.words(derived)[0] = uint16(rng.Intn(1 << 16))
		}
		agree(t, a, m, "temp memory")
	}
}
