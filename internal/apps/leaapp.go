// The uni-task LEA benchmark: Always re-execution semantics (Fig 7c,
// Table 4 column "Always (LEA)"). The accelerator's output lives in
// volatile LEA-RAM, so its work genuinely must repeat after every power
// failure — the case where EaseIO can save nothing and only its small
// bookkeeping overhead shows.

package apps

import (
	"easeio/internal/periph"
	"easeio/internal/task"
)

// LEAConfig sizes the Always-semantics benchmark.
type LEAConfig struct {
	// Macs is the size of the vector operation (one multiply-accumulate
	// per cycle at 1 MHz, so 8000 MACs ≈ 8 ms).
	Macs int64
	// InitCycles/PostCycles/FinishCycles shape the surrounding compute.
	InitCycles, PostCycles, FinishCycles int64
}

// DefaultLEAConfig sizes the vector operation at 12.5 ms so that most
// emulated energy cycles interrupt it at least once, matching the Table 4
// power-failure counts for the LEA column.
func DefaultLEAConfig() LEAConfig {
	return LEAConfig{
		Macs:         12500,
		InitCycles:   600,
		PostCycles:   900,
		FinishCycles: 400,
	}
}

// NewLEAApp builds the Always uni-task benchmark: 3 tasks, one I/O
// operation (the LEA command), as in Table 3.
func NewLEAApp(cfg LEAConfig) (*Bench, error) {
	a := task.NewApp("lea")
	p := periph.StandardSet(0x1ea)

	leaSite := a.IO("LEA", task.Always, false, func(e task.Exec, _ int) uint16 {
		e.LEAMacs(cfg.Macs)
		return 0
	})

	var tLEA, tFin *task.Task
	a.AddTask("init", func(e task.Exec) {
		e.Compute(cfg.InitCycles)
		e.Next(tLEA)
	})
	tLEA = a.AddTask("lea", func(e task.Exec) {
		e.CallIO(leaSite)
		e.Compute(cfg.PostCycles)
		e.Next(tFin)
	})
	tFin = a.AddTask("finish", func(e task.Exec) {
		e.Compute(cfg.FinishCycles)
		e.Done()
	})
	return finalize(a, p)
}
