package energy

import (
	"testing"
	"time"

	"easeio/internal/units"
)

func TestDefaultCapacitorThresholds(t *testing.T) {
	c := DefaultCapacitor()
	if c.C != units.Millifarad {
		t.Errorf("capacitance = %v", c.C)
	}
	if d := c.Voltage() - c.Vmax; d < -100 || d > 100 { // ≤ 100 µV rounding
		t.Errorf("fresh capacitor at %v, want %v", c.Voltage(), c.Vmax)
	}
	if c.Budget() <= 0 {
		t.Error("budget must be positive")
	}
	// Budget = E(Vmax) − E(Voff) ≈ 3.64 mJ for 1 mF 3.3→1.9 V.
	want := units.EnergyFromJoules(0.5 * 1e-3 * (3.3*3.3 - 1.9*1.9))
	if diff := c.Budget() - want; diff < -100 || diff > 100 {
		t.Errorf("budget = %v, want ≈ %v", c.Budget(), want)
	}
}

func TestCapacitorDrainBrownout(t *testing.T) {
	c := DefaultCapacitor()
	if c.Drain(units.Microjoule) {
		t.Error("1µJ from a full 1mF capacitor must not brown out")
	}
	// Drain everything: must brown out and floor at zero.
	if !c.Drain(10 * units.Millijoule) {
		t.Error("full drain must brown out")
	}
	if c.Stored() != 0 {
		t.Errorf("stored floor = %v", c.Stored())
	}
}

func TestCapacitorChargeSaturates(t *testing.T) {
	c := DefaultCapacitor()
	c.SetVoltage(c.Von)
	c.Charge(1000 * units.Millijoule)
	if c.Stored() != c.EnergyAt(c.Vmax) {
		t.Errorf("overcharge: stored %v > max %v", c.Stored(), c.EnergyAt(c.Vmax))
	}
}

func TestCapacitorSetVoltageRoundTrip(t *testing.T) {
	c := DefaultCapacitor()
	c.SetVoltage(units.VoltageFromVolts(2.5))
	got := c.Voltage().Volts()
	if got < 2.499 || got > 2.501 {
		t.Errorf("voltage round trip = %v", got)
	}
}

func TestConstantHarvester(t *testing.T) {
	h := Constant{P: 5 * units.Milliwatt}
	if h.PowerAt(0) != 5*units.Milliwatt || h.PowerAt(time.Hour) != 5*units.Milliwatt {
		t.Error("constant harvester must be constant")
	}
	if h.Name() == "" {
		t.Error("empty name")
	}
}

func TestRFPathLoss(t *testing.T) {
	ref := DefaultRF(52)
	if got := ref.PowerAt(0); got != ref.RefPower {
		t.Errorf("power at reference distance = %v, want %v", got, ref.RefPower)
	}
	// Monotonically decreasing with distance.
	prev := units.Power(1 << 62)
	for _, d := range []float64{52, 55, 58, 61, 64} {
		p := DefaultRF(d).PowerAt(0)
		if p >= prev {
			t.Errorf("power at %.0f in = %v, not below %v", d, p, prev)
		}
		prev = p
	}
	// Exponent 2 default when zero.
	h := RF{DistanceInches: 104, RefPower: units.Milliwatt, RefDistanceInches: 52}
	if got := h.PowerAt(0); got != units.Milliwatt/4 {
		t.Errorf("Friis at 2× distance = %v, want ¼ power", got)
	}
	// Zero distance means reference power.
	h.DistanceInches = 0
	if h.PowerAt(0) != units.Milliwatt {
		t.Error("zero distance should return reference power")
	}
}

func TestTraceHarvester(t *testing.T) {
	tr := Trace{
		Samples: []units.Power{1 * units.Milliwatt, 2 * units.Milliwatt},
		Step:    time.Millisecond,
		Label:   "bench",
	}
	if got := tr.PowerAt(0); got != 1*units.Milliwatt {
		t.Errorf("sample 0 = %v", got)
	}
	if got := tr.PowerAt(time.Millisecond); got != 2*units.Milliwatt {
		t.Errorf("sample 1 = %v", got)
	}
	if got := tr.PowerAt(2 * time.Millisecond); got != 1*units.Milliwatt {
		t.Errorf("trace must wrap: %v", got)
	}
	if tr.Name() != "bench" {
		t.Errorf("name = %q", tr.Name())
	}
	empty := Trace{}
	if empty.PowerAt(0) != 0 {
		t.Error("empty trace must deliver nothing")
	}
}

func TestChargeTime(t *testing.T) {
	h := Constant{P: 1 * units.Milliwatt}
	// 10 µJ at 1 mW (minus negligible leakage) ≈ 10 ms.
	d, ok := ChargeTime(h, 0, 10*units.Microjoule, 2*units.Microwatt, time.Second)
	if !ok {
		t.Fatal("charge should succeed")
	}
	if d < 9*time.Millisecond || d > 12*time.Millisecond {
		t.Errorf("charge time = %v, want ≈ 10ms", d)
	}
	// Harvester weaker than leakage: never charges.
	weak := Constant{P: 1 * units.Microwatt}
	_, ok = ChargeTime(weak, 0, units.Microjoule, 2*units.Microwatt, 50*time.Millisecond)
	if ok {
		t.Error("charging below leakage must fail")
	}
	// Zero energy needs zero time.
	if d, ok := ChargeTime(h, 0, 0, 0, time.Second); !ok || d != 0 {
		t.Errorf("zero energy: %v %v", d, ok)
	}
}

func TestSolarProfile(t *testing.T) {
	s := NewSolar(DefaultSolarConfig())
	day := DefaultSolarConfig().DayLength
	if s.PowerAt(0) != 0 {
		t.Error("midnight must harvest nothing")
	}
	if s.PowerAt(day/8) != 0 {
		t.Error("pre-dawn must harvest nothing")
	}
	noon := s.PowerAt(day / 2)
	if noon <= 0 {
		t.Error("noon must harvest")
	}
	if noon > DefaultSolarConfig().Peak {
		t.Errorf("noon %v above peak", noon)
	}
	// Envelope rises from dawn to noon (sampling away from cloud dips is
	// not possible, so compare averages over many samples).
	var morning, midday units.Power
	for i := 0; i < 50; i++ {
		morning += s.PowerAt(day/4 + time.Duration(i)*day/400)
		midday += s.PowerAt(3*day/8 + time.Duration(i)*day/400)
	}
	if midday <= morning {
		t.Errorf("midday avg %v not above morning avg %v", midday/50, morning/50)
	}
	// Deterministic per seed.
	if s.PowerAt(day/3) != NewSolar(DefaultSolarConfig()).PowerAt(day/3) {
		t.Error("solar trace not deterministic")
	}
	// Zero-value config falls back to defaults.
	if NewSolar(SolarConfig{}).PowerAt(day/2) <= 0 {
		t.Error("zero config should use defaults")
	}
}
