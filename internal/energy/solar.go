// Synthetic solar harvesting: a deterministic day/night irradiance curve
// with passing-cloud flicker, for trace-driven experiments. Batteryless
// solar nodes (§1: "ambient energy such as solar") see exactly this
// profile: a smooth diurnal envelope with deep, seconds-scale dips.

package energy

import (
	"time"

	"easeio/internal/units"
)

// SolarConfig parameterizes the synthetic trace.
type SolarConfig struct {
	// Peak is the harvested power at solar noon under clear sky.
	Peak units.Power
	// DayLength is one full day in simulated time (experiments compress
	// it — the device does not care whether a "day" is 24 h or 24 s).
	DayLength time.Duration
	// CloudDepth in [0, 1] scales how much a passing cloud cuts power.
	CloudDepth float64
	// CloudPeriod is the typical spacing of cloud events.
	CloudPeriod time.Duration
	// Seed decorrelates cloud patterns.
	Seed uint64
}

// DefaultSolarConfig returns a compressed day: 0.5 mW peak (just above
// the benchmark workloads' draw, so mornings, evenings and cloud dips all
// fall below it), 10 s day, clouds cutting up to 90 % of power every
// ~250 ms.
func DefaultSolarConfig() SolarConfig {
	return SolarConfig{
		Peak:        500 * units.Microwatt,
		DayLength:   10 * time.Second,
		CloudDepth:  0.9,
		CloudPeriod: 250 * time.Millisecond,
		Seed:        1,
	}
}

// Solar is the synthetic harvester.
type Solar struct {
	cfg SolarConfig
}

// NewSolar returns a solar harvester with the given configuration.
func NewSolar(cfg SolarConfig) Solar {
	if cfg.Peak == 0 {
		cfg = DefaultSolarConfig()
	}
	return Solar{cfg: cfg}
}

// Name implements Harvester.
func (s Solar) Name() string { return "solar" }

// PowerAt implements Harvester: a clipped triangular diurnal envelope
// times a hash-driven cloud factor.
func (s Solar) PowerAt(t time.Duration) units.Power {
	day := s.cfg.DayLength
	if day <= 0 {
		return 0
	}
	phase := t % day
	// Daylight spans the middle half of the day: [day/4, 3·day/4].
	dawn, dusk := day/4, 3*day/4
	if phase < dawn || phase > dusk {
		return 0
	}
	// Triangular envelope peaking at noon.
	noon := day / 2
	var frac float64
	if phase < noon {
		frac = float64(phase-dawn) / float64(noon-dawn)
	} else {
		frac = float64(dusk-phase) / float64(dusk-noon)
	}
	p := float64(s.cfg.Peak) * frac

	// Cloud flicker: a hash per cloud-period bucket decides cover in
	// [0, CloudDepth], linearly interpolated between buckets so dips are
	// band-limited rather than square.
	if s.cfg.CloudDepth > 0 && s.cfg.CloudPeriod > 0 {
		b := uint64(t / s.cfg.CloudPeriod)
		in := float64(t%s.cfg.CloudPeriod) / float64(s.cfg.CloudPeriod)
		c0 := cloudCover(b, s.cfg.Seed, s.cfg.CloudDepth)
		c1 := cloudCover(b+1, s.cfg.Seed, s.cfg.CloudDepth)
		cover := c0*(1-in) + c1*in
		p *= 1 - cover
	}
	return units.Power(p)
}

// cloudCover maps a time bucket to a cover fraction in [0, depth].
func cloudCover(bucket, seed uint64, depth float64) float64 {
	h := bucket ^ seed
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	// Skew toward clear sky: square the uniform draw.
	u := float64(h%1_000_000) / 1_000_000
	return depth * u * u
}
