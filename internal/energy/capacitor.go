// Package energy models the energy-storage and energy-harvesting side of a
// batteryless device: the capacitor that buffers harvested energy, and the
// harvesters (constant-power bench supplies, RF power transfer vs distance,
// recorded traces) that fill it.
//
// The EaseIO paper evaluates with a 1 mF capacitor charged by a Powercast
// P2110-EVB receiving from a TX91501 3 W transmitter at 915 MHz (§5.1,
// §5.5). The capacitor math here is the standard ½CV² store with on/off
// voltage thresholds; harvested RF power follows an inverse-square
// path-loss fit anchored to the distances in Figure 13.
package energy

import (
	"fmt"
	"math"
	"time"

	"easeio/internal/units"
)

// Capacitor is an energy buffer with turn-on and brown-out thresholds.
// The device runs while the voltage is above Voff; when a drain pulls the
// voltage to Voff or below, the device browns out and must recharge to Von
// before it can boot again.
type Capacitor struct {
	C    units.Capacitance
	Vmax units.Voltage // harvester regulation ceiling
	Von  units.Voltage // boot threshold
	Voff units.Voltage // brown-out threshold

	stored units.Energy // current stored energy
}

// DefaultCapacitor returns the evaluation capacitor of the paper: 1 mF,
// regulated at 3.3 V, booting at 2.8 V, browning out at 1.9 V.
func DefaultCapacitor() *Capacitor {
	c := &Capacitor{
		C:    1 * units.Millifarad,
		Vmax: units.VoltageFromVolts(3.3),
		Von:  units.VoltageFromVolts(2.8),
		Voff: units.VoltageFromVolts(1.9),
	}
	c.stored = c.EnergyAt(c.Vmax)
	return c
}

// EnergyAt returns the energy the capacitor stores at voltage v.
func (c *Capacitor) EnergyAt(v units.Voltage) units.Energy {
	return units.StoredEnergy(c.C, v)
}

// Budget returns the usable energy per activation cycle: the energy between
// a full charge (Vmax) and the brown-out threshold (Voff).
func (c *Capacitor) Budget() units.Energy {
	return c.EnergyAt(c.Vmax) - c.EnergyAt(c.Voff)
}

// Stored returns the currently stored energy.
func (c *Capacitor) Stored() units.Energy { return c.stored }

// Voltage returns the current capacitor voltage.
func (c *Capacitor) Voltage() units.Voltage {
	return units.VoltageForEnergy(c.C, c.stored)
}

// SetVoltage charges or discharges the capacitor to exactly v.
func (c *Capacitor) SetVoltage(v units.Voltage) {
	c.stored = c.EnergyAt(v)
}

// SetStored sets the stored energy directly — the restore half of a
// supply checkpoint, where the exact energy (not a threshold voltage)
// must be re-established.
func (c *Capacitor) SetStored(e units.Energy) { c.stored = e }

// Drain removes e from the capacitor and reports whether the device
// browned out (voltage fell to Voff or below). The stored energy never goes
// below zero.
func (c *Capacitor) Drain(e units.Energy) (brownout bool) {
	c.stored -= e
	if c.stored < 0 {
		c.stored = 0
	}
	return c.stored <= c.EnergyAt(c.Voff)
}

// Charge adds e to the capacitor, saturating at the Vmax energy.
func (c *Capacitor) Charge(e units.Energy) {
	c.stored += e
	if max := c.EnergyAt(c.Vmax); c.stored > max {
		c.stored = max
	}
}

// String summarizes the capacitor state.
func (c *Capacitor) String() string {
	return fmt.Sprintf("cap{%s %s stored=%s}", c.C, c.Voltage(), c.stored)
}

// Harvester supplies power to the capacitor while the device is off (and,
// for strong sources, while it runs).
type Harvester interface {
	// PowerAt returns the harvested power at absolute time t.
	PowerAt(t time.Duration) units.Power
	// Name identifies the harvester in reports.
	Name() string
}

// Constant is a harvester that delivers fixed power forever.
type Constant struct {
	P units.Power
}

// PowerAt implements Harvester.
func (c Constant) PowerAt(time.Duration) units.Power { return c.P }

// Name implements Harvester.
func (c Constant) Name() string { return fmt.Sprintf("const(%s)", c.P) }

// RF models RF power transfer from a 3 W, 915 MHz transmitter to a
// P2110-EVB-class receiver, as in the paper's real-world evaluation
// (§5.5, Figure 13). Received power falls as distance^-PathLossExp: 2 is
// free-space Friis; measured indoor near-ground links (and Powercast's
// own range data) decay much faster, and the Figure 13 sweep uses a
// steeper exponent so that a 52→64 inch sweep crosses from surplus to
// deficit just as the paper's does.
type RF struct {
	// DistanceInches separates transmitter and receiver.
	DistanceInches float64
	// RefPower is the power received at RefDistanceInches.
	RefPower units.Power
	// RefDistanceInches anchors the path-loss curve.
	RefDistanceInches float64
	// PathLossExp is the decay exponent (2 = free space). Zero means 2.
	PathLossExp float64
}

// DefaultRF returns an RF harvester at the given distance using the
// Figure 13 anchor.
func DefaultRF(distanceInches float64) RF {
	return RF{
		DistanceInches:    distanceInches,
		RefPower:          550 * units.Microwatt,
		RefDistanceInches: 52,
		PathLossExp:       8,
	}
}

// PowerAt implements Harvester.
func (r RF) PowerAt(time.Duration) units.Power {
	if r.DistanceInches <= 0 {
		return r.RefPower
	}
	exp := r.PathLossExp
	if exp == 0 {
		exp = 2
	}
	ratio := r.RefDistanceInches / r.DistanceInches
	return units.Power(float64(r.RefPower) * math.Pow(ratio, exp))
}

// Name implements Harvester.
func (r RF) Name() string { return fmt.Sprintf("rf(%.0fin)", r.DistanceInches) }

// Trace replays a recorded harvest-power trace, holding each sample for
// Step and repeating the trace when it runs out.
type Trace struct {
	// Samples holds the per-step harvested power.
	Samples []units.Power
	// Step is the duration each sample covers.
	Step time.Duration
	// Label names the trace in reports.
	Label string
}

// PowerAt implements Harvester.
func (tr Trace) PowerAt(t time.Duration) units.Power {
	if len(tr.Samples) == 0 || tr.Step <= 0 {
		return 0
	}
	i := int(t/tr.Step) % len(tr.Samples)
	return tr.Samples[i]
}

// Name implements Harvester.
func (tr Trace) Name() string {
	if tr.Label != "" {
		return tr.Label
	}
	return fmt.Sprintf("trace(%d samples)", len(tr.Samples))
}

// ChargeTime returns how long the harvester needs, starting at time t, to
// deliver energy e into the capacitor, accounting for leakage. It returns
// ok=false if the harvester cannot overcome leakage within the horizon.
func ChargeTime(h Harvester, t time.Duration, e units.Energy, leak units.Power, horizon time.Duration) (time.Duration, bool) {
	if e <= 0 {
		return 0, true
	}
	// Integrate in 1 ms steps; harvest traces and path-loss curves are far
	// smoother than that.
	const step = time.Millisecond
	var acc units.Energy
	for elapsed := time.Duration(0); elapsed < horizon; elapsed += step {
		p := h.PowerAt(t+elapsed) - leak
		if p > 0 {
			acc += units.EnergyOver(p, step)
		}
		if acc >= e {
			return elapsed + step, true
		}
	}
	return horizon, false
}
