package experiments

import (
	"testing"
)

// TestCalibrationReport prints the phase-1 and phase-2 sweeps at reduced
// run counts. It is a reporting aid (run with -v) and a regression check
// on the headline qualitative results.
func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep skipped in -short mode")
	}
	cfg := Config{Runs: 300, BaseSeed: 7}

	uni, err := UniTask(cfg)
	if err != nil {
		t.Fatalf("unitask: %v", err)
	}
	t.Logf("\n%s", uni.RenderFigure7())
	t.Logf("\n%s", uni.RenderTable4())
	t.Logf("\n%s", uni.RenderFigure8())

	multi, err := MultiTask(cfg)
	if err != nil {
		t.Fatalf("multitask: %v", err)
	}
	t.Logf("\n%s", multi.RenderFigure10())
	t.Logf("\n%s", multi.RenderFigure11())
	t.Logf("\n%s", multi.RenderFigure12())
}

// TestSensitivitySweep asserts the extension's headline: EaseIO's speedup
// is largest in the harshest environment and decays toward parity as
// failures become rare.
func TestSensitivitySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity sweep skipped in -short mode")
	}
	cfg := DefaultSensitivityConfig()
	cfg.Runs = 120
	points, err := Sensitivity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", RenderSensitivity(points))
	first, last := points[0], points[len(points)-1]
	if first.Speedup() < 1.3 {
		t.Errorf("harsh-environment speedup = %.2f, want ≥ 1.3", first.Speedup())
	}
	if last.Speedup() >= first.Speedup() {
		t.Errorf("speedup should decay: harsh %.2f vs mild %.2f", first.Speedup(), last.Speedup())
	}
	if last.Speedup() < 0.9 {
		t.Errorf("mild-environment speedup = %.2f; EaseIO should approach parity, not lose badly", last.Speedup())
	}
}
