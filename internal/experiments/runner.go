// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each experiment has one entry point returning a
// structured result plus a text renderer that prints the same rows or
// series the paper reports.
//
// All experiments follow the paper's methodology: each configuration is
// executed Runs times with pseudo-random seeds (the paper uses 1000,
// §5.3) under the timer-driven power-failure emulation, and the results
// are averaged (Figures) or summed (Table 4 counts).
package experiments

import (
	"fmt"
	"runtime"
	"strings"

	"easeio/internal/alpaca"
	"easeio/internal/apps"
	"easeio/internal/core"
	"easeio/internal/ink"
	"easeio/internal/justdo"
	"easeio/internal/kernel"
	"easeio/internal/power"
	"easeio/internal/stats"
)

// RuntimeKind selects one of the compared runtimes.
type RuntimeKind int

// The compared runtimes. EaseIOOp is EaseIO with the application's
// Exclude annotations enabled ("EaseIO/Op." in Figures 10, 11 and 13);
// the runtime itself is identical. JustDo is the checkpointing-family
// comparator (§2, §7.2) used by the loggers experiment and the
// failure-point checker.
const (
	Alpaca RuntimeKind = iota
	InK
	EaseIO
	EaseIOOp
	JustDo
)

// String names the runtime as the paper's figures do.
func (k RuntimeKind) String() string {
	switch k {
	case Alpaca:
		return "Alpaca"
	case InK:
		return "InK"
	case EaseIO:
		return "EaseIO"
	case EaseIOOp:
		return "EaseIO/Op."
	case JustDo:
		return "JustDo"
	default:
		return fmt.Sprintf("RuntimeKind(%d)", int(k))
	}
}

// ParseRuntimeKind maps a runtime name to its RuntimeKind. It accepts
// the paper's figure labels ("Alpaca", "InK", "EaseIO", "EaseIO/Op.")
// case-insensitively, plus "easeio-op" as a URL-friendly spelling of the
// last one.
func ParseRuntimeKind(s string) (RuntimeKind, error) {
	switch strings.ToLower(s) {
	case "alpaca":
		return Alpaca, nil
	case "ink":
		return InK, nil
	case "easeio":
		return EaseIO, nil
	case "easeio/op.", "easeio/op", "easeio-op":
		return EaseIOOp, nil
	case "justdo":
		return JustDo, nil
	default:
		return 0, fmt.Errorf("experiments: unknown runtime %q (want Alpaca, InK, EaseIO, EaseIO/Op. or JustDo)", s)
	}
}

// NewRuntime instantiates a fresh runtime of the given kind.
func NewRuntime(k RuntimeKind) kernel.Hooks {
	switch k {
	case Alpaca:
		return alpaca.New()
	case InK:
		return ink.New()
	case EaseIO, EaseIOOp:
		return core.New()
	case JustDo:
		return justdo.New()
	default:
		panic(fmt.Sprintf("experiments: unknown runtime %d", int(k)))
	}
}

// AppFactory builds a fresh application instance for one run.
type AppFactory func() (*apps.Bench, error)

// SupplyFactory builds a fresh power supply for one run.
type SupplyFactory func() power.Supply

// TimerSupply is the default supply factory: the paper's [5 ms, 20 ms]
// soft-reset emulation.
func TimerSupply() power.Supply { return power.NewTimer(power.DefaultTimerConfig()) }

// Config controls an experiment sweep.
type Config struct {
	// Runs is the number of seeded executions per configuration.
	Runs int
	// BaseSeed offsets the per-run seeds (seed = BaseSeed + run index).
	BaseSeed int64
	// Supply builds the power supply (defaults to TimerSupply).
	Supply SupplyFactory
	// Workers bounds parallel simulation (defaults to GOMAXPROCS).
	Workers int
	// Rebuild forces the legacy rebuild-per-run path: a fresh app, device
	// and runtime for every seed instead of per-worker reuse. Kept for
	// benchmarking the sweep engine against its predecessor.
	Rebuild bool
	// Progress, when non-nil, is invoked after every finished seed
	// (committed or failed) with the cumulative count of finished runs
	// and the sweep total. It is called from worker goroutines — the
	// callback must be safe for concurrent use. Progress never changes
	// the sweep's Summary; it only observes it being built.
	Progress func(done, total int)
}

// DefaultConfig matches the paper's 1000-run sweeps.
func DefaultConfig() Config { return Config{Runs: 1000, BaseSeed: 1} }

func (c Config) fill() Config {
	if c.Runs <= 0 {
		c.Runs = 1000
	}
	if c.Supply == nil {
		c.Supply = TimerSupply
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// RunOne executes one seeded run of the app under the runtime kind.
func RunOne(newApp AppFactory, kind RuntimeKind, supply power.Supply, seed int64) (*stats.Run, error) {
	bench, err := newApp()
	if err != nil {
		return nil, err
	}
	dev := kernel.NewDevice(supply, seed)
	if err := kernel.RunApp(dev, NewRuntime(kind), bench.App); err != nil {
		return nil, fmt.Errorf("experiments: %s on %s (seed %d): %w",
			bench.App.Name, kind, seed, err)
	}
	dev.Run.Runtime = kind.String() // distinguish EaseIO/Op. in reports
	return dev.Run, nil
}

// GoldenTime returns the continuous-power execution time of the app under
// the runtime — the pure application + overhead baseline.
func GoldenTime(newApp AppFactory, kind RuntimeKind) (stats.Summary, error) {
	run, err := RunOne(newApp, kind, power.Continuous{}, 0)
	if err != nil {
		return stats.Summary{}, err
	}
	return stats.Aggregate([]*stats.Run{run}), nil
}
