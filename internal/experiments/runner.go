// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each experiment has one entry point returning a
// structured result plus a text renderer that prints the same rows or
// series the paper reports.
//
// All experiments follow the paper's methodology: each configuration is
// executed Runs times with pseudo-random seeds (the paper uses 1000,
// §5.3) under the timer-driven power-failure emulation, and the results
// are averaged (Figures) or summed (Table 4 counts).
package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"easeio/internal/alpaca"
	"easeio/internal/apps"
	"easeio/internal/core"
	"easeio/internal/ink"
	"easeio/internal/justdo"
	"easeio/internal/kernel"
	"easeio/internal/power"
	"easeio/internal/stats"
)

// RuntimeKind selects one of the compared runtimes.
type RuntimeKind int

// The compared runtimes. EaseIOOp is EaseIO with the application's
// Exclude annotations enabled ("EaseIO/Op." in Figures 10, 11 and 13);
// the runtime itself is identical. JustDo is the checkpointing-family
// comparator (§2, §7.2) used by the loggers experiment and the
// failure-point checker.
const (
	Alpaca RuntimeKind = iota
	InK
	EaseIO
	EaseIOOp
	JustDo
)

// String names the runtime as the paper's figures do.
func (k RuntimeKind) String() string {
	switch k {
	case Alpaca:
		return "Alpaca"
	case InK:
		return "InK"
	case EaseIO:
		return "EaseIO"
	case EaseIOOp:
		return "EaseIO/Op."
	case JustDo:
		return "JustDo"
	default:
		return fmt.Sprintf("RuntimeKind(%d)", int(k))
	}
}

// ParseRuntimeKind maps a runtime name to its RuntimeKind. It accepts
// the paper's figure labels ("Alpaca", "InK", "EaseIO", "EaseIO/Op.")
// case-insensitively, plus "easeio-op" as a URL-friendly spelling of the
// last one.
func ParseRuntimeKind(s string) (RuntimeKind, error) {
	switch strings.ToLower(s) {
	case "alpaca":
		return Alpaca, nil
	case "ink":
		return InK, nil
	case "easeio":
		return EaseIO, nil
	case "easeio/op.", "easeio/op", "easeio-op":
		return EaseIOOp, nil
	case "justdo":
		return JustDo, nil
	default:
		return 0, fmt.Errorf("experiments: unknown runtime %q (want Alpaca, InK, EaseIO, EaseIO/Op. or JustDo)", s)
	}
}

// NewRuntime instantiates a fresh runtime of the given kind.
func NewRuntime(k RuntimeKind) kernel.Hooks {
	switch k {
	case Alpaca:
		return alpaca.New()
	case InK:
		return ink.New()
	case EaseIO, EaseIOOp:
		return core.New()
	case JustDo:
		return justdo.New()
	default:
		panic(fmt.Sprintf("experiments: unknown runtime %d", int(k)))
	}
}

// AppFactory builds a fresh application instance for one run.
type AppFactory func() (*apps.Bench, error)

// SupplyFactory builds a fresh power supply for one run.
type SupplyFactory func() power.Supply

// TimerSupply is the default supply factory: the paper's [5 ms, 20 ms]
// soft-reset emulation.
func TimerSupply() power.Supply { return power.NewTimer(power.DefaultTimerConfig()) }

// Config controls an experiment sweep.
type Config struct {
	// Runs is the number of seeded executions per configuration.
	Runs int
	// BaseSeed offsets the per-run seeds (seed = BaseSeed + run index).
	BaseSeed int64
	// Supply builds the power supply (defaults to TimerSupply).
	Supply SupplyFactory
	// Workers bounds parallel simulation (defaults to GOMAXPROCS).
	Workers int
	// Rebuild forces the legacy rebuild-per-run path: a fresh app, device
	// and runtime for every seed instead of per-worker reuse. Kept for
	// benchmarking the sweep engine against its predecessor.
	Rebuild bool
	// Progress, when non-nil, is invoked after every finished seed
	// (committed or failed) with the cumulative count of finished runs
	// and the sweep total. It is called from worker goroutines — the
	// callback must be safe for concurrent use. Progress never changes
	// the sweep's Summary; it only observes it being built.
	Progress func(done, total int)
	// TraceSink, when non-nil, is installed as the Tracer on every
	// worker's session, so each run's execution timeline streams into it.
	// Workers emit concurrently: the sink must be safe for concurrent use,
	// and events from different seeds interleave. Like the kernel tracer
	// it never changes a run's result.
	TraceSink kernel.Tracer
	// Timings, when non-nil, accumulates the sweep's stage timings (+=,
	// so one StageTimings can total several sequential sweeps). It is
	// written once per sweep after the workers join; do not share it
	// between concurrent sweeps.
	Timings *StageTimings
	// Batch, when > 1, runs each worker's shard in lockstep chunks of up
	// to Batch pooled devices stepped through the shared program and
	// compiled kernels together (see kernel.BatchSession). Results are
	// byte-identical to the sequential path — devices are independent and
	// folded in seed order — so Batch only changes execution cost, never
	// results. It is off by default: on the benchmark apps lockstep
	// measures slower than sequential pooled runs (the interleaved device
	// working sets evict each other from cache; see DESIGN.md). Ignored
	// (the sequential path runs) when a TraceSink is set: the sweep-wide
	// sink expects one run's events at a time per worker, and lockstep
	// would interleave seeds. Cancellation granularity coarsens from one
	// seed to one chunk per worker.
	Batch int
}

// StageTimings breaks a sweep's host wall-clock cost into stages: where
// the time went, diagnosable from artifacts instead of reruns.
type StageTimings struct {
	// Build is the per-worker setup cost (app factory, analysis, session
	// construction), summed across workers.
	Build time.Duration
	// Run is the simulation cost (seeded runs), summed across workers.
	Run time.Duration
	// Wall is the end-to-end elapsed time of the sweep call.
	Wall time.Duration
}

// String renders the breakdown on one line.
func (t StageTimings) String() string {
	return fmt.Sprintf("wall=%v build=%v run=%v",
		t.Wall.Round(time.Millisecond), t.Build.Round(time.Millisecond),
		t.Run.Round(time.Millisecond))
}

// DefaultConfig matches the paper's 1000-run sweeps.
func DefaultConfig() Config { return Config{Runs: 1000, BaseSeed: 1} }

func (c Config) fill() Config {
	if c.Runs <= 0 {
		c.Runs = 1000
	}
	if c.Supply == nil {
		c.Supply = TimerSupply
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// RunOne executes one seeded run of the app under the runtime kind.
func RunOne(newApp AppFactory, kind RuntimeKind, supply power.Supply, seed int64) (*stats.Run, error) {
	return RunOneTraced(newApp, kind, supply, seed, nil)
}

// RunOneTraced is RunOne with a Tracer installed on the run's device, so
// the execution timeline streams into tr alongside the statistics.
func RunOneTraced(newApp AppFactory, kind RuntimeKind, supply power.Supply, seed int64, tr kernel.Tracer) (*stats.Run, error) {
	bench, err := newApp()
	if err != nil {
		return nil, err
	}
	dev := kernel.NewDevice(supply, seed)
	dev.Tracer = tr
	if err := kernel.RunApp(dev, NewRuntime(kind), bench.App); err != nil {
		return nil, fmt.Errorf("experiments: %s on %s (seed %d): %w",
			bench.App.Name, kind, seed, err)
	}
	dev.Run.Runtime = kind.String() // distinguish EaseIO/Op. in reports
	return dev.Run, nil
}

// GoldenTime returns the continuous-power execution time of the app under
// the runtime — the pure application + overhead baseline.
func GoldenTime(newApp AppFactory, kind RuntimeKind) (stats.Summary, error) {
	run, err := RunOne(newApp, kind, power.Continuous{}, 0)
	if err != nil {
		return stats.Summary{}, err
	}
	return stats.Aggregate([]*stats.Run{run}), nil
}
