// Tests for the sweep engine's two load-bearing guarantees: the worker
// count must not change results (sharded shards merge back into the
// sequential fold), and a reused session must reproduce a fresh device's
// run exactly (the blueprint/instance split loses no state).

package experiments

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"easeio/internal/apps"
	"easeio/internal/justdo"
	"easeio/internal/kernel"
	"easeio/internal/power"
	"easeio/internal/stats"
)

func dmaFactory() (*apps.Bench, error)  { return apps.NewDMAApp(apps.DefaultDMAConfig()) }
func tempFactory() (*apps.Bench, error) { return apps.NewTempApp(apps.DefaultTempConfig()) }
func firFactory() (*apps.Bench, error)  { return apps.NewFIRApp(apps.DefaultFIRConfig()) }

// TestRunManyDeterminism checks that identical seeds produce a
// byte-identical Summary whether the sweep runs on one worker or many,
// and whether workers pool their devices or rebuild per run.
func TestRunManyDeterminism(t *testing.T) {
	cases := []struct {
		name string
		new  AppFactory
		runs int
	}{
		{"dma", dmaFactory, 24},
		{"temp", tempFactory, 24},
		{"fir", firFactory, 12},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			base := Config{Runs: c.runs, BaseSeed: 11, Workers: 1}
			seq, err := RunMany(base, c.new, EaseIO)
			if err != nil {
				t.Fatal(err)
			}
			par := base
			par.Workers = runtime.GOMAXPROCS(0)
			got, err := RunMany(par, c.new, EaseIO)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq, got) {
				t.Errorf("Workers=1 vs Workers=%d summaries differ:\n%+v\nvs\n%+v",
					par.Workers, seq, got)
			}
			reb := par
			reb.Rebuild = true
			got, err = RunMany(reb, c.new, EaseIO)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq, got) {
				t.Errorf("pooled vs rebuild summaries differ:\n%+v\nvs\n%+v", seq, got)
			}
		})
	}
}

// TestSessionResetReproducesFreshRun checks the reuse path directly: a
// session that has already completed a run must, after its in-place
// reset, produce exactly the stats.Run a fresh device and attach would
// for the same seed.
func TestSessionResetReproducesFreshRun(t *testing.T) {
	factories := map[string]AppFactory{"dma": dmaFactory, "temp": tempFactory}
	for name, factory := range factories {
		for _, kind := range []RuntimeKind{Alpaca, InK, EaseIO} {
			t.Run(name+"/"+kind.String(), func(t *testing.T) {
				bench, err := factory()
				if err != nil {
					t.Fatal(err)
				}
				sess := kernel.NewSession(NewRuntime(kind), bench.App, TimerSupply())
				if _, err := sess.Run(5); err != nil {
					t.Fatal(err)
				}
				reused, err := sess.Run(9)
				if err != nil {
					t.Fatal(err)
				}
				fresh, err := RunOne(factory, kind, TimerSupply(), 9)
				if err != nil {
					t.Fatal(err)
				}
				// RunOne relabels the runtime for EaseIO/Op. reporting; the
				// raw session does not. Normalize before comparing.
				fresh.Runtime = reused.Runtime
				if !reflect.DeepEqual(reused, fresh) {
					t.Errorf("reused device diverged from fresh device:\n%+v\nvs\n%+v",
						reused, fresh)
				}
			})
		}
	}
}

// TestSessionResetJustDo covers the logging runtime's reset path, which
// the RuntimeKind registry does not reach.
func TestSessionResetJustDo(t *testing.T) {
	bench, err := storeDenseApp()
	if err != nil {
		t.Fatal(err)
	}
	sess := kernel.NewSession(justdo.New(), bench.App, TimerSupply())
	if _, err := sess.Run(5); err != nil {
		t.Fatal(err)
	}
	reused, err := sess.Run(9)
	if err != nil {
		t.Fatal(err)
	}

	bench2, err := storeDenseApp()
	if err != nil {
		t.Fatal(err)
	}
	dev := kernel.NewDevice(power.NewTimer(power.DefaultTimerConfig()), 9)
	if err := kernel.RunApp(dev, justdo.New(), bench2.App); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reused, dev.Run) {
		t.Errorf("reused JustDo device diverged from fresh device:\n%+v\nvs\n%+v",
			reused, dev.Run)
	}
}

// TestRunManyCtxCancelStopsAtSeedBoundary cancels a single-worker sweep
// from inside its own progress hook after the third seed: the sweep must
// stop before running a fourth, return the partial summary, and report
// the cancellation.
func TestRunManyCtxCancelStopsAtSeedBoundary(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{Runs: 100, BaseSeed: 1, Workers: 1}
	cfg.Progress = func(done, total int) {
		if total != 100 {
			t.Errorf("progress total = %d, want 100", total)
		}
		if done == 3 {
			cancel()
		}
	}
	sum, err := RunManyCtx(ctx, cfg, dmaFactory, EaseIO)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	if sum.Runs != 3 {
		t.Errorf("summary covers %d runs, want exactly 3 (cancel at the seed boundary)", sum.Runs)
	}

	// The partial summary must equal a direct 3-run sweep: cancellation
	// truncates, it never distorts.
	direct, err2 := RunMany(Config{Runs: 3, BaseSeed: 1, Workers: 1}, dmaFactory, EaseIO)
	if err2 != nil {
		t.Fatal(err2)
	}
	if !reflect.DeepEqual(sum, direct) {
		t.Errorf("cancelled prefix differs from direct 3-run sweep:\n%+v\nvs\n%+v", sum, direct)
	}
}

// TestRunManyCtxAlreadyCancelled checks a dead context produces an empty
// summary, on both engine paths, without running anything.
func TestRunManyCtxAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, rebuild := range []bool{false, true} {
		cfg := Config{Runs: 8, Workers: 2, Rebuild: rebuild}
		sum, err := RunManyCtx(ctx, cfg, dmaFactory, EaseIO)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("rebuild=%v: err = %v, want context.Canceled", rebuild, err)
		}
		if sum.Runs != 0 {
			t.Errorf("rebuild=%v: %d runs executed under a cancelled context", rebuild, sum.Runs)
		}
	}
}

// TestRunManyProgressReachesTotal checks the progress hook fires once
// per seed and the final count equals the sweep total on both paths.
func TestRunManyProgressReachesTotal(t *testing.T) {
	for _, rebuild := range []bool{false, true} {
		var calls atomic.Int64
		var maxDone atomic.Int64
		cfg := Config{Runs: 12, BaseSeed: 5, Workers: 3, Rebuild: rebuild}
		cfg.Progress = func(done, total int) {
			calls.Add(1)
			// Callbacks race, so the hook records the running maximum.
			for {
				cur := maxDone.Load()
				if int64(done) <= cur || maxDone.CompareAndSwap(cur, int64(done)) {
					break
				}
			}
		}
		if _, err := RunMany(cfg, tempFactory, EaseIO); err != nil {
			t.Fatal(err)
		}
		if got := calls.Load(); got != 12 {
			t.Errorf("rebuild=%v: progress fired %d times, want 12", rebuild, got)
		}
		if got := maxDone.Load(); got != 12 {
			t.Errorf("rebuild=%v: max cumulative count = %d, want 12", rebuild, got)
		}
	}
}

// TestRunManyRecoversWorkerPanic checks a panicking factory fails its
// shard with a typed PanicError instead of crashing the process.
func TestRunManyRecoversWorkerPanic(t *testing.T) {
	boom := func() (*apps.Bench, error) { panic("boom") }
	for _, rebuild := range []bool{false, true} {
		sum, err := RunMany(Config{Runs: 4, Workers: 2, Rebuild: rebuild}, boom, EaseIO)
		var pe PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("rebuild=%v: err = %v, want a PanicError in the chain", rebuild, err)
		}
		if sum.Runs != 0 {
			t.Errorf("rebuild=%v: summary reports %d runs", rebuild, sum.Runs)
		}
	}
}

// TestParseRuntimeKind pins the accepted spellings.
func TestParseRuntimeKind(t *testing.T) {
	for in, want := range map[string]RuntimeKind{
		"alpaca": Alpaca, "Alpaca": Alpaca, "InK": InK, "ink": InK,
		"EaseIO": EaseIO, "easeio": EaseIO,
		"EaseIO/Op.": EaseIOOp, "easeio-op": EaseIOOp,
		"JustDo": JustDo, "justdo": JustDo,
	} {
		got, err := ParseRuntimeKind(in)
		if err != nil || got != want {
			t.Errorf("ParseRuntimeKind(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseRuntimeKind("quickrecall"); err == nil {
		t.Error("unregistered runtime name must not parse")
	}
}

// TestRunManyJoinsErrors checks that a sweep reports every failed seed
// rather than the first, and still summarizes the runs that completed.
func TestRunManyJoinsErrors(t *testing.T) {
	badApp := func() (*apps.Bench, error) { return nil, errStub }
	sum, err := RunMany(Config{Runs: 8, Workers: 2}, badApp, EaseIO)
	if err == nil {
		t.Fatal("expected an error from a factory that always fails")
	}
	if sum.Runs != 0 {
		t.Errorf("summary reports %d runs from a sweep with no successes", sum.Runs)
	}
}

var errStub = &stubError{}

type stubError struct{}

func (*stubError) Error() string { return "stub app failure" }

// TestAggregatorMergeMatchesSequential checks the aggregation algebra the
// engine relies on: folding shards and merging them in order equals one
// sequential fold.
func TestAggregatorMergeMatchesSequential(t *testing.T) {
	runs := make([]*stats.Run, 0, 10)
	for i := 0; i < 10; i++ {
		r, err := RunOne(tempFactory, EaseIO, TimerSupply(), int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, r)
	}
	seq := stats.NewAggregator()
	for _, r := range runs {
		seq.Add(r)
	}
	a, b := stats.NewAggregator(), stats.NewAggregator()
	for _, r := range runs[:4] {
		a.Add(r)
	}
	for _, r := range runs[4:] {
		b.Add(r)
	}
	merged := stats.NewAggregator()
	merged.Merge(a)
	merged.Merge(b)
	if !reflect.DeepEqual(seq.Summary(), merged.Summary()) {
		t.Errorf("merged summary differs from sequential summary")
	}
}

// TestRunRangeAggMatchesRunMany pins the distributed sweep's merge
// contract: splitting [0, Runs) into contiguous ranges, executing each
// with RunRangeAgg (with varying inner worker counts), and merging the
// fold states in range order must reproduce RunMany's Summary exactly —
// including the export/import round-trip a remote shard goes through.
func TestRunRangeAggMatchesRunMany(t *testing.T) {
	cfg := Config{Runs: 18, BaseSeed: 11, Workers: 2}
	want, err := RunMany(cfg, dmaFactory, EaseIO)
	if err != nil {
		t.Fatal(err)
	}

	for _, cuts := range [][]int{{0, 18}, {0, 7, 18}, {0, 5, 6, 12, 18}} {
		agg := stats.NewAggregator()
		for i := 0; i+1 < len(cuts); i++ {
			part := cfg
			part.Workers = 1 + i%3 // shards must be worker-count-invariant too
			sh, err := RunRangeAgg(context.Background(), part, dmaFactory, EaseIO, cuts[i], cuts[i+1])
			if err != nil {
				t.Fatal(err)
			}
			agg.Merge(stats.ImportAggregator(sh.Export()))
		}
		if got := agg.Summary(); !reflect.DeepEqual(got, want) {
			t.Errorf("cuts %v: merged summary differs:\n%+v\nvs\n%+v", cuts, got, want)
		}
	}

	if _, err := RunRangeAgg(context.Background(), cfg, dmaFactory, EaseIO, 5, 3); err == nil {
		t.Error("inverted range did not error")
	}
}
