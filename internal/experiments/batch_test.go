// Differential coverage for the compiled-kernel and lockstep-batch
// execution paths. The contract under test: every way of running a seed
// — interpreted closure body, compiled kernel through a pooled session,
// lockstep batch at any width — produces byte-identical statistics, so
// compilation and batching are purely throughput knobs. The matrix
// deliberately crosses all four runtime families (the bulk-load and
// bulk-charge fast paths are per-runtime) and includes a ragged batch
// width that does not divide the run count.

package experiments

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"easeio/internal/kernel"
	"easeio/internal/stats"
)

var diffRuntimes = []RuntimeKind{Alpaca, InK, EaseIO, JustDo}

// runInterpreted executes one seed on a fresh device with compilation
// disabled: the op-list interpreter body and the canonical CheckOutput
// closure — the reference the compiled paths must reproduce.
func runInterpreted(t *testing.T, factory AppFactory, kind RuntimeKind, seed int64) *stats.Run {
	t.Helper()
	bench, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	dev := kernel.NewDevice(TimerSupply(), seed)
	dev.NoCompile = true
	if err := kernel.RunApp(dev, NewRuntime(kind), bench.App); err != nil {
		t.Fatal(err)
	}
	return dev.Run
}

// TestCompiledMatchesInterpreted pins per-seed byte-identity between the
// interpreted reference and the compiled-kernel session path, for every
// runtime, on both op-bodied apps.
func TestCompiledMatchesInterpreted(t *testing.T) {
	factories := map[string]AppFactory{"dma": dmaFactory, "temp": tempFactory}
	for name, factory := range factories {
		for _, kind := range diffRuntimes {
			t.Run(name+"/"+kind.String(), func(t *testing.T) {
				bench, err := factory()
				if err != nil {
					t.Fatal(err)
				}
				sess := kernel.NewSession(NewRuntime(kind), bench.App, TimerSupply())
				for seed := int64(1); seed <= 12; seed++ {
					compiled, err := sess.Run(seed)
					if err != nil {
						t.Fatal(err)
					}
					interp := runInterpreted(t, factory, kind, seed)
					if !reflect.DeepEqual(compiled, interp) {
						t.Fatalf("seed %d: compiled run diverged from interpreted:\n%+v\nvs\n%+v",
							seed, compiled, interp)
					}
				}
			})
		}
	}
}

// TestBatchSweepByteIdentical pins the sweep-level contract: a batched
// sweep summary equals the sequential one at K=1, K=8 and a ragged K
// where runs%K != 0, across worker counts, for every runtime.
func TestBatchSweepByteIdentical(t *testing.T) {
	factories := map[string]AppFactory{"dma": dmaFactory, "temp": tempFactory}
	for name, factory := range factories {
		for _, kind := range diffRuntimes {
			t.Run(name+"/"+kind.String(), func(t *testing.T) {
				base := Config{Runs: 23, BaseSeed: 7, Workers: 1}
				want, err := RunMany(base, factory, kind)
				if err != nil {
					t.Fatal(err)
				}
				for _, c := range []struct {
					batch, workers int
				}{{1, 1}, {8, 1}, {5, 1}, {8, 3}} {
					cfg := base
					cfg.Batch = c.batch
					cfg.Workers = c.workers
					got, err := RunMany(cfg, factory, kind)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("Batch=%d Workers=%d summary differs from sequential:\n%+v\nvs\n%+v",
							c.batch, c.workers, got, want)
					}
				}
			})
		}
	}
}

// lockedTrace is a concurrency-safe Tracer for sweep-wide sinks.
type lockedTrace struct {
	mu     sync.Mutex
	events int
}

func (l *lockedTrace) Event(kernel.TraceEvent) {
	l.mu.Lock()
	l.events++
	l.mu.Unlock()
}

// TestBatchIgnoredUnderTraceSink pins the observation-hook gate: a sweep
// with a TraceSink takes the sequential path even when Batch is set (so
// one worker emits one seed's events at a time), and the traced sweep's
// summary still equals the untraced one.
func TestBatchIgnoredUnderTraceSink(t *testing.T) {
	base := Config{Runs: 9, BaseSeed: 3, Workers: 1}
	want, err := RunMany(base, tempFactory, EaseIO)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Batch = 8
	sink := &lockedTrace{}
	cfg.TraceSink = sink
	got, err := RunMany(cfg, tempFactory, EaseIO)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("traced sweep summary differs from untraced:\n%+v\nvs\n%+v", got, want)
	}
	if sink.events == 0 {
		t.Error("trace sink received no events")
	}
}

// cutRecorder collects charge-slice boundaries.
type cutRecorder struct{ cuts []time.Duration }

func (c *cutRecorder) NoteCut(onTime time.Duration) { c.cuts = append(c.cuts, onTime) }

// TestCutSinkForcesSliceIdentity pins the bulk-charge gate on the other
// observation hook: with a CutSink installed, compiled execution must
// fall back to per-slice charging and report exactly the cut sequence
// the interpreted run reports — the failure-point checker depends on
// every candidate boundary existing on both paths.
func TestCutSinkForcesSliceIdentity(t *testing.T) {
	for _, kind := range diffRuntimes {
		t.Run(kind.String(), func(t *testing.T) {
			bench, err := dmaFactory()
			if err != nil {
				t.Fatal(err)
			}
			compiledCuts := &cutRecorder{}
			sess := kernel.NewSession(NewRuntime(kind), bench.App, TimerSupply())
			sess.Cuts = compiledCuts
			compiled, err := sess.Run(4)
			if err != nil {
				t.Fatal(err)
			}

			bench2, err := dmaFactory()
			if err != nil {
				t.Fatal(err)
			}
			interpCuts := &cutRecorder{}
			dev := kernel.NewDevice(TimerSupply(), 4)
			dev.NoCompile = true
			dev.Cuts = interpCuts
			if err := kernel.RunApp(dev, NewRuntime(kind), bench2.App); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(compiled, dev.Run) {
				t.Errorf("compiled run under CutSink diverged from interpreted:\n%+v\nvs\n%+v",
					compiled, dev.Run)
			}
			if !reflect.DeepEqual(compiledCuts.cuts, interpCuts.cuts) {
				t.Errorf("cut sequences differ: compiled %d cuts, interpreted %d cuts",
					len(compiledCuts.cuts), len(interpCuts.cuts))
			}
			if len(compiledCuts.cuts) == 0 {
				t.Error("no cuts recorded")
			}
		})
	}
}

// TestBatchSessionRaggedAndErrors exercises BatchSession.Run directly:
// fewer seeds than slots, per-seed results in seed order, and reuse
// across calls — each batched run equal to the same seed run alone.
func TestBatchSessionRaggedAndErrors(t *testing.T) {
	const k = 4
	sessions := make([]*kernel.Session, k)
	for i := range sessions {
		bench, err := tempFactory()
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = kernel.NewSession(NewRuntime(InK), bench.App, TimerSupply())
	}
	batch := kernel.NewBatchSession(sessions...)
	for _, seeds := range [][]int64{{21, 22, 23, 24}, {25, 26}, {27, 28, 29}} {
		runs, errs := batch.Run(seeds)
		if len(runs) != len(seeds) || len(errs) != len(seeds) {
			t.Fatalf("batch returned %d runs / %d errs for %d seeds", len(runs), len(errs), len(seeds))
		}
		for i, seed := range seeds {
			if errs[i] != nil {
				t.Fatal(errs[i])
			}
			bench, err := tempFactory()
			if err != nil {
				t.Fatal(err)
			}
			solo := kernel.NewSession(NewRuntime(InK), bench.App, TimerSupply())
			want, err := solo.Run(seed)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(runs[i], want) {
				t.Errorf("seed %d batched run diverged from solo run:\n%+v\nvs\n%+v",
					seed, runs[i], want)
			}
		}
	}
}
