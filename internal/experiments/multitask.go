// Phase 2 of the evaluation (§5.4): the FIR filter and the DNN weather
// classifier, including the "EaseIO/Op." Exclude configuration. One sweep
// feeds Figure 10 (time breakdown), Figure 11 (energy) and Figure 12 (FIR
// correctness).

package experiments

import (
	"fmt"
	"strings"

	"easeio/internal/apps"
	"easeio/internal/stats"
)

// MultiTaskKinds are the configurations compared in phase 2, in the
// paper's legend order.
var MultiTaskKinds = []RuntimeKind{EaseIOOp, EaseIO, InK, Alpaca}

// MultiTaskCase is one phase-2 benchmark.
type MultiTaskCase struct {
	Label string
	// New builds the app; excludeOps enables the application's Exclude
	// annotations (used only for the EaseIOOp configuration).
	New func(excludeOps bool) (*apps.Bench, error)
}

// MultiTaskCases returns the two phase-2 benchmarks.
func MultiTaskCases() []MultiTaskCase {
	return []MultiTaskCase{
		{Label: "FIR Filter", New: func(ex bool) (*apps.Bench, error) {
			cfg := apps.DefaultFIRConfig()
			cfg.ExcludeCoef = ex
			return apps.NewFIRApp(cfg)
		}},
		{Label: "Weather App.", New: func(ex bool) (*apps.Bench, error) {
			cfg := apps.DefaultWeatherConfig()
			cfg.ExcludeWeights = ex
			return apps.NewWeatherApp(cfg)
		}},
	}
}

// MultiTaskData is the phase-2 sweep result: [case][kind] summaries.
type MultiTaskData struct {
	Cases     []MultiTaskCase
	Summaries [][]stats.Summary
}

// MultiTask runs the phase-2 sweep.
func MultiTask(cfg Config) (*MultiTaskData, error) {
	cases := MultiTaskCases()
	out := &MultiTaskData{Cases: cases, Summaries: make([][]stats.Summary, len(cases))}
	for ci, c := range cases {
		out.Summaries[ci] = make([]stats.Summary, len(MultiTaskKinds))
		for ki, k := range MultiTaskKinds {
			factory := func() (*apps.Bench, error) { return c.New(k == EaseIOOp) }
			s, err := RunMany(cfg, factory, k)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", c.Label, k, err)
			}
			out.Summaries[ci][ki] = s
		}
	}
	return out, nil
}

// RenderFigure10 prints the phase-2 execution-time breakdown.
func (d *MultiTaskData) RenderFigure10() string {
	var b strings.Builder
	b.WriteString("Figure 10 — execution time, runtime overhead and wasted work (multi-task)\n")
	for ci, c := range d.Cases {
		fmt.Fprintf(&b, "%s:\n", c.Label)
		scale := BarScale(d.Summaries[ci])
		for ki, k := range MultiTaskKinds {
			b.WriteString(StackedBar(k.String(), d.Summaries[ci][ki].Work, scale, 48))
			b.WriteByte('\n')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderFigure11 prints average energy for the multi-task apps.
func (d *MultiTaskData) RenderFigure11() string {
	header := []string{"App"}
	for _, k := range MultiTaskKinds {
		header = append(header, k.String()+" (µJ)")
	}
	rows := make([][]string, len(d.Cases))
	for ci, c := range d.Cases {
		row := []string{c.Label}
		for ki := range MultiTaskKinds {
			row = append(row, fmtUJ(d.Summaries[ci][ki].MeanEnergy))
		}
		rows[ci] = row
	}
	return "Figure 11 — average energy per execution (multi-task)\n" + Table(header, rows)
}

// RenderFigure12 prints FIR correctness counts, like Figure 12.
func (d *MultiTaskData) RenderFigure12() string {
	fir := d.Summaries[0]
	header := []string{"Runtime", "Correct", "Incorrect", "Incorrect %"}
	// The paper's Figure 12 compares EaseIO, InK and Alpaca.
	rows := [][]string{}
	for ki, k := range MultiTaskKinds {
		if k == EaseIOOp {
			continue
		}
		s := fir[ki]
		rows = append(rows, []string{
			k.String(),
			fmt.Sprintf("%d", s.CorrectRuns),
			fmt.Sprintf("%d", s.IncorrectRuns),
			pct(s.IncorrectRuns, s.Runs),
		})
	}
	return "Figure 12 — correct and incorrect executions of the FIR filter\n" +
		Table(header, rows)
}
