// Table 3 (§5.2): the structural inventory of the evaluated applications —
// task and I/O-function counts. Regenerated from the blueprints themselves.

package experiments

import (
	"fmt"
)

// Table3Row is one application's structure.
type Table3Row struct {
	App   string
	Tasks int
	IO    int
	DMAs  int
}

// Table3 inventories the benchmark applications.
func Table3() ([]Table3Row, error) {
	var rows []Table3Row
	for _, c := range table6Apps() {
		bench, err := c.build()
		if err != nil {
			return nil, fmt.Errorf("table3 %s: %w", c.label, err)
		}
		rows = append(rows, Table3Row{
			App:   c.label,
			Tasks: len(bench.App.Tasks),
			IO:    len(bench.App.Sites),
			DMAs:  len(bench.App.DMAs),
		})
	}
	return rows, nil
}

// RenderTable3 prints the inventory.
func RenderTable3(rows []Table3Row) string {
	header := []string{"App", "Tasks", "I/O func.", "DMA sites"}
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.App, fmt.Sprintf("%d", r.Tasks),
			fmt.Sprintf("%d", r.IO), fmt.Sprintf("%d", r.DMAs)}
	}
	return "Table 3 — tasks and I/O functions of the evaluated applications\n" +
		Table(header, out)
}
