// Text rendering for experiment results: aligned tables and horizontal
// stacked bars, so `easeio-bench` output reads like the paper's figures.

package experiments

import (
	"fmt"
	"strings"
	"time"

	"easeio/internal/stats"
)

// Table renders rows of cells with aligned columns.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// StackedBar renders one App/Overhead/Wasted bar like Figures 7 and 10:
// '#' application work, 'o' runtime overhead, 'x' wasted work.
func StackedBar(label string, w [stats.NumBuckets]stats.Totals, scale time.Duration, width int) string {
	if scale <= 0 {
		scale = time.Millisecond
	}
	seg := func(d time.Duration, ch byte) string {
		n := int(int64(d) * int64(width) / int64(scale))
		if d > 0 && n == 0 {
			n = 1
		}
		return strings.Repeat(string(ch), n)
	}
	total := w[stats.App].T + w[stats.Overhead].T + w[stats.Wasted].T
	return fmt.Sprintf("%-11s |%s%s%s| %6.2fms (app %.2f, ovh %.2f, wasted %.2f)",
		label,
		seg(w[stats.App].T, '#'), seg(w[stats.Overhead].T, 'o'), seg(w[stats.Wasted].T, 'x'),
		ms(total), ms(w[stats.App].T), ms(w[stats.Overhead].T), ms(w[stats.Wasted].T))
}

// BarScale returns a common scale (max total time) for a set of
// summaries.
func BarScale(sums []stats.Summary) time.Duration {
	var max time.Duration
	for _, s := range sums {
		if t := s.MeanTotalTime(); t > max {
			max = t
		}
	}
	if max == 0 {
		return time.Millisecond
	}
	return max
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func fmtMS(d time.Duration) string { return fmt.Sprintf("%.2f", ms(d)) }

func fmtUJ(e interface{ Microjoules() float64 }) string {
	return fmt.Sprintf("%.1f", e.Microjoules())
}

func pct(part, whole int) string {
	if whole == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(part)/float64(whole))
}
