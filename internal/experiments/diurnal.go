// Diurnal throughput (extension): how many application iterations each
// runtime completes on one synthetic solar day. The paper's Figure 1
// motivates everything with exactly this picture — unpredictable energy,
// "important to ensure efficient use of energy in order to ensure maximum
// program progress" — and this experiment measures program progress
// directly: completions per day.

package experiments

import (
	"fmt"
	"strings"
	"time"

	"easeio/internal/apps"
	"easeio/internal/energy"
	"easeio/internal/kernel"
	"easeio/internal/power"
	"easeio/internal/units"
)

// DiurnalConfig parameterizes the solar-day throughput run.
type DiurnalConfig struct {
	// Solar is the irradiance profile.
	Solar energy.SolarConfig
	// Capacitance of the storage capacitor.
	Capacitance units.Capacitance
	// Budget is the wall-clock horizon (one day by default).
	Budget time.Duration
	// Runs averages over cloud seeds.
	Runs int
}

// DefaultDiurnalConfig pairs the compressed solar day with a WISP-scale
// capacitor.
func DefaultDiurnalConfig() DiurnalConfig {
	return DiurnalConfig{
		Solar:       energy.DefaultSolarConfig(),
		Capacitance: 2200 * units.Nanofarad,
		Budget:      10 * time.Second,
		Runs:        10,
	}
}

// DiurnalRow is one runtime's day.
type DiurnalRow struct {
	Runtime string
	// Completions is the mean number of full app executions per day.
	Completions float64
	// Failures is the mean power-failure count per day.
	Failures float64
	// OnFraction is powered-on time over the whole day.
	OnFraction float64
}

// Diurnal measures Single-semantics DMA-app completions over one solar
// day per configuration (the workload whose dominant operation EaseIO can
// skip; the sensitivity sweep covers how the advantage scales with
// failure density).
func Diurnal(cfg DiurnalConfig) ([]DiurnalRow, error) {
	if cfg.Budget <= 0 {
		cfg = DefaultDiurnalConfig()
	}
	kinds := []RuntimeKind{Alpaca, InK, EaseIO}
	var out []DiurnalRow
	for _, k := range kinds {
		var comps, fails, onFrac float64
		for run := 0; run < cfg.Runs; run++ {
			scfg := cfg.Solar
			scfg.Seed = uint64(run + 1)
			completions, failures, on, err := dayRun(cfg, scfg, k)
			if err != nil {
				return nil, fmt.Errorf("diurnal %s run %d: %w", k, run, err)
			}
			comps += float64(completions)
			fails += float64(failures)
			onFrac += on
		}
		n := float64(cfg.Runs)
		out = append(out, DiurnalRow{
			Runtime:     k.String(),
			Completions: comps / n,
			Failures:    fails / n,
			OnFraction:  onFrac / n,
		})
	}
	return out, nil
}

// dayRun executes the weather app back to back until the day's budget is
// spent. The device's clock, capacitor and cloud pattern persist across
// app executions; only the runtime's application state is re-attached.
func dayRun(cfg DiurnalConfig, scfg energy.SolarConfig, k RuntimeKind) (completions, failures int, onFraction float64, err error) {
	supply := power.NewHarvested(energy.NewSolar(scfg))
	supply.Cap.C = cfg.Capacitance
	supply.StartAtVon = true
	supply.MaxOff = cfg.Budget
	supply.Reset(1)

	var wall, on time.Duration
	for wall < cfg.Budget {
		bench, berr := apps.NewDMAApp(apps.DefaultDMAConfig())
		if berr != nil {
			return 0, 0, 0, berr
		}
		dev := kernel.NewDevice(&resumedSupply{Supply: supply, base: wall}, int64(completions)+1)
		if rerr := kernel.RunApp(dev, NewRuntime(k), bench.App); rerr != nil {
			return 0, 0, 0, rerr
		}
		if dev.Run.Stuck {
			break
		}
		wall += dev.Run.WallTime
		on += dev.Run.OnTime
		failures += dev.Run.PowerFailures
		if wall <= cfg.Budget {
			completions++
		}
	}
	return completions, failures, float64(on) / float64(cfg.Budget), nil
}

// resumedSupply offsets a shared harvested supply's notion of wall time so
// that back-to-back app executions see a continuous solar day rather than
// each starting at dawn. Reset is swallowed: capacitor charge persists
// across executions.
type resumedSupply struct {
	Supply *power.Harvested
	base   time.Duration
}

// Name implements power.Supply.
func (r *resumedSupply) Name() string { return r.Supply.Name() }

// Reset implements power.Supply (state persists across app executions).
func (r *resumedSupply) Reset(int64) {}

// Step implements power.Supply.
func (r *resumedSupply) Step(wall, onTime, dt time.Duration, e units.Energy) bool {
	return r.Supply.Step(r.base+wall, onTime, dt, e)
}

// Recharge implements power.Supply.
func (r *resumedSupply) Recharge(wall time.Duration) time.Duration {
	return r.Supply.Recharge(r.base + wall)
}

// RenderDiurnal prints the day's throughput.
func RenderDiurnal(rows []DiurnalRow) string {
	header := []string{"Runtime", "Completions/day", "Failures/day", "On fraction"}
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Runtime,
			fmt.Sprintf("%.1f", r.Completions),
			fmt.Sprintf("%.1f", r.Failures),
			fmt.Sprintf("%.0f%%", 100*r.OnFraction)}
	}
	var b strings.Builder
	b.WriteString("Diurnal — DMA-app completions over one synthetic solar day\n")
	b.WriteString(Table(header, out))
	return b.String()
}

// DiurnalDataset exports the day's throughput.
func DiurnalDataset(rows []DiurnalRow) Dataset {
	ds := Dataset{
		Name:   "diurnal",
		Title:  "Diurnal solar-day throughput",
		Header: []string{"runtime", "completions_per_day", "failures_per_day", "on_fraction"},
	}
	for _, r := range rows {
		ds.Rows = append(ds.Rows, []string{r.Runtime,
			fmt.Sprintf("%.2f", r.Completions),
			fmt.Sprintf("%.2f", r.Failures),
			fmt.Sprintf("%.3f", r.OnFraction)})
	}
	return ds
}
