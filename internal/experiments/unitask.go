// Phase 1 of the evaluation (§5.3): three uni-task applications, one per
// re-execution semantic. One sweep feeds Figure 7 (execution-time
// breakdown), Table 4 (power failures and redundant I/O) and Figure 8
// (energy).

package experiments

import (
	"fmt"
	"strings"

	"easeio/internal/apps"
	"easeio/internal/stats"
)

// UniTaskKinds are the runtimes compared in phase 1.
var UniTaskKinds = []RuntimeKind{Alpaca, InK, EaseIO}

// UniTaskCase is one uni-task benchmark configuration.
type UniTaskCase struct {
	// Label matches the paper's column naming in Table 4.
	Label string
	// Fig identifies the Figure 7 panel (a, b, c).
	Fig string
	// New builds the application.
	New AppFactory
}

// UniTaskCases returns the three phase-1 benchmarks.
func UniTaskCases() []UniTaskCase {
	return []UniTaskCase{
		{Label: "Single (DMA)", Fig: "7a", New: func() (*apps.Bench, error) {
			return apps.NewDMAApp(apps.DefaultDMAConfig())
		}},
		{Label: "Timely (Temp.)", Fig: "7b", New: func() (*apps.Bench, error) {
			return apps.NewTempApp(apps.DefaultTempConfig())
		}},
		{Label: "Always (LEA)", Fig: "7c", New: func() (*apps.Bench, error) {
			return apps.NewLEAApp(apps.DefaultLEAConfig())
		}},
	}
}

// UniTaskData is the phase-1 sweep result: [case][runtime] summaries.
type UniTaskData struct {
	Cases     []UniTaskCase
	Summaries [][]stats.Summary
}

// UniTask runs the phase-1 sweep.
func UniTask(cfg Config) (*UniTaskData, error) {
	cases := UniTaskCases()
	out := &UniTaskData{Cases: cases, Summaries: make([][]stats.Summary, len(cases))}
	for ci, c := range cases {
		out.Summaries[ci] = make([]stats.Summary, len(UniTaskKinds))
		for ki, k := range UniTaskKinds {
			s, err := RunMany(cfg, c.New, k)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", c.Label, k, err)
			}
			out.Summaries[ci][ki] = s
		}
	}
	return out, nil
}

// RenderFigure7 prints the three panels of Figure 7 as stacked bars.
func (d *UniTaskData) RenderFigure7() string {
	var b strings.Builder
	for ci, c := range d.Cases {
		fmt.Fprintf(&b, "Figure %s — %s: total execution time, runtime overhead, wasted work\n",
			c.Fig, c.Label)
		scale := BarScale(d.Summaries[ci])
		for ki, k := range UniTaskKinds {
			b.WriteString(StackedBar(k.String(), d.Summaries[ci][ki].Work, scale, 48))
			b.WriteByte('\n')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderTable4 prints power-failure and redundant-I/O counts summed over
// all runs, like Table 4.
func (d *UniTaskData) RenderTable4() string {
	header := []string{"Runtime"}
	for _, c := range d.Cases {
		header = append(header, c.Label+" PF", c.Label+" Re-exe.")
	}
	rows := make([][]string, len(UniTaskKinds))
	for ki, k := range UniTaskKinds {
		row := []string{k.String()}
		for ci := range d.Cases {
			s := d.Summaries[ci][ki]
			row = append(row,
				fmt.Sprintf("%d", s.PowerFailures),
				fmt.Sprintf("%d", s.IORepeats+s.DMARepeats))
		}
		rows[ki] = row
	}
	var b strings.Builder
	b.WriteString("Table 4 — power failures and redundant I/O re-executions (sums over all runs)\n")
	b.WriteString(Table(header, rows))
	// Reduction lines, as the paper reports per semantic.
	ease := len(UniTaskKinds) - 1
	for ci, c := range d.Cases {
		base := d.Summaries[ci][0].IORepeats + d.Summaries[ci][0].DMARepeats
		e := d.Summaries[ci][ease].IORepeats + d.Summaries[ci][ease].DMARepeats
		if base > 0 {
			fmt.Fprintf(&b, "%s: EaseIO avoids %s of Alpaca's redundant I/O\n",
				c.Label, pct(base-e, base))
		}
	}
	return b.String()
}

// RenderFigure8 prints average per-run energy, like Figure 8.
func (d *UniTaskData) RenderFigure8() string {
	header := []string{"Semantic"}
	for _, k := range UniTaskKinds {
		header = append(header, k.String()+" (µJ)")
	}
	rows := make([][]string, len(d.Cases))
	for ci, c := range d.Cases {
		row := []string{c.Label}
		for ki := range UniTaskKinds {
			row = append(row, fmtUJ(d.Summaries[ci][ki].MeanEnergy))
		}
		rows[ci] = row
	}
	return "Figure 8 — average energy per execution with controlled power failures\n" +
		Table(header, rows)
}
