// Figure 13 (§5.5): the real-world evaluation — an RF power transmitter
// charges the capacitor, and the transmitter–device distance sweeps from
// 52 to 64 inches. Close in, harvested power sustains execution with no
// power failures; further out, failures appear and the runtimes separate.
// The paper plots each runtime's execution time minus EaseIO/Op.'s.
//
// Substitution note: the harvested power at the reference distance and the
// capacitor size are scaled to this simulator's energy model (the paper's
// absolute powers correspond to its board's draw). The anchor preserves
// the figure's structure: zero difference at 52 in, growing differences
// with distance.

package experiments

import (
	"fmt"
	"time"

	"easeio/internal/apps"
	"easeio/internal/energy"
	"easeio/internal/power"
	"easeio/internal/units"
)

// Fig13Config parameterizes the harvested-power sweep.
type Fig13Config struct {
	// DistancesInches are the transmitter–device separations (the paper
	// uses 52…64 in steps of 3).
	DistancesInches []float64
	// RefPower is the harvested power at 52 inches.
	RefPower units.Power
	// Capacitance of the storage capacitor.
	Capacitance units.Capacitance
	// Runs per configuration (energy-driven runs are slower than
	// timer-driven ones; the default sweep uses fewer).
	Runs int
	// BaseSeed offsets run seeds.
	BaseSeed int64
}

// DefaultFig13Config anchors the sweep so that 52 inches sustains the FIR
// workload continuously, matching the left edge of the paper's figure:
// harvested power at 52 in (~0.8 mW) comfortably exceeds the workload's
// ~0.45 mW draw, and the steep near-ground path loss pushes the far
// distances into deficit. The WISP-scale capacitor gives a per-charge
// budget of a few microjoules, so each deficit crossing costs a recharge
// whose duration grows with distance.
func DefaultFig13Config() Fig13Config {
	return Fig13Config{
		DistancesInches: []float64{52, 55, 58, 61, 64},
		RefPower:        550 * units.Microwatt,
		Capacitance:     2700 * units.Nanofarad,
		Runs:            60,
		BaseSeed:        1,
	}
}

// Fig13Kinds are the plotted configurations.
var Fig13Kinds = []RuntimeKind{EaseIOOp, EaseIO, InK, Alpaca}

// Fig13Data holds mean execution times: [distance][kind].
type Fig13Data struct {
	Cfg   Fig13Config
	Times [][]time.Duration
	// Failures holds mean power-failure counts for context.
	Failures [][]float64
}

// Fig13 runs the sweep with the weather application (capture and
// transmit simulated by delay loops, exactly as §5.4.1 describes), whose
// Single/Timely operations give EaseIO per-charge-cycle savings.
func Fig13(cfg Fig13Config) (*Fig13Data, error) {
	if len(cfg.DistancesInches) == 0 {
		cfg = DefaultFig13Config()
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 60
	}
	out := &Fig13Data{Cfg: cfg}
	for _, d := range cfg.DistancesInches {
		times := make([]time.Duration, len(Fig13Kinds))
		fails := make([]float64, len(Fig13Kinds))
		for ki, k := range Fig13Kinds {
			rc := Config{
				Runs:     cfg.Runs,
				BaseSeed: cfg.BaseSeed,
				Supply: func() power.Supply {
					h := energy.DefaultRF(d)
					h.RefPower = cfg.RefPower
					s := power.NewHarvested(h)
					s.Cap.C = cfg.Capacitance
					s.StartAtVon = true
					s.Jitter = 0.15 // per-run channel fading
					s.Reset(0)
					return s
				},
			}
			factory := func() (*apps.Bench, error) {
				wc := apps.DefaultWeatherConfig()
				wc.ExcludeWeights = k == EaseIOOp
				wc.DelayLoopSend = true
				return apps.NewWeatherApp(wc)
			}
			sum, err := RunMany(rc, factory, k)
			if err != nil {
				return nil, fmt.Errorf("fig13 d=%.0f %s: %w", d, k, err)
			}
			times[ki] = sum.MeanWallTime
			fails[ki] = float64(sum.PowerFailures) / float64(sum.Runs)
		}
		out.Times = append(out.Times, times)
		out.Failures = append(out.Failures, fails)
	}
	return out, nil
}

// Render prints per-distance wall-clock completion-time differences
// against EaseIO/Op., like the paper's bar groups. Wall time includes
// recharge periods: that is what a harvested deployment observes.
func (d *Fig13Data) Render() string {
	header := []string{"Distance (in)"}
	for _, k := range Fig13Kinds {
		header = append(header, "Δt "+k.String()+" (ms)")
	}
	header = append(header, "PF/run (Alpaca)")
	rows := make([][]string, len(d.Times))
	for di, times := range d.Times {
		ref := times[0] // EaseIO/Op.
		row := []string{fmt.Sprintf("%.0f", d.Cfg.DistancesInches[di])}
		for _, t := range times {
			row = append(row, fmtMS(t-ref))
		}
		row = append(row, fmt.Sprintf("%.2f", d.Failures[di][len(Fig13Kinds)-1]))
		rows[di] = row
	}
	return "Figure 13 — execution time difference vs EaseIO/Op. under the RF harvester\n" +
		Table(header, rows)
}
