// Sensitivity sweep (extension beyond the paper's evaluation): how the
// EaseIO-vs-Alpaca gap depends on the emulated energy environment. The
// paper fixes the failure interval at [5 ms, 20 ms]; here the interval is
// scaled from harsh (×0.6) to mild (×2.5), showing that EaseIO's
// advantage grows as energy cycles shrink — the regime batteryless
// deployments actually live in — and vanishes when failures become rare.

package experiments

import (
	"fmt"
	"strings"
	"time"

	"easeio/internal/apps"
	"easeio/internal/power"
	"easeio/internal/stats"
)

// SensitivityPoint is one environment scale.
type SensitivityPoint struct {
	// Scale multiplies the paper's [5 ms, 20 ms] interval.
	Scale float64
	// Alpaca and EaseIO summarize the DMA benchmark under each runtime.
	Alpaca, EaseIO stats.Summary
}

// Speedup returns Alpaca's mean total time over EaseIO's.
func (p SensitivityPoint) Speedup() float64 {
	e := p.EaseIO.MeanTotalTime()
	if e == 0 {
		return 0
	}
	return float64(p.Alpaca.MeanTotalTime()) / float64(e)
}

// SensitivityConfig parameterizes the sweep.
type SensitivityConfig struct {
	// Scales lists interval multipliers (sorted ascending recommended).
	Scales []float64
	// Runs per configuration.
	Runs int
	// BaseSeed offsets run seeds.
	BaseSeed int64
}

// DefaultSensitivityConfig spans harsh to mild environments. Scales below
// ~0.85 shrink the longest energy cycle under the DMA task's ~16 ms
// length, so the baselines hit the paper's non-termination bug — the
// sweep stops just above that cliff.
func DefaultSensitivityConfig() SensitivityConfig {
	return SensitivityConfig{
		Scales:   []float64{0.9, 1.0, 1.5, 2.0, 2.5},
		Runs:     300,
		BaseSeed: 1,
	}
}

// Sensitivity runs the sweep on the Single-semantics DMA benchmark.
func Sensitivity(cfg SensitivityConfig) ([]SensitivityPoint, error) {
	if len(cfg.Scales) == 0 {
		cfg = DefaultSensitivityConfig()
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 300
	}
	newApp := func() (*apps.Bench, error) { return apps.NewDMAApp(apps.DefaultDMAConfig()) }
	var out []SensitivityPoint
	for _, scale := range cfg.Scales {
		base := power.DefaultTimerConfig()
		tcfg := power.TimerConfig{
			OnMin:  time.Duration(float64(base.OnMin) * scale),
			OnMax:  time.Duration(float64(base.OnMax) * scale),
			OffMin: base.OffMin,
			OffMax: base.OffMax,
		}
		rc := Config{
			Runs:     cfg.Runs,
			BaseSeed: cfg.BaseSeed,
			Supply:   func() power.Supply { return power.NewTimer(tcfg) },
		}
		alp, err := RunMany(rc, newApp, Alpaca)
		if err != nil {
			return nil, fmt.Errorf("sensitivity ×%.1f Alpaca: %w", scale, err)
		}
		ease, err := RunMany(rc, newApp, EaseIO)
		if err != nil {
			return nil, fmt.Errorf("sensitivity ×%.1f EaseIO: %w", scale, err)
		}
		out = append(out, SensitivityPoint{Scale: scale, Alpaca: alp, EaseIO: ease})
	}
	return out, nil
}

// RenderSensitivity prints the sweep.
func RenderSensitivity(points []SensitivityPoint) string {
	header := []string{"Interval scale", "Alpaca total (ms)", "EaseIO total (ms)",
		"Speedup", "Alpaca PF/run", "EaseIO PF/run"}
	rows := make([][]string, len(points))
	for i, p := range points {
		rows[i] = []string{
			fmt.Sprintf("×%.1f", p.Scale),
			fmtMS(p.Alpaca.MeanTotalTime()),
			fmtMS(p.EaseIO.MeanTotalTime()),
			fmt.Sprintf("%.2f", p.Speedup()),
			fmt.Sprintf("%.2f", float64(p.Alpaca.PowerFailures)/float64(p.Alpaca.Runs)),
			fmt.Sprintf("%.2f", float64(p.EaseIO.PowerFailures)/float64(p.EaseIO.Runs)),
		}
	}
	var b strings.Builder
	b.WriteString("Sensitivity — EaseIO advantage vs energy-cycle length (DMA benchmark)\n")
	b.WriteString(Table(header, rows))
	return b.String()
}
