package experiments

import (
	"testing"

	"easeio/internal/stats"
)

// TestReproductionHeadlines pins the paper's headline claims at reduced
// run counts, with bands wide enough for sampling noise but tight enough
// that a regression in any runtime or the cost model trips them. The
// full-resolution record lives in EXPERIMENTS.md.
func TestReproductionHeadlines(t *testing.T) {
	if testing.Short() {
		t.Skip("reproduction sweep skipped in -short mode")
	}
	cfg := Config{Runs: 300, BaseSeed: 7}

	uni, err := UniTask(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const (
		iAlpaca = 0
		iInK    = 1
		iEaseIO = 2
	)

	// Figure 7a / §1: EaseIO cuts the Single benchmark's total execution
	// time by ~44 % ("up to 44%").
	alp := uni.Summaries[0][iAlpaca]
	ease := uni.Summaries[0][iEaseIO]
	if ratio := float64(ease.MeanTotalTime()) / float64(alp.MeanTotalTime()); ratio > 0.70 || ratio < 0.40 {
		t.Errorf("fig7a total-time ratio = %.2f, want ≈ 0.56 (the paper's −44%%)", ratio)
	}

	// §1: EaseIO avoids ~76 % of redundant I/O on Single.
	alpRe := alp.IORepeats + alp.DMARepeats
	easeRe := ease.IORepeats + ease.DMARepeats
	if red := 1 - float64(easeRe)/float64(alpRe); red < 0.55 || red > 0.85 {
		t.Errorf("Single redundant-I/O reduction = %.0f%%, want ≈ 69-76%%", 100*red)
	}

	// Table 4: Timely reduction ≈ 43 %.
	alpT := uni.Summaries[1][iAlpaca]
	easeT := uni.Summaries[1][iEaseIO]
	if red := 1 - float64(easeT.IORepeats)/float64(alpT.IORepeats); red < 0.25 || red > 0.60 {
		t.Errorf("Timely redundant-I/O reduction = %.0f%%, want ≈ 42%%", 100*red)
	}

	// Figure 7c: Always is parity (±5 %).
	alpL := uni.Summaries[2][iAlpaca].MeanTotalTime()
	easeL := uni.Summaries[2][iEaseIO].MeanTotalTime()
	if r := float64(easeL) / float64(alpL); r < 0.95 || r > 1.05 {
		t.Errorf("fig7c ratio = %.3f, want parity", r)
	}

	// §5.3.1: EaseIO's overhead exceeds the baselines' (the price of the
	// flag machinery), for every uni-task case.
	for ci := range uni.Cases {
		if uni.Summaries[ci][iEaseIO].Work[stats.Overhead].T <=
			uni.Summaries[ci][iAlpaca].Work[stats.Overhead].T {
			t.Errorf("%s: EaseIO overhead not above Alpaca's", uni.Cases[ci].Label)
		}
	}

	multi, err := MultiTask(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// MultiTaskKinds order: EaseIOOp, EaseIO, InK, Alpaca.
	fir, weather := multi.Summaries[0], multi.Summaries[1]

	// Figure 12: EaseIO zero incorrect; baselines 10–35 % incorrect.
	if fir[1].IncorrectRuns != 0 {
		t.Errorf("fig12: EaseIO incorrect = %d, want 0", fir[1].IncorrectRuns)
	}
	for _, ki := range []int{2, 3} {
		frac := float64(fir[ki].IncorrectRuns) / float64(fir[ki].Runs)
		if frac < 0.10 || frac > 0.35 {
			t.Errorf("fig12: %s incorrect fraction = %.2f, want ≈ 0.16-0.22",
				MultiTaskKinds[ki], frac)
		}
	}

	// §5.4.2 / Figure 10: weather wasted work cut ≈ 3×.
	if ratio := float64(weather[3].Work[stats.Wasted].T) /
		float64(weather[1].Work[stats.Wasted].T); ratio < 2.0 {
		t.Errorf("weather wasted-work factor = %.1f, want ≥ 2 (paper: up to 3×)", ratio)
	}

	// Figure 10: EaseIO/Op. ≤ EaseIO (Exclude only removes overhead).
	if multi.Summaries[0][0].Work[stats.Overhead].T > multi.Summaries[0][1].Work[stats.Overhead].T {
		t.Error("fir: EaseIO/Op. overhead above plain EaseIO")
	}

	// Figure 11: EaseIO uses less energy than the baselines on both apps.
	for ci, label := range []string{"fir", "weather"} {
		if multi.Summaries[ci][1].MeanEnergy >= multi.Summaries[ci][3].MeanEnergy {
			t.Errorf("%s: EaseIO energy not below Alpaca's", label)
		}
	}
}

// TestReproductionTable6Shape pins the memory-report structure.
func TestReproductionTable6Shape(t *testing.T) {
	data, err := Table6()
	if err != nil {
		t.Fatal(err)
	}
	idx := map[string]int{}
	for ai, label := range data.Apps {
		idx[label] = ai
	}
	// DMA-free apps: EaseIO FRAM metadata within tens of bytes (§5.4.5's
	// "6-byte overhead" observation; ours carries per-site flags too).
	for _, app := range []string{"LEA", "Temp."} {
		if got := data.Cells[idx[app]][2].FRAM; got > 100 {
			t.Errorf("%s: EaseIO FRAM = %dB, want tiny (no DMA buffer)", app, got)
		}
	}
	// DMA app: EaseIO carries the 4 KB privatization buffer.
	dma := idx["DMA"]
	if diff := data.Cells[dma][2].FRAM - data.Cells[dma][0].FRAM; diff < 4096 {
		t.Errorf("DMA: EaseIO-Alpaca FRAM delta = %dB, want ≥ 4096 (the buffer)", diff)
	}
	// InK's double buffering dominates FRAM on every app with real state.
	if data.Cells[dma][1].FRAM <= data.Cells[dma][0].FRAM {
		t.Error("DMA: InK FRAM not above Alpaca's")
	}
	// EaseIO costs ≈ +1 KB of code on the weather app.
	w := idx["Weather App."]
	if diff := data.Cells[w][2].Text - data.Cells[w][0].Text; diff < 500 {
		t.Errorf("weather: EaseIO-Alpaca text delta = %dB, want ≥ 500", diff)
	}
}

// TestReproductionFig13Shape pins the harvested sweep's structure.
func TestReproductionFig13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig13 sweep skipped in -short mode")
	}
	cfg := DefaultFig13Config()
	cfg.Runs = 30
	d, err := Fig13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Failures[0][3] != 0 {
		t.Errorf("failures at the nearest distance: %v", d.Failures[0][3])
	}
	last := len(d.Times) - 1
	if d.Failures[last][3] == 0 {
		t.Error("no failures at the farthest distance")
	}
	if d.Times[last][3] <= d.Times[last][0] {
		t.Errorf("far distance: Alpaca %v not slower than EaseIO/Op. %v",
			d.Times[last][3], d.Times[last][0])
	}
	// Failure counts grow with distance for every runtime.
	for ki := range Fig13Kinds {
		if d.Failures[0][ki] > d.Failures[last][ki] {
			t.Errorf("%s: failures decrease with distance", Fig13Kinds[ki])
		}
	}
}
