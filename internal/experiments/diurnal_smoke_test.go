package experiments

import "testing"

// TestDiurnal exercises the solar-day throughput harness and pins its
// structural properties; the relative ordering is noisy at these run
// counts and is reported, not asserted.
func TestDiurnal(t *testing.T) {
	cfg := DefaultDiurnalConfig()
	cfg.Runs = 3
	rows, err := Diurnal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", RenderDiurnal(rows))
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Completions <= 0 {
			t.Errorf("%s: no completions in a day", r.Runtime)
		}
		if r.Failures <= 0 {
			t.Errorf("%s: a cloudy day must cause failures", r.Runtime)
		}
		if r.OnFraction <= 0 || r.OnFraction >= 1 {
			t.Errorf("%s: on fraction = %.2f", r.Runtime, r.OnFraction)
		}
	}
	ds := DiurnalDataset(rows)
	if len(ds.Rows) != 3 || ds.CSV() == "" {
		t.Error("dataset export broken")
	}
}
