// Table 6 (§5.4.5): memory and code-size requirements per application per
// runtime.
//
// FRAM and RAM columns are *measured* from the simulator: FRAM is the
// allocator watermark (application master data plus runtime metadata —
// lock flags, timestamps, private copies, shadow buffers, the DMA
// privatization buffer), RAM is the written footprint of the volatile
// banks plus a fixed stack allowance. The .text column is a documented
// model (this reproduction has no MSP430 linker): a per-runtime base plus
// per-feature increments calibrated against the magnitudes the paper
// reports. The quantity Table 6 demonstrates — EaseIO costs ≈1 KB more
// code and a configurable privatization buffer, with zero DMA buffer for
// DMA-free apps — is preserved.

package experiments

import (
	"fmt"

	"easeio/internal/apps"
	"easeio/internal/kernel"
	"easeio/internal/mem"
	"easeio/internal/power"
	"easeio/internal/task"
)

// Table6Kinds are the compared runtimes.
var Table6Kinds = []RuntimeKind{Alpaca, InK, EaseIO}

// Table6Cell is one (app, runtime) measurement, in bytes.
type Table6Cell struct {
	Text, RAM, FRAM int
}

// Table6Data holds the table: [app][runtime].
type Table6Data struct {
	Apps  []string
	Cells [][]Table6Cell
}

// table6Apps returns the measured applications in the paper's row order.
func table6Apps() []struct {
	label string
	build AppFactory
} {
	return []struct {
		label string
		build AppFactory
	}{
		{"LEA", func() (*apps.Bench, error) { return apps.NewLEAApp(apps.DefaultLEAConfig()) }},
		{"DMA", func() (*apps.Bench, error) { return apps.NewDMAApp(apps.DefaultDMAConfig()) }},
		{"Temp.", func() (*apps.Bench, error) { return apps.NewTempApp(apps.DefaultTempConfig()) }},
		{"FIR Filter", func() (*apps.Bench, error) { return apps.NewFIRApp(apps.DefaultFIRConfig()) }},
		{"Weather App.", func() (*apps.Bench, error) { return apps.NewWeatherApp(apps.DefaultWeatherConfig()) }},
	}
}

// stackAllowance is the fixed SRAM stack/locals estimate added to the RAM
// column (every runtime needs a working stack).
const stackAllowance = 16

// Table6 measures the memory footprint of every app under every runtime
// by executing one continuous-power run and reading the allocator.
func Table6() (*Table6Data, error) {
	cases := table6Apps()
	out := &Table6Data{Cells: make([][]Table6Cell, len(cases))}
	for ai, c := range cases {
		out.Apps = append(out.Apps, c.label)
		out.Cells[ai] = make([]Table6Cell, len(Table6Kinds))
		for ki, k := range Table6Kinds {
			bench, err := c.build()
			if err != nil {
				return nil, err
			}
			dev := kernel.NewDevice(power.Continuous{}, 0)
			rt := NewRuntime(k)
			if err := kernel.RunApp(dev, rt, bench.App); err != nil {
				return nil, fmt.Errorf("table6 %s/%s: %w", c.label, k, err)
			}
			cell := Table6Cell{
				Text: codeSize(k, bench.App),
				RAM: 2*(dev.Mem.HighWater(mem.SRAM)+dev.Mem.HighWater(mem.LEARAM)) +
					stackAllowance,
				FRAM: 2 * dev.Mem.Allocated(mem.FRAM),
			}
			out.Cells[ai][ki] = cell
		}
	}
	return out, nil
}

// Code-size model parameters (bytes). Bases reflect each runtime's kernel
// complexity; increments reflect the code the compiler emits per task, per
// I/O control block, and per DMA handler.
const (
	textBaseAlpaca = 760
	textBaseInK    = 2100 // InK ships a reactive scheduler kernel
	textBaseEaseIO = 980

	textPerTask      = 64
	textPerIOAlways  = 18
	textPerIOControl = 140 // EaseIO if-structure per _call_IO (Fig 5)
	textPerBlock     = 96
	textPerDMAPlain  = 48
	textPerDMAEaseIO = 210 // classification + two-phase privatization
	textPerRegion    = 72  // regional privatization/recovery pair
	textPerWARVar    = 26
	textPerShadowVar = 22
)

// codeSize evaluates the .text model for one app under one runtime.
func codeSize(k RuntimeKind, app *task.App) int {
	nTasks := len(app.Tasks)
	nSites := len(app.Sites)
	nDMA := len(app.DMAs)
	switch k {
	case Alpaca:
		war := 0
		for _, t := range app.Tasks {
			war += len(t.Meta.WAR)
		}
		return textBaseAlpaca + nTasks*textPerTask + nSites*textPerIOAlways +
			nDMA*textPerDMAPlain + war*textPerWARVar
	case InK:
		return textBaseInK + nTasks*textPerTask + nSites*textPerIOAlways +
			nDMA*textPerDMAPlain + len(app.Vars)*textPerShadowVar
	default: // EaseIO and EaseIO/Op share the code
		regions := 0
		for _, t := range app.Tasks {
			regions += len(t.Meta.Regions)
		}
		return textBaseEaseIO + nTasks*textPerTask + nSites*textPerIOControl +
			len(app.Blks)*textPerBlock + nDMA*textPerDMAEaseIO + regions*textPerRegion
	}
}

// Render prints the table.
func (d *Table6Data) Render() string {
	header := []string{"App"}
	for _, k := range Table6Kinds {
		header = append(header, k.String()+" .text", k.String()+" RAM", k.String()+" FRAM")
	}
	rows := make([][]string, len(d.Apps))
	for ai, label := range d.Apps {
		row := []string{label}
		for ki := range Table6Kinds {
			c := d.Cells[ai][ki]
			row = append(row, fmt.Sprintf("%d", c.Text), fmt.Sprintf("%d", c.RAM),
				fmt.Sprintf("%d", c.FRAM))
		}
		rows[ai] = row
	}
	return "Table 6 — memory and code size requirements (bytes)\n" + Table(header, rows)
}
