package experiments

import (
	"strings"
	"testing"
	"time"

	"easeio/internal/apps"
	"easeio/internal/stats"
	"easeio/internal/units"
)

func fakeSummary(app, rt string) stats.Summary {
	return stats.Summary{
		App: app, Runtime: rt, Runs: 10,
		Work: [stats.NumBuckets]stats.Totals{
			{T: 10 * time.Millisecond, E: 5 * units.Microjoule},
			{T: 2 * time.Millisecond, E: units.Microjoule},
			{T: 3 * time.Millisecond, E: 2 * units.Microjoule},
		},
		MeanEnergy:    8 * units.Microjoule,
		PowerFailures: 7,
		IORepeats:     3,
	}
}

func TestUniTaskDataset(t *testing.T) {
	d := &UniTaskData{Cases: UniTaskCases()}
	for range d.Cases {
		row := make([]stats.Summary, len(UniTaskKinds))
		for ki, k := range UniTaskKinds {
			row[ki] = fakeSummary("x", k.String())
		}
		d.Summaries = append(d.Summaries, row)
	}
	ds := d.Dataset()
	if ds.Name != "unitask" {
		t.Errorf("name = %q", ds.Name)
	}
	if len(ds.Rows) != len(d.Cases)*len(UniTaskKinds) {
		t.Errorf("rows = %d", len(ds.Rows))
	}
	csv := ds.CSV()
	if !strings.HasPrefix(csv, "config,app_ms,") {
		t.Errorf("csv header: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	if lines := strings.Count(csv, "\n"); lines != len(ds.Rows)+1 {
		t.Errorf("csv lines = %d", lines)
	}
	if !strings.Contains(ds.Render(), "Phase 1") {
		t.Error("render missing title")
	}
}

func TestWorkRowColumnsAligned(t *testing.T) {
	row := workRow("label", fakeSummary("a", "rt"))
	if len(row) != len(workHeader) {
		t.Fatalf("row has %d cells, header %d", len(row), len(workHeader))
	}
	if row[0] != "label" || row[1] != "10.00" || row[7] != "8.0" {
		t.Errorf("row = %v", row)
	}
}

func TestTable5Dataset(t *testing.T) {
	d := &Table5Data{Rows: []Table5Row{{
		Kind:      EaseIO,
		Cont:      map[apps.BufferMode]time.Duration{apps.SingleBuffer: 5 * time.Millisecond},
		Int:       map[apps.BufferMode]time.Duration{apps.SingleBuffer: 7 * time.Millisecond},
		Correct:   map[apps.BufferMode]bool{apps.SingleBuffer: true},
		Incorrect: map[apps.BufferMode]int{apps.SingleBuffer: 0},
		Runs:      10,
	}}}
	ds := d.Dataset()
	if len(ds.Rows) != 1 || ds.Rows[0][0] != "EaseIO" || ds.Rows[0][1] != "single" {
		t.Errorf("rows = %v", ds.Rows)
	}
}

func TestRenderTable1(t *testing.T) {
	out := RenderTable1(Table1())
	for _, want := range []string{"EaseIO", "Alpaca", "JustDo", "Semantic-aware", "Yes"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 missing %q", want)
		}
	}
	if len(Table1()) != 4 {
		t.Errorf("rows = %d", len(Table1()))
	}
}

func TestTableRenderer(t *testing.T) {
	out := Table([]string{"a", "long-header"}, [][]string{{"1", "2"}, {"333", "4"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	// All lines align to the same width structure.
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("separator: %q", lines[1])
	}
	if !strings.Contains(lines[2], "1") || !strings.Contains(lines[3], "333") {
		t.Errorf("rows: %q %q", lines[2], lines[3])
	}
}

func TestStackedBarShapes(t *testing.T) {
	var w [stats.NumBuckets]stats.Totals
	w[stats.App] = stats.Totals{T: 10 * time.Millisecond}
	w[stats.Overhead] = stats.Totals{T: 1 * time.Millisecond}
	w[stats.Wasted] = stats.Totals{T: 5 * time.Millisecond}
	bar := StackedBar("X", w, 16*time.Millisecond, 32)
	if !strings.Contains(bar, "#") || !strings.Contains(bar, "o") || !strings.Contains(bar, "x") {
		t.Errorf("bar missing segments: %q", bar)
	}
	if !strings.Contains(bar, "16.00ms") {
		t.Errorf("bar missing total: %q", bar)
	}
	// Zero scale must not divide by zero.
	_ = StackedBar("Y", w, 0, 32)
}
