// Table 5 (§5.4.4): execution time and correctness of the weather
// classifier with double-buffered versus single-buffered DNN layers,
// under continuous and intermittent power.

package experiments

import (
	"fmt"
	"time"

	"easeio/internal/apps"
)

// Table5Kinds are the runtimes in the paper's row order.
var Table5Kinds = []RuntimeKind{Alpaca, InK, EaseIO}

// Table5Row is one runtime's measurements.
type Table5Row struct {
	Kind RuntimeKind
	// Cont and Int are continuous and intermittent execution times, per
	// buffer mode.
	Cont, Int map[apps.BufferMode]time.Duration
	// Correct reports whether all intermittent runs were correct, per
	// buffer mode.
	Correct map[apps.BufferMode]bool
	// Incorrect counts incorrect intermittent runs, per buffer mode.
	Incorrect map[apps.BufferMode]int
	Runs      int
}

// Table5Data holds the full table.
type Table5Data struct {
	Rows []Table5Row
}

// Table5 regenerates the table.
func Table5(cfg Config) (*Table5Data, error) {
	modes := []apps.BufferMode{apps.DoubleBuffer, apps.SingleBuffer}
	out := &Table5Data{}
	for _, k := range Table5Kinds {
		row := Table5Row{
			Kind:      k,
			Cont:      map[apps.BufferMode]time.Duration{},
			Int:       map[apps.BufferMode]time.Duration{},
			Correct:   map[apps.BufferMode]bool{},
			Incorrect: map[apps.BufferMode]int{},
		}
		for _, mode := range modes {
			factory := func() (*apps.Bench, error) {
				wcfg := apps.DefaultWeatherConfig()
				wcfg.Buffers = mode
				return apps.NewWeatherApp(wcfg)
			}
			golden, err := GoldenTime(factory, k)
			if err != nil {
				return nil, fmt.Errorf("table5 %s/%s continuous: %w", k, mode, err)
			}
			sum, err := RunMany(cfg, factory, k)
			if err != nil {
				return nil, fmt.Errorf("table5 %s/%s intermittent: %w", k, mode, err)
			}
			row.Cont[mode] = golden.MeanOnTime
			row.Int[mode] = sum.MeanOnTime
			row.Correct[mode] = sum.IncorrectRuns == 0
			row.Incorrect[mode] = sum.IncorrectRuns
			row.Runs = sum.Runs
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the table in the paper's layout.
func (d *Table5Data) Render() string {
	header := []string{"Runtime",
		"Double Cont.(ms)", "Double Int.(ms)", "Double Corr.",
		"Single Cont.(ms)", "Single Int.(ms)", "Single Corr."}
	mark := func(ok bool, bad int) string {
		if ok {
			return "ok"
		}
		return fmt.Sprintf("FAIL (%d)", bad)
	}
	rows := make([][]string, len(d.Rows))
	for i, r := range d.Rows {
		rows[i] = []string{
			r.Kind.String(),
			fmtMS(r.Cont[apps.DoubleBuffer]), fmtMS(r.Int[apps.DoubleBuffer]),
			mark(r.Correct[apps.DoubleBuffer], r.Incorrect[apps.DoubleBuffer]),
			fmtMS(r.Cont[apps.SingleBuffer]), fmtMS(r.Int[apps.SingleBuffer]),
			mark(r.Correct[apps.SingleBuffer], r.Incorrect[apps.SingleBuffer]),
		}
	}
	return "Table 5 — weather classifier with double- vs single-buffered DNN\n" +
		Table(header, rows)
}
