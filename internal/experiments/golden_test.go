// Golden-file tests: every text renderer and CSV dataset is pinned
// byte-for-byte on a small fixed-seed sweep. The sweeps are deterministic
// (seeded, worker-count-invariant), so any diff is a real change to the
// rendering or the simulation — rerun with -update to accept one.

package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// golden compares got against testdata/<name>.golden, rewriting the file
// under -update.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no golden file %s (run go test ./internal/experiments -update): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s differs from golden file %s:\n--- got ---\n%s\n--- want ---\n%s",
			name, path, got, want)
	}
}

// goldenCfg is the fixed small sweep every golden test uses: big enough
// to exercise aggregation, small enough to keep the suite fast.
func goldenCfg() Config { return Config{Runs: 4, BaseSeed: 7, Workers: 2} }

func TestGoldenTable1(t *testing.T) {
	golden(t, "table1", RenderTable1(Table1()))
}

func TestGoldenTable3(t *testing.T) {
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "table3", RenderTable3(rows))
}

func TestGoldenUniTask(t *testing.T) {
	uni, err := UniTask(goldenCfg())
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "fig7", uni.RenderFigure7())
	golden(t, "table4", uni.RenderTable4())
	golden(t, "fig8", uni.RenderFigure8())
	golden(t, "unitask_csv", uni.Dataset().CSV())
}

func TestGoldenMultiTask(t *testing.T) {
	cfg := goldenCfg()
	cfg.Runs = 2 // the DNN app dominates this suite's runtime
	multi, err := MultiTask(cfg)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "fig10", multi.RenderFigure10())
	golden(t, "fig11", multi.RenderFigure11())
	golden(t, "fig12", multi.RenderFigure12())
	golden(t, "multitask_csv", multi.Dataset().CSV())
}

func TestGoldenTable5(t *testing.T) {
	cfg := goldenCfg()
	cfg.Runs = 2
	t5, err := Table5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "table5", t5.Render())
	golden(t, "table5_csv", t5.Dataset().CSV())
}

func TestGoldenTable6(t *testing.T) {
	t6, err := Table6()
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "table6", t6.Render())
	golden(t, "table6_csv", t6.Dataset().CSV())
}

func TestGoldenFig13(t *testing.T) {
	cfg := DefaultFig13Config()
	cfg.DistancesInches = []float64{52, 58}
	cfg.Runs = 2
	f13, err := Fig13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "fig13", f13.Render())
	golden(t, "fig13_csv", f13.Dataset().CSV())
}

func TestGoldenSensitivity(t *testing.T) {
	points, err := Sensitivity(SensitivityConfig{
		Scales:   []float64{1.0, 2.0},
		Runs:     4,
		BaseSeed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "sensitivity", RenderSensitivity(points))
	golden(t, "sensitivity_csv", SensitivityDataset(points).CSV())
}

func TestGoldenLoggers(t *testing.T) {
	rows, err := Loggers(goldenCfg())
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "loggers", RenderLoggers(rows))
	golden(t, "loggers_csv", LoggersDataset(rows).CSV())
}

func TestGoldenDiurnal(t *testing.T) {
	cfg := DefaultDiurnalConfig()
	cfg.Budget = 2 * 1000 * 1000 * 1000 // 2 s compressed day keeps the suite fast
	cfg.Runs = 2
	rows, err := Diurnal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "diurnal", RenderDiurnal(rows))
	golden(t, "diurnal_csv", DiurnalDataset(rows).CSV())
}
