// Dataset: a uniform tabular view of every experiment's results, used for
// CSV export (easeio-bench -csv) alongside the human-oriented renderers.

package experiments

import (
	"encoding/csv"
	"fmt"
	"strings"

	"easeio/internal/apps"
	"easeio/internal/stats"
)

// Dataset is one experiment's results as named columns.
type Dataset struct {
	// Name is a file-system-friendly identifier ("table4", "fig7").
	Name string
	// Title describes the dataset.
	Title  string
	Header []string
	Rows   [][]string
}

// CSV renders the dataset as RFC-4180 CSV with a header row.
func (d Dataset) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	// Errors are impossible when writing to a strings.Builder, but keep
	// the protocol honest.
	if err := w.Write(d.Header); err != nil {
		panic(err)
	}
	if err := w.WriteAll(d.Rows); err != nil {
		panic(err)
	}
	w.Flush()
	return b.String()
}

// Render prints the dataset as an aligned text table.
func (d Dataset) Render() string {
	return d.Title + "\n" + Table(d.Header, d.Rows)
}

// workRow flattens one summary into the shared column set.
func workRow(label string, s stats.Summary) []string {
	return []string{
		label,
		fmtMS(s.Work[stats.App].T),
		fmtMS(s.Work[stats.Overhead].T),
		fmtMS(s.Work[stats.Wasted].T),
		fmtMS(s.MeanTotalTime()),
		fmtMS(s.P50TotalTime),
		fmtMS(s.P95TotalTime),
		fmtUJ(s.MeanEnergy),
		fmt.Sprintf("%d", s.PowerFailures),
		fmt.Sprintf("%d", s.IORepeats+s.DMARepeats),
		fmt.Sprintf("%d", s.IOSkips+s.DMASkips),
		fmt.Sprintf("%d", s.IncorrectRuns),
	}
}

var workHeader = []string{"config", "app_ms", "overhead_ms", "wasted_ms",
	"total_ms", "p50_ms", "p95_ms", "energy_uJ", "power_failures",
	"redundant_reexecs", "skips", "incorrect_runs"}

// Dataset exports the phase-1 sweep (Figures 7/8 and Table 4 in one
// table).
func (d *UniTaskData) Dataset() Dataset {
	ds := Dataset{
		Name:   "unitask",
		Title:  "Phase 1 — uni-task applications (Figs 7, 8; Table 4)",
		Header: workHeader,
	}
	for ci, c := range d.Cases {
		for ki, k := range UniTaskKinds {
			ds.Rows = append(ds.Rows, workRow(c.Label+"/"+k.String(), d.Summaries[ci][ki]))
		}
	}
	return ds
}

// Dataset exports the phase-2 sweep (Figures 10/11/12 in one table).
func (d *MultiTaskData) Dataset() Dataset {
	ds := Dataset{
		Name:   "multitask",
		Title:  "Phase 2 — multi-task applications (Figs 10, 11, 12)",
		Header: workHeader,
	}
	for ci, c := range d.Cases {
		for ki, k := range MultiTaskKinds {
			ds.Rows = append(ds.Rows, workRow(c.Label+"/"+k.String(), d.Summaries[ci][ki]))
		}
	}
	return ds
}

// Dataset exports Table 5.
func (d *Table5Data) Dataset() Dataset {
	ds := Dataset{
		Name:  "table5",
		Title: "Table 5 — weather classifier, double vs single buffer",
		Header: []string{"runtime", "buffers", "cont_ms", "int_ms",
			"incorrect_runs", "runs"},
	}
	for _, r := range d.Rows {
		// Fixed mode order: ranging over the map would make the CSV row
		// order nondeterministic.
		for _, mode := range []apps.BufferMode{apps.DoubleBuffer, apps.SingleBuffer} {
			cont, ok := r.Cont[mode]
			if !ok {
				continue
			}
			ds.Rows = append(ds.Rows, []string{
				r.Kind.String(), mode.String(), fmtMS(cont), fmtMS(r.Int[mode]),
				fmt.Sprintf("%d", r.Incorrect[mode]), fmt.Sprintf("%d", r.Runs),
			})
		}
	}
	return ds
}

// Dataset exports Table 6.
func (d *Table6Data) Dataset() Dataset {
	ds := Dataset{
		Name:   "table6",
		Title:  "Table 6 — memory and code size (bytes)",
		Header: []string{"app", "runtime", "text_B", "ram_B", "fram_B"},
	}
	for ai, label := range d.Apps {
		for ki, k := range Table6Kinds {
			c := d.Cells[ai][ki]
			ds.Rows = append(ds.Rows, []string{label, k.String(),
				fmt.Sprintf("%d", c.Text), fmt.Sprintf("%d", c.RAM),
				fmt.Sprintf("%d", c.FRAM)})
		}
	}
	return ds
}

// Dataset exports the Figure 13 sweep.
func (d *Fig13Data) Dataset() Dataset {
	ds := Dataset{
		Name:   "fig13",
		Title:  "Figure 13 — RF harvester distance sweep (wall-clock ms)",
		Header: []string{"distance_in", "config", "wall_ms", "dt_vs_op_ms", "pf_per_run"},
	}
	for di, times := range d.Times {
		ref := times[0]
		for ki, k := range Fig13Kinds {
			ds.Rows = append(ds.Rows, []string{
				fmt.Sprintf("%.0f", d.Cfg.DistancesInches[di]),
				k.String(), fmtMS(times[ki]), fmtMS(times[ki] - ref),
				fmt.Sprintf("%.2f", d.Failures[di][ki]),
			})
		}
	}
	return ds
}

// SensitivityDataset exports the sensitivity sweep.
func SensitivityDataset(points []SensitivityPoint) Dataset {
	ds := Dataset{
		Name:  "sensitivity",
		Title: "Sensitivity — EaseIO advantage vs energy-cycle length",
		Header: []string{"interval_scale", "alpaca_total_ms", "easeio_total_ms",
			"speedup", "alpaca_pf_per_run", "easeio_pf_per_run"},
	}
	for _, p := range points {
		ds.Rows = append(ds.Rows, []string{
			fmt.Sprintf("%.1f", p.Scale),
			fmtMS(p.Alpaca.MeanTotalTime()), fmtMS(p.EaseIO.MeanTotalTime()),
			fmt.Sprintf("%.3f", p.Speedup()),
			fmt.Sprintf("%.3f", float64(p.Alpaca.PowerFailures)/float64(p.Alpaca.Runs)),
			fmt.Sprintf("%.3f", float64(p.EaseIO.PowerFailures)/float64(p.EaseIO.Runs)),
		})
	}
	return ds
}
