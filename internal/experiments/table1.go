// Table 1: the paper's qualitative feature comparison, regenerated with
// each claim tied to the mechanism (and, where we measure it, the
// experiment) that demonstrates it in this repository. The JustDo row is
// this reproduction's extension.

package experiments

import "strings"

// Table1Row is one runtime's feature set.
type Table1Row struct {
	Runtime string
	// The paper's six columns (Table 1).
	RepeatedIO          string
	WastedIO            string
	MemoryInconsistency string
	SafeDMA             string
	TimelyIO            string
	SemanticAware       string
	// Evidence points to the experiment demonstrating the row.
	Evidence string
}

// Table1 returns the feature matrix.
func Table1() []Table1Row {
	return []Table1Row{
		{
			Runtime:             "Alpaca",
			RepeatedIO:          "Yes",
			WastedIO:            "High",
			MemoryInconsistency: "Yes (DMA WAR)",
			SafeDMA:             "No",
			TimelyIO:            "No",
			SemanticAware:       "No",
			Evidence:            "fig7/table4 (repeats), fig12 (21% incorrect)",
		},
		{
			Runtime:             "InK",
			RepeatedIO:          "Yes",
			WastedIO:            "High",
			MemoryInconsistency: "Yes (DMA WAR)",
			SafeDMA:             "No",
			TimelyIO:            "No",
			SemanticAware:       "No",
			Evidence:            "fig7/table4, fig12 (22% incorrect)",
		},
		{
			Runtime:             "JustDo (ext.)",
			RepeatedIO:          "No",
			WastedIO:            "Low",
			MemoryInconsistency: "No",
			SafeDMA:             "Yes",
			TimelyIO:            "No (serves stale data)",
			SemanticAware:       "No",
			Evidence:            "loggers (0 re-exe; 4.4x store-dense overhead)",
		},
		{
			Runtime:             "EaseIO",
			RepeatedIO:          "No/Low",
			WastedIO:            "No",
			MemoryInconsistency: "No",
			SafeDMA:             "Yes",
			TimelyIO:            "Yes",
			SemanticAware:       "Yes",
			Evidence:            "table4 (-69% re-exe), fig12 (0 incorrect), table5",
		},
	}
}

// RenderTable1 prints the matrix.
func RenderTable1(rows []Table1Row) string {
	header := []string{"Runtime", "Repeated I/O", "Wasted I/O",
		"Mem. inconsistency", "Safe DMA", "Timely I/O", "Semantic-aware", "Evidence"}
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Runtime, r.RepeatedIO, r.WastedIO,
			r.MemoryInconsistency, r.SafeDMA, r.TimelyIO, r.SemanticAware, r.Evidence}
	}
	var b strings.Builder
	b.WriteString("Table 1 — feature comparison (qualitative; evidence column points at the regenerating experiment)\n")
	b.WriteString(Table(header, out))
	return b.String()
}
