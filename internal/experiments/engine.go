// The sweep engine: runs a configuration's seeds on a pool of workers,
// each owning one pooled device + runtime + app instance (the
// blueprint/instance split — see kernel.Session). Seeds are split into
// contiguous shards, one per worker; each worker folds its shard into a
// private aggregator and the shards merge in worker order, so the final
// Summary is byte-identical to a sequential sweep regardless of Workers.

package experiments

import (
	"errors"
	"fmt"
	"sync"

	"easeio/internal/kernel"
	"easeio/internal/stats"
)

// RunMany executes cfg.Runs seeded runs and aggregates them. Runs are
// sharded over cfg.Workers pooled workers unless cfg.Rebuild asks for the
// legacy rebuild-per-run path. Failed runs do not abort the sweep: the
// Summary covers every run that completed, and the error joins all
// per-run failures (each carrying its app, runtime and seed).
func RunMany(cfg Config, newApp AppFactory, kind RuntimeKind) (stats.Summary, error) {
	cfg = cfg.fill()
	if cfg.Rebuild {
		return runManyRebuild(cfg, newApp, kind)
	}
	return runManyPooled(cfg, newApp, kind)
}

// shard is a contiguous range of run indices, [lo, hi).
type shard struct{ lo, hi int }

// shards splits n runs into at most workers contiguous shards of
// near-equal size.
func shards(n, workers int) []shard {
	if workers > n {
		workers = n
	}
	out := make([]shard, 0, workers)
	lo := 0
	for w := 0; w < workers; w++ {
		size := n / workers
		if w < n%workers {
			size++
		}
		out = append(out, shard{lo, lo + size})
		lo += size
	}
	return out
}

// runManyPooled is the sharded worker-pool sweep. Each worker builds its
// own app instance (peripheral models carry mutable per-run state, so
// instances cannot be shared across goroutines) and reuses one device and
// runtime for every seed in its shard.
func runManyPooled(cfg Config, newApp AppFactory, kind RuntimeKind) (stats.Summary, error) {
	sh := shards(cfg.Runs, cfg.Workers)
	aggs := make([]*stats.Aggregator, len(sh))
	errss := make([][]error, len(sh))
	var wg sync.WaitGroup
	for w, s := range sh {
		wg.Add(1)
		go func(w int, s shard) {
			defer wg.Done()
			aggs[w], errss[w] = sweepShard(cfg, newApp, kind, s)
		}(w, s)
	}
	wg.Wait()

	agg := stats.NewAggregator()
	var errs []error
	for w := range sh {
		agg.Merge(aggs[w])
		errs = append(errs, errss[w]...)
	}
	return agg.Summary(), errors.Join(errs...)
}

// sweepShard runs one worker's contiguous seed range on a single session.
func sweepShard(cfg Config, newApp AppFactory, kind RuntimeKind, s shard) (*stats.Aggregator, []error) {
	agg := stats.NewAggregator()
	bench, err := newApp()
	if err != nil {
		return agg, []error{fmt.Errorf("experiments: build app for %s runs %d-%d: %w",
			kind, s.lo, s.hi-1, err)}
	}
	sess := kernel.NewSession(NewRuntime(kind), bench.App, cfg.Supply())
	var errs []error
	for i := s.lo; i < s.hi; i++ {
		seed := cfg.BaseSeed + int64(i)
		run, err := sess.Run(seed)
		if err != nil {
			errs = append(errs, fmt.Errorf("experiments: %s on %s (seed %d): %w",
				bench.App.Name, kind, seed, err))
			continue
		}
		run.Runtime = kind.String() // distinguish EaseIO/Op. in reports
		agg.Add(run)
	}
	return agg, errs
}

// runManyRebuild is the predecessor engine: one goroutine and one freshly
// built app, device and runtime per seed. Kept behind Config.Rebuild as
// the baseline the sweep-throughput benchmark compares against.
func runManyRebuild(cfg Config, newApp AppFactory, kind RuntimeKind) (stats.Summary, error) {
	runs := make([]*stats.Run, cfg.Runs)
	errs := make([]error, cfg.Runs)
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for i := 0; i < cfg.Runs; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			runs[i], errs[i] = RunOne(newApp, kind, cfg.Supply(), cfg.BaseSeed+int64(i))
		}(i)
	}
	wg.Wait()
	agg := stats.NewAggregator()
	var joined []error
	for i, r := range runs {
		if errs[i] != nil {
			joined = append(joined, errs[i])
			continue
		}
		agg.Add(r)
	}
	return agg.Summary(), errors.Join(joined...)
}
