// The sweep engine: runs a configuration's seeds on a pool of workers,
// each owning one pooled device + runtime + app instance (the
// blueprint/instance split — see kernel.Session). Seeds are split into
// contiguous shards, one per worker; each worker folds its shard into a
// private aggregator and the shards merge in worker order, so the final
// Summary is byte-identical to a sequential sweep regardless of Workers.

package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"easeio/internal/kernel"
	"easeio/internal/stats"
)

// RunMany executes cfg.Runs seeded runs and aggregates them. Runs are
// sharded over cfg.Workers pooled workers unless cfg.Rebuild asks for the
// legacy rebuild-per-run path. Failed runs do not abort the sweep: the
// Summary covers every run that completed, and the error joins all
// per-run failures (each carrying its app, runtime and seed).
func RunMany(cfg Config, newApp AppFactory, kind RuntimeKind) (stats.Summary, error) {
	return RunManyCtx(context.Background(), cfg, newApp, kind)
}

// RunManyCtx is RunMany with cooperative cancellation: every worker
// observes ctx between seeds, so a cancelled or deadline-expired sweep
// stops within one seed boundary per worker. The returned Summary covers
// the runs that finished before the cancellation took effect (still
// merged in shard order, so it equals the prefix a sequential sweep would
// have produced per shard), and ctx's error is joined into the returned
// error so callers can errors.Is it against context.Canceled or
// context.DeadlineExceeded.
func RunManyCtx(ctx context.Context, cfg Config, newApp AppFactory, kind RuntimeKind) (stats.Summary, error) {
	cfg = cfg.fill()
	if cfg.Rebuild {
		return runManyRebuild(ctx, cfg, newApp, kind)
	}
	return runManyPooled(ctx, cfg, newApp, kind)
}

// PanicError wraps a panic recovered from a sweep worker goroutine, so a
// broken app or runtime fails its shard instead of crashing the process
// hosting the sweep. Callers can errors.As for it to distinguish panics
// from ordinary run failures.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// What identifies the work that panicked (runtime kind plus seeds).
	What string
}

// Error renders the panic with its provenance.
func (e PanicError) Error() string {
	return fmt.Sprintf("experiments: %s panicked: %v", e.What, e.Value)
}

// shard is a contiguous range of run indices, [lo, hi).
type shard struct{ lo, hi int }

// shardRange splits the run-index range [lo, hi) into at most workers
// contiguous shards of near-equal size.
func shardRange(lo, hi, workers int) []shard {
	n := hi - lo
	if workers > n {
		workers = n
	}
	out := make([]shard, 0, workers)
	cur := lo
	for w := 0; w < workers; w++ {
		size := n / workers
		if w < n%workers {
			size++
		}
		out = append(out, shard{cur, cur + size})
		cur += size
	}
	return out
}

// runManyPooled is the sharded worker-pool sweep. Each worker builds its
// own app instance (peripheral models carry mutable per-run state, so
// instances cannot be shared across goroutines) and reuses one device and
// runtime for every seed in its shard.
func runManyPooled(ctx context.Context, cfg Config, newApp AppFactory, kind RuntimeKind) (stats.Summary, error) {
	agg, errs := runRangePooled(ctx, cfg, newApp, kind, 0, cfg.Runs)
	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	return agg.Summary(), errors.Join(errs...)
}

// RunRangeAgg executes the contiguous run-index slice [lo, hi) of the
// sweep cfg describes and returns the raw aggregator fold state instead
// of a finished Summary. This is the distributed sweep's work unit: a
// fleet worker executes its shard with RunRangeAgg, ships the state over
// the wire, and the coordinator merges shard states in range order.
// Because every fold in stats.Aggregator is a sum or an append, merging
// any contiguous partition of [0, Runs) in order reproduces the
// sequential fold — and therefore RunMany's Summary — byte for byte,
// whatever the shard count or each shard's inner Workers setting.
//
// cfg.Runs should still name the full sweep's run count (it only feeds
// Progress totals and defaulting); the executed range is [lo, hi).
func RunRangeAgg(ctx context.Context, cfg Config, newApp AppFactory, kind RuntimeKind, lo, hi int) (*stats.Aggregator, error) {
	cfg = cfg.fill()
	if lo < 0 || hi < lo {
		return nil, fmt.Errorf("experiments: invalid run range [%d, %d)", lo, hi)
	}
	agg, errs := runRangePooled(ctx, cfg, newApp, kind, lo, hi)
	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	return agg, errors.Join(errs...)
}

// runRangePooled is the sharded worker-pool engine behind both RunMany
// (full range) and RunRangeAgg (fleet shards): split [lo, hi) over
// cfg.Workers sessions, fold per worker, merge in shard order.
func runRangePooled(ctx context.Context, cfg Config, newApp AppFactory, kind RuntimeKind, lo, hi int) (*stats.Aggregator, []error) {
	start := time.Now()
	sh := shardRange(lo, hi, cfg.Workers)
	aggs := make([]*stats.Aggregator, len(sh))
	errss := make([][]error, len(sh))
	var done atomic.Int64
	var timing shardTimings
	var wg sync.WaitGroup
	for w, s := range sh {
		wg.Add(1)
		go func(w int, s shard) {
			defer wg.Done()
			// A panicking app or runtime fails its shard, not the process:
			// sweeps run inside long-lived servers (internal/service).
			defer func() {
				if r := recover(); r != nil {
					errss[w] = append(errss[w], PanicError{Value: r,
						What: fmt.Sprintf("%s runs %d-%d", kind, s.lo, s.hi-1)})
				}
			}()
			aggs[w], errss[w] = sweepShard(ctx, cfg, newApp, kind, s, &done, &timing)
		}(w, s)
	}
	wg.Wait()
	if cfg.Timings != nil {
		cfg.Timings.Build += time.Duration(timing.build.Load())
		cfg.Timings.Run += time.Duration(timing.run.Load())
		cfg.Timings.Wall += time.Since(start)
	}

	agg := stats.NewAggregator()
	var errs []error
	for w := range sh {
		if aggs[w] != nil {
			agg.Merge(aggs[w])
		}
		errs = append(errs, errss[w]...)
	}
	return agg, errs
}

// shardTimings accumulates worker stage durations (in nanoseconds) for
// Config.Timings.
type shardTimings struct {
	build, run atomic.Int64
}

// sweepSink adapts a sweep-wide trace sink for per-seed device reuse: it
// exposes only Event, so Device.Reset's tracer-Reset hook cannot reach a
// Reset method on the underlying sink.
type sweepSink struct{ kernel.Tracer }

// sweepShard runs one worker's contiguous seed range on a single session.
// done is the sweep-wide finished-run counter feeding cfg.Progress.
func sweepShard(ctx context.Context, cfg Config, newApp AppFactory, kind RuntimeKind, s shard, done *atomic.Int64, timing *shardTimings) (*stats.Aggregator, []error) {
	agg := stats.NewAggregator()
	if ctx.Err() != nil {
		return agg, nil
	}
	buildStart := time.Now()
	bench, err := newApp()
	if err != nil {
		return agg, []error{fmt.Errorf("experiments: build app for %s runs %d-%d: %w",
			kind, s.lo, s.hi-1, err)}
	}
	sess := kernel.NewSession(NewRuntime(kind), bench.App, cfg.Supply())
	if cfg.TraceSink != nil {
		// The wrapper hides any Reset method on the sink: device reuse
		// between seeds must not clear events other runs already emitted.
		sess.Tracer = sweepSink{cfg.TraceSink}
	}
	if cfg.Batch > 1 && cfg.TraceSink == nil {
		return sweepShardBatch(ctx, cfg, newApp, kind, s, done, timing, agg, bench.App.Name, sess, buildStart)
	}
	timing.build.Add(int64(time.Since(buildStart)))
	runStart := time.Now()
	defer func() { timing.run.Add(int64(time.Since(runStart))) }()
	var errs []error
	for i := s.lo; i < s.hi; i++ {
		if ctx.Err() != nil {
			break
		}
		seed := cfg.BaseSeed + int64(i)
		run, err := sess.Run(seed)
		if err != nil {
			errs = append(errs, fmt.Errorf("experiments: %s on %s (seed %d): %w",
				bench.App.Name, kind, seed, err))
			notifyProgress(cfg, done)
			continue
		}
		run.Runtime = kind.String() // distinguish EaseIO/Op. in reports
		agg.Add(run)
		notifyProgress(cfg, done)
	}
	return agg, errs
}

// sweepShardBatch is sweepShard's lockstep variant (cfg.Batch > 1, no
// trace sink): the shard's seeds run in chunks of K = min(Batch, shard
// size) through one kernel.BatchSession whose K sessions each own their
// own app instance (peripheral models carry per-device state) and supply.
// Per-seed results are folded in seed order, so the aggregate is
// byte-identical to the sequential shard; the ragged final chunk simply
// runs narrower. Cancellation is observed between chunks — a batched
// sweep stops within one chunk boundary per worker instead of one seed.
func sweepShardBatch(ctx context.Context, cfg Config, newApp AppFactory, kind RuntimeKind, s shard, done *atomic.Int64, timing *shardTimings, agg *stats.Aggregator, appName string, first *kernel.Session, buildStart time.Time) (*stats.Aggregator, []error) {
	k := cfg.Batch
	if n := s.hi - s.lo; k > n {
		k = n
	}
	sessions := make([]*kernel.Session, k)
	sessions[0] = first
	for j := 1; j < k; j++ {
		bench, err := newApp()
		if err != nil {
			timing.build.Add(int64(time.Since(buildStart)))
			return agg, []error{fmt.Errorf("experiments: build app for %s runs %d-%d: %w",
				kind, s.lo, s.hi-1, err)}
		}
		sessions[j] = kernel.NewSession(NewRuntime(kind), bench.App, cfg.Supply())
	}
	batch := kernel.NewBatchSession(sessions...)
	seeds := make([]int64, 0, k)
	timing.build.Add(int64(time.Since(buildStart)))
	runStart := time.Now()
	defer func() { timing.run.Add(int64(time.Since(runStart))) }()
	var errs []error
	for i := s.lo; i < s.hi; i += k {
		if ctx.Err() != nil {
			break
		}
		hi := i + k
		if hi > s.hi {
			hi = s.hi
		}
		seeds = seeds[:0]
		for j := i; j < hi; j++ {
			seeds = append(seeds, cfg.BaseSeed+int64(j))
		}
		runs, rerrs := batch.Run(seeds)
		for j, run := range runs {
			if rerrs[j] != nil {
				errs = append(errs, fmt.Errorf("experiments: %s on %s (seed %d): %w",
					appName, kind, seeds[j], rerrs[j]))
				notifyProgress(cfg, done)
				continue
			}
			run.Runtime = kind.String() // distinguish EaseIO/Op. in reports
			agg.Add(run)
			notifyProgress(cfg, done)
		}
	}
	return agg, errs
}

// notifyProgress bumps the sweep-wide finished-run counter and invokes
// the progress hook, if any. Failed seeds count too, so done reaches the
// total even for sweeps with broken seeds.
func notifyProgress(cfg Config, done *atomic.Int64) {
	if cfg.Progress == nil {
		done.Add(1)
		return
	}
	cfg.Progress(int(done.Add(1)), cfg.Runs)
}

// runManyRebuild is the predecessor engine: one goroutine and one freshly
// built app, device and runtime per seed. Kept behind Config.Rebuild as
// the baseline the sweep-throughput benchmark compares against.
func runManyRebuild(ctx context.Context, cfg Config, newApp AppFactory, kind RuntimeKind) (stats.Summary, error) {
	start := time.Now()
	if cfg.Timings != nil {
		// The rebuild path interleaves build and run per seed; only the
		// end-to-end wall time is attributable.
		defer func() { cfg.Timings.Wall += time.Since(start) }()
	}
	runs := make([]*stats.Run, cfg.Runs)
	errs := make([]error, cfg.Runs)
	var done atomic.Int64
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for i := 0; i < cfg.Runs; i++ {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = PanicError{Value: r, What: fmt.Sprintf("%s seed %d", kind, cfg.BaseSeed+int64(i))}
				}
			}()
			runs[i], errs[i] = RunOneTraced(newApp, kind, cfg.Supply(), cfg.BaseSeed+int64(i), cfg.TraceSink)
			notifyProgress(cfg, &done)
		}(i)
	}
	wg.Wait()
	agg := stats.NewAggregator()
	var joined []error
	for i, r := range runs {
		if errs[i] != nil {
			joined = append(joined, errs[i])
			continue
		}
		if r != nil {
			agg.Add(r)
		}
	}
	if err := ctx.Err(); err != nil {
		joined = append(joined, err)
	}
	return agg.Summary(), errors.Join(joined...)
}
