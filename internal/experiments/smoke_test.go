package experiments

import (
	"testing"

	"easeio/internal/apps"
	"easeio/internal/power"
	"easeio/internal/stats"
)

// TestSmokeAllAppsAllRuntimes runs every benchmark under every runtime,
// both continuously and intermittently, and sanity-checks the accounting.
func TestSmokeAllAppsAllRuntimes(t *testing.T) {
	factories := map[string]AppFactory{
		"dma":     func() (*apps.Bench, error) { return apps.NewDMAApp(apps.DefaultDMAConfig()) },
		"temp":    func() (*apps.Bench, error) { return apps.NewTempApp(apps.DefaultTempConfig()) },
		"lea":     func() (*apps.Bench, error) { return apps.NewLEAApp(apps.DefaultLEAConfig()) },
		"fir":     func() (*apps.Bench, error) { return apps.NewFIRApp(apps.DefaultFIRConfig()) },
		"weather": func() (*apps.Bench, error) { return apps.NewWeatherApp(apps.DefaultWeatherConfig()) },
		"branch":  func() (*apps.Bench, error) { return apps.NewBranchApp(apps.DefaultBranchConfig()) },
	}
	for name, f := range factories {
		for _, kind := range []RuntimeKind{Alpaca, InK, EaseIO} {
			// Continuous power: must run with zero failures and correct
			// output under every runtime.
			run, err := RunOne(f, kind, power.Continuous{}, 1)
			if err != nil {
				t.Fatalf("%s/%s continuous: %v", name, kind, err)
			}
			if run.PowerFailures != 0 {
				t.Errorf("%s/%s continuous: %d power failures", name, kind, run.PowerFailures)
			}
			if !run.Correct {
				t.Errorf("%s/%s continuous: incorrect output", name, kind)
			}
			if run.Work[stats.Wasted].T != 0 {
				t.Errorf("%s/%s continuous: wasted work %v", name, kind, run.Work[stats.Wasted].T)
			}
			t.Logf("%s/%s continuous: app=%v ovh=%v total=%v ioexecs=%d",
				name, kind, run.Work[stats.App].T, run.Work[stats.Overhead].T,
				run.OnTime, run.IOExecs)

			// Intermittent power: must terminate.
			irun, err := RunOne(f, kind, TimerSupply(), 42)
			if err != nil {
				t.Fatalf("%s/%s intermittent: %v", name, kind, err)
			}
			t.Logf("%s/%s intermittent: pf=%d repeats=%d+%d skips=%d+%d wasted=%v total=%v correct=%v",
				name, kind, irun.PowerFailures, irun.IORepeats, irun.DMARepeats,
				irun.IOSkips, irun.DMASkips, irun.Work[stats.Wasted].T, irun.OnTime, irun.Correct)
		}
	}
}
