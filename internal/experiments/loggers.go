// Logging-vs-task-based comparison (extension grounded in the paper's §2
// and §7.2): JustDo-style resume-from-instruction logging against Alpaca
// and EaseIO on the uni-task benchmarks, under continuous power and under
// the emulated failures.
//
// The point the paper makes by argument, demonstrated by measurement:
// logging wastes almost nothing when power fails but pays per-operation
// overhead on every execution, so its continuous-power baseline is the
// worst of the field — the wrong trade for energy-scarce devices whose
// first constraint is the per-charge budget.

package experiments

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"easeio/internal/apps"
	"easeio/internal/frontend"
	"easeio/internal/justdo"
	"easeio/internal/kernel"
	"easeio/internal/power"
	"easeio/internal/stats"
	"easeio/internal/task"
)

// LoggerRow is one (app, runtime) comparison entry.
type LoggerRow struct {
	App, Runtime string
	// Cont is the continuous-power execution time (steady-state cost).
	Cont time.Duration
	// Int is the mean intermittent execution time.
	Int time.Duration
	// Overhead and Wasted are the mean intermittent work splits.
	Overhead, Wasted time.Duration
	// Repeats counts redundant re-executions summed over the runs.
	Repeats int
}

// storeDenseApp builds a workload dominated by fine-grained non-volatile
// reads and writes — a sort over an NV buffer — where JustDo's
// per-operation logging dominates. The paper's benchmarks are I/O-bound
// with few, large operations, which flatters logging; real sensing
// applications also filter, sort and aggregate in place.
func storeDenseApp() (*apps.Bench, error) {
	a := task.NewApp("store-dense")
	const n = 48
	init := make([]uint16, n)
	for i := range init {
		init[i] = uint16((i * 37) % 101)
	}
	buf := a.NVBuf("buf", n).WithInit(init)
	var fin *task.Task
	// Selection sort: O(n²) loads, O(n) stores, all non-volatile.
	a.AddTask("sort", func(e task.Exec) {
		for i := 0; i < n-1; i++ {
			minIdx := i
			minVal := e.LoadAt(buf, i)
			for j := i + 1; j < n; j++ {
				if v := e.LoadAt(buf, j); v < minVal {
					minVal, minIdx = v, j
				}
			}
			if minIdx != i {
				e.StoreAt(buf, minIdx, e.LoadAt(buf, i))
				e.StoreAt(buf, i, minVal)
			}
			e.Compute(10)
		}
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })

	want := make([]int, n)
	for i, w := range init {
		want[i] = int(w)
	}
	sort.Ints(want)
	a.CheckOutput = func(read func(v *task.NVVar, i int) uint16) bool {
		for i := 0; i < n; i++ {
			if int(read(buf, i)) != want[i] {
				return false
			}
		}
		return true
	}
	if err := frontend.Analyze(a); err != nil {
		return nil, err
	}
	return &apps.Bench{App: a}, nil
}

// Loggers runs the comparison over the three uni-task benchmarks plus the
// store-dense microbenchmark.
func Loggers(cfg Config) ([]LoggerRow, error) {
	cfg = cfg.fill()
	kinds := []struct {
		label string
		newRT func() kernel.Hooks
		kind  RuntimeKind
	}{
		{"Alpaca", nil, Alpaca},
		{"EaseIO", nil, EaseIO},
		{"JustDo", func() kernel.Hooks { return justdo.New() }, -1},
	}
	cases := UniTaskCases()
	cases = append(cases, UniTaskCase{Label: "Store-dense", New: storeDenseApp})
	var out []LoggerRow
	for _, c := range cases {
		for _, k := range kinds {
			var cont time.Duration
			var sum stats.Summary
			if k.newRT == nil {
				g, err := GoldenTime(c.New, k.kind)
				if err != nil {
					return nil, err
				}
				cont = g.MeanOnTime
				s, err := RunMany(cfg, c.New, k.kind)
				if err != nil {
					return nil, err
				}
				sum = s
			} else {
				var err error
				cont, sum, err = runCustom(cfg, c.New, k.newRT)
				if err != nil {
					return nil, err
				}
			}
			out = append(out, LoggerRow{
				App: c.Label, Runtime: k.label,
				Cont: cont, Int: sum.MeanTotalTime(),
				Overhead: sum.Work[stats.Overhead].T,
				Wasted:   sum.Work[stats.Wasted].T,
				Repeats:  sum.IORepeats + sum.DMARepeats,
			})
		}
	}
	return out, nil
}

// runCustom sweeps a runtime outside the RuntimeKind registry, reusing
// one session (device + runtime instance) across the seeds.
func runCustom(cfg Config, newApp AppFactory, newRT func() kernel.Hooks) (time.Duration, stats.Summary, error) {
	// Continuous baseline on its own runtime instance.
	bench, err := newApp()
	if err != nil {
		return 0, stats.Summary{}, err
	}
	gdev := kernel.NewDevice(power.Continuous{}, 0)
	if err := kernel.RunApp(gdev, newRT(), bench.App); err != nil {
		return 0, stats.Summary{}, err
	}
	cont := gdev.Clock.OnTime()

	bench, err = newApp()
	if err != nil {
		return 0, stats.Summary{}, err
	}
	rt := newRT()
	sess := kernel.NewSession(rt, bench.App, cfg.Supply())
	agg := stats.NewAggregator()
	var errs []error
	for i := 0; i < cfg.Runs; i++ {
		seed := cfg.BaseSeed + int64(i)
		run, err := sess.Run(seed)
		if err != nil {
			errs = append(errs, fmt.Errorf("experiments: %s on %s (seed %d): %w",
				bench.App.Name, rt.Name(), seed, err))
			continue
		}
		agg.Add(run)
	}
	return cont, agg.Summary(), errors.Join(errs...)
}

// RenderLoggers prints the comparison.
func RenderLoggers(rows []LoggerRow) string {
	header := []string{"App", "Runtime", "Cont (ms)", "Int (ms)",
		"Overhead (ms)", "Wasted (ms)", "Redundant re-exe"}
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.App, r.Runtime, fmtMS(r.Cont), fmtMS(r.Int),
			fmtMS(r.Overhead), fmtMS(r.Wasted), fmt.Sprintf("%d", r.Repeats)}
	}
	var b strings.Builder
	b.WriteString("Logging vs task-based — JustDo resume-from-instruction comparator (§2, §7.2)\n")
	b.WriteString(Table(header, out))
	return b.String()
}

// LoggersDataset exports the comparison.
func LoggersDataset(rows []LoggerRow) Dataset {
	ds := Dataset{
		Name:  "loggers",
		Title: "Logging vs task-based comparison",
		Header: []string{"app", "runtime", "cont_ms", "int_ms", "overhead_ms",
			"wasted_ms", "redundant_reexecs"},
	}
	for _, r := range rows {
		ds.Rows = append(ds.Rows, []string{r.App, r.Runtime, fmtMS(r.Cont),
			fmtMS(r.Int), fmtMS(r.Overhead), fmtMS(r.Wasted), fmt.Sprintf("%d", r.Repeats)})
	}
	return ds
}
