package stats

import (
	"testing"
	"time"

	"easeio/internal/units"
)

func mkRun(app, rt string, seed int64) *Run {
	r := &Run{App: app, Runtime: rt, Seed: seed, Correct: true}
	r.Work[App] = Totals{T: 10 * time.Millisecond, E: 10 * units.Microjoule}
	r.Work[Overhead] = Totals{T: 2 * time.Millisecond, E: 2 * units.Microjoule}
	r.Work[Wasted] = Totals{T: 4 * time.Millisecond, E: 4 * units.Microjoule}
	r.PowerFailures = 3
	r.IOExecs = 5
	r.IORepeats = 2
	r.OnTime = 16 * time.Millisecond
	r.WallTime = 20 * time.Millisecond
	return r
}

func TestBucketStrings(t *testing.T) {
	if App.String() != "App" || Overhead.String() != "Overhead" || Wasted.String() != "Wasted" {
		t.Error("bucket names")
	}
	if Bucket(9).String() != "Bucket(9)" {
		t.Error("unknown bucket")
	}
}

func TestTotalsArithmetic(t *testing.T) {
	a := Totals{T: time.Millisecond, E: units.Microjoule}
	b := Totals{T: 2 * time.Millisecond, E: 3 * units.Microjoule}
	a.Add(b)
	if a.T != 3*time.Millisecond || a.E != 4*units.Microjoule {
		t.Errorf("Add: %+v", a)
	}
	d := a.Sub(b)
	if d.T != time.Millisecond || d.E != units.Microjoule {
		t.Errorf("Sub: %+v", d)
	}
}

func TestRunHelpers(t *testing.T) {
	r := mkRun("a", "rt", 1)
	if got := r.TotalEnergy(); got != 16*units.Microjoule {
		t.Errorf("TotalEnergy = %v", got)
	}
	r.CountIO("Temp")
	r.CountIO("Temp")
	if r.PerSite["Temp"] != 2 {
		t.Errorf("PerSite = %v", r.PerSite)
	}
}

func TestAggregate(t *testing.T) {
	runs := []*Run{mkRun("a", "rt", 1), mkRun("a", "rt", 2)}
	runs[1].Correct = false
	runs[1].Work[Wasted].T = 8 * time.Millisecond
	s := Aggregate(runs)
	if s.Runs != 2 || s.App != "a" || s.Runtime != "rt" {
		t.Errorf("summary header: %+v", s)
	}
	if s.PowerFailures != 6 || s.IOExecs != 10 || s.IORepeats != 4 {
		t.Errorf("sums: %+v", s)
	}
	if s.Work[Wasted].T != 6*time.Millisecond { // mean of 4 and 8
		t.Errorf("mean wasted = %v", s.Work[Wasted].T)
	}
	if s.CorrectRuns != 1 || s.IncorrectRuns != 1 {
		t.Errorf("correctness split: %+v", s)
	}
	if s.MeanOnTime != 16*time.Millisecond || s.MeanWallTime != 20*time.Millisecond {
		t.Errorf("times: on=%v wall=%v", s.MeanOnTime, s.MeanWallTime)
	}
	if got := s.MeanTotalTime(); got != 18*time.Millisecond {
		t.Errorf("MeanTotalTime = %v", got)
	}
}

func TestAggregateStuck(t *testing.T) {
	r := mkRun("a", "rt", 1)
	r.Stuck = true
	s := Aggregate([]*Run{r})
	if s.StuckRuns != 1 || s.CorrectRuns != 0 {
		t.Errorf("stuck handling: %+v", s)
	}
}

func TestAggregateEmptyAndMixed(t *testing.T) {
	if s := Aggregate(nil); s.Runs != 0 {
		t.Error("empty aggregate")
	}
	defer func() {
		if recover() == nil {
			t.Error("mixed aggregate must panic")
		}
	}()
	Aggregate([]*Run{mkRun("a", "rt", 1), mkRun("b", "rt", 2)})
}

func TestSummaryRatios(t *testing.T) {
	s := Aggregate([]*Run{mkRun("a", "rt", 1)})
	if got := s.WastedRatio(); got != 0.4 { // 4 ms wasted over 10 ms of app work
		t.Errorf("WastedRatio = %v", got)
	}
	if got := s.OverheadRatio(); got != 0.2 {
		t.Errorf("OverheadRatio = %v", got)
	}
	var empty Summary
	if empty.WastedRatio() != 0 || empty.OverheadRatio() != 0 {
		t.Error("ratios of an empty summary must be 0, not NaN")
	}
}

func TestAggregatePercentiles(t *testing.T) {
	var runs []*Run
	for i := 1; i <= 100; i++ {
		r := &Run{App: "a", Runtime: "rt", Correct: true}
		r.Work[App] = Totals{T: time.Duration(i) * time.Millisecond}
		runs = append(runs, r)
	}
	s := Aggregate(runs)
	if s.P50TotalTime != 50*time.Millisecond {
		t.Errorf("p50 = %v", s.P50TotalTime)
	}
	if s.P95TotalTime != 95*time.Millisecond {
		t.Errorf("p95 = %v", s.P95TotalTime)
	}
	one := Aggregate(runs[:1])
	if one.P50TotalTime != time.Millisecond || one.P95TotalTime != time.Millisecond {
		t.Errorf("single-run percentiles: %v %v", one.P50TotalTime, one.P95TotalTime)
	}
}
