// Package stats defines the measurement records the simulator produces and
// the aggregation used by the experiment harnesses.
//
// The paper's five metrics (§5.2) map onto these records as follows:
// wasted work → the Wasted bucket; energy consumption → the energy ledger;
// execution correctness → Correct; runtime overhead → the Overhead bucket;
// memory overhead → the allocator report in internal/experiments.
package stats

import (
	"fmt"
	"sort"
	"time"

	"easeio/internal/units"
)

// Bucket classifies charged work.
type Bucket uint8

const (
	// App is useful application work that was committed.
	App Bucket = iota
	// Overhead is runtime bookkeeping (privatization, commits, flag
	// checks, timestamps) that was committed.
	Overhead
	// Wasted is work lost to power failures: everything charged during an
	// attempt that did not commit.
	Wasted

	// NumBuckets is the number of work buckets.
	NumBuckets
)

// String names the bucket as the paper's figures do.
func (b Bucket) String() string {
	switch b {
	case App:
		return "App"
	case Overhead:
		return "Overhead"
	case Wasted:
		return "Wasted"
	default:
		return fmt.Sprintf("Bucket(%d)", uint8(b))
	}
}

// Totals is a (time, energy) pair.
type Totals struct {
	T time.Duration
	E units.Energy
}

// Add accumulates o into t.
func (t *Totals) Add(o Totals) {
	t.T += o.T
	t.E += o.E
}

// Sub returns t − o.
func (t Totals) Sub(o Totals) Totals { return Totals{t.T - o.T, t.E - o.E} }

// Run records one complete execution of one application under one runtime.
type Run struct {
	App     string
	Runtime string
	Seed    int64

	// Work holds committed totals per bucket.
	Work [NumBuckets]Totals

	// PowerFailures counts reboots forced by the supply.
	PowerFailures int
	// TaskAttempts counts task executions started; TaskCommits counts
	// those that reached their transition.
	TaskAttempts int
	TaskCommits  int

	// IOExecs counts peripheral operations actually performed; IORepeats
	// counts the subset that re-did an operation a previous energy cycle
	// had already completed (the paper's "redundant I/O"); IOSkips counts
	// operations EaseIO avoided thanks to re-execution semantics.
	IOExecs   int
	IORepeats int
	IOSkips   int

	// DMAExecs/DMARepeats/DMASkips mirror the I/O counters for DMA
	// transfers.
	DMAExecs   int
	DMARepeats int
	DMASkips   int

	// PerSite maps I/O site names to execution counts.
	PerSite map[string]int

	// Samples records, per freshness-bounded I/O site ID, the wall-clock
	// time the site's value was last physically sampled (NoSample before
	// the first execution). The slice is grown lazily, so apps without
	// freshness bounds never allocate it. Re-execution skips keep the old
	// sample time — that is exactly the staleness the freshness oracle
	// measures.
	Samples []time.Duration
	// Stale lists every freshness-bound violation in commit order: a
	// task commit consumed a sampled input older than its declared
	// staleness bound.
	Stale []StaleEvent

	// WallTime is total simulated wall-clock time (on + off); OnTime is
	// the powered-on portion (the "execution time" in Figures 7 and 10).
	WallTime time.Duration
	OnTime   time.Duration

	// Correct reports whether the run's output matched the golden
	// (continuous-power) result. Stuck is set when an energy-driven run
	// could not recharge and was abandoned.
	Correct bool
	Stuck   bool
}

// NoSample marks a freshness-bounded site that has not executed yet in
// Run.Samples.
const NoSample = time.Duration(-1)

// StaleEvent is one freshness-bound violation: a task commit consumed an
// input sampled longer ago than the site's declared bound allows. Off
// durations count against the bound — that is the point: memory can be
// perfectly consistent while the data it holds has gone stale across a
// recharge.
type StaleEvent struct {
	// Site is the I/O site's name.
	Site string
	// Age is the input's age at consumption (commit time − sample time);
	// Bound is the site's declared staleness bound.
	Age   time.Duration
	Bound time.Duration
	// At is the consuming commit's wall-clock time.
	At time.Duration
}

// SampleAt returns the site's last sample time, or NoSample.
func (r *Run) SampleAt(siteID int) time.Duration {
	if siteID >= len(r.Samples) {
		return NoSample
	}
	return r.Samples[siteID]
}

// NoteSample records the site's physical execution at wall-clock time t.
func (r *Run) NoteSample(siteID int, t time.Duration) {
	for len(r.Samples) <= siteID {
		r.Samples = append(r.Samples, NoSample)
	}
	r.Samples[siteID] = t
}

// NoteStale appends one freshness-bound violation.
func (r *Run) NoteStale(site string, age, bound, at time.Duration) {
	r.Stale = append(r.Stale, StaleEvent{Site: site, Age: age, Bound: bound, At: at})
}

// Clone returns an independent deep copy of the run (PerSite, Samples
// and Stale are the reference fields). Device checkpoints hold clones so
// that restoring the same checkpoint twice never aliases counters
// between replays.
func (r *Run) Clone() *Run { return r.CloneInto(nil) }

// CloneInto deep-copies r into dst, reusing dst's PerSite map and slice
// storage when possible; a nil dst allocates. It returns the copy.
func (r *Run) CloneInto(dst *Run) *Run {
	if dst == nil {
		dst = &Run{}
	}
	per := dst.PerSite
	samples := dst.Samples
	stale := dst.Stale
	*dst = *r
	dst.PerSite = nil
	if r.PerSite != nil {
		if per == nil {
			per = make(map[string]int, len(r.PerSite))
		} else {
			clear(per)
		}
		for k, v := range r.PerSite {
			per[k] = v
		}
		dst.PerSite = per
	}
	// Mirror the PerSite rule for the slices: nil stays nil, so a cloned
	// record's shape matches a freshly allocated one regardless of what
	// the reused storage held before.
	dst.Samples, dst.Stale = nil, nil
	if r.Samples != nil {
		dst.Samples = append(samples[:0], r.Samples...)
	}
	if r.Stale != nil {
		dst.Stale = append(stale[:0], r.Stale...)
	}
	return dst
}

// ResetForRun rewinds r to the state a fresh &Run{Seed: seed} would
// have, reusing the PerSite map (cleared in place) when one was already
// allocated — the pooled-session path resets one Run record per device
// instead of allocating one per run. The map stays attached only on
// records that counted I/O before, so for any given app the record's
// shape after a run matches a freshly allocated one.
func (r *Run) ResetForRun(seed int64) {
	per := r.PerSite
	*r = Run{Seed: seed}
	if per != nil {
		clear(per)
		r.PerSite = per
	}
}

// TotalEnergy returns the energy committed across all buckets.
func (r *Run) TotalEnergy() units.Energy {
	var e units.Energy
	for _, w := range r.Work {
		e += w.E
	}
	return e
}

// CountIO increments the per-site execution counter.
func (r *Run) CountIO(site string) {
	if r.PerSite == nil {
		r.PerSite = make(map[string]int)
	}
	r.PerSite[site]++
}

// Summary is the aggregate of many runs (the paper averages 1000 seeded
// executions per configuration, §5.3).
type Summary struct {
	App     string
	Runtime string
	Runs    int

	// Mean work per bucket.
	Work [NumBuckets]Totals

	// Sums of the run counters (Table 4 reports sums over all runs).
	PowerFailures int
	IOExecs       int
	IORepeats     int
	IOSkips       int
	DMAExecs      int
	DMARepeats    int
	DMASkips      int

	// MeanEnergy is the average total committed energy per run.
	MeanEnergy units.Energy
	// MeanOnTime is the average powered-on execution time per run.
	MeanOnTime time.Duration
	// MeanWallTime is the average wall-clock time per run, including
	// recharge (off) periods — the time-to-completion a harvested
	// deployment observes (Figure 13).
	MeanWallTime time.Duration
	// P50TotalTime and P95TotalTime are percentiles of per-run committed
	// total time — the tail a deployment provisions for.
	P50TotalTime, P95TotalTime time.Duration

	// CorrectRuns / IncorrectRuns split the runs by output correctness
	// (Figure 12).
	CorrectRuns   int
	IncorrectRuns int
	StuckRuns     int
}

// Aggregator folds runs into a Summary incrementally, so a sweep over
// thousands of seeds never retains the per-run records: only the running
// sums plus one committed-total-time word per run (for the percentiles)
// survive each Add. Aggregators merge, which lets sharded sweeps fold
// per-worker and combine at the end.
//
// All added runs must share the same app and runtime (adopted from the
// first run); Add panics otherwise, since mixing configurations is a
// harness bug. Every fold — Add and Merge alike — is a sum or an append,
// so the final Summary depends only on the order totals are appended in,
// not on how the runs were partitioned across aggregators.
type Aggregator struct {
	app     string
	runtime string
	n       int

	work             [NumBuckets]Totals
	energy           units.Energy
	onTime, wallTime time.Duration

	powerFailures int
	ioExecs       int
	ioRepeats     int
	ioSkips       int
	dmaExecs      int
	dmaRepeats    int
	dmaSkips      int

	correct   int
	incorrect int
	stuck     int

	// totals holds each run's committed total time, in Add order.
	totals []time.Duration
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator { return &Aggregator{} }

// Runs returns how many runs have been folded in.
func (a *Aggregator) Runs() int { return a.n }

// Add folds one run into the aggregate.
func (a *Aggregator) Add(r *Run) {
	if a.n == 0 {
		a.app, a.runtime = r.App, r.Runtime
	} else if r.App != a.app || r.Runtime != a.runtime {
		panic(fmt.Sprintf("stats: mixed aggregate: %s/%s vs %s/%s",
			r.App, r.Runtime, a.app, a.runtime))
	}
	a.n++
	for b := Bucket(0); b < NumBuckets; b++ {
		a.work[b].Add(r.Work[b])
	}
	a.energy += r.TotalEnergy()
	a.onTime += r.OnTime
	a.wallTime += r.WallTime
	a.powerFailures += r.PowerFailures
	a.ioExecs += r.IOExecs
	a.ioRepeats += r.IORepeats
	a.ioSkips += r.IOSkips
	a.dmaExecs += r.DMAExecs
	a.dmaRepeats += r.DMARepeats
	a.dmaSkips += r.DMASkips
	if r.Stuck {
		a.stuck++
	} else if r.Correct {
		a.correct++
	} else {
		a.incorrect++
	}
	a.totals = append(a.totals, r.Work[App].T+r.Work[Overhead].T+r.Work[Wasted].T)
}

// Merge folds aggregator o into a, as if o's runs had been added to a in
// their original order. Merging shard aggregators in shard order therefore
// reproduces the sequential fold exactly.
func (a *Aggregator) Merge(o *Aggregator) {
	if o.n == 0 {
		return
	}
	if a.n == 0 {
		a.app, a.runtime = o.app, o.runtime
	} else if o.app != a.app || o.runtime != a.runtime {
		panic(fmt.Sprintf("stats: mixed aggregate: %s/%s vs %s/%s",
			o.app, o.runtime, a.app, a.runtime))
	}
	a.n += o.n
	for b := Bucket(0); b < NumBuckets; b++ {
		a.work[b].Add(o.work[b])
	}
	a.energy += o.energy
	a.onTime += o.onTime
	a.wallTime += o.wallTime
	a.powerFailures += o.powerFailures
	a.ioExecs += o.ioExecs
	a.ioRepeats += o.ioRepeats
	a.ioSkips += o.ioSkips
	a.dmaExecs += o.dmaExecs
	a.dmaRepeats += o.dmaRepeats
	a.dmaSkips += o.dmaSkips
	a.correct += o.correct
	a.incorrect += o.incorrect
	a.stuck += o.stuck
	a.totals = append(a.totals, o.totals...)
}

// Summary finalizes the aggregate. The aggregator stays usable: more runs
// can be added and Summary called again.
func (a *Aggregator) Summary() Summary {
	if a.n == 0 {
		return Summary{}
	}
	s := Summary{
		App:           a.app,
		Runtime:       a.runtime,
		Runs:          a.n,
		PowerFailures: a.powerFailures,
		IOExecs:       a.ioExecs,
		IORepeats:     a.ioRepeats,
		IOSkips:       a.ioSkips,
		DMAExecs:      a.dmaExecs,
		DMARepeats:    a.dmaRepeats,
		DMASkips:      a.dmaSkips,
		CorrectRuns:   a.correct,
		IncorrectRuns: a.incorrect,
		StuckRuns:     a.stuck,
	}
	n := int64(a.n)
	for b := Bucket(0); b < NumBuckets; b++ {
		s.Work[b] = Totals{a.work[b].T / time.Duration(n), a.work[b].E / units.Energy(n)}
	}
	s.MeanEnergy = a.energy / units.Energy(n)
	s.MeanOnTime = a.onTime / time.Duration(n)
	s.MeanWallTime = a.wallTime / time.Duration(n)

	totals := make([]time.Duration, len(a.totals))
	copy(totals, a.totals)
	sort.Slice(totals, func(i, j int) bool { return totals[i] < totals[j] })
	s.P50TotalTime = percentile(totals, 50)
	s.P95TotalTime = percentile(totals, 95)
	return s
}

// AggregatorState is the exported, serializable fold state of an
// Aggregator. A sharded sweep running across processes ships each
// shard's state and merges them in shard order — folding states
// reproduces folding the runs, so the final Summary is byte-identical
// to a single-process sweep over the same seeds.
type AggregatorState struct {
	App     string
	Runtime string
	Runs    int

	Work             [NumBuckets]Totals
	Energy           units.Energy
	OnTime, WallTime time.Duration

	PowerFailures int
	IOExecs       int
	IORepeats     int
	IOSkips       int
	DMAExecs      int
	DMARepeats    int
	DMASkips      int

	Correct   int
	Incorrect int
	Stuck     int

	// Totals holds each folded run's committed total time, in Add order
	// (the percentile inputs).
	Totals []time.Duration
}

// Export returns the aggregator's fold state. The Totals slice aliases
// the aggregator's storage — treat it as read-only while the aggregator
// keeps folding.
func (a *Aggregator) Export() AggregatorState {
	return AggregatorState{
		App:           a.app,
		Runtime:       a.runtime,
		Runs:          a.n,
		Work:          a.work,
		Energy:        a.energy,
		OnTime:        a.onTime,
		WallTime:      a.wallTime,
		PowerFailures: a.powerFailures,
		IOExecs:       a.ioExecs,
		IORepeats:     a.ioRepeats,
		IOSkips:       a.ioSkips,
		DMAExecs:      a.dmaExecs,
		DMARepeats:    a.dmaRepeats,
		DMASkips:      a.dmaSkips,
		Correct:       a.correct,
		Incorrect:     a.incorrect,
		Stuck:         a.stuck,
		Totals:        a.totals,
	}
}

// ImportAggregator rebuilds an Aggregator from an exported state, taking
// ownership of the Totals slice. Merging imported aggregators in shard
// order is exactly merging the original shard aggregators.
func ImportAggregator(st AggregatorState) *Aggregator {
	return &Aggregator{
		app:           st.App,
		runtime:       st.Runtime,
		n:             st.Runs,
		work:          st.Work,
		energy:        st.Energy,
		onTime:        st.OnTime,
		wallTime:      st.WallTime,
		powerFailures: st.PowerFailures,
		ioExecs:       st.IOExecs,
		ioRepeats:     st.IORepeats,
		ioSkips:       st.IOSkips,
		dmaExecs:      st.DMAExecs,
		dmaRepeats:    st.DMARepeats,
		dmaSkips:      st.DMASkips,
		correct:       st.Correct,
		incorrect:     st.Incorrect,
		stuck:         st.Stuck,
		totals:        st.Totals,
	}
}

// Aggregate folds a set of runs into a Summary. All runs must share the
// same app and runtime; it panics otherwise, since mixing configurations
// is a harness bug.
func Aggregate(runs []*Run) Summary {
	a := NewAggregator()
	for _, r := range runs {
		a.Add(r)
	}
	return a.Summary()
}

// MeanTotalTime returns the mean committed time across buckets — the total
// bar height in Figures 7 and 10.
func (s Summary) MeanTotalTime() time.Duration {
	return s.Work[App].T + s.Work[Overhead].T + s.Work[Wasted].T
}

// WastedRatio returns wasted work time as a fraction of useful app work
// time — the efficiency headline a serving deployment watches (the
// paper's wasted-work reduction, as a single gauge). Zero app work yields
// zero.
func (s Summary) WastedRatio() float64 {
	if s.Work[App].T == 0 {
		return 0
	}
	return float64(s.Work[Wasted].T) / float64(s.Work[App].T)
}

// OverheadRatio returns runtime-overhead time as a fraction of useful app
// work time. Zero app work yields zero.
func (s Summary) OverheadRatio() float64 {
	if s.Work[App].T == 0 {
		return 0
	}
	return float64(s.Work[Overhead].T) / float64(s.Work[App].T)
}

// percentile returns the p-th percentile (nearest-rank) of a sorted slice.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
