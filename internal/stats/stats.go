// Package stats defines the measurement records the simulator produces and
// the aggregation used by the experiment harnesses.
//
// The paper's five metrics (§5.2) map onto these records as follows:
// wasted work → the Wasted bucket; energy consumption → the energy ledger;
// execution correctness → Correct; runtime overhead → the Overhead bucket;
// memory overhead → the allocator report in internal/experiments.
package stats

import (
	"fmt"
	"sort"
	"time"

	"easeio/internal/units"
)

// Bucket classifies charged work.
type Bucket uint8

const (
	// App is useful application work that was committed.
	App Bucket = iota
	// Overhead is runtime bookkeeping (privatization, commits, flag
	// checks, timestamps) that was committed.
	Overhead
	// Wasted is work lost to power failures: everything charged during an
	// attempt that did not commit.
	Wasted

	// NumBuckets is the number of work buckets.
	NumBuckets
)

// String names the bucket as the paper's figures do.
func (b Bucket) String() string {
	switch b {
	case App:
		return "App"
	case Overhead:
		return "Overhead"
	case Wasted:
		return "Wasted"
	default:
		return fmt.Sprintf("Bucket(%d)", uint8(b))
	}
}

// Totals is a (time, energy) pair.
type Totals struct {
	T time.Duration
	E units.Energy
}

// Add accumulates o into t.
func (t *Totals) Add(o Totals) {
	t.T += o.T
	t.E += o.E
}

// Sub returns t − o.
func (t Totals) Sub(o Totals) Totals { return Totals{t.T - o.T, t.E - o.E} }

// Run records one complete execution of one application under one runtime.
type Run struct {
	App     string
	Runtime string
	Seed    int64

	// Work holds committed totals per bucket.
	Work [NumBuckets]Totals

	// PowerFailures counts reboots forced by the supply.
	PowerFailures int
	// TaskAttempts counts task executions started; TaskCommits counts
	// those that reached their transition.
	TaskAttempts int
	TaskCommits  int

	// IOExecs counts peripheral operations actually performed; IORepeats
	// counts the subset that re-did an operation a previous energy cycle
	// had already completed (the paper's "redundant I/O"); IOSkips counts
	// operations EaseIO avoided thanks to re-execution semantics.
	IOExecs   int
	IORepeats int
	IOSkips   int

	// DMAExecs/DMARepeats/DMASkips mirror the I/O counters for DMA
	// transfers.
	DMAExecs   int
	DMARepeats int
	DMASkips   int

	// PerSite maps I/O site names to execution counts.
	PerSite map[string]int

	// WallTime is total simulated wall-clock time (on + off); OnTime is
	// the powered-on portion (the "execution time" in Figures 7 and 10).
	WallTime time.Duration
	OnTime   time.Duration

	// Correct reports whether the run's output matched the golden
	// (continuous-power) result. Stuck is set when an energy-driven run
	// could not recharge and was abandoned.
	Correct bool
	Stuck   bool
}

// TotalEnergy returns the energy committed across all buckets.
func (r *Run) TotalEnergy() units.Energy {
	var e units.Energy
	for _, w := range r.Work {
		e += w.E
	}
	return e
}

// CountIO increments the per-site execution counter.
func (r *Run) CountIO(site string) {
	if r.PerSite == nil {
		r.PerSite = make(map[string]int)
	}
	r.PerSite[site]++
}

// Summary is the aggregate of many runs (the paper averages 1000 seeded
// executions per configuration, §5.3).
type Summary struct {
	App     string
	Runtime string
	Runs    int

	// Mean work per bucket.
	Work [NumBuckets]Totals

	// Sums of the run counters (Table 4 reports sums over all runs).
	PowerFailures int
	IOExecs       int
	IORepeats     int
	IOSkips       int
	DMAExecs      int
	DMARepeats    int
	DMASkips      int

	// MeanEnergy is the average total committed energy per run.
	MeanEnergy units.Energy
	// MeanOnTime is the average powered-on execution time per run.
	MeanOnTime time.Duration
	// MeanWallTime is the average wall-clock time per run, including
	// recharge (off) periods — the time-to-completion a harvested
	// deployment observes (Figure 13).
	MeanWallTime time.Duration
	// P50TotalTime and P95TotalTime are percentiles of per-run committed
	// total time — the tail a deployment provisions for.
	P50TotalTime, P95TotalTime time.Duration

	// CorrectRuns / IncorrectRuns split the runs by output correctness
	// (Figure 12).
	CorrectRuns   int
	IncorrectRuns int
	StuckRuns     int
}

// Aggregate folds a set of runs into a Summary. All runs must share the
// same app and runtime; it panics otherwise, since mixing configurations
// is a harness bug.
func Aggregate(runs []*Run) Summary {
	if len(runs) == 0 {
		return Summary{}
	}
	s := Summary{App: runs[0].App, Runtime: runs[0].Runtime, Runs: len(runs)}
	var work [NumBuckets]Totals
	var energy units.Energy
	var onTime, wallTime time.Duration
	for _, r := range runs {
		if r.App != s.App || r.Runtime != s.Runtime {
			panic(fmt.Sprintf("stats: mixed aggregate: %s/%s vs %s/%s",
				r.App, r.Runtime, s.App, s.Runtime))
		}
		for b := Bucket(0); b < NumBuckets; b++ {
			work[b].Add(r.Work[b])
		}
		energy += r.TotalEnergy()
		onTime += r.OnTime
		wallTime += r.WallTime
		s.PowerFailures += r.PowerFailures
		s.IOExecs += r.IOExecs
		s.IORepeats += r.IORepeats
		s.IOSkips += r.IOSkips
		s.DMAExecs += r.DMAExecs
		s.DMARepeats += r.DMARepeats
		s.DMASkips += r.DMASkips
		if r.Stuck {
			s.StuckRuns++
		} else if r.Correct {
			s.CorrectRuns++
		} else {
			s.IncorrectRuns++
		}
	}
	n := int64(len(runs))
	for b := Bucket(0); b < NumBuckets; b++ {
		s.Work[b] = Totals{work[b].T / time.Duration(n), work[b].E / units.Energy(n)}
	}
	s.MeanEnergy = energy / units.Energy(n)
	s.MeanOnTime = onTime / time.Duration(n)
	s.MeanWallTime = wallTime / time.Duration(n)

	totals := make([]time.Duration, len(runs))
	for i, r := range runs {
		totals[i] = r.Work[App].T + r.Work[Overhead].T + r.Work[Wasted].T
	}
	sort.Slice(totals, func(i, j int) bool { return totals[i] < totals[j] })
	s.P50TotalTime = percentile(totals, 50)
	s.P95TotalTime = percentile(totals, 95)
	return s
}

// MeanTotalTime returns the mean committed time across buckets — the total
// bar height in Figures 7 and 10.
func (s Summary) MeanTotalTime() time.Duration {
	return s.Work[App].T + s.Work[Overhead].T + s.Work[Wasted].T
}

// percentile returns the p-th percentile (nearest-rank) of a sorted slice.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
