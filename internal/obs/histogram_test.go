// Histogram tests moved here with the type itself: bucket arithmetic,
// exposition rendering, and the label-cardinality cap.

package obs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestHistogramBuckets exercises the bucket arithmetic directly:
// boundary placement (le is an upper inclusive bound), the +Inf
// overflow, and the sum/count tallies.
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram("t_seconds", "help.", "mode", []float64{0.25, 1, 10})
	// Exact binary fractions so the _sum rendering is stable.
	for _, v := range []float64{0.125, 0.25, 0.5, 8, 100} {
		h.Observe("sweep", v)
	}
	var b bytes.Buffer
	h.Expose(&b)
	text := b.String()
	for _, want := range []string{
		`t_seconds_bucket{mode="sweep",le="0.25"} 2`, // 0.125 and the inclusive boundary 0.25
		`t_seconds_bucket{mode="sweep",le="1"} 3`,
		`t_seconds_bucket{mode="sweep",le="10"} 4`,
		`t_seconds_bucket{mode="sweep",le="+Inf"} 5`,
		`t_seconds_sum{mode="sweep"} 108.875`,
		`t_seconds_count{mode="sweep"} 5`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}

	defer func() {
		if recover() == nil {
			t.Error("non-ascending buckets did not panic")
		}
	}()
	NewHistogram("bad", "", "", []float64{1, 1})
}

// TestHistogramLabelCardinalityCap: label values come from request
// payloads, so the series map must not grow without bound. Past the cap,
// observations fold into the "other" series and totals stay exact.
func TestHistogramLabelCardinalityCap(t *testing.T) {
	h := NewHistogram("t_seconds", "help.", "app", []float64{1})
	const flood = 4 * maxLabelValues
	for i := 0; i < flood; i++ {
		h.Observe(fmt.Sprintf("app-%03d", i), 0.5)
	}
	if n := len(h.series); n > maxLabelValues+1 {
		t.Fatalf("series map grew to %d entries, cap is %d plus %q", n, maxLabelValues, overflowLabel)
	}
	other := h.series[overflowLabel]
	if other == nil {
		t.Fatalf("overflow series %q missing after %d distinct labels", overflowLabel, flood)
	}
	if want := uint64(flood - maxLabelValues); other.count != want {
		t.Errorf("overflow series holds %d observations, want %d", other.count, want)
	}
	var total uint64
	for _, s := range h.series {
		total += s.count
	}
	if total != flood {
		t.Errorf("total observations %d, want %d — the cap must not drop data", total, flood)
	}

	// A label value seen before the cap keeps its own series afterwards.
	h.Observe("app-000", 0.5)
	if got := h.series["app-000"].count; got != 2 {
		t.Errorf("pre-cap series count = %d, want 2", got)
	}
}
