// Package obs holds the shared observability primitives: labeled
// histograms and cardinality-capped labeled counters in the Prometheus
// text exposition format. The service grew these first; the fleet
// coordinator exports per-worker series through the same types, so they
// live below both.
//
// Bucket distributions answer the questions the paper's evaluation asks
// of the simulator itself (where does the time go? how wide is the
// spread?) for the serving and coordination hot paths.

package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
)

// Histogram is a fixed-bucket cumulative histogram, optionally split by
// one label. Observations are mutex-guarded (job-frequency, not
// simulation-frequency, so contention is irrelevant); rendering follows
// the Prometheus text exposition: per-series _bucket{le=...} lines in
// ascending bound order ending at +Inf, then _sum and _count.
type Histogram struct {
	name, help string
	label      string    // label name; "" renders unlabeled series
	buckets    []float64 // ascending upper bounds; +Inf is implicit

	mu     sync.Mutex
	series map[string]*histSeries
}

type histSeries struct {
	counts []uint64 // one per bucket, plus the +Inf bucket at the end
	sum    float64
	count  uint64
}

// NewHistogram returns a histogram with the given ascending bucket upper
// bounds. label names the single partition label ("" for none).
func NewHistogram(name, help, label string, buckets []float64) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %s buckets not ascending: %v", name, buckets))
		}
	}
	return &Histogram{
		name: name, help: help, label: label,
		buckets: buckets,
		series:  make(map[string]*histSeries),
	}
}

// maxLabelValues caps the number of distinct label values a histogram
// tracks. Label values arrive from request payloads (blueprint names,
// runtime kinds), so an attacker — or just a misbehaving sweep client —
// could otherwise grow the series map without bound. Observations past
// the cap fold into the overflowLabel series, so totals stay right even
// when per-value attribution saturates.
const maxLabelValues = 32

// overflowLabel is the series that absorbs observations whose label
// value didn't fit under maxLabelValues.
const overflowLabel = "other"

// Observe records one value under the given label value (ignored for
// unlabeled histograms). At most maxLabelValues distinct label values
// get their own series; later values fold into the "other" series.
func (h *Histogram) Observe(labelValue string, v float64) {
	if h.label == "" {
		labelValue = ""
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.series[labelValue]
	if s == nil && len(h.series) >= maxLabelValues {
		labelValue = overflowLabel
		s = h.series[labelValue]
	}
	if s == nil {
		s = &histSeries{counts: make([]uint64, len(h.buckets)+1)}
		h.series[labelValue] = s
	}
	i := sort.SearchFloat64s(h.buckets, v)
	s.counts[i]++
	s.sum += v
	s.count++
}

// leFormat renders a bucket bound the way Prometheus clients do.
func leFormat(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// Expose renders the histogram. Series are ordered by label value so the
// exposition is deterministic. (Not named WriteTo: vet reserves that name
// for the io.WriterTo signature.)
func (h *Histogram) Expose(w io.Writer) {
	h.mu.Lock()
	defer h.mu.Unlock()
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
	values := make([]string, 0, len(h.series))
	for v := range h.series {
		values = append(values, v)
	}
	sort.Strings(values)
	for _, v := range values {
		s := h.series[v]
		pair := ""
		sep := ""
		if h.label != "" {
			pair = fmt.Sprintf("%s=%q", h.label, v)
			sep = ","
		}
		cum := uint64(0)
		for i, b := range h.buckets {
			cum += s.counts[i]
			fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", h.name, pair, sep, leFormat(b), cum)
		}
		cum += s.counts[len(h.buckets)]
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", h.name, pair, sep, cum)
		if h.label != "" {
			fmt.Fprintf(w, "%s_sum{%s} %g\n%s_count{%s} %d\n", h.name, pair, s.sum, h.name, pair, s.count)
		} else {
			fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", h.name, s.sum, h.name, s.count)
		}
	}
}

// The shared bucket layouts: latencies span sub-millisecond WAL fsyncs
// to multi-minute exhaustive checks; rates span single-digit to millions
// of events/s. Callers must treat the slices as immutable.
var (
	LatencyBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120}
	RateBuckets = []float64{1, 10, 100, 1_000, 10_000, 100_000, 1_000_000}
)
