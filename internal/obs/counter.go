// Labeled monotonic counters with the same cardinality discipline as
// Histogram, plus the one-line counter/gauge render helpers every
// exposition endpoint shares.

package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Counter is a monotonic counter split by one optional label. Label
// values arrive from job payloads and worker identities, so the series
// map is capped exactly like Histogram's: past maxLabelValues distinct
// values, increments fold into the "other" series and totals stay
// exact even when per-value attribution saturates.
type Counter struct {
	name, help string
	label      string // label name; "" renders a single unlabeled series

	mu     sync.Mutex
	series map[string]int64
}

// NewCounter returns a counter named name. label names the single
// partition label ("" for none).
func NewCounter(name, help, label string) *Counter {
	return &Counter{name: name, help: help, label: label, series: make(map[string]int64)}
}

// Add increments the series for the given label value (ignored for
// unlabeled counters) by delta. Negative deltas panic: counters are
// monotonic by contract.
func (c *Counter) Add(labelValue string, delta int64) {
	if delta < 0 {
		panic(fmt.Sprintf("obs: negative delta %d on counter %s", delta, c.name))
	}
	if c.label == "" {
		labelValue = ""
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.series[labelValue]; !ok && len(c.series) >= maxLabelValues {
		labelValue = overflowLabel
	}
	c.series[labelValue] += delta
}

// Inc is Add(labelValue, 1).
func (c *Counter) Inc(labelValue string) { c.Add(labelValue, 1) }

// Value returns the series count for the given label value (0 when the
// series does not exist).
func (c *Counter) Value(labelValue string) int64 {
	if c.label == "" {
		labelValue = ""
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.series[labelValue]
}

// Total returns the sum over every series.
func (c *Counter) Total() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t int64
	for _, v := range c.series {
		t += v
	}
	return t
}

// Expose renders the counter, series ordered by label value for a
// deterministic exposition.
func (c *Counter) Expose(w io.Writer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", c.name, c.help, c.name)
	if c.label == "" {
		fmt.Fprintf(w, "%s %d\n", c.name, c.series[""])
		return
	}
	values := make([]string, 0, len(c.series))
	for v := range c.series {
		values = append(values, v)
	}
	sort.Strings(values)
	for _, v := range values {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", c.name, c.label, v, c.series[v])
	}
}

// WriteCounter renders one unlabeled counter line with its metadata.
func WriteCounter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// WriteGauge renders one unlabeled gauge line with its metadata.
func WriteGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}
