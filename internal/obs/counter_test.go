package obs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestCounterExpose pins the labeled and unlabeled rendering shapes.
func TestCounterExpose(t *testing.T) {
	c := NewCounter("t_total", "help.", "worker")
	c.Inc("w1")
	c.Add("w0", 2)
	var b bytes.Buffer
	c.Expose(&b)
	for _, want := range []string{
		"# TYPE t_total counter",
		`t_total{worker="w0"} 2`,
		`t_total{worker="w1"} 1`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q in:\n%s", want, b.String())
		}
	}
	// Label order must be sorted: w0 before w1.
	if strings.Index(b.String(), `"w0"`) > strings.Index(b.String(), `"w1"`) {
		t.Error("series not sorted by label value")
	}

	u := NewCounter("u_total", "help.", "")
	u.Inc("ignored")
	b.Reset()
	u.Expose(&b)
	if !strings.Contains(b.String(), "u_total 1\n") {
		t.Errorf("unlabeled exposition wrong:\n%s", b.String())
	}

	defer func() {
		if recover() == nil {
			t.Error("negative delta did not panic")
		}
	}()
	c.Add("w0", -1)
}

// TestCounterCardinalityCap mirrors the histogram cap: floods of
// distinct label values fold into "other" without losing counts.
func TestCounterCardinalityCap(t *testing.T) {
	c := NewCounter("t_total", "help.", "worker")
	const flood = 3 * maxLabelValues
	for i := 0; i < flood; i++ {
		c.Inc(fmt.Sprintf("w-%03d", i))
	}
	if n := len(c.series); n > maxLabelValues+1 {
		t.Fatalf("series map grew to %d entries, cap is %d plus %q", n, maxLabelValues, overflowLabel)
	}
	if got := c.Value(overflowLabel); got != flood-maxLabelValues {
		t.Errorf("overflow series holds %d, want %d", got, flood-maxLabelValues)
	}
	if got := c.Total(); got != flood {
		t.Errorf("total %d, want %d — the cap must not drop counts", got, flood)
	}
	c.Inc("w-000")
	if got := c.Value("w-000"); got != 2 {
		t.Errorf("pre-cap series count = %d, want 2", got)
	}
}
