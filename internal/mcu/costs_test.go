package mcu

import (
	"testing"
	"time"

	"easeio/internal/units"
)

func TestCycleArithmetic(t *testing.T) {
	if Cycles(1) != time.Microsecond {
		t.Errorf("1 cycle = %v at 1 MHz", Cycles(1))
	}
	if Cycles(1000) != time.Millisecond {
		t.Errorf("1000 cycles = %v", Cycles(1000))
	}
	if CyclesEnergy(1) != CycleEnergy {
		t.Error("single-cycle energy")
	}
	// Active power implied by the constants ≈ 0.354 mW.
	perSecond := CyclesEnergy(ClockHz)
	mw := perSecond.Millijoules() // mJ per second = mW
	if mw < 0.2 || mw > 0.6 {
		t.Errorf("implied CPU power = %.3f mW, expected MSP430-like ~0.35", mw)
	}
}

func TestCostOrdering(t *testing.T) {
	// FRAM writes cost more than reads; peripherals more than SRAM.
	if FRAMWriteEnergy <= FRAMReadEnergy {
		t.Error("FRAM write must cost more than read")
	}
	if FRAMReadEnergy <= SRAMAccessEnergy {
		t.Error("FRAM read must cost more than SRAM access")
	}
	// DMA moves a word cheaper than a CPU copy loop would.
	dmaWord := CyclesEnergy(DMAWordCycles)
	_ = dmaWord
	if DMAWordCycles >= CPUCopyWordCycle {
		t.Error("DMA must be faster per word than a CPU copy")
	}
	if LeakagePower <= 0 {
		t.Error("leakage must be positive")
	}
	var _ units.Energy = DMAWordEnergy
}

func TestBookkeepingCostsPositive(t *testing.T) {
	for name, c := range map[string]int64{
		"FlagCheck":      FlagCheckCycles,
		"FlagSet":        FlagSetCycles,
		"Timestamp":      TimestampCycles,
		"TimeCompare":    TimeCompareCycles,
		"TaskTransition": TaskTransitionCycles,
		"CommitWord":     CommitWordCycles,
		"PrivatizeWord":  PrivatizeWordCycles,
		"Boot":           BootCycles,
		"LEASetup":       LEASetupCycles,
		"DMASetup":       DMASetupCycles,
	} {
		if c <= 0 {
			t.Errorf("%s cycles = %d", name, c)
		}
	}
}
