// Package mcu models the timing and energy characteristics of an
// MSP430FR5994-class microcontroller running at 1 MHz — the platform the
// EaseIO paper evaluates on (§4.1, §5.1).
//
// At 1 MHz one CPU cycle takes exactly one microsecond, which the paper
// exploits for its emulated power failures; so do we. Energy numbers are
// derived from the MSP430FR5994 datasheet active-mode current (~118 µA/MHz
// at 3.0 V ⇒ ≈0.354 mW ⇒ ≈354 pJ/cycle) and from the peripheral costs the
// intermittent-computing literature reports (Samoyed, InK, Mayfly). Absolute
// values only need to be plausible; the evaluation compares runtimes against
// each other on the same cost model, exactly as the paper compares runtimes
// on the same board.
package mcu

import (
	"time"

	"easeio/internal/units"
)

// ClockHz is the simulated CPU frequency.
const ClockHz = 1_000_000

// CyclePeriod is the duration of one CPU cycle at ClockHz.
const CyclePeriod = time.Microsecond

// CycleEnergy is the active-mode energy per CPU cycle.
const CycleEnergy = 354 * units.Picojoule

// Cycles converts a cycle count to simulated time.
func Cycles(n int64) time.Duration { return time.Duration(n) * CyclePeriod }

// CyclesEnergy returns the energy consumed by n active CPU cycles.
func CyclesEnergy(n int64) units.Energy { return units.Energy(n) * CycleEnergy }

// Memory access costs. FRAM on the FR5994 runs without wait states at
// 1 MHz, but writes cost more energy than SRAM accesses.
const (
	// SRAMAccessCycles is the cost of one 16-bit SRAM read or write.
	SRAMAccessCycles = 1
	// FRAMReadCycles is the cost of one 16-bit FRAM read.
	FRAMReadCycles = 1
	// FRAMWriteCycles is the cost of one 16-bit FRAM write.
	FRAMWriteCycles = 2

	// SRAMAccessEnergy is the energy of one 16-bit SRAM access.
	SRAMAccessEnergy = 120 * units.Picojoule
	// FRAMReadEnergy is the energy of one 16-bit FRAM read.
	FRAMReadEnergy = 250 * units.Picojoule
	// FRAMWriteEnergy is the energy of one 16-bit FRAM write.
	FRAMWriteEnergy = 600 * units.Picojoule
)

// DMA transfer costs. The DMA controller moves one word in two cycles and
// bypasses the CPU, so it is cheaper per word than a CPU copy loop
// (which costs ~6 cycles/word for load+store+bookkeeping).
const (
	DMASetupCycles   = 12
	DMAWordCycles    = 2
	DMAWordEnergy    = 400 * units.Picojoule
	CPUCopyWordCycle = 6
)

// LEA (Low Energy Accelerator) costs: one multiply-accumulate per cycle
// once a vector command is issued, plus a fixed command-issue overhead.
const (
	LEASetupCycles = 40
	LEAMACCycles   = 1
	LEAMACEnergy   = 200 * units.Picojoule
)

// Runtime bookkeeping costs, expressed in CPU cycles so that they scale
// with the amount of state each runtime touches.
const (
	// FlagCheckCycles is an EaseIO lock-flag test (NV read + branch).
	FlagCheckCycles = 6
	// FlagSetCycles is an EaseIO lock-flag update (NV write).
	FlagSetCycles = 5
	// TimestampCycles reads the persistent timekeeper and stores the value
	// to FRAM (EaseIO Timely semantics).
	TimestampCycles = 24
	// TimeCompareCycles re-reads the timekeeper and compares against the
	// stored timestamp on reboot.
	TimeCompareCycles = 18
	// TaskTransitionCycles is the fixed cost of a task-based runtime
	// transition (update task pointer in FRAM, scheduler dispatch).
	TaskTransitionCycles = 35
	// CommitWordCycles is the per-word cost of committing a privatized
	// variable back to its master copy (Alpaca-style dirty list).
	CommitWordCycles = 5
	// PrivatizeWordCycles is the per-word cost of taking a private copy of
	// a non-volatile variable.
	PrivatizeWordCycles = 4
	// BootCycles is the fixed cost of the post-reboot recovery path every
	// task-based runtime pays (restore task pointer, re-init peripherals).
	BootCycles = 180
)

// Off-state behaviour: while the device is off it consumes nothing; the
// harvester charges the capacitor. LeakagePower models capacitor leakage
// and cold-boot losses while off.
const LeakagePower = 2 * units.Microwatt
