package core

import (
	"strings"
	"testing"
	"time"

	"easeio/internal/kernel"
	"easeio/internal/mem"
	"easeio/internal/power"
	"easeio/internal/task"
)

// --- DMA classification (§4.3) ---

// TestDMASingleSkipsAfterRegionCommit: an NVM→NVM copy is Single; once
// the following region's flag commits, re-attempts skip the transfer.
func TestDMASingleSkipsAfterRegionCommit(t *testing.T) {
	a := task.NewApp("dmasingle")
	src := a.NVConst("src", []uint16{1, 2, 3, 4})
	dst := a.NVBuf("dst", 4)
	d := a.DMA("copy")
	var fin *task.Task
	a.AddTask("main", func(e task.Exec) {
		e.DMACopy(d, task.VarLoc(src, 0), task.VarLoc(dst, 0), 4)
		e.Compute(6000)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)

	dev, rt := run(t, a, power.NewSchedule(3*time.Millisecond, 5*time.Millisecond))
	if dev.Run.DMAExecs != 1 {
		t.Errorf("DMA executions = %d, want 1", dev.Run.DMAExecs)
	}
	if dev.Run.DMASkips != 2 {
		t.Errorf("DMA skips = %d, want 2", dev.Run.DMASkips)
	}
	for i := 0; i < 4; i++ {
		if got := kernel.ReadVar(dev, rt, dst, i); got != uint16(i+1) {
			t.Errorf("dst[%d] = %d", i, got)
		}
	}
}

// TestDMAPrivateSnapshot: the §4.3(ii) two-phase copy — an NVM→LEA-RAM
// transfer re-executed after the source was overwritten must deliver the
// ORIGINAL data from the privatization buffer.
func TestDMAPrivateSnapshot(t *testing.T) {
	a := task.NewApp("dmapriv")
	buf := a.NVBuf("buf", 4).WithInit([]uint16{10, 11, 12, 13})
	dIn := a.DMA("fetch")
	dOut := a.DMA("writeback")
	captured := a.NVBuf("captured", 4)
	var fin *task.Task
	a.AddTask("main", func(e task.Exec) {
		// Fetch buf into LEA-RAM (Private: snapshot taken).
		e.DMACopy(dIn, task.VarLoc(buf, 0), task.RawLoc(uint8(mem.LEARAM), 0), 4)
		// Overwrite the source (Single: dst is non-volatile).
		e.Compute(200)
		for i := 0; i < 4; i++ {
			e.StoreAt(buf, i, 99)
		}
		e.Compute(4000) // failure window: buf is clobbered here
		// Copy what LEA-RAM holds out to a result var for inspection.
		e.DMACopy(dOut, task.RawLoc(uint8(mem.LEARAM), 0), task.VarLoc(captured, 0), 4)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)

	// Failure after the clobber: LEA-RAM clears, the Private fetch
	// re-executes — it must read the snapshot, not the 99s.
	dev, rt := run(t, a, power.NewSchedule(3*time.Millisecond))
	if dev.Run.PowerFailures != 1 {
		t.Fatalf("failures = %d", dev.Run.PowerFailures)
	}
	for i := 0; i < 4; i++ {
		if got := kernel.ReadVar(dev, rt, captured, i); got != uint16(10+i) {
			t.Errorf("captured[%d] = %d, want %d (snapshot source)", i, got, 10+i)
		}
	}
}

// TestDMAVolatileToVolatileAlways: volatile↔volatile copies re-execute
// every attempt with no privatization machinery.
func TestDMAVolatileToVolatileAlways(t *testing.T) {
	a := task.NewApp("dmavol")
	d1 := a.DMA("seed")
	d2 := a.DMA("move")
	src := a.NVConst("src", []uint16{5})
	var fin *task.Task
	a.AddTask("main", func(e task.Exec) {
		e.DMACopy(d1, task.VarLoc(src, 0), task.RawLoc(uint8(mem.LEARAM), 0), 1)
		e.DMACopy(d2, task.RawLoc(uint8(mem.LEARAM), 0), task.RawLoc(uint8(mem.LEARAM), 100), 1)
		e.Compute(4000)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)
	dev, _ := run(t, a, power.NewSchedule(2*time.Millisecond))
	// d2 executes twice (once per attempt): Always semantics.
	if dev.Run.DMAExecs < 4 {
		t.Errorf("DMA executions = %d; volatile copies must repeat", dev.Run.DMAExecs)
	}
	if dev.Run.DMASkips != 0 {
		t.Errorf("skips = %d", dev.Run.DMASkips)
	}
}

// TestDMAExclude: an excluded DMA behaves as Always and takes no
// privatization snapshot — safe only for constant sources (§4.3).
func TestDMAExclude(t *testing.T) {
	build := func(exclude bool) (*task.App, *task.DMASite) {
		a := task.NewApp("dmaexcl")
		coef := a.NVConst("coef", []uint16{1, 2, 3, 4})
		d := a.DMA("fetch")
		if exclude {
			d.Excluded()
		}
		var fin *task.Task
		a.AddTask("main", func(e task.Exec) {
			e.DMACopy(d, task.VarLoc(coef, 0), task.RawLoc(uint8(mem.LEARAM), 0), 4)
			e.Compute(4000)
			e.Next(fin)
		})
		fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
		return a, d
	}

	appEx, _ := build(true)
	analyzed(t, appEx)
	devEx, _ := run(t, appEx, power.NewSchedule(2*time.Millisecond))

	appPriv, _ := build(false)
	analyzed(t, appPriv)
	devPriv, _ := run(t, appPriv, power.NewSchedule(2*time.Millisecond))

	// Excluded copy must cost less runtime overhead than the privatized
	// one (no phase-1 snapshot).
	exOvh := devEx.Run.Work[1].T // stats.Overhead
	privOvh := devPriv.Run.Work[1].T
	if exOvh >= privOvh {
		t.Errorf("Exclude overhead %v must be below Private overhead %v", exOvh, privOvh)
	}
}

// --- Regional privatization (§4.4, Figure 6) ---

// TestFigure6Scenario reproduces the paper's running example exactly:
//
//	Task1:  z = b[0]
//	        DMA_copy(a[0] → b[0])      (Single)
//	        t = b[0]; a[0] = z
//
// A power failure after a[0] = z must not corrupt anything: the DMA is
// skipped on re-execution and regional recovery restores both regions'
// variables.
func TestFigure6Scenario(t *testing.T) {
	buildAndRun := func(failAt time.Duration, cfg Config) (za, ta, aa, ba uint16) {
		app := task.NewApp("fig6")
		va := app.NVBuf("a", 1).WithInit([]uint16{100})
		vb := app.NVBuf("b", 1).WithInit([]uint16{200})
		vz := app.NVInt("z")
		vt := app.NVInt("t")
		d := app.DMA("d")
		var fin *task.Task
		app.AddTask("task1", func(e task.Exec) {
			z := e.Load(vb) // region 1: z = b[0]
			e.Compute(500)
			e.DMACopy(d, task.VarLoc(va, 0), task.VarLoc(vb, 0), 1)
			tt := e.Load(vb) // region 2: t = b[0]
			e.Store(va, z)   // region 2: a[0] = z
			e.Store(vz, z)
			e.Store(vt, tt)
			e.Compute(4000)
			e.Next(fin)
		})
		fin = app.AddTask("fin", func(e task.Exec) { e.Done() })
		analyzed(t, app)
		dev := kernel.NewDevice(power.NewSchedule(failAt), 1)
		rt := NewWithConfig(cfg)
		if err := kernel.RunApp(dev, rt, app); err != nil {
			t.Fatal(err)
		}
		return kernel.ReadVar(dev, rt, vz, 0), kernel.ReadVar(dev, rt, vt, 0),
			kernel.ReadVar(dev, rt, va, 0), kernel.ReadVar(dev, rt, vb, 0)
	}

	// Continuous-power truth: z=200, t=100, a=200, b=100.
	for failAt := 200 * time.Microsecond; failAt <= 4*time.Millisecond; failAt += 200 * time.Microsecond {
		z, tt, av, bv := buildAndRun(failAt, DefaultConfig())
		if z != 200 || tt != 100 || av != 200 || bv != 100 {
			t.Fatalf("failure@%v: z=%d t=%d a=%d b=%d; want 200 100 200 100",
				failAt, z, tt, av, bv)
		}
	}
}

// TestFigure6AblationShowsBug: with regional privatization disabled, the
// same scenario produces the WAR inconsistency the paper describes.
func TestFigure6AblationShowsBug(t *testing.T) {
	app := task.NewApp("fig6bug")
	va := app.NVBuf("a", 1).WithInit([]uint16{100})
	vb := app.NVBuf("b", 1).WithInit([]uint16{200})
	vt := app.NVInt("t")
	d := app.DMA("d")
	var fin *task.Task
	app.AddTask("task1", func(e task.Exec) {
		z := e.Load(vb)
		e.Compute(500)
		e.DMACopy(d, task.VarLoc(va, 0), task.VarLoc(vb, 0), 1)
		tt := e.Load(vb)
		e.Store(va, z)
		e.Store(vt, tt)
		e.Compute(4000)
		e.Next(fin)
	})
	fin = app.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, app)

	cfg := DefaultConfig()
	cfg.RegionalPrivatization = false
	dev := kernel.NewDevice(power.NewSchedule(3*time.Millisecond), 1)
	rt := NewWithConfig(cfg)
	if err := kernel.RunApp(dev, rt, app); err != nil {
		t.Fatal(err)
	}
	// Without regions: after the failure, a[0] = z (=200) persists, the
	// Single DMA is skipped... but nothing restores b or replays the
	// read-consistency, so the re-executed z = b[0] reads 100 (the DMA's
	// output), and t diverges from the continuous result.
	z := kernel.ReadVar(dev, rt, va, 0)
	if z == 200 {
		t.Skip("bug did not manifest at this cut point (schedule drift)")
	}
	if z != 100 {
		t.Logf("a[0] = %d (inconsistent, as expected without regions)", z)
	}
}

// TestPrivBufferExhaustionPanics: §6 — the privatization buffer is a
// hard limit the compiler should check; the runtime reports it loudly.
func TestPrivBufferExhaustionPanics(t *testing.T) {
	a := task.NewApp("privfull")
	big := a.NVBuf("big", 600)
	d := a.DMA("fetch")
	var fin *task.Task
	a.AddTask("main", func(e task.Exec) {
		e.DMACopy(d, task.VarLoc(big, 0), task.RawLoc(uint8(mem.LEARAM), 0), 600)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)

	cfg := DefaultConfig()
	cfg.PrivBufWords = 100
	rt := NewWithConfig(cfg)
	dev := kernel.NewDevice(power.Continuous{}, 1)
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "privatization buffer") {
			t.Errorf("recover = %v", r)
		}
	}()
	_ = kernel.RunApp(dev, rt, a)
}

// TestPrivBufferSharing: two Private DMAs in one task claim disjoint
// buffer chunks; the bump pointer resets at task commit so the next
// instance reuses the space.
func TestPrivBufferSharing(t *testing.T) {
	a := task.NewApp("privshare")
	b1 := a.NVBuf("b1", 40).WithInit(make([]uint16, 40))
	b2 := a.NVBuf("b2", 50).WithInit(make([]uint16, 50))
	d1, d2 := a.DMA("f1"), a.DMA("f2")
	n := a.NVInt("n")
	var loop, fin *task.Task
	loop = a.AddTask("loop", func(e task.Exec) {
		e.DMACopy(d1, task.VarLoc(b1, 0), task.RawLoc(uint8(mem.LEARAM), 0), 40)
		e.DMACopy(d2, task.VarLoc(b2, 0), task.RawLoc(uint8(mem.LEARAM), 100), 50)
		c := e.Load(n) + 1
		e.Store(n, c)
		if c < 4 {
			e.Next(loop)
			return
		}
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)

	cfg := DefaultConfig()
	cfg.PrivBufWords = 100 // fits 40+50 once, but not twice without reset
	rt := NewWithConfig(cfg)
	dev := kernel.NewDevice(power.Continuous{}, 1)
	if err := kernel.RunApp(dev, rt, a); err != nil {
		t.Fatal(err) // exhaustion would panic instead
	}
	if dev.Run.DMAExecs != 8 {
		t.Errorf("DMA executions = %d, want 8", dev.Run.DMAExecs)
	}
}

// --- I/O→DMA dependence (§4.3.1) ---

func TestDMADependsOnIO(t *testing.T) {
	a := task.NewApp("dmadep")
	reads := 0
	sensor := a.TimelyIO("s", 2*time.Millisecond, true, func(e task.Exec, _ int) uint16 {
		reads++
		e.Op(time.Millisecond, 0)
		return uint16(reads * 10)
	})
	staging := a.NVBuf("staging", 1)
	dst := a.NVBuf("dst", 1)
	d := a.DMA("save").AfterIO(sensor)
	var fin *task.Task
	a.AddTask("main", func(e task.Exec) {
		v := e.CallIO(sensor)
		e.Store(staging, v)
		e.DMACopy(d, task.VarLoc(staging, 0), task.VarLoc(dst, 0), 1) // Single kind
		e.Compute(5000)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)

	// Long outage: sensor expires and re-executes with a new value; the
	// Single DMA must re-copy because its dependence changed.
	s := power.NewSchedule(4 * time.Millisecond)
	s.Off = 10 * time.Millisecond
	dev, rt := run(t, a, s)
	if reads-1 != 2 {
		t.Fatalf("sensor reads = %d, want 2", reads-1)
	}
	// The analysis run consumed reading 10; real executions saw 20, then
	// 30 after re-sensing. The Single DMA must carry the NEWEST value.
	if got := kernel.ReadVar(dev, rt, dst, 0); got != 30 {
		t.Errorf("dst = %d, want 30 (the re-sensed value must reach NVM)", got)
	}
	if dev.Run.DMARepeats != 1 {
		t.Errorf("DMA repeats = %d, want 1 (dependence-forced)", dev.Run.DMARepeats)
	}
}

// --- Non-termination avoidance (§3.5) ---

// TestNonTerminationAvoidance: a task whose I/O pushes the attempt beyond
// the energy budget never completes under Alpaca-style all-or-nothing
// re-execution, but EaseIO's committed I/O shortens each re-attempt until
// the task fits.
func TestNonTerminationAvoidance(t *testing.T) {
	build := func() *task.App {
		a := task.NewApp("budget")
		s := a.IO("heavy", task.Single, false, func(e task.Exec, _ int) uint16 {
			e.Op(3*time.Millisecond, 0)
			return 0
		})
		var fin *task.Task
		a.AddTask("main", func(e task.Exec) {
			e.CallIO(s)
			e.Compute(3500)
			e.Next(fin)
		})
		fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
		return a
	}
	// Fixed 5 ms energy cycles: 3 ms I/O + 3.5 ms compute = 6.7 ms > 5 ms.
	cfg := power.TimerConfig{
		OnMin: 5 * time.Millisecond, OnMax: 5 * time.Millisecond,
		OffMin: time.Millisecond, OffMax: time.Millisecond,
	}

	// EaseIO: completes (I/O committed in cycle 1, compute fits cycle 2).
	app := analyzed(t, build())
	dev := kernel.NewDevice(power.NewTimer(cfg), 1)
	if err := kernel.RunApp(dev, New(), app); err != nil {
		t.Fatalf("EaseIO must terminate: %v", err)
	}
	if dev.Run.PowerFailures == 0 {
		t.Error("scenario should involve at least one failure")
	}
}

// TestDMADepForcedReexecutionFreshensRegion: when a dependence change
// forces a completed Single DMA to re-copy, the following region must
// re-privatize — restoring the old snapshot would hand the CPU stale
// data.
func TestDMADepForcedReexecutionFreshensRegion(t *testing.T) {
	a := task.NewApp("depfresh")
	reads := 0
	sensor := a.TimelyIO("s", 2*time.Millisecond, true, func(e task.Exec, _ int) uint16 {
		reads++
		e.Op(time.Millisecond, 0)
		return uint16(reads * 10)
	})
	staging := a.NVBuf("staging", 1)
	dst := a.NVBuf("dst", 1)
	seen := a.NVBuf("seen", 1)
	d := a.DMA("save").AfterIO(sensor)
	var fin *task.Task
	a.AddTask("main", func(e task.Exec) {
		v := e.CallIO(sensor)
		e.Store(staging, v)
		e.DMACopy(d, task.VarLoc(staging, 0), task.VarLoc(dst, 0), 1)
		// CPU reads the DMA output in the following region: the value
		// must track the freshest copy.
		e.Store(seen, e.Load(dst))
		e.Compute(5000)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)

	// Outage long enough to expire the sensor: it re-reads (30 after the
	// analysis run consumed 10), the DMA re-copies, and the region's CPU
	// read must see 30 — not a restored 20.
	s := power.NewSchedule(4 * time.Millisecond)
	s.Off = 10 * time.Millisecond
	dev, rt := run(t, a, s)
	if reads-1 != 2 {
		t.Fatalf("sensor reads = %d, want 2", reads-1)
	}
	if got := kernel.ReadVar(dev, rt, dst, 0); got != 30 {
		t.Errorf("dst = %d, want 30", got)
	}
	if got := kernel.ReadVar(dev, rt, seen, 0); got != 30 {
		t.Errorf("seen = %d, want 30 (stale region restore)", got)
	}
}

// TestPrivBufferClaimIdempotentAcrossRetries: power failures inside a
// Private DMA's snapshot phase must not leak buffer claims — the retry
// reuses the claimed chunk instead of exhausting the buffer.
func TestPrivBufferClaimIdempotentAcrossRetries(t *testing.T) {
	a := task.NewApp("claimretry")
	big := a.NVBuf("big", 60).WithInit(make([]uint16, 60))
	d := a.DMA("fetch")
	var fin *task.Task
	a.AddTask("main", func(e task.Exec) {
		e.Compute(500)
		e.DMACopy(d, task.VarLoc(big, 0), task.RawLoc(uint8(mem.LEARAM), 0), 60)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)

	// Four failures, each landing inside the ~620 µs snapshot phase
	// (which starts at ≈0.7 ms). A leaking claim would need 4×60 = 240
	// words; the buffer has only 100.
	cfg := DefaultConfig()
	cfg.PrivBufWords = 100
	rt := NewWithConfig(cfg)
	sch := power.NewSchedule(760*time.Microsecond, 1520*time.Microsecond,
		2280*time.Microsecond, 3040*time.Microsecond)
	dev := kernel.NewDevice(sch, 1)
	if err := kernel.RunApp(dev, rt, a); err != nil {
		t.Fatal(err)
	}
	if dev.Run.PowerFailures != 4 {
		t.Fatalf("failures = %d, want 4", dev.Run.PowerFailures)
	}
	// The fetch eventually completes and fills LEA-RAM correctly.
	if dev.Run.DMAExecs == 0 {
		t.Error("transfer never completed")
	}
}
