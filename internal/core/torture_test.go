package core

import (
	"fmt"
	"testing"
	"time"

	"easeio/internal/apps"
	"easeio/internal/frontend"
	"easeio/internal/kernel"
	"easeio/internal/power"
	"easeio/internal/task"
)

// TestBenchmarkTortureSweep runs the two WAR-heavy benchmarks under many
// seeds and asserts EaseIO's headline safety claim: zero incorrect
// outputs, ever.
func TestBenchmarkTortureSweep(t *testing.T) {
	seeds := int64(400)
	if testing.Short() {
		seeds = 40
	}
	builders := map[string]func() (*apps.Bench, error){
		"fir": func() (*apps.Bench, error) { return apps.NewFIRApp(apps.DefaultFIRConfig()) },
		"weather": func() (*apps.Bench, error) {
			return apps.NewWeatherApp(apps.DefaultWeatherConfig())
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= seeds; seed++ {
				bench, err := build()
				if err != nil {
					t.Fatal(err)
				}
				dev := kernel.NewDevice(power.NewTimer(power.DefaultTimerConfig()), seed)
				if err := kernel.RunApp(dev, New(), bench.App); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !dev.Run.Correct {
					t.Fatalf("seed %d: EaseIO produced an incorrect result", seed)
				}
			}
		})
	}
}

// TestInstanceCounterWraparound: the per-task instance counter versioning
// the flags is 16 bits; after 65535 commits it must skip the never-set
// sentinel (0) and keep flags sound.
func TestInstanceCounterWraparound(t *testing.T) {
	a := task.NewApp("wrap")
	execs := 0
	s := a.IO("op", task.Single, false, func(e task.Exec, _ int) uint16 {
		execs++
		return 0
	})
	n := a.NVBuf("n", 2) // 32-bit loop counter in two words
	const iters = 66_000 // past the uint16 wrap
	var loop, fin *task.Task
	loop = a.AddTask("loop", func(e task.Exec) {
		e.CallIO(s)
		lo, hi := e.Load(n), e.LoadAt(n, 1)
		lo++
		if lo == 0 {
			hi++
		}
		e.Store(n, lo)
		e.StoreAt(n, 1, hi)
		if int(hi)<<16|int(lo) < iters {
			e.Next(loop)
			return
		}
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	if err := frontend.Analyze(a); err != nil {
		t.Fatal(err)
	}
	dev := kernel.NewDevice(power.Continuous{}, 1)
	if err := kernel.RunApp(dev, New(), a); err != nil {
		t.Fatal(err)
	}
	// Exactly one execution per instance: a stale flag surviving the wrap
	// would cause a skip; a corrupted counter would cause a re-execution
	// miscount.
	if execs-1 != iters {
		t.Fatalf("executions = %d, want %d", execs-1, iters)
	}
	if dev.Run.IOSkips != 0 {
		t.Fatalf("skips = %d; wraparound must not resurrect old flags", dev.Run.IOSkips)
	}
}

// TestTimelyWindowBoundary: a reading aged exactly the window is still
// fresh (the paper's transformation uses `GetTime()-ts < window` — we use
// ≤, tested explicitly so the contract is pinned).
func TestTimelyWindowBoundary(t *testing.T) {
	a := task.NewApp("boundary")
	execs := 0
	s := a.TimelyIO("s", 10*time.Millisecond, true, func(e task.Exec, _ int) uint16 {
		execs++
		e.Op(time.Millisecond, 0)
		return 1
	})
	var fin *task.Task
	a.AddTask("main", func(e task.Exec) {
		e.CallIO(s)
		e.Compute(8000)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	if err := frontend.Analyze(a); err != nil {
		t.Fatal(err)
	}
	// The reading completes at ≈1.2 ms on-time; a failure at 5 ms with a
	// 6 ms outage puts its age at ≈9.9–10 ms on re-check — inside the
	// window. A 7 ms outage puts it just outside.
	for _, tc := range []struct {
		off       time.Duration
		wantExecs int
	}{
		{5800 * time.Microsecond, 1},
		{9 * time.Millisecond, 2},
	} {
		execs = 0
		app := a
		sch := power.NewSchedule(5 * time.Millisecond)
		sch.Off = tc.off
		dev := kernel.NewDevice(sch, 1)
		if err := kernel.RunApp(dev, New(), app); err != nil {
			t.Fatal(err)
		}
		if execs != tc.wantExecs {
			t.Errorf("off=%v: executions = %d, want %d", tc.off, execs, tc.wantExecs)
		}
	}
}

// TestDeeplyNestedBlocks: three levels of nesting with mixed semantics;
// the outermost completed Single block dominates everything (§3.3.1).
func TestDeeplyNestedBlocks(t *testing.T) {
	a := task.NewApp("deep")
	counts := [3]int{}
	mk := func(i int, sem task.Semantic) *task.IOSite {
		if sem == task.Timely {
			return a.TimelyIO(fmt.Sprintf("s%d", i), time.Millisecond, true,
				func(e task.Exec, _ int) uint16 {
					counts[i]++
					e.Op(300*time.Microsecond, 0)
					return uint16(i)
				})
		}
		return a.IO(fmt.Sprintf("s%d", i), sem, true, func(e task.Exec, _ int) uint16 {
			counts[i]++
			e.Op(300*time.Microsecond, 0)
			return uint16(i)
		})
	}
	s0 := mk(0, task.Always)
	s1 := mk(1, task.Timely)
	s2 := mk(2, task.Single)
	outer := a.Block("outer", task.Single)
	mid := a.TimelyBlock("mid", time.Millisecond) // would expire in any outage
	inner := a.Block("inner", task.Single)
	var fin *task.Task
	a.AddTask("main", func(e task.Exec) {
		e.IOBlock(outer, func() {
			e.CallIO(s0)
			e.IOBlock(mid, func() {
				e.CallIO(s1)
				e.IOBlock(inner, func() {
					e.CallIO(s2)
				})
			})
		})
		e.Compute(6000)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	if err := frontend.Analyze(a); err != nil {
		t.Fatal(err)
	}
	sch := power.NewSchedule(4 * time.Millisecond)
	sch.Off = 20 * time.Millisecond // mid's window long expired
	dev := kernel.NewDevice(sch, 1)
	if err := kernel.RunApp(dev, New(), a); err != nil {
		t.Fatal(err)
	}
	// One execution each: the completed outer Single block shields even
	// the Always member and the expired Timely machinery beneath it.
	for i, c := range counts {
		if c-1 != 1 {
			t.Errorf("s%d executions = %d, want 1", i, c-1)
		}
	}
	if dev.Run.IOSkips != 3 {
		t.Errorf("skips = %d, want 3", dev.Run.IOSkips)
	}
}

// TestGenerationCounterOverflow: generation counters are 16-bit and wrap;
// dependence snapshots must stay sound through the wrap (a dependent with
// a matching wrapped snapshot must still skip).
func TestGenerationCounterOverflow(t *testing.T) {
	// Generations bump once per execution; driving 65k executions through
	// the engine is slow, so this asserts the weaker but load-bearing
	// property directly: snapshots compare by equality, not ordering, so
	// wraparound cannot produce a false "unchanged" unless exactly 65536
	// executions happen between snapshot and check — accepted and
	// documented, like the paper's 16-bit flags.
	a := task.NewApp("gen")
	dep := a.IO("dep", task.Always, true, func(e task.Exec, _ int) uint16 { return 0 })
	s := a.IO("s", task.Single, false, func(e task.Exec, _ int) uint16 { return 0 }).After(dep)
	var fin *task.Task
	a.AddTask("main", func(e task.Exec) {
		e.CallIO(dep)
		e.CallIO(s)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	if err := frontend.Analyze(a); err != nil {
		t.Fatal(err)
	}
	dev := kernel.NewDevice(power.Continuous{}, 1)
	if err := kernel.RunApp(dev, New(), a); err != nil {
		t.Fatal(err)
	}
	if dev.Run.IOExecs != 2 {
		t.Errorf("executions = %d", dev.Run.IOExecs)
	}
}
