package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"easeio/internal/frontend"
	"easeio/internal/justdo"
	"easeio/internal/kernel"
	"easeio/internal/mem"
	"easeio/internal/power"
	"easeio/internal/task"
)

// The differential safety property behind the whole paper: for programs
// whose I/O operations are deterministic, an EaseIO execution under ANY
// power-failure schedule must leave non-volatile memory exactly as a
// continuous-power execution would. Random task graphs — variables, CPU
// read-modify-writes, I/O sites of every semantic, I/O blocks, DMA chains
// through volatile LEA-RAM, loops — are generated from a seed and executed
// under swept failure schedules; any divergence is a consistency bug in
// regional privatization, DMA classification or the flag machinery.

// genOp is one step of a generated task body.
type genOp struct {
	kind  int // 0 compute, 1 load-store RMW, 2 callIO, 3 dma, 4 block, 5 loop site
	cyc   int64
	v     *task.NVVar
	idx   int
	site  *task.IOSite
	blk   *task.IOBlock
	inner []*task.IOSite
	d     *task.DMASite
	src   task.Loc
	dst   task.Loc
	words int
}

// genApp builds a random application. All I/O sites return constants, so
// re-execution is value-identical and continuous-power memory is the
// unique correct outcome.
func genApp(seed int64) *task.App {
	rng := rand.New(rand.NewSource(seed))
	a := task.NewApp(fmt.Sprintf("rand%d", seed))

	nVars := 2 + rng.Intn(3)
	vars := make([]*task.NVVar, nVars)
	for i := range vars {
		words := 1 + rng.Intn(8)
		init := make([]uint16, words)
		for w := range init {
			init[w] = uint16(rng.Intn(1000))
		}
		vars[i] = a.NVBuf(fmt.Sprintf("v%d", i), words).WithInit(init)
	}

	nTasks := 1 + rng.Intn(3)
	bodies := make([][]genOp, nTasks)
	var siteCount, dmaCount, blkCount int

	for ti := 0; ti < nTasks; ti++ {
		nOps := 3 + rng.Intn(6)
		leaFilled := false // whether LEA-RAM holds data fetched this task
		for oi := 0; oi < nOps; oi++ {
			op := genOp{kind: rng.Intn(6)}
			switch op.kind {
			case 0: // compute
				op.cyc = int64(100 + rng.Intn(1200))
			case 1: // read-modify-write (WAR pattern)
				op.v = vars[rng.Intn(nVars)]
				op.idx = rng.Intn(op.v.Words)
			case 2, 5: // call site (5 = loop site)
				sem := task.Semantic(rng.Intn(3))
				val := uint16(rng.Intn(500))
				lat := time.Duration(100+rng.Intn(900)) * time.Microsecond
				exec := func(e task.Exec, _ int) uint16 {
					e.Op(lat, 0)
					return val
				}
				var s *task.IOSite
				name := fmt.Sprintf("s%d", siteCount)
				siteCount++
				if sem == task.Timely {
					// A very long window: deterministic sites make expiry
					// re-execution value-identical anyway, but a long
					// window also exercises the skip path.
					s = a.TimelyIO(name, time.Second, true, exec)
				} else {
					s = a.IO(name, sem, true, exec)
				}
				if op.kind == 5 {
					s.Loop(2 + rng.Intn(3))
				}
				op.site = s
				op.v = vars[rng.Intn(nVars)]
				op.idx = rng.Intn(op.v.Words)
			case 3: // DMA
				op.d = a.DMA(fmt.Sprintf("d%d", dmaCount))
				dmaCount++
				switch rng.Intn(3) {
				case 0: // NV → NV (Single)
					src := vars[rng.Intn(nVars)]
					dst := vars[rng.Intn(nVars)]
					for dst == src {
						dst = vars[rng.Intn(nVars)]
					}
					op.words = 1 + rng.Intn(min(src.Words, dst.Words))
					op.src, op.dst = task.VarLoc(src, 0), task.VarLoc(dst, 0)
				case 1: // NV → LEA (Private)
					src := vars[rng.Intn(nVars)]
					op.words = 1 + rng.Intn(src.Words)
					op.src = task.VarLoc(src, 0)
					op.dst = task.RawLoc(uint8(mem.LEARAM), 0)
					leaFilled = true
				case 2: // LEA → NV (Single) — only meaningful after a fetch
					if !leaFilled {
						op.kind = 0
						op.cyc = 300
						break
					}
					dst := vars[rng.Intn(nVars)]
					op.words = 1 + rng.Intn(dst.Words)
					op.src = task.RawLoc(uint8(mem.LEARAM), 0)
					op.dst = task.VarLoc(dst, 0)
				}
			case 4: // I/O block with 1–2 member sites
				op.blk = a.Block(fmt.Sprintf("b%d", blkCount), task.Single)
				blkCount++
				n := 1 + rng.Intn(2)
				for k := 0; k < n; k++ {
					val := uint16(rng.Intn(500))
					lat := time.Duration(100+rng.Intn(500)) * time.Microsecond
					s := a.IO(fmt.Sprintf("s%d", siteCount), task.Semantic(rng.Intn(2)), true,
						func(e task.Exec, _ int) uint16 {
							e.Op(lat, 0)
							return val
						})
					siteCount++
					op.inner = append(op.inner, s)
				}
				op.v = vars[rng.Intn(nVars)]
			}
			bodies[ti] = append(bodies[ti], op)
		}
	}

	// Materialize tasks; each transitions to the next.
	tasks := make([]*task.Task, nTasks)
	for ti := 0; ti < nTasks; ti++ {
		ops := bodies[ti]
		idx := ti
		tasks[ti] = a.AddTask(fmt.Sprintf("t%d", ti), func(e task.Exec) {
			for _, op := range ops {
				switch op.kind {
				case 0:
					e.Compute(op.cyc)
				case 1:
					v := e.LoadAt(op.v, op.idx)
					e.StoreAt(op.v, op.idx, v*3+7)
				case 2:
					e.StoreAt(op.v, op.idx, e.CallIO(op.site))
				case 5:
					for i := 0; i < op.site.Instances; i++ {
						e.StoreAt(op.v, (op.idx+i)%op.v.Words, e.CallIOAt(op.site, i))
					}
				case 3:
					e.DMACopy(op.d, op.src, op.dst, op.words)
				case 4:
					var acc uint16
					e.IOBlock(op.blk, func() {
						for _, s := range op.inner {
							acc += e.CallIO(s)
						}
					})
					e.Store(op.v, acc)
				}
			}
			if idx+1 < nTasks {
				e.Next(tasks[idx+1])
			} else {
				e.Done()
			}
		})
	}
	return a
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// snapshotVars reads every variable's committed words through the runtime.
func snapshotVars(dev *kernel.Device, rt kernel.Hooks, a *task.App) map[string][]uint16 {
	out := map[string][]uint16{}
	for _, v := range a.Vars {
		words := make([]uint16, v.Words)
		for i := range words {
			words[i] = kernel.ReadVar(dev, rt, v, i)
		}
		out[v.Name] = words
	}
	return out
}

func TestRandomizedDifferentialConsistency(t *testing.T) {
	nApps := 40
	if testing.Short() {
		nApps = 8
	}
	for appSeed := int64(1); appSeed <= int64(nApps); appSeed++ {
		appSeed := appSeed
		t.Run(fmt.Sprintf("app%d", appSeed), func(t *testing.T) {
			// Golden: continuous power.
			golden := genApp(appSeed)
			if err := frontend.Analyze(golden); err != nil {
				t.Fatalf("analyze: %v", err)
			}
			gdev := kernel.NewDevice(power.Continuous{}, 1)
			grt := New()
			if err := kernel.RunApp(gdev, grt, golden); err != nil {
				t.Fatalf("golden run: %v", err)
			}
			want := snapshotVars(gdev, grt, golden)
			total := gdev.Clock.OnTime()

			// Sweep single- and double-failure schedules across the run.
			step := total / 12
			if step <= 0 {
				step = time.Millisecond
			}
			runtimes := map[string]func() kernel.Hooks{
				"easeio": func() kernel.Hooks { return New() },
				"justdo": func() kernel.Hooks { return justdo.New() },
			}
			for at := step; at < total; at += step {
				for _, schedule := range [][]time.Duration{
					{at},
					{at, at + step/2},
				} {
					for rtName, newRT := range runtimes {
						app := genApp(appSeed)
						if err := frontend.Analyze(app); err != nil {
							t.Fatal(err)
						}
						dev := kernel.NewDevice(power.NewSchedule(schedule...), 1)
						rt := newRT()
						if err := kernel.RunApp(dev, rt, app); err != nil {
							t.Fatalf("%s schedule %v: %v", rtName, schedule, err)
						}
						got := snapshotVars(dev, rt, app)
						for name, w := range want {
							for i := range w {
								if got[name][i] != w[i] {
									t.Fatalf("%s schedule %v: %s[%d] = %d, want %d (consistency violation)",
										rtName, schedule, name, i, got[name][i], w[i])
								}
							}
						}
					}
				}
			}
		})
	}
}

// TestRandomizedTimeAccounting checks the ledger invariant on random
// workloads: committed bucket time equals powered-on time exactly.
func TestRandomizedTimeAccounting(t *testing.T) {
	for appSeed := int64(50); appSeed < 60; appSeed++ {
		app := genApp(appSeed)
		if err := frontend.Analyze(app); err != nil {
			t.Fatal(err)
		}
		dev := kernel.NewDevice(power.NewTimer(power.DefaultTimerConfig()), appSeed)
		if err := kernel.RunApp(dev, New(), app); err != nil {
			t.Fatal(err)
		}
		var sum time.Duration
		for _, w := range dev.Run.Work {
			sum += w.T
		}
		if sum != dev.Run.OnTime {
			t.Errorf("app %d: buckets %v != on-time %v", appSeed, sum, dev.Run.OnTime)
		}
	}
}
