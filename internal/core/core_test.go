package core

import (
	"strings"
	"testing"
	"time"

	"easeio/internal/frontend"
	"easeio/internal/kernel"
	"easeio/internal/power"
	"easeio/internal/task"
)

func analyzed(t *testing.T, a *task.App) *task.App {
	t.Helper()
	if err := frontend.Analyze(a); err != nil {
		t.Fatal(err)
	}
	return a
}

func runWith(t *testing.T, a *task.App, supply power.Supply, rt *Runtime) (*kernel.Device, *Runtime) {
	t.Helper()
	dev := kernel.NewDevice(supply, 1)
	if err := kernel.RunApp(dev, rt, a); err != nil {
		t.Fatal(err)
	}
	return dev, rt
}

func run(t *testing.T, a *task.App, supply power.Supply) (*kernel.Device, *Runtime) {
	t.Helper()
	return runWith(t, a, supply, New())
}

// --- Single semantics ---

func TestSingleSkipsAfterCompletion(t *testing.T) {
	a := task.NewApp("single")
	execs := 0
	s := a.IO("op", task.Single, true, func(e task.Exec, _ int) uint16 {
		execs++
		e.Op(time.Millisecond, 0)
		return 42
	})
	got := a.NVInt("got")
	var fin *task.Task
	a.AddTask("main", func(e task.Exec) {
		v := e.CallIO(s)
		e.Store(got, v)
		e.Compute(6000)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)

	// Two failures in the compute tail: the op must run exactly once.
	dev, rt := run(t, a, power.NewSchedule(3*time.Millisecond, 6*time.Millisecond))
	if want := 1 + 1; execs != want { // +1 for the analysis run
		t.Errorf("executions = %d, want %d", execs-1, want-1)
	}
	if dev.Run.IOSkips != 2 {
		t.Errorf("skips = %d, want 2", dev.Run.IOSkips)
	}
	// The restored value must flow into the store on every attempt.
	if got := kernel.ReadVar(dev, rt, got, 0); got != 42 {
		t.Errorf("restored value = %d", got)
	}
}

func TestSingleReexecutesIfInterruptedMidOp(t *testing.T) {
	a := task.NewApp("midop")
	execs := 0
	s := a.IO("op", task.Single, false, func(e task.Exec, _ int) uint16 {
		execs++
		e.Op(2*time.Millisecond, 0)
		return 0
	})
	var fin *task.Task
	a.AddTask("main", func(e task.Exec) {
		e.CallIO(s)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)

	// Cut at 1 ms: inside the operation, before its flag is set.
	dev, _ := run(t, a, power.NewSchedule(time.Millisecond))
	if execs-1 != 2 {
		t.Errorf("executions = %d, want 2 (incomplete op must retry)", execs-1)
	}
	if dev.Run.IOSkips != 0 {
		t.Errorf("skips = %d", dev.Run.IOSkips)
	}
}

// TestSingleFlagResetsAcrossTaskInstances: a new dynamic instance of the
// task re-executes its I/O (flags are versioned by the instance counter).
func TestSingleFlagResetsAcrossTaskInstances(t *testing.T) {
	a := task.NewApp("instances")
	execs := 0
	s := a.IO("op", task.Single, false, func(e task.Exec, _ int) uint16 {
		execs++
		return 0
	})
	n := a.NVInt("n")
	var loop, fin *task.Task
	loop = a.AddTask("loop", func(e task.Exec) {
		e.CallIO(s)
		c := e.Load(n) + 1
		e.Store(n, c)
		if c < 3 {
			e.Next(loop)
			return
		}
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)

	_, _ = run(t, a, power.Continuous{})
	if execs-1 != 3 {
		t.Errorf("executions = %d, want 3 (one per task instance)", execs-1)
	}
}

// --- Timely semantics ---

func timelyApp(window time.Duration, execs *int) *task.App {
	a := task.NewApp("timely")
	s := a.TimelyIO("temp", window, true, func(e task.Exec, _ int) uint16 {
		*execs++
		e.Op(time.Millisecond, 0)
		return uint16(*execs)
	})
	var fin *task.Task
	a.AddTask("main", func(e task.Exec) {
		e.CallIO(s)
		e.Compute(5000)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	return a
}

func TestTimelyFreshSkips(t *testing.T) {
	execs := 0
	a := analyzed(t, timelyApp(50*time.Millisecond, &execs))
	// Failure at 3 ms, off 1 ms: the reading is ~3 ms old on reboot —
	// fresh within 50 ms, so it restores.
	dev, _ := run(t, a, power.NewSchedule(3*time.Millisecond))
	if execs-1 != 1 {
		t.Errorf("executions = %d, want 1 (fresh value reused)", execs-1)
	}
	if dev.Run.IOSkips != 1 {
		t.Errorf("skips = %d", dev.Run.IOSkips)
	}
}

func TestTimelyStaleReexecutes(t *testing.T) {
	execs := 0
	a := analyzed(t, timelyApp(2*time.Millisecond, &execs))
	s := power.NewSchedule(4 * time.Millisecond)
	s.Off = 10 * time.Millisecond // reboot gap far beyond the window
	dev, _ := run(t, a, s)
	if execs-1 != 2 {
		t.Errorf("executions = %d, want 2 (stale value re-sensed)", execs-1)
	}
	if dev.Run.IORepeats != 1 {
		t.Errorf("repeats = %d", dev.Run.IORepeats)
	}
}

// --- Always semantics ---

func TestAlwaysReexecutes(t *testing.T) {
	a := task.NewApp("always")
	execs := 0
	s := a.IO("op", task.Always, false, func(e task.Exec, _ int) uint16 {
		execs++
		e.Op(500*time.Microsecond, 0)
		return 0
	})
	var fin *task.Task
	a.AddTask("main", func(e task.Exec) {
		e.CallIO(s)
		e.Compute(5000)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)
	dev, _ := run(t, a, power.NewSchedule(2*time.Millisecond, 4*time.Millisecond))
	if execs-1 != 3 {
		t.Errorf("executions = %d, want 3", execs-1)
	}
	if dev.Run.IOSkips != 0 {
		t.Error("Always must never skip")
	}
}

// --- Loop lock-flag arrays (§6) ---

func TestLoopInstancesSkipIndividually(t *testing.T) {
	a := task.NewApp("loop")
	perIdx := [4]int{}
	s := a.IO("sample", task.Single, true, func(e task.Exec, idx int) uint16 {
		perIdx[idx]++
		e.Op(time.Millisecond, 0)
		return uint16(100 + idx)
	}).Loop(4)
	out := a.NVBuf("out", 4)
	var fin *task.Task
	a.AddTask("main", func(e task.Exec) {
		for i := 0; i < 4; i++ {
			e.StoreAt(out, i, e.CallIOAt(s, i))
		}
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)

	// Cut mid-way through sample 2: completed instances skip on the
	// retry, the interrupted and never-started ones execute.
	dev, rt := run(t, a, power.NewSchedule(2500*time.Microsecond))
	totalExecs := 0
	for _, n := range perIdx {
		totalExecs += n
	}
	// 4 analysis-run invocations + idx 0,1,2 on the first attempt (2 cut
	// mid-flight) + idx 2,3 on the second attempt.
	if totalExecs != 4+3+2 {
		t.Errorf("total executions = %d, want 9", totalExecs)
	}
	if perIdx[0]-1 != 1 || perIdx[1]-1 != 1 || perIdx[2]-1 != 2 || perIdx[3]-1 != 1 {
		t.Errorf("per-instance executions = %v", perIdx)
	}
	if dev.Run.IOSkips != 2 {
		t.Errorf("skips = %d, want 2 (instances 0 and 1)", dev.Run.IOSkips)
	}
	for i := 0; i < 4; i++ {
		if got := kernel.ReadVar(dev, rt, out, i); got != uint16(100+i) {
			t.Errorf("out[%d] = %d", i, got)
		}
	}
}

// TestLoopInstanceOutOfRange guards the lock-array bounds.
func TestLoopInstanceOutOfRange(t *testing.T) {
	a := task.NewApp("oob")
	s := a.IO("x", task.Single, false, func(e task.Exec, _ int) uint16 { return 0 })
	a.AddTask("main", func(e task.Exec) {
		e.CallIOAt(s, 0)
		e.Done()
	})
	analyzed(t, a)
	rt := New()
	dev := kernel.NewDevice(power.Continuous{}, 1)
	if err := rt.Attach(dev, a); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "out of range") {
			t.Errorf("recover = %v", r)
		}
	}()
	rt.CallIO(&kernel.Ctx{Dev: dev, RT: rt}, s, 3)
}

// --- I/O blocks and semantic precedence ---

// TestBlockSingleSkipsMembers: Figure 3's pattern — a completed Single
// block never re-executes, even its Always members.
func TestBlockSingleSkipsMembers(t *testing.T) {
	a := task.NewApp("block")
	tempExecs, humdExecs := 0, 0
	temp := a.TimelyIO("temp", 10*time.Millisecond, true, func(e task.Exec, _ int) uint16 {
		tempExecs++
		e.Op(time.Millisecond, 0)
		return 21
	})
	humd := a.IO("humd", task.Always, true, func(e task.Exec, _ int) uint16 {
		humdExecs++
		e.Op(time.Millisecond, 0)
		return 55
	})
	blk := a.Block("sense", task.Single)
	vt, vh := a.NVInt("vt"), a.NVInt("vh")
	var fin *task.Task
	a.AddTask("main", func(e task.Exec) {
		var tv, hv uint16
		e.IOBlock(blk, func() {
			tv = e.CallIO(temp)
			hv = e.CallIO(humd)
		})
		e.Store(vt, tv)
		e.Store(vh, hv)
		e.Compute(6000)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)

	// Two failures after the block completed.
	dev, rt := run(t, a, power.NewSchedule(4*time.Millisecond, 7*time.Millisecond))
	if tempExecs-1 != 1 || humdExecs-1 != 1 {
		t.Errorf("execs = %d/%d, want 1/1 (block precedence over Always)",
			tempExecs-1, humdExecs-1)
	}
	if got := kernel.ReadVar(dev, rt, vt, 0); got != 21 {
		t.Errorf("vt = %d", got)
	}
	if got := kernel.ReadVar(dev, rt, vh, 0); got != 55 {
		t.Errorf("vh = %d (Always member value must restore inside a completed block)", got)
	}
}

// TestBlockTimelyViolationReexecutesSingleMembers: §4.2.1 — a violated
// Timely block overrides its members' Single flags.
func TestBlockTimelyViolationReexecutesSingleMembers(t *testing.T) {
	a := task.NewApp("violate")
	presExecs := 0
	pres := a.IO("pres", task.Single, true, func(e task.Exec, _ int) uint16 {
		presExecs++
		e.Op(500*time.Microsecond, 0)
		return 7
	})
	blk := a.TimelyBlock("blk", 2*time.Millisecond)
	var fin *task.Task
	a.AddTask("main", func(e task.Exec) {
		e.IOBlock(blk, func() {
			e.CallIO(pres)
		})
		e.Compute(4000)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)

	// Failure at 3 ms with a 10 ms outage: the block's 2 ms constraint is
	// violated, so the Single member must re-execute.
	s := power.NewSchedule(3 * time.Millisecond)
	s.Off = 10 * time.Millisecond
	_, _ = run(t, a, s)
	if presExecs-1 != 2 {
		t.Errorf("pres executions = %d, want 2 (block violation overrides Single)", presExecs-1)
	}
}

// TestBlockMidBlockFailureKeepsMemberFlags: a failure inside the block
// re-runs the block body, but completed Single members still skip
// (Figure 5's per-member flag logic).
func TestBlockMidBlockFailureKeepsMemberFlags(t *testing.T) {
	a := task.NewApp("midblock")
	aExecs, bExecs := 0, 0
	sa := a.IO("sa", task.Single, false, func(e task.Exec, _ int) uint16 {
		aExecs++
		e.Op(time.Millisecond, 0)
		return 0
	})
	sb := a.IO("sb", task.Single, false, func(e task.Exec, _ int) uint16 {
		bExecs++
		e.Op(2*time.Millisecond, 0)
		return 0
	})
	blk := a.Block("blk", task.Single)
	var fin *task.Task
	a.AddTask("main", func(e task.Exec) {
		e.IOBlock(blk, func() {
			e.CallIO(sa)
			e.CallIO(sb)
		})
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)

	// Cut at 2 ms: sa done, sb mid-flight. On retry sa skips, sb runs.
	dev, _ := run(t, a, power.NewSchedule(2*time.Millisecond))
	if aExecs-1 != 1 {
		t.Errorf("sa executions = %d, want 1", aExecs-1)
	}
	if bExecs-1 != 2 {
		t.Errorf("sb executions = %d, want 2", bExecs-1)
	}
	if dev.Run.IOSkips != 1 {
		t.Errorf("skips = %d", dev.Run.IOSkips)
	}
}

// TestNestedBlockPrecedence: Figure 4 — a completed outer Single block
// dominates an expired inner Timely block.
func TestNestedBlockPrecedence(t *testing.T) {
	a := task.NewApp("nested")
	execs := 0
	s := a.IO("s", task.Single, true, func(e task.Exec, _ int) uint16 {
		execs++
		e.Op(500*time.Microsecond, 0)
		return 9
	})
	outer := a.Block("outer", task.Single)
	inner := a.TimelyBlock("inner", time.Millisecond) // will expire in any outage
	var fin *task.Task
	a.AddTask("main", func(e task.Exec) {
		e.IOBlock(outer, func() {
			e.IOBlock(inner, func() {
				e.CallIO(s)
			})
		})
		e.Compute(5000)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)

	sch := power.NewSchedule(3 * time.Millisecond)
	sch.Off = 20 * time.Millisecond // inner window long gone
	_, _ = run(t, a, sch)
	if execs-1 != 1 {
		t.Errorf("executions = %d, want 1 (outer Single has higher scope)", execs-1)
	}
}

// --- Data-dependent re-execution (§3.3.2) ---

func TestDependentSiteReexecutes(t *testing.T) {
	a := task.NewApp("deps")
	tempExecs, sendExecs := 0, 0
	temp := a.TimelyIO("temp", 2*time.Millisecond, true, func(e task.Exec, _ int) uint16 {
		tempExecs++
		e.Op(time.Millisecond, 0)
		return uint16(tempExecs)
	})
	send := a.IO("send", task.Single, false, func(e task.Exec, _ int) uint16 {
		sendExecs++
		e.Op(time.Millisecond, 0)
		return 0
	}).After(temp)
	var fin *task.Task
	a.AddTask("main", func(e task.Exec) {
		e.CallIO(temp)
		e.CallIO(send)
		e.Compute(5000)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)

	// Outage long enough to expire temp: temp re-executes, and send —
	// though Single and completed — must re-send the new value.
	s := power.NewSchedule(4 * time.Millisecond)
	s.Off = 10 * time.Millisecond
	_, _ = run(t, a, s)
	if tempExecs-1 != 2 {
		t.Fatalf("temp executions = %d, want 2", tempExecs-1)
	}
	if sendExecs-1 != 2 {
		t.Errorf("send executions = %d, want 2 (dependence forces re-send)", sendExecs-1)
	}
}

func TestIndependentSingleStaysSkipped(t *testing.T) {
	// Control for the test above: without the dependence, send stays
	// skipped even though temp re-executed.
	a := task.NewApp("nodeps")
	tempExecs, sendExecs := 0, 0
	temp := a.TimelyIO("temp", 2*time.Millisecond, true, func(e task.Exec, _ int) uint16 {
		tempExecs++
		e.Op(time.Millisecond, 0)
		return 0
	})
	send := a.IO("send", task.Single, false, func(e task.Exec, _ int) uint16 {
		sendExecs++
		e.Op(time.Millisecond, 0)
		return 0
	})
	var fin *task.Task
	a.AddTask("main", func(e task.Exec) {
		e.CallIO(temp)
		e.CallIO(send)
		e.Compute(5000)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)
	s := power.NewSchedule(4 * time.Millisecond)
	s.Off = 10 * time.Millisecond
	_, _ = run(t, a, s)
	if tempExecs-1 != 2 || sendExecs-1 != 1 {
		t.Errorf("execs = %d/%d, want 2/1", tempExecs-1, sendExecs-1)
	}
}

// --- Unsafe program execution (Figure 2c) ---

func TestBranchStability(t *testing.T) {
	a := task.NewApp("branch")
	reading := uint16(5)
	temp := a.IO("temp", task.Single, true, func(e task.Exec, _ int) uint16 {
		e.Op(time.Millisecond, 0)
		v := reading
		reading = 25 // the next physical reading would take the other branch
		return v
	})
	stdy, alarm := a.NVInt("stdy"), a.NVInt("alarm")
	var fin *task.Task
	a.AddTask("main", func(e task.Exec) {
		v := e.CallIO(temp)
		if v < 10 {
			e.Store(stdy, 1)
		} else {
			e.Store(alarm, 1)
		}
		e.Compute(6000)
		e.Next(fin)
	}).Touches(stdy, alarm)
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)
	reading = 5 // reset after the analysis run consumed one value

	dev, rt := run(t, a, power.NewSchedule(4*time.Millisecond))
	gs, ga := kernel.ReadVar(dev, rt, stdy, 0), kernel.ReadVar(dev, rt, alarm, 0)
	if gs != 1 || ga != 0 {
		t.Errorf("stdy=%d alarm=%d; value privatization must pin the branch", gs, ga)
	}
}
