// Package core implements the EaseIO runtime — the paper's contribution.
//
// EaseIO extends the task-based execution model with:
//
//   - Re-execution semantics for I/O (§3.1, §4.2): every _call_IO site
//     carries Single, Timely(Δt) or Always semantics. Completion is
//     tracked with a per-site (per loop instance) lock flag in FRAM;
//     Timely sites additionally store a persistent timestamp. Completed
//     Single/Timely operations are skipped after reboots, and sites with
//     return values restore the last value from a non-volatile private
//     copy — which also keeps control flow on the branch the original
//     execution took (§3.5).
//   - I/O blocks with semantic precedence (§3.3, §4.2.1): a block's
//     semantic has higher scope than its members'. A completed, valid
//     block skips entirely (members restore their values); a violated
//     Timely block clears its members' lock flags so everything inside
//     re-executes.
//   - Data-dependence re-execution (§3.3.2, §4.3.1): every site keeps a
//     generation counter bumped on execution; dependent sites and DMAs
//     snapshot their dependencies' generations and re-execute on mismatch.
//   - Memory-safe DMA (§4.3): _DMA_copy classifies endpoints at run time —
//     destination in FRAM ⇒ Single; FRAM→volatile ⇒ Private (two-phase
//     copy through a privatization buffer); volatile→volatile ⇒ Always.
//     The Exclude annotation opts constant data out of privatization.
//   - Regional privatization (§4.4): a task with N DMAs is split into N+1
//     regions. At region entry the runtime either snapshots all
//     non-volatile variables the region touches (first entry) or restores
//     them (re-entry after a power failure). The region flag doubles as
//     the preceding DMA's completion marker, making "DMA executed" and
//     "its effects are recoverable" a single atomic fact.
//
// Durable flags are versioned rather than cleared: each task has a
// non-volatile instance counter, and a flag is "set" when it equals the
// counter. Committing a task bumps the counter — one FRAM write
// invalidates every flag of that task at once, exactly what a fresh
// dynamic instance needs.
package core

import (
	"fmt"
	"time"

	"easeio/internal/dma"
	"easeio/internal/kernel"
	"easeio/internal/mcu"
	"easeio/internal/mem"
	"easeio/internal/rtbase"
	"easeio/internal/task"
	"easeio/internal/units"
)

// Config tunes the runtime. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	// PrivBufWords sizes the shared DMA privatization buffer (§4.3 case
	// ii). The paper's evaluation uses 4 KB (§5.4.5). Applications with
	// no Private DMAs can set it to zero.
	PrivBufWords int
	// RegionalPrivatization can be disabled for ablation studies. With it
	// off, EaseIO still skips completed I/O but provides no protection
	// against DMA-induced WAR bugs.
	RegionalPrivatization bool
	// ValuePrivatization can be disabled for ablation: sites with return
	// values then re-execute instead of restoring (unsafe control flow).
	ValuePrivatization bool
}

// DefaultConfig matches the paper's evaluation setup.
func DefaultConfig() Config {
	return Config{
		PrivBufWords:          4 * 1024 / 2,
		RegionalPrivatization: true,
		ValuePrivatization:    true,
	}
}

// Runtime is one per-run EaseIO instance. All attach-time metadata lives
// in flat slices indexed by the program's dense IDs (site, block, DMA,
// task), so the per-I/O hot paths never hash pointers.
type Runtime struct {
	rtbase.Base
	cfg Config

	sites   []siteMeta     // by I/O site ID
	blocks  []blockMeta    // by I/O block ID
	dmas    []dmaMeta      // by DMA site ID
	regions [][]regionMeta // by task ID, then region index
	// instCtr maps task ID to the NV instance-counter address.
	instCtr []mem.Addr

	// privBuf is the shared DMA privatization buffer.
	privBuf mem.Addr
	// privBufNext is the persistent bump pointer into the buffer.
	privBufNext mem.Addr

	// Volatile per-attempt state.
	curTask        *task.Task
	regionIdx      int
	blockSkipDepth int
}

// siteMeta holds the FRAM metadata of one I/O site: per-instance flag,
// value and timestamp slots, plus a site-wide generation counter and
// per-instance dependence snapshots. info points at the frozen program
// table record (semantic, window, instance count, dependence IDs) and ok
// marks sites the analysis attached; owner is the owning task's ID
// (flags are versioned against that task's instance counter).
type siteMeta struct {
	info  *task.SiteInfo
	ok    bool
	owner int32
	flags mem.Addr // Instances words
	gen   mem.Addr // 1 word
	vals  mem.Addr // Instances words (if Returns)
	ts    mem.Addr // Instances × 4 words (if Timely)
	snaps mem.Addr // Instances × len(Deps) words
}

type blockMeta struct {
	info  *task.BlockInfo
	ok    bool
	owner int32
	flag  mem.Addr // 1 word
	ts    mem.Addr // 4 words (if Timely)
}

type dmaMeta struct {
	info *task.DMAInfo
	ok   bool
	// privFlag marks a valid snapshot in the privatization buffer.
	privFlag mem.Addr
	// claimFlag marks a claimed buffer chunk (separately from the
	// snapshot being complete, so interrupted snapshots retry into the
	// same chunk instead of leaking claims).
	claimFlag mem.Addr
	// privOff stores the claimed buffer offset (persistent).
	privOff mem.Addr
	// snaps holds dependence generation snapshots.
	snaps mem.Addr
	// regionAfter is the region index entered once this DMA completes.
	regionAfter int
	taskID      int
}

type regionMeta struct {
	flag mem.Addr
	// vars are the privatized word ranges; copies holds the matching
	// private-copy addresses.
	vars   []task.RegionVar
	copies []mem.Addr
}

// New returns an EaseIO runtime with the default configuration.
func New() *Runtime { return NewWithConfig(DefaultConfig()) }

// NewWithConfig returns an EaseIO runtime with an explicit configuration.
func NewWithConfig(cfg Config) *Runtime { return &Runtime{cfg: cfg} }

var _ kernel.Hooks = (*Runtime)(nil)

// Name implements kernel.Hooks.
func (r *Runtime) Name() string { return "EaseIO" }

const rtName = "EaseIO"

// Attach implements kernel.Hooks: allocates lock flags, value privates,
// timestamps, generation counters, dependence snapshots, region private
// copies and the DMA privatization buffer.
func (r *Runtime) Attach(dev *kernel.Device, app *task.App) error {
	if err := r.Init(dev, app, rtName); err != nil {
		return err
	}
	r.sites = make([]siteMeta, len(app.Sites))
	for i := range r.sites {
		r.sites[i].owner = -1
	}
	r.blocks = make([]blockMeta, len(app.Blks))
	for i := range r.blocks {
		r.blocks[i].owner = -1
	}
	r.dmas = make([]dmaMeta, len(app.DMAs))
	r.regions = make([][]regionMeta, len(app.Tasks))
	r.instCtr = make([]mem.Addr, len(app.Tasks))

	for _, t := range app.Tasks {
		r.instCtr[t.ID] = dev.Mem.Alloc(mem.FRAM, rtName, "inst:"+t.Name, 1)
		dev.Mem.Write(r.instCtr[t.ID], 1)
	}

	// Ownership: each site/block/DMA must belong to exactly one task, so
	// that flag versioning against the task instance counter is sound.
	for _, t := range app.Tasks {
		m := r.Meta(t)
		for _, s := range m.Sites {
			sm := &r.sites[s.ID]
			if sm.owner >= 0 && int(sm.owner) != t.ID {
				return fmt.Errorf("core: I/O site %q used by tasks %q and %q; "+
					"declare one site per task (the paper's compiler names flags per function×task)",
					s.Name, app.Tasks[sm.owner].Name, t.Name)
			}
			sm.owner = int32(t.ID)
		}
		for _, b := range m.Blocks {
			r.blocks[b.ID].owner = int32(t.ID)
		}
	}

	for _, t := range app.Tasks {
		m := r.Meta(t)
		for _, s := range m.Sites {
			sm := &r.sites[s.ID]
			sm.info = r.Prog.SiteInfo(s.ID)
			sm.ok = true
			n := s.Instances
			sm.flags = dev.Mem.Alloc(mem.FRAM, rtName, "lock:"+s.Name, n)
			sm.gen = dev.Mem.Alloc(mem.FRAM, rtName, "gen:"+s.Name, 1)
			if s.Returns {
				sm.vals = dev.Mem.Alloc(mem.FRAM, rtName, "priv:"+s.Name, n)
			}
			if s.Sem == task.Timely {
				sm.ts = dev.Mem.Alloc(mem.FRAM, rtName, "ts:"+s.Name, 4*n)
			}
			if len(s.DependsOn) > 0 {
				sm.snaps = dev.Mem.Alloc(mem.FRAM, rtName, "dep:"+s.Name, n*len(s.DependsOn))
			}
		}
		for _, b := range m.Blocks {
			bm := &r.blocks[b.ID]
			bm.info = r.Prog.BlockInfo(b.ID)
			bm.ok = true
			bm.flag = dev.Mem.Alloc(mem.FRAM, rtName, "blk:"+b.Name, 1)
			if b.Sem == task.Timely {
				bm.ts = dev.Mem.Alloc(mem.FRAM, rtName, "blkts:"+b.Name, 4)
			}
		}
		r.regions[t.ID] = make([]regionMeta, len(m.Regions))
		for i, reg := range m.Regions {
			rm := &r.regions[t.ID][i]
			rm.flag = dev.Mem.Alloc(mem.FRAM, rtName, fmt.Sprintf("reg:%s:%d", t.Name, i), 1)
			if r.cfg.RegionalPrivatization {
				for _, rv := range reg.Vars {
					rm.vars = append(rm.vars, rv)
					rm.copies = append(rm.copies,
						dev.Mem.Alloc(mem.FRAM, rtName,
							fmt.Sprintf("regpriv:%s:%d:%s", t.Name, i, rv.Var.Name), rv.Words()))
				}
			}
		}
		for _, d := range m.DMAs {
			dm := &r.dmas[d.ID]
			dm.info = r.Prog.DMAInfo(d.ID)
			dm.ok = true
			dm.taskID = t.ID
			dm.privFlag = dev.Mem.Alloc(mem.FRAM, rtName, "dmaflag:"+d.Name, 1)
			dm.claimFlag = dev.Mem.Alloc(mem.FRAM, rtName, "dmaclaim:"+d.Name, 1)
			dm.privOff = dev.Mem.Alloc(mem.FRAM, rtName, "dmaoff:"+d.Name, 1)
			if len(d.DependsOn) > 0 {
				dm.snaps = dev.Mem.Alloc(mem.FRAM, rtName, "dmadep:"+d.Name, len(d.DependsOn))
			}
			for i, reg := range m.Regions {
				if reg.EndDMA == d {
					dm.regionAfter = i + 1
				}
			}
			if dm.regionAfter == 0 {
				return fmt.Errorf("core: DMA site %q not found at a region boundary of task %q", d.Name, t.Name)
			}
		}
	}

	// The privatization buffer exists only for applications with DMA
	// operations; DMA-free apps pay just the per-site flag bytes
	// (§5.4.5: "the temperature sensing application ... has no DMA
	// privatization buffer").
	if r.cfg.PrivBufWords > 0 && len(app.DMAs) > 0 {
		r.privBuf = dev.Mem.Alloc(mem.FRAM, rtName, "dmaprivbuf", r.cfg.PrivBufWords)
	}
	if len(app.DMAs) > 0 {
		r.privBufNext = dev.Mem.Alloc(mem.FRAM, rtName, "dmaprivnext", 1)
	}
	return nil
}

var _ kernel.Resetter = (*Runtime)(nil)

// Reset implements kernel.Resetter: returns the attached runtime to its
// post-Attach state on a device whose memory Device.Reset just cleared.
// All flag/generation/timestamp/snapshot words and the privatization bump
// pointer are already zero; the only durable words Attach writes nonzero
// are the instance counters (1 = "first instance"), which versioned flags
// compare against, so rewriting those restores the exact attach state.
func (r *Runtime) Reset(dev *kernel.Device) error {
	r.ResetRun(dev)
	for _, a := range r.instCtr {
		dev.Mem.Write(a, 1)
	}
	r.curTask = nil
	r.regionIdx = 0
	r.blockSkipDepth = 0
	return nil
}

var _ kernel.SnapshotterInto = (*Runtime)(nil)

// SnapshotState implements kernel.Snapshotter. All of EaseIO's durable
// bookkeeping (flags, generations, timestamps, instance counters, the
// privatization bump pointer) lives in FRAM and is captured by the
// device snapshot; what remains is rtbase's measurement bookkeeping. The
// current task, region index and block skip depth are per-attempt and
// rebuilt by OnBoot.
func (r *Runtime) SnapshotState() any { return r.SnapshotBaseInto(nil) }

// SnapshotStateInto implements kernel.SnapshotterInto.
func (r *Runtime) SnapshotStateInto(prev any) any {
	p, _ := prev.(*rtbase.BaseState)
	return r.SnapshotBaseInto(p)
}

// RestoreState implements kernel.Snapshotter.
func (r *Runtime) RestoreState(dev *kernel.Device, state any) {
	r.RestoreBase(dev, *state.(*rtbase.BaseState))
	r.curTask = nil
	r.regionIdx = 0
	r.blockSkipDepth = 0
}

// --- helpers ---

func (r *Runtime) inst(taskID int) uint16 { return r.Dev.Mem.Read(r.instCtr[taskID]) }

func (r *Runtime) flagSet(a mem.Addr, taskID int) bool {
	return r.Dev.Mem.Read(a) == r.inst(taskID)
}

func (r *Runtime) setFlag(a mem.Addr, taskID int) { r.Dev.Mem.Write(a, r.inst(taskID)) }

func (r *Runtime) clearFlag(a mem.Addr) { r.Dev.Mem.Write(a, 0) }

func (r *Runtime) writeTime(a mem.Addr, t time.Duration) {
	us := uint64(t / time.Microsecond)
	for i := 0; i < 4; i++ {
		r.Dev.Mem.Write(a.Add(i), uint16(us>>(16*i)))
	}
}

func (r *Runtime) readTime(a mem.Addr) time.Duration {
	var us uint64
	for i := 0; i < 4; i++ {
		us |= uint64(r.Dev.Mem.Read(a.Add(i))) << (16 * i)
	}
	return time.Duration(us) * time.Microsecond
}

// --- lifecycle hooks ---

// OnBoot implements kernel.Hooks.
func (r *Runtime) OnBoot(c *kernel.Ctx) {
	r.LoadBoot(c)
	r.blockSkipDepth = 0
	r.regionIdx = 0
	r.curTask = r.Current()
}

// CurrentTask implements kernel.Hooks.
func (r *Runtime) CurrentTask() *task.Task { return r.Current() }

// BeginTask implements kernel.Hooks: enter region 0 (privatize or
// recover).
func (r *Runtime) BeginTask(c *kernel.Ctx, t *task.Task) {
	r.curTask = t
	r.blockSkipDepth = 0
	r.enterRegion(c, 0)
}

// Transition implements kernel.Hooks: one FRAM write bumps the task's
// instance counter, invalidating all of its flags at once.
func (r *Runtime) Transition(c *kernel.Ctx, next *task.Task) {
	t := r.curTask
	hasDMAs := len(r.Meta(t).DMAs) > 0
	c.ChargeMemAccess(mem.FRAM, true, true) // instance counter bump
	if hasDMAs {
		c.ChargeMemAccess(mem.FRAM, true, true) // privatization-buffer bump pointer reset
	}
	r.CommitTransition(c, next, func() {
		ctr := r.instCtr[t.ID]
		v := r.Dev.Mem.Read(ctr) + 1
		if v == 0 {
			v = 1 // skip the never-set sentinel on wraparound
		}
		r.Dev.Mem.Write(ctr, v)
		if hasDMAs {
			r.Dev.Mem.Write(r.privBufNext, 0)
		}
	})
	r.curTask = nil
}

// --- variable access (direct to master; regions provide the undo log) ---

// Load implements kernel.Hooks.
func (r *Runtime) Load(c *kernel.Ctx, v *task.NVVar, i int) uint16 {
	c.ChargeMemAccess(mem.FRAM, false, false)
	return r.Dev.Mem.Read(r.MasterAddr(v).Add(i))
}

// Store implements kernel.Hooks.
func (r *Runtime) Store(c *kernel.Ctx, v *task.NVVar, i int, val uint16) {
	c.ChargeMemAccess(mem.FRAM, true, false)
	r.Dev.Mem.Write(r.MasterAddr(v).Add(i), val)
}

// LoadRun implements kernel.BulkLoader: the sum of words [off, off+n) of
// v, charged exactly like n successive Load calls. Words that provably
// complete before the supply's next failure point are charged in one
// bulk add and read through a pre-validated view; the remainder goes
// through the per-word Load so a power failure lands on the exact word
// the unfused loop would have failed on.
func (r *Runtime) LoadRun(c *kernel.Ctx, v *task.NVVar, off, n int) uint16 {
	wdt := mcu.Cycles(mcu.FRAMReadCycles)
	free, ok := c.BulkFree(n, wdt)
	if !ok {
		free = 0
	}
	var s uint16
	if free > 0 {
		c.BulkCharge(time.Duration(free)*wdt, units.Energy(free)*mcu.FRAMReadEnergy, false)
		view := r.Dev.Mem.View(r.MasterAddr(v).Add(off), free)
		for j := 0; j < free; j++ {
			s += view.At(j)
		}
	}
	for j := free; j < n; j++ {
		s += r.Load(c, v, off+j)
	}
	return s
}

// AddrOf implements kernel.Hooks.
func (r *Runtime) AddrOf(v *task.NVVar) mem.Addr { return r.MasterAddr(v) }

// --- I/O sites ---

// CallIO implements kernel.Hooks. Semantic, window, instance count and
// dependence list all come from the frozen program tables through the
// site's flat metadata record.
func (r *Runtime) CallIO(c *kernel.Ctx, s *task.IOSite, idx int) uint16 {
	if uint(s.ID) >= uint(len(r.sites)) || !r.sites[s.ID].ok {
		panic(fmt.Sprintf("core: I/O site %q not attached (missing from analysis?)", s.Name))
	}
	sm := &r.sites[s.ID]
	info := sm.info
	if idx < 0 || idx >= info.Instances {
		panic(fmt.Sprintf("core: site %q instance %d out of range (declare .Loop(n))", s.Name, idx))
	}
	taskID := int(sm.owner)

	// An enclosing completed block skips everything inside (§3.3.1:
	// higher scope, higher precedence).
	if r.blockSkipDepth > 0 {
		return r.restoreValue(c, s, sm, idx)
	}

	if info.Sem != task.Always {
		c.ChargeOverheadCycles(mcu.FlagCheckCycles)
		done := r.flagSet(sm.flags.Add(idx), taskID)
		if done && r.depsChanged(c, sm, idx) {
			done = false
		}
		if done && info.Sem == task.Timely {
			c.ChargeOverheadCycles(mcu.TimeCompareCycles)
			last := r.readTime(sm.ts.Add(4 * idx))
			if c.Now()-last > info.Window {
				done = false
			}
		}
		if done {
			return r.restoreValue(c, s, sm, idx)
		}
	}
	return r.executeSite(c, s, sm, idx, taskID)
}

// restoreValue skips a completed operation, restoring its private value.
func (r *Runtime) restoreValue(c *kernel.Ctx, s *task.IOSite, sm *siteMeta, idx int) uint16 {
	r.NoteIOSkip(s)
	if !sm.info.Returns {
		return 0
	}
	if !r.cfg.ValuePrivatization {
		// Ablation: no stored value; re-execute instead (unsafe).
		return r.executeSite(c, s, sm, idx, int(sm.owner))
	}
	c.ChargeMemAccess(mem.FRAM, false, true)
	return r.Dev.Mem.Read(sm.vals.Add(idx))
}

// depsChanged compares stored dependence snapshots against the current
// generation counters.
func (r *Runtime) depsChanged(c *kernel.Ctx, sm *siteMeta, idx int) bool {
	deps := sm.info.Deps
	changed := false
	for di, dep := range deps {
		c.ChargeOverheadCycles(mcu.FlagCheckCycles)
		dm := &r.sites[dep]
		if !dm.ok {
			continue
		}
		snap := r.Dev.Mem.Read(sm.snaps.Add(idx*len(deps) + di))
		if snap != r.Dev.Mem.Read(dm.gen) {
			changed = true
		}
	}
	return changed
}

// executeSite runs the operation and makes its completion durable: private
// value, timestamp, lock flag, generation bump and dependence snapshots
// are charged first and applied together; then the operation's work is
// committed in the ledger (its durable flag means no future attempt will
// redo it).
func (r *Runtime) executeSite(c *kernel.Ctx, s *task.IOSite, sm *siteMeta, idx, taskID int) uint16 {
	info := sm.info
	mark := r.Dev.Ledger.Mark()
	val := r.ExecIO(c, s, idx)

	if info.Returns && r.cfg.ValuePrivatization {
		c.ChargeMemAccess(mem.FRAM, true, true)
	}
	if info.Sem == task.Timely {
		c.ChargeOverheadCycles(mcu.TimestampCycles)
	}
	c.ChargeOverheadCycles(mcu.FlagSetCycles) // lock flag
	c.ChargeOverheadCycles(mcu.FlagSetCycles) // generation bump
	c.ChargeOverheadCycles(int64(len(info.Deps)) * mcu.FlagSetCycles)

	// Apply the durable state after the charges survived.
	if info.Returns && r.cfg.ValuePrivatization {
		r.Dev.Mem.Write(sm.vals.Add(idx), val)
	}
	if info.Sem == task.Timely {
		r.writeTime(sm.ts.Add(4*idx), c.Now())
	}
	if info.Sem != task.Always {
		r.setFlag(sm.flags.Add(idx), taskID)
	}
	r.Dev.Mem.Write(sm.gen, r.Dev.Mem.Read(sm.gen)+1)
	for di, dep := range info.Deps {
		if dm := &r.sites[dep]; dm.ok {
			r.Dev.Mem.Write(sm.snaps.Add(idx*len(info.Deps)+di), r.Dev.Mem.Read(dm.gen))
		}
	}
	if info.Sem != task.Always {
		r.Dev.Ledger.CommitSince(mark)
	}
	return val
}

// --- I/O blocks ---

// IOBlock implements kernel.Hooks.
func (r *Runtime) IOBlock(c *kernel.Ctx, b *task.IOBlock, body func()) {
	if uint(b.ID) >= uint(len(r.blocks)) || !r.blocks[b.ID].ok {
		panic(fmt.Sprintf("core: I/O block %q not attached", b.Name))
	}
	bm := &r.blocks[b.ID]
	info := bm.info
	if r.blockSkipDepth > 0 {
		// An outer completed block dominates: skip this block too.
		r.blockSkipDepth++
		body()
		r.blockSkipDepth--
		return
	}
	taskID := int(bm.owner)

	c.ChargeOverheadCycles(mcu.FlagCheckCycles)
	done := r.flagSet(bm.flag, taskID)
	valid := true
	if done && info.Sem == task.Timely {
		c.ChargeOverheadCycles(mcu.TimeCompareCycles)
		valid = c.Now()-r.readTime(bm.ts) <= info.Window
	}
	if done && valid && info.Sem != task.Always {
		// Completed and still valid: members restore their outputs.
		if r.Dev.TraceOn() {
			r.Dev.Trace(kernel.EvBlockSkip, "%s", b.Name)
		}
		r.blockSkipDepth++
		body()
		r.blockSkipDepth--
		return
	}
	if done && !valid {
		// Violation: block semantics override member semantics — every
		// member (including nested blocks) re-executes (§4.2.1).
		if r.Dev.TraceOn() {
			r.Dev.Trace(kernel.EvBlockViolation, "%s", b.Name)
		}
		r.invalidateBlock(c, info)
	}

	mark := r.Dev.Ledger.Mark()
	body()

	if info.Sem == task.Timely {
		c.ChargeOverheadCycles(mcu.TimestampCycles)
	}
	c.ChargeOverheadCycles(mcu.FlagSetCycles)
	if info.Sem == task.Timely {
		r.writeTime(bm.ts, c.Now())
	}
	if info.Sem != task.Always {
		r.setFlag(bm.flag, taskID)
		r.Dev.Ledger.CommitSince(mark)
	}
}

// invalidateBlock clears the lock flags of every member site and nested
// block, forcing re-execution under the block's semantics.
func (r *Runtime) invalidateBlock(c *kernel.Ctx, info *task.BlockInfo) {
	for _, s := range info.Members {
		sm := &r.sites[s]
		if !sm.ok {
			continue
		}
		c.ChargeOverheadCycles(mcu.FlagSetCycles)
		for i := 0; i < sm.info.Instances; i++ {
			r.clearFlag(sm.flags.Add(i))
		}
	}
	for _, sub := range info.SubBlocks {
		if bm := &r.blocks[sub]; bm.ok {
			c.ChargeOverheadCycles(mcu.FlagSetCycles)
			r.clearFlag(bm.flag)
		}
		r.invalidateBlock(c, r.Prog.BlockInfo(int(sub)))
	}
}

// --- DMA ---

// DMACopy implements kernel.Hooks: classify, apply the matching
// re-execution semantic, then cross into the next privatization region.
func (r *Runtime) DMACopy(c *kernel.Ctx, d *task.DMASite, src, dst task.Loc, words int) {
	if uint(d.ID) >= uint(len(r.dmas)) || !r.dmas[d.ID].ok {
		panic(fmt.Sprintf("core: DMA site %q not attached", d.Name))
	}
	dm := &r.dmas[d.ID]
	srcA, dstA := c.ResolveLoc(src), c.ResolveLoc(dst)
	if err := dma.Validate(srcA, dstA, words); err != nil {
		panic(err)
	}
	kind := dma.Classify(srcA.Bank, dstA.Bank)
	if dm.info.Exclude {
		// Programmer-excluded: handled as Always at compile time (§4.3);
		// no classification or privatization work at run time.
		kind = task.DMAVolatileToVolatile
	} else {
		c.ChargeOverheadCycles(mcu.FlagCheckCycles) // runtime classification
	}
	if r.Dev.TraceOn() {
		r.Dev.Trace(kernel.EvDMAClass, "%s kind=%v exclude=%v", d.Name, kind, dm.info.Exclude)
	}

	depsChanged := r.dmaDepsChanged(c, dm)

	switch kind {
	case task.DMAToNonVolatile:
		// Single: completion is the following region's flag.
		reg := &r.regions[dm.taskID][dm.regionAfter]
		c.ChargeOverheadCycles(mcu.FlagCheckCycles)
		done := r.flagSet(reg.flag, dm.taskID) && !depsChanged
		if done {
			r.NoteDMASkip(d)
		} else {
			mark := r.Dev.Ledger.Mark()
			r.ExecDMA(c, d, srcA, dstA, words)
			r.snapDMADeps(c, dm)
			if r.flagSet(reg.flag, dm.taskID) {
				// A dependence change re-executed a completed transfer:
				// the old region snapshot is stale. Clear the flag so the
				// region re-privatizes with the fresh data instead of
				// restoring the previous instance's copies (§4.3.1).
				c.ChargeOverheadCycles(mcu.FlagSetCycles)
				r.clearFlag(reg.flag)
			}
			r.enterRegion(c, dm.regionAfter)
			r.Dev.Ledger.CommitSince(mark)
			return
		}

	case task.DMANonVolatileToVolatile:
		// Private: snapshot the source once, then always copy from the
		// snapshot — later writes to the source cannot corrupt
		// re-executions (§4.3 case ii).
		c.ChargeOverheadCycles(mcu.FlagCheckCycles)
		haveSnap := r.flagSet(dm.privFlag, dm.taskID) && !depsChanged
		off := int(r.Dev.Mem.Read(dm.privOff))
		if !haveSnap {
			off = r.claimPrivBuf(c, d, dm, words)
			mark := r.Dev.Ledger.Mark()
			c.RawDMA(srcA, r.privBuf.Add(off), words, true) // phase 1: snapshot
			c.ChargeOverheadCycles(mcu.FlagSetCycles)
			c.ChargeMemAccess(mem.FRAM, true, true)
			r.setFlag(dm.privFlag, dm.taskID)
			r.Dev.Mem.Write(dm.privOff, uint16(off))
			r.snapDMADeps(c, dm)
			r.Dev.Ledger.CommitSince(mark)
		}
		// Phase 2: privatization buffer → destination (repeats after
		// every reboot because the destination is volatile).
		r.ExecDMA(c, d, r.privBuf.Add(off), dstA, words)

	case task.DMAVolatileToVolatile:
		// Always: repetition is harmless.
		r.ExecDMA(c, d, srcA, dstA, words)
	}

	r.enterRegion(c, dm.regionAfter)
}

func (r *Runtime) dmaDepsChanged(c *kernel.Ctx, dm *dmaMeta) bool {
	changed := false
	for di, dep := range dm.info.Deps {
		c.ChargeOverheadCycles(mcu.FlagCheckCycles)
		sm := &r.sites[dep]
		if !sm.ok {
			continue
		}
		if r.Dev.Mem.Read(dm.snaps.Add(di)) != r.Dev.Mem.Read(sm.gen) {
			changed = true
		}
	}
	return changed
}

func (r *Runtime) snapDMADeps(c *kernel.Ctx, dm *dmaMeta) {
	for di, dep := range dm.info.Deps {
		sm := &r.sites[dep]
		if !sm.ok {
			continue
		}
		c.ChargeOverheadCycles(mcu.FlagSetCycles)
		r.Dev.Mem.Write(dm.snaps.Add(di), r.Dev.Mem.Read(sm.gen))
	}
}

// claimPrivBuf reserves words of the shared privatization buffer for a DMA
// snapshot. The claim is idempotent per task instance: a power failure
// inside the snapshot retries into the same chunk instead of leaking a
// new claim (a leak would exhaust the buffer under repeated failures).
// The bump pointer is persistent and resets at task commit.
func (r *Runtime) claimPrivBuf(c *kernel.Ctx, d *task.DMASite, dm *dmaMeta, words int) int {
	c.ChargeOverheadCycles(mcu.FlagCheckCycles)
	if r.flagSet(dm.claimFlag, dm.taskID) {
		c.ChargeMemAccess(mem.FRAM, false, true)
		return int(r.Dev.Mem.Read(dm.privOff))
	}
	c.ChargeMemAccess(mem.FRAM, false, true)
	off := int(r.Dev.Mem.Read(r.privBufNext))
	if off+words > r.cfg.PrivBufWords {
		panic(fmt.Sprintf("core: DMA %q needs %d words but the privatization buffer has %d/%d free; "+
			"increase Config.PrivBufWords (the paper flags this as a compile-time check, §6)",
			d.Name, words, r.cfg.PrivBufWords-off, r.cfg.PrivBufWords))
	}
	// Charge the three claim writes, then apply them together.
	c.ChargeMemAccess(mem.FRAM, true, true)
	c.ChargeMemAccess(mem.FRAM, true, true)
	c.ChargeOverheadCycles(mcu.FlagSetCycles)
	r.Dev.Mem.Write(r.privBufNext, uint16(off+words))
	r.Dev.Mem.Write(dm.privOff, uint16(off))
	r.setFlag(dm.claimFlag, dm.taskID)
	return off
}

// --- regional privatization ---

// enterRegion privatizes (first entry) or recovers (re-entry) the region's
// non-volatile variables; the flag write is what makes the preceding DMA
// count as complete (§4.4).
func (r *Runtime) enterRegion(c *kernel.Ctx, idx int) {
	r.regionIdx = idx
	if !r.cfg.RegionalPrivatization {
		return
	}
	t := r.curTask
	regs := r.regions[t.ID]
	if uint(idx) >= uint(len(regs)) {
		panic(fmt.Sprintf("core: task %q has no region %d (stale analysis?)", t.Name, idx))
	}
	rm := &regs[idx]
	c.ChargeOverheadCycles(mcu.FlagCheckCycles)
	if r.flagSet(rm.flag, t.ID) {
		// Recovery: restore every region range from its private copy,
		// undoing partial work from the interrupted attempt.
		if r.Dev.TraceOn() {
			r.Dev.Trace(kernel.EvRegionRestore, "%s region %d (%d ranges)", t.Name, idx, len(rm.vars))
		}
		for vi, rv := range rm.vars {
			c.ChargeOverheadCycles(int64(rv.Words()) * mcu.CommitWordCycles)
			master := r.MasterAddr(rv.Var).Add(rv.Lo)
			r.copyRange(rm.copies[vi], master, rv.Words())
		}
		return
	}
	// Privatization: snapshot every region range, then set the flag.
	// Charges happen first; the snapshot and flag apply together so an
	// interrupted privatization simply reruns.
	for _, rv := range rm.vars {
		c.ChargeOverheadCycles(int64(rv.Words()) * mcu.PrivatizeWordCycles)
	}
	c.ChargeOverheadCycles(mcu.FlagSetCycles)
	if r.Dev.TraceOn() {
		r.Dev.Trace(kernel.EvRegionPrivatize, "%s region %d (%d ranges)", t.Name, idx, len(rm.vars))
	}
	for vi, rv := range rm.vars {
		master := r.MasterAddr(rv.Var).Add(rv.Lo)
		r.copyRange(master, rm.copies[vi], rv.Words())
	}
	r.setFlag(rm.flag, t.ID)
}

// copyRange moves n words from src to dst with the exact counting and
// high-water effects of the word-by-word Read/Write loop it replaces.
// The charges were applied by the caller before the copy (the
// charge-before-apply invariant); the copy itself is mechanical, so the
// bulk move is byte-identical whenever the ranges do not overlap (region
// private copies never alias their master range — distinct allocations).
func (r *Runtime) copyRange(src, dst mem.Addr, n int) {
	if n <= 0 {
		return
	}
	w := r.Dev.Mem.CopyWindowFor(src, dst, n)
	if w.Bulkable() {
		w.MoveN(0, n)
		return
	}
	for i := 0; i < n; i++ {
		w.Move(i)
	}
}

// RegionIndex exposes the current region for tests.
func (r *Runtime) RegionIndex() int { return r.regionIdx }
