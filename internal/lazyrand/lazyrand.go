// Package lazyrand provides a rand.Source64 whose output stream is
// bit-identical to math/rand.NewSource(seed) but whose Seed is O(1)
// instead of O(607·3) LCG steps.
//
// Why it exists: the simulator reseeds its supply randomness once per
// run (power.Timer.Reset), and a pooled sweep executes tens of
// thousands of short runs per second. math/rand's rngSource.Seed
// initializes all 607 lagged-Fibonacci state words eagerly (~1.8k LCG
// applications, ~µs), which profiled at a third of sweep CPU — for runs
// that typically draw only a handful of values. This source defers
// state-word initialization to first use: Seed stores the normalized
// LCG seed and clears a 607-bit "initialized" bitmap (ten words), and
// each draw materializes at most two state words on demand via an O(1)
// LCG jump (precomputed powers of the multiplier mod 2³¹−1).
//
// Equivalence is not assumed, it is checked: math/rand's additive
// constants (rngCooked) are unexported, so init derives them by solving
// the lagged-Fibonacci recurrence backwards from the observable draws
// of a known seed, then verifies long interleaved streams for several
// seeds against the real source. If any of that fails (say, a future
// Go release changes the frozen generator), the package falls back to
// delegating every Source to math/rand — always correct, merely slow.
package lazyrand

import "math/rand"

const (
	rngLen  = 607
	rngTap  = 273
	rngMask = 1<<63 - 1

	int32max = 1<<31 - 1 // the LCG modulus (a Mersenne prime)
	lcgA     = 48271     // the LCG multiplier
	lcgQ     = 44488     // int32max / lcgA, for Schrage's method
	lcgC     = 3399      // int32max % lcgA
)

// seedrand computes (lcgA·x) mod int32max by Schrage's method, exactly
// as math/rand does. x must be in [1, int32max−1]; so is the result.
func seedrand(x int32) int32 {
	hi := x / lcgQ
	lo := x % lcgQ
	x = lcgA*lo - lcgC*hi
	if x < 0 {
		x += int32max
	}
	return x
}

// mulmod returns (a·b) mod int32max. Operands are below 2³¹ so the
// product fits uint64 with room to spare.
func mulmod(a, b int32) int32 {
	return int32(uint64(a) * uint64(b) % int32max)
}

// jumpPow[i] = lcgA^(21+3i) mod int32max: state word i of a freshly
// seeded rngSource is built from LCG iterates 21+3i, 22+3i, 23+3i of
// the normalized seed (iterates 1..20 are warmup discard), so one
// modular multiply jumps straight to the first of the three.
var jumpPow [rngLen]int32

// cooked[i] is math/rand's rngCooked[i], recovered at init by
// deriveCooked. Valid only when derived is true.
var cooked [rngLen]uint64

// derived reports whether cooked was recovered and verified against
// math/rand. When false every Source delegates to rand.NewSource.
var derived bool

func init() {
	p := int32(lcgA)
	for i := 0; i < 20; i++ { // p = lcgA^21 after the loop
		p = seedrand(p)
	}
	step := seedrand(seedrand(seedrand(1))) // lcgA^3
	for i := range jumpPow {
		jumpPow[i] = p
		p = mulmod(p, step)
	}
	derived = deriveCooked() && verify()
}

// normalize maps an arbitrary seed to the LCG start value in
// [1, int32max−1], exactly as rngSource.Seed does.
func normalize(seed int64) int32 {
	seed %= int32max
	if seed < 0 {
		seed += int32max
	}
	if seed == 0 {
		seed = 89482311
	}
	return int32(seed)
}

// seededWord computes state word i of a fresh rngSource for the
// normalized seed x0, without touching the other 606 words.
func seededWord(x0 int32, i int) int64 {
	x := mulmod(jumpPow[i], x0)
	u := uint64(x) << 40
	x = seedrand(x)
	u ^= uint64(x) << 20
	x = seedrand(x)
	u ^= uint64(x)
	u ^= cooked[i]
	return int64(u)
}

// deriveCooked recovers rngCooked from the draws of a known seed.
//
// A fresh source starts at tap=0, feed=rngLen−rngTap=334; draw n
// (1-based) reads indices f(n)=(334−n) mod 607 and t(n)=(−n) mod 607,
// stores their sum back at f(n), and returns it. Each index is fed at
// most once in the first 607 draws, so with D[n] the n-th draw and
// V[i] the initial state:
//
//	n ≤ 273:        D[n] = V[334−n] + V[607−n]   (tap not yet fed)
//	274 ≤ n ≤ 334:  D[n] = V[334−n] + D[n−273]   → V[60..0]
//	335 ≤ n ≤ 607:  D[n] = V[941−n] + D[n−273]   → V[606..334]
//
// and substituting the third line's results back into the first yields
// V[333..61]. XOR-ing each V[i] against the seed-dependent part (which
// we can compute) leaves rngCooked[i]. Addition wraps int64 in both
// directions, so subtraction recovers the summands exactly.
func deriveCooked() bool {
	const knownSeed = 1
	src, ok := rand.NewSource(knownSeed).(rand.Source64)
	if !ok {
		return false
	}
	var d [rngLen + 1]int64 // 1-based
	for n := 1; n <= rngLen; n++ {
		d[n] = int64(src.Uint64())
	}
	var v [rngLen]int64
	for n := 274; n <= 334; n++ {
		v[334-n] = d[n] - d[n-273]
	}
	for n := 335; n <= 607; n++ {
		v[941-n] = d[n] - d[n-273]
	}
	for n := 1; n <= 273; n++ {
		v[334-n] = d[n] - v[607-n]
	}
	x := normalize(knownSeed)
	for i := 0; i < 20; i++ {
		x = seedrand(x)
	}
	for i := range v {
		x = seedrand(x)
		u := uint64(x) << 40
		x = seedrand(x)
		u ^= uint64(x) << 20
		x = seedrand(x)
		u ^= uint64(x)
		cooked[i] = uint64(v[i]) ^ u
	}
	return true
}

// verify replays interleaved Int63/Uint64 draws for a spread of seeds
// against math/rand, long enough to wrap the lagged-Fibonacci window
// twice. Run once at init; failure flips the package to fallback mode.
func verify() bool {
	for _, seed := range []int64{0, 1, -1, 42, 1<<62 + 12345, -987654321} {
		want, ok := rand.NewSource(seed).(rand.Source64)
		if !ok {
			return false
		}
		var got Source
		got.seedFast(seed)
		for i := 0; i < 2*rngLen+100; i++ {
			if i%3 == 0 {
				if got.Int63() != want.Int63() {
					return false
				}
			} else if got.Uint64() != want.Uint64() {
				return false
			}
		}
	}
	return true
}

// Source is a rand.Source64 bit-identical to math/rand.NewSource with
// O(1) reseeding. The zero value is not ready; call Seed (or use New)
// first. Not safe for concurrent use, same as math/rand's source.
type Source struct {
	vec  [rngLen]int64
	live [(rngLen + 63) / 64]uint64 // bitmap: vec[i] is materialized
	x0   int32                      // normalized LCG seed
	tap  int32
	feed int32
	fb   rand.Source64 // fallback delegate when !derived
}

// New returns a source seeded with seed, equivalent to
// rand.NewSource(seed) draw for draw.
func New(seed int64) *Source {
	s := &Source{}
	s.Seed(seed)
	return s
}

// Seed resets the source to the stream of rand.NewSource(seed).
func (s *Source) Seed(seed int64) {
	if !derived {
		if s.fb == nil {
			s.fb = rand.NewSource(seed).(rand.Source64)
		} else {
			s.fb.Seed(seed)
		}
		return
	}
	s.seedFast(seed)
}

func (s *Source) seedFast(seed int64) {
	s.x0 = normalize(seed)
	s.tap = 0
	s.feed = rngLen - rngTap
	clear(s.live[:])
}

// word returns vec[i], materializing it from the seed on first touch.
func (s *Source) word(i int32) int64 {
	w, b := uint(i)/64, uint(i)%64
	if s.live[w]&(1<<b) == 0 {
		s.vec[i] = seededWord(s.x0, int(i))
		s.live[w] |= 1 << b
	}
	return s.vec[i]
}

// Uint64 implements rand.Source64.
func (s *Source) Uint64() uint64 {
	if s.fb != nil {
		return s.fb.Uint64()
	}
	s.tap--
	if s.tap < 0 {
		s.tap += rngLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += rngLen
	}
	x := s.word(s.feed) + s.word(s.tap)
	s.vec[s.feed] = x
	return uint64(x)
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() & rngMask)
}

// Derived reports whether the fast path is active (the generator
// constants were recovered and verified at init). Exposed for tests.
func Derived() bool { return derived }
