package lazyrand

import (
	"math/rand"
	"testing"
)

// TestDerived pins that the fast path actually engaged against this
// toolchain's math/rand — if it silently fell back, the package would
// be correct but the reseed win (the reason it exists) would be gone.
func TestDerived(t *testing.T) {
	if !Derived() {
		t.Fatal("lazyrand fell back to math/rand: cooked-constant derivation or verification failed")
	}
}

// TestStreamIdentical compares long interleaved draw sequences against
// rand.NewSource for a spread of seeds, including the normalization
// edge cases (zero, negatives, values beyond the LCG modulus).
func TestStreamIdentical(t *testing.T) {
	seeds := []int64{0, 1, -1, 2, 89482311, -89482311, 1<<31 - 1, 1 << 31, 1<<63 - 1, -1 << 62, 424242}
	for _, seed := range seeds {
		want := rand.NewSource(seed).(rand.Source64)
		got := New(seed)
		for i := 0; i < 3*rngLen; i++ {
			switch i % 3 {
			case 0:
				if g, w := got.Int63(), want.Int63(); g != w {
					t.Fatalf("seed %d draw %d (Int63): got %d want %d", seed, i, g, w)
				}
			default:
				if g, w := got.Uint64(), want.Uint64(); g != w {
					t.Fatalf("seed %d draw %d (Uint64): got %d want %d", seed, i, g, w)
				}
			}
		}
	}
}

// TestReseed pins that reseeding an existing source in place lands on
// exactly the fresh source's stream — the per-run reuse pattern.
func TestReseed(t *testing.T) {
	s := New(7)
	for i := 0; i < 100; i++ {
		s.Uint64()
	}
	for _, seed := range []int64{7, 99, 0, -3} {
		s.Seed(seed)
		want := rand.NewSource(seed).(rand.Source64)
		for i := 0; i < rngLen+50; i++ {
			if g, w := s.Uint64(), want.Uint64(); g != w {
				t.Fatalf("after reseed %d, draw %d: got %d want %d", seed, i, g, w)
			}
		}
	}
}

// TestRandNewCompatible pins the composed behavior behind the real call
// sites: rand.New on this source must produce the same Int63n/Float64
// sequences as rand.New(rand.NewSource(seed)).
func TestRandNewCompatible(t *testing.T) {
	for _, seed := range []int64{1, 12345, -8} {
		want := rand.New(rand.NewSource(seed))
		got := rand.New(New(seed))
		for i := 0; i < 500; i++ {
			if g, w := got.Int63n(1<<40+7), want.Int63n(1<<40+7); g != w {
				t.Fatalf("seed %d draw %d Int63n: got %d want %d", seed, i, g, w)
			}
			if g, w := got.Float64(), want.Float64(); g != w {
				t.Fatalf("seed %d draw %d Float64: got %g want %g", seed, i, g, w)
			}
		}
	}
}

// BenchmarkReseedAndDraw models the per-run pattern: reseed, draw a
// handful of values. This is the sweep hot path lazyrand exists for.
func BenchmarkReseedAndDraw(b *testing.B) {
	b.Run("lazyrand", func(b *testing.B) {
		s := New(1)
		for i := 0; i < b.N; i++ {
			s.Seed(int64(i))
			for j := 0; j < 8; j++ {
				s.Uint64()
			}
		}
	})
	b.Run("mathrand", func(b *testing.B) {
		s := rand.NewSource(1).(rand.Source64)
		for i := 0; i < b.N; i++ {
			s.Seed(int64(i))
			for j := 0; j < 8; j++ {
				s.Uint64()
			}
		}
	})
}
