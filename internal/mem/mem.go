// Package mem models the banked memory of an MSP430FR5994-class device:
// a large non-volatile FRAM bank, a small volatile SRAM bank, and the
// volatile LEA-RAM the vector accelerator operates on.
//
// Memory is word-addressed (16-bit words, matching the MSP430). The model
// is deliberately a plain state machine: it stores words, clears volatile
// banks on power failure, and counts accesses. Time and energy accounting
// belongs to the execution kernel, which charges costs *before* touching
// memory so that a power failure can cut an operation between the charge
// and the state change — the property idempotence bugs depend on.
package mem

import (
	"fmt"
	"sort"
)

// Bank identifies one of the device's memory banks.
type Bank uint8

// The device's banks.
const (
	// FRAM is the non-volatile main memory (persists across power failures).
	FRAM Bank = iota
	// SRAM is the volatile main memory (cleared on power failure).
	SRAM
	// LEARAM is the volatile RAM the LEA vector accelerator reads and
	// writes (cleared on power failure).
	LEARAM

	numBanks
)

// String returns the conventional name of the bank.
func (b Bank) String() string {
	switch b {
	case FRAM:
		return "FRAM"
	case SRAM:
		return "SRAM"
	case LEARAM:
		return "LEA-RAM"
	default:
		return fmt.Sprintf("Bank(%d)", uint8(b))
	}
}

// Volatile reports whether the bank loses its contents on power failure.
func (b Bank) Volatile() bool { return b != FRAM }

// Addr names a word inside a bank.
type Addr struct {
	Bank Bank
	Word int // word offset within the bank
}

// Add returns the address n words past a.
func (a Addr) Add(n int) Addr { return Addr{a.Bank, a.Word + n} }

// String formats the address as BANK+offset.
func (a Addr) String() string { return fmt.Sprintf("%s+0x%04x", a.Bank, a.Word) }

// Sizes of the modeled banks, in 16-bit words. They match the
// MSP430FR5994: 256 KB FRAM, 4 KB SRAM, 4 KB LEA-RAM.
const (
	FRAMWords   = 256 * 1024 / 2
	SRAMWords   = 4 * 1024 / 2
	LEARAMWords = 4 * 1024 / 2
)

// Counters tallies accesses to one bank.
type Counters struct {
	Reads  int64
	Writes int64
}

// Memory is the full banked memory of one device.
type Memory struct {
	banks     [numBanks][]uint16
	alloc     [numBanks]int // bump-allocator watermark, in words
	counts    [numBanks]Counters
	highWater [numBanks]int // 1 + highest word ever written
	regions   []Region      // allocation records for accounting
}

// Region records one allocation, for memory-overhead accounting (Table 6).
type Region struct {
	Name  string
	Owner string // "app" or a runtime name; used to attribute overhead
	Addr  Addr
	Words int
}

// New returns a zeroed memory with MSP430FR5994 bank sizes.
func New() *Memory {
	m := &Memory{}
	m.banks[FRAM] = make([]uint16, FRAMWords)
	m.banks[SRAM] = make([]uint16, SRAMWords)
	m.banks[LEARAM] = make([]uint16, LEARAMWords)
	return m
}

// Size returns the capacity of the bank in words.
func (m *Memory) Size(b Bank) int { return len(m.banks[b]) }

// Allocated returns the bump-allocator watermark of the bank in words.
func (m *Memory) Allocated(b Bank) int { return m.alloc[b] }

// Alloc reserves n words in bank b and records the allocation under the
// given name and owner. It panics if the bank is exhausted: the simulated
// applications have fixed, known footprints, so exhaustion is a programming
// error, not a runtime condition.
func (m *Memory) Alloc(b Bank, owner, name string, n int) Addr {
	if n < 0 {
		panic(fmt.Sprintf("mem: negative allocation %q (%d words)", name, n))
	}
	if m.alloc[b]+n > len(m.banks[b]) {
		panic(fmt.Sprintf("mem: %s exhausted allocating %q (%d words, %d free)",
			b, name, n, len(m.banks[b])-m.alloc[b]))
	}
	a := Addr{b, m.alloc[b]}
	m.alloc[b] += n
	m.regions = append(m.regions, Region{Name: name, Owner: owner, Addr: a, Words: n})
	return a
}

// Regions returns a copy of the allocation records.
func (m *Memory) Regions() []Region {
	out := make([]Region, len(m.regions))
	copy(out, m.regions)
	return out
}

// OwnerWords returns the number of words allocated in bank b attributed to
// the given owner.
func (m *Memory) OwnerWords(b Bank, owner string) int {
	total := 0
	for _, r := range m.regions {
		if r.Addr.Bank == b && r.Owner == owner {
			total += r.Words
		}
	}
	return total
}

// Owners returns the distinct owners that have allocations, sorted.
func (m *Memory) Owners() []string {
	set := map[string]bool{}
	for _, r := range m.regions {
		set[r.Owner] = true
	}
	out := make([]string, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// check validates an address. The failure path lives in checkFail so that
// check — and the Read/Write hot paths around it — stay inlinable. The
// unsigned comparison folds the negative-word and past-end tests into
// one branch, which keeps Read/Write within the inlining budget at their
// own call sites (the DMA word loop lives or dies by this).
func (m *Memory) check(a Addr, what string) {
	if uint(a.Bank) >= uint(numBanks) || uint(a.Word) >= uint(len(m.banks[a.Bank])) {
		m.checkFail(a, what)
	}
}

func (m *Memory) checkFail(a Addr, what string) {
	if a.Bank >= numBanks {
		panic(fmt.Sprintf("mem: %s of invalid bank %d", what, a.Bank))
	}
	panic(fmt.Sprintf("mem: %s out of range: %s", what, a))
}

// Read returns the word at a and counts the access.
func (m *Memory) Read(a Addr) uint16 {
	m.check(a, "read")
	m.counts[a.Bank].Reads++
	return m.banks[a.Bank][a.Word]
}

// Write stores v at a and counts the access.
func (m *Memory) Write(a Addr, v uint16) {
	m.check(a, "write")
	m.counts[a.Bank].Writes++
	if a.Word+1 > m.highWater[a.Bank] {
		m.highWater[a.Bank] = a.Word + 1
	}
	m.banks[a.Bank][a.Word] = v
}

// HighWater returns 1 + the highest word offset ever written in bank b —
// the bank's effective footprint (used by the Table 6 memory report for
// volatile banks, which have no allocator).
func (m *Memory) HighWater(b Bank) int { return m.highWater[b] }

// ReadBlock copies n words starting at a into dst (which must have length
// ≥ n). It counts n reads.
func (m *Memory) ReadBlock(a Addr, dst []uint16, n int) {
	m.check(a, "block read")
	m.check(a.Add(n-1), "block read end")
	m.counts[a.Bank].Reads += int64(n)
	copy(dst[:n], m.banks[a.Bank][a.Word:a.Word+n])
}

// WriteBlock stores the first n words of src starting at a and counts
// n writes.
func (m *Memory) WriteBlock(a Addr, src []uint16, n int) {
	m.check(a, "block write")
	m.check(a.Add(n-1), "block write end")
	m.counts[a.Bank].Writes += int64(n)
	if a.Word+n > m.highWater[a.Bank] {
		m.highWater[a.Bank] = a.Word + n
	}
	copy(m.banks[a.Bank][a.Word:a.Word+n], src[:n])
}

// Counts returns the access counters of bank b.
func (m *Memory) Counts(b Bank) Counters { return m.counts[b] }

// CopyWindow is a pre-validated word-at-a-time copy between two ranges —
// the DMA hot path. Constructing one performs every word's bounds check
// up front; Move then transfers word i with exactly the counting and
// high-water effects of Read followed by Write, but cheap enough to
// inline into the kernel's per-word charge loop. A window is invalidated
// by anything that reallocates the memory (nothing does after New).
type CopyWindow struct {
	src, dst []uint16
	reads    *int64
	writes   *int64
	hw       *int
	dstBase  int
	bulk     bool
}

// CopyWindowFor validates the n-word source and destination ranges and
// returns a window over them. n must be positive.
func (m *Memory) CopyWindowFor(src, dst Addr, n int) CopyWindow {
	m.check(src, "read")
	m.check(src.Add(n-1), "read")
	m.check(dst, "write")
	m.check(dst.Add(n-1), "write")
	return CopyWindow{
		src:     m.banks[src.Bank][src.Word : src.Word+n],
		dst:     m.banks[dst.Bank][dst.Word : dst.Word+n],
		reads:   &m.counts[src.Bank].Reads,
		writes:  &m.counts[dst.Bank].Writes,
		hw:      &m.highWater[dst.Bank],
		dstBase: dst.Word,
		// A destination that starts inside the source range (same bank,
		// later start) makes the forward word-at-a-time copy propagate
		// already-copied values; only then does MoveN's memmove diverge.
		bulk: !(src.Bank == dst.Bank && dst.Word > src.Word && dst.Word < src.Word+n),
	}
}

// Move copies word i of the window, counting one read and one write.
func (w *CopyWindow) Move(i int) {
	*w.reads++
	*w.writes++
	if b := w.dstBase + i + 1; b > *w.hw {
		*w.hw = b
	}
	w.dst[i] = w.src[i]
}

// Bulkable reports whether MoveN is byte-equivalent to the same words
// moved one Move at a time (false only for value-propagating overlap).
func (w *CopyWindow) Bulkable() bool { return w.bulk }

// MoveN copies words [i, i+n) of the window at once, with the exact
// counting and high-water effects of n consecutive Move calls.
func (w *CopyWindow) MoveN(i, n int) {
	if n <= 0 {
		return
	}
	*w.reads += int64(n)
	*w.writes += int64(n)
	if b := w.dstBase + i + n; b > *w.hw {
		*w.hw = b
	}
	copy(w.dst[i:i+n], w.src[i:i+n])
}

// ReadView is a pre-validated read-only view of a word range, for tight
// scan loops (the output checker reads every word of every result
// variable once per run). At counts one read per call, identical to
// per-word Read.
type ReadView struct {
	words []uint16
	reads *int64
}

// View validates the n-word range at a and returns a read view of it.
func (m *Memory) View(a Addr, n int) ReadView {
	m.check(a, "read")
	if n > 0 {
		m.check(a.Add(n-1), "read")
	}
	return ReadView{words: m.banks[a.Bank][a.Word : a.Word+n], reads: &m.counts[a.Bank].Reads}
}

// At returns word i of the view and counts the read.
func (v ReadView) At(i int) uint16 {
	*v.reads++
	return v.words[i]
}

// Reset clears all memory contents, access counters and high-water marks
// while preserving the allocator state and allocation records, so a
// runtime attached to this memory keeps its addresses valid across runs.
// Only words that can have been written are cleared: runtime-mediated
// writes stay below the allocator watermark and raw writes (DMA into
// LEA-RAM) below the high-water mark, so clearing up to the larger of the
// two restores the bank to its as-new all-zero state.
func (m *Memory) Reset() {
	for b := Bank(0); b < numBanks; b++ {
		n := m.alloc[b]
		if m.highWater[b] > n {
			n = m.highWater[b]
		}
		clear(m.banks[b][:n])
		m.counts[b] = Counters{}
		m.highWater[b] = 0
	}
}

// PowerFailure clears every volatile bank, exactly what a real power
// failure does to SRAM and LEA-RAM. FRAM contents survive. Only the used
// prefix is touched: every write path (Read/Write, blocks, copy windows)
// maintains the high-water mark, and Restore re-establishes it, so words
// above max(alloc, highWater) are provably zero already — clearing them
// again cost a full 4 KB memclr per bank per failure, which showed up in
// sweep profiles.
func (m *Memory) PowerFailure() {
	for b := Bank(0); b < numBanks; b++ {
		if !b.Volatile() {
			continue
		}
		clear(m.banks[b][:m.usedWords(b)])
	}
}

// Snapshot captures the full contents of one bank.
type Snapshot struct {
	Bank  Bank
	Words []uint16
}

// Snapshot returns a copy of the current contents of bank b.
func (m *Memory) Snapshot(b Bank) Snapshot {
	words := make([]uint16, len(m.banks[b]))
	copy(words, m.banks[b])
	return Snapshot{Bank: b, Words: words}
}

// Restore overwrites bank contents from a snapshot taken earlier. It
// raises the bank's high-water mark over any restored nonzero word, so
// the invariant that words above the used prefix are zero (which
// PowerFailure and Reset rely on to clear only that prefix) survives
// restoring a snapshot with a larger footprint.
func (m *Memory) Restore(s Snapshot) {
	if len(s.Words) != len(m.banks[s.Bank]) {
		panic(fmt.Sprintf("mem: restore size mismatch for %s: %d vs %d",
			s.Bank, len(s.Words), len(m.banks[s.Bank])))
	}
	copy(m.banks[s.Bank], s.Words)
	for i := len(s.Words) - 1; i >= m.usedWords(s.Bank); i-- {
		if s.Words[i] != 0 {
			m.highWater[s.Bank] = i + 1
			break
		}
	}
}

// DeviceSnapshot captures the full mid-run state of a Memory: every
// bank's used prefix plus the access counters and high-water marks. The
// allocator state (watermarks and region records) is deliberately not
// copied — a snapshot may only be restored into a memory with the same
// allocation layout, which RestoreAll verifies. Copying just the used
// prefix (everything at or below max(alloc, highWater) per bank, the
// same bound Reset clears) keeps snapshots proportional to the app's
// footprint instead of the 256 KB FRAM bank.
type DeviceSnapshot struct {
	used      [numBanks][]uint16
	alloc     [numBanks]int
	counts    [numBanks]Counters
	highWater [numBanks]int
}

// usedWords returns how many words of bank b can differ from zero: the
// larger of the allocator watermark and the high-water mark (raw DMA
// writes can land above the watermark).
func (m *Memory) usedWords(b Bank) int {
	n := m.alloc[b]
	if m.highWater[b] > n {
		n = m.highWater[b]
	}
	return n
}

// SnapshotAll captures every bank's used prefix together with the access
// counters and high-water marks.
func (m *Memory) SnapshotAll() *DeviceSnapshot { return m.SnapshotAllInto(nil) }

// SnapshotAllInto is SnapshotAll reusing s's buffers when s is non-nil —
// the allocation-free path for callers that recycle snapshots (the
// checker takes one per candidate failure point; fresh buffers each
// time dominated its recording cost).
func (m *Memory) SnapshotAllInto(s *DeviceSnapshot) *DeviceSnapshot {
	if s == nil {
		s = &DeviceSnapshot{}
	}
	s.alloc = m.alloc
	s.counts = m.counts
	s.highWater = m.highWater
	for b := Bank(0); b < numBanks; b++ {
		n := m.usedWords(b)
		s.used[b] = append(s.used[b][:0], m.banks[b][:n]...)
	}
	return s
}

// RestoreAll overwrites the memory's contents, counters and high-water
// marks from a snapshot taken earlier. The target must have the same
// allocator watermarks as the snapshotted memory (i.e. the same
// blueprint attached in the same order); it panics otherwise, since
// restoring into a different layout is a harness bug. Words above the
// target's own used prefix are provably zero in both memories, so only
// the prefixes are touched.
func (m *Memory) RestoreAll(s *DeviceSnapshot) {
	if m.alloc != s.alloc {
		panic(fmt.Sprintf("mem: restore-all layout mismatch: alloc %v vs %v",
			m.alloc, s.alloc))
	}
	for b := Bank(0); b < numBanks; b++ {
		// The copy overwrites the snapshot's prefix; only the tail the
		// current memory used beyond it needs explicit clearing.
		if n, k := m.usedWords(b), len(s.used[b]); n > k {
			clear(m.banks[b][k:n])
		}
		copy(m.banks[b], s.used[b])
	}
	m.counts = s.counts
	m.highWater = s.highWater
}

// Diff reports the word offsets (up to max) at which the snapshot and the
// current bank contents differ. A nil result means the bank matches the
// snapshot exactly.
func (m *Memory) Diff(s Snapshot, max int) []int {
	var diffs []int
	for i, w := range m.banks[s.Bank] {
		if w != s.Words[i] {
			diffs = append(diffs, i)
			if len(diffs) >= max {
				break
			}
		}
	}
	return diffs
}

// EqualRange reports whether the n words starting at a equal want.
func (m *Memory) EqualRange(a Addr, want []uint16) bool {
	if a.Word+len(want) > len(m.banks[a.Bank]) {
		return false
	}
	got := m.banks[a.Bank][a.Word : a.Word+len(want)]
	for i := range want {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// NumBanks is the number of modeled memory banks, exported for
// serialization layers that flatten per-bank state.
const NumBanks = int(numBanks)

// bankWords returns the fixed capacity of bank b in words.
func bankWords(b Bank) int {
	switch b {
	case FRAM:
		return FRAMWords
	case SRAM:
		return SRAMWords
	case LEARAM:
		return LEARAMWords
	default:
		panic(fmt.Sprintf("mem: no capacity for %v", b))
	}
}

// SnapshotState is the exported, serializable view of a DeviceSnapshot:
// one entry per bank (index = Bank value, NumBanks entries each) for the
// used word prefix, the allocator watermark, the access counters and the
// high-water mark. internal/wire flattens it to bytes; this package only
// defines what the state is and validates it on import.
type SnapshotState struct {
	Used      [][]uint16
	Alloc     []int
	Counts    []Counters
	HighWater []int
}

// Export returns the snapshot's components for serialization. The
// returned slices alias the snapshot's storage — treat them as
// read-only, and do not retain them past the snapshot's next reuse.
func (s *DeviceSnapshot) Export() SnapshotState {
	st := SnapshotState{
		Used:      make([][]uint16, NumBanks),
		Alloc:     make([]int, NumBanks),
		Counts:    make([]Counters, NumBanks),
		HighWater: make([]int, NumBanks),
	}
	for b := Bank(0); b < numBanks; b++ {
		st.Used[b] = s.used[b]
		st.Alloc[b] = s.alloc[b]
		st.Counts[b] = s.counts[b]
		st.HighWater[b] = s.highWater[b]
	}
	return st
}

// ImportSnapshot rebuilds a DeviceSnapshot from its exported view,
// taking ownership of the Used slices. It rejects states whose shape
// cannot have come from a real snapshot (wrong bank count, a prefix
// longer than the bank, counters or watermarks out of range), so a
// decoder can feed it untrusted bytes without tripping RestoreAll's
// panics later.
func ImportSnapshot(st SnapshotState) (*DeviceSnapshot, error) {
	if len(st.Used) != NumBanks || len(st.Alloc) != NumBanks ||
		len(st.Counts) != NumBanks || len(st.HighWater) != NumBanks {
		return nil, fmt.Errorf("mem: snapshot state wants %d banks, got %d/%d/%d/%d",
			NumBanks, len(st.Used), len(st.Alloc), len(st.Counts), len(st.HighWater))
	}
	s := &DeviceSnapshot{}
	for b := Bank(0); b < numBanks; b++ {
		cap := bankWords(b)
		if len(st.Used[b]) > cap {
			return nil, fmt.Errorf("mem: %s snapshot prefix %d words exceeds bank size %d",
				b, len(st.Used[b]), cap)
		}
		if st.Alloc[b] < 0 || st.Alloc[b] > cap {
			return nil, fmt.Errorf("mem: %s snapshot watermark %d out of range [0,%d]",
				b, st.Alloc[b], cap)
		}
		if st.HighWater[b] < 0 || st.HighWater[b] > cap {
			return nil, fmt.Errorf("mem: %s snapshot high-water %d out of range [0,%d]",
				b, st.HighWater[b], cap)
		}
		if st.Counts[b].Reads < 0 || st.Counts[b].Writes < 0 {
			return nil, fmt.Errorf("mem: %s snapshot counters negative: %+v", b, st.Counts[b])
		}
		s.used[b] = st.Used[b]
		s.alloc[b] = st.Alloc[b]
		s.counts[b] = st.Counts[b]
		s.highWater[b] = st.HighWater[b]
	}
	return s, nil
}
