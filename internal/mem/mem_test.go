package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBankProperties(t *testing.T) {
	if FRAM.Volatile() {
		t.Error("FRAM must be non-volatile")
	}
	if !SRAM.Volatile() || !LEARAM.Volatile() {
		t.Error("SRAM and LEA-RAM must be volatile")
	}
	if FRAM.String() != "FRAM" || SRAM.String() != "SRAM" || LEARAM.String() != "LEA-RAM" {
		t.Errorf("bank names: %v %v %v", FRAM, SRAM, LEARAM)
	}
}

func TestBankSizes(t *testing.T) {
	m := New()
	if m.Size(FRAM) != 256*1024/2 {
		t.Errorf("FRAM size = %d words", m.Size(FRAM))
	}
	if m.Size(SRAM) != 4*1024/2 {
		t.Errorf("SRAM size = %d words", m.Size(SRAM))
	}
	if m.Size(LEARAM) != 4*1024/2 {
		t.Errorf("LEA-RAM size = %d words", m.Size(LEARAM))
	}
}

func TestAllocAndRegions(t *testing.T) {
	m := New()
	a := m.Alloc(FRAM, "app", "buf", 10)
	b := m.Alloc(FRAM, "rt", "flags", 2)
	if a.Bank != FRAM || a.Word != 0 {
		t.Errorf("first alloc at %v", a)
	}
	if b.Word != 10 {
		t.Errorf("second alloc at %v, want word 10", b)
	}
	if m.Allocated(FRAM) != 12 {
		t.Errorf("allocated = %d, want 12", m.Allocated(FRAM))
	}
	if got := m.OwnerWords(FRAM, "app"); got != 10 {
		t.Errorf("app words = %d", got)
	}
	if got := m.OwnerWords(FRAM, "rt"); got != 2 {
		t.Errorf("rt words = %d", got)
	}
	owners := m.Owners()
	if len(owners) != 2 || owners[0] != "app" || owners[1] != "rt" {
		t.Errorf("owners = %v", owners)
	}
	regions := m.Regions()
	if len(regions) != 2 || regions[0].Name != "buf" || regions[1].Words != 2 {
		t.Errorf("regions = %+v", regions)
	}
}

func TestAllocExhaustionPanics(t *testing.T) {
	m := New()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on exhaustion")
		}
	}()
	m.Alloc(SRAM, "app", "too-big", m.Size(SRAM)+1)
}

func TestReadWriteAndCounters(t *testing.T) {
	m := New()
	a := Addr{FRAM, 100}
	m.Write(a, 0xBEEF)
	if got := m.Read(a); got != 0xBEEF {
		t.Errorf("read back %#x", got)
	}
	c := m.Counts(FRAM)
	if c.Reads != 1 || c.Writes != 1 {
		t.Errorf("counters = %+v", c)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := New()
	for _, a := range []Addr{
		{FRAM, -1},
		{FRAM, m.Size(FRAM)},
		{Bank(9), 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %v", a)
				}
			}()
			m.Read(a)
		}()
	}
}

func TestPowerFailureClearsOnlyVolatile(t *testing.T) {
	m := New()
	m.Write(Addr{FRAM, 5}, 111)
	m.Write(Addr{SRAM, 5}, 222)
	m.Write(Addr{LEARAM, 5}, 333)
	m.PowerFailure()
	if got := m.Read(Addr{FRAM, 5}); got != 111 {
		t.Errorf("FRAM lost data: %d", got)
	}
	if got := m.Read(Addr{SRAM, 5}); got != 0 {
		t.Errorf("SRAM survived: %d", got)
	}
	if got := m.Read(Addr{LEARAM, 5}); got != 0 {
		t.Errorf("LEA-RAM survived: %d", got)
	}
}

func TestBlockTransfer(t *testing.T) {
	m := New()
	src := []uint16{1, 2, 3, 4, 5}
	m.WriteBlock(Addr{FRAM, 50}, src, 5)
	dst := make([]uint16, 5)
	m.ReadBlock(Addr{FRAM, 50}, dst, 5)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], src[i])
		}
	}
	c := m.Counts(FRAM)
	if c.Reads != 5 || c.Writes != 5 {
		t.Errorf("block counters = %+v", c)
	}
}

func TestSnapshotRestoreDiff(t *testing.T) {
	m := New()
	m.Write(Addr{FRAM, 1}, 10)
	snap := m.Snapshot(FRAM)
	m.Write(Addr{FRAM, 1}, 20)
	m.Write(Addr{FRAM, 7}, 30)
	diffs := m.Diff(snap, 10)
	if len(diffs) != 2 || diffs[0] != 1 || diffs[1] != 7 {
		t.Errorf("diffs = %v", diffs)
	}
	if got := m.Diff(snap, 1); len(got) != 1 {
		t.Errorf("diff cap ignored: %v", got)
	}
	m.Restore(snap)
	if m.Diff(snap, 10) != nil {
		t.Error("restore did not reproduce snapshot")
	}
	if got := m.Read(Addr{FRAM, 1}); got != 10 {
		t.Errorf("restored value = %d", got)
	}
}

func TestEqualRange(t *testing.T) {
	m := New()
	m.WriteBlock(Addr{FRAM, 10}, []uint16{7, 8, 9}, 3)
	if !m.EqualRange(Addr{FRAM, 10}, []uint16{7, 8, 9}) {
		t.Error("EqualRange false negative")
	}
	if m.EqualRange(Addr{FRAM, 10}, []uint16{7, 8, 10}) {
		t.Error("EqualRange false positive")
	}
	if m.EqualRange(Addr{FRAM, m.Size(FRAM) - 1}, []uint16{0, 0}) {
		t.Error("EqualRange out of range should be false")
	}
}

func TestHighWater(t *testing.T) {
	m := New()
	if m.HighWater(LEARAM) != 0 {
		t.Error("fresh memory has no high water")
	}
	m.Write(Addr{LEARAM, 99}, 1)
	m.Write(Addr{LEARAM, 10}, 1)
	if got := m.HighWater(LEARAM); got != 100 {
		t.Errorf("high water = %d, want 100", got)
	}
	m.WriteBlock(Addr{SRAM, 20}, []uint16{1, 2, 3}, 3)
	if got := m.HighWater(SRAM); got != 23 {
		t.Errorf("SRAM high water = %d, want 23", got)
	}
}

// TestPersistenceProperty checks the core intermittence invariant with
// random workloads: after a power failure, a word survives exactly when it
// lives in FRAM.
func TestPersistenceProperty(t *testing.T) {
	err := quick.Check(func(seed int64, nWrites uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New()
		type write struct {
			a Addr
			v uint16
		}
		last := map[Addr]uint16{}
		for i := 0; i < int(nWrites); i++ {
			b := Bank(rng.Intn(3))
			a := Addr{b, rng.Intn(m.Size(b))}
			v := uint16(rng.Uint32())
			m.Write(a, v)
			last[a] = v
		}
		m.PowerFailure()
		for a, v := range last {
			got := m.Read(a)
			if a.Bank == FRAM && got != v {
				return false
			}
			if a.Bank != FRAM && got != 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestAddrHelpers(t *testing.T) {
	a := Addr{FRAM, 10}
	if got := a.Add(5); got.Word != 15 || got.Bank != FRAM {
		t.Errorf("Add = %v", got)
	}
	if got := a.String(); got != "FRAM+0x000a" {
		t.Errorf("String = %q", got)
	}
}
