package power

import (
	"testing"
	"time"
)

// walkSchedule steps in 50µs charge slices until horizon, recording the
// on-time of every failure.
func walkSchedule(s *Schedule, horizon time.Duration) []time.Duration {
	var fired []time.Duration
	for on := 50 * time.Microsecond; on <= horizon; on += 50 * time.Microsecond {
		if s.Step(0, on, 0, 0) {
			fired = append(fired, on)
			s.Recharge(0)
		}
	}
	return fired
}

// Regression: an unsorted FailAt list used to let the later point shadow
// the earlier one — Step only compares against FailAt[next], so with
// [5ms, 2ms] the 2ms failure could never fire at 2ms; it fired as a
// bogus immediate second failure right after the 5ms one. The
// constructors now sort.
func TestScheduleUnsortedFailAt(t *testing.T) {
	s := NewSchedule(5*time.Millisecond, 2*time.Millisecond)
	fired := walkSchedule(s, 10*time.Millisecond)
	want := []time.Duration{2 * time.Millisecond, 5 * time.Millisecond}
	if len(fired) != len(want) {
		t.Fatalf("fired %d failures %v, want %v", len(fired), fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Errorf("failure %d at %v, want %v", i, fired[i], want[i])
		}
	}
}

// Regression: duplicate points used to fire twice at the same on-time
// (one real failure plus an immediate spurious one). The constructors
// now deduplicate.
func TestScheduleDuplicateFailAt(t *testing.T) {
	s := NewSchedule(3*time.Millisecond, 3*time.Millisecond, 3*time.Millisecond)
	if len(s.FailAt) != 1 {
		t.Fatalf("FailAt = %v, want one deduplicated point", s.FailAt)
	}
	if fired := walkSchedule(s, 6*time.Millisecond); len(fired) != 1 {
		t.Errorf("fired %v, want exactly one failure", fired)
	}
	if s.Remaining() != 0 {
		t.Errorf("remaining = %d, want 0", s.Remaining())
	}
}

// FuzzSchedule builds schedules from arbitrary (unsorted, possibly
// duplicated) point lists and checks the constructor invariant plus the
// walk behavior: every unique point fires exactly once, in ascending
// order, never before its scheduled on-time.
func FuzzSchedule(f *testing.F) {
	f.Add([]byte{0x88, 0x13, 0xd0, 0x07})             // 5ms, 2ms — the regression pair
	f.Add([]byte{0xb8, 0x0b, 0xb8, 0x0b, 0xb8, 0x0b}) // 3ms ×3 — duplicates
	f.Add([]byte{})                                   // empty schedule
	f.Add([]byte{0x00, 0x00, 0x01, 0x00})             // zero and sub-slice points
	f.Fuzz(func(t *testing.T, data []byte) {
		var failAt []time.Duration
		for i := 0; i+1 < len(data) && len(failAt) < 8; i += 2 {
			us := int(data[i]) | int(data[i+1])<<8
			failAt = append(failAt, time.Duration(us)*time.Microsecond)
		}
		s := NewSchedule(failAt...)

		uniq := map[time.Duration]bool{}
		for _, p := range failAt {
			uniq[p] = true
		}
		if len(s.FailAt) != len(uniq) {
			t.Fatalf("FailAt %v: %d points from %d unique inputs", s.FailAt, len(s.FailAt), len(uniq))
		}
		for i := 1; i < len(s.FailAt); i++ {
			if s.FailAt[i] <= s.FailAt[i-1] {
				t.Fatalf("FailAt %v not strictly ascending at %d", s.FailAt, i)
			}
		}

		horizon := time.Millisecond
		if n := len(s.FailAt); n > 0 {
			horizon += s.FailAt[n-1]
		}
		fired := walkSchedule(s, horizon)
		if len(fired) != len(s.FailAt) {
			t.Fatalf("fired %d failures, want %d (%v)", len(fired), len(s.FailAt), s.FailAt)
		}
		for i, at := range fired {
			if at < s.FailAt[i] {
				t.Errorf("failure %d fired at %v, before scheduled %v", i, at, s.FailAt[i])
			}
		}
		if s.Remaining() != 0 {
			t.Errorf("remaining = %d after full walk, want 0", s.Remaining())
		}
	})
}
