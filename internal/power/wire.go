// Exported, serializable views of supply states. SupplyState values are
// deliberately opaque — each belongs to one concrete supply type — so
// shipping a device checkpoint over the wire needs an explicit
// conversion layer that names the type and flattens its fields. The
// binary layout itself lives in internal/wire; this file only decides
// what the state *is*.

package power

import (
	"fmt"
	"time"

	"easeio/internal/units"
)

// Wire kind names for the concrete supply states. They are part of the
// wire format: renaming one breaks decoding of previously encoded
// checkpoints.
const (
	WireContinuous = "continuous"
	WireSchedule   = "schedule"
	WireTimer      = "timer"
	WireHarvested  = "harvested"
)

// WireState is the serializable form of a SupplyState. Kind selects the
// concrete supply type; only that type's fields are meaningful, the rest
// stay zero.
type WireState struct {
	Kind string
	// Schedule: how many configured failures have fired.
	Fired int
	// Timer: the next firing point and the random stream position.
	NextAt time.Duration
	Seed   int64
	Draws  uint64
	// Harvested: stored energy, per-run channel gain, and the dead flag.
	Stored units.Energy
	Gain   float64
	Dead   bool
}

// ExportState flattens a SupplyState into its wire form. It reports
// false for a state produced by a supply type this package does not
// know how to serialize.
func ExportState(s SupplyState) (WireState, bool) {
	switch st := s.(type) {
	case continuousState:
		return WireState{Kind: WireContinuous}, true
	case *scheduleState:
		return WireState{Kind: WireSchedule, Fired: st.next}, true
	case *timerState:
		return WireState{Kind: WireTimer, NextAt: st.next, Seed: st.seed, Draws: st.draws}, true
	case *harvestedState:
		return WireState{Kind: WireHarvested, Stored: st.stored, Gain: st.gain, Dead: st.dead}, true
	default:
		return WireState{}, false
	}
}

// ImportState rebuilds the opaque SupplyState a WireState describes. The
// result is only meaningful when handed to RestoreState on a supply of
// the matching concrete type, exactly like a locally produced state.
func ImportState(w WireState) (SupplyState, error) {
	switch w.Kind {
	case WireContinuous:
		return continuousState{}, nil
	case WireSchedule:
		if w.Fired < 0 {
			return nil, fmt.Errorf("power: negative schedule progress %d", w.Fired)
		}
		return &scheduleState{next: w.Fired}, nil
	case WireTimer:
		return &timerState{next: w.NextAt, seed: w.Seed, draws: w.Draws}, nil
	case WireHarvested:
		return &harvestedState{stored: w.Stored, gain: w.Gain, dead: w.Dead}, nil
	default:
		return nil, fmt.Errorf("power: unknown supply state kind %q", w.Kind)
	}
}
