package power

import (
	"testing"
	"time"

	"easeio/internal/energy"
	"easeio/internal/units"
)

func TestContinuousNeverFails(t *testing.T) {
	var s Continuous
	s.Reset(1)
	for i := 0; i < 1000; i++ {
		if s.Step(time.Duration(i)*time.Millisecond, time.Duration(i)*time.Millisecond,
			time.Millisecond, units.Microjoule) {
			t.Fatal("continuous supply failed")
		}
	}
	if s.Recharge(0) != 0 {
		t.Error("continuous recharge should be zero")
	}
}

func TestTimerFailureWindows(t *testing.T) {
	cfg := DefaultTimerConfig()
	s := NewTimer(cfg)
	s.Reset(7)
	// Walk on-time forward in 100 µs steps; every failure must land at
	// least OnMin and at most OnMax after the previous one.
	last := time.Duration(0)
	failures := 0
	for on := time.Duration(0); on < 500*time.Millisecond; on += 100 * time.Microsecond {
		if s.Step(on, on, 100*time.Microsecond, 0) {
			gap := on - last
			if gap < cfg.OnMin-100*time.Microsecond || gap > cfg.OnMax+100*time.Microsecond {
				t.Fatalf("failure gap %v outside [%v, %v]", gap, cfg.OnMin, cfg.OnMax)
			}
			off := s.Recharge(on)
			if off < cfg.OffMin || off > cfg.OffMax {
				t.Fatalf("off duration %v outside [%v, %v]", off, cfg.OffMin, cfg.OffMax)
			}
			last = on
			failures++
		}
	}
	if failures < 20 {
		t.Errorf("only %d failures in 500ms; emulation too sparse", failures)
	}
}

func TestTimerDeterminism(t *testing.T) {
	record := func(seed int64) []time.Duration {
		s := NewTimer(DefaultTimerConfig())
		s.Reset(seed)
		var fails []time.Duration
		for on := time.Duration(0); on < 100*time.Millisecond; on += 50 * time.Microsecond {
			if s.Step(on, on, 0, 0) {
				fails = append(fails, on)
				s.Recharge(on)
			}
		}
		return fails
	}
	a, b := record(42), record(42)
	if len(a) != len(b) {
		t.Fatalf("different failure counts for same seed: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("failure %d at %v vs %v", i, a[i], b[i])
		}
	}
	c := record(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical failure schedules")
	}
}

func TestTimerInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewTimer(TimerConfig{OnMin: 10 * time.Millisecond, OnMax: 5 * time.Millisecond})
}

func TestHarvestedBrownoutAndRecharge(t *testing.T) {
	h := energy.Constant{P: 100 * units.Microwatt}
	s := NewHarvested(h)
	s.Cap.C = 2200 * units.Nanofarad
	s.StartAtVon = true
	s.Reset(0)

	if got := s.Cap.Voltage(); got != s.Cap.Von {
		t.Fatalf("StartAtVon: voltage %v, want %v", got, s.Cap.Von)
	}
	budget := s.Cap.EnergyAt(s.Cap.Von) - s.Cap.EnergyAt(s.Cap.Voff)

	// Drain at 354 µW CPU draw against 100 µW harvest: must brown out
	// roughly when the net integral hits the budget.
	var wall time.Duration
	var drained units.Energy
	for i := 0; ; i++ {
		if i > 1_000_000 {
			t.Fatal("no brownout")
		}
		dt := 50 * time.Microsecond
		e := units.Energy(50 * 354)
		wall += dt
		drained += e - units.EnergyOver(h.P, dt)
		if s.Step(wall, wall, dt, e) {
			break
		}
	}
	if drained < budget-budget/10 || drained > budget+budget/10 {
		t.Errorf("net drain at brownout = %v, want ≈ budget %v", drained, budget)
	}

	// Recharge back to Von at 100 µW (minus leakage).
	off := s.Recharge(wall)
	if off <= 0 {
		t.Error("recharge must take time")
	}
	if s.Dead() {
		t.Error("supply wrongly dead")
	}
	if got := s.Cap.Voltage(); got != s.Cap.Von {
		t.Errorf("after recharge: %v, want %v", got, s.Cap.Von)
	}
}

func TestHarvestedDeadWhenHarvestBelowLeakage(t *testing.T) {
	h := energy.Constant{P: 1 * units.Microwatt} // below 2 µW leakage
	s := NewHarvested(h)
	s.MaxOff = 100 * time.Millisecond
	s.Reset(0)
	s.Cap.SetVoltage(s.Cap.Voff)
	s.Recharge(0)
	if !s.Dead() {
		t.Error("supply should be dead below leakage power")
	}
}

func TestHarvestedSurplusNeverFails(t *testing.T) {
	h := energy.Constant{P: 10 * units.Milliwatt}
	s := NewHarvested(h)
	s.Reset(0)
	var wall time.Duration
	for i := 0; i < 100_000; i++ {
		dt := 50 * time.Microsecond
		wall += dt
		if s.Step(wall, wall, dt, units.Energy(50*354)) {
			t.Fatal("strong harvester must sustain CPU draw")
		}
	}
}

func TestSchedule(t *testing.T) {
	s := NewSchedule(2*time.Millisecond, 5*time.Millisecond)
	if s.Remaining() != 2 {
		t.Fatalf("remaining = %d", s.Remaining())
	}
	if s.Step(0, time.Millisecond, 0, 0) {
		t.Error("fired early")
	}
	if !s.Step(0, 2*time.Millisecond, 0, 0) {
		t.Error("did not fire at the scheduled point")
	}
	if off := s.Recharge(0); off != time.Millisecond {
		t.Errorf("off = %v", off)
	}
	if s.Remaining() != 1 {
		t.Errorf("remaining = %d", s.Remaining())
	}
	s.Recharge(0)
	if s.Step(0, time.Hour, 0, 0) {
		t.Error("exhausted schedule must never fire")
	}
	s.Reset(0)
	if s.Remaining() != 2 {
		t.Error("reset must rearm the schedule")
	}
	if s.Name() != "schedule" {
		t.Error("name")
	}
}

func TestScheduleWithOff(t *testing.T) {
	// Regression: Off used to be hard-coded to 1 ms by the constructor.
	s := NewScheduleWithOff(250*time.Microsecond, time.Millisecond)
	if !s.Step(0, time.Millisecond, 0, 0) {
		t.Fatal("did not fire at the scheduled point")
	}
	if off := s.Recharge(0); off != 250*time.Microsecond {
		t.Errorf("off = %v, want 250µs", off)
	}
	// The default constructor keeps the 1 ms recharge.
	if off := NewSchedule(time.Millisecond).Off; off != time.Millisecond {
		t.Errorf("NewSchedule off = %v, want 1ms", off)
	}
	// Non-positive off falls back to the default rather than producing a
	// zero-length off-period.
	if off := NewScheduleWithOff(0, time.Millisecond).Off; off != time.Millisecond {
		t.Errorf("NewScheduleWithOff(0) off = %v, want 1ms", off)
	}
}

func TestHarvestedJitterAndSpread(t *testing.T) {
	h := energy.Constant{P: 100 * units.Microwatt}
	s := NewHarvested(h)
	s.StartAtVon = true
	s.Jitter = 0.2

	// Different seeds give different gains and starting charges.
	s.Reset(1)
	v1, g1 := s.Cap.Stored(), s.gain
	s.Reset(2)
	v2, g2 := s.Cap.Stored(), s.gain
	if v1 == v2 && g1 == g2 {
		t.Error("jitter produced identical runs for different seeds")
	}
	// Gains stay within the band.
	for seed := int64(0); seed < 50; seed++ {
		s.Reset(seed)
		if s.gain < 0.8-1e-9 || s.gain > 1.2+1e-9 {
			t.Fatalf("gain %v outside [0.8, 1.2]", s.gain)
		}
		von, vmax := s.Cap.EnergyAt(s.Cap.Von), s.Cap.EnergyAt(s.Cap.Vmax)
		if st := s.Cap.Stored(); st < von || st > vmax {
			t.Fatalf("start charge %v outside [Von, Vmax]", st)
		}
	}
	// The gain scales harvesting during recharge too (scaledHarvester).
	s.Reset(3)
	s.Cap.SetVoltage(s.Cap.Voff)
	off := s.Recharge(0)
	if off <= 0 || s.Dead() {
		t.Errorf("recharge off=%v dead=%v", off, s.Dead())
	}
	if s.Name() == "" {
		t.Error("name")
	}
}
