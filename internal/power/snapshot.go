// Supply checkpointing. A device checkpoint must capture the supply's
// mutable state alongside memory and clocks, or a restored run would see
// a supply that has drifted ahead (a capacitor drained past the restore
// point, a timer whose random stream has advanced). Supplies opt in via
// Snapshottable; states are opaque values that must be handed back to a
// supply of the same concrete type.

package power

import (
	"fmt"
	"math/rand"
	"time"

	"easeio/internal/lazyrand"
	"easeio/internal/units"
)

// SupplyState is an opaque snapshot of a supply's mutable state,
// produced by SnapshotState and consumed by RestoreState on a supply of
// the same concrete type.
type SupplyState interface{ supplyState() }

// Snapshottable is a Supply whose mutable state can be captured and
// re-established, enabling device checkpointing mid-run.
type Snapshottable interface {
	Supply
	// SnapshotState captures the supply's mutable state.
	SnapshotState() SupplyState
	// SnapshotStateInto is SnapshotState reusing prev's storage when prev
	// was produced by the same supply type; a nil or foreign prev
	// allocates fresh. Bulk checkpointing (one snapshot per candidate
	// failure point) recycles states through it to stay allocation-free.
	SnapshotStateInto(prev SupplyState) SupplyState
	// RestoreState re-establishes previously captured state. It panics if
	// the state was produced by a different supply type — mixing supplies
	// across a checkpoint boundary is a harness bug.
	RestoreState(SupplyState)
}

// countingSource wraps a lazyrand source (bit-identical to math/rand's
// default source, O(1) reseed) and counts draws, so a supply's position
// in its random stream can be checkpointed as (seed, draws) and
// re-established by reseeding and discarding the same number of draws.
// Every top-level rand.Rand call maps to one or more Int63/Uint64
// draws, and each draw advances the underlying generator by exactly one
// step, so the count pins the stream position exactly. The O(1) reseed
// matters because Timer.Reset reseeds once per simulated run: with
// math/rand's eager ~µs seeding it profiled at a third of pooled sweep
// CPU.
type countingSource struct {
	src   rand.Source64
	seed  int64
	draws uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: lazyrand.New(seed), seed: seed}
}

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.seed, c.draws = seed, 0
}

// seek reseeds and discards n draws, leaving the source exactly n draws
// past the seed.
func (c *countingSource) seek(seed int64, n uint64) {
	c.Seed(seed)
	for i := uint64(0); i < n; i++ {
		c.src.Uint64()
	}
	c.draws = n
}

// continuousState is the (empty) state of a Continuous supply. Boxing a
// zero-size value never allocates, so Continuous needs no Into plumbing.
type continuousState struct{}

func (continuousState) supplyState() {}

// SnapshotState implements Snapshottable: a Continuous supply is
// stateless.
func (Continuous) SnapshotState() SupplyState { return continuousState{} }

// SnapshotStateInto implements Snapshottable.
func (Continuous) SnapshotStateInto(SupplyState) SupplyState { return continuousState{} }

// RestoreState implements Snapshottable.
func (Continuous) RestoreState(s SupplyState) {
	if _, ok := s.(continuousState); !ok {
		panic(fmt.Sprintf("power: continuous restore from %T", s))
	}
}

// scheduleState is the mutable state of a Schedule: how many failures
// have fired. FailAt and Off are caller-owned configuration, not state.
type scheduleState struct{ next int }

func (scheduleState) supplyState() {}

// SnapshotState implements Snapshottable.
func (s *Schedule) SnapshotState() SupplyState { return s.SnapshotStateInto(nil) }

// SnapshotStateInto implements Snapshottable.
func (s *Schedule) SnapshotStateInto(prev SupplyState) SupplyState {
	p, ok := prev.(*scheduleState)
	if !ok {
		p = &scheduleState{}
	}
	p.next = s.next
	return p
}

// RestoreState implements Snapshottable.
func (s *Schedule) RestoreState(st SupplyState) {
	ss, ok := st.(*scheduleState)
	if !ok {
		panic(fmt.Sprintf("power: schedule restore from %T", st))
	}
	s.next = ss.next
}

// timerState is the mutable state of a Timer: the next firing point and
// the random stream position.
type timerState struct {
	next  time.Duration
	seed  int64
	draws uint64
}

func (timerState) supplyState() {}

// SnapshotState implements Snapshottable.
func (t *Timer) SnapshotState() SupplyState { return t.SnapshotStateInto(nil) }

// SnapshotStateInto implements Snapshottable.
func (t *Timer) SnapshotStateInto(prev SupplyState) SupplyState {
	p, ok := prev.(*timerState)
	if !ok {
		p = &timerState{}
	}
	*p = timerState{next: t.next, seed: t.src.seed, draws: t.src.draws}
	return p
}

// RestoreState implements Snapshottable.
func (t *Timer) RestoreState(st SupplyState) {
	ts, ok := st.(*timerState)
	if !ok {
		panic(fmt.Sprintf("power: timer restore from %T", st))
	}
	t.src.seek(ts.seed, ts.draws)
	t.next = ts.next
}

// harvestedState is the mutable state of a Harvested supply: the stored
// energy, the per-run channel gain, and the dead flag.
type harvestedState struct {
	stored units.Energy
	gain   float64
	dead   bool
}

func (harvestedState) supplyState() {}

// SnapshotState implements Snapshottable.
func (s *Harvested) SnapshotState() SupplyState { return s.SnapshotStateInto(nil) }

// SnapshotStateInto implements Snapshottable.
func (s *Harvested) SnapshotStateInto(prev SupplyState) SupplyState {
	p, ok := prev.(*harvestedState)
	if !ok {
		p = &harvestedState{}
	}
	*p = harvestedState{stored: s.Cap.Stored(), gain: s.gain, dead: s.dead}
	return p
}

// RestoreState implements Snapshottable.
func (s *Harvested) RestoreState(st SupplyState) {
	hs, ok := st.(*harvestedState)
	if !ok {
		panic(fmt.Sprintf("power: harvested restore from %T", st))
	}
	s.Cap.SetStored(hs.stored)
	s.gain = hs.gain
	s.dead = hs.dead
}

// The concrete supplies are all checkpointable.
var (
	_ Snapshottable = Continuous{}
	_ Snapshottable = (*Schedule)(nil)
	_ Snapshottable = (*Timer)(nil)
	_ Snapshottable = (*Harvested)(nil)
)
