// Package power injects power failures into a simulated run.
//
// The paper evaluates with two failure sources and so do we:
//
//   - Timer-driven emulation (§5.1): "power failure is simulated by random
//     soft resets triggered by an MCU timer with a uniformly distributed
//     firing period in the interval of [5 ms, 20 ms]". The off (recharge)
//     duration is drawn from a second uniform interval; it matters for
//     Timely semantics because it decides whether a sensor value is stale
//     at reboot.
//   - Energy-driven failures (§5.5): a capacitor drains as the device
//     executes, a harvester charges it, and the device browns out when the
//     voltage crosses Voff — the "real energy harvester" mode behind
//     Figure 13.
//
// A Supply is consumed by the execution kernel: Step is called after every
// charged operation, Recharge after every failure.
package power

import (
	"fmt"
	"math/rand"
	"time"

	"easeio/internal/energy"
	"easeio/internal/lazyrand"
	"easeio/internal/mcu"
	"easeio/internal/units"
)

// Supply decides when the device loses power and how long it stays dark.
type Supply interface {
	// Name identifies the supply in reports.
	Name() string
	// Reset prepares the supply for a fresh run with the given seed.
	Reset(seed int64)
	// Step accounts one executed operation: wall is total wall-clock time
	// after the operation, onTime is cumulative powered-on time, dt is the
	// operation's duration and e its energy. It reports whether the device
	// fails immediately after this operation.
	Step(wall, onTime, dt time.Duration, e units.Energy) bool
	// Recharge is called after a failure; it returns how long the device
	// stays off before rebooting, given the wall-clock time of the failure.
	Recharge(wall time.Duration) time.Duration
}

// Continuous is a Supply that never fails: the paper's "continuous power"
// configuration used for golden runs and the Cont. columns of Table 5.
type Continuous struct{}

// Name implements Supply.
func (Continuous) Name() string { return "continuous" }

// Reset implements Supply.
func (Continuous) Reset(int64) {}

// Step implements Supply; it never fails.
func (Continuous) Step(_, _, _ time.Duration, _ units.Energy) bool { return false }

// Recharge implements Supply. It is never called under continuous power,
// but returns zero for robustness.
func (Continuous) Recharge(time.Duration) time.Duration { return 0 }

// TimerConfig parameterizes the timer-driven emulation.
type TimerConfig struct {
	// OnMin/OnMax bound the uniformly distributed powered-on interval
	// between consecutive failures.
	OnMin, OnMax time.Duration
	// OffMin/OffMax bound the uniformly distributed recharge time after a
	// failure.
	OffMin, OffMax time.Duration
}

// DefaultTimerConfig returns the paper's emulation parameters: on-time
// uniform in [5 ms, 20 ms]. The off-time interval [2 ms, 9 ms] is chosen
// so that roughly half of the reboots exceed the 10 ms freshness window of
// the Timely benchmark, matching the ≈43 % re-execution reduction the
// paper reports in Table 4.
func DefaultTimerConfig() TimerConfig {
	return TimerConfig{
		OnMin:  5 * time.Millisecond,
		OnMax:  20 * time.Millisecond,
		OffMin: 2 * time.Millisecond,
		OffMax: 9 * time.Millisecond,
	}
}

// Timer is the timer-driven Supply.
type Timer struct {
	cfg  TimerConfig
	name string          // formatted once; cfg is fixed after NewTimer
	src  *countingSource // reseeded in place across runs; counts draws for checkpointing
	rng  *rand.Rand
	next time.Duration // onTime at which the next failure fires
}

// NewTimer returns a timer-driven supply with the given configuration.
func NewTimer(cfg TimerConfig) *Timer {
	if cfg.OnMax < cfg.OnMin || cfg.OffMax < cfg.OffMin {
		panic("power: invalid timer config: max below min")
	}
	t := &Timer{cfg: cfg, name: fmt.Sprintf("timer[%v,%v]", cfg.OnMin, cfg.OnMax)}
	t.Reset(0)
	return t
}

// Name implements Supply. The name is formatted once at construction:
// checkpointing records it per snapshot, and a Sprintf there was a
// measurable share of bulk-snapshot cost.
func (t *Timer) Name() string { return t.name }

// Reset implements Supply. The random source is reseeded in place on
// reuse, which leaves the generator in exactly the state a fresh
// rand.New(rand.NewSource(seed)) would have.
func (t *Timer) Reset(seed int64) {
	if t.src == nil {
		t.src = newCountingSource(seed)
		t.rng = rand.New(t.src)
	} else {
		t.src.Seed(seed)
	}
	t.next = t.uniform(t.cfg.OnMin, t.cfg.OnMax)
}

func (t *Timer) uniform(lo, hi time.Duration) time.Duration {
	if hi == lo {
		return lo
	}
	return lo + time.Duration(t.rng.Int63n(int64(hi-lo)))
}

// Step implements Supply: the device fails once cumulative on-time reaches
// the scheduled firing point.
func (t *Timer) Step(_, onTime, _ time.Duration, _ units.Energy) bool {
	return onTime >= t.next
}

// FireAt returns the cumulative on-time at which Step will next report
// failure. It is constant between failures (only Recharge moves it),
// which lets the kernel batch charge slices that provably finish before
// it — the bulk-DMA fast path.
func (t *Timer) FireAt() time.Duration { return t.next }

// Recharge implements Supply: draws the off duration and schedules the
// next firing interval.
func (t *Timer) Recharge(time.Duration) time.Duration {
	t.next += t.uniform(t.cfg.OnMin, t.cfg.OnMax)
	return t.uniform(t.cfg.OffMin, t.cfg.OffMax)
}

// Harvested is the energy-driven Supply: a capacitor drained by execution
// and charged by a harvester. While the device runs, harvested power also
// flows in, so a strong enough source sustains execution indefinitely —
// the no-failure regime at the left of Figure 13.
type Harvested struct {
	Cap  *energy.Capacitor
	Harv energy.Harvester

	// MaxOff caps a single recharge; if the harvester cannot reach the
	// boot threshold within it, the run is declared stuck (Dead reports
	// true). Defaults to 30 s.
	MaxOff time.Duration

	// StartAtVon starts runs with the capacitor at the boot threshold
	// rather than fully charged — the steady state of a device that has
	// been cycling, which is how the paper's repeated real-harvester
	// measurements execute (§5.5).
	StartAtVon bool

	// Jitter models per-run channel variation (fading, orientation): each
	// Reset draws a harvest-power multiplier uniformly from
	// [1−Jitter, 1+Jitter]. Zero means a perfectly stable link.
	Jitter float64

	dead bool
	gain float64
}

// NewHarvested returns an energy-driven supply with the paper's default
// capacitor and the given harvester.
func NewHarvested(h energy.Harvester) *Harvested {
	return &Harvested{Cap: energy.DefaultCapacitor(), Harv: h, MaxOff: 30 * time.Second}
}

// Name implements Supply.
func (s *Harvested) Name() string {
	return fmt.Sprintf("harvested(%s,%s)", s.Harv.Name(), s.Cap.C)
}

// Reset implements Supply: refills the capacitor.
func (s *Harvested) Reset(seed int64) {
	s.dead = false
	s.gain = 1
	start := s.Cap.Vmax
	if s.StartAtVon {
		start = s.Cap.Von
	}
	if s.Jitter > 0 {
		rng := rand.New(lazyrand.New(seed))
		s.gain = 1 - s.Jitter + 2*s.Jitter*rng.Float64()
		if s.StartAtVon {
			// A cycling device is caught at a random charge between the
			// boot threshold and the regulation ceiling.
			span := float64(s.Cap.Vmax - s.Cap.Von)
			start = s.Cap.Von + units.Voltage(span*rng.Float64())
		}
	}
	s.Cap.SetVoltage(start)
}

// power returns the harvester output at time t with the per-run gain.
func (s *Harvested) power(t time.Duration) units.Power {
	p := s.Harv.PowerAt(t)
	if s.gain != 1 && s.gain > 0 {
		p = units.Power(float64(p) * s.gain)
	}
	return p
}

// Step implements Supply: charge for dt of harvest, then drain e.
func (s *Harvested) Step(wall, _, dt time.Duration, e units.Energy) bool {
	if dt > 0 {
		s.Cap.Charge(units.EnergyOver(s.power(wall), dt))
	}
	return s.Cap.Drain(e)
}

// Recharge implements Supply: integrates harvested power (minus leakage)
// until the capacitor reaches the boot threshold.
func (s *Harvested) Recharge(wall time.Duration) time.Duration {
	need := s.Cap.EnergyAt(s.Cap.Von) - s.Cap.Stored()
	harv := s.Harv
	if s.gain != 1 && s.gain > 0 {
		harv = scaledHarvester{h: s.Harv, gain: s.gain}
	}
	off, ok := energy.ChargeTime(harv, wall, need, mcu.LeakagePower, s.MaxOff)
	if !ok {
		s.dead = true
	}
	s.Cap.SetVoltage(s.Cap.Von)
	return off
}

// scaledHarvester applies the per-run gain during recharge integration.
type scaledHarvester struct {
	h    energy.Harvester
	gain float64
}

// PowerAt implements energy.Harvester.
func (s scaledHarvester) PowerAt(t time.Duration) units.Power {
	return units.Power(float64(s.h.PowerAt(t)) * s.gain)
}

// Name implements energy.Harvester.
func (s scaledHarvester) Name() string { return s.h.Name() }

// Dead reports whether the last recharge failed to reach the boot
// threshold within MaxOff (the device is effectively bricked at this
// harvest level).
func (s *Harvested) Dead() bool { return s.dead }
