// Schedule: a fully deterministic Supply that fails at listed on-times.
// Behavioral tests use it to place a power failure at an exact point in a
// task — e.g. right after a DMA completes, inside the window where
// idempotence bugs live.

package power

import (
	"math"
	"sort"
	"time"

	"easeio/internal/units"
)

// Schedule fails exactly at the given cumulative on-times, with a fixed
// off-time after each failure. Once the list is exhausted the supply never
// fails again.
type Schedule struct {
	// FailAt lists cumulative on-times at which the supply cuts power.
	//
	// Invariant: FailAt must be strictly ascending. Step only ever
	// compares against FailAt[next], so an out-of-order earlier point
	// could never fire and a duplicate would fire twice at the same
	// on-time. The constructors establish the invariant by sorting and
	// deduplicating; code that builds a Schedule literal or mutates
	// FailAt directly must maintain it.
	FailAt []time.Duration
	// Off is the recharge time after every failure.
	Off time.Duration

	next int
}

// NewSchedule returns a scheduled supply with the given failure points and
// a 1 ms recharge time.
func NewSchedule(failAt ...time.Duration) *Schedule {
	return NewScheduleWithOff(time.Millisecond, failAt...)
}

// NewScheduleWithOff returns a scheduled supply with an explicit recharge
// time. A non-positive off falls back to the 1 ms default: a zero-length
// off-period would make the failure invisible to wall-clock-driven
// semantics (Timely windows, sensor processes). The failure points are
// copied, sorted, and deduplicated to establish the FailAt invariant.
func NewScheduleWithOff(off time.Duration, failAt ...time.Duration) *Schedule {
	if off <= 0 {
		off = time.Millisecond
	}
	return &Schedule{FailAt: normalizeFailAt(failAt), Off: off}
}

// normalizeFailAt returns a sorted, deduplicated copy of the failure
// points — the strictly-ascending form Step's single-cursor scan
// requires.
func normalizeFailAt(failAt []time.Duration) []time.Duration {
	pts := make([]time.Duration, len(failAt))
	copy(pts, failAt)
	sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })
	out := pts[:0]
	for i, p := range pts {
		if i == 0 || p != pts[i-1] {
			out = append(out, p)
		}
	}
	return out
}

// Name implements Supply.
func (s *Schedule) Name() string { return "schedule" }

// Reset implements Supply. The schedule is seed-independent by design.
func (s *Schedule) Reset(int64) { s.next = 0 }

// Step implements Supply.
func (s *Schedule) Step(_, onTime, _ time.Duration, _ units.Energy) bool {
	return s.next < len(s.FailAt) && onTime >= s.FailAt[s.next]
}

// Recharge implements Supply.
func (s *Schedule) Recharge(time.Duration) time.Duration {
	s.next++
	return s.Off
}

// FireAt returns the cumulative on-time at which Step will next report
// failure, or a duration beyond any run when the schedule is exhausted.
// Like Timer.FireAt it is constant between failures, enabling the
// kernel's bulk-DMA fast path.
func (s *Schedule) FireAt() time.Duration {
	if s.next >= len(s.FailAt) {
		return math.MaxInt64
	}
	return s.FailAt[s.next]
}

// Remaining returns how many scheduled failures have not fired yet.
func (s *Schedule) Remaining() int { return len(s.FailAt) - s.next }
