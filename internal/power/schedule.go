// Schedule: a fully deterministic Supply that fails at listed on-times.
// Behavioral tests use it to place a power failure at an exact point in a
// task — e.g. right after a DMA completes, inside the window where
// idempotence bugs live.

package power

import (
	"time"

	"easeio/internal/units"
)

// Schedule fails exactly at the given cumulative on-times, with a fixed
// off-time after each failure. Once the list is exhausted the supply never
// fails again.
type Schedule struct {
	// FailAt lists cumulative on-times at which the supply cuts power. It
	// must be sorted ascending.
	FailAt []time.Duration
	// Off is the recharge time after every failure.
	Off time.Duration

	next int
}

// NewSchedule returns a scheduled supply with the given failure points and
// a 1 ms recharge time.
func NewSchedule(failAt ...time.Duration) *Schedule {
	return NewScheduleWithOff(time.Millisecond, failAt...)
}

// NewScheduleWithOff returns a scheduled supply with an explicit recharge
// time. A non-positive off falls back to the 1 ms default: a zero-length
// off-period would make the failure invisible to wall-clock-driven
// semantics (Timely windows, sensor processes).
func NewScheduleWithOff(off time.Duration, failAt ...time.Duration) *Schedule {
	if off <= 0 {
		off = time.Millisecond
	}
	return &Schedule{FailAt: failAt, Off: off}
}

// Name implements Supply.
func (s *Schedule) Name() string { return "schedule" }

// Reset implements Supply. The schedule is seed-independent by design.
func (s *Schedule) Reset(int64) { s.next = 0 }

// Step implements Supply.
func (s *Schedule) Step(_, onTime, _ time.Duration, _ units.Energy) bool {
	return s.next < len(s.FailAt) && onTime >= s.FailAt[s.next]
}

// Recharge implements Supply.
func (s *Schedule) Recharge(time.Duration) time.Duration {
	s.next++
	return s.Off
}

// Remaining returns how many scheduled failures have not fired yet.
func (s *Schedule) Remaining() int { return len(s.FailAt) - s.next }
