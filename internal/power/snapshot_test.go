package power

import (
	"testing"
	"time"

	"easeio/internal/energy"
	"easeio/internal/units"
)

// walkTimer advances the timer in fixed steps from the given on-time,
// collecting every failure point until horizon.
func walkTimer(s *Timer, from, horizon time.Duration) []time.Duration {
	var fails []time.Duration
	for on := from; on < horizon; on += 50 * time.Microsecond {
		if s.Step(on, on, 0, 0) {
			fails = append(fails, on)
			s.Recharge(on)
		}
	}
	return fails
}

func TestTimerSnapshotRestore(t *testing.T) {
	s := NewTimer(DefaultTimerConfig())
	s.Reset(11)
	mid := 60 * time.Millisecond
	walkTimer(s, 0, mid)
	st := s.SnapshotState()

	want := walkTimer(s, mid, 300*time.Millisecond)
	s.RestoreState(st)
	got := walkTimer(s, mid, 300*time.Millisecond)

	if len(got) != len(want) {
		t.Fatalf("restored continuation: %d failures, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("failure %d at %v after restore, want %v", i, got[i], want[i])
		}
	}

	// The restore must also survive an intervening Reset (reseed).
	s.Reset(99)
	s.RestoreState(st)
	if again := walkTimer(s, mid, 300*time.Millisecond); len(again) != len(want) || again[0] != want[0] {
		t.Fatalf("restore after reseed diverged: %v vs %v", again, want)
	}
}

func TestScheduleSnapshotRestore(t *testing.T) {
	s := NewSchedule(2*time.Millisecond, 5*time.Millisecond, 9*time.Millisecond)
	if !s.Step(0, 2*time.Millisecond, 0, 0) {
		t.Fatal("no failure at first point")
	}
	s.Recharge(0)
	st := s.SnapshotState()
	s.Recharge(0)
	s.Recharge(0)
	if s.Remaining() != 0 {
		t.Fatalf("remaining = %d, want 0", s.Remaining())
	}
	s.RestoreState(st)
	if s.Remaining() != 2 {
		t.Fatalf("remaining after restore = %d, want 2", s.Remaining())
	}
	if !s.Step(0, 5*time.Millisecond, 0, 0) {
		t.Error("restored schedule must fire at its next point")
	}
}

func TestHarvestedSnapshotRestore(t *testing.T) {
	s := NewHarvested(energy.Constant{P: 100 * units.Microwatt})
	s.StartAtVon = true
	s.Jitter = 0.2
	s.Reset(5)

	// Drain part of the budget, snapshot, drain to brown-out.
	drain := units.EnergyOver(2*units.Milliwatt, 50*time.Microsecond)
	var wall time.Duration
	for i := 0; i < 200; i++ {
		wall += 50 * time.Microsecond
		s.Step(wall, wall, 50*time.Microsecond, drain)
	}
	st := s.SnapshotState()
	stored, gain := s.Cap.Stored(), s.gain

	for !s.Step(wall, wall, 50*time.Microsecond, drain) {
		wall += 50 * time.Microsecond
	}
	s.Recharge(wall)

	s.RestoreState(st)
	if s.Cap.Stored() != stored {
		t.Errorf("stored = %v after restore, want %v", s.Cap.Stored(), stored)
	}
	if s.gain != gain {
		t.Errorf("gain = %v after restore, want %v", s.gain, gain)
	}
	if s.Dead() {
		t.Error("restored supply wrongly dead")
	}
}

func TestContinuousSnapshotRestore(t *testing.T) {
	var s Continuous
	s.RestoreState(s.SnapshotState()) // must not panic
}

func TestRestoreStateTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on cross-type supply restore")
		}
	}()
	NewSchedule(time.Millisecond).RestoreState(Continuous{}.SnapshotState())
}

func TestCountingSourceSeek(t *testing.T) {
	a := newCountingSource(123)
	var want []uint64
	for i := 0; i < 50; i++ {
		want = append(want, a.Uint64())
	}

	b := newCountingSource(0)
	b.seek(123, 20)
	if b.draws != 20 {
		t.Fatalf("draws = %d after seek, want 20", b.draws)
	}
	for i := 20; i < 50; i++ {
		if got := b.Uint64(); got != want[i] {
			t.Fatalf("draw %d = %d after seek, want %d", i, got, want[i])
		}
	}
}
