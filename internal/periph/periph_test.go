package periph

import (
	"testing"
	"time"

	"easeio/internal/task"
	"easeio/internal/units"
)

func TestProcessDeterminism(t *testing.T) {
	p := Process{Base: 20, Amp: 10, Period: 100 * time.Millisecond,
		NoiseAmp: 3, NoiseQuantum: 5 * time.Millisecond, Seed: 0x1234}
	for _, at := range []time.Duration{0, time.Millisecond, 42 * time.Millisecond} {
		if p.At(at) != p.At(at) {
			t.Fatalf("process not deterministic at %v", at)
		}
	}
}

func TestProcessDrifts(t *testing.T) {
	p := Process{Base: 20, Amp: 10, Period: 100 * time.Millisecond}
	// A drifting process must take different values across a period.
	seen := map[int32]bool{}
	for at := time.Duration(0); at < 100*time.Millisecond; at += 5 * time.Millisecond {
		seen[p.At(at)] = true
	}
	if len(seen) < 5 {
		t.Errorf("only %d distinct values over a period", len(seen))
	}
	// And stay within Base ± Amp.
	for at := time.Duration(0); at < 200*time.Millisecond; at += time.Millisecond {
		v := p.At(at)
		if v < 20-10 || v > 20+10 {
			t.Fatalf("value %d outside drift envelope at %v", v, at)
		}
	}
}

func TestProcessNoiseBounded(t *testing.T) {
	p := Process{Base: 0, NoiseAmp: 4, NoiseQuantum: time.Millisecond, Seed: 9}
	for at := time.Duration(0); at < 50*time.Millisecond; at += 500 * time.Microsecond {
		v := p.At(at)
		if v < -4 || v > 4 {
			t.Fatalf("noise %d outside ±4 at %v", v, at)
		}
	}
}

func TestProcessNoiseCorrelationQuantum(t *testing.T) {
	p := Process{Base: 0, NoiseAmp: 100, NoiseQuantum: 10 * time.Millisecond, Seed: 5}
	// Two reads within one quantum see the same noise sample.
	if p.At(time.Millisecond) != p.At(2*time.Millisecond) {
		t.Error("noise changed within one quantum")
	}
}

func TestSensorSampleChargesAndReads(t *testing.T) {
	s := StandardSet(1)
	stub := &task.ExecStub{}
	v := s.Temp.Sample(stub)
	if stub.ChargedTime != s.Temp.Latency {
		t.Errorf("charged %v, want %v", stub.ChargedTime, s.Temp.Latency)
	}
	if stub.ChargedEnergy != s.Temp.Energy {
		t.Errorf("charged %v, want %v", stub.ChargedEnergy, s.Temp.Energy)
	}
	// Value observed at completion time, not call time.
	want := uint16(s.Temp.Proc.At(s.Temp.Latency))
	if v != want {
		t.Errorf("sample = %d, want %d", v, want)
	}
}

func TestSensorStalenessMatters(t *testing.T) {
	s := StandardSet(1)
	a := &task.ExecStub{}
	v1 := s.Temp.Sample(a)
	b := &task.ExecStub{Clock: 500 * time.Millisecond}
	v2 := s.Temp.Sample(b)
	if v1 == v2 {
		t.Skip("drift coincided; acceptable but rare") // values normally differ
	}
}

func TestRadioSend(t *testing.T) {
	s := StandardSet(1)
	stub := &task.ExecStub{}
	s.Radio.Send(stub, 4)
	wantT := s.Radio.BaseLatency + 4*s.Radio.PerWord
	if stub.ChargedTime != wantT {
		t.Errorf("send time %v, want %v", stub.ChargedTime, wantT)
	}
	wantE := s.Radio.BaseEnergy + 4*s.Radio.PerWordEnergy
	if stub.ChargedEnergy != wantE {
		t.Errorf("send energy %v, want %v", stub.ChargedEnergy, wantE)
	}
	if s.Radio.Sent != 4 {
		t.Errorf("sent counter = %d", s.Radio.Sent)
	}
}

func TestCameraCapture(t *testing.T) {
	s := StandardSet(1)
	stub := &task.ExecStub{}
	s.Camera.Capture(stub)
	if stub.ChargedTime != s.Camera.Latency {
		t.Errorf("capture time %v", stub.ChargedTime)
	}
	if s.Camera.Captures != 1 {
		t.Errorf("captures = %d", s.Camera.Captures)
	}
}

func TestStandardSetSeeding(t *testing.T) {
	a, b := StandardSet(1), StandardSet(2)
	// Different seeds decorrelate the noise processes.
	same := true
	for at := time.Duration(0); at < 100*time.Millisecond; at += 7 * time.Millisecond {
		if a.Temp.Proc.At(at) != b.Temp.Proc.At(at) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical temperature traces")
	}
	if a.Temp.Energy <= 0 || a.Radio.BaseEnergy <= 0 || a.Camera.Energy <= 0 {
		t.Error("peripheral energies must be positive")
	}
	var _ units.Energy = a.Temp.Energy
}
