// Package periph models the synchronous peripherals of the evaluation
// platform: temperature/humidity/pressure sensors, a radio, and a camera.
//
// Each operation has a latency and an energy cost charged through the
// task execution context, so a power failure can interrupt an operation
// before it completes (the charge happens first; the value materializes
// only if the charge survives). Sensor values follow deterministic
// physical processes — a slow drift plus band-limited noise, both derived
// from hash functions of the persistent wall-clock time — so that repeated
// executions at different times observe *different* values. That property
// drives the paper's unsafe-execution scenario (Figure 2c) and the Timely
// semantics: a re-executed read after a long outage really does return
// something else.
//
// As in the paper (§6), peripherals are arbitrarily restartable and
// synchronous: they hold no internal non-volatile state and an interrupted
// operation can simply run again.
package periph

import (
	"time"

	"easeio/internal/task"
	"easeio/internal/units"
)

// Process produces a deterministic physical value as a function of time.
type Process struct {
	// Base is the mean value (sensor units).
	Base int32
	// Amp is the amplitude of the slow sinusoidal drift.
	Amp int32
	// Period is the drift period.
	Period time.Duration
	// NoiseAmp bounds the band-limited noise (± NoiseAmp).
	NoiseAmp int32
	// NoiseQuantum is the correlation time of the noise: readings within
	// one quantum observe the same noise sample.
	NoiseQuantum time.Duration
	// Seed decorrelates different sensors' noise.
	Seed uint64
}

// At returns the process value at time t.
func (p Process) At(t time.Duration) int32 {
	v := p.Base
	if p.Amp != 0 && p.Period > 0 {
		// Triangle-wave drift: cheap, deterministic, and as good as a
		// sinusoid for exercising staleness.
		phase := int64(t % p.Period)
		half := int64(p.Period / 2)
		var tri int64
		if phase < half {
			tri = phase*2 - half // −half … +half
		} else {
			tri = half - (phase-half)*2
		}
		v += int32(int64(p.Amp) * tri / half)
	}
	if p.NoiseAmp > 0 && p.NoiseQuantum > 0 {
		bucket := uint64(t / p.NoiseQuantum)
		h := splitmix(bucket ^ p.Seed)
		span := int64(2*p.NoiseAmp + 1)
		v += int32(int64(h%uint64(span)) - int64(p.NoiseAmp))
	}
	return v
}

// splitmix is the SplitMix64 finalizer: a fast, well-mixed hash.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Sensor is a synchronous single-value peripheral.
type Sensor struct {
	Name    string
	Latency time.Duration
	Energy  units.Energy
	Proc    Process
}

// Sample charges the sensing operation and returns the value observed at
// the moment the operation completes.
func (s *Sensor) Sample(e task.Exec) uint16 {
	e.Op(s.Latency, s.Energy)
	return uint16(s.Proc.At(e.Now()))
}

// Radio is a packet transmitter.
type Radio struct {
	Name string
	// BaseLatency covers wakeup and synchronization; PerWord is the
	// transmit time per 16-bit payload word.
	BaseLatency time.Duration
	PerWord     time.Duration
	// BaseEnergy and PerWordEnergy mirror the latency split.
	BaseEnergy    units.Energy
	PerWordEnergy units.Energy

	// Sent counts words successfully transmitted (measurement-world).
	Sent int64
}

// Send charges the transmission of n payload words.
func (r *Radio) Send(e task.Exec, n int) {
	e.Op(r.BaseLatency+time.Duration(n)*r.PerWord,
		r.BaseEnergy+units.Energy(n)*r.PerWordEnergy)
	r.Sent += int64(n)
}

// Camera captures an image. The paper simulates the capture operation by
// running the microcontroller in a delay loop (§5.4.1); Capture charges
// exactly that.
type Camera struct {
	Name    string
	Latency time.Duration
	Energy  units.Energy

	// Captures counts completed captures (measurement-world).
	Captures int64
}

// Capture charges the capture delay.
func (c *Camera) Capture(e task.Exec) {
	e.Op(c.Latency, c.Energy)
	c.Captures++
}

// Set bundles the standard peripherals of the evaluation platform.
type Set struct {
	Temp     *Sensor
	Humidity *Sensor
	Pressure *Sensor
	Radio    *Radio
	Camera   *Camera
}

// StandardSet returns the peripherals used by the benchmark applications,
// with latencies and energies in the range the intermittent-computing
// literature reports for MSP430-class boards.
func StandardSet(seed uint64) *Set {
	return &Set{
		Temp: &Sensor{
			Name:    "Temp",
			Latency: 1 * time.Millisecond,
			Energy:  1 * units.Microjoule,
			Proc: Process{
				Base: 18, Amp: 12, Period: 400 * time.Millisecond,
				NoiseAmp: 4, NoiseQuantum: 8 * time.Millisecond,
				Seed: seed ^ 0x7e39,
			},
		},
		Humidity: &Sensor{
			Name:    "Humd",
			Latency: 1500 * time.Microsecond,
			Energy:  1300 * units.Nanojoule,
			Proc: Process{
				Base: 55, Amp: 20, Period: 700 * time.Millisecond,
				NoiseAmp: 5, NoiseQuantum: 10 * time.Millisecond,
				Seed: seed ^ 0xa11d,
			},
		},
		Pressure: &Sensor{
			Name:    "Pres",
			Latency: 800 * time.Microsecond,
			Energy:  800 * units.Nanojoule,
			Proc: Process{
				Base: 1013, Amp: 6, Period: 900 * time.Millisecond,
				NoiseAmp: 2, NoiseQuantum: 15 * time.Millisecond,
				Seed: seed ^ 0x93c1,
			},
		},
		Radio: &Radio{
			Name:          "Send",
			BaseLatency:   2 * time.Millisecond,
			PerWord:       250 * time.Microsecond,
			BaseEnergy:    40 * units.Microjoule,
			PerWordEnergy: 5 * units.Microjoule,
		},
		// The paper simulates image capture by running the MCU in a delay
		// loop (§5.4.1); the energy is therefore CPU-rate over the latency.
		Camera: &Camera{
			Name:    "Capture",
			Latency: 12 * time.Millisecond,
			Energy:  4250 * units.Nanojoule,
		},
	}
}
