package justdo

import (
	"testing"
	"time"

	"easeio/internal/alpaca"
	"easeio/internal/frontend"
	"easeio/internal/kernel"
	"easeio/internal/power"
	"easeio/internal/stats"
	"easeio/internal/task"
)

func analyzed(t *testing.T, a *task.App) *task.App {
	t.Helper()
	if err := frontend.Analyze(a); err != nil {
		t.Fatal(err)
	}
	return a
}

func run(t *testing.T, a *task.App, supply power.Supply) (*kernel.Device, *Runtime) {
	t.Helper()
	dev := kernel.NewDevice(supply, 1)
	rt := New()
	if err := kernel.RunApp(dev, rt, a); err != nil {
		t.Fatal(err)
	}
	return dev, rt
}

// TestResumeSkipsCompletedWork: after a failure, completed compute and
// stores fast-forward; only the interrupted tail re-executes.
func TestResumeSkipsCompletedWork(t *testing.T) {
	a := task.NewApp("resume")
	x := a.NVInt("x")
	y := a.NVInt("y")
	var fin *task.Task
	a.AddTask("main", func(e task.Exec) {
		e.Compute(2000)
		e.Store(x, 1)
		e.Compute(2000)
		e.Store(y, 1)
		e.Compute(2000)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)

	// Fail at 5 ms: inside the third compute block.
	dev, rt := run(t, a, power.NewSchedule(5*time.Millisecond))
	if dev.Run.PowerFailures != 1 {
		t.Fatalf("failures = %d", dev.Run.PowerFailures)
	}
	if kernel.ReadVar(dev, rt, x, 0) != 1 || kernel.ReadVar(dev, rt, y, 0) != 1 {
		t.Error("stores lost")
	}
	// Wasted work ≈ only the interrupted compute slice, far below a full
	// task re-execution (6 ms). Allow the fast-forward and boot overhead.
	if w := dev.Run.Work[stats.Wasted].T; w > 3500*time.Microsecond {
		t.Errorf("wasted = %v; resume-from-instruction should waste < one op", w)
	}
	// Total on-time ≈ golden + small: the first two compute blocks are
	// never re-paid.
	if dev.Run.OnTime > 8*time.Millisecond {
		t.Errorf("on-time = %v; completed compute was re-paid", dev.Run.OnTime)
	}
}

// TestIOValueReplay: a completed sensor read replays its recorded value;
// the physical value changing meanwhile is invisible.
func TestIOValueReplay(t *testing.T) {
	a := task.NewApp("replay")
	reading := uint16(7)
	execs := 0
	s := a.IO("sensor", task.Single, true, func(e task.Exec, _ int) uint16 {
		execs++
		e.Op(time.Millisecond, 0)
		v := reading
		reading = 99
		return v
	})
	got := a.NVInt("got")
	var fin *task.Task
	a.AddTask("main", func(e task.Exec) {
		v := e.CallIO(s)
		e.Compute(4000)
		e.Store(got, v)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)
	reading = 7 // reset after the analysis run

	dev, rt := run(t, a, power.NewSchedule(3*time.Millisecond))
	if execs-1 != 1 {
		t.Errorf("sensor executions = %d, want 1", execs-1)
	}
	if dev.Run.IOSkips != 1 {
		t.Errorf("skips = %d", dev.Run.IOSkips)
	}
	if v := kernel.ReadVar(dev, rt, got, 0); v != 7 {
		t.Errorf("stored value = %d, want the original 7", v)
	}
}

// TestVoidSitesReexecute: effects outside the value log (accelerator
// runs, transmissions) re-execute on replay.
func TestVoidSitesReexecute(t *testing.T) {
	a := task.NewApp("void")
	execs := 0
	s := a.IO("lea", task.Single, false, func(e task.Exec, _ int) uint16 {
		execs++
		e.LEAMacs(500)
		return 0
	})
	var fin *task.Task
	a.AddTask("main", func(e task.Exec) {
		e.CallIO(s)
		e.Compute(5000)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)
	_, _ = run(t, a, power.NewSchedule(3*time.Millisecond))
	if execs-1 != 2 {
		t.Errorf("void-site executions = %d, want 2 (no value to replay)", execs-1)
	}
}

// TestDMAMixedVolatility: NV→NV transfers skip once complete; transfers
// into volatile memory re-execute to refill it.
func TestDMAMixedVolatility(t *testing.T) {
	a := task.NewApp("dmas")
	src := a.NVConst("src", []uint16{1, 2, 3, 4})
	dst := a.NVBuf("dst", 4)
	dNV := a.DMA("nv")
	dVol := a.DMA("vol")
	var fin *task.Task
	a.AddTask("main", func(e task.Exec) {
		e.DMACopy(dVol, task.VarLoc(src, 0), task.RawLoc(2 /* LEA-RAM */, 0), 4)
		e.DMACopy(dNV, task.VarLoc(src, 0), task.VarLoc(dst, 0), 4)
		e.Compute(5000)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)
	dev, rt := run(t, a, power.NewSchedule(3*time.Millisecond))
	if dev.Run.DMASkips != 1 {
		t.Errorf("DMA skips = %d, want 1 (only the NV→NV copy)", dev.Run.DMASkips)
	}
	for i := 0; i < 4; i++ {
		if got := kernel.ReadVar(dev, rt, dst, i); got != uint16(i+1) {
			t.Errorf("dst[%d] = %d", i, got)
		}
	}
}

// TestSteadyStateOverhead: under continuous power JustDo pays logging
// overhead a task-based runtime does not — the trade-off the paper's §2
// invokes to dismiss checkpointing approaches.
func TestSteadyStateOverhead(t *testing.T) {
	build := func() *task.App {
		a := task.NewApp("ovh")
		buf := a.NVBuf("buf", 32)
		var fin *task.Task
		a.AddTask("main", func(e task.Exec) {
			for i := 0; i < 32; i++ {
				e.Compute(50)
				e.StoreAt(buf, i, uint16(i))
			}
			e.Next(fin)
		})
		fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
		return a
	}
	dev, _ := run(t, analyzed(t, build()), power.Continuous{})
	jd := dev.Run.Work[stats.Overhead].T

	app2 := analyzed(t, build())
	dev2 := kernel.NewDevice(power.Continuous{}, 1)
	if err := kernel.RunApp(dev2, alpaca.New(), app2); err != nil {
		t.Fatal(err)
	}
	base := dev2.Run.Work[stats.Overhead].T
	if jd <= base {
		t.Errorf("JustDo overhead %v must exceed task-based overhead %v", jd, base)
	}
}

// TestProgressResetsAcrossTasks: each task starts with a fresh operation
// sequence; a stale progress counter would skip the next task's work.
func TestProgressResetsAcrossTasks(t *testing.T) {
	a := task.NewApp("twotasks")
	x := a.NVInt("x")
	y := a.NVInt("y")
	var t2, fin *task.Task
	a.AddTask("one", func(e task.Exec) {
		e.Store(x, 1)
		e.Store(x, 2)
		e.Store(x, 3)
		e.Next(t2)
	})
	t2 = a.AddTask("two", func(e task.Exec) {
		e.Store(y, 9) // same sequence slot as task one's first store
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	analyzed(t, a)
	dev, rt := run(t, a, power.Continuous{})
	if kernel.ReadVar(dev, rt, x, 0) != 3 || kernel.ReadVar(dev, rt, y, 0) != 9 {
		t.Error("progress counter bled across tasks")
	}
}

// TestValueLogOverflowPanics: a task with more logged operations than the
// log holds must fail loudly, not corrupt the replay.
func TestValueLogOverflowPanics(t *testing.T) {
	a := task.NewApp("overflow")
	v := a.NVBuf("v", 1)
	a.AddTask("big", func(e task.Exec) {
		for i := 0; i < 5000; i++ {
			_ = e.Load(v) // each load claims a log slot
		}
		e.Done()
	})
	analyzed(t, a)
	defer func() {
		if r := recover(); r == nil {
			t.Error("expected log-overflow panic")
		}
	}()
	dev := kernel.NewDevice(power.Continuous{}, 1)
	_ = kernel.RunApp(dev, New(), a)
}
