// Package justdo implements a JustDo-style logging runtime (Izraelevitz,
// Kelly, Kolli — ASPLOS 2016), the checkpointing-family comparator the
// paper discusses in §2 and §7.2.
//
// Where task-based systems re-execute an interrupted task from its start,
// JustDo logging resumes from the interrupted operation: every store to
// non-volatile memory is logged together with a progress counter, and all
// program state lives in non-volatile memory ("it does not allow volatile
// memory usage"). After a power failure, execution fast-forwards through
// already-completed operations — replaying recorded I/O results instead
// of re-performing them — and continues from the exact interruption
// point.
//
// The trade-off this package exists to demonstrate: JustDo wastes almost
// no work under power failures and never repeats I/O, but pays for it
// with per-operation logging overhead on *every* execution — the reason
// the paper's §2 dismisses checkpointing for energy-scarce devices and
// §7.2 notes JustDo "increases runtime overhead by keeping track of every
// STORE instruction".
//
// Modeling notes. Our task bodies are Go closures that cannot resume
// mid-function, so resumption is modeled as deterministic fast-forward:
// the body re-runs, but every operation whose sequence number is below
// the persisted progress counter is skipped at a small sequence-check
// cost, with recorded results (I/O return values) restored from the log.
// This reproduces JustDo's observable behaviour — time, energy, I/O
// counts, and memory state — under the same deterministic-replay
// assumption the real system makes (stores are re-applied idempotently).
// Control flow that consumes I/O results stays on its original path
// because the recorded values are restored. The engine still calls the
// attempt a "task" for accounting, but there is no all-or-nothing
// boundary: progress persists operation by operation.
package justdo

import (
	"fmt"

	"easeio/internal/kernel"
	"easeio/internal/mcu"
	"easeio/internal/mem"
	"easeio/internal/rtbase"
	"easeio/internal/task"
)

// logSlots bounds the per-task-instance value log (one slot per
// value-producing operation). 4096 words = 8 KB of FRAM — the log
// footprint is itself part of JustDo's cost (compare Table 6's runtime
// metadata sizes).
const logSlots = 4096

// Runtime is one per-run JustDo instance.
type Runtime struct {
	rtbase.Base

	// progress is the persisted per-task operation counter.
	progress mem.Addr
	// valueLog records I/O return values by operation sequence.
	valueLog mem.Addr

	// seq is the volatile operation counter of the current attempt,
	// reset at boot and compared against the persisted progress.
	seq int
}

// New returns a fresh JustDo runtime.
func New() *Runtime { return &Runtime{} }

var _ kernel.Hooks = (*Runtime)(nil)

// Name implements kernel.Hooks.
func (r *Runtime) Name() string { return "JustDo" }

// Attach implements kernel.Hooks.
func (r *Runtime) Attach(dev *kernel.Device, app *task.App) error {
	if err := r.Init(dev, app, "JustDo"); err != nil {
		return err
	}
	r.progress = dev.Mem.Alloc(mem.FRAM, "JustDo", "progress", 1)
	r.valueLog = dev.Mem.Alloc(mem.FRAM, "JustDo", "valuelog", logSlots)
	return nil
}

var _ kernel.Resetter = (*Runtime)(nil)

// Reset implements kernel.Resetter. The progress counter and value log
// start zeroed after Attach, which Device.Reset's memory clear restores.
func (r *Runtime) Reset(dev *kernel.Device) error {
	r.ResetRun(dev)
	r.seq = 0
	return nil
}

var _ kernel.SnapshotterInto = (*Runtime)(nil)

// SnapshotState implements kernel.Snapshotter. JustDo's progress counter
// and value log are durable FRAM words (captured by the device
// snapshot); the volatile sequence counter is per-attempt and rebuilt at
// boot.
func (r *Runtime) SnapshotState() any { return r.SnapshotBaseInto(nil) }

// SnapshotStateInto implements kernel.SnapshotterInto.
func (r *Runtime) SnapshotStateInto(prev any) any {
	p, _ := prev.(*rtbase.BaseState)
	return r.SnapshotBaseInto(p)
}

// RestoreState implements kernel.Snapshotter.
func (r *Runtime) RestoreState(dev *kernel.Device, state any) {
	r.RestoreBase(dev, *state.(*rtbase.BaseState))
	r.seq = 0
}

// OnBoot implements kernel.Hooks.
func (r *Runtime) OnBoot(c *kernel.Ctx) {
	r.LoadBoot(c)
	c.ChargeMemAccess(mem.FRAM, false, true) // progress counter
	r.seq = 0
}

// CurrentTask implements kernel.Hooks.
func (r *Runtime) CurrentTask() *task.Task { return r.Current() }

// BeginTask implements kernel.Hooks.
func (r *Runtime) BeginTask(c *kernel.Ctx, t *task.Task) { r.seq = 0 }

// Transition implements kernel.Hooks: reset the progress counter for the
// next task alongside the pointer update.
func (r *Runtime) Transition(c *kernel.Ctx, next *task.Task) {
	c.ChargeMemAccess(mem.FRAM, true, true)
	r.CommitTransition(c, next, func() {
		r.Dev.Mem.Write(r.progress, 0)
	})
}

// step numbers one operation and reports whether it was already completed
// (fast-forward). It opens a ledger span: completed operations are
// durable the moment the progress counter advances, so their work commits
// immediately rather than waiting for a task boundary.
func (r *Runtime) step(c *kernel.Ctx) (seq int, done bool, mark kernel.SpanMark) {
	seq = r.seq
	r.seq++
	done = uint16(seq) < r.Dev.Mem.Read(r.progress)
	if done {
		// Fast-forward: a sequence comparison only.
		c.ChargeOverheadCycles(2)
	}
	return seq, done, r.Dev.Ledger.Mark()
}

// complete persists the operation's completion and commits its span —
// the per-operation log write that is JustDo's overhead.
func (r *Runtime) complete(c *kernel.Ctx, seq int, mark kernel.SpanMark) {
	c.ChargeOverheadCycles(mcu.FlagSetCycles)
	r.Dev.Mem.Write(r.progress, uint16(seq+1))
	r.Dev.Ledger.CommitSince(mark)
}

// recordValue persists an operation result for replay.
func (r *Runtime) recordValue(c *kernel.Ctx, seq int, v uint16) {
	if seq >= logSlots {
		panic(fmt.Sprintf("justdo: task exceeds %d logged operations", logSlots))
	}
	c.ChargeMemAccess(mem.FRAM, true, true)
	r.Dev.Mem.Write(r.valueLog.Add(seq), v)
}

// replayValue restores a recorded result.
func (r *Runtime) replayValue(c *kernel.Ctx, seq int) uint16 {
	c.ChargeMemAccess(mem.FRAM, false, true)
	return r.Dev.Mem.Read(r.valueLog.Add(seq))
}

// Compute implements kernel.Hooks: compute is sequenced like every other
// operation — resume-from-instruction means completed computation is
// never re-paid. The completion write per compute block is part of
// JustDo's per-operation logging overhead.
func (r *Runtime) Compute(c *kernel.Ctx, n int64) {
	seq, done, mark := r.step(c)
	if done {
		return
	}
	c.ChargeCycles(n)
	r.complete(c, seq, mark)
}

// Load implements kernel.Hooks: loads are sequenced and their values
// logged. Real JustDo resumes at the exact interrupted instruction and
// never re-runs a load; this fast-forward model reproduces that property
// by replaying the logged value, so downstream computation is pinned to
// what the original execution observed even when later stores have
// already modified the location (the read-modify-write idempotence
// hazard). The per-load log write is part of the overhead story: JustDo
// pays for resumability on every operation of every execution.
func (r *Runtime) Load(c *kernel.Ctx, v *task.NVVar, i int) uint16 {
	seq, done, mark := r.step(c)
	if done {
		return r.replayValue(c, seq)
	}
	c.ChargeMemAccess(mem.FRAM, false, false)
	val := r.Dev.Mem.Read(r.MasterAddr(v).Add(i))
	r.recordValue(c, seq, val)
	r.complete(c, seq, mark)
	return val
}

// Store implements kernel.Hooks: every store is sequenced and logged —
// JustDo's defining overhead. Completed stores are skipped on replay so
// the memory image never regresses.
func (r *Runtime) Store(c *kernel.Ctx, v *task.NVVar, i int, val uint16) {
	seq, done, mark := r.step(c)
	if done {
		return
	}
	c.ChargeMemAccess(mem.FRAM, true, false)
	r.Dev.Mem.Write(r.MasterAddr(v).Add(i), val)
	r.complete(c, seq, mark)
}

// AddrOf implements kernel.Hooks.
func (r *Runtime) AddrOf(v *task.NVVar) mem.Addr { return r.MasterAddr(v) }

// CallIO implements kernel.Hooks: completed value-returning operations
// replay their recorded value instead of re-executing (semantics
// annotations are ignored — everything completed is final). Void
// operations re-execute: their effects live outside the value log —
// volatile accelerator state, external transmissions — and JustDo's
// no-volatile-state model has nothing to restore them from.
func (r *Runtime) CallIO(c *kernel.Ctx, s *task.IOSite, idx int) uint16 {
	if !s.Returns {
		return r.ExecIO(c, s, idx)
	}
	seq, done, mark := r.step(c)
	if done {
		r.NoteIOSkip(s)
		return r.replayValue(c, seq)
	}
	v := r.ExecIO(c, s, idx)
	r.recordValue(c, seq, v)
	r.complete(c, seq, mark)
	return v
}

// IOBlock implements kernel.Hooks: blocks need no extra machinery — every
// member operation is individually persistent.
func (r *Runtime) IOBlock(c *kernel.Ctx, b *task.IOBlock, body func()) { body() }

// DMACopy implements kernel.Hooks: a completed transfer to non-volatile
// memory is skipped. A transfer into volatile memory can never be skipped
// — JustDo's no-volatile-state rule, relaxed here only by re-executing
// the refill (idempotent: any mutation of the source would be a later,
// not-yet-executed sequenced store).
func (r *Runtime) DMACopy(c *kernel.Ctx, d *task.DMASite, src, dst task.Loc, words int) {
	srcA, dstA := c.ResolveLoc(src), c.ResolveLoc(dst)
	if dstA.Bank.Volatile() {
		r.ExecDMA(c, d, srcA, dstA, words)
		return
	}
	seq, done, mark := r.step(c)
	if done {
		r.NoteDMASkip(d)
		return
	}
	r.ExecDMA(c, d, srcA, dstA, words)
	r.complete(c, seq, mark)
}
