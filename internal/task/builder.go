// Builder methods for assembling an application blueprint, plus the
// per-task metadata the compiler front-end fills in.

package task

import (
	"fmt"
	"time"
)

// AddTask appends a task with the given body. The first added task is the
// application entry point.
func (a *App) AddTask(name string, body Body) *Task {
	t := &Task{ID: len(a.Tasks), Name: name, Body: body, Meta: &TaskMeta{}}
	a.Tasks = append(a.Tasks, t)
	if a.entry == nil {
		a.entry = t
	}
	return t
}

// NVInt declares a one-word task-shared non-volatile variable.
func (a *App) NVInt(name string) *NVVar { return a.NVBuf(name, 1) }

// NVBuf declares a task-shared non-volatile buffer of the given number of
// 16-bit words.
func (a *App) NVBuf(name string, words int) *NVVar {
	if words <= 0 {
		panic(fmt.Sprintf("task: variable %q must have positive size", name))
	}
	v := &NVVar{ID: len(a.Vars), Name: name, Words: words}
	a.Vars = append(a.Vars, v)
	return v
}

// NVConst declares a constant non-volatile buffer with initial contents.
func (a *App) NVConst(name string, init []uint16) *NVVar {
	v := a.NVBuf(name, len(init))
	v.Init = append([]uint16(nil), init...)
	v.Const = true
	return v
}

// Sensed marks the variable time-sensitive (see NVVar.TimeSensitive) and
// returns it.
func (v *NVVar) Sensed() *NVVar {
	v.TimeSensitive = true
	return v
}

// WithInit sets a variable's initial contents and returns it.
func (v *NVVar) WithInit(init []uint16) *NVVar {
	if len(init) > v.Words {
		panic(fmt.Sprintf("task: init for %q longer than variable", v.Name))
	}
	v.Init = append([]uint16(nil), init...)
	return v
}

// IO declares an I/O call site with the given semantic. For Timely sites
// use TimelyIO.
func (a *App) IO(name string, sem Semantic, returns bool, exec func(Exec, int) uint16) *IOSite {
	if sem == Timely {
		panic("task: use TimelyIO for Timely sites (a window is required)")
	}
	return a.addSite(name, sem, 0, returns, exec)
}

// TimelyIO declares a Timely I/O call site with a freshness window.
func (a *App) TimelyIO(name string, window time.Duration, returns bool, exec func(Exec, int) uint16) *IOSite {
	if window <= 0 {
		panic(fmt.Sprintf("task: Timely site %q needs a positive window", name))
	}
	return a.addSite(name, Timely, window, returns, exec)
}

func (a *App) addSite(name string, sem Semantic, window time.Duration, returns bool, exec func(Exec, int) uint16) *IOSite {
	s := &IOSite{
		ID: len(a.Sites), Name: name, Sem: sem, Window: window,
		Returns: returns, Instances: 1, Exec: exec,
	}
	a.Sites = append(a.Sites, s)
	return s
}

// Loop marks the site as invoked inside a loop with n dynamic instances.
func (s *IOSite) Loop(n int) *IOSite {
	if n <= 0 {
		panic(fmt.Sprintf("task: site %q loop count must be positive", s.Name))
	}
	s.Instances = n
	return s
}

// Fresh declares the site's staleness bound (see IOSite.Freshness): a
// task that commits while holding the site's value more than bound after
// its last physical sample violates the application's freshness
// specification. Validate rejects bounds on sites that return no value.
func (s *IOSite) Fresh(bound time.Duration) *IOSite {
	s.Freshness = bound
	return s
}

// After declares data dependencies: this site must re-execute whenever any
// of the listed sites re-executes.
func (s *IOSite) After(deps ...*IOSite) *IOSite {
	s.DependsOn = append(s.DependsOn, deps...)
	return s
}

// Block declares an I/O block with the given semantic.
func (a *App) Block(name string, sem Semantic) *IOBlock {
	if sem == Timely {
		panic("task: use TimelyBlock for Timely blocks (a window is required)")
	}
	b := &IOBlock{ID: len(a.Blks), Name: name, Sem: sem}
	a.Blks = append(a.Blks, b)
	return b
}

// TimelyBlock declares a Timely I/O block with a freshness window.
func (a *App) TimelyBlock(name string, window time.Duration) *IOBlock {
	if window <= 0 {
		panic(fmt.Sprintf("task: Timely block %q needs a positive window", name))
	}
	b := &IOBlock{ID: len(a.Blks), Name: name, Sem: Timely, Window: window}
	a.Blks = append(a.Blks, b)
	return b
}

// DMA declares a DMA copy site.
func (a *App) DMA(name string) *DMASite {
	d := &DMASite{ID: len(a.DMAs), Name: name}
	a.DMAs = append(a.DMAs, d)
	return d
}

// Excluded marks the DMA as excluded from privatization (constant data).
func (d *DMASite) Excluded() *DMASite {
	d.Exclude = true
	return d
}

// AfterIO declares that this DMA copies data produced by the given I/O
// sites (RelatedConstFlag dependence, §4.3.1).
func (d *DMASite) AfterIO(deps ...*IOSite) *DMASite {
	d.DependsOn = append(d.DependsOn, deps...)
	return d
}

// Validate performs basic structural checks on the blueprint.
func (a *App) Validate() error {
	if len(a.Tasks) == 0 {
		return fmt.Errorf("task: app %q has no tasks", a.Name)
	}
	for _, t := range a.Tasks {
		if t.Body == nil {
			return fmt.Errorf("task: task %q has no body", t.Name)
		}
	}
	for _, s := range a.Sites {
		if s.Exec == nil {
			return fmt.Errorf("task: I/O site %q has no exec function", s.Name)
		}
		if s.Freshness < 0 {
			return fmt.Errorf("task: I/O site %q has a negative freshness bound %v", s.Name, s.Freshness)
		}
		if s.Freshness > 0 && !s.Returns {
			return fmt.Errorf("task: I/O site %q declares a freshness bound but returns no value", s.Name)
		}
	}
	return nil
}

// DeclaresFreshness reports whether any I/O site carries a staleness
// bound — the gate for the checker's freshness oracle.
func (a *App) DeclaresFreshness() bool {
	for _, s := range a.Sites {
		if s.Freshness > 0 {
			return true
		}
	}
	return false
}

// TaskMeta is the per-task metadata the compiler front-end computes from an
// analysis run (internal/frontend). The runtimes consume it: Alpaca
// privatizes WAR, InK double-buffers Reads∪Writes, EaseIO privatizes
// per region.
type TaskMeta struct {
	// Analyzed is set once the front-end has processed the task.
	Analyzed bool
	// Sites lists the I/O sites the task invokes, in first-encounter
	// order.
	Sites []*IOSite
	// Blocks lists the I/O blocks the task opens.
	Blocks []*IOBlock
	// DMAs lists the task's DMA sites in execution order.
	DMAs []*DMASite
	// Reads and Writes are the task-shared variables the task accesses
	// through the CPU (DMA accesses are tracked per region instead).
	Reads, Writes []*NVVar
	// WAR lists variables with a write-after-read dependence inside the
	// task — the set Alpaca privatizes.
	WAR []*NVVar
	// Regions partitions the task at its DMA sites: N DMAs yield N+1
	// regions (§4.4). Tasks without DMAs have a single region covering
	// the whole body.
	Regions []*RegionMeta
}

// RegionVar is one privatized word range of a non-volatile variable
// within a region. The front-end records the exact accessed range, so a
// region that reads b[0] privatizes one word, not the whole buffer —
// matching the paper's per-access privatization copies (§4.5.1, Figure 6).
type RegionVar struct {
	Var *NVVar
	// Lo and Hi bound the accessed words (inclusive).
	Lo, Hi int
}

// Words returns the privatized range length.
func (rv RegionVar) Words() int { return rv.Hi - rv.Lo + 1 }

// RegionMeta describes one privatization region of a task.
type RegionMeta struct {
	// Index is the region's position within the task (0-based).
	Index int
	// Vars lists the non-volatile word ranges the CPU accesses within the
	// region; EaseIO privatizes them at region entry.
	Vars []RegionVar
	// EndDMA is the DMA site that terminates the region (nil for the last
	// region of a task).
	EndDMA *DMASite
}

// HasVar reports whether the region privatizes any range of v.
func (r *RegionMeta) HasVar(v *NVVar) bool {
	for _, x := range r.Vars {
		if x.Var == v {
			return true
		}
	}
	return false
}
