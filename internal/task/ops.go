// Declarative task bodies: a task can describe its body as a flat list
// of ops instead of an opaque Go closure. Op-bodied tasks execute
// identically to closure-bodied ones through the generated interpreter
// body (the same Exec call sequence, so analysis, tracing and the
// differential fixtures see no difference) — and additionally compile to
// per-task kernels when the program is frozen (see compile.go), which the
// engine runs through a tight switch loop with pre-resolved dense IDs and
// fused bulk operations on the steady-state sweep path.

package task

import "fmt"

// OpKind discriminates the op ISA. The set is deliberately small: enough
// to express the straight-line benchmark bodies (compute, word loads and
// stores, a fused load-accumulate loop, small ALU ops for derived values,
// I/O calls, blocks, DMA transfers and the terminal transition).
type OpKind uint8

const (
	// OpInvalid is the zero value; SetOps rejects it.
	OpInvalid OpKind = iota
	// OpCompute charges A cycles of useful CPU work.
	OpCompute
	// OpLoad loads word A of Var into register R1.
	OpLoad
	// OpStore stores register R1 into word A of Var.
	OpStore
	// OpLoadSum sums words [A, A+B) of Var into register R1 — the fused
	// load-accumulate loop (interpreted as B successive LoadAt calls;
	// compiled kernels run it through the runtime's bulk load path).
	OpLoadSum
	// OpMovImm sets register R1 to the constant A.
	OpMovImm
	// OpAddImm adds the constant A to register R1 (uint16 wraparound).
	OpAddImm
	// OpMulImm multiplies register R1 by the constant A.
	OpMulImm
	// OpDivImm divides register R1 by the constant A (A != 0).
	OpDivImm
	// OpAddReg adds register R2 to register R1.
	OpAddReg
	// OpMovReg copies register R2 into register R1.
	OpMovReg
	// OpCallIO invokes I/O site Site (dynamic instance A) and puts its
	// value into register R1 (meaningless for void sites).
	OpCallIO
	// OpBlockBegin opens I/O block Blk; its body runs up to the matching
	// OpBlockEnd. B holds the matching end index (set by SetOps).
	OpBlockBegin
	// OpBlockEnd closes the innermost open block.
	OpBlockEnd
	// OpDMACopy performs a DMA transfer of A words from Src to Dst
	// through site DMA.
	OpDMACopy
	// OpNext commits the task and transitions to Next.
	OpNext
	// OpDone commits the task and ends the application.
	OpDone
)

// NumRegs is the size of the per-attempt register file. Registers are
// volatile scratch: they reset to zero at every attempt, exactly like the
// local variables of a closure body.
const NumRegs = 8

// Op is one instruction of a declarative task body. Fields are used per
// kind as documented on the OpKind constants; constructors below build
// well-formed ops.
type Op struct {
	Kind   OpKind
	R1, R2 uint8
	// A is the kind-specific primary operand (cycles, word index,
	// constant, instance index, word count).
	A int64
	// B is the kind-specific secondary operand (run length, block end).
	B int

	Var  *NVVar
	Site *IOSite
	Blk  *IOBlock
	DMA  *DMASite
	Src  Loc
	Dst  Loc
	Next *Task
}

// ComputeOp charges n cycles of useful CPU work.
func ComputeOp(n int64) Op { return Op{Kind: OpCompute, A: n} }

// LoadOp loads word i of v into register r.
func LoadOp(r uint8, v *NVVar, i int) Op { return Op{Kind: OpLoad, R1: r, Var: v, A: int64(i)} }

// StoreOp stores register r into word i of v.
func StoreOp(v *NVVar, i int, r uint8) Op { return Op{Kind: OpStore, R1: r, Var: v, A: int64(i)} }

// LoadSumOp sums words [off, off+n) of v into register r.
func LoadSumOp(r uint8, v *NVVar, off, n int) Op {
	return Op{Kind: OpLoadSum, R1: r, Var: v, A: int64(off), B: n}
}

// MovImmOp sets register r to val.
func MovImmOp(r uint8, val uint16) Op { return Op{Kind: OpMovImm, R1: r, A: int64(val)} }

// AddImmOp adds val to register r.
func AddImmOp(r uint8, val uint16) Op { return Op{Kind: OpAddImm, R1: r, A: int64(val)} }

// MulImmOp multiplies register r by val.
func MulImmOp(r uint8, val uint16) Op { return Op{Kind: OpMulImm, R1: r, A: int64(val)} }

// DivImmOp divides register r by val (val != 0).
func DivImmOp(r uint8, val uint16) Op { return Op{Kind: OpDivImm, R1: r, A: int64(val)} }

// AddRegOp adds register r2 to register r1.
func AddRegOp(r1, r2 uint8) Op { return Op{Kind: OpAddReg, R1: r1, R2: r2} }

// MovRegOp copies register r2 into register r1.
func MovRegOp(r1, r2 uint8) Op { return Op{Kind: OpMovReg, R1: r1, R2: r2} }

// CallIOOp invokes site s (straight-line instance 0) into register r.
func CallIOOp(r uint8, s *IOSite) Op { return Op{Kind: OpCallIO, R1: r, Site: s} }

// CallIOAtOp invokes dynamic instance idx of site s into register r.
func CallIOAtOp(r uint8, s *IOSite, idx int) Op {
	return Op{Kind: OpCallIO, R1: r, Site: s, A: int64(idx)}
}

// BlockBeginOp opens I/O block b.
func BlockBeginOp(b *IOBlock) Op { return Op{Kind: OpBlockBegin, Blk: b} }

// BlockEndOp closes the innermost open block.
func BlockEndOp() Op { return Op{Kind: OpBlockEnd} }

// DMACopyOp transfers words words from src to dst through DMA site d.
func DMACopyOp(d *DMASite, src, dst Loc, words int) Op {
	return Op{Kind: OpDMACopy, DMA: d, Src: src, Dst: dst, A: int64(words)}
}

// NextOp commits the task and transitions to t.
func NextOp(t *Task) Op { return Op{Kind: OpNext, Next: t} }

// DoneOp commits the task and ends the application.
func DoneOp() Op { return Op{Kind: OpDone} }

// SetOps attaches a declarative op list to t as its body. It must be
// called after every task the ops reference has been declared (forward
// transitions hold *Task pointers), and before analysis. The generated
// Body makes exactly the Exec calls the equivalent closure would, so an
// op-bodied task is observationally identical to its closure twin on the
// interpreted path; the frozen program additionally compiles the list
// into an execution kernel (compile.go). SetOps panics on malformed
// lists, like the other builder methods.
func (a *App) SetOps(t *Task, ops ...Op) *Task {
	own := append([]Op(nil), ops...)
	if err := resolveBlocks(own); err != nil {
		panic(fmt.Sprintf("task: %s: %v", t.Name, err))
	}
	for i := range own {
		if err := validateOp(&own[i]); err != nil {
			panic(fmt.Sprintf("task: %s op %d: %v", t.Name, i, err))
		}
	}
	t.Ops = own
	t.Body = opsBody(own)
	return t
}

// resolveBlocks matches OpBlockBegin/OpBlockEnd pairs, storing each
// begin's matching end index in its B field.
func resolveBlocks(ops []Op) error {
	var stack []int
	for i := range ops {
		switch ops[i].Kind {
		case OpBlockBegin:
			stack = append(stack, i)
		case OpBlockEnd:
			if len(stack) == 0 {
				return fmt.Errorf("unmatched block end")
			}
			ops[stack[len(stack)-1]].B = i
			stack = stack[:len(stack)-1]
		}
	}
	if len(stack) > 0 {
		return fmt.Errorf("unclosed block")
	}
	return nil
}

func validateOp(op *Op) error {
	if op.R1 >= NumRegs || op.R2 >= NumRegs {
		return fmt.Errorf("register out of range (have %d)", NumRegs)
	}
	switch op.Kind {
	case OpCompute:
		if op.A < 0 {
			return fmt.Errorf("negative cycle count %d", op.A)
		}
	case OpLoad, OpStore:
		if op.Var == nil {
			return fmt.Errorf("nil variable")
		}
	case OpLoadSum:
		if op.Var == nil {
			return fmt.Errorf("nil variable")
		}
		if op.B < 0 {
			return fmt.Errorf("negative run length %d", op.B)
		}
	case OpMovImm, OpAddImm, OpMulImm, OpAddReg, OpMovReg:
	case OpDivImm:
		if op.A == 0 {
			return fmt.Errorf("division by zero constant")
		}
	case OpCallIO:
		if op.Site == nil {
			return fmt.Errorf("nil I/O site")
		}
	case OpBlockBegin:
		if op.Blk == nil {
			return fmt.Errorf("nil I/O block")
		}
	case OpBlockEnd:
	case OpDMACopy:
		if op.DMA == nil {
			return fmt.Errorf("nil DMA site")
		}
		if op.A < 0 {
			return fmt.Errorf("negative word count %d", op.A)
		}
	case OpNext:
		if op.Next == nil {
			return fmt.Errorf("nil transition target (use DoneOp to end)")
		}
	case OpDone:
	default:
		return fmt.Errorf("invalid op kind %d", op.Kind)
	}
	return nil
}

// opsBody generates the interpreter body of an op list. The interpreter
// issues the same Exec calls, in the same order with the same arguments,
// as the hand-written closure the ops replace — which is what keeps the
// trace-based front-end, the tracer and every differential fixture
// oblivious to how a body is expressed.
func opsBody(ops []Op) Body {
	return func(e Exec) {
		var regs [NumRegs]uint16
		interpOps(e, ops, &regs)
	}
}

// interpOps executes one (sub-)span of ops against the Exec surface.
// Block bodies recurse with the enclosing register file.
func interpOps(e Exec, ops []Op, regs *[NumRegs]uint16) {
	for i := 0; i < len(ops); i++ {
		op := &ops[i]
		switch op.Kind {
		case OpCompute:
			e.Compute(op.A)
		case OpLoad:
			regs[op.R1] = e.LoadAt(op.Var, int(op.A))
		case OpStore:
			e.StoreAt(op.Var, int(op.A), regs[op.R1])
		case OpLoadSum:
			var s uint16
			off := int(op.A)
			for j := 0; j < op.B; j++ {
				s += e.LoadAt(op.Var, off+j)
			}
			regs[op.R1] = s
		case OpMovImm:
			regs[op.R1] = uint16(op.A)
		case OpAddImm:
			regs[op.R1] += uint16(op.A)
		case OpMulImm:
			regs[op.R1] *= uint16(op.A)
		case OpDivImm:
			regs[op.R1] /= uint16(op.A)
		case OpAddReg:
			regs[op.R1] += regs[op.R2]
		case OpMovReg:
			regs[op.R1] = regs[op.R2]
		case OpCallIO:
			regs[op.R1] = e.CallIOAt(op.Site, int(op.A))
		case OpBlockBegin:
			body := ops[i+1 : op.B]
			e.IOBlock(op.Blk, func() { interpOps(e, body, regs) })
			i = op.B
		case OpDMACopy:
			e.DMACopy(op.DMA, op.Src, op.Dst, int(op.A))
		case OpNext:
			e.Next(op.Next)
		case OpDone:
			e.Done()
		}
	}
}
