// ExecStub: a minimal, stateful implementation of Exec for unit tests of
// components that only need the environment surface (peripheral models,
// blueprint checks). The execution kernel provides the real thing.

package task

import (
	"math/rand"
	"time"

	"easeio/internal/lazyrand"
	"easeio/internal/units"
)

// ExecStub implements Exec with in-memory state: variables are plain maps,
// charges accumulate, and the clock is advanced by Op. It performs no
// consistency machinery whatsoever.
type ExecStub struct {
	// Clock is the current wall time returned by Now; Op advances it.
	Clock time.Duration
	// ChargedTime and ChargedEnergy accumulate Op charges.
	ChargedTime   time.Duration
	ChargedEnergy units.Energy
	// Cycles accumulates Compute charges.
	Cycles int64
	// Vars holds variable contents, keyed by variable and word index.
	Vars map[*NVVar][]uint16
	// RandSrc seeds Rand (lazily).
	RandSrc int64
	// Transitioned and NextTask record control flow.
	Transitioned bool
	NextTask     *Task

	rng *rand.Rand
}

var _ Exec = (*ExecStub)(nil)

// Compute implements Exec.
func (s *ExecStub) Compute(n int64) { s.Cycles += n }

func (s *ExecStub) slot(v *NVVar) []uint16 {
	if s.Vars == nil {
		s.Vars = map[*NVVar][]uint16{}
	}
	buf, ok := s.Vars[v]
	if !ok {
		buf = make([]uint16, v.Words)
		copy(buf, v.Init)
		s.Vars[v] = buf
	}
	return buf
}

// Load implements Exec.
func (s *ExecStub) Load(v *NVVar) uint16 { return s.slot(v)[0] }

// Store implements Exec.
func (s *ExecStub) Store(v *NVVar, val uint16) { s.slot(v)[0] = val }

// LoadAt implements Exec.
func (s *ExecStub) LoadAt(v *NVVar, i int) uint16 { return s.slot(v)[i] }

// StoreAt implements Exec.
func (s *ExecStub) StoreAt(v *NVVar, i int, val uint16) { s.slot(v)[i] = val }

// CallIO implements Exec by running the site directly.
func (s *ExecStub) CallIO(site *IOSite) uint16 { return site.Exec(s, 0) }

// CallIOAt implements Exec by running the site directly.
func (s *ExecStub) CallIOAt(site *IOSite, idx int) uint16 { return site.Exec(s, idx) }

// IOBlock implements Exec by running the body directly.
func (s *ExecStub) IOBlock(_ *IOBlock, body func()) { body() }

// DMACopy implements Exec as a no-op (no memory model in the stub).
func (s *ExecStub) DMACopy(*DMASite, Loc, Loc, int) {}

// LEAFir implements Exec as a no-op.
func (s *ExecStub) LEAFir(_, _, _, _, _ int) {}

// LEARelu implements Exec as a no-op.
func (s *ExecStub) LEARelu(_, _ int) {}

// LEADot implements Exec as a no-op.
func (s *ExecStub) LEADot(_, _, _ int) int32 { return 0 }

// LEAMacs implements Exec.
func (s *ExecStub) LEAMacs(n int64) { s.Cycles += n }

// ReadLEA implements Exec.
func (s *ExecStub) ReadLEA(int) uint16 { return 0 }

// WriteLEA implements Exec.
func (s *ExecStub) WriteLEA(int, uint16) {}

// Op implements Exec: charges accumulate and the clock advances.
func (s *ExecStub) Op(dt time.Duration, e units.Energy) {
	s.ChargedTime += dt
	s.ChargedEnergy += e
	s.Clock += dt
}

// Now implements Exec.
func (s *ExecStub) Now() time.Duration { return s.Clock }

// Rand implements Exec.
func (s *ExecStub) Rand() *rand.Rand {
	if s.rng == nil {
		s.rng = rand.New(lazyrand.New(s.RandSrc))
	}
	return s.rng
}

// Next implements Exec.
func (s *ExecStub) Next(t *Task) {
	s.Transitioned = true
	s.NextTask = t
}

// Done implements Exec.
func (s *ExecStub) Done() { s.Transitioned = true }
