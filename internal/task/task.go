// Package task defines the blueprint of a task-based intermittent
// application: atomic tasks, task-shared non-volatile variables, I/O call
// sites with re-execution semantics, I/O blocks, and DMA sites.
//
// A blueprint is immutable and runtime-agnostic: the same App runs under
// Alpaca, InK and EaseIO. Per-run state (variable addresses, lock flags,
// private copies) belongs to the runtime that instantiates the app on a
// device. This mirrors the paper's setup, where each benchmark is the same
// C program built against three runtime libraries (§5.2, Table 3).
package task

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"easeio/internal/units"
)

// Semantic is an I/O re-execution semantic (§3.1 of the paper).
type Semantic uint8

const (
	// Always re-executes the operation after every power failure — the
	// default behaviour of task-based systems.
	Always Semantic = iota
	// Single executes the operation at most once: if it completed in a
	// previous energy cycle it is never repeated.
	Single
	// Timely re-executes the operation only if more than Window has
	// elapsed since its last successful execution.
	Timely
)

// String returns the paper's name for the semantic.
func (s Semantic) String() string {
	switch s {
	case Always:
		return "Always"
	case Single:
		return "Single"
	case Timely:
		return "Timely"
	default:
		return fmt.Sprintf("Semantic(%d)", uint8(s))
	}
}

// App is an immutable application blueprint.
type App struct {
	Name  string
	Tasks []*Task
	Vars  []*NVVar
	Sites []*IOSite
	Blks  []*IOBlock
	DMAs  []*DMASite

	// CheckOutput, if non-nil, verifies the final non-volatile memory
	// against the result a continuous-power execution would produce.
	// read returns word i of a variable's committed master copy.
	CheckOutput func(read func(v *NVVar, i int) uint16) bool

	// CheckFast, if non-nil, is an optional fast twin of CheckOutput
	// over the bulk CheckMem surface. It must decide exactly what
	// CheckOutput decides on every reachable memory state (a test pins
	// the equivalence per app); the engine prefers it on the steady-state
	// sweep path because range comparisons beat per-word reads through a
	// closure.
	CheckFast func(m CheckMem) bool

	entry *Task
	// program is the frozen front-end output, set once by FreezeProgram.
	program *Program
	// analyzeOnce serializes the front-end's single analysis pass across
	// concurrent sessions (see AnalyzeOnce).
	analyzeOnce sync.Once
	analyzeErr  error
}

// AnalyzeOnce runs analyze(a) at most once across all concurrent callers
// and returns that one call's error to every caller, then and later. The
// compiler front-end mutates the blueprint while analyzing and analyzed
// blueprints are shared lock-free, so concurrent sessions racing to
// analyze the same app must funnel through this gate; sync.Once also
// publishes the analysis results (happens-before) to every caller that
// returns.
func (a *App) AnalyzeOnce(analyze func(*App) error) error {
	a.analyzeOnce.Do(func() { a.analyzeErr = analyze(a) })
	return a.analyzeErr
}

// CheckMem is the bulk read surface CheckFast verifies against. Both
// methods see the committed master copy of each variable, exactly like
// CheckOutput's read callback.
type CheckMem interface {
	// Read returns word i of v's committed master copy.
	Read(v *NVVar, i int) uint16
	// Equal reports whether words [off, off+len(want)) of v's committed
	// master copy equal want.
	Equal(v *NVVar, off int, want []uint16) bool
}

// NewApp returns an empty application blueprint.
func NewApp(name string) *App { return &App{Name: name} }

// Entry returns the first task executed after the initial boot.
func (a *App) Entry() *Task { return a.entry }

// Task is one atomic, all-or-nothing unit of execution.
type Task struct {
	ID   int
	Name string
	// Body is the task's code. It must end by calling Exec.Next or
	// Exec.Done.
	Body Body
	// Meta holds the metadata the compiler front-end computes.
	Meta *TaskMeta
	// Hints lists variables the front-end must treat as accessed by this
	// task even if its analysis run did not observe the access (variables
	// touched only on data-dependent branches). A static analysis would
	// find these conservatively; the trace-based front-end needs the
	// declaration.
	Hints []*NVVar
	// Ops, when non-empty, is the declarative op list this task's Body
	// was generated from (see SetOps). The frozen program compiles it
	// into a per-task execution kernel; tasks with closure bodies have
	// no Ops and always run interpreted.
	Ops []Op
}

// Touches declares front-end hint variables for the task (see Hints).
func (t *Task) Touches(vars ...*NVVar) *Task {
	t.Hints = append(t.Hints, vars...)
	return t
}

// Body is the signature of a task body. The concrete execution context is
// defined by the kernel package; tasks receive it through the Exec
// interface to keep this package dependency-free.
type Body func(Exec)

// Exec is the capability surface a task body needs. The kernel's Ctx
// implements it for real execution; the compiler front-end implements it
// with a recorder for analysis runs. Keeping it here (consumer-side
// interface) lets blueprints stay independent of the execution engine.
type Exec interface {
	// Compute charges n cycles of useful CPU work.
	Compute(n int64)
	// Load/Store access word 0 of a task-shared variable.
	Load(v *NVVar) uint16
	Store(v *NVVar, val uint16)
	// LoadAt/StoreAt access word i of a task-shared variable.
	LoadAt(v *NVVar, i int) uint16
	StoreAt(v *NVVar, i int, val uint16)
	// CallIO executes (or skips) an I/O site and returns its value. For
	// void sites the value is meaningless.
	CallIO(s *IOSite) uint16
	// CallIOAt is CallIO for a site invoked in a loop: idx distinguishes
	// dynamic instances so that each loop iteration gets its own lock
	// flag (paper §6, "Re-execution Semantics in Loops").
	CallIOAt(s *IOSite, idx int) uint16
	// IOBlock runs body within the given I/O block's atomic scope.
	IOBlock(b *IOBlock, body func())
	// DMACopy performs a DMA transfer described by site d.
	DMACopy(d *DMASite, src, dst Loc, words int)

	// LEAFir runs the LEA FIR kernel over LEA-RAM word offsets:
	// out[i] = Σ_j coef[j]·in[i+j] for i in [0, inLen−taps], on int16
	// samples with saturation.
	LEAFir(inOff, coefOff, outOff, inLen, taps int)
	// LEARelu clamps n int16 words at LEA-RAM offset off to ≥ 0.
	LEARelu(off, n int)
	// LEADot returns the int32 dot product of two n-word int16 vectors in
	// LEA-RAM.
	LEADot(aOff, bOff, n int) int32
	// LEAMacs charges a raw LEA vector operation of n multiply-
	// accumulates without touching memory (used by synthetic workloads).
	LEAMacs(n int64)
	// ReadLEA/WriteLEA are CPU accesses to LEA-RAM.
	ReadLEA(off int) uint16
	WriteLEA(off int, val uint16)

	// Op charges a peripheral operation of the given duration and energy
	// (used by the peripheral models in internal/periph).
	Op(dt time.Duration, e units.Energy)
	// Now returns persistent wall-clock time from the timekeeper.
	Now() time.Duration
	// Rand is the measurement-world randomness driving physical value
	// processes; sampling it costs nothing.
	Rand() *rand.Rand

	// Next transitions to task t (commits this task's state).
	Next(t *Task)
	// Done ends the application (commits this task's state).
	Done()
}

// NVVar is a task-shared variable living in non-volatile memory.
type NVVar struct {
	ID    int
	Name  string
	Words int
	// Init holds initial contents (len ≤ Words); missing words are zero.
	Init []uint16
	// Const marks variables that the application never writes after
	// initialization (e.g. filter coefficients). The front-end uses this
	// to validate Exclude annotations.
	Const bool
	// TimeSensitive marks variables whose final value legitimately depends
	// on *when* the run's I/O executed: sensor readings and values derived
	// from them. Injecting a power failure shifts wall-clock time, so a
	// replay's re-sampled peripherals produce different (but still
	// correct) values. Differential checkers skip these variables when
	// comparing final memory word-for-word against a golden run and rely
	// on the app's CheckOutput invariant instead.
	TimeSensitive bool
}

// IOSite is a static I/O call site: one _call_IO in the paper's API.
type IOSite struct {
	ID   int
	Name string
	// Sem is the programmer-annotated re-execution semantic.
	Sem Semantic
	// Window is the freshness window for Timely sites.
	Window time.Duration
	// Returns reports whether the operation produces a value that EaseIO
	// must privatize and restore on skipped re-executions.
	Returns bool
	// Instances is the number of dynamic instances the site has when
	// invoked in a loop (1 for straight-line code). EaseIO allocates one
	// lock flag and one private value slot per instance.
	Instances int
	// Freshness, when positive, bounds how stale the site's value may be
	// when a task consuming it commits: if more than Freshness of
	// wall-clock time (on-time plus off-time) has passed since the value
	// was last physically sampled, the consuming commit is a staleness
	// violation. It is a *specification* the checker's freshness oracle
	// enforces, orthogonal to Window: Window tells the runtime when to
	// re-execute, Freshness tells the checker what the application can
	// tolerate. Only meaningful on value-returning sites.
	Freshness time.Duration
	// Exec performs the actual peripheral operation. It runs with the
	// task's execution context and the dynamic loop instance index (0 for
	// straight-line sites), returning the operation's value (0 for void
	// operations).
	Exec func(e Exec, idx int) uint16
	// DependsOn lists I/O sites whose re-execution forces this site to
	// re-execute too (data dependence, §3.3.2). In the paper the compiler
	// front-end derives these from the AST; here the application builder
	// declares them and the front-end completes the transitive closure.
	DependsOn []*IOSite
}

// IOBlock groups multiple I/O operations that must execute atomically
// under a shared re-execution semantic (_IO_block_begin/_IO_block_end).
type IOBlock struct {
	ID   int
	Name string
	Sem  Semantic
	// Window is the block's freshness window for Timely blocks.
	Window time.Duration
	// Members and SubBlocks are filled by the front-end from an analysis
	// run; they define the block's scope for semantic precedence.
	Members   []*IOSite
	SubBlocks []*IOBlock
}

// DMAKind classifies a DMA copy by the volatility of its endpoints, which
// determines the runtime semantic EaseIO assigns (§4.3).
type DMAKind uint8

const (
	// DMAToNonVolatile covers volatile→NV and NV→NV copies, handled as
	// Single.
	DMAToNonVolatile DMAKind = iota
	// DMANonVolatileToVolatile covers NV→volatile copies, handled as
	// Private (two-phase copy through a privatization buffer).
	DMANonVolatileToVolatile
	// DMAVolatileToVolatile covers volatile→volatile copies, handled as
	// Always.
	DMAVolatileToVolatile
)

// String returns the paper's name for the DMA classification.
func (k DMAKind) String() string {
	switch k {
	case DMAToNonVolatile:
		return "Single"
	case DMANonVolatileToVolatile:
		return "Private"
	case DMAVolatileToVolatile:
		return "Always"
	default:
		return fmt.Sprintf("DMAKind(%d)", uint8(k))
	}
}

// DMASite is a static _DMA_copy call site.
type DMASite struct {
	ID   int
	Name string
	// Exclude marks DMAs the programmer excluded from privatization
	// (constant source data, §4.3); the runtime then treats the copy as
	// Always and skips the two-phase commit.
	Exclude bool
	// DependsOn lists I/O sites whose output feeds this DMA
	// (RelatedConstFlag, §4.3.1).
	DependsOn []*IOSite
}

// Loc names one endpoint of a DMA transfer: either a word range of a
// task-shared variable (resolved by the runtime to its master non-volatile
// address) or a raw volatile address such as LEA-RAM.
type Loc struct {
	Var *NVVar
	Off int
	// RawBank/RawWord address a raw location when Var is nil.
	RawBank uint8
	RawWord int
}

// VarLoc returns a Loc for word off of variable v.
func VarLoc(v *NVVar, off int) Loc { return Loc{Var: v, Off: off} }

// RawLoc returns a Loc for a raw bank/word address.
func RawLoc(bank uint8, word int) Loc { return Loc{RawBank: bank, RawWord: word} }

// String renders the location.
func (l Loc) String() string {
	if l.Var != nil {
		return fmt.Sprintf("%s+%d", l.Var.Name, l.Off)
	}
	return fmt.Sprintf("raw(%d)+%d", l.RawBank, l.RawWord)
}
