package task

import (
	"testing"
	"time"
)

func TestSemanticStrings(t *testing.T) {
	if Always.String() != "Always" || Single.String() != "Single" || Timely.String() != "Timely" {
		t.Error("semantic names wrong")
	}
	if Semantic(99).String() != "Semantic(99)" {
		t.Error("unknown semantic formatting")
	}
}

func TestDMAKindStrings(t *testing.T) {
	if DMAToNonVolatile.String() != "Single" ||
		DMANonVolatileToVolatile.String() != "Private" ||
		DMAVolatileToVolatile.String() != "Always" {
		t.Error("DMA kind names must match the paper's annotations")
	}
}

func TestBuilderBasics(t *testing.T) {
	a := NewApp("test")
	v := a.NVInt("x")
	if v.Words != 1 || v.ID != 0 {
		t.Errorf("NVInt: %+v", v)
	}
	buf := a.NVBuf("buf", 16)
	if buf.Words != 16 || buf.ID != 1 {
		t.Errorf("NVBuf: %+v", buf)
	}
	c := a.NVConst("c", []uint16{1, 2, 3})
	if !c.Const || len(c.Init) != 3 || c.Words != 3 {
		t.Errorf("NVConst: %+v", c)
	}
	buf.WithInit([]uint16{9})
	if buf.Init[0] != 9 {
		t.Error("WithInit")
	}

	site := a.IO("s", Single, true, func(Exec, int) uint16 { return 0 })
	if site.Sem != Single || !site.Returns || site.Instances != 1 {
		t.Errorf("site: %+v", site)
	}
	ts := a.TimelyIO("t", 10*time.Millisecond, false, func(Exec, int) uint16 { return 0 })
	if ts.Sem != Timely || ts.Window != 10*time.Millisecond {
		t.Errorf("timely site: %+v", ts)
	}
	ts.Loop(5)
	if ts.Instances != 5 {
		t.Error("Loop")
	}
	ts.After(site)
	if len(ts.DependsOn) != 1 || ts.DependsOn[0] != site {
		t.Error("After")
	}

	blk := a.Block("b", Single)
	if blk.Sem != Single {
		t.Errorf("block: %+v", blk)
	}
	tb := a.TimelyBlock("tb", time.Millisecond)
	if tb.Sem != Timely || tb.Window != time.Millisecond {
		t.Errorf("timely block: %+v", tb)
	}

	d := a.DMA("d").Excluded().AfterIO(site)
	if !d.Exclude || len(d.DependsOn) != 1 {
		t.Errorf("dma: %+v", d)
	}

	t1 := a.AddTask("one", func(e Exec) { e.Done() })
	if a.Entry() != t1 {
		t.Error("first task must be the entry")
	}
	t2 := a.AddTask("two", func(e Exec) { e.Done() }).Touches(v)
	if len(t2.Hints) != 1 {
		t.Error("Touches")
	}
	if err := a.Validate(); err != nil {
		t.Errorf("valid app rejected: %v", err)
	}
}

func TestBuilderPanics(t *testing.T) {
	a := NewApp("p")
	cases := []func(){
		func() { a.NVBuf("bad", 0) },
		func() { a.IO("x", Timely, false, nil) },
		func() { a.TimelyIO("x", 0, false, nil) },
		func() { a.Block("x", Timely) },
		func() { a.TimelyBlock("x", 0) },
		func() { a.IO("ok", Always, false, func(Exec, int) uint16 { return 0 }).Loop(0) },
		func() { (&NVVar{Name: "v", Words: 1}).WithInit([]uint16{1, 2}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestValidateErrors(t *testing.T) {
	empty := NewApp("empty")
	if empty.Validate() == nil {
		t.Error("app without tasks must not validate")
	}
	noBody := NewApp("nobody")
	noBody.Tasks = append(noBody.Tasks, &Task{Name: "x", Meta: &TaskMeta{}})
	if noBody.Validate() == nil {
		t.Error("task without body must not validate")
	}
	noExec := NewApp("noexec")
	noExec.AddTask("t", func(e Exec) { e.Done() })
	noExec.Sites = append(noExec.Sites, &IOSite{Name: "s"})
	if noExec.Validate() == nil {
		t.Error("site without exec must not validate")
	}
}

// TestValidateFreshnessErrors pins the freshness-bound misuse surface: a
// bound is a specification on a consumed value, so it must be positive
// and the site must return one.
func TestValidateFreshnessErrors(t *testing.T) {
	exec := func(Exec, int) uint16 { return 0 }
	cases := []struct {
		name    string
		build   func(*App)
		wantErr string
	}{
		{
			name: "negative bound",
			build: func(a *App) {
				a.IO("sense", Always, true, exec).Fresh(-time.Millisecond)
			},
			wantErr: `task: I/O site "sense" has a negative freshness bound -1ms`,
		},
		{
			name: "bound on a site that returns nothing",
			build: func(a *App) {
				a.IO("fire", Always, false, exec).Fresh(time.Millisecond)
			},
			wantErr: `task: I/O site "fire" declares a freshness bound but returns no value`,
		},
		{
			name: "valid bound",
			build: func(a *App) {
				a.IO("sense", Always, true, exec).Fresh(time.Millisecond)
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := NewApp("fresh")
			c.build(a)
			a.AddTask("t", func(e Exec) { e.Done() })
			err := a.Validate()
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("valid app rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("misuse accepted")
			}
			if err.Error() != c.wantErr {
				t.Errorf("error = %q,\nwant    %q", err.Error(), c.wantErr)
			}
		})
	}
}

func TestLocHelpers(t *testing.T) {
	v := &NVVar{Name: "v", Words: 4}
	l := VarLoc(v, 2)
	if l.Var != v || l.Off != 2 {
		t.Errorf("VarLoc: %+v", l)
	}
	if l.String() != "v+2" {
		t.Errorf("VarLoc string: %q", l.String())
	}
	r := RawLoc(2, 7)
	if r.Var != nil || r.RawBank != 2 || r.RawWord != 7 {
		t.Errorf("RawLoc: %+v", r)
	}
}

func TestRegionVarWords(t *testing.T) {
	rv := RegionVar{Lo: 3, Hi: 7}
	if rv.Words() != 5 {
		t.Errorf("Words = %d", rv.Words())
	}
	r := &RegionMeta{Vars: []RegionVar{{Var: &NVVar{Name: "a"}}}}
	if !r.HasVar(r.Vars[0].Var) || r.HasVar(&NVVar{}) {
		t.Error("HasVar")
	}
}
