// Program is the frozen output of the compiler front-end: the per-task
// analysis metadata of one App, computed exactly once and immutable from
// then on. The blueprint/instance split rests on it — an analyzed App plus
// its Program can be shared by any number of concurrent simulations while
// all per-run mutable state lives in the runtime instances and devices.

package task

import "fmt"

// Program holds the frozen per-task metadata of an analyzed App, indexed
// by task ID. Runtimes read all analysis results (I/O sites, WAR sets,
// DMA regions) through it; nothing mutates it after FreezeProgram.
type Program struct {
	app   *App
	metas []*TaskMeta
}

// App returns the blueprint this program was compiled from.
func (p *Program) App() *App { return p.app }

// MetaOf returns the frozen metadata of task t.
func (p *Program) MetaOf(t *Task) *TaskMeta {
	if t.ID < 0 || t.ID >= len(p.metas) {
		panic(fmt.Sprintf("task: %q is not a task of program %q", t.Name, p.app.Name))
	}
	return p.metas[t.ID]
}

// Tasks returns the number of tasks the program covers.
func (p *Program) Tasks() int { return len(p.metas) }

// Program returns the frozen analysis attached by the front-end, or nil
// if the app has not been analyzed yet.
func (a *App) Program() *Program { return a.program }

// FreezeProgram attaches per-task metadata to the app as its frozen
// Program. The front-end calls it at the end of its single analysis pass;
// calling it again is an error ("analyze once"). Each task's Meta pointer
// is redirected to the frozen record, so code holding a *Task observes
// the same metadata the Program serves.
func FreezeProgram(app *App, metas []*TaskMeta) (*Program, error) {
	if app.program != nil {
		return nil, fmt.Errorf("task: app %q already has a frozen program", app.Name)
	}
	if len(metas) != len(app.Tasks) {
		return nil, fmt.Errorf("task: app %q has %d tasks but %d metadata records",
			app.Name, len(app.Tasks), len(metas))
	}
	p := &Program{app: app, metas: metas}
	for i, t := range app.Tasks {
		t.Meta = metas[i]
	}
	app.program = p
	return p, nil
}

// ViewProgram builds a Program view over the tasks' current Meta records
// without freezing the app — the adapter for blueprints whose metadata was
// filled in by hand (tests) rather than by the front-end.
func ViewProgram(app *App) (*Program, error) {
	metas := make([]*TaskMeta, len(app.Tasks))
	for i, t := range app.Tasks {
		if t.Meta == nil || !t.Meta.Analyzed {
			return nil, fmt.Errorf("task %q not analyzed; run frontend.Analyze first", t.Name)
		}
		metas[i] = t.Meta
	}
	return &Program{app: app, metas: metas}, nil
}
