// Program is the frozen output of the compiler front-end: the per-task
// analysis metadata of one App, computed exactly once and immutable from
// then on. The blueprint/instance split rests on it — an analyzed App plus
// its Program can be shared by any number of concurrent simulations while
// all per-run mutable state lives in the runtime instances and devices.

package task

import (
	"fmt"
	"time"
)

// The flat program tables: everything a runtime needs per I/O site, DMA
// site, variable or task, addressable by the dense IDs the builder
// assigned at declaration time. The tables are computed once when the
// program is frozen, so the per-run hot paths index arrays instead of
// chasing blueprint pointers or hashing map keys (DESIGN.md §14).

// VarInfo is the frozen per-variable record: var ID → word span.
type VarInfo struct {
	// Words is the variable's size in 16-bit words.
	Words int
}

// SiteInfo is the frozen per-I/O-site record: site ID → semantic,
// freshness window, value shape and bookkeeping slot placement.
type SiteInfo struct {
	Sem     Semantic
	Window  time.Duration
	Returns bool
	// Instances is the site's dynamic loop instance count (≥ 1).
	Instances int
	// SlotBase is the site's first bookkeeping slot: dynamic instance idx
	// of this site uses slot SlotBase+idx in every per-run slot array
	// sized by Program.IOSlots.
	SlotBase int
	// Deps lists the IDs of the sites this one depends on (the frozen
	// transitive closure of IOSite.DependsOn).
	Deps []int32
}

// BlockInfo is the frozen per-I/O-block record.
type BlockInfo struct {
	Sem    Semantic
	Window time.Duration
	// Members and SubBlocks list member site and nested block IDs.
	Members   []int32
	SubBlocks []int32
}

// DMAInfo is the frozen per-DMA-site record. A DMA site has exactly one
// dynamic instance, so it owns a single bookkeeping slot.
type DMAInfo struct {
	Exclude bool
	// Slot is the site's bookkeeping slot (placed after all I/O site
	// slots).
	Slot int
	// Deps lists the IDs of the I/O sites whose output feeds this DMA.
	Deps []int32
}

// TaskInfo is the frozen per-task record: the analysis sets of TaskMeta
// re-expressed as dense ID lists.
type TaskInfo struct {
	// Sites, Blocks and DMAs list the IDs the task touches, in the
	// front-end's first-encounter order (matching TaskMeta).
	Sites  []int32
	Blocks []int32
	DMAs   []int32
	// Reads, Writes and WAR list variable IDs in app declaration order
	// (matching TaskMeta.Reads/Writes/WAR).
	Reads  []int32
	Writes []int32
	WAR    []int32
}

// Program holds the frozen per-task metadata of an analyzed App, indexed
// by task ID, plus the flat dense-ID tables derived from it. Runtimes
// read all analysis results (I/O sites, WAR sets, DMA regions) through
// it; nothing mutates it after FreezeProgram.
type Program struct {
	app   *App
	metas []*TaskMeta

	vars    []VarInfo
	sites   []SiteInfo
	blocks  []BlockInfo
	dmas    []DMAInfo
	tasks   []TaskInfo
	ioSlots int
	// kernels holds the compiled kernel of each op-bodied task, indexed
	// by task ID (nil when no task is op-bodied; see compile.go).
	kernels []*Kernel
}

// App returns the blueprint this program was compiled from.
func (p *Program) App() *App { return p.app }

// MetaOf returns the frozen metadata of task t.
func (p *Program) MetaOf(t *Task) *TaskMeta {
	if t.ID < 0 || t.ID >= len(p.metas) {
		panic(fmt.Sprintf("task: %q is not a task of program %q", t.Name, p.app.Name))
	}
	return p.metas[t.ID]
}

// Tasks returns the number of tasks the program covers.
func (p *Program) Tasks() int { return len(p.metas) }

// Vars returns the number of task-shared variables the program covers.
func (p *Program) Vars() int { return len(p.vars) }

// VarInfo returns the frozen record of variable ID id.
func (p *Program) VarInfo(id int) *VarInfo { return &p.vars[id] }

// SiteInfo returns the frozen record of I/O site ID id.
func (p *Program) SiteInfo(id int) *SiteInfo { return &p.sites[id] }

// BlockInfo returns the frozen record of I/O block ID id.
func (p *Program) BlockInfo(id int) *BlockInfo { return &p.blocks[id] }

// DMAInfo returns the frozen record of DMA site ID id.
func (p *Program) DMAInfo(id int) *DMAInfo { return &p.dmas[id] }

// TaskInfo returns the frozen record of task ID id.
func (p *Program) TaskInfo(id int) *TaskInfo { return &p.tasks[id] }

// IOSlots returns the total number of per-run bookkeeping slots: one per
// dynamic I/O site instance plus one per DMA site. Runtimes size their
// flat per-run state arrays with it.
func (p *Program) IOSlots() int { return p.ioSlots }

// SiteSlot returns the bookkeeping slot of dynamic instance idx of site s.
func (p *Program) SiteSlot(s *IOSite, idx int) int {
	return p.sites[s.ID].SlotBase + idx
}

// DMASlot returns the bookkeeping slot of DMA site d.
func (p *Program) DMASlot(d *DMASite) int { return p.dmas[d.ID].Slot }

// idsOfSites maps a site list to its IDs.
func idsOfSites(sites []*IOSite) []int32 {
	if len(sites) == 0 {
		return nil
	}
	ids := make([]int32, len(sites))
	for i, s := range sites {
		ids[i] = int32(s.ID)
	}
	return ids
}

// idsOfVars maps a variable list to its IDs.
func idsOfVars(vars []*NVVar) []int32 {
	if len(vars) == 0 {
		return nil
	}
	ids := make([]int32, len(vars))
	for i, v := range vars {
		ids[i] = int32(v.ID)
	}
	return ids
}

// buildTables compiles the flat dense-ID tables from the blueprint and
// the (frozen or hand-set) per-task metadata. IDs were assigned densely
// at declaration time by the builder; this pass only lays out the
// bookkeeping slots and re-expresses the pointer-based analysis sets as
// ID lists.
func (p *Program) buildTables() {
	app, metas := p.app, p.metas

	p.vars = make([]VarInfo, len(app.Vars))
	for i, v := range app.Vars {
		p.vars[i] = VarInfo{Words: v.Words}
	}

	p.sites = make([]SiteInfo, len(app.Sites))
	slot := 0
	for i, s := range app.Sites {
		p.sites[i] = SiteInfo{
			Sem:       s.Sem,
			Window:    s.Window,
			Returns:   s.Returns,
			Instances: s.Instances,
			SlotBase:  slot,
			Deps:      idsOfSites(s.DependsOn),
		}
		slot += s.Instances
	}

	p.blocks = make([]BlockInfo, len(app.Blks))
	for i, blk := range app.Blks {
		subs := make([]int32, len(blk.SubBlocks))
		for j, sb := range blk.SubBlocks {
			subs[j] = int32(sb.ID)
		}
		if len(subs) == 0 {
			subs = nil
		}
		p.blocks[i] = BlockInfo{
			Sem:       blk.Sem,
			Window:    blk.Window,
			Members:   idsOfSites(blk.Members),
			SubBlocks: subs,
		}
	}

	p.dmas = make([]DMAInfo, len(app.DMAs))
	for i, d := range app.DMAs {
		p.dmas[i] = DMAInfo{
			Exclude: d.Exclude,
			Slot:    slot,
			Deps:    idsOfSites(d.DependsOn),
		}
		slot++
	}
	p.ioSlots = slot

	p.tasks = make([]TaskInfo, len(metas))
	for i, m := range metas {
		dmas := make([]int32, len(m.DMAs))
		for j, d := range m.DMAs {
			dmas[j] = int32(d.ID)
		}
		if len(dmas) == 0 {
			dmas = nil
		}
		blks := make([]int32, len(m.Blocks))
		for j, blk := range m.Blocks {
			blks[j] = int32(blk.ID)
		}
		if len(blks) == 0 {
			blks = nil
		}
		p.tasks[i] = TaskInfo{
			Sites:  idsOfSites(m.Sites),
			Blocks: blks,
			DMAs:   dmas,
			Reads:  idsOfVars(m.Reads),
			Writes: idsOfVars(m.Writes),
			WAR:    idsOfVars(m.WAR),
		}
	}

	p.compileKernels()
}

// Program returns the frozen analysis attached by the front-end, or nil
// if the app has not been analyzed yet.
func (a *App) Program() *Program { return a.program }

// FreezeProgram attaches per-task metadata to the app as its frozen
// Program. The front-end calls it at the end of its single analysis pass;
// calling it again is an error ("analyze once"). Each task's Meta pointer
// is redirected to the frozen record, so code holding a *Task observes
// the same metadata the Program serves.
func FreezeProgram(app *App, metas []*TaskMeta) (*Program, error) {
	if app.program != nil {
		return nil, fmt.Errorf("task: app %q already has a frozen program", app.Name)
	}
	if len(metas) != len(app.Tasks) {
		return nil, fmt.Errorf("task: app %q has %d tasks but %d metadata records",
			app.Name, len(app.Tasks), len(metas))
	}
	p := &Program{app: app, metas: metas}
	p.buildTables()
	for i, t := range app.Tasks {
		t.Meta = metas[i]
	}
	app.program = p
	return p, nil
}

// ViewProgram builds a Program view over the tasks' current Meta records
// without freezing the app — the adapter for blueprints whose metadata was
// filled in by hand (tests) rather than by the front-end.
func ViewProgram(app *App) (*Program, error) {
	metas := make([]*TaskMeta, len(app.Tasks))
	for i, t := range app.Tasks {
		if t.Meta == nil || !t.Meta.Analyzed {
			return nil, fmt.Errorf("task %q not analyzed; run frontend.Analyze first", t.Name)
		}
		metas[i] = t.Meta
	}
	p := &Program{app: app, metas: metas}
	p.buildTables()
	return p, nil
}
