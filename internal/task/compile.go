// Kernel compilation: when a program is frozen, every op-bodied task is
// specialized into a compiled execution kernel — its op list with all
// blueprint lookups pre-resolved against the frozen tables (dense IDs,
// bookkeeping slot numbers, per-site semantics). The engine runs kernels
// through one tight switch loop with no interface dispatch on the Exec
// surface and no per-access re-derivation of what the analysis already
// decided; closure-bodied tasks keep running through the interpreter
// unchanged. A kernel is immutable and shared like the rest of the
// Program.

package task

// KOp is one resolved instruction of a compiled kernel. It carries the
// Op's operands plus everything the executor would otherwise look up per
// access: the bookkeeping slot of an I/O or DMA instance, the site's
// frozen semantic, and the blueprint pointers the runtime hooks take.
type KOp struct {
	Kind   OpKind
	R1, R2 uint8
	// A and B are the kind-specific operands, as on Op. For
	// OpBlockBegin, B is the matching end index within the kernel.
	A int64
	B int

	Var  *NVVar
	Site *IOSite
	Blk  *IOBlock
	DMA  *DMASite
	Src  Loc
	Dst  Loc
	Next *Task

	// Sem is the frozen re-execution semantic of Site (OpCallIO only).
	Sem Semantic
	// Slot is the pre-resolved bookkeeping slot: SlotBase+instance for
	// OpCallIO, the DMA slot for OpDMACopy.
	Slot int32
	// VarID is the dense variable ID for load/store kinds.
	VarID int32
}

// Kernel is the compiled form of one op-bodied task.
type Kernel struct {
	// Task is the blueprint task this kernel executes.
	Task *Task
	// Ops is the resolved instruction list.
	Ops []KOp
}

// Kernel returns the compiled kernel of task ID id, or nil if that task
// has a closure body (and therefore always runs interpreted).
func (p *Program) Kernel(id int) *Kernel {
	if p.kernels == nil {
		return nil
	}
	return p.kernels[id]
}

// CompiledKernels returns the per-task kernel table indexed by task ID
// (nil entries for closure-bodied tasks), or nil when no task of the
// program is op-bodied.
func (p *Program) CompiledKernels() []*Kernel { return p.kernels }

// compileKernels specializes every op-bodied task against the frozen
// tables. Called from buildTables so both FreezeProgram and ViewProgram
// produce kernels.
func (p *Program) compileKernels() {
	var kernels []*Kernel
	for i, t := range p.app.Tasks {
		if len(t.Ops) == 0 {
			continue
		}
		if kernels == nil {
			kernels = make([]*Kernel, len(p.app.Tasks))
		}
		kernels[i] = p.compileKernel(t)
	}
	p.kernels = kernels
}

func (p *Program) compileKernel(t *Task) *Kernel {
	k := &Kernel{Task: t, Ops: make([]KOp, len(t.Ops))}
	for i := range t.Ops {
		op := &t.Ops[i]
		ko := KOp{
			Kind: op.Kind,
			R1:   op.R1,
			R2:   op.R2,
			A:    op.A,
			B:    op.B,
			Var:  op.Var,
			Site: op.Site,
			Blk:  op.Blk,
			DMA:  op.DMA,
			Src:  op.Src,
			Dst:  op.Dst,
			Next: op.Next,
		}
		switch op.Kind {
		case OpLoad, OpStore, OpLoadSum:
			ko.VarID = int32(op.Var.ID)
		case OpCallIO:
			ko.Sem = p.sites[op.Site.ID].Sem
			ko.Slot = int32(p.sites[op.Site.ID].SlotBase + int(op.A))
		case OpDMACopy:
			ko.Slot = int32(p.dmas[op.DMA.ID].Slot)
		}
		k.Ops[i] = ko
	}
	return k
}
