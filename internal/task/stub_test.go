package task

import (
	"testing"
	"time"

	"easeio/internal/units"
)

// TestExecStub pins the stub's semantics so tests in other packages can
// rely on it.
func TestExecStub(t *testing.T) {
	s := &ExecStub{}
	s.Compute(100)
	s.LEAMacs(50)
	if s.Cycles != 150 {
		t.Errorf("cycles = %d", s.Cycles)
	}

	v := &NVVar{Name: "v", Words: 3, Init: []uint16{7}}
	if s.Load(v) != 7 {
		t.Error("init not honored")
	}
	s.Store(v, 9)
	s.StoreAt(v, 2, 4)
	if s.Load(v) != 9 || s.LoadAt(v, 2) != 4 {
		t.Error("stores lost")
	}

	s.Op(2*time.Millisecond, 3*units.Microjoule)
	if s.ChargedTime != 2*time.Millisecond || s.ChargedEnergy != 3*units.Microjoule {
		t.Error("op charges")
	}
	if s.Now() != 2*time.Millisecond {
		t.Error("op must advance the clock")
	}

	site := &IOSite{Name: "s", Exec: func(e Exec, idx int) uint16 { return uint16(idx + 1) }}
	if s.CallIO(site) != 1 || s.CallIOAt(site, 4) != 5 {
		t.Error("site dispatch")
	}
	ran := false
	s.IOBlock(&IOBlock{}, func() { ran = true })
	if !ran {
		t.Error("block body skipped")
	}
	s.DMACopy(&DMASite{}, Loc{}, Loc{}, 1) // no-op, must not panic
	s.LEAFir(0, 0, 0, 0, 0)
	s.LEARelu(0, 0)
	if s.LEADot(0, 0, 0) != 0 || s.ReadLEA(0) != 0 {
		t.Error("LEA stubs")
	}
	s.WriteLEA(0, 1)
	if s.Rand() == nil || s.Rand() != s.Rand() {
		t.Error("rand identity")
	}

	tk := &Task{Name: "next"}
	s.Next(tk)
	if !s.Transitioned || s.NextTask != tk {
		t.Error("next")
	}
	s2 := &ExecStub{}
	s2.Done()
	if !s2.Transitioned {
		t.Error("done")
	}
}
