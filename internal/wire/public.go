// The exported encoding primitives. The fleet's write-ahead log defines
// record layouts of its own (job specs, lease transitions) on top of
// the same varint/string/bool vocabulary the fixed messages use; these
// wrappers expose that vocabulary without opening up the internals.

package wire

// Append primitives, re-exported for callers composing their own record
// layouts on the wire vocabulary.

// AppendUvarint appends v as an unsigned varint.
func AppendUvarint(b []byte, v uint64) []byte { return appendUvarint(b, v) }

// AppendVarint appends v as a zigzag varint.
func AppendVarint(b []byte, v int64) []byte { return appendVarint(b, v) }

// AppendString appends s length-prefixed.
func AppendString(b []byte, s string) []byte { return appendString(b, s) }

// AppendBool appends v as one byte.
func AppendBool(b []byte, v bool) []byte { return appendBool(b, v) }

// Decoder is the exported bounds-checked cursor: the first failed read
// latches the error and every subsequent read returns a zero value, so
// callers read a whole record and check Err once. Like the message
// decoders, it never panics and never allocates more than the input
// could hold.
type Decoder struct{ d dec }

// NewDecoder returns a decoder over b. The decoder reads b directly;
// decoded strings are copies, so b may be recycled afterwards.
func NewDecoder(b []byte) *Decoder { return &Decoder{d: dec{b: b}} }

// Uvarint reads an unsigned varint.
func (x *Decoder) Uvarint() uint64 { return x.d.uvarint() }

// Varint reads a zigzag varint.
func (x *Decoder) Varint() int64 { return x.d.varint() }

// String reads a length-prefixed string.
func (x *Decoder) String() string { return x.d.string() }

// Bool reads one byte as a bool.
func (x *Decoder) Bool() bool { return x.d.bool() }

// Byte reads one raw byte.
func (x *Decoder) Byte() byte { return x.d.byte() }

// Bytes reads a length-prefixed byte string as a fresh copy.
func (x *Decoder) Bytes() []byte {
	n := x.d.count(1)
	if x.d.err != nil || n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, x.d.b[x.d.off:x.d.off+n])
	x.d.off += n
	return out
}

// AppendBytes appends p length-prefixed (the encoder for Decoder.Bytes).
func AppendBytes(b, p []byte) []byte {
	b = appendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// Remaining returns the bytes not yet consumed.
func (x *Decoder) Remaining() int { return x.d.remaining() }

// Err returns the first read failure, or nil.
func (x *Decoder) Err() error { return x.d.err }

// Fail latches a caller-level decode error (e.g. an unknown record
// type), unless a read error is already latched.
func (x *Decoder) Fail(format string, args ...any) { x.d.fail(format, args...) }
