// Package wire is the versioned binary encoding for everything the
// distributed sweep fleet ships between processes and commits to its
// write-ahead log: device checkpoints (kernel.Checkpoint), shard
// descriptors, shard results (aggregator fold states, check outcomes)
// and merged result summaries/reports.
//
// Design rules:
//
//   - Every message starts with the 4-byte header 'E' 'W' version kind.
//     Version bumps whenever any message layout changes; decoders reject
//     versions they do not know instead of guessing.
//   - Integers are varints (zigzag for signed), strings and word slices
//     are length-prefixed, floats are IEEE-754 bits — no reflection, no
//     struct tags, no JSON. Encoders are append-based (zero-alloc when
//     the caller recycles buffers); decoders never panic on any input
//     (the fuzz targets pin this) and bound every length they read by
//     the bytes that remain, so hostile lengths cannot OOM the process.
//   - Transport and log framing is the same for both consumers: a
//     little-endian u32 payload length, a u32 IEEE CRC of the payload,
//     then the payload. A frame is committed if and only if it is fully
//     present with a matching CRC — the WAL's torn-tail truncation and
//     the TCP stream's corruption detection both fall out of that rule.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Version is the current encoding version, stamped into every message
// header. Version 2 added the freshness record to run encodings and the
// nested-failure fields (depth, per-depth stats, divergence schedules)
// to check shard/report encodings.
const Version = 2

// Kind tags a message's type in its header.
type Kind uint8

// The message kinds.
const (
	KindInvalid     Kind = 0
	KindCheckpoint  Kind = 1
	KindSweepShard  Kind = 2
	KindCheckShard  Kind = 3
	KindSweepResult Kind = 4
	KindCheckResult Kind = 5
	KindSummary     Kind = 6
	KindReport      Kind = 7
	// KindSubtreeShard and KindSubtreeResult carry the distributed
	// nested-failure checker's work unit: a group of level-1 checkpoint
	// roots to expand, and the subtree exploration they produced.
	KindSubtreeShard  Kind = 8
	KindSubtreeResult Kind = 9
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindCheckpoint:
		return "checkpoint"
	case KindSweepShard:
		return "sweep-shard"
	case KindCheckShard:
		return "check-shard"
	case KindSweepResult:
		return "sweep-result"
	case KindCheckResult:
		return "check-result"
	case KindSummary:
		return "summary"
	case KindReport:
		return "report"
	case KindSubtreeShard:
		return "subtree-shard"
	case KindSubtreeResult:
		return "subtree-result"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// The two header magic bytes ("EW": EaseIO wire).
const (
	magic0 = 'E'
	magic1 = 'W'
)

// headerSize is the fixed message header: magic0 magic1 version kind.
const headerSize = 4

// appendHeader starts a message of the given kind.
func appendHeader(b []byte, k Kind) []byte {
	return append(b, magic0, magic1, Version, byte(k))
}

// PeekKind returns the message kind of an encoded buffer without
// decoding the body (KindInvalid if the header is malformed).
func PeekKind(b []byte) Kind {
	if len(b) < headerSize || b[0] != magic0 || b[1] != magic1 {
		return KindInvalid
	}
	return Kind(b[3])
}

// dec is a bounds-checked cursor over an encoded message. The first
// failed read latches err; subsequent reads return zero values, so
// decode functions can read a whole message and check the error once.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

// remaining returns the bytes not yet consumed.
func (d *dec) remaining() int { return len(d.b) - d.off }

// header validates the message header and returns its kind.
func (d *dec) header(want Kind) {
	if d.remaining() < headerSize {
		d.fail("short header: %d bytes", d.remaining())
		return
	}
	h := d.b[d.off:]
	if h[0] != magic0 || h[1] != magic1 {
		d.fail("bad magic %q", h[:2])
		return
	}
	if h[2] != Version {
		d.fail("unsupported version %d (have %d)", h[2], Version)
		return
	}
	if Kind(h[3]) != want {
		d.fail("message kind %v, want %v", Kind(h[3]), want)
		return
	}
	d.off += headerSize
}

func (d *dec) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 1 {
		d.fail("truncated byte")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) bool() bool { return d.byte() != 0 }

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// count reads a length prefix for elements of at least elemSize bytes
// each, rejecting counts the remaining input cannot possibly hold (the
// anti-OOM bound for all slice allocations).
func (d *dec) count(elemSize int) int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64(d.remaining()/elemSize) {
		d.fail("length %d exceeds %d remaining bytes", n, d.remaining())
		return 0
	}
	return int(n)
}

// intNonNeg reads a uvarint that must fit a non-negative int.
func (d *dec) intNonNeg() int {
	v := d.uvarint()
	if d.err == nil && v > uint64(int64(^uint(0)>>1)) {
		d.fail("value %d overflows int", v)
		return 0
	}
	return int(v)
}

func (d *dec) string() string {
	n := d.count(1)
	if d.err != nil {
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *dec) words() []uint16 {
	n := d.count(2)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]uint16, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint16(d.b[d.off:])
		d.off += 2
	}
	return out
}

func (d *dec) float64() float64 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 8 {
		d.fail("truncated float64")
		return 0
	}
	bits := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return math.Float64frombits(bits)
}

// Append primitives (the encoder side).

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func appendVarint(b []byte, v int64) []byte { return binary.AppendVarint(b, v) }

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendWords(b []byte, w []uint16) []byte {
	b = appendUvarint(b, uint64(len(w)))
	for _, v := range w {
		b = binary.LittleEndian.AppendUint16(b, v)
	}
	return b
}

func appendFloat64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// Framing.

// ErrCorruptFrame reports a frame whose payload does not match its CRC
// or whose length field is implausible.
var ErrCorruptFrame = errors.New("wire: corrupt frame")

// ErrTornFrame reports a frame cut off mid-write: the stream ended
// after the frame started but before its declared payload arrived. A
// WAL replay treats a torn (or corrupt) tail as the crash point and
// truncates; a transport treats it as a fatal stream error.
var ErrTornFrame = errors.New("wire: torn frame")

// MaxFramePayload bounds a single frame. Checkpoints of the modeled
// 256 KB-FRAM device fit in well under 1 MB; 64 MB leaves room for
// batched messages while keeping a corrupt length field from
// allocating gigabytes.
const MaxFramePayload = 64 << 20

// FrameOverhead is the fixed per-frame header size (length + CRC).
const FrameOverhead = 8

// AppendFrame appends payload framed as u32 length, u32 IEEE CRC,
// payload.
func AppendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

// ReadFrame reads one frame from r. It returns io.EOF only at a clean
// frame boundary with zero bytes read; a stream that ends inside a
// frame yields ErrTornFrame, and a frame whose CRC or length is wrong
// yields ErrCorruptFrame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [FrameOverhead]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: %v", ErrTornFrame, err)
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrTornFrame, err)
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > MaxFramePayload {
		return nil, fmt.Errorf("%w: payload length %d exceeds %d", ErrCorruptFrame, n, MaxFramePayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrTornFrame, err)
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:]) {
		return nil, fmt.Errorf("%w: crc mismatch", ErrCorruptFrame)
	}
	return payload, nil
}

// WriteFrame writes payload as one frame to w.
func WriteFrame(w io.Writer, payload []byte) error {
	buf := make([]byte, 0, FrameOverhead+len(payload))
	_, err := w.Write(AppendFrame(buf, payload))
	return err
}
