package wire

import (
	"time"

	"easeio/internal/check"
	"easeio/internal/stats"
	"easeio/internal/units"
)

// SweepShard describes one worker's slice of a sweep job: run seeds
// BaseSeed+Lo … BaseSeed+Hi-1 of App under Runtime. Shards partition
// [0, Runs) contiguously; merging shard aggregator states in Shard
// order reproduces the sequential fold byte for byte.
type SweepShard struct {
	Job     uint64
	Shard   int
	App     string
	Runtime string // experiments.RuntimeKind name, parsed by the worker

	BaseSeed int64
	Lo, Hi   int // seed-index range [Lo, Hi)
	Workers  int // the worker's inner parallelism (0 = its default)
}

// CheckShard describes one worker's slice of a checker job: explore
// candidate failure points CutLo … CutHi-1 against the coordinator's
// golden plan. Only exhaustive checks shard (the adaptive bisection
// prunes against global state, so adaptive jobs are one shard covering
// the full range).
type CheckShard struct {
	Job     uint64
	Shard   int
	App     string
	Runtime string

	Seed       int64
	Off        time.Duration
	FromBoot   bool
	CutLo      int
	CutHi      int // candidate range [CutLo, CutHi); 0,0 = full range
	Exhaustive bool
	Grid       int
	Workers    int
	// Failures is the nested-failure depth k (0 defaults to 1). A
	// CheckShard runs the whole check in one piece, so adaptive k > 1
	// jobs (and runtimes that cannot checkpoint) use it as a single
	// full-range shard; exhaustive k > 1 jobs ship SubtreeShard work
	// units instead (subtree.go).
	Failures int
}

// SweepResult is a worker's completed sweep shard: the aggregator fold
// state over exactly the shard's seed range, plus any per-run errors.
type SweepResult struct {
	Job   uint64
	Shard int
	Agg   stats.AggregatorState
	Errs  []string
}

// CheckResult is a worker's completed check shard. Depths carries the
// per-depth exploration stats of a nested (k > 1) check; it is empty
// for single-failure shards.
type CheckResult struct {
	Job         uint64
	Shard       int
	Explored    int
	Pruned      int
	Depths      []check.DepthStats
	Divergences []check.Divergence
}

// AppendSweepShard encodes s as a KindSweepShard message appended to dst.
func AppendSweepShard(dst []byte, s SweepShard) []byte {
	dst = appendHeader(dst, KindSweepShard)
	dst = appendUvarint(dst, s.Job)
	dst = appendVarint(dst, int64(s.Shard))
	dst = appendString(dst, s.App)
	dst = appendString(dst, s.Runtime)
	dst = appendVarint(dst, s.BaseSeed)
	dst = appendVarint(dst, int64(s.Lo))
	dst = appendVarint(dst, int64(s.Hi))
	return appendVarint(dst, int64(s.Workers))
}

// DecodeSweepShard decodes a KindSweepShard message.
func DecodeSweepShard(b []byte) (SweepShard, error) {
	d := &dec{b: b}
	d.header(KindSweepShard)
	s := SweepShard{
		Job:      d.uvarint(),
		Shard:    int(d.varint()),
		App:      d.string(),
		Runtime:  d.string(),
		BaseSeed: d.varint(),
		Lo:       int(d.varint()),
		Hi:       int(d.varint()),
		Workers:  int(d.varint()),
	}
	if d.err != nil {
		return SweepShard{}, d.err
	}
	if n := d.remaining(); n != 0 {
		return SweepShard{}, d.trailing(n)
	}
	return s, nil
}

// AppendCheckShard encodes s as a KindCheckShard message appended to dst.
func AppendCheckShard(dst []byte, s CheckShard) []byte {
	dst = appendHeader(dst, KindCheckShard)
	dst = appendUvarint(dst, s.Job)
	dst = appendVarint(dst, int64(s.Shard))
	dst = appendString(dst, s.App)
	dst = appendString(dst, s.Runtime)
	dst = appendVarint(dst, s.Seed)
	dst = appendVarint(dst, int64(s.Off))
	dst = appendBool(dst, s.FromBoot)
	dst = appendVarint(dst, int64(s.CutLo))
	dst = appendVarint(dst, int64(s.CutHi))
	dst = appendBool(dst, s.Exhaustive)
	dst = appendVarint(dst, int64(s.Grid))
	dst = appendVarint(dst, int64(s.Workers))
	return appendVarint(dst, int64(s.Failures))
}

// DecodeCheckShard decodes a KindCheckShard message.
func DecodeCheckShard(b []byte) (CheckShard, error) {
	d := &dec{b: b}
	d.header(KindCheckShard)
	s := CheckShard{
		Job:        d.uvarint(),
		Shard:      int(d.varint()),
		App:        d.string(),
		Runtime:    d.string(),
		Seed:       d.varint(),
		Off:        time.Duration(d.varint()),
		FromBoot:   d.bool(),
		CutLo:      int(d.varint()),
		CutHi:      int(d.varint()),
		Exhaustive: d.bool(),
		Grid:       int(d.varint()),
		Workers:    int(d.varint()),
		Failures:   int(d.varint()),
	}
	if d.err != nil {
		return CheckShard{}, d.err
	}
	if n := d.remaining(); n != 0 {
		return CheckShard{}, d.trailing(n)
	}
	return s, nil
}

// AppendSweepResult encodes r as a KindSweepResult message appended to
// dst.
func AppendSweepResult(dst []byte, r SweepResult) []byte {
	dst = appendHeader(dst, KindSweepResult)
	dst = appendUvarint(dst, r.Job)
	dst = appendVarint(dst, int64(r.Shard))
	dst = appendAggregatorState(dst, r.Agg)
	dst = appendUvarint(dst, uint64(len(r.Errs)))
	for _, e := range r.Errs {
		dst = appendString(dst, e)
	}
	return dst
}

// DecodeSweepResult decodes a KindSweepResult message.
func DecodeSweepResult(b []byte) (SweepResult, error) {
	d := &dec{b: b}
	d.header(KindSweepResult)
	r := SweepResult{
		Job:   d.uvarint(),
		Shard: int(d.varint()),
		Agg:   d.aggregatorState(),
	}
	if n := d.count(1); d.err == nil && n > 0 {
		r.Errs = make([]string, n)
		for i := 0; i < n && d.err == nil; i++ {
			r.Errs[i] = d.string()
		}
	}
	if d.err != nil {
		return SweepResult{}, d.err
	}
	if n := d.remaining(); n != 0 {
		return SweepResult{}, d.trailing(n)
	}
	return r, nil
}

// AppendCheckResult encodes r as a KindCheckResult message appended to
// dst.
func AppendCheckResult(dst []byte, r CheckResult) []byte {
	dst = appendHeader(dst, KindCheckResult)
	dst = appendUvarint(dst, r.Job)
	dst = appendVarint(dst, int64(r.Shard))
	dst = appendVarint(dst, int64(r.Explored))
	dst = appendVarint(dst, int64(r.Pruned))
	dst = appendDepthStats(dst, r.Depths)
	return appendDivergences(dst, r.Divergences)
}

// appendDepthStats encodes a nested-exploration stats list (shared by
// check results and merged reports).
func appendDepthStats(dst []byte, depths []check.DepthStats) []byte {
	dst = appendUvarint(dst, uint64(len(depths)))
	for _, ds := range depths {
		dst = appendVarint(dst, int64(ds.Depth))
		dst = appendVarint(dst, int64(ds.Expanded))
		dst = appendVarint(dst, int64(ds.Collapsed))
		dst = appendVarint(dst, int64(ds.Candidates))
		dst = appendVarint(dst, int64(ds.Explored))
		dst = appendVarint(dst, int64(ds.Pruned))
	}
	return dst
}

func (d *dec) depthStats() []check.DepthStats {
	// Each depth entry is 6 varints, at least 6 bytes.
	n := d.count(6)
	if d.err != nil || n == 0 {
		return nil
	}
	depths := make([]check.DepthStats, n)
	for i := 0; i < n && d.err == nil; i++ {
		depths[i] = check.DepthStats{
			Depth:      int(d.varint()),
			Expanded:   int(d.varint()),
			Collapsed:  int(d.varint()),
			Candidates: int(d.varint()),
			Explored:   int(d.varint()),
			Pruned:     int(d.varint()),
		}
	}
	return depths
}

// appendDivergences encodes a divergence list (shared by check results
// and merged reports).
func appendDivergences(dst []byte, divs []check.Divergence) []byte {
	dst = appendUvarint(dst, uint64(len(divs)))
	for _, dv := range divs {
		dst = appendVarint(dst, int64(dv.At))
		dst = appendVarint(dst, int64(dv.Index))
		dst = appendString(dst, dv.Kind)
		dst = appendString(dst, dv.Detail)
		dst = appendUvarint(dst, uint64(len(dv.Schedule)))
		for _, t := range dv.Schedule {
			dst = appendVarint(dst, int64(t))
		}
	}
	return dst
}

func (d *dec) divergences() []check.Divergence {
	// Each divergence is at least 5 bytes (two varints, two empty
	// strings, an empty schedule).
	n := d.count(5)
	if d.err != nil || n == 0 {
		return nil
	}
	divs := make([]check.Divergence, n)
	for i := 0; i < n && d.err == nil; i++ {
		divs[i] = check.Divergence{
			At:     time.Duration(d.varint()),
			Index:  int(d.varint()),
			Kind:   d.string(),
			Detail: d.string(),
		}
		if m := d.count(1); d.err == nil && m > 0 {
			divs[i].Schedule = make([]time.Duration, m)
			for j := 0; j < m && d.err == nil; j++ {
				divs[i].Schedule[j] = time.Duration(d.varint())
			}
		}
	}
	return divs
}

// DecodeCheckResult decodes a KindCheckResult message.
func DecodeCheckResult(b []byte) (CheckResult, error) {
	d := &dec{b: b}
	d.header(KindCheckResult)
	r := CheckResult{
		Job:      d.uvarint(),
		Shard:    int(d.varint()),
		Explored: int(d.varint()),
		Pruned:   int(d.varint()),
	}
	r.Depths = d.depthStats()
	r.Divergences = d.divergences()
	if d.err != nil {
		return CheckResult{}, d.err
	}
	if n := d.remaining(); n != 0 {
		return CheckResult{}, d.trailing(n)
	}
	return r, nil
}

// Aggregator fold state (the sweep merge unit).

func appendAggregatorState(b []byte, a stats.AggregatorState) []byte {
	b = appendString(b, a.App)
	b = appendString(b, a.Runtime)
	b = appendVarint(b, int64(a.Runs))
	for _, t := range a.Work {
		b = appendTotals(b, t)
	}
	b = appendVarint(b, int64(a.Energy))
	b = appendVarint(b, int64(a.OnTime))
	b = appendVarint(b, int64(a.WallTime))
	b = appendVarint(b, int64(a.PowerFailures))
	b = appendVarint(b, int64(a.IOExecs))
	b = appendVarint(b, int64(a.IORepeats))
	b = appendVarint(b, int64(a.IOSkips))
	b = appendVarint(b, int64(a.DMAExecs))
	b = appendVarint(b, int64(a.DMARepeats))
	b = appendVarint(b, int64(a.DMASkips))
	b = appendVarint(b, int64(a.Correct))
	b = appendVarint(b, int64(a.Incorrect))
	b = appendVarint(b, int64(a.Stuck))
	b = appendUvarint(b, uint64(len(a.Totals)))
	for _, t := range a.Totals {
		b = appendVarint(b, int64(t))
	}
	return b
}

func (d *dec) aggregatorState() stats.AggregatorState {
	var a stats.AggregatorState
	a.App = d.string()
	a.Runtime = d.string()
	a.Runs = int(d.varint())
	for i := range a.Work {
		a.Work[i] = d.totals()
	}
	a.Energy = units.Energy(d.varint())
	a.OnTime = time.Duration(d.varint())
	a.WallTime = time.Duration(d.varint())
	a.PowerFailures = int(d.varint())
	a.IOExecs = int(d.varint())
	a.IORepeats = int(d.varint())
	a.IOSkips = int(d.varint())
	a.DMAExecs = int(d.varint())
	a.DMARepeats = int(d.varint())
	a.DMASkips = int(d.varint())
	a.Correct = int(d.varint())
	a.Incorrect = int(d.varint())
	a.Stuck = int(d.varint())
	if n := d.count(1); d.err == nil && n > 0 {
		a.Totals = make([]time.Duration, n)
		for i := 0; i < n && d.err == nil; i++ {
			a.Totals[i] = time.Duration(d.varint())
		}
	}
	return a
}

// Merged job outcomes (the WAL's job-done payloads).

// AppendSummary encodes a merged sweep summary as a KindSummary message
// appended to dst.
func AppendSummary(dst []byte, s stats.Summary) []byte {
	dst = appendHeader(dst, KindSummary)
	dst = appendString(dst, s.App)
	dst = appendString(dst, s.Runtime)
	dst = appendVarint(dst, int64(s.Runs))
	for _, t := range s.Work {
		dst = appendTotals(dst, t)
	}
	dst = appendVarint(dst, int64(s.PowerFailures))
	dst = appendVarint(dst, int64(s.IOExecs))
	dst = appendVarint(dst, int64(s.IORepeats))
	dst = appendVarint(dst, int64(s.IOSkips))
	dst = appendVarint(dst, int64(s.DMAExecs))
	dst = appendVarint(dst, int64(s.DMARepeats))
	dst = appendVarint(dst, int64(s.DMASkips))
	dst = appendVarint(dst, int64(s.MeanEnergy))
	dst = appendVarint(dst, int64(s.MeanOnTime))
	dst = appendVarint(dst, int64(s.MeanWallTime))
	dst = appendVarint(dst, int64(s.P50TotalTime))
	dst = appendVarint(dst, int64(s.P95TotalTime))
	dst = appendVarint(dst, int64(s.CorrectRuns))
	dst = appendVarint(dst, int64(s.IncorrectRuns))
	return appendVarint(dst, int64(s.StuckRuns))
}

// DecodeSummary decodes a KindSummary message.
func DecodeSummary(b []byte) (stats.Summary, error) {
	d := &dec{b: b}
	d.header(KindSummary)
	var s stats.Summary
	s.App = d.string()
	s.Runtime = d.string()
	s.Runs = int(d.varint())
	for i := range s.Work {
		s.Work[i] = d.totals()
	}
	s.PowerFailures = int(d.varint())
	s.IOExecs = int(d.varint())
	s.IORepeats = int(d.varint())
	s.IOSkips = int(d.varint())
	s.DMAExecs = int(d.varint())
	s.DMARepeats = int(d.varint())
	s.DMASkips = int(d.varint())
	s.MeanEnergy = units.Energy(d.varint())
	s.MeanOnTime = time.Duration(d.varint())
	s.MeanWallTime = time.Duration(d.varint())
	s.P50TotalTime = time.Duration(d.varint())
	s.P95TotalTime = time.Duration(d.varint())
	s.CorrectRuns = int(d.varint())
	s.IncorrectRuns = int(d.varint())
	s.StuckRuns = int(d.varint())
	if d.err != nil {
		return stats.Summary{}, d.err
	}
	if n := d.remaining(); n != 0 {
		return stats.Summary{}, d.trailing(n)
	}
	return s, nil
}

// AppendReport encodes a merged check report as a KindReport message
// appended to dst.
func AppendReport(dst []byte, r check.Report) []byte {
	dst = appendHeader(dst, KindReport)
	dst = appendString(dst, r.App)
	dst = appendString(dst, r.Runtime)
	dst = appendVarint(dst, r.Seed)
	dst = appendVarint(dst, int64(r.Off))
	dst = appendVarint(dst, int64(r.GoldenOnTime))
	dst = appendBool(dst, r.GoldenCorrect)
	dst = appendVarint(dst, int64(r.Failures))
	dst = appendVarint(dst, int64(r.Candidates))
	dst = appendVarint(dst, int64(r.Explored))
	dst = appendVarint(dst, int64(r.Pruned))
	dst = appendString(dst, r.Note)
	dst = appendDepthStats(dst, r.Depths)
	dst = appendDivergences(dst, r.Divergences)
	dst = appendUvarint(dst, uint64(len(r.Minimal)))
	for _, m := range r.Minimal {
		dst = appendVarint(dst, int64(m))
	}
	return dst
}

// DecodeReport decodes a KindReport message.
func DecodeReport(b []byte) (check.Report, error) {
	d := &dec{b: b}
	d.header(KindReport)
	var r check.Report
	r.App = d.string()
	r.Runtime = d.string()
	r.Seed = d.varint()
	r.Off = time.Duration(d.varint())
	r.GoldenOnTime = time.Duration(d.varint())
	r.GoldenCorrect = d.bool()
	r.Failures = int(d.varint())
	r.Candidates = int(d.varint())
	r.Explored = int(d.varint())
	r.Pruned = int(d.varint())
	r.Note = d.string()
	r.Depths = d.depthStats()
	r.Divergences = d.divergences()
	if n := d.count(1); d.err == nil && n > 0 {
		r.Minimal = make([]time.Duration, n)
		for i := 0; i < n && d.err == nil; i++ {
			r.Minimal[i] = time.Duration(d.varint())
		}
	}
	if d.err != nil {
		return check.Report{}, d.err
	}
	if n := d.remaining(); n != 0 {
		return check.Report{}, d.trailing(n)
	}
	return r, nil
}
