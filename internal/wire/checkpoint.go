package wire

import (
	"sort"
	"time"

	"easeio/internal/kernel"
	"easeio/internal/mem"
	"easeio/internal/power"
	"easeio/internal/stats"
	"easeio/internal/units"
)

// AppendCheckpointState encodes a flattened checkpoint as a
// KindCheckpoint message appended to dst.
func AppendCheckpointState(dst []byte, st kernel.CheckpointState) []byte {
	dst = appendHeader(dst, KindCheckpoint)

	// Memory snapshot: per-bank used prefix, allocator watermark,
	// access counters, high-water mark. Parallel slices share one
	// length prefix.
	dst = appendUvarint(dst, uint64(len(st.Mem.Used)))
	for i := range st.Mem.Used {
		dst = appendWords(dst, st.Mem.Used[i])
		dst = appendVarint(dst, int64(st.Mem.Alloc[i]))
		dst = appendVarint(dst, st.Mem.Counts[i].Reads)
		dst = appendVarint(dst, st.Mem.Counts[i].Writes)
		dst = appendVarint(dst, int64(st.Mem.HighWater[i]))
	}

	// Clock.
	dst = appendVarint(dst, int64(st.Wall))
	dst = appendVarint(dst, int64(st.Uptime))
	dst = appendVarint(dst, int64(st.OnTime))
	dst = appendVarint(dst, int64(st.Boots))

	// Ledger.
	for _, t := range st.Committed {
		dst = appendTotals(dst, t)
	}
	for _, t := range st.Pending {
		dst = appendTotals(dst, t)
	}

	// Run record and randomness position.
	dst = appendRun(dst, st.Run)
	dst = appendVarint(dst, st.RandSeed)
	dst = appendUvarint(dst, st.RandDraws)

	// Supply state.
	dst = appendBool(dst, st.HasSupply)
	if st.HasSupply {
		dst = appendString(dst, st.SupplyName)
		dst = appendSupply(dst, st.Supply)
	}
	return dst
}

// DecodeCheckpointState decodes a KindCheckpoint message. The result's
// slices are fresh copies — nothing aliases b.
func DecodeCheckpointState(b []byte) (kernel.CheckpointState, error) {
	d := &dec{b: b}
	d.header(KindCheckpoint)

	var st kernel.CheckpointState
	// Each bank contributes at least 5 bytes (empty words + 4 ints).
	banks := d.count(5)
	if d.err == nil {
		st.Mem = mem.SnapshotState{
			Used:      make([][]uint16, banks),
			Alloc:     make([]int, banks),
			Counts:    make([]mem.Counters, banks),
			HighWater: make([]int, banks),
		}
		for i := 0; i < banks && d.err == nil; i++ {
			st.Mem.Used[i] = d.words()
			st.Mem.Alloc[i] = int(d.varint())
			st.Mem.Counts[i].Reads = d.varint()
			st.Mem.Counts[i].Writes = d.varint()
			st.Mem.HighWater[i] = int(d.varint())
		}
	}

	st.Wall = time.Duration(d.varint())
	st.Uptime = time.Duration(d.varint())
	st.OnTime = time.Duration(d.varint())
	st.Boots = int(d.varint())

	for i := range st.Committed {
		st.Committed[i] = d.totals()
	}
	for i := range st.Pending {
		st.Pending[i] = d.totals()
	}

	st.Run = d.run()
	st.RandSeed = d.varint()
	st.RandDraws = d.uvarint()

	st.HasSupply = d.bool()
	if st.HasSupply {
		st.SupplyName = d.string()
		st.Supply = d.supply()
	}
	if d.err != nil {
		return kernel.CheckpointState{}, d.err
	}
	if n := d.remaining(); n != 0 {
		return kernel.CheckpointState{}, d.trailing(n)
	}
	return st, nil
}

// EncodeCheckpoint flattens and encodes a live checkpoint. It fails only
// when the checkpoint holds a supply state the power package cannot
// serialize.
func EncodeCheckpoint(dst []byte, cp *kernel.Checkpoint) ([]byte, error) {
	st, err := cp.ExportState()
	if err != nil {
		return nil, err
	}
	return AppendCheckpointState(dst, st), nil
}

// DecodeCheckpoint decodes and validates a checkpoint message into a
// restorable kernel.Checkpoint.
func DecodeCheckpoint(b []byte) (*kernel.Checkpoint, error) {
	st, err := DecodeCheckpointState(b)
	if err != nil {
		return nil, err
	}
	return kernel.ImportCheckpoint(st)
}

// Shared sub-encodings.

func appendTotals(b []byte, t stats.Totals) []byte {
	b = appendVarint(b, int64(t.T))
	return appendVarint(b, int64(t.E))
}

func (d *dec) totals() stats.Totals {
	return stats.Totals{T: time.Duration(d.varint()), E: units.Energy(d.varint())}
}

func (d *dec) trailing(n int) error {
	d.fail("%d trailing bytes after message", n)
	return d.err
}

// appendRun encodes a run record. PerSite is a map: its entries are
// written in sorted key order so the encoding is deterministic.
func appendRun(b []byte, r *stats.Run) []byte {
	b = appendString(b, r.App)
	b = appendString(b, r.Runtime)
	b = appendVarint(b, r.Seed)
	for _, t := range r.Work {
		b = appendTotals(b, t)
	}
	b = appendVarint(b, int64(r.PowerFailures))
	b = appendVarint(b, int64(r.TaskAttempts))
	b = appendVarint(b, int64(r.TaskCommits))
	b = appendVarint(b, int64(r.IOExecs))
	b = appendVarint(b, int64(r.IORepeats))
	b = appendVarint(b, int64(r.IOSkips))
	b = appendVarint(b, int64(r.DMAExecs))
	b = appendVarint(b, int64(r.DMARepeats))
	b = appendVarint(b, int64(r.DMASkips))
	keys := make([]string, 0, len(r.PerSite))
	for k := range r.PerSite {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b = appendUvarint(b, uint64(len(keys)))
	for _, k := range keys {
		b = appendString(b, k)
		b = appendVarint(b, int64(r.PerSite[k]))
	}
	b = appendVarint(b, int64(r.WallTime))
	b = appendVarint(b, int64(r.OnTime))
	// Freshness record: per-site sample clocks (NoSample encodes like any
	// other duration) and the staleness violations.
	b = appendUvarint(b, uint64(len(r.Samples)))
	for _, at := range r.Samples {
		b = appendVarint(b, int64(at))
	}
	b = appendUvarint(b, uint64(len(r.Stale)))
	for _, ev := range r.Stale {
		b = appendString(b, ev.Site)
		b = appendVarint(b, int64(ev.Age))
		b = appendVarint(b, int64(ev.Bound))
		b = appendVarint(b, int64(ev.At))
	}
	b = appendBool(b, r.Correct)
	return appendBool(b, r.Stuck)
}

func (d *dec) run() *stats.Run {
	r := &stats.Run{}
	r.App = d.string()
	r.Runtime = d.string()
	r.Seed = d.varint()
	for i := range r.Work {
		r.Work[i] = d.totals()
	}
	r.PowerFailures = int(d.varint())
	r.TaskAttempts = int(d.varint())
	r.TaskCommits = int(d.varint())
	r.IOExecs = int(d.varint())
	r.IORepeats = int(d.varint())
	r.IOSkips = int(d.varint())
	r.DMAExecs = int(d.varint())
	r.DMARepeats = int(d.varint())
	r.DMASkips = int(d.varint())
	// Each PerSite entry is at least 2 bytes (empty key + count).
	if n := d.count(2); d.err == nil && n > 0 {
		r.PerSite = make(map[string]int, n)
		for i := 0; i < n && d.err == nil; i++ {
			k := d.string()
			r.PerSite[k] = int(d.varint())
		}
	}
	r.WallTime = time.Duration(d.varint())
	r.OnTime = time.Duration(d.varint())
	// Each sample clock is at least 1 byte.
	if n := d.count(1); d.err == nil && n > 0 {
		r.Samples = make([]time.Duration, n)
		for i := 0; i < n && d.err == nil; i++ {
			r.Samples[i] = time.Duration(d.varint())
		}
	}
	// Each stale event is at least 4 bytes (empty site + 3 durations).
	if n := d.count(4); d.err == nil && n > 0 {
		r.Stale = make([]stats.StaleEvent, n)
		for i := 0; i < n && d.err == nil; i++ {
			r.Stale[i] = stats.StaleEvent{
				Site:  d.string(),
				Age:   time.Duration(d.varint()),
				Bound: time.Duration(d.varint()),
				At:    time.Duration(d.varint()),
			}
		}
	}
	r.Correct = d.bool()
	r.Stuck = d.bool()
	if d.err != nil {
		return nil
	}
	return r
}

func appendSupply(b []byte, w power.WireState) []byte {
	b = appendString(b, w.Kind)
	b = appendVarint(b, int64(w.Fired))
	b = appendVarint(b, int64(w.NextAt))
	b = appendVarint(b, w.Seed)
	b = appendUvarint(b, w.Draws)
	b = appendVarint(b, int64(w.Stored))
	b = appendFloat64(b, w.Gain)
	return appendBool(b, w.Dead)
}

func (d *dec) supply() power.WireState {
	return power.WireState{
		Kind:   d.string(),
		Fired:  int(d.varint()),
		NextAt: time.Duration(d.varint()),
		Seed:   d.varint(),
		Draws:  d.uvarint(),
		Stored: units.Energy(d.varint()),
		Gain:   d.float64(),
		Dead:   d.bool(),
	}
}
