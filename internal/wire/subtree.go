// The distributed nested-failure checker's work unit. A subtree shard
// ships a contiguous group of level-1 expansion representatives — each a
// passing failure prefix, the number of hash-equal siblings it stands
// for, and the device+runtime checkpoint at its cut — so a stateless
// worker can restore the roots and grow their subtrees without replaying
// any level-1 prefix. The matching result carries the subtree
// exploration's per-depth stats and divergences; because the in-process
// checker's breadth-first frontier at any depth is the concatenation of
// the root groups' own frontiers in group order, merging results per
// depth in shard order reproduces the unsharded report byte for byte.

package wire

import (
	"time"

	"easeio/internal/check"
	"easeio/internal/rtbase"
)

// SubtreeRoot is one level-1 expansion representative: the schedule that
// reached it, its collapse run-length, and the checkpoint it resumes
// from. Checkpoint is an embedded KindCheckpoint message (the device
// half); RT is the runtime's bookkeeping state at the same cut.
type SubtreeRoot struct {
	Schedule   []time.Duration
	Collapsed  int
	Checkpoint []byte
	RT         rtbase.BaseWireState
}

// SubtreeShard describes one worker's slice of a nested (k > 1) checker
// job: expand the given roots' subtrees under the job's configuration.
// The worker recomputes the golden reference locally — the golden pass
// is deterministic, so only the roots themselves need shipping.
type SubtreeShard struct {
	Job     uint64
	Shard   int
	App     string
	Runtime string

	Seed       int64
	Off        time.Duration
	Failures   int // total exploration depth k (the roots sit at depth 2)
	Exhaustive bool
	Grid       int
	Workers    int
	Roots      []SubtreeRoot
}

// SubtreeResult is a worker's completed subtree shard: the per-depth
// stats and divergences of the roots' subtrees, in the same
// (depth, root, candidate) order the in-process checker books them.
type SubtreeResult struct {
	Job         uint64
	Shard       int
	Depths      []check.DepthStats
	Divergences []check.Divergence
}

// AppendSubtreeShard encodes s as a KindSubtreeShard message appended to
// dst.
func AppendSubtreeShard(dst []byte, s SubtreeShard) []byte {
	dst = appendHeader(dst, KindSubtreeShard)
	dst = appendUvarint(dst, s.Job)
	dst = appendVarint(dst, int64(s.Shard))
	dst = appendString(dst, s.App)
	dst = appendString(dst, s.Runtime)
	dst = appendVarint(dst, s.Seed)
	dst = appendVarint(dst, int64(s.Off))
	dst = appendVarint(dst, int64(s.Failures))
	dst = appendBool(dst, s.Exhaustive)
	dst = appendVarint(dst, int64(s.Grid))
	dst = appendVarint(dst, int64(s.Workers))
	dst = appendUvarint(dst, uint64(len(s.Roots)))
	for _, r := range s.Roots {
		dst = appendUvarint(dst, uint64(len(r.Schedule)))
		for _, t := range r.Schedule {
			dst = appendVarint(dst, int64(t))
		}
		dst = appendVarint(dst, int64(r.Collapsed))
		dst = appendUvarint(dst, uint64(len(r.Checkpoint)))
		dst = append(dst, r.Checkpoint...)
		dst = appendBaseWireState(dst, r.RT)
	}
	return dst
}

// DecodeSubtreeShard decodes a KindSubtreeShard message. The roots'
// Checkpoint slices are fresh copies — nothing aliases b.
func DecodeSubtreeShard(b []byte) (SubtreeShard, error) {
	d := &dec{b: b}
	d.header(KindSubtreeShard)
	s := SubtreeShard{
		Job:        d.uvarint(),
		Shard:      int(d.varint()),
		App:        d.string(),
		Runtime:    d.string(),
		Seed:       d.varint(),
		Off:        time.Duration(d.varint()),
		Failures:   int(d.varint()),
		Exhaustive: d.bool(),
		Grid:       int(d.varint()),
		Workers:    int(d.varint()),
	}
	// Each root is at least 7 bytes (empty schedule, collapsed, empty
	// checkpoint, empty base state).
	if n := d.count(7); d.err == nil && n > 0 {
		s.Roots = make([]SubtreeRoot, n)
		for i := 0; i < n && d.err == nil; i++ {
			r := &s.Roots[i]
			if m := d.count(1); d.err == nil && m > 0 {
				r.Schedule = make([]time.Duration, m)
				for j := 0; j < m && d.err == nil; j++ {
					r.Schedule[j] = time.Duration(d.varint())
				}
			}
			r.Collapsed = int(d.varint())
			if m := d.count(1); d.err == nil && m > 0 {
				r.Checkpoint = make([]byte, m)
				copy(r.Checkpoint, d.b[d.off:])
				d.off += m
			}
			r.RT = d.baseWireState()
		}
	}
	if d.err != nil {
		return SubtreeShard{}, d.err
	}
	if n := d.remaining(); n != 0 {
		return SubtreeShard{}, d.trailing(n)
	}
	return s, nil
}

// AppendSubtreeResult encodes r as a KindSubtreeResult message appended
// to dst.
func AppendSubtreeResult(dst []byte, r SubtreeResult) []byte {
	dst = appendHeader(dst, KindSubtreeResult)
	dst = appendUvarint(dst, r.Job)
	dst = appendVarint(dst, int64(r.Shard))
	dst = appendDepthStats(dst, r.Depths)
	return appendDivergences(dst, r.Divergences)
}

// DecodeSubtreeResult decodes a KindSubtreeResult message.
func DecodeSubtreeResult(b []byte) (SubtreeResult, error) {
	d := &dec{b: b}
	d.header(KindSubtreeResult)
	r := SubtreeResult{
		Job:   d.uvarint(),
		Shard: int(d.varint()),
	}
	r.Depths = d.depthStats()
	r.Divergences = d.divergences()
	if d.err != nil {
		return SubtreeResult{}, d.err
	}
	if n := d.remaining(); n != 0 {
		return SubtreeResult{}, d.trailing(n)
	}
	return r, nil
}

// appendBaseWireState encodes a runtime bookkeeping snapshot.
func appendBaseWireState(dst []byte, w rtbase.BaseWireState) []byte {
	dst = appendVarint(dst, int64(w.Cur))
	dst = appendUvarint(dst, uint64(len(w.Slots)))
	for _, sl := range w.Slots {
		dst = appendVarint(dst, int64(sl.TaskID))
		dst = appendVarint(dst, int64(sl.TaskInst))
		dst = appendVarint(dst, int64(sl.ExecCount))
		dst = appendBool(dst, sl.Completed)
	}
	dst = appendUvarint(dst, uint64(len(w.TaskInst)))
	for _, ti := range w.TaskInst {
		dst = appendVarint(dst, int64(ti))
	}
	return dst
}

func (d *dec) baseWireState() rtbase.BaseWireState {
	w := rtbase.BaseWireState{Cur: int(d.varint())}
	// Each slot is at least 4 bytes (three varints and a bool).
	if n := d.count(4); d.err == nil && n > 0 {
		w.Slots = make([]rtbase.IOSlotState, n)
		for i := 0; i < n && d.err == nil; i++ {
			w.Slots[i] = rtbase.IOSlotState{
				TaskID:    int32(d.varint()),
				TaskInst:  int32(d.varint()),
				ExecCount: int32(d.varint()),
				Completed: d.bool(),
			}
		}
	}
	if n := d.count(1); d.err == nil && n > 0 {
		w.TaskInst = make([]int32, n)
		for i := 0; i < n && d.err == nil; i++ {
			w.TaskInst[i] = int32(d.varint())
		}
	}
	return w
}
