package wire

import (
	"bytes"
	"testing"
	"time"

	"easeio/internal/check"
	"easeio/internal/experiments"
	"easeio/internal/kernel"
	"easeio/internal/rtbase"
	"easeio/internal/stats"
)

// FuzzCheckpointRoundTrip drives the checkpoint decoder with arbitrary
// bytes. The decoder must never panic; whenever it accepts an input, the
// canonical re-encoding must be a fixed point (encode∘decode∘encode =
// encode) and the kernel-level import must fail cleanly or succeed —
// never crash on decoder-approved state.
func FuzzCheckpointRoundTrip(f *testing.F) {
	// Seed corpus: real encoded checkpoints (mid-run and end-of-run,
	// two runtimes for hook-free state variety), plus degenerate inputs.
	for _, kind := range []experiments.RuntimeKind{experiments.EaseIO, experiments.Alpaca} {
		for _, cp := range captureCheckpoints(f, kind, 4) {
			b, err := EncodeCheckpoint(nil, cp)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(b)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{magic0, magic1, Version, byte(KindCheckpoint)})
	f.Add([]byte("EW garbage that is not a checkpoint at all"))

	f.Fuzz(func(t *testing.T, b []byte) {
		st, err := DecodeCheckpointState(b)
		if err != nil {
			return
		}
		b2 := AppendCheckpointState(nil, st)
		st2, err := DecodeCheckpointState(b2)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if b3 := AppendCheckpointState(nil, st2); !bytes.Equal(b2, b3) {
			t.Fatalf("canonical encoding is not a fixed point (%d vs %d bytes)", len(b2), len(b3))
		}
		// Import validates semantic invariants (bank layout, ranges); it
		// may reject, but it must not panic, and what it accepts must
		// re-export.
		cp, err := kernel.ImportCheckpoint(st)
		if err != nil {
			return
		}
		if _, err := cp.ExportState(); err != nil {
			t.Fatalf("imported checkpoint failed to re-export: %v", err)
		}
	})
}

// FuzzDecodeShard drives every control-plane decoder (shards, results,
// summaries, reports) with the same arbitrary input: none may panic, and
// any accepted input's re-encoding must be a decode fixed point.
func FuzzDecodeShard(f *testing.F) {
	f.Add(AppendSweepShard(nil, SweepShard{Job: 1, Shard: 0, App: "weather",
		Runtime: "ease-io", BaseSeed: 7, Lo: 0, Hi: 100, Workers: 2}))
	f.Add(AppendCheckShard(nil, CheckShard{Job: 2, Shard: 1, App: "dma",
		Runtime: "alpaca", Seed: 3, Off: 3 * time.Millisecond, CutLo: 4,
		CutHi: 32, Exhaustive: true, Grid: 33, Workers: 1}))
	agg := stats.AggregatorState{App: "fir", Runtime: "ink", Runs: 2,
		Totals: []time.Duration{time.Millisecond, 2 * time.Millisecond}}
	f.Add(AppendSweepResult(nil, SweepResult{Job: 1, Shard: 0, Agg: agg, Errs: []string{"x"}}))
	f.Add(AppendCheckResult(nil, CheckResult{Job: 2, Shard: 1, Explored: 5,
		Divergences: []check.Divergence{{At: time.Millisecond, Index: 1, Kind: "memory", Detail: "w"}}}))
	f.Add(AppendSummary(nil, stats.Summary{App: "temp", Runtime: "just-do", Runs: 10}))
	f.Add(AppendReport(nil, check.Report{App: "branch", Runtime: "ease-io",
		Minimal: []time.Duration{time.Millisecond}}))
	f.Add([]byte{})
	f.Add([]byte{magic0, magic1, Version, byte(KindSweepShard), 0xff, 0xff})

	f.Fuzz(func(t *testing.T, b []byte) {
		if s, err := DecodeSweepShard(b); err == nil {
			if b2 := AppendSweepShard(nil, s); func() bool {
				s2, err := DecodeSweepShard(b2)
				return err != nil || s2 != s
			}() {
				t.Fatal("sweep shard re-encoding is not a fixed point")
			}
		}
		if s, err := DecodeCheckShard(b); err == nil {
			if s2, err := DecodeCheckShard(AppendCheckShard(nil, s)); err != nil || s2 != s {
				t.Fatal("check shard re-encoding is not a fixed point")
			}
		}
		if r, err := DecodeSweepResult(b); err == nil {
			b2 := AppendSweepResult(nil, r)
			if b3, err := reencodeSweepResult(b2); err != nil || !bytes.Equal(b2, b3) {
				t.Fatalf("sweep result re-encoding is not a fixed point: %v", err)
			}
		}
		if r, err := DecodeCheckResult(b); err == nil {
			b2 := AppendCheckResult(nil, r)
			if r2, err := DecodeCheckResult(b2); err != nil || !bytes.Equal(b2, AppendCheckResult(nil, r2)) {
				t.Fatalf("check result re-encoding is not a fixed point: %v", err)
			}
		}
		if s, err := DecodeSummary(b); err == nil {
			if s2, err := DecodeSummary(AppendSummary(nil, s)); err != nil || s2 != s {
				t.Fatal("summary re-encoding is not a fixed point")
			}
		}
		if r, err := DecodeReport(b); err == nil {
			b2 := AppendReport(nil, r)
			if r2, err := DecodeReport(b2); err != nil || !bytes.Equal(b2, AppendReport(nil, r2)) {
				t.Fatalf("report re-encoding is not a fixed point: %v", err)
			}
		}
	})
}

// FuzzDecodeSubtreeShard drives the subtree work-unit decoders with
// arbitrary input: neither may panic, and any accepted input's canonical
// re-encoding must be a decode fixed point. The seed corpus embeds a
// real encoded checkpoint, exercising the nested-message path.
func FuzzDecodeSubtreeShard(f *testing.F) {
	var rootCp []byte
	if cps := captureCheckpoints(f, experiments.EaseIO, 6); len(cps) > 0 {
		b, err := EncodeCheckpoint(nil, cps[0])
		if err != nil {
			f.Fatal(err)
		}
		rootCp = b
	}
	f.Add(AppendSubtreeShard(nil, SubtreeShard{Job: 3, Shard: 2, App: "fig6",
		Runtime: "ease-io", Seed: 42, Off: time.Millisecond, Failures: 2,
		Exhaustive: true, Grid: 128, Workers: 2,
		Roots: []SubtreeRoot{{
			Schedule:   []time.Duration{5 * time.Millisecond},
			Collapsed:  3,
			Checkpoint: rootCp,
			RT: rtbase.BaseWireState{Cur: 1,
				Slots:    []rtbase.IOSlotState{{TaskID: 1, TaskInst: 2, ExecCount: 3, Completed: true}},
				TaskInst: []int32{0, 2}},
		}}}))
	f.Add(AppendSubtreeResult(nil, SubtreeResult{Job: 3, Shard: 2,
		Depths: []check.DepthStats{{Depth: 2, Expanded: 1, Candidates: 9, Explored: 9}},
		Divergences: []check.Divergence{{At: time.Millisecond, Index: 1, Kind: "memory",
			Detail: "w", Schedule: []time.Duration{time.Millisecond, 2 * time.Millisecond}}}}))
	f.Add([]byte{})
	f.Add([]byte{magic0, magic1, Version, byte(KindSubtreeShard), 0xff, 0xff})

	f.Fuzz(func(t *testing.T, b []byte) {
		if s, err := DecodeSubtreeShard(b); err == nil {
			b2 := AppendSubtreeShard(nil, s)
			if s2, err := DecodeSubtreeShard(b2); err != nil || !bytes.Equal(b2, AppendSubtreeShard(nil, s2)) {
				t.Fatalf("subtree shard re-encoding is not a fixed point: %v", err)
			}
		}
		if r, err := DecodeSubtreeResult(b); err == nil {
			b2 := AppendSubtreeResult(nil, r)
			if r2, err := DecodeSubtreeResult(b2); err != nil || !bytes.Equal(b2, AppendSubtreeResult(nil, r2)) {
				t.Fatalf("subtree result re-encoding is not a fixed point: %v", err)
			}
		}
	})
}

func reencodeSweepResult(b []byte) ([]byte, error) {
	r, err := DecodeSweepResult(b)
	if err != nil {
		return nil, err
	}
	return AppendSweepResult(nil, r), nil
}
