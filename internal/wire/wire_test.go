package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
	"time"

	"easeio/internal/check"
	"easeio/internal/experiments"
	"easeio/internal/kernel"
	"easeio/internal/power"
	"easeio/internal/stats"
)

// captureCheckpoints runs the fig6 bench under kind on a timer supply
// and returns mid-run checkpoints (every strideth charge-slice cut) plus
// the end-of-run state.
func captureCheckpoints(t testing.TB, kind experiments.RuntimeKind, stride int) []*kernel.Checkpoint {
	t.Helper()
	bench, err := check.Fig6Bench()
	if err != nil {
		t.Fatal(err)
	}
	dev := kernel.NewDevice(experiments.TimerSupply(), 42)
	sink := &snapSink{dev: dev, stride: stride}
	dev.Cuts = sink
	if err := kernel.RunApp(dev, experiments.NewRuntime(kind), bench.App); err != nil {
		t.Fatal(err)
	}
	return append(sink.cps, dev.Snapshot())
}

type snapSink struct {
	dev    *kernel.Device
	stride int
	n      int
	cps    []*kernel.Checkpoint
}

func (s *snapSink) NoteCut(time.Duration) {
	if s.n++; s.n%s.stride == 0 {
		s.cps = append(s.cps, s.dev.Snapshot())
	}
}

// reEncode decodes an encoded checkpoint and encodes the result again.
func reEncode(t *testing.T, b []byte) []byte {
	t.Helper()
	st, err := DecodeCheckpointState(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return AppendCheckpointState(nil, st)
}

// TestCheckpointRoundTrip pins that a live checkpoint survives the wire:
// encode → decode → re-encode is byte-identical, for mid-run and
// end-of-run checkpoints across every runtime.
func TestCheckpointRoundTrip(t *testing.T) {
	kinds := []experiments.RuntimeKind{
		experiments.Alpaca, experiments.InK, experiments.EaseIO, experiments.JustDo,
	}
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			cps := captureCheckpoints(t, kind, 3)
			if len(cps) < 2 {
				t.Fatalf("only %d checkpoints captured", len(cps))
			}
			for i, cp := range cps {
				b, err := EncodeCheckpoint(nil, cp)
				if err != nil {
					t.Fatalf("checkpoint %d: encode: %v", i, err)
				}
				if got := PeekKind(b); got != KindCheckpoint {
					t.Fatalf("checkpoint %d: PeekKind = %v", i, got)
				}
				if b2 := reEncode(t, b); !bytes.Equal(b, b2) {
					t.Errorf("checkpoint %d: re-encode differs (%d vs %d bytes)", i, len(b), len(b2))
				}
			}
		})
	}
}

// TestCheckpointRestoreFidelity pins that a checkpoint shipped through
// the wire restores a device to exactly the state the original
// checkpoint restores: decode+import on the far side, restore into a
// fresh device, and the device's own re-snapshot encodes byte-identically
// to a restore of the in-process original.
func TestCheckpointRestoreFidelity(t *testing.T) {
	for _, cp := range captureCheckpoints(t, experiments.EaseIO, 2) {
		b, err := EncodeCheckpoint(nil, cp)
		if err != nil {
			t.Fatal(err)
		}
		remote, err := DecodeCheckpoint(b)
		if err != nil {
			t.Fatal(err)
		}

		restoreState := func(from *kernel.Checkpoint) []byte {
			bench, err := check.Fig6Bench()
			if err != nil {
				t.Fatal(err)
			}
			dev := kernel.NewDevice(experiments.TimerSupply(), 42)
			rt := experiments.NewRuntime(experiments.EaseIO)
			if err := rt.Attach(dev, bench.App); err != nil {
				t.Fatal(err)
			}
			dev.Restore(from)
			out, err := EncodeCheckpoint(nil, dev.Snapshot())
			if err != nil {
				t.Fatal(err)
			}
			return out
		}

		if local, far := restoreState(cp), restoreState(remote); !bytes.Equal(local, far) {
			t.Fatal("device restored from decoded checkpoint differs from device restored from original")
		}
	}
}

// TestCheckpointDecodeErrors pins the decoder's rejection paths: wrong
// kind, truncation anywhere, and trailing garbage all error out (never
// panic — the fuzz target widens this).
func TestCheckpointDecodeErrors(t *testing.T) {
	cp := captureCheckpoints(t, experiments.EaseIO, 8)[0]
	b, err := EncodeCheckpoint(nil, cp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSweepShard(b); err == nil {
		t.Error("decoding a checkpoint as a sweep shard succeeded")
	}
	for _, cut := range []int{0, 1, 3, len(b) / 2, len(b) - 1} {
		if _, err := DecodeCheckpointState(b[:cut]); err == nil {
			t.Errorf("decoding %d-byte prefix succeeded", cut)
		}
	}
	if _, err := DecodeCheckpointState(append(bytes.Clone(b), 0)); err == nil {
		t.Error("decoding with a trailing byte succeeded")
	}
	bad := bytes.Clone(b)
	bad[2] = Version + 1
	if _, err := DecodeCheckpointState(bad); err == nil {
		t.Error("decoding an unknown version succeeded")
	}
}

// TestShardMessagesRoundTrip covers the fleet's control-plane messages
// with representative values, including empty and non-empty slices.
func TestShardMessagesRoundTrip(t *testing.T) {
	ss := SweepShard{Job: 7, Shard: 2, App: "weather-db", Runtime: "ease-io",
		BaseSeed: -12345, Lo: 250, Hi: 500, Workers: 4}
	gotSS, err := DecodeSweepShard(AppendSweepShard(nil, ss))
	if err != nil || gotSS != ss {
		t.Errorf("sweep shard: got %+v, %v; want %+v", gotSS, err, ss)
	}

	cs := CheckShard{Job: 8, Shard: 0, App: "dma", Runtime: "alpaca", Seed: 99,
		Off: 3 * time.Millisecond, FromBoot: true, CutLo: 10, CutHi: 64,
		Exhaustive: true, Grid: 33, Workers: 2}
	gotCS, err := DecodeCheckShard(AppendCheckShard(nil, cs))
	if err != nil || gotCS != cs {
		t.Errorf("check shard: got %+v, %v; want %+v", gotCS, err, cs)
	}

	sr := SweepResult{Job: 7, Shard: 2, Errs: []string{"run 3: boom"}}
	sr.Agg = stats.AggregatorState{App: "fir", Runtime: "ink", Runs: 3,
		Energy: 1234, OnTime: time.Second, WallTime: 2 * time.Second,
		PowerFailures: 17, IOExecs: 41, Correct: 2, Incorrect: 1,
		Totals: []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond}}
	sr.Agg.Work[0] = stats.Totals{T: time.Millisecond, E: 5}
	gotSR, err := DecodeSweepResult(AppendSweepResult(nil, sr))
	if err != nil || !reflect.DeepEqual(gotSR, sr) {
		t.Errorf("sweep result: got %+v, %v; want %+v", gotSR, err, sr)
	}

	cr := CheckResult{Job: 8, Shard: 1, Explored: 40, Pruned: 3,
		Divergences: []check.Divergence{
			{At: time.Millisecond, Index: 12, Kind: "memory", Detail: "word 7"},
			{At: 2 * time.Millisecond, Index: 13, Kind: "output", Detail: "verdict"},
		}}
	gotCR, err := DecodeCheckResult(AppendCheckResult(nil, cr))
	if err != nil || !reflect.DeepEqual(gotCR, cr) {
		t.Errorf("check result: got %+v, %v; want %+v", gotCR, err, cr)
	}

	// Empty-slice forms decode to nil slices, not empty non-nil ones.
	empty := SweepResult{Job: 1, Shard: 0}
	gotEmpty, err := DecodeSweepResult(AppendSweepResult(nil, empty))
	if err != nil || !reflect.DeepEqual(gotEmpty, empty) {
		t.Errorf("empty sweep result: got %+v, %v", gotEmpty, err)
	}
}

// TestSummaryReportRoundTrip covers the WAL's merged-outcome payloads.
func TestSummaryReportRoundTrip(t *testing.T) {
	sum := stats.Summary{App: "temp", Runtime: "just-do", Runs: 100,
		PowerFailures: 900, IOExecs: 5000, IORepeats: 70, IOSkips: 30,
		DMAExecs: 12, MeanEnergy: 777, MeanOnTime: time.Second,
		MeanWallTime: 3 * time.Second, P50TotalTime: 900 * time.Millisecond,
		P95TotalTime: 2 * time.Second, CorrectRuns: 99, IncorrectRuns: 1}
	sum.Work[1] = stats.Totals{T: time.Minute, E: 42}
	gotSum, err := DecodeSummary(AppendSummary(nil, sum))
	if err != nil || gotSum != sum {
		t.Errorf("summary: got %+v, %v; want %+v", gotSum, err, sum)
	}

	rep := check.Report{App: "branch", Runtime: "ease-io", Seed: 5,
		Off: 3 * time.Millisecond, GoldenOnTime: 80 * time.Millisecond,
		GoldenCorrect: true, Candidates: 64, Explored: 64, Note: "",
		Divergences: []check.Divergence{{At: time.Millisecond, Index: 3, Kind: "ledger", Detail: "pending"}},
		Minimal:     []time.Duration{time.Millisecond}}
	gotRep, err := DecodeReport(AppendReport(nil, rep))
	if err != nil || !reflect.DeepEqual(gotRep, rep) {
		t.Errorf("report: got %+v, %v; want %+v", gotRep, err, rep)
	}
}

// TestFrames pins the framing contract: clean boundary EOF, torn tails,
// and CRC corruption are three distinguishable outcomes.
func TestFrames(t *testing.T) {
	var log []byte
	payloads := [][]byte{[]byte("first"), {}, []byte("third-longer-payload")}
	for _, p := range payloads {
		log = AppendFrame(log, p)
	}

	r := bytes.NewReader(log)
	for i, want := range payloads {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %q, want %q", i, got, want)
		}
	}
	if _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("clean boundary: got %v, want io.EOF", err)
	}

	// Every possible torn tail either reads cleanly short or reports
	// ErrTornFrame — never a corrupt payload and never a panic.
	for cut := 1; cut < len(log); cut++ {
		r := bytes.NewReader(log[:cut])
		for {
			_, err := ReadFrame(r)
			if err == nil {
				continue
			}
			if err == io.EOF || errors.Is(err, ErrTornFrame) {
				break
			}
			t.Fatalf("cut %d: unexpected error %v", cut, err)
		}
	}

	// Flipping a payload byte is caught by the CRC.
	bad := bytes.Clone(log)
	bad[FrameOverhead] ^= 0xff
	if _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("corrupt payload: got %v, want ErrCorruptFrame", err)
	}

	// An absurd length field is rejected before allocating.
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	if _, err := ReadFrame(bytes.NewReader(huge)); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("huge length: got %v, want ErrCorruptFrame", err)
	}
}

// TestWriteFrame pins the io.Writer path against AppendFrame.
func TestWriteFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if want := AppendFrame(nil, []byte("payload")); !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("WriteFrame wrote %x, want %x", buf.Bytes(), want)
	}
	got, err := ReadFrame(&buf)
	if err != nil || string(got) != "payload" {
		t.Fatalf("read back %q, %v", got, err)
	}
}

// TestSupplyStateVariety pins that every serializable supply kind
// survives the checkpoint encoding, including the harvested supply's
// float gain.
func TestSupplyStateVariety(t *testing.T) {
	cp := captureCheckpoints(t, experiments.EaseIO, 8)[0]
	st, err := cp.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	for _, ws := range []power.WireState{
		{Kind: power.WireContinuous},
		{Kind: power.WireSchedule, Fired: 3},
		{Kind: power.WireTimer, NextAt: 7 * time.Millisecond, Seed: -4, Draws: 19},
		{Kind: power.WireHarvested, Stored: 123456, Gain: 0.8125, Dead: true},
	} {
		st.HasSupply, st.SupplyName, st.Supply = true, ws.Kind, ws
		b := AppendCheckpointState(nil, st)
		got, err := DecodeCheckpointState(b)
		if err != nil {
			t.Fatalf("%s: %v", ws.Kind, err)
		}
		if got.Supply != ws {
			t.Errorf("%s: got %+v, want %+v", ws.Kind, got.Supply, ws)
		}
		if _, err := kernel.ImportCheckpoint(got); err != nil {
			t.Errorf("%s: import: %v", ws.Kind, err)
		}
	}
}
