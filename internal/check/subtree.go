// The distributed nested checker's three entry points. A coordinator
// splits a k > 1 job at the level-1 frontier: PlanNested runs the golden
// pass and the full level-1 exploration locally and returns the
// expansion representatives with their root checkpoints; RunSubtree is
// the worker half, growing the subtrees of a contiguous group of those
// roots; MergeSubtrees reassembles the groups' results into the exact
// depth-major order the in-process checker books.
//
// The split is sound because exploreFrontier is breadth-first and
// subtrees never share state: the global depth-d frontier is the
// concatenation, in representative order, of each group's own depth-d
// frontier, so a group explored on its own produces the global
// (depth, node, candidate) order restricted to the group. Collapse
// run-lengths must travel with the representatives — the in-process
// checker books a node's collapsed siblings when it expands the node,
// which now happens on a worker that never saw the level-1 outcomes.

package check

import (
	"context"
	"fmt"
	"time"

	"easeio/internal/experiments"
	"easeio/internal/kernel"
)

// SubtreeSeed is one level-1 expansion representative: the failure
// prefix that reached it, how many hash-equal evaluated siblings it
// stands for, and the device+runtime checkpoint at its cut. Dev and RT
// are owned by the caller (never recycled into the checkpoint pool), so
// they stay valid for wire encoding after PlanNested returns.
type SubtreeSeed struct {
	Schedule  []time.Duration
	Collapsed int
	Dev       *kernel.Checkpoint
	RT        any // the runtime's kernel.Snapshotter state at the same cut
}

// NestedPlan is PlanNested's result: the plan header, the completed
// level-1 exploration, and the subtree seeds whose expansion remains.
type NestedPlan struct {
	Plan *Plan

	// Explored/Pruned/Divergences are the level-1 exploration's results,
	// exactly as a k=1 Run over the same range would report them.
	Explored    int
	Pruned      int
	Divergences []Divergence

	// Seeds are the depth-2 expansion roots in candidate order. Empty
	// with Fallback false means the level-1 exploration left nothing to
	// expand — the job is complete.
	Seeds []SubtreeSeed

	// Fallback reports that the runtime cannot checkpoint (or FromBoot
	// was forced), so no exploration ran and the job must be executed as
	// a single undistributed shard.
	Fallback bool
}

// PlanNested runs the coordinator half of a distributed nested check:
// the golden pass plus the full level-1 exploration, returning the
// level-1 results and the depth-2 roots to farm out. The level-1 range
// is never sharded — nestedPlan selects representatives from outcomes
// across the whole range, exactly like the in-process checker.
func PlanNested(ctx context.Context, newApp experiments.AppFactory, kind experiments.RuntimeKind, cfg Config) (*NestedPlan, error) {
	cfg = cfg.fill()
	if err := ValidateFailures(cfg.Failures); err != nil {
		return nil, err
	}
	if cfg.Failures < 2 {
		return nil, fmt.Errorf("check: PlanNested needs Failures >= 2, have %d", cfg.Failures)
	}
	pl, err := goldenPass(newApp, kind, cfg)
	if err != nil {
		return nil, err
	}
	np := &NestedPlan{Plan: &Plan{
		App:           pl.bench.App.Name,
		Runtime:       pl.label,
		Seed:          cfg.Seed,
		Off:           cfg.Off,
		Failures:      cfg.Failures,
		GoldenOnTime:  pl.g.onTime,
		GoldenCorrect: pl.g.correct,
		Candidates:    len(pl.cuts),
	}}
	if np.Plan.Candidates == 0 {
		np.Plan.Note = noCandidatesNote
		return np, nil
	}
	_, canSnap := pl.rt.(kernel.Snapshotter)
	_, canReset := pl.rt.(kernel.Resetter)
	if cfg.FromBoot || !canSnap || !canReset {
		np.Fallback = true
		return np, nil
	}

	lo, hi := clampRange(cfg, np.Plan.Candidates)
	e := &explorer{cfg: cfg, newApp: newApp, newRT: pl.newRT, golden: pl.g, cuts: pl.cuts,
		lo: lo, hi: hi, fromBoot: false,
		rec: newRecorder(pl.bench, pl.rt, pl.dev, cfg.Seed)}
	results, err := e.explore(ctx)
	for i, res := range results {
		if !res.evaluated {
			continue
		}
		np.Explored++
		if res.div != nil {
			d := *res.div
			d.Index = i
			d.At = pl.cuts[i]
			np.Divergences = append(np.Divergences, d)
		}
	}
	np.Pruned = (hi - lo) - np.Explored
	if err != nil {
		return np, err
	}

	// The depth-2 frontier, with root checkpoints recorded in one extra
	// golden pass. The checkpoints leave the recording pool for good:
	// they belong to the caller until the workers' replays are done.
	frontier, err := e.level1Frontier(results)
	if err != nil {
		return np, err
	}
	np.Seeds = make([]SubtreeSeed, len(frontier))
	for i, node := range frontier {
		np.Seeds[i] = SubtreeSeed{
			Schedule:  node.schedule,
			Collapsed: node.collapsed,
			Dev:       node.root.dev,
			RT:        node.root.rt,
		}
	}
	return np, nil
}

// Report assembles the full checker report described by this plan plus
// the merged subtree results of its seeds (MergeSubtrees of the groups'
// reports). It reproduces what Run would have returned: level-1 results
// first, then the nested divergences in depth-major order, with Minimal
// picked across both.
func (np *NestedPlan) Report(sub SubtreeReport) *Report {
	rep := np.Plan.Report()
	rep.Explored = np.Explored
	rep.Pruned = np.Pruned
	rep.Divergences = append(append([]Divergence(nil), np.Divergences...), sub.Divergences...)
	rep.Depths = sub.Depths
	rep.Minimal = MinimalSchedule(rep.Divergences)
	return rep
}

// SubtreeReport is one group's share of the nested exploration: the
// per-depth stats and divergences of its roots' subtrees, in the same
// (depth, node, candidate) order exploreFrontier books in process.
type SubtreeReport struct {
	Depths      []DepthStats
	Divergences []Divergence
}

// RunSubtree is the worker half of a distributed nested check: it
// recomputes the golden reference locally (the golden pass is
// deterministic, so only the roots need shipping), then grows the given
// roots' subtrees from depth 2 down to cfg.Failures. The roots must be
// a contiguous group of a PlanNested seed list, in seed order, and cfg
// must match the planning configuration.
func RunSubtree(ctx context.Context, newApp experiments.AppFactory, kind experiments.RuntimeKind, cfg Config, roots []SubtreeSeed) (*SubtreeReport, error) {
	cfg = cfg.fill()
	if err := ValidateFailures(cfg.Failures); err != nil {
		return nil, err
	}
	if cfg.Failures < 2 {
		return nil, fmt.Errorf("check: RunSubtree needs Failures >= 2, have %d", cfg.Failures)
	}
	if len(roots) == 0 {
		return &SubtreeReport{}, nil
	}
	pl, err := goldenPass(newApp, kind, cfg)
	if err != nil {
		return nil, err
	}
	if _, ok := pl.rt.(kernel.Snapshotter); !ok {
		return nil, fmt.Errorf("check: runtime %s cannot restore subtree roots (no snapshot support)", pl.label)
	}

	lo, hi := clampRange(cfg, len(pl.cuts))
	e := &explorer{cfg: cfg, newApp: newApp, newRT: pl.newRT, golden: pl.g, cuts: pl.cuts,
		lo: lo, hi: hi, fromBoot: false}
	frontier := make([]treeNode, len(roots))
	for i, r := range roots {
		frontier[i] = treeNode{
			schedule:  append([]time.Duration(nil), r.Schedule...),
			root:      &checkpoint{dev: r.Dev, rt: r.RT},
			collapsed: r.Collapsed,
		}
	}
	res, err := e.exploreFrontier(ctx, frontier, 2)
	return &SubtreeReport{Depths: res.depths, Divergences: res.divs}, err
}

// MergeSubtrees reassembles subtree reports — one per contiguous root
// group, in group order — into the depth-major order the in-process
// checker produces: for each depth, the per-depth stats are summed and
// the groups' depth-d divergences are concatenated in group order. A
// depth appears iff some group reached it, and every group's depth list
// is contiguous from 2, so the union is contiguous too.
func MergeSubtrees(parts []SubtreeReport) SubtreeReport {
	var out SubtreeReport
	byDepth := make(map[int]*DepthStats)
	maxDepth := 0
	for _, p := range parts {
		for _, ds := range p.Depths {
			agg := byDepth[ds.Depth]
			if agg == nil {
				agg = &DepthStats{Depth: ds.Depth}
				byDepth[ds.Depth] = agg
			}
			agg.Expanded += ds.Expanded
			agg.Collapsed += ds.Collapsed
			agg.Candidates += ds.Candidates
			agg.Explored += ds.Explored
			agg.Pruned += ds.Pruned
			if ds.Depth > maxDepth {
				maxDepth = ds.Depth
			}
		}
	}
	for d := 2; d <= maxDepth; d++ {
		agg := byDepth[d]
		if agg == nil {
			continue
		}
		out.Depths = append(out.Depths, *agg)
		for _, p := range parts {
			for _, dv := range p.Divergences {
				if len(dv.Schedule) == d {
					out.Divergences = append(out.Divergences, dv)
				}
			}
		}
	}
	return out
}

// clampRange clamps the configured candidate-index range against the
// candidate count, exactly as Run does.
func clampRange(cfg Config, candidates int) (lo, hi int) {
	lo, hi = cfg.CutLo, cfg.CutHi
	if lo < 0 {
		lo = 0
	}
	if hi <= 0 || hi > candidates {
		hi = candidates
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}
