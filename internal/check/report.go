// The checker's result records and text renderers, following the
// experiments package's table idiom so check output sits next to the
// paper's figures in the CLI.

package check

import (
	"context"
	"fmt"
	"strings"
	"time"

	"easeio/internal/experiments"
)

// Divergence is one failure schedule whose replay did not match the
// golden run.
type Divergence struct {
	// At is the final injected failure's on-time; Index is its position
	// in its level's candidate enumeration (the golden cut list at level
	// 1, the expanded subtree's trajectory cut list below it).
	At    time.Duration
	Index int
	// Kind classifies the oracle that fired: "memory" (a non-volatile
	// word differs from golden), "output" (CheckOutput failed), "ledger"
	// (work accounting broke), "timely" (an input consumed past its
	// staleness bound, for apps declaring freshness bounds) or "error"
	// (the replay did not terminate).
	Kind string
	// Detail pins the first offending word, verdict or invariant.
	Detail string
	// Schedule is the full failure schedule (ascending cut on-times)
	// when it injects more than one failure — a failure-during-recovery
	// divergence. nil for single-failure divergences, where At is the
	// whole schedule.
	Schedule []time.Duration `json:",omitempty"`
}

// DepthStats books one nested exploration level (depth ≥ 2).
type DepthStats struct {
	// Depth is the number of failures per schedule at this level.
	Depth int
	// Expanded counts the subtree roots explored at this depth;
	// Collapsed counts the evaluated passing nodes represented by a
	// hash-identical expanded sibling (their subtrees were not
	// re-explored).
	Expanded  int
	Collapsed int
	// Candidates is the union of the expanded subtrees' trajectory cut
	// points; Explored of them were replayed, the rest pruned by the
	// per-subtree bisection.
	Candidates int
	Explored   int
	Pruned     int
}

// Report is the deterministic result of one checker run: same blueprint,
// config and seed ⇒ byte-identical Render output, regardless of Workers.
type Report struct {
	App     string
	Runtime string
	Seed    int64
	Off     time.Duration
	// Failures is the explored schedule depth k (1 = the single-failure
	// checker).
	Failures int

	// GoldenOnTime and GoldenCorrect describe the continuous-power
	// reference run.
	GoldenOnTime  time.Duration
	GoldenCorrect bool

	// Candidates is the number of charge-slice boundaries enumerated by
	// the golden pass; Explored of them were replayed, the rest pruned by
	// the adaptive bisection.
	Candidates int
	Explored   int
	Pruned     int

	// Note carries a non-failure explanation worth surfacing, e.g. that
	// the golden run produced no candidate failure points at all.
	Note string

	// Depths books the nested exploration levels (empty for k=1
	// reports).
	Depths []DepthStats `json:",omitempty"`

	// Divergences lists every explored failure schedule that broke an
	// oracle: level 1 in candidate order, then each deeper level in
	// (subtree, candidate) order.
	Divergences []Divergence
	// Minimal is the minimal failing schedule — fewest failures, then
	// earliest (nil when every explored schedule passed).
	Minimal []time.Duration
}

// Passed reports whether no explored failure point diverged.
func (r *Report) Passed() bool { return len(r.Divergences) == 0 }

// renderShownDivergences bounds the per-report divergence table.
const renderShownDivergences = 10

// Render prints the report as a text block in the experiments table
// style.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "check %s under %s (seed %d, off %v)\n", r.App, r.Runtime, r.Seed, r.Off)
	fmt.Fprintf(&b, "  golden: on-time %v, correct=%v\n", r.GoldenOnTime, r.GoldenCorrect)
	fmt.Fprintf(&b, "  candidates %d, explored %d, pruned %d\n", r.Candidates, r.Explored, r.Pruned)
	// The per-depth lines render only for nested runs, so k=1 reports
	// stay byte-identical to the single-failure checker's output.
	for _, ds := range r.Depths {
		fmt.Fprintf(&b, "  depth %d: expanded %d subtree(s) (%d collapsed), candidates %d, explored %d, pruned %d\n",
			ds.Depth, ds.Expanded, ds.Collapsed, ds.Candidates, ds.Explored, ds.Pruned)
	}
	if r.Note != "" {
		fmt.Fprintf(&b, "  note: %s\n", r.Note)
	}
	if r.Passed() {
		b.WriteString("  PASS: every explored failure point matches the golden run\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  FAIL: %d diverging failure point(s); minimal failing schedule: fail at %v\n",
		len(r.Divergences), r.Minimal)
	rows := make([][]string, 0, renderShownDivergences)
	for i, d := range r.Divergences {
		if i == renderShownDivergences {
			rows = append(rows, []string{"…", "", fmt.Sprintf("(%d more)", len(r.Divergences)-i), ""})
			break
		}
		at := fmt.Sprintf("%v", d.At)
		if len(d.Schedule) > 1 {
			at = fmt.Sprintf("%v", d.Schedule)
		}
		rows = append(rows, []string{at, fmt.Sprintf("%d", d.Index), d.Kind, d.Detail})
	}
	b.WriteString(indent(experiments.Table([]string{"fail at", "index", "kind", "detail"}, rows), "  "))
	return b.String()
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n") + "\n"
}

// Target names one app blueprint for a matrix check.
type Target struct {
	Name string
	New  experiments.AppFactory
}

// Matrix checks every target under every runtime kind, returning one
// report per cell in row-major (target, kind) order. The first hard error
// (an app that cannot even build or complete its golden run) aborts the
// matrix; divergences do not — they are results.
func Matrix(ctx context.Context, targets []Target, kinds []experiments.RuntimeKind, cfg Config) ([]*Report, error) {
	reports := make([]*Report, 0, len(targets)*len(kinds))
	for _, tgt := range targets {
		for _, kind := range kinds {
			rep, err := Run(ctx, tgt.New, kind, cfg)
			if err != nil {
				return reports, fmt.Errorf("check: %s under %s: %w", tgt.Name, kind, err)
			}
			rep.App = tgt.Name // registry name, so matrix rows match registered blueprints
			reports = append(reports, rep)
		}
	}
	return reports, nil
}

// RenderMatrix prints one row per app and one column per runtime, each
// cell "pass" or "FAIL(n)" with the cell's explored point count.
func RenderMatrix(reports []*Report) string {
	var apps []string
	var kinds []string
	cells := map[string]map[string]*Report{}
	for _, r := range reports {
		if cells[r.App] == nil {
			cells[r.App] = map[string]*Report{}
			apps = append(apps, r.App)
		}
		if _, seen := cells[r.App][r.Runtime]; !seen {
			cells[r.App][r.Runtime] = r
		}
		found := false
		for _, k := range kinds {
			if k == r.Runtime {
				found = true
				break
			}
		}
		if !found {
			kinds = append(kinds, r.Runtime)
		}
	}
	header := append([]string{"app \\ runtime"}, kinds...)
	rows := make([][]string, 0, len(apps))
	for _, a := range apps {
		row := []string{a}
		for _, k := range kinds {
			r := cells[a][k]
			switch {
			case r == nil:
				row = append(row, "-")
			case r.Passed():
				row = append(row, fmt.Sprintf("pass (%d pts)", r.Explored))
			default:
				row = append(row, fmt.Sprintf("FAIL(%d) @%v", len(r.Divergences), r.Minimal[0]))
			}
		}
		rows = append(rows, row)
	}
	return experiments.Table(header, rows)
}
