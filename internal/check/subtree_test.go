package check

import (
	"context"
	"reflect"
	"testing"

	"easeio/internal/experiments"
)

// TestSubtreePipelineMatchesRun pins the distributed nested checker's
// soundness argument at the package level: plan level 1 locally, split
// the seed list into contiguous groups, grow each group's subtrees in a
// separate RunSubtree (its own golden pass, like a remote worker),
// merge, and assemble — the report must be deep-equal to the in-process
// checker's, for every runtime, divergence-free or not.
func TestSubtreePipelineMatchesRun(t *testing.T) {
	ctx := context.Background()
	// The sensor app rides along so the split also covers freshness
	// state: its stale-serve record must survive the root checkpoints'
	// extra restore hop and still fold into identical Timely counts.
	for _, app := range []struct {
		name    string
		factory experiments.AppFactory
	}{
		{"fig6", Fig6Bench},
		{"sensor", sensorFactory},
	} {
		for _, kind := range allKinds {
			app, kind := app, kind
			t.Run(app.name+"/"+kind.String(), func(t *testing.T) {
				t.Parallel()
				cfg := Config{Failures: 2, Exhaustive: true, Workers: 2}
				want, err := Run(ctx, app.factory, kind, cfg)
				if err != nil {
					t.Fatal(err)
				}
				np, err := PlanNested(ctx, app.factory, kind, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if np.Fallback {
					t.Fatal("PlanNested fell back for a snapshot-capable runtime")
				}
				// EaseIO-style runtimes collapse fig6's level-1 frontier to a
				// single representative; the 3-way split then degenerates to
				// empty groups plus one, which is itself worth pinning. The
				// baseline runtimes (Alpaca, InK) keep several seeds and
				// exercise the real multi-group merge.
				t.Logf("%d level-1 seeds", len(np.Seeds))
				const groups = 3
				var parts []SubtreeReport
				n := len(np.Seeds)
				for p := 0; p < groups; p++ {
					lo, hi := p*n/groups, (p+1)*n/groups
					rep, err := RunSubtree(ctx, app.factory, kind, cfg, np.Seeds[lo:hi])
					if err != nil {
						t.Fatal(err)
					}
					parts = append(parts, *rep)
				}
				got := np.Report(MergeSubtrees(parts))
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("assembled report differs from in-process run:\n got %+v\nwant %+v", got, want)
				}
			})
		}
	}
}

// TestRunSubtreeEmptyRoots pins the degenerate contract: an empty group
// is a complete, empty report — workers never error on it.
func TestRunSubtreeEmptyRoots(t *testing.T) {
	rep, err := RunSubtree(context.Background(), Fig6Bench, allKinds[2],
		Config{Failures: 2, Exhaustive: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Depths) != 0 || len(rep.Divergences) != 0 {
		t.Fatalf("empty roots produced a non-empty report: %+v", rep)
	}
}
