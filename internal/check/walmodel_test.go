// Model check of the fleet WAL recovery protocol (apps.NewWALApp): the
// journal's append/replay discipline, expressed as an intermittent
// application, pushed through the exhaustive failure-point checker. See
// EXPERIMENTS.md ("Model-checking the fleet WAL") for the full account.

package check

import (
	"context"
	"testing"

	"easeio/internal/apps"
	"easeio/internal/experiments"
)

func walFactory() (*apps.Bench, error) { return apps.NewWALApp(apps.DefaultWALConfig()) }

// TestWALProtocolSurvivesAllFailurePoints: under runtimes whose task
// commits buffer writes — the guarantee the fleet WAL builds with its
// frame CRC — the protocol must survive a power failure at every
// candidate cut: every record committed exactly once, each slot decoding
// as exactly one record type consistent with its payload, and the
// recovered digest equal to the pure fold of the log.
func TestWALProtocolSurvivesAllFailurePoints(t *testing.T) {
	for _, kind := range []experiments.RuntimeKind{
		experiments.InK, experiments.EaseIO, experiments.JustDo,
	} {
		rep, err := Run(context.Background(), walFactory, kind, Config{Exhaustive: true})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Explored != rep.Candidates {
			t.Errorf("%s: explored %d of %d candidates; the model check must be exhaustive",
				kind, rep.Explored, rep.Candidates)
		}
		if !rep.Passed() {
			t.Errorf("WAL protocol diverged under %s:\n%s", kind, rep.Render())
		}
	}
}

// TestWALProtocolCorruptsWithoutAtomicAppend: on a runtime that
// re-executes appends over directly-written journal slots (Alpaca's
// non-WAR variables), the checker must rediscover the torn-journal
// corruption the WAL's frame commit exists to prevent — a replayed
// append observing a different world and double-decoding a record.
func TestWALProtocolCorruptsWithoutAtomicAppend(t *testing.T) {
	rep, err := Run(context.Background(), walFactory, experiments.Alpaca, Config{Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed() {
		t.Fatal("WAL protocol passed under Alpaca; non-atomic appends should corrupt the journal")
	}
	if d := rep.Divergences[0]; d.Kind != "output" {
		t.Errorf("first divergence kind %s (%s), want the CheckOutput journal invariant", d.Kind, d.Detail)
	}
	// The corruption must be reachable from many cuts, not a knife-edge:
	// every failure inside an append's payload-to-commit window replays
	// the sample.
	if frac := float64(len(rep.Divergences)) / float64(rep.Candidates); frac < 0.05 {
		t.Errorf("only %d/%d cuts corrupt the journal; the exposure window should be wide",
			len(rep.Divergences), rep.Candidates)
	}
}
