// The adaptive exploration: which candidate cut points get replayed.
//
// Exhaustive mode evaluates every candidate. Otherwise a coarse grid
// (Config.Grid points, always including the first and last candidate) is
// evaluated first; then, in deterministic rounds, every interval between
// adjacent explored points whose outcome hashes differ is bisected, until
// no interval changes hands. Intervals whose endpoints agree are pruned:
// the checker assumes the failure points between two hash-identical
// outcomes behave identically. That assumption is what buys the speedup —
// Exhaustive is the sound setting, and the small scenario apps use it.
//
// The same loop explores every level of the nested-failure checkpoint
// tree (see nested.go): a subtree's candidate list is the recovery
// trajectory's cut points, its schedules share the subtree's failure
// prefix, and its recording passes resume from the subtree's root
// checkpoint instead of re-running the golden pass.
//
// Each round's point set is a pure function of the previously evaluated
// outcomes, and every replay is independent and deterministic, so the
// explored set — and therefore the Report — does not depend on Workers.

package check

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"easeio/internal/experiments"
	"easeio/internal/kernel"
)

// recordFn captures one checkpoint per requested candidate index of a
// cut list — recorder.record along the golden run at level 1,
// replayer.recordSuffix along a recovery trajectory deeper in the tree.
// nil in from-boot mode.
type recordFn func(cuts []time.Duration, idxs []int) (map[int]*checkpoint, error)

type explorer struct {
	cfg      Config
	newApp   experiments.AppFactory
	newRT    func() kernel.Hooks
	golden   *golden
	cuts     []time.Duration
	lo, hi   int // the explored candidate-index range [lo, hi)
	fromBoot bool
	rec      *recorder // nil in from-boot mode

	reps    []*replayer  // worker pool, grown lazily by round demand
	tracer  *replayer    // nested mode: suffix tracing + recording passes
	done    atomic.Int64 // evaluated points, feeds Config.Progress
	planned atomic.Int64 // points scheduled so far, feeds Config.Progress
}

// explore evaluates the level-1 candidate cut points until the bisection
// converges, returning one outcome slot per candidate (unevaluated slots
// are pruned intervals). On cancellation it returns what was evaluated so
// far plus ctx's error.
func (e *explorer) explore(ctx context.Context) ([]outcome, error) {
	var record recordFn
	var recycle func(map[int]*checkpoint)
	if e.rec != nil {
		record, recycle = e.rec.record, e.rec.recycle
	}
	return e.exploreRange(ctx, e.cuts, e.lo, e.hi, nil, record, recycle)
}

// exploreRange runs the adaptive loop over one cut list: the level-1
// candidates or one subtree's recovery-trajectory cuts. Every evaluated
// schedule is prefix + cuts[i]. In checkpointed mode each round is
// recorded first: a recording pass captures one checkpoint per pending
// point (in batches of checkpointBatch to bound memory), and the workers
// restore and resume instead of re-running from boot. The replayer pool
// is sized lazily by actual round demand — a round with fewer points
// than Workers never pays for app builds it cannot use.
func (e *explorer) exploreRange(ctx context.Context, cuts []time.Duration, lo, hi int,
	prefix []time.Duration, record recordFn, recycle func(map[int]*checkpoint)) ([]outcome, error) {
	out := make([]outcome, len(cuts))

	pending := seedPoints(e.cfg, lo, hi)
	for len(pending) > 0 {
		e.planned.Add(int64(len(pending)))
		batch := len(pending)
		if record != nil && batch > checkpointBatch {
			batch = checkpointBatch
		}
		for start := 0; start < len(pending); start += batch {
			end := start + batch
			if end > len(pending) {
				end = len(pending)
			}
			idxs := pending[start:end]
			var cps map[int]*checkpoint
			if record != nil {
				if err := ctx.Err(); err != nil {
					return out, err
				}
				var err error
				if cps, err = record(cuts, idxs); err != nil {
					return out, err
				}
			}
			if err := e.grow(len(idxs)); err != nil {
				return out, err
			}
			if err := e.evalRound(ctx, out, cuts, idxs, cps, prefix); err != nil {
				return out, err
			}
			if recycle != nil {
				// evalRound is a barrier: every replay of this batch has
				// finished, so its checkpoints can back the next batch.
				recycle(cps)
			}
		}
		pending = nextRound(out)
	}
	return out, nil
}

// grow ensures the pool covers min(Workers, demand) replayers.
func (e *explorer) grow(demand int) error {
	want := e.cfg.Workers
	if demand < want {
		want = demand
	}
	for len(e.reps) < want {
		r, err := newReplayer(e.newApp, e.newRT, e.golden, e.cfg, e.fromBoot)
		if err != nil {
			return err
		}
		e.reps = append(e.reps, r)
	}
	return nil
}

// seedPoints returns the initial candidate indices within the explored
// range [lo, hi): everything in exhaustive mode or for small ranges,
// else Grid evenly spaced indices including both ends. Later bisection
// rounds stay in range by construction: midpoints of in-range intervals
// are in range.
func seedPoints(cfg Config, lo, hi int) []int {
	n := hi - lo
	if n <= 0 {
		return nil
	}
	if cfg.Exhaustive || n <= cfg.Grid {
		idxs := make([]int, n)
		for i := range idxs {
			idxs[i] = lo + i
		}
		return idxs
	}
	idxs := make([]int, 0, cfg.Grid)
	last := -1
	for g := 0; g < cfg.Grid; g++ {
		i := lo + g*(n-1)/(cfg.Grid-1)
		if i != last {
			idxs = append(idxs, i)
			last = i
		}
	}
	return idxs
}

// nextRound bisects every interval between adjacent evaluated points
// whose outcome hashes differ. The scan walks the full outcome slice, so
// it is independent of the order the previous round finished in.
func nextRound(out []outcome) []int {
	var next []int
	prev := -1
	for i := range out {
		if !out[i].evaluated {
			continue
		}
		if prev >= 0 && i-prev > 1 && out[prev].hash != out[i].hash {
			next = append(next, prev+(i-prev)/2)
		}
		prev = i
	}
	return next
}

// evalRound evaluates the given candidate indices on the worker pool.
// Results land in out by index, so completion order is irrelevant. cps
// is nil in from-boot mode; in checkpointed mode it holds one checkpoint
// per index. prefix is the failure schedule shared by every point of the
// round (nil at level 1).
func (e *explorer) evalRound(ctx context.Context, out []outcome, cuts []time.Duration, idxs []int, cps map[int]*checkpoint, prefix []time.Duration) error {
	evalOne := func(r *replayer, i int) outcome {
		r.sched = append(append(r.sched[:0], prefix...), cuts[i])
		if cps != nil {
			return r.evalFrom(cps[i], r.sched)
		}
		return r.eval(r.sched)
	}
	reps := e.reps
	if len(reps) > len(idxs) {
		reps = reps[:len(idxs)]
	}
	if len(reps) == 1 {
		for _, i := range idxs {
			if err := ctx.Err(); err != nil {
				return err
			}
			out[i] = evalOne(reps[0], i)
			e.progress()
		}
		return nil
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for _, r := range reps {
		wg.Add(1)
		go func(r *replayer) {
			defer wg.Done()
			for i := range work {
				if ctx.Err() != nil {
					continue // drain without evaluating
				}
				out[i] = evalOne(r, i)
				e.progress()
			}
		}(r)
	}
	for _, i := range idxs {
		work <- i
	}
	close(work)
	wg.Wait()
	return ctx.Err()
}

func (e *explorer) progress() {
	done := e.done.Add(1)
	if e.cfg.Progress != nil {
		e.cfg.Progress(int(done), int(e.planned.Load()))
	}
}
