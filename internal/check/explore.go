// The adaptive exploration: which candidate cut points get replayed.
//
// Exhaustive mode evaluates every candidate. Otherwise a coarse grid
// (Config.Grid points, always including the first and last candidate) is
// evaluated first; then, in deterministic rounds, every interval between
// adjacent explored points whose outcome hashes differ is bisected, until
// no interval changes hands. Intervals whose endpoints agree are pruned:
// the checker assumes the failure points between two hash-identical
// outcomes behave identically. That assumption is what buys the speedup —
// Exhaustive is the sound setting, and the small scenario apps use it.
//
// Each round's point set is a pure function of the previously evaluated
// outcomes, and every replay is independent and deterministic, so the
// explored set — and therefore the Report — does not depend on Workers.

package check

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"easeio/internal/experiments"
	"easeio/internal/kernel"
)

type explorer struct {
	cfg    Config
	newApp experiments.AppFactory
	newRT  func() kernel.Hooks
	golden *golden
	cuts   []time.Duration

	done atomic.Int64 // evaluated points, feeds Config.Progress
}

// explore evaluates candidate cut points until the bisection converges,
// returning one outcome slot per candidate (unevaluated slots are pruned
// intervals). On cancellation it returns what was evaluated so far plus
// ctx's error.
func (e *explorer) explore(ctx context.Context) ([]outcome, error) {
	n := len(e.cuts)
	out := make([]outcome, n)

	workers := e.cfg.Workers
	if workers > n {
		workers = n
	}
	reps := make([]*replayer, workers)
	for i := range reps {
		r, err := newReplayer(e.newApp, e.newRT, e.golden, e.cfg)
		if err != nil {
			return out, err
		}
		reps[i] = r
	}

	pending := e.seedPoints(n)
	planned := 0
	for len(pending) > 0 {
		planned += len(pending)
		if err := e.evalRound(ctx, reps, out, pending, planned); err != nil {
			return out, err
		}
		pending = nextRound(out)
	}
	return out, nil
}

// seedPoints returns the initial candidate indices: everything in
// exhaustive mode or for small candidate sets, else Grid evenly spaced
// indices including both ends.
func (e *explorer) seedPoints(n int) []int {
	if e.cfg.Exhaustive || n <= e.cfg.Grid {
		idxs := make([]int, n)
		for i := range idxs {
			idxs[i] = i
		}
		return idxs
	}
	idxs := make([]int, 0, e.cfg.Grid)
	last := -1
	for g := 0; g < e.cfg.Grid; g++ {
		i := g * (n - 1) / (e.cfg.Grid - 1)
		if i != last {
			idxs = append(idxs, i)
			last = i
		}
	}
	return idxs
}

// nextRound bisects every interval between adjacent evaluated points
// whose outcome hashes differ. The scan walks the full outcome slice, so
// it is independent of the order the previous round finished in.
func nextRound(out []outcome) []int {
	var next []int
	prev := -1
	for i := range out {
		if !out[i].evaluated {
			continue
		}
		if prev >= 0 && i-prev > 1 && out[prev].hash != out[i].hash {
			next = append(next, prev+(i-prev)/2)
		}
		prev = i
	}
	return next
}

// evalRound evaluates the given candidate indices on the worker pool.
// Results land in out by index, so completion order is irrelevant.
func (e *explorer) evalRound(ctx context.Context, reps []*replayer, out []outcome, idxs []int, planned int) error {
	if len(reps) == 1 {
		for _, i := range idxs {
			if err := ctx.Err(); err != nil {
				return err
			}
			out[i] = reps[0].eval(e.cuts[i])
			e.progress(planned)
		}
		return nil
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for _, r := range reps {
		wg.Add(1)
		go func(r *replayer) {
			defer wg.Done()
			for i := range work {
				if ctx.Err() != nil {
					continue // drain without evaluating
				}
				out[i] = r.eval(e.cuts[i])
				e.progress(planned)
			}
		}(r)
	}
	for _, i := range idxs {
		work <- i
	}
	close(work)
	wg.Wait()
	return ctx.Err()
}

func (e *explorer) progress(planned int) {
	done := e.done.Add(1)
	if e.cfg.Progress != nil {
		e.cfg.Progress(int(done), planned)
	}
}
