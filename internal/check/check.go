// Package check is the failure-point model checker: for one app×runtime
// blueprint it (1) runs a golden continuous-power pass that enumerates
// every charge-slice boundary — the candidate failure points — through
// the kernel's CutSink hook, (2) replays the run with a single power
// failure injected at each explored candidate over a deterministic
// power.Schedule, and (3) differentially compares each replay's final
// non-volatile memory, CheckOutput verdict and work-split ledger against
// the golden run, reporting a minimal failing schedule on divergence.
//
// Exploration is adaptive (see explore.go): a coarse grid of candidates
// is evaluated first and an interval between two explored points is
// bisected only while their outcome hashes differ, so long stretches of
// equivalent failure points are pruned. Exhaustive mode replays every
// candidate — the sound setting used for the small scenario apps.
//
// The checker is deterministic: the same blueprint and config produce a
// byte-identical Report regardless of Workers or scheduling.
package check

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"time"

	"easeio/internal/apps"
	"easeio/internal/experiments"
	"easeio/internal/kernel"
	"easeio/internal/power"
	"easeio/internal/stats"
)

// MaxFailures caps the nested-failure exploration depth. Each level
// multiplies the schedule space by the suffix cut count; beyond a few
// levels even the collapsed tree stops being tractable, and no
// correctness argument in the paper needs more than
// failure-during-recovery-during-recovery. Surfaces that accept a depth
// (the -k flag, the service's "failures" field) validate against this
// cap with ValidateFailures.
const MaxFailures = 4

// ValidateFailures reports whether k is a usable exploration depth:
// at least one failure per schedule, at most MaxFailures.
func ValidateFailures(k int) error {
	if k < 1 || k > MaxFailures {
		return fmt.Errorf("check: failure depth %d out of range [1, %d]", k, MaxFailures)
	}
	return nil
}

// Config parameterizes one checker run.
type Config struct {
	// Seed drives the golden run and every replay (peripheral processes
	// are pure functions of wall-clock time and this seed).
	Seed int64
	// Failures is the nested-failure exploration depth k: every explored
	// schedule injects up to this many failures, each landing on a
	// charge-slice boundary of the previous failure's recovery
	// trajectory. 0 defaults to 1 — the single-failure checker. Depths
	// above MaxFailures are rejected.
	Failures int
	// Off is the recharge duration of the injected failure (defaults to
	// power.Schedule's 1 ms).
	Off time.Duration
	// Grid is the number of coarse starting points of the adaptive
	// exploration (defaults to 128; clamped to the candidate count).
	Grid int
	// Exhaustive replays every candidate cut point instead of pruning
	// hash-equivalent intervals.
	Exhaustive bool
	// FromBoot forces every replay to re-simulate from boot instead of
	// restoring a checkpoint of the golden prefix and simulating only
	// the post-failure suffix. The two modes produce byte-identical
	// reports; from-boot is the O(run) escape hatch kept for
	// cross-validation and for runtimes that do not implement
	// kernel.Snapshotter and kernel.Resetter (which fall back to it
	// automatically).
	FromBoot bool
	// Workers bounds parallel replays (defaults to GOMAXPROCS). The
	// Report is worker-count-invariant.
	Workers int
	// CutLo/CutHi restrict exploration to the candidate-index range
	// [CutLo, CutHi) — the distributed checker's shard unit. CutHi == 0
	// means "through the last candidate"; out-of-range bounds clamp.
	// Shard reports merged in range order reproduce the unsharded report
	// only in Exhaustive mode: the adaptive bisection prunes against
	// outcomes across the whole range, so adaptive jobs must stay a
	// single shard. The bisection itself honors the range either way
	// (midpoints of in-range intervals stay in range).
	CutLo, CutHi int
	// NewRuntime overrides the runtime instance factory, e.g. to check an
	// ablated EaseIO configuration. Defaults to experiments.NewRuntime of
	// the kind passed to Run.
	NewRuntime func() kernel.Hooks
	// Label overrides the runtime name recorded in the Report (useful
	// together with NewRuntime); defaults to the kind's String.
	Label string
	// Progress, when non-nil, is invoked after every evaluated point with
	// the cumulative explored count and the planned count so far. It may
	// be called from any worker goroutine.
	Progress func(explored, planned int)
}

func (c Config) fill() Config {
	if c.Failures <= 0 {
		c.Failures = 1
	}
	if c.Off <= 0 {
		c.Off = time.Millisecond
	}
	if c.Grid <= 0 {
		c.Grid = 128
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// golden is the continuous-power reference every replay is compared
// against.
type golden struct {
	// onTime is the golden run's powered-on execution time.
	onTime time.Duration
	// correct is the golden CheckOutput verdict (true for every shipped
	// app: under continuous power nothing re-executes).
	correct bool
	// vars holds each variable's final committed words, indexed like
	// App.Vars.
	vars [][]uint16
	// sensed marks variables excluded from the word-for-word comparison
	// (see task.NVVar.TimeSensitive).
	sensed []bool
	// hasFresh gates the freshness oracle: the staleness record folds
	// into outcome hashes only for apps declaring freshness bounds, so
	// untagged apps keep hashes — and adaptive reports — byte-identical
	// to the pre-oracle checker.
	hasFresh bool
	// stale is the golden run's staleness-violation count. An app may be
	// inherently stale even under continuous power; replays are charged
	// only for violations beyond it.
	stale int
}

// cutRecorder collects every charge-slice boundary of the golden pass.
type cutRecorder struct{ cuts []time.Duration }

// NoteCut implements kernel.CutSink. On-time is strictly increasing
// across a run, so the slice arrives sorted and duplicate-free.
func (r *cutRecorder) NoteCut(onTime time.Duration) { r.cuts = append(r.cuts, onTime) }

// planned is a completed golden pass: everything Run needs before (or
// instead of) exploring.
type planned struct {
	bench *apps.Bench
	label string
	newRT func() kernel.Hooks
	g     *golden
	cuts  []time.Duration
	dev   *kernel.Device
	rt    kernel.Hooks
}

// goldenPass runs the continuous-power reference and enumerates the
// candidate failure points — the planning half of Run.
func goldenPass(newApp experiments.AppFactory, kind experiments.RuntimeKind, cfg Config) (*planned, error) {
	newRT := cfg.NewRuntime
	if newRT == nil {
		newRT = func() kernel.Hooks { return experiments.NewRuntime(kind) }
	}
	label := cfg.Label
	if label == "" {
		label = kind.String()
	}

	bench, err := newApp()
	if err != nil {
		return nil, fmt.Errorf("check: build app: %w", err)
	}
	rec := &cutRecorder{}
	sess := kernel.NewSession(newRT(), bench.App, power.Continuous{})
	sess.Cuts = rec
	grun, err := sess.Run(cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("check: golden run of %s under %s: %w", bench.App.Name, label, err)
	}

	g := &golden{
		onTime:   grun.OnTime,
		correct:  grun.Correct,
		vars:     make([][]uint16, len(bench.App.Vars)),
		sensed:   make([]bool, len(bench.App.Vars)),
		hasFresh: bench.App.DeclaresFreshness(),
		stale:    len(grun.Stale),
	}
	dev, rt := sess.Device(), sess.Runtime()
	for i, v := range bench.App.Vars {
		g.sensed[i] = v.TimeSensitive
		words := make([]uint16, v.Words)
		for w := range words {
			words[w] = kernel.ReadVar(dev, rt, v, w)
		}
		g.vars[i] = words
	}
	return &planned{bench: bench, label: label, newRT: newRT, g: g, cuts: rec.cuts, dev: dev, rt: rt}, nil
}

// noCandidatesNote explains a zero-candidate report.
const noCandidatesNote = "no candidate failure points: the golden run never crossed a charge-slice boundary"

// Plan is the result of a golden pass alone: the report header fields
// plus the candidate count, everything a coordinator needs to shard a
// check job and reassemble the merged report without exploring anything
// itself.
type Plan struct {
	App      string
	Runtime  string
	Seed     int64
	Off      time.Duration
	Failures int

	GoldenOnTime  time.Duration
	GoldenCorrect bool

	// Candidates is the number of charge-slice boundaries the golden
	// pass enumerated; shard cut ranges partition [0, Candidates).
	Candidates int

	// Note carries the zero-candidate explanation when Candidates == 0.
	Note string
}

// Golden runs only the planning half of a checker job: the golden
// continuous-power pass that enumerates candidate failure points. The
// golden pass is deterministic, so a worker exploring a cut range of the
// same configuration reproduces exactly the candidates this plan counts.
func Golden(newApp experiments.AppFactory, kind experiments.RuntimeKind, cfg Config) (*Plan, error) {
	cfg = cfg.fill()
	if err := ValidateFailures(cfg.Failures); err != nil {
		return nil, err
	}
	pl, err := goldenPass(newApp, kind, cfg)
	if err != nil {
		return nil, err
	}
	p := &Plan{
		App:           pl.bench.App.Name,
		Runtime:       pl.label,
		Seed:          cfg.Seed,
		Off:           cfg.Off,
		Failures:      cfg.Failures,
		GoldenOnTime:  pl.g.onTime,
		GoldenCorrect: pl.g.correct,
		Candidates:    len(pl.cuts),
	}
	if p.Candidates == 0 {
		p.Note = noCandidatesNote
	}
	return p, nil
}

// Report returns the report header this plan describes, with no explored
// points — the skeleton a coordinator fills from merged shard results.
func (p *Plan) Report() *Report {
	return &Report{
		App:           p.App,
		Runtime:       p.Runtime,
		Seed:          p.Seed,
		Off:           p.Off,
		Failures:      p.Failures,
		GoldenOnTime:  p.GoldenOnTime,
		GoldenCorrect: p.GoldenCorrect,
		Candidates:    p.Candidates,
		Note:          p.Note,
	}
}

// Run model-checks one app×runtime blueprint: it enumerates the candidate
// failure points with a golden pass, explores them with single-failure
// replays (and, when Config.Failures > 1, grows a checkpoint tree of
// failure-during-recovery schedules below every passing point), and
// reports every divergence found. Cancelling ctx stops the exploration at
// the next point boundary and returns the partial report alongside ctx's
// error.
func Run(ctx context.Context, newApp experiments.AppFactory, kind experiments.RuntimeKind, cfg Config) (*Report, error) {
	cfg = cfg.fill()
	if err := ValidateFailures(cfg.Failures); err != nil {
		return nil, err
	}
	pl, err := goldenPass(newApp, kind, cfg)
	if err != nil {
		return nil, err
	}
	g, rt, dev, bench := pl.g, pl.rt, pl.dev, pl.bench

	rep := &Report{
		App:           bench.App.Name,
		Runtime:       pl.label,
		Seed:          cfg.Seed,
		Off:           cfg.Off,
		Failures:      cfg.Failures,
		GoldenOnTime:  g.onTime,
		GoldenCorrect: g.correct,
		Candidates:    len(pl.cuts),
	}
	if rep.Candidates == 0 {
		// Nothing to explore, and nothing to diverge: a run that never
		// crossed a charge-slice boundary has no point at which a power
		// failure could land. Say so explicitly instead of rendering a
		// confusingly empty pass.
		rep.Note = noCandidatesNote
		return rep, nil
	}

	// Clamp the explored candidate range (the full range by default).
	lo, hi := clampRange(cfg, rep.Candidates)

	fromBoot := cfg.FromBoot
	var rcr *recorder
	if !fromBoot {
		// Checkpointed replay needs the runtime to checkpoint its hook
		// state and to reset in place for recording passes; probe the
		// golden session's runtime and fall back to from-boot replay when
		// it can't. The recorder re-runs recording passes on the session's
		// own device, runtime and app — golden state was already copied
		// out above, so checkpointed mode costs no extra builds.
		_, canSnap := rt.(kernel.Snapshotter)
		_, canReset := rt.(kernel.Resetter)
		if canSnap && canReset {
			rcr = newRecorder(bench, rt, dev, cfg.Seed)
		} else {
			fromBoot = true
		}
	}

	e := &explorer{cfg: cfg, newApp: newApp, newRT: pl.newRT, golden: g, cuts: pl.cuts,
		lo: lo, hi: hi, fromBoot: fromBoot, rec: rcr}
	results, err := e.explore(ctx)
	for i, res := range results {
		if !res.evaluated {
			continue
		}
		rep.Explored++
		if res.div != nil {
			d := *res.div
			d.Index = i
			d.At = pl.cuts[i]
			rep.Divergences = append(rep.Divergences, d)
		}
	}
	// Pruned counts only within the explored range, so shard reports
	// don't book out-of-range candidates as pruned.
	rep.Pruned = (hi - lo) - rep.Explored
	if cfg.Failures > 1 && err == nil {
		nres, nerr := e.exploreNested(ctx, results)
		rep.Depths = nres.depths
		rep.Divergences = append(rep.Divergences, nres.divs...)
		err = nerr
	}
	rep.Minimal = MinimalSchedule(rep.Divergences)
	return rep, err
}

// MinimalSchedule picks the minimal failing schedule: fewest failures
// first, then earliest. Divergences arrive depth by depth and in
// candidate order within a depth, so the first divergence with the
// shortest schedule is the minimal one. The fleet merge uses it to
// reassemble exactly the Minimal field check.Run computes in process.
func MinimalSchedule(divs []Divergence) []time.Duration {
	best := -1
	bestLen := 0
	for i, d := range divs {
		l := len(d.Schedule)
		if l == 0 {
			l = 1 // single-failure divergences carry the schedule in At
		}
		if best < 0 || l < bestLen {
			best, bestLen = i, l
		}
	}
	if best < 0 {
		return nil
	}
	if d := divs[best]; len(d.Schedule) > 0 {
		return append([]time.Duration(nil), d.Schedule...)
	}
	return []time.Duration{divs[best].At}
}

// outcome is one replay's classified result.
type outcome struct {
	evaluated bool
	hash      uint64
	div       *Divergence // nil when the replay matched golden
}

// replayer owns one worker's app instance and schedule. In from-boot
// mode it re-simulates the whole run per point through a session (the
// same blueprint/instance reuse path sweeps take); in checkpointed mode
// it restores a golden-prefix checkpoint into its own attached device
// and simulates only the post-failure suffix (kernel.ResumeWithFailure).
// Both modes classify identically, so the Report is byte-identical
// either way.
type replayer struct {
	bench  *apps.Bench
	sch    *power.Schedule
	golden *golden
	seed   int64

	// want is the number of failures the current schedule injects — the
	// ledger oracle's expected PowerFailures count.
	want int
	// sched is the scratch schedule buffer reused across evals.
	sched []time.Duration

	// from-boot mode
	sess *kernel.Session

	// checkpointed mode: a device with the blueprint attached, overwritten
	// by every restore.
	dev *kernel.Device
	rt  kernel.Hooks
}

func newReplayer(newApp experiments.AppFactory, newRT func() kernel.Hooks, g *golden, cfg Config, fromBoot bool) (*replayer, error) {
	bench, err := newApp()
	if err != nil {
		return nil, fmt.Errorf("check: build replay app: %w", err)
	}
	sch := power.NewScheduleWithOff(cfg.Off)
	r := &replayer{bench: bench, sch: sch, golden: g, seed: cfg.Seed}
	if fromBoot {
		r.sess = kernel.NewSession(newRT(), bench.App, sch)
		return r, nil
	}
	if err := bench.App.Validate(); err != nil {
		return nil, fmt.Errorf("check: replay app: %w", err)
	}
	rt := newRT()
	dev := kernel.NewDevice(sch, cfg.Seed)
	if err := rt.Attach(dev, bench.App); err != nil {
		return nil, fmt.Errorf("check: attach replay app: %w", err)
	}
	r.dev, r.rt = dev, rt
	return r, nil
}

// setSchedule loads the failure schedule (strictly ascending cut
// on-times) into the supply, reusing the FailAt backing array across
// evals.
func (r *replayer) setSchedule(schedule []time.Duration) {
	r.sch.FailAt = append(r.sch.FailAt[:0], schedule...)
	r.want = len(schedule)
}

// eval replays the run from boot with the given failure schedule and
// classifies the result against golden.
func (r *replayer) eval(schedule []time.Duration) outcome {
	r.setSchedule(schedule)
	run, err := r.sess.Run(r.seed)
	if err != nil {
		return r.classify(nil, nil, nil, err)
	}
	return r.classify(r.sess.Device(), r.sess.Runtime(), run, nil)
}

// evalFrom restores the checkpoint taken at the schedule's last cut —
// a golden-prefix checkpoint for single failures, a recovery-trajectory
// checkpoint deeper in the tree — applies the final injected failure,
// and simulates only the suffix. Restore re-establishes the schedule's
// fired-failure cursor for checkpoints recorded under a schedule supply
// (Reset's zero is correct for golden-prefix checkpoints, whose
// continuous-supply state does not restore into a Schedule).
func (r *replayer) evalFrom(cp *checkpoint, schedule []time.Duration) outcome {
	r.setSchedule(schedule)
	r.sch.Reset(0)
	r.dev.Restore(cp.dev)
	r.rt.(kernel.Snapshotter).RestoreState(r.dev, cp.rt)
	if err := kernel.ResumeWithFailure(r.dev, r.rt, r.bench.App); err != nil {
		return r.classify(nil, nil, nil, err)
	}
	return r.classify(r.dev, r.rt, r.dev.Run, nil)
}

// traceFrom replays a passing schedule's suffix like evalFrom, but with
// a cut recorder attached: it returns the charge-slice boundaries of the
// recovery trajectory after the schedule's last failure — the candidate
// points for the next failure level. cp must be the checkpoint at the
// schedule's last cut.
func (r *replayer) traceFrom(cp *checkpoint, schedule []time.Duration) ([]time.Duration, error) {
	rec := &cutRecorder{}
	r.setSchedule(schedule)
	r.sch.Reset(0)
	r.dev.Restore(cp.dev)
	r.rt.(kernel.Snapshotter).RestoreState(r.dev, cp.rt)
	r.dev.Cuts = rec
	err := kernel.ResumeWithFailure(r.dev, r.rt, r.bench.App)
	r.dev.Cuts = nil
	if err != nil {
		return nil, fmt.Errorf("check: suffix trace of schedule %v: %w", schedule, err)
	}
	return rec.cuts, nil
}

// traceBoot is traceFrom's from-boot twin: it replays the whole run with
// the schedule's failures injected and returns the boundaries strictly
// after the last failure (the resumed trajectory's cuts — the earlier
// ones belong to already-explored levels).
func (r *replayer) traceBoot(schedule []time.Duration) ([]time.Duration, error) {
	rec := &cutRecorder{}
	r.setSchedule(schedule)
	r.sess.Cuts = rec
	_, err := r.sess.Run(r.seed)
	r.sess.Cuts = nil
	if err != nil {
		return nil, fmt.Errorf("check: suffix trace of schedule %v: %w", schedule, err)
	}
	last := schedule[len(schedule)-1]
	cuts := rec.cuts
	i := 0
	for i < len(cuts) && cuts[i] <= last {
		i++
	}
	return cuts[i:], nil
}

// recordSuffix re-runs a passing schedule's recovery trajectory from its
// root checkpoint with a snapshotting sink, capturing one checkpoint per
// requested suffix-cut index — the nested twin of recorder.record, which
// does the same along the golden run. cuts is the trajectory's candidate
// list (from traceFrom) and idxs selects ascending entries of it.
func (r *replayer) recordSuffix(root *checkpoint, schedule []time.Duration, cuts []time.Duration, idxs []int) (map[int]*checkpoint, error) {
	sink := &snapSink{
		targets: make([]time.Duration, len(idxs)),
		idxs:    idxs,
		dev:     r.dev,
		rt:      r.rt.(kernel.Snapshotter),
		cps:     make(map[int]*checkpoint, len(idxs)),
	}
	sink.rtInto, _ = r.rt.(kernel.SnapshotterInto)
	for i, idx := range idxs {
		sink.targets[i] = cuts[idx]
	}

	r.setSchedule(schedule)
	r.sch.Reset(0)
	r.dev.Restore(root.dev)
	r.rt.(kernel.Snapshotter).RestoreState(r.dev, root.rt)
	r.dev.Cuts = sink
	err := kernel.ResumeWithFailure(r.dev, r.rt, r.bench.App)
	r.dev.Cuts = nil
	if err != nil {
		return nil, fmt.Errorf("check: suffix recording pass of schedule %v: %w", schedule, err)
	}
	if sink.next != len(sink.targets) {
		return nil, fmt.Errorf("check: suffix recording pass hit %d of %d cut points — recovery trajectory not reproducible",
			sink.next, len(sink.targets))
	}
	return sink.cps, nil
}

// classify compares one replay's final state against golden. The outcome
// hash covers the correctness verdict, the failure count, every
// non-time-sensitive memory word and the divergence kind — the
// equivalence the pruning relies on.
func (r *replayer) classify(dev *kernel.Device, rt kernel.Hooks, run *stats.Run, err error) outcome {
	if err != nil {
		return outcome{evaluated: true, hash: hashString("error:" + err.Error()),
			div: &Divergence{Kind: "error", Detail: err.Error()}}
	}

	// Manual FNV-1a over the words' little-endian bytes — identical to
	// feeding hash/fnv two bytes per word, without the per-word interface
	// call (classify runs once per replayed point over every app word).
	const fnvOffset, fnvPrime = 14695981039346656037, 1099511628211
	h := uint64(fnvOffset)
	put := func(w uint16) {
		h = (h ^ uint64(w&0xff)) * fnvPrime
		h = (h ^ uint64(w>>8)) * fnvPrime
	}
	if run.Correct {
		put(1)
	} else {
		put(0)
	}
	put(uint16(run.PowerFailures))
	if r.golden.hasFresh {
		// The staleness record is observable state for freshness apps:
		// fold every violation (and the sample ages behind future ones)
		// so hash-equal outcomes really are freshness-equivalent.
		putDur := func(d time.Duration) {
			for s := 0; s < 64; s += 16 {
				put(uint16(d >> s))
			}
		}
		put(uint16(len(run.Stale)))
		for _, ev := range run.Stale {
			for i := 0; i < len(ev.Site); i++ {
				h = (h ^ uint64(ev.Site[i])) * fnvPrime
			}
			putDur(ev.Age)
			putDur(ev.Bound)
			putDur(ev.At)
		}
	}

	var div *Divergence
	for i, v := range r.bench.App.Vars {
		if r.golden.sensed[i] {
			continue
		}
		a := rt.AddrOf(v) // hoisted out of kernel.ReadVar's per-word path
		for w := 0; w < v.Words; w++ {
			got := dev.Mem.Read(a.Add(w))
			put(got)
			if want := r.golden.vars[i][w]; got != want && div == nil {
				div = &Divergence{Kind: "memory", Detail: fmt.Sprintf(
					"%s[%d] = %d, want %d", v.Name, w, got, want)}
			}
		}
	}
	switch {
	case div != nil:
	case r.golden.correct && !run.Correct:
		div = &Divergence{Kind: "output", Detail: "CheckOutput failed (golden run is correct)"}
	case r.golden.hasFresh && len(run.Stale) > r.golden.stale:
		ev := run.Stale[r.golden.stale] // the first violation beyond golden's
		div = &Divergence{Kind: "timely", Detail: fmt.Sprintf(
			"Timely(Δt): %s consumed %v after its last sample (bound %v) at t=%v",
			ev.Site, ev.Age, ev.Bound, ev.At)}
	case run.PowerFailures != r.want:
		div = &Divergence{Kind: "ledger", Detail: fmt.Sprintf(
			"%d power failures booked, schedule injected %d", run.PowerFailures, r.want)}
	case sumWork(run) != run.OnTime:
		div = &Divergence{Kind: "ledger", Detail: fmt.Sprintf(
			"committed work %v does not account for on-time %v", sumWork(run), run.OnTime)}
	case run.OnTime < r.golden.onTime:
		div = &Divergence{Kind: "ledger", Detail: fmt.Sprintf(
			"on-time %v below the golden run's %v despite an injected failure",
			run.OnTime, r.golden.onTime)}
	}
	if div != nil {
		for i := 0; i < len(div.Kind); i++ {
			h = (h ^ uint64(div.Kind[i])) * fnvPrime
		}
	}
	return outcome{evaluated: true, hash: h, div: div}
}

// sumWork totals the run's committed work buckets; with nothing pending
// it must equal the powered-on time exactly (the ledger invariant).
func sumWork(run *stats.Run) time.Duration {
	var t time.Duration
	for b := stats.Bucket(0); b < stats.NumBuckets; b++ {
		t += run.Work[b].T
	}
	return t
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
