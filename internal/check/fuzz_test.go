// Fuzzing the nested-schedule enumeration: nestedPlan, seedPoints and
// nextRound are pure functions of a level's outcomes, and the checkpoint
// tree's soundness leans on a handful of their structural invariants
// (representatives in range, ascending, never diverging, every evaluated
// passing point accounted for exactly once). The fuzzer synthesizes
// arbitrary outcome vectors and range bounds and checks the invariants
// directly.

package check

import (
	"reflect"
	"testing"
)

// synthOutcomes decodes one fuzz byte per candidate point: bit 0 =
// evaluated, bit 1 = diverging, the rest the outcome hash (a small hash
// space, so equal-hash runs — the collapse case — are common).
func synthOutcomes(data []byte) []outcome {
	if len(data) > 512 {
		data = data[:512]
	}
	out := make([]outcome, len(data))
	for i, b := range data {
		if b&1 == 0 {
			continue
		}
		out[i].evaluated = true
		out[i].hash = uint64(b >> 2)
		if b&2 != 0 {
			out[i].div = &Divergence{Kind: "memory"}
		}
	}
	return out
}

func FuzzNestedScheduleEnumeration(f *testing.F) {
	f.Add([]byte{}, 0, 0, uint8(8), true)
	f.Add([]byte{1, 1, 1}, 0, 3, uint8(8), true)
	f.Add([]byte{1, 3, 1, 5, 5, 0, 5, 1}, 0, 8, uint8(4), false)
	f.Add([]byte{5, 5, 9, 9, 3, 1}, 1, 5, uint8(2), false)
	f.Add([]byte{1, 0, 1, 0, 9}, -3, 99, uint8(64), false)

	f.Fuzz(func(t *testing.T, data []byte, lo, hi int, grid uint8, exhaustive bool) {
		out := synthOutcomes(data)

		// Clamp the way nestedPlan itself does, to state the invariants
		// over the effective range.
		clo, chi := lo, hi
		if clo < 0 {
			clo = 0
		}
		if chi > len(out) {
			chi = len(out)
		}

		reps := nestedPlan(out, lo, hi)
		if again := nestedPlan(out, lo, hi); !reflect.DeepEqual(reps, again) {
			t.Fatalf("nestedPlan is not deterministic: %v vs %v", reps, again)
		}

		passing := 0
		for i := clo; i < chi; i++ {
			if out[i].evaluated && out[i].div == nil {
				passing++
			}
		}
		covered := 0
		prev := -1
		for _, rp := range reps {
			if rp.idx < clo || rp.idx >= chi {
				t.Fatalf("representative %d outside range [%d, %d)", rp.idx, clo, chi)
			}
			if rp.idx <= prev {
				t.Fatalf("representatives not ascending: %v", reps)
			}
			prev = rp.idx
			o := out[rp.idx]
			if !o.evaluated {
				t.Fatalf("representative %d was never evaluated", rp.idx)
			}
			if o.div != nil {
				t.Fatalf("diverging point %d selected as representative", rp.idx)
			}
			// Expand the representative's maximal run by the collapse
			// rules and require exactly 1+collapsed members.
			members := 1
			for i := rp.idx + 1; i < chi; i++ {
				if !out[i].evaluated {
					continue
				}
				if out[i].div != nil || out[i].hash != o.hash {
					break
				}
				members++
			}
			// A longer same-hash run would have been collapsed further, so
			// the booked count can be smaller only when the next
			// representative interrupts it — which the reconstruction
			// above already stops at via the hash change or divergence;
			// equal hash with no break means the run truly continues.
			if members != 1+rp.collapsed {
				t.Fatalf("representative %d stands for %d members, run has %d (out=%+v)",
					rp.idx, 1+rp.collapsed, members, reps)
			}
			covered += 1 + rp.collapsed
		}
		if covered != passing {
			t.Fatalf("representatives cover %d evaluated passing points, range has %d", covered, passing)
		}
		if passing > 0 {
			first := -1
			for i := clo; i < chi; i++ {
				if out[i].evaluated && out[i].div == nil {
					first = i
					break
				}
			}
			if len(reps) == 0 || reps[0].idx != first {
				t.Fatalf("first evaluated passing point %d is not the first representative (%v)", first, reps)
			}
		}

		// seedPoints: ascending, unique, in range, both ends included.
		g := int(grid)
		if g < 2 {
			g = 2
		}
		cfg := Config{Exhaustive: exhaustive, Grid: g}
		seeds := seedPoints(cfg, clo, chi)
		if again := seedPoints(cfg, clo, chi); !reflect.DeepEqual(seeds, again) {
			t.Fatalf("seedPoints is not deterministic")
		}
		for i, idx := range seeds {
			if idx < clo || idx >= chi {
				t.Fatalf("seed point %d outside [%d, %d)", idx, clo, chi)
			}
			if i > 0 && idx <= seeds[i-1] {
				t.Fatalf("seed points not strictly ascending: %v", seeds)
			}
		}
		if chi > clo {
			if len(seeds) == 0 || seeds[0] != clo || seeds[len(seeds)-1] != chi-1 {
				t.Fatalf("seed points %v do not span [%d, %d)", seeds, clo, chi)
			}
		} else if len(seeds) != 0 {
			t.Fatalf("empty range seeded points %v", seeds)
		}

		// nextRound: every bisection point is unevaluated and lies
		// strictly between two evaluated points with differing hashes.
		next := nextRound(out)
		prev = -1
		for _, idx := range next {
			if idx <= prev {
				t.Fatalf("bisection points not ascending: %v", next)
			}
			prev = idx
			if idx < 0 || idx >= len(out) || out[idx].evaluated {
				t.Fatalf("bisection point %d is not a fresh candidate", idx)
			}
			l, r := idx, idx
			for l >= 0 && !out[l].evaluated {
				l--
			}
			for r < len(out) && !out[r].evaluated {
				r++
			}
			if l < 0 || r >= len(out) {
				t.Fatalf("bisection point %d has no evaluated neighbors", idx)
			}
			if out[l].hash == out[r].hash {
				t.Fatalf("bisection point %d splits a hash-equal interval [%d, %d]", idx, l, r)
			}
		}
	})
}
