// Nested-failure exploration: the checkpoint tree.
//
// A k-failure schedule is built level by level: the first failure lands
// on a golden-run charge-slice boundary, and every further failure lands
// on a boundary of the *previous* failure's recovery trajectory. The
// tree's nodes are passing schedules; expanding a node means tracing its
// recovery trajectory once to enumerate the next level's candidates,
// then replaying each candidate from a checkpoint captured along that
// trajectory (the node's subtree shares the trajectory the way level-1
// replays share the golden prefix).
//
// Two pruning rules keep the exponential space tractable:
//
//   - Diverging nodes are never expanded. A schedule whose prefix
//     already diverges adds no information — the prefix is a shorter
//     failing schedule, and the report's Minimal field wants the
//     shortest one.
//
//   - Identical outcomes collapse their subtrees. Within a level, each
//     maximal run of consecutive evaluated passing points with equal
//     outcome hashes is expanded through its first member only; the
//     outcome hash covers every non-time-sensitive memory word, the
//     verdict, the failure count and the staleness record, so
//     hash-equal siblings resume from observably equivalent states and
//     their subtrees are explored once. This is the same equivalence
//     the level-1 bisection prunes with, applied across levels.
//
// Node selection (nestedPlan) is a pure function of the level's
// outcomes, and outcomes are worker-invariant, so the tree — and the
// report — remains byte-identical across worker counts.

package check

import (
	"context"
	"time"
)

// nestedRep is one node selected for expansion: the first index of a
// maximal run of consecutive evaluated passing points with equal
// outcome hashes, plus how many evaluated siblings it stands for.
type nestedRep struct {
	idx       int
	collapsed int
}

// nestedPlan selects the expansion representatives among a level's
// outcomes over the candidate-index range [lo, hi). It is a pure
// function of the outcomes — the property FuzzNestedScheduleEnumeration
// pins — and returns representatives in ascending index order.
func nestedPlan(out []outcome, lo, hi int) []nestedRep {
	if lo < 0 {
		lo = 0
	}
	if hi > len(out) {
		hi = len(out)
	}
	var reps []nestedRep
	open := false   // a run of equal-hash passing points is open
	var hash uint64 // its outcome hash
	for i := lo; i < hi; i++ {
		o := out[i]
		if !o.evaluated {
			continue // pruned points belong to the enclosing run
		}
		if o.div != nil {
			open = false // diverging points break runs and never expand
			continue
		}
		if open && o.hash == hash {
			reps[len(reps)-1].collapsed++
			continue
		}
		reps = append(reps, nestedRep{idx: i})
		open, hash = true, o.hash
	}
	return reps
}

// treeNode is one schedule selected for expansion: a failure prefix
// whose replay passed, plus (in checkpointed mode) the checkpoint at its
// last cut — the root its subtree's recording passes resume from.
type treeNode struct {
	schedule  []time.Duration
	root      *checkpoint // nil in from-boot mode
	collapsed int
}

// nestedResult carries everything Run folds into the report after the
// nested exploration: per-depth accounting and the divergences found, in
// (depth, node, candidate) order.
type nestedResult struct {
	depths []DepthStats
	divs   []Divergence
}

// exploreNested grows the checkpoint tree below the level-1 outcomes up
// to Config.Failures levels. On cancellation or a hard replay error it
// returns what was found so far plus the error.
func (e *explorer) exploreNested(ctx context.Context, level1 []outcome) (*nestedResult, error) {
	frontier, err := e.level1Frontier(level1)
	if err != nil {
		return &nestedResult{}, err
	}
	return e.exploreFrontier(ctx, frontier, 2)
}

// exploreFrontier runs the breadth-first tree growth over an initial
// frontier whose nodes sit at startDepth. It is the whole nested
// exploration below level 1: exploreNested seeds it with the level-1
// representatives, and the distributed checker's subtree shards seed it
// with a contiguous group of those representatives — because the loop
// books stats and divergences strictly in (depth, node, candidate)
// order, a frontier split into contiguous groups explored separately
// reproduces, per depth and in group order, exactly what the whole
// frontier produces.
func (e *explorer) exploreFrontier(ctx context.Context, frontier []treeNode, startDepth int) (*nestedResult, error) {
	res := &nestedResult{}
	if len(frontier) == 0 {
		return res, nil
	}
	if e.tracer == nil {
		t, err := newReplayer(e.newApp, e.newRT, e.golden, e.cfg, e.fromBoot)
		if err != nil {
			return res, err
		}
		e.tracer = t
	}

	for depth := startDepth; depth <= e.cfg.Failures && len(frontier) > 0; depth++ {
		ds := DepthStats{Depth: depth}
		var next []treeNode
		for _, node := range frontier {
			if err := ctx.Err(); err != nil {
				res.depths = append(res.depths, ds)
				return res, err
			}
			ds.Expanded++
			ds.Collapsed += node.collapsed
			children, err := e.expand(ctx, node, depth, &ds, res)
			if err != nil {
				res.depths = append(res.depths, ds)
				return res, err
			}
			if depth < e.cfg.Failures {
				next = append(next, children...)
			}
			if node.root != nil {
				ckptRecycle(map[int]*checkpoint{0: node.root})
				node.root = nil
			}
		}
		res.depths = append(res.depths, ds)
		frontier = next
	}
	return res, nil
}

// level1Frontier selects the depth-2 expansion nodes from the level-1
// outcomes and, in checkpointed mode, records their root checkpoints in
// one extra golden pass.
func (e *explorer) level1Frontier(level1 []outcome) ([]treeNode, error) {
	reps := nestedPlan(level1, e.lo, e.hi)
	if len(reps) == 0 {
		return nil, nil
	}
	var roots map[int]*checkpoint
	if e.rec != nil {
		idxs := make([]int, len(reps))
		for i, rp := range reps {
			idxs[i] = rp.idx
		}
		var err error
		if roots, err = e.rec.record(e.cuts, idxs); err != nil {
			return nil, err
		}
	}
	frontier := make([]treeNode, 0, len(reps))
	for _, rp := range reps {
		frontier = append(frontier, treeNode{
			schedule:  []time.Duration{e.cuts[rp.idx]},
			root:      roots[rp.idx], // nil in from-boot mode
			collapsed: rp.collapsed,
		})
	}
	return frontier, nil
}

// expand explores one node's subtree: it traces the node's recovery
// trajectory to enumerate the next level's candidates, runs the adaptive
// loop over them, books the accounting and divergences into ds/res, and
// returns the subtree's own expansion nodes for the level below.
func (e *explorer) expand(ctx context.Context, node treeNode, depth int, ds *DepthStats, res *nestedResult) ([]treeNode, error) {
	var suffix []time.Duration
	var err error
	if node.root != nil {
		suffix, err = e.tracer.traceFrom(node.root, node.schedule)
	} else {
		suffix, err = e.tracer.traceBoot(node.schedule)
	}
	if err != nil {
		return nil, err
	}
	ds.Candidates += len(suffix)
	if len(suffix) == 0 {
		return nil, nil
	}

	var record recordFn
	var recycle func(map[int]*checkpoint)
	if node.root != nil {
		record = func(cuts []time.Duration, idxs []int) (map[int]*checkpoint, error) {
			return e.tracer.recordSuffix(node.root, node.schedule, cuts, idxs)
		}
		recycle = ckptRecycle
	}
	out, err := e.exploreRange(ctx, suffix, 0, len(suffix), node.schedule, record, recycle)
	explored := 0
	for i, o := range out {
		if !o.evaluated {
			continue
		}
		explored++
		if o.div != nil {
			d := *o.div
			d.Index = i
			d.At = suffix[i]
			d.Schedule = append(append([]time.Duration(nil), node.schedule...), suffix[i])
			res.divs = append(res.divs, d)
		}
	}
	ds.Explored += explored
	ds.Pruned += len(suffix) - explored
	if err != nil {
		return nil, err
	}
	if depth >= e.cfg.Failures {
		return nil, nil
	}

	// The level below: representatives of this subtree, rooted at
	// checkpoints re-recorded along the same trajectory (the eval
	// rounds' checkpoints are already recycled).
	reps := nestedPlan(out, 0, len(suffix))
	if len(reps) == 0 {
		return nil, nil
	}
	var roots map[int]*checkpoint
	if node.root != nil {
		idxs := make([]int, len(reps))
		for i, rp := range reps {
			idxs[i] = rp.idx
		}
		if roots, err = e.tracer.recordSuffix(node.root, node.schedule, suffix, idxs); err != nil {
			return nil, err
		}
	}
	children := make([]treeNode, 0, len(reps))
	for _, rp := range reps {
		children = append(children, treeNode{
			schedule:  append(append([]time.Duration(nil), node.schedule...), suffix[rp.idx]),
			root:      roots[rp.idx],
			collapsed: rp.collapsed,
		})
	}
	return children, nil
}
