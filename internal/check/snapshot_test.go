package check

import (
	"context"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"easeio/internal/experiments"
	"easeio/internal/kernel"
	"easeio/internal/mem"
	"easeio/internal/power"
)

var allKinds = []experiments.RuntimeKind{
	experiments.Alpaca, experiments.InK, experiments.EaseIO, experiments.JustDo,
}

// TestReplayModesByteIdentical pins the checkpointed replay's correctness
// claim: restoring a golden-prefix checkpoint and simulating only the
// post-failure suffix must render the exact same exhaustive report as
// re-simulating every replay from boot — byte for byte, divergences
// included (the baselines' fig6 failures must reproduce identically too).
func TestReplayModesByteIdentical(t *testing.T) {
	type cell struct {
		name string
		app  experiments.AppFactory
		kind experiments.RuntimeKind
	}
	var cells []cell
	for _, k := range allKinds {
		cells = append(cells, cell{"fig6/" + k.String(), Fig6Bench, k})
	}
	if !testing.Short() {
		for _, k := range allKinds {
			cells = append(cells, cell{"temp/" + k.String(), tempFactory, k})
		}
		cells = append(cells, cell{"dma/EaseIO", dmaFactory, experiments.EaseIO})
	}
	for _, c := range cells {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			cfg := Config{Exhaustive: true, Workers: 2}
			ckpt, err := Run(context.Background(), c.app, c.kind, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.FromBoot = true
			boot, err := Run(context.Background(), c.app, c.kind, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if ckpt.Render() != boot.Render() {
				t.Errorf("checkpointed and from-boot reports differ:\n--- checkpointed ---\n%s--- from boot ---\n%s",
					ckpt.Render(), boot.Render())
			}
		})
	}
}

// TestCheckpointFidelityTorture exercises the snapshot/restore primitives
// directly, outside the checker's own plumbing: take checkpoints of the
// golden pass at seeded-random cut points, restore each into a fresh
// second device, resume with the injected failure, and compare the
// complete final state — FRAM word for word, the ledger, and the full run
// statistics — against a from-boot run that fails at exactly the same
// point.
func TestCheckpointFidelityTorture(t *testing.T) {
	const seed = 7
	for _, kind := range allKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			bench, err := Fig6Bench()
			if err != nil {
				t.Fatal(err)
			}
			rec := &cutRecorder{}
			sess := kernel.NewSession(experiments.NewRuntime(kind), bench.App, power.Continuous{})
			sess.Cuts = rec
			if _, err := sess.Run(seed); err != nil {
				t.Fatal(err)
			}
			if len(rec.cuts) < 2 {
				t.Fatalf("only %d candidate cut points", len(rec.cuts))
			}

			// First and last cut plus a seeded-random sample in between.
			rng := rand.New(rand.NewSource(0xf1de))
			picks := map[int]bool{0: true, len(rec.cuts) - 1: true}
			for len(picks) < 12 && len(picks) < len(rec.cuts) {
				picks[rng.Intn(len(rec.cuts))] = true
			}
			idxs := make([]int, 0, len(picks))
			for i := range picks {
				idxs = append(idxs, i)
			}
			sort.Ints(idxs)

			rcr := newRecorder(bench, sess.Runtime(), sess.Device(), seed)
			cps, err := rcr.record(rec.cuts, idxs)
			if err != nil {
				t.Fatal(err)
			}

			for _, idx := range idxs {
				cut := rec.cuts[idx]

				// From-boot reference: a fresh run with one scheduled
				// failure at the cut.
				refBench, err := Fig6Bench()
				if err != nil {
					t.Fatal(err)
				}
				refDev := kernel.NewDevice(power.NewSchedule(cut), seed)
				refRT := experiments.NewRuntime(kind)
				if err := kernel.RunApp(refDev, refRT, refBench.App); err != nil {
					t.Fatal(err)
				}

				// Checkpointed path: restore the golden-prefix snapshot into
				// a second instance and simulate only the suffix.
				sufBench, err := Fig6Bench()
				if err != nil {
					t.Fatal(err)
				}
				if err := sufBench.App.Validate(); err != nil {
					t.Fatal(err)
				}
				sufDev := kernel.NewDevice(power.NewSchedule(cut), seed)
				sufRT := experiments.NewRuntime(kind)
				if err := sufRT.Attach(sufDev, sufBench.App); err != nil {
					t.Fatal(err)
				}
				cp := cps[idx]
				sufDev.Restore(cp.dev)
				sufRT.(kernel.Snapshotter).RestoreState(sufDev, cp.rt)
				if err := kernel.ResumeWithFailure(sufDev, sufRT, sufBench.App); err != nil {
					t.Fatal(err)
				}

				if diffs := sufDev.Mem.Diff(refDev.Mem.Snapshot(mem.FRAM), 4); diffs != nil {
					t.Errorf("cut %v: final FRAM differs at words %v", cut, diffs)
				}
				if !reflect.DeepEqual(refDev.Ledger, sufDev.Ledger) {
					t.Errorf("cut %v: ledgers differ:\nfrom-boot: %+v\nresumed:   %+v",
						cut, refDev.Ledger, sufDev.Ledger)
				}
				if !reflect.DeepEqual(refDev.Run, sufDev.Run) {
					t.Errorf("cut %v: run stats differ:\nfrom-boot: %+v\nresumed:   %+v",
						cut, refDev.Run, sufDev.Run)
				}
			}
		})
	}
}
