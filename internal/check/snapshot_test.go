package check

import (
	"context"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"easeio/internal/experiments"
	"easeio/internal/kernel"
	"easeio/internal/mem"
	"easeio/internal/power"
	"easeio/internal/task"
)

var allKinds = []experiments.RuntimeKind{
	experiments.Alpaca, experiments.InK, experiments.EaseIO, experiments.JustDo,
}

// TestReplayModesByteIdentical pins the checkpointed replay's correctness
// claim: restoring a golden-prefix checkpoint and simulating only the
// post-failure suffix must render the exact same exhaustive report as
// re-simulating every replay from boot — byte for byte, divergences
// included (the baselines' fig6 failures must reproduce identically too).
func TestReplayModesByteIdentical(t *testing.T) {
	type cell struct {
		name string
		app  experiments.AppFactory
		kind experiments.RuntimeKind
	}
	var cells []cell
	for _, k := range allKinds {
		cells = append(cells, cell{"fig6/" + k.String(), Fig6Bench, k})
	}
	if !testing.Short() {
		for _, k := range allKinds {
			cells = append(cells, cell{"temp/" + k.String(), tempFactory, k})
		}
		cells = append(cells, cell{"dma/EaseIO", dmaFactory, experiments.EaseIO})
	}
	for _, c := range cells {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			cfg := Config{Exhaustive: true, Workers: 2}
			ckpt, err := Run(context.Background(), c.app, c.kind, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.FromBoot = true
			boot, err := Run(context.Background(), c.app, c.kind, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if ckpt.Render() != boot.Render() {
				t.Errorf("checkpointed and from-boot reports differ:\n--- checkpointed ---\n%s--- from boot ---\n%s",
					ckpt.Render(), boot.Render())
			}
		})
	}
}

// TestNestedReplayModesByteIdentical extends the byte-identity claim to
// the checkpoint tree: a k=2 exhaustive check must render the same
// report whether subtrees resume from recovery-trajectory checkpoints
// or every schedule replays from boot.
func TestNestedReplayModesByteIdentical(t *testing.T) {
	for _, kind := range allKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			cfg := Config{Exhaustive: true, Failures: 2, Workers: 2}
			ckpt, err := Run(context.Background(), Fig6Bench, kind, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.FromBoot = true
			boot, err := Run(context.Background(), Fig6Bench, kind, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if ckpt.Render() != boot.Render() {
				t.Errorf("checkpointed and from-boot k=2 reports differ:\n--- checkpointed ---\n%s--- from boot ---\n%s",
					ckpt.Render(), boot.Render())
			}
		})
	}
}

// TestNestedCheckpointFidelityTorture is the two-failure twin of
// TestCheckpointFidelityTorture: it drives the checkpoint tree's raw
// primitives by hand — golden checkpoint at cut₁, recovery-trajectory
// trace, suffix checkpoint at cut₂ along that trajectory, resume with
// the second failure — and compares the complete final state (FRAM word
// for word, the ledger, the full run statistics) against a from-boot
// run that fails at exactly [cut₁, cut₂]. This is the fidelity claim
// the nested checker's pruning and reporting both stand on. The sensor
// app rides along because its freshness record (sample clocks, stale
// serves) lives in the run statistics a checkpoint must carry — a
// Snapshot/Restore that dropped it would pass fig6 and still let the
// nested checker misreport staleness.
func TestNestedCheckpointFidelityTorture(t *testing.T) {
	for _, app := range []struct {
		name    string
		factory experiments.AppFactory
	}{
		{"fig6", Fig6Bench},
		{"sensor", sensorFactory},
	} {
		for _, kind := range allKinds {
			app, kind := app, kind
			t.Run(app.name+"/"+kind.String(), func(t *testing.T) {
				t.Parallel()
				nestedFidelityTorture(t, app.factory, kind)
			})
		}
	}
}

func nestedFidelityTorture(t *testing.T, factory experiments.AppFactory, kind experiments.RuntimeKind) {
	const seed = 7
	bench, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	rec := &cutRecorder{}
	sess := kernel.NewSession(experiments.NewRuntime(kind), bench.App, power.Continuous{})
	sess.Cuts = rec
	if _, err := sess.Run(seed); err != nil {
		t.Fatal(err)
	}
	level1 := append([]time.Duration(nil), rec.cuts...)
	if len(level1) < 2 {
		t.Fatalf("only %d candidate cut points", len(level1))
	}

	// First cut plus a seeded-random sample of further first cuts.
	rng := rand.New(rand.NewSource(0x2fa11))
	picks := map[int]bool{0: true}
	for len(picks) < 4 && len(picks) < len(level1)-1 {
		picks[rng.Intn(len(level1)-1)] = true // not the last: its recovery has no cuts left
	}
	idxs := make([]int, 0, len(picks))
	for i := range picks {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)

	rcr := newRecorder(bench, sess.Runtime(), sess.Device(), seed)
	cps, err := rcr.record(level1, idxs)
	if err != nil {
		t.Fatal(err)
	}

	// One attached instance per role, reused across pairs the way
	// the checker's own replayers are.
	newInstance := func(sch *power.Schedule) (*kernel.Device, kernel.Hooks, *task.App) {
		b, err := factory()
		if err != nil {
			t.Fatal(err)
		}
		if err := b.App.Validate(); err != nil {
			t.Fatal(err)
		}
		dev := kernel.NewDevice(sch, seed)
		rt := experiments.NewRuntime(kind)
		if err := rt.Attach(dev, b.App); err != nil {
			t.Fatal(err)
		}
		return dev, rt, b.App
	}

	pairs := 0
	for _, i1 := range idxs {
		c1 := level1[i1]
		cp1 := cps[i1]

		// Trace the recovery trajectory after the first failure.
		trSch := power.NewSchedule(c1)
		trDev, trRT, trApp := newInstance(trSch)
		trSch.Reset(0)
		trDev.Restore(cp1.dev)
		trRT.(kernel.Snapshotter).RestoreState(trDev, cp1.rt)
		tr2 := &cutRecorder{}
		trDev.Cuts = tr2
		if err := kernel.ResumeWithFailure(trDev, trRT, trApp); err != nil {
			t.Fatalf("cut %v: trace: %v", c1, err)
		}
		trDev.Cuts = nil
		suffix := tr2.cuts
		if len(suffix) == 0 {
			continue
		}

		// A couple of second cuts per first cut: the trajectory's
		// first boundary, its last, and a seeded-random one.
		j := map[int]bool{0: true, len(suffix) - 1: true}
		j[rng.Intn(len(suffix))] = true
		var jdx []int
		for i := range j {
			jdx = append(jdx, i)
		}
		sort.Ints(jdx)

		// Re-run the same trajectory with a snapshotting sink to
		// capture the suffix checkpoints (recordSuffix by hand).
		sink := &snapSink{
			targets: make([]time.Duration, len(jdx)),
			idxs:    jdx,
			dev:     trDev,
			rt:      trRT.(kernel.Snapshotter),
			cps:     make(map[int]*checkpoint, len(jdx)),
		}
		sink.rtInto, _ = trRT.(kernel.SnapshotterInto)
		for i, idx := range jdx {
			sink.targets[i] = suffix[idx]
		}
		trSch.Reset(0)
		trDev.Restore(cp1.dev)
		trRT.(kernel.Snapshotter).RestoreState(trDev, cp1.rt)
		trDev.Cuts = sink
		if err := kernel.ResumeWithFailure(trDev, trRT, trApp); err != nil {
			t.Fatalf("cut %v: suffix recording: %v", c1, err)
		}
		trDev.Cuts = nil
		if sink.next != len(sink.targets) {
			t.Fatalf("cut %v: recorded %d of %d suffix checkpoints", c1, sink.next, len(sink.targets))
		}

		for _, i2 := range jdx {
			c2 := suffix[i2]
			pairs++

			// Tree path: restore the suffix checkpoint and resume
			// with the second failure.
			evSch := power.NewSchedule(c1, c2)
			evDev, evRT, evApp := newInstance(evSch)
			evSch.Reset(0)
			evDev.Restore(sink.cps[i2].dev)
			evRT.(kernel.Snapshotter).RestoreState(evDev, sink.cps[i2].rt)
			if err := kernel.ResumeWithFailure(evDev, evRT, evApp); err != nil {
				t.Fatalf("schedule [%v %v]: resume: %v", c1, c2, err)
			}

			// From-boot reference with both failures scheduled.
			refBench, err := factory()
			if err != nil {
				t.Fatal(err)
			}
			refDev := kernel.NewDevice(power.NewSchedule(c1, c2), seed)
			refRT := experiments.NewRuntime(kind)
			if err := kernel.RunApp(refDev, refRT, refBench.App); err != nil {
				t.Fatalf("schedule [%v %v]: from boot: %v", c1, c2, err)
			}

			if diffs := evDev.Mem.Diff(refDev.Mem.Snapshot(mem.FRAM), 4); diffs != nil {
				t.Errorf("schedule [%v %v]: final FRAM differs at words %v", c1, c2, diffs)
			}
			if !reflect.DeepEqual(refDev.Ledger, evDev.Ledger) {
				t.Errorf("schedule [%v %v]: ledgers differ:\nfrom-boot: %+v\ntree:      %+v",
					c1, c2, refDev.Ledger, evDev.Ledger)
			}
			if !reflect.DeepEqual(refDev.Run, evDev.Run) {
				t.Errorf("schedule [%v %v]: run stats differ:\nfrom-boot: %+v\ntree:      %+v",
					c1, c2, refDev.Run, evDev.Run)
			}
		}
		ckptRecycle(sink.cps)
	}
	if pairs < 3 {
		t.Errorf("only %d (cut₁, cut₂) pairs exercised", pairs)
	}
}

// TestCheckpointFidelityTorture exercises the snapshot/restore primitives
// directly, outside the checker's own plumbing: take checkpoints of the
// golden pass at seeded-random cut points, restore each into a fresh
// second device, resume with the injected failure, and compare the
// complete final state — FRAM word for word, the ledger, and the full run
// statistics — against a from-boot run that fails at exactly the same
// point.
func TestCheckpointFidelityTorture(t *testing.T) {
	const seed = 7
	for _, kind := range allKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			bench, err := Fig6Bench()
			if err != nil {
				t.Fatal(err)
			}
			rec := &cutRecorder{}
			sess := kernel.NewSession(experiments.NewRuntime(kind), bench.App, power.Continuous{})
			sess.Cuts = rec
			if _, err := sess.Run(seed); err != nil {
				t.Fatal(err)
			}
			if len(rec.cuts) < 2 {
				t.Fatalf("only %d candidate cut points", len(rec.cuts))
			}

			// First and last cut plus a seeded-random sample in between.
			rng := rand.New(rand.NewSource(0xf1de))
			picks := map[int]bool{0: true, len(rec.cuts) - 1: true}
			for len(picks) < 12 && len(picks) < len(rec.cuts) {
				picks[rng.Intn(len(rec.cuts))] = true
			}
			idxs := make([]int, 0, len(picks))
			for i := range picks {
				idxs = append(idxs, i)
			}
			sort.Ints(idxs)

			rcr := newRecorder(bench, sess.Runtime(), sess.Device(), seed)
			cps, err := rcr.record(rec.cuts, idxs)
			if err != nil {
				t.Fatal(err)
			}

			for _, idx := range idxs {
				cut := rec.cuts[idx]

				// From-boot reference: a fresh run with one scheduled
				// failure at the cut.
				refBench, err := Fig6Bench()
				if err != nil {
					t.Fatal(err)
				}
				refDev := kernel.NewDevice(power.NewSchedule(cut), seed)
				refRT := experiments.NewRuntime(kind)
				if err := kernel.RunApp(refDev, refRT, refBench.App); err != nil {
					t.Fatal(err)
				}

				// Checkpointed path: restore the golden-prefix snapshot into
				// a second instance and simulate only the suffix.
				sufBench, err := Fig6Bench()
				if err != nil {
					t.Fatal(err)
				}
				if err := sufBench.App.Validate(); err != nil {
					t.Fatal(err)
				}
				sufDev := kernel.NewDevice(power.NewSchedule(cut), seed)
				sufRT := experiments.NewRuntime(kind)
				if err := sufRT.Attach(sufDev, sufBench.App); err != nil {
					t.Fatal(err)
				}
				cp := cps[idx]
				sufDev.Restore(cp.dev)
				sufRT.(kernel.Snapshotter).RestoreState(sufDev, cp.rt)
				if err := kernel.ResumeWithFailure(sufDev, sufRT, sufBench.App); err != nil {
					t.Fatal(err)
				}

				if diffs := sufDev.Mem.Diff(refDev.Mem.Snapshot(mem.FRAM), 4); diffs != nil {
					t.Errorf("cut %v: final FRAM differs at words %v", cut, diffs)
				}
				if !reflect.DeepEqual(refDev.Ledger, sufDev.Ledger) {
					t.Errorf("cut %v: ledgers differ:\nfrom-boot: %+v\nresumed:   %+v",
						cut, refDev.Ledger, sufDev.Ledger)
				}
				if !reflect.DeepEqual(refDev.Run, sufDev.Run) {
					t.Errorf("cut %v: run stats differ:\nfrom-boot: %+v\nresumed:   %+v",
						cut, refDev.Run, sufDev.Run)
				}
			}
		})
	}
}
