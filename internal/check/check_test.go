package check

import (
	"context"
	"strings"
	"testing"
	"time"

	"easeio/internal/apps"
	"easeio/internal/core"
	"easeio/internal/experiments"
	"easeio/internal/kernel"
	"easeio/internal/power"
)

func dmaFactory() (*apps.Bench, error)  { return apps.NewDMAApp(apps.DefaultDMAConfig()) }
func tempFactory() (*apps.Bench, error) { return apps.NewTempApp(apps.DefaultTempConfig()) }

// TestCutRecorderEnumeratesBoundaries checks the golden pass sees every
// charge-slice boundary: strictly increasing on-times ending exactly at
// the run's total on-time.
func TestCutRecorderEnumeratesBoundaries(t *testing.T) {
	bench, err := Fig6Bench()
	if err != nil {
		t.Fatal(err)
	}
	rec := &cutRecorder{}
	sess := kernel.NewSession(core.New(), bench.App, power.Continuous{})
	sess.Cuts = rec
	run, err := sess.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.cuts) == 0 {
		t.Fatal("golden pass recorded no cut points")
	}
	for i := 1; i < len(rec.cuts); i++ {
		if rec.cuts[i] <= rec.cuts[i-1] {
			t.Fatalf("cuts[%d] = %v not after cuts[%d] = %v", i, rec.cuts[i], i-1, rec.cuts[i-1])
		}
	}
	if last := rec.cuts[len(rec.cuts)-1]; last != run.OnTime {
		t.Errorf("final cut %v != golden on-time %v", last, run.OnTime)
	}
}

// TestSeedPoints pins the initial grid: exhaustive and small sets take
// every index; larger sets take Grid evenly spaced indices including both
// ends, without duplicates.
// TestValidateFailures pins the -k bounds surface shared by the CLI, the
// service and the fleet: only depths 1..MaxFailures are schedulable.
func TestValidateFailures(t *testing.T) {
	cases := []struct {
		k       int
		wantErr string
	}{
		{k: 1},
		{k: 2},
		{k: MaxFailures},
		{k: 0, wantErr: "check: failure depth 0 out of range [1, 4]"},
		{k: -1, wantErr: "check: failure depth -1 out of range [1, 4]"},
		{k: MaxFailures + 1, wantErr: "check: failure depth 5 out of range [1, 4]"},
	}
	for _, c := range cases {
		err := ValidateFailures(c.k)
		switch {
		case c.wantErr == "" && err != nil:
			t.Errorf("k=%d rejected: %v", c.k, err)
		case c.wantErr != "" && err == nil:
			t.Errorf("k=%d accepted", c.k)
		case c.wantErr != "" && err.Error() != c.wantErr:
			t.Errorf("k=%d: error = %q, want %q", c.k, err, c.wantErr)
		}
	}
}

func TestSeedPoints(t *testing.T) {
	if got := seedPoints(Config{Exhaustive: true, Grid: 4}, 0, 10); len(got) != 10 || got[0] != 0 || got[9] != 9 {
		t.Errorf("exhaustive seedPoints over [0,10) = %v", got)
	}
	if got := seedPoints(Config{Grid: 4}, 0, 3); len(got) != 3 {
		t.Errorf("n<=Grid seedPoints over [0,3) = %v, want all indices", got)
	}
	got := seedPoints(Config{Grid: 4}, 0, 100)
	if len(got) != 4 || got[0] != 0 || got[len(got)-1] != 99 {
		t.Errorf("seedPoints over [0,100) = %v, want 4 points spanning [0,99]", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Errorf("seedPoints not strictly increasing: %v", got)
		}
	}

	// A shard range: exhaustive indices stay absolute and in range.
	if got := seedPoints(Config{Exhaustive: true, Grid: 4}, 5, 8); len(got) != 3 || got[0] != 5 || got[2] != 7 {
		t.Errorf("exhaustive seedPoints over [5,8) = %v", got)
	}
	// Grid over a shard range spans exactly [lo, hi-1].
	got = seedPoints(Config{Grid: 4}, 10, 110)
	if len(got) != 4 || got[0] != 10 || got[len(got)-1] != 109 {
		t.Errorf("grid seedPoints over [10,110) = %v, want 4 points spanning [10,109]", got)
	}
	// An empty range seeds nothing.
	if got := seedPoints(Config{Exhaustive: true, Grid: 4}, 4, 4); len(got) != 0 {
		t.Errorf("seedPoints over empty range = %v", got)
	}
}

// TestNextRound pins the bisection rule: only adjacent evaluated pairs
// with a gap and differing hashes are split, at the midpoint.
func TestNextRound(t *testing.T) {
	out := make([]outcome, 9)
	set := func(i int, h uint64) { out[i] = outcome{evaluated: true, hash: h} }
	set(0, 1)
	set(4, 1) // same hash as 0: pruned, no bisection
	set(8, 2) // differs from 4: bisect at 6
	if got := nextRound(out); len(got) != 1 || got[0] != 6 {
		t.Fatalf("nextRound = %v, want [6]", got)
	}
	set(6, 2) // 4..6 still differs: bisect at 5; 6..8 agree
	if got := nextRound(out); len(got) != 1 || got[0] != 5 {
		t.Fatalf("nextRound = %v, want [5]", got)
	}
	set(5, 2) // adjacent everywhere hashes differ: converged
	if got := nextRound(out); got != nil {
		t.Fatalf("nextRound = %v, want nil after convergence", got)
	}
}

// TestFig6ExhaustivePass is the checker's core soundness claim on its
// deterministic scenario: under full EaseIO every single failure point
// reproduces the golden state.
func TestFig6ExhaustivePass(t *testing.T) {
	rep, err := Run(context.Background(), Fig6Bench, experiments.EaseIO,
		Config{Exhaustive: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.GoldenCorrect {
		t.Fatal("golden continuous run must satisfy CheckOutput")
	}
	if !rep.Passed() {
		t.Fatalf("divergences under full EaseIO:\n%s", rep.Render())
	}
	if rep.Explored != rep.Candidates || rep.Pruned != 0 {
		t.Errorf("exhaustive mode explored %d of %d (pruned %d)",
			rep.Explored, rep.Candidates, rep.Pruned)
	}
	if !strings.Contains(rep.Render(), "PASS") {
		t.Errorf("Render misses the PASS verdict:\n%s", rep.Render())
	}
}

// TestSeededBugDetected is the checker's end-to-end detection test: with
// regional privatization disabled (the paper's §4.4 ablation) the Figure 6
// WAR scenario must diverge, and the report must pin a minimal failing
// schedule inside the golden run.
func TestSeededBugDetected(t *testing.T) {
	broken := func() kernel.Hooks {
		cfg := core.DefaultConfig()
		cfg.RegionalPrivatization = false
		return core.NewWithConfig(cfg)
	}
	rep, err := Run(context.Background(), Fig6Bench, experiments.EaseIO,
		Config{Exhaustive: true, Workers: 2, NewRuntime: broken, Label: "EaseIO/NoRegions"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed() {
		t.Fatalf("seeded bug not detected:\n%s", rep.Render())
	}
	if len(rep.Minimal) != 1 {
		t.Fatalf("Minimal = %v, want a single-failure schedule", rep.Minimal)
	}
	at := rep.Minimal[0]
	if at <= 0 || at > rep.GoldenOnTime {
		t.Errorf("minimal failing point %v outside (0, %v]", at, rep.GoldenOnTime)
	}
	if at != rep.Divergences[0].At {
		t.Errorf("Minimal[0] = %v, want earliest divergence %v", at, rep.Divergences[0].At)
	}
	if rep.Runtime != "EaseIO/NoRegions" {
		t.Errorf("report runtime = %q, want the configured label", rep.Runtime)
	}
	r := rep.Render()
	if !strings.Contains(r, "FAIL") || !strings.Contains(r, "minimal failing schedule") {
		t.Errorf("Render misses the failure verdict:\n%s", r)
	}

	// The reported schedule must actually reproduce the divergence when
	// replayed directly — the report is actionable, not just a flag.
	bench, err := Fig6Bench()
	if err != nil {
		t.Fatal(err)
	}
	dev := kernel.NewDevice(power.NewSchedule(rep.Minimal...), 0)
	rt := broken()
	if err := kernel.RunApp(dev, rt, bench.App); err != nil {
		t.Fatal(err)
	}
	if dev.Run.Correct {
		t.Error("replaying the minimal schedule did not reproduce the divergence")
	}
}

// TestDeterministicAcrossWorkers: same blueprint and config must render
// byte-identically on one worker and many — the explored set is a pure
// function of the outcomes, never of scheduling.
func TestDeterministicAcrossWorkers(t *testing.T) {
	for _, cfg := range []Config{
		{Grid: 16},         // bisection path
		{Exhaustive: true}, // exhaustive path
	} {
		seq := cfg
		seq.Workers = 1
		a, err := Run(context.Background(), tempFactory, experiments.EaseIO, seq)
		if err != nil {
			t.Fatal(err)
		}
		par := cfg
		par.Workers = 4
		b, err := Run(context.Background(), tempFactory, experiments.EaseIO, par)
		if err != nil {
			t.Fatal(err)
		}
		if a.Render() != b.Render() {
			t.Errorf("exhaustive=%v: workers=1 vs 4 reports differ:\n%s\nvs\n%s",
				cfg.Exhaustive, a.Render(), b.Render())
		}
	}
}

// TestBisectionPrunes: on a long run the grid mode must explore fewer
// points than exhaustive while reaching the same verdict.
func TestBisectionPrunes(t *testing.T) {
	rep, err := Run(context.Background(), dmaFactory, experiments.EaseIO, Config{Grid: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("dma under EaseIO diverged:\n%s", rep.Render())
	}
	if rep.Candidates <= 16 {
		t.Skipf("only %d candidates; grid covers everything", rep.Candidates)
	}
	if rep.Pruned == 0 {
		t.Errorf("no pruning on %d candidates with grid 16", rep.Candidates)
	}
	if rep.Explored+rep.Pruned != rep.Candidates {
		t.Errorf("explored %d + pruned %d != candidates %d",
			rep.Explored, rep.Pruned, rep.Candidates)
	}
}

// TestMatrixCleanRuntimes: the shipped uni-task apps must pass
// exhaustively under every compared runtime — these are exactly the
// configurations the paper reports as always-correct.
func TestMatrixCleanRuntimes(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix check is the long pass")
	}
	targets := []Target{
		{Name: "dma", New: dmaFactory},
		{Name: "temp", New: tempFactory},
	}
	kinds := []experiments.RuntimeKind{
		experiments.Alpaca, experiments.InK, experiments.EaseIO, experiments.JustDo,
	}
	reports, err := Matrix(context.Background(), targets, kinds, Config{Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(targets)*len(kinds) {
		t.Fatalf("%d reports, want %d", len(reports), len(targets)*len(kinds))
	}
	for _, rep := range reports {
		if !rep.Passed() {
			t.Errorf("%s under %s diverged:\n%s", rep.App, rep.Runtime, rep.Render())
		}
	}
	m := RenderMatrix(reports)
	if !strings.Contains(m, "dma") || !strings.Contains(m, "JustDo") {
		t.Errorf("matrix render misses rows or columns:\n%s", m)
	}
}

// TestFig6BaselinesDiverge: the checker must rediscover the paper's
// motivating bug — Alpaca and InK do not privatize the WAR dependency
// flowing through the Single-semantics DMA, so the Figure 6 scenario has
// failure points that corrupt a[0]. EaseIO and the logging comparator
// survive every point (previous tests); the baselines must not.
func TestFig6BaselinesDiverge(t *testing.T) {
	for _, kind := range []experiments.RuntimeKind{experiments.Alpaca, experiments.InK} {
		rep, err := Run(context.Background(), Fig6Bench, kind, Config{Exhaustive: true})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Passed() {
			t.Errorf("fig6 under %s passed; the paper's Figure 6 bug should manifest", kind)
			continue
		}
		if d := rep.Divergences[0]; d.Kind != "memory" || !strings.Contains(d.Detail, "a[0]") {
			t.Errorf("%s: first divergence %s (%s), want the a[0] WAR corruption",
				kind, d.Kind, d.Detail)
		}
	}
}

// TestFig6JustDoPasses covers the checkpointing comparator on the
// deterministic scenario (the kinds the matrix test skips in -short).
func TestFig6JustDoPasses(t *testing.T) {
	rep, err := Run(context.Background(), Fig6Bench, experiments.JustDo, Config{Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("fig6 under JustDo diverged:\n%s", rep.Render())
	}
}

// TestRunCancellation: a cancelled context stops exploration and returns
// the context error with a partial report.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Run(ctx, Fig6Bench, experiments.EaseIO, Config{Exhaustive: true, Workers: 1})
	if err == nil {
		t.Fatal("cancelled context must surface an error")
	}
	if rep == nil {
		t.Fatal("cancellation must still return the partial report")
	}
	if rep.Explored != 0 {
		t.Errorf("%d points explored under a dead context", rep.Explored)
	}
}

// TestProgressReachesPlanned: the progress hook must report a final count
// equal to the explored total.
func TestProgressReachesPlanned(t *testing.T) {
	var last, lastPlanned int
	cfg := Config{Exhaustive: true, Workers: 1}
	cfg.Progress = func(explored, planned int) { last, lastPlanned = explored, planned }
	rep, err := Run(context.Background(), Fig6Bench, experiments.EaseIO, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if last != rep.Explored || lastPlanned != rep.Explored {
		t.Errorf("progress ended at %d/%d, want %d/%d",
			last, lastPlanned, rep.Explored, rep.Explored)
	}
}

// TestOffDurationRecorded: a custom recharge duration flows into the
// report and the replays still pass.
func TestOffDurationRecorded(t *testing.T) {
	rep, err := Run(context.Background(), Fig6Bench, experiments.EaseIO,
		Config{Exhaustive: true, Off: 250 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Off != 250*time.Microsecond {
		t.Errorf("report off = %v", rep.Off)
	}
	if !rep.Passed() {
		t.Errorf("fig6 diverged with a 250µs recharge:\n%s", rep.Render())
	}
}

// TestCutRangeShardsMergeExhaustive pins the distributed checker's merge
// contract: in exhaustive mode, splitting [0, Candidates) into cut
// ranges, running each range as its own checker job, and reassembling
// the results onto the plan's report skeleton reproduces the unsharded
// report byte for byte.
func TestCutRangeShardsMergeExhaustive(t *testing.T) {
	for _, kind := range allKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			cfg := Config{Exhaustive: true, Workers: 2}
			full, err := Run(context.Background(), Fig6Bench, kind, cfg)
			if err != nil {
				t.Fatal(err)
			}

			plan, err := Golden(Fig6Bench, kind, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if plan.Candidates != full.Candidates {
				t.Fatalf("plan counts %d candidates, full run %d", plan.Candidates, full.Candidates)
			}

			for _, nShards := range []int{2, 3} {
				merged := plan.Report()
				for s := 0; s < nShards; s++ {
					scfg := cfg
					scfg.CutLo = s * plan.Candidates / nShards
					scfg.CutHi = (s + 1) * plan.Candidates / nShards
					part, err := Run(context.Background(), Fig6Bench, kind, scfg)
					if err != nil {
						t.Fatal(err)
					}
					if part.Explored != scfg.CutHi-scfg.CutLo {
						t.Errorf("shard %d explored %d of %d points", s, part.Explored, scfg.CutHi-scfg.CutLo)
					}
					if part.Pruned != 0 {
						t.Errorf("exhaustive shard %d pruned %d points", s, part.Pruned)
					}
					merged.Explored += part.Explored
					merged.Divergences = append(merged.Divergences, part.Divergences...)
				}
				merged.Pruned = merged.Candidates - merged.Explored
				if len(merged.Divergences) > 0 {
					merged.Minimal = []time.Duration{merged.Divergences[0].At}
				}
				if merged.Render() != full.Render() {
					t.Errorf("%d-shard merge differs from unsharded report:\n--- merged ---\n%s--- full ---\n%s",
						nShards, merged.Render(), full.Render())
				}
			}
		})
	}
}
