// The checker's built-in scenario app: the paper's Figure 6 running
// example (a WAR dependency through a Single-semantics DMA copy). It is
// fully deterministic — no sensors, no seeds — so every oracle applies to
// every word, and under EaseIO with regional privatization disabled
// (core.Config.RegionalPrivatization = false) the checker must find the
// WAR inconsistency the paper describes. That seeded-bug detection is the
// checker's own end-to-end test.

package check

import (
	"easeio/internal/apps"
	"easeio/internal/frontend"
	"easeio/internal/task"
)

// Fig6Bench builds the Figure 6 scenario:
//
//	Task1:  z = b[0]
//	        DMA_copy(a[0] → b[0])      (Single)
//	        t = b[0]; a[0] = z
//
// With a = [100] and b = [200] the continuous-power truth is z=200,
// t=100, a=200, b=100, pinned by CheckOutput.
func Fig6Bench() (*apps.Bench, error) {
	a := task.NewApp("fig6")
	va := a.NVBuf("a", 1).WithInit([]uint16{100})
	vb := a.NVBuf("b", 1).WithInit([]uint16{200})
	vz := a.NVInt("z")
	vt := a.NVInt("t")
	d := a.DMA("d")
	var fin *task.Task
	a.AddTask("task1", func(e task.Exec) {
		z := e.Load(vb) // region 1: z = b[0]
		e.Compute(500)
		e.DMACopy(d, task.VarLoc(va, 0), task.VarLoc(vb, 0), 1)
		tt := e.Load(vb) // region 2: t = b[0]
		e.Store(va, z)   // region 2: a[0] = z
		e.Store(vz, z)
		e.Store(vt, tt)
		e.Compute(4000)
		e.Next(fin)
	})
	fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
	a.CheckOutput = func(read func(v *task.NVVar, i int) uint16) bool {
		return read(vz, 0) == 200 && read(vt, 0) == 100 &&
			read(va, 0) == 200 && read(vb, 0) == 100
	}
	if err := frontend.Analyze(a); err != nil {
		return nil, err
	}
	return &apps.Bench{App: a}, nil
}
