// Freshness-oracle tests: the sensor app's staleness bound sits inside
// its Timely window, so runtimes that reuse the stored reading after a
// reboot stay perfectly consistent — the memory and output oracles pass —
// while serving a sample older than the app declared it can tolerate.
// Only the Timely(Δt) divergence class sees that.

package check

import (
	"context"
	"strings"
	"testing"

	"easeio/internal/apps"
	"easeio/internal/experiments"
)

func sensorFactory() (*apps.Bench, error) {
	return apps.NewSensorApp(apps.DefaultSensorConfig())
}

// TestFreshnessOracleSensor pins the demonstration: EaseIO keeps the
// sensor app consistent but stale (every divergence is "timely", none
// are memory/output), while Alpaca and InK re-sense on reboot and pass.
func TestFreshnessOracleSensor(t *testing.T) {
	t.Parallel()
	cases := []struct {
		kind      experiments.RuntimeKind
		wantStale bool
	}{
		{experiments.EaseIO, true},
		{experiments.Alpaca, false},
		{experiments.InK, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.kind.String(), func(t *testing.T) {
			t.Parallel()
			rep, err := Run(context.Background(), sensorFactory, tc.kind,
				Config{Exhaustive: true, Workers: 2})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if rep.Candidates == 0 || rep.Explored != rep.Candidates {
				t.Fatalf("exhaustive run explored %d of %d candidates", rep.Explored, rep.Candidates)
			}
			timely := 0
			for _, d := range rep.Divergences {
				switch d.Kind {
				case "timely":
					timely++
					if !strings.Contains(d.Detail, "Timely(Δt)") {
						t.Errorf("timely detail %q does not carry the Timely(Δt) tag", d.Detail)
					}
				default:
					// The whole point: staleness is invisible to the
					// memory, output and ledger oracles.
					t.Errorf("unexpected %s divergence at %v: %s", d.Kind, d.At, d.Detail)
				}
			}
			if tc.wantStale && timely == 0 {
				t.Fatalf("%s served no stale reading — the consistent-but-stale gap is gone", tc.kind)
			}
			if !tc.wantStale && timely != 0 {
				t.Fatalf("%s flagged %d timely divergences; it should re-sense on reboot", tc.kind, timely)
			}
		})
	}
}

// TestFreshnessOracleCheckpointedMatchesFromBoot cross-validates the two
// replay modes on a freshness app: the staleness record rides in the
// run record, so restoring a checkpoint must reproduce the sample clocks
// exactly.
func TestFreshnessOracleCheckpointedMatchesFromBoot(t *testing.T) {
	t.Parallel()
	ckpt, err := Run(context.Background(), sensorFactory, experiments.EaseIO,
		Config{Exhaustive: true, Workers: 2})
	if err != nil {
		t.Fatalf("checkpointed: %v", err)
	}
	boot, err := Run(context.Background(), sensorFactory, experiments.EaseIO,
		Config{Exhaustive: true, Workers: 2, FromBoot: true})
	if err != nil {
		t.Fatalf("from-boot: %v", err)
	}
	if a, b := ckpt.Render(), boot.Render(); a != b {
		t.Fatalf("replay modes disagree on the sensor app:\ncheckpointed:\n%s\nfrom-boot:\n%s", a, b)
	}
}

// TestFreshnessNestedReplayModes extends the freshness claims to the
// k=2 checkpoint tree, where depth-2 replays resume from checkpoints
// taken along recovery trajectories: the sample clocks must survive
// that double restore (ckpt vs from-boot byte identity), staleness must
// stay invisible to every oracle but Timely(Δt), and the stale/clean
// split across runtimes must match the single-failure demonstration.
func TestFreshnessNestedReplayModes(t *testing.T) {
	cases := []struct {
		kind      experiments.RuntimeKind
		wantStale bool
	}{
		{experiments.EaseIO, true},
		{experiments.JustDo, true},
		{experiments.Alpaca, false},
		{experiments.InK, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.kind.String(), func(t *testing.T) {
			t.Parallel()
			cfg := Config{Exhaustive: true, Failures: 2, Workers: 2}
			ckpt, err := Run(context.Background(), sensorFactory, tc.kind, cfg)
			if err != nil {
				t.Fatalf("checkpointed: %v", err)
			}
			cfg.FromBoot = true
			boot, err := Run(context.Background(), sensorFactory, tc.kind, cfg)
			if err != nil {
				t.Fatalf("from-boot: %v", err)
			}
			if a, b := ckpt.Render(), boot.Render(); a != b {
				t.Fatalf("k=2 replay modes disagree on the sensor app:\ncheckpointed:\n%s\nfrom-boot:\n%s", a, b)
			}
			timely := 0
			for _, d := range ckpt.Divergences {
				if d.Kind != "timely" {
					t.Errorf("unexpected %s divergence on schedule %v: %s", d.Kind, d.Schedule, d.Detail)
					continue
				}
				timely++
			}
			if tc.wantStale && timely == 0 {
				t.Fatalf("%s served no stale reading under nested failures", tc.kind)
			}
			if !tc.wantStale && timely != 0 {
				t.Fatalf("%s flagged %d timely divergences at k=2; it should re-sense on reboot", tc.kind, timely)
			}
		})
	}
}
